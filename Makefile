# Verification tiers. Tier-1 is the cheap always-on gate; tier-2 (verify)
# adds static checks, the race detector, and the chaos fault-injection
# suite, and is the bar for merging runtime/delegation changes.

GO ?= go

.PHONY: build test verify chaos bench obs-smoke

build:
	$(GO) build ./...

# Tier-1: build + full test suite.
test: build
	$(GO) test ./...

# Tier-2: vet + race-detected tests. -short shrinks the chaos schedules
# (fewer sessions/seeds); drop it for the full sweep.
verify: build obs-smoke
	$(GO) vet ./...
	$(GO) test -race -short ./...

# End-to-end observability smoke: run a chaos schedule with the live
# endpoint up, scrape /metrics, and assert the injected faults show in the
# exported counters.
obs-smoke:
	./scripts/obs-smoke.sh

# The full-size chaos fault-injection suite on its own.
chaos:
	$(GO) test -race -run Chaos -v ./internal/harness/

bench:
	$(GO) test -run xxx -bench . -benchmem ./...
