# Verification tiers. Tier-1 is the cheap always-on gate; tier-2 (verify)
# adds static checks, the race detector, and the chaos fault-injection
# suite, and is the bar for merging runtime/delegation changes.

GO ?= go

.PHONY: build test verify chaos bench bench-compare bench-full alloc-smoke obs-smoke wal-smoke net-smoke

build:
	$(GO) build ./...

# Tier-1: build + full test suite.
test: build
	$(GO) test ./...

# Tier-2: vet + race-detected tests + allocation gate on the delegation hot
# path. -short shrinks the chaos schedules (fewer sessions/seeds); drop it
# for the full sweep. The arm64 cross-build keeps the prefetch package's
# per-arch split (assembly on amd64, no-op elsewhere) compiling on a
# non-amd64 target.
verify: build obs-smoke alloc-smoke wal-smoke net-smoke
	$(GO) vet ./...
	GOARCH=arm64 $(GO) build ./...
	$(GO) test -race -short ./...

# Fail if the unobserved synchronous delegation round trip allocates.
alloc-smoke:
	./scripts/alloc-smoke.sh

# Durability gate: shrunk WAL chaos golden-equality suite under -race plus
# the allocation check on the logged delegation round trip.
wal-smoke:
	./scripts/wal-smoke.sh

# End-to-end observability smoke: run a chaos schedule with the live
# endpoint up, scrape /metrics, and assert the injected faults show in the
# exported counters.
obs-smoke:
	./scripts/obs-smoke.sh

# End-to-end network front-end smoke: robustserved on a free port, a short
# mixed workload over TCP via robustycsb -addr, server counters asserted on
# /metrics, clean SIGTERM drain.
net-smoke:
	./scripts/net-smoke.sh

# The full-size chaos fault-injection suite on its own — both the WAL-off
# schedules (crash-with-data-loss envelope) and the TestChaosWAL* suite
# (crash-with-replay golden equality).
chaos:
	$(GO) test -race -run Chaos -v ./internal/harness/

# Record the delegation/index/TPC-C perf trajectory into
# BENCH_delegation.json (commit the refreshed snapshot).
bench:
	./scripts/bench-snapshot.sh

# Re-run the snapshot benchmarks and fail on a >15% ns/op regression against
# the committed BENCH_delegation.json (THRESHOLD_PCT overrides the bar).
bench-compare:
	./scripts/bench-compare.sh

# Every benchmark in the repo, including the paper-artefact regenerations.
bench-full:
	$(GO) test -run xxx -bench . -benchmem ./...
