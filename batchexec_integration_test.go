package robustconf_test

import (
	"errors"
	"fmt"
	"testing"

	"robustconf"
	"robustconf/internal/index"
	"robustconf/internal/index/fptree"
	"robustconf/internal/index/hashmap"
)

// kvResult is one typed op's observable outcome, flattened for comparison
// across schedules (errors compare by message).
type kvResult struct {
	v   uint64
	ok  bool
	err string
}

// runKVStream executes the same seeded mixed stream of typed ops — and,
// when panicEvery > 0, a panicking closure task interleaved into the bursts
// — against a fresh hashmap + FP-Tree runtime, and returns every op's
// result plus the final state of both structures. The stream, burst
// boundaries and panic positions are purely seed-determined, so two calls
// differing only in the batch-exec width must return identical slices:
// that is the interleaved schedule's serial-equivalence contract.
func runKVStream(t *testing.T, width int, panicEvery int) ([]kvResult, map[string][]kvResult) {
	t.Helper()
	const keys = 512
	const ops = 50 * 14

	cfg := robustconf.Config{
		Machine: robustconf.Machine(1),
		Domains: []robustconf.Domain{
			// A single-worker domain concentrates every burst in one buffer,
			// so interleaved passes claim full groups.
			{Name: "d0", CPUs: robustconf.CPURange(0, 1)},
		},
		Assignment: map[string]int{"h": 0, "f": 0},
	}
	if width >= 2 {
		cfg.BatchExec = robustconf.BatchExecConfig{Enabled: true, Width: width}
	}
	hm, ft := hashmap.New(), fptree.New()
	rt, err := robustconf.Start(cfg, map[string]any{"h": hm, "f": ft})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Stop()
	session, err := rt.NewSession(0, robustconf.PaperBurstSize)
	if err != nil {
		t.Fatal(err)
	}
	defer session.Close()

	rng := uint64(0x9e3779b97f4a7c15)
	next := func() uint64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return rng
	}
	var results []kvResult
	var futs []*robustconf.AsyncFuture
	flush := func() {
		for _, f := range futs {
			v, ok, err := f.WaitKV()
			r := kvResult{v: v, ok: ok}
			if err != nil {
				r.err = err.Error()
			}
			results = append(results, r)
		}
		futs = futs[:0]
	}
	for i := 0; i < ops; i++ {
		if panicEvery > 0 && i%panicEvery == panicEvery/2 {
			// A closure task in the middle of the burst: on the batched
			// path it splits typed runs; its panic must fail only itself.
			f, err := session.SubmitAsync("h", func(ds, arg any) any {
				panic("equivalence boom")
			}, nil)
			if err != nil {
				t.Fatal(err)
			}
			_, werr := f.Wait()
			var pe robustconf.PanicError
			if !errors.As(werr, &pe) {
				t.Fatalf("closure panic came back as %v, want PanicError", werr)
			}
		}
		structure := "h"
		if next()%2 == 0 {
			structure = "f"
		}
		kind := uint8(robustconf.KVGet)
		switch next() % 4 {
		case 1:
			kind = robustconf.KVInsert
		case 2:
			kind = robustconf.KVUpdate
		case 3:
			kind = robustconf.KVDelete
		}
		f, err := session.SubmitKV(structure, kind, next()%keys+1, next())
		if err != nil {
			t.Fatal(err)
		}
		futs = append(futs, f)
		if len(futs) == robustconf.PaperBurstSize {
			flush()
		}
	}
	flush()

	final := map[string][]kvResult{}
	for name, idx := range map[string]index.Index{"h": hm, "f": ft} {
		state := []kvResult{{v: uint64(idx.Len())}}
		for k := uint64(1); k <= keys; k++ {
			v, ok := idx.Get(k, nil)
			state = append(state, kvResult{v: v, ok: ok})
		}
		final[name] = state
	}
	return results, final
}

func diffStreams(t *testing.T, label string, serial, batched []kvResult) {
	t.Helper()
	if len(serial) != len(batched) {
		t.Fatalf("%s: %d results serial vs %d batched", label, len(serial), len(batched))
	}
	for i := range serial {
		if serial[i] != batched[i] {
			t.Fatalf("%s: op %d diverged: serial %+v, batched %+v", label, i, serial[i], batched[i])
		}
	}
}

// TestBatchExecEquivalence is the cross-path equivalence pin: the identical
// seeded op stream through serial sweeps and through interleaved sweeps (at
// two widths) must produce identical per-op results and leave both indexes
// in identical final states.
func TestBatchExecEquivalence(t *testing.T) {
	serialRes, serialState := runKVStream(t, 0, 0)
	for _, width := range []int{8, 15} {
		batchRes, batchState := runKVStream(t, width, 0)
		diffStreams(t, fmt.Sprintf("width=%d results", width), serialRes, batchRes)
		for name := range serialState {
			diffStreams(t, fmt.Sprintf("width=%d final state %q", width, name),
				serialState[name], batchState[name])
		}
	}
}

// TestBatchExecEquivalenceWithPanics re-runs the equivalence pin with a
// panicking closure task injected into every burst: the panic must fail
// only its own future on both schedules, leaving the typed results and
// final states identical.
func TestBatchExecEquivalenceWithPanics(t *testing.T) {
	serialRes, serialState := runKVStream(t, 0, 14)
	batchRes, batchState := runKVStream(t, 15, 14)
	diffStreams(t, "panic-stream results", serialRes, batchRes)
	for name := range serialState {
		diffStreams(t, fmt.Sprintf("panic-stream final state %q", name),
			serialState[name], batchState[name])
	}
}

// TestBatchExecStopWithOutstandingBurst stops the runtime while a full
// typed burst is outstanding on the interleaved path: every future must
// still resolve — with its value if the final sweep executed it, or with
// ErrWorkerStopped if the seal rescued it — and never hang.
func TestBatchExecStopWithOutstandingBurst(t *testing.T) {
	cfg := robustconf.Config{
		Machine:    robustconf.Machine(1),
		Domains:    []robustconf.Domain{{Name: "d0", CPUs: robustconf.CPURange(0, 1)}},
		Assignment: map[string]int{"h": 0},
		BatchExec:  robustconf.BatchExecConfig{Enabled: true, Width: 15},
	}
	rt, err := robustconf.Start(cfg, map[string]any{"h": hashmap.New()})
	if err != nil {
		t.Fatal(err)
	}
	session, err := rt.NewSession(0, robustconf.PaperBurstSize)
	if err != nil {
		t.Fatal(err)
	}
	var futs [robustconf.PaperBurstSize]*robustconf.AsyncFuture
	for i := range futs {
		if futs[i], err = session.SubmitKV("h", robustconf.KVInsert, uint64(i+1), 1); err != nil {
			t.Fatal(err)
		}
	}
	rt.Stop()
	for i, f := range futs {
		if _, _, err := f.WaitKV(); err != nil && !errors.Is(err, robustconf.ErrWorkerStopped) {
			t.Fatalf("op %d: err = %v, want nil or ErrWorkerStopped", i, err)
		}
	}
	session.Close()
}
