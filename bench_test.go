// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (regenerating the same rows/series on the simulated reference
// machine), plus real-hardware microbenchmarks of the delegation runtime
// and ablation benchmarks for the design choices called out in DESIGN.md.
//
// Regenerate everything with:
//
//	go test -bench=. -benchmem
//
// Individual artefacts: -bench=BenchmarkFigure7, -bench=BenchmarkTable2, …
package robustconf_test

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"robustconf"
	"robustconf/client"
	"robustconf/internal/config"
	"robustconf/internal/core"
	"robustconf/internal/delegation"
	"robustconf/internal/harness"
	"robustconf/internal/ilp"
	"robustconf/internal/index"
	"robustconf/internal/index/btree"
	"robustconf/internal/index/bwtree"
	"robustconf/internal/index/fptree"
	"robustconf/internal/index/hashmap"
	"robustconf/internal/oltp"
	"robustconf/internal/server"
	"robustconf/internal/sim"
	"robustconf/internal/tpcc"
	"robustconf/internal/wal"
	"robustconf/internal/workload"
)

// --- Paper artefacts (Experiments E1–E13, see DESIGN.md) -----------------

// BenchmarkFigure1 regenerates the teaser figure: FP-Tree at 8 sockets
// across the three YCSB workloads. Reports Opt. Configured's read-update
// throughput as the headline metric.
func BenchmarkFigure1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := harness.Figure1()
		if err != nil {
			b.Fatal(err)
		}
		if y, ok := fig.SeriesNamed("Opt. Configured").YAt(0); ok {
			b.ReportMetric(y, "opt-RU-MOp/s")
		}
	}
}

// BenchmarkTable2 regenerates the calibrated optimal domain sizes.
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t2, err := config.Table2(nil)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(t2[sim.KindFPTree][workload.A.Name]), "fptree-RU-size")
		b.ReportMetric(float64(t2[sim.KindHashMap][workload.A.Name]), "hashmap-RU-size")
	}
}

// BenchmarkFigure6 regenerates throughput for all structures × workloads at
// the largest system size under the five strategies.
func BenchmarkFigure6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := harness.Figure6(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure7 regenerates the read-update scaling curves (1–8 sockets).
func BenchmarkFigure7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		figs, err := harness.Figure7()
		if err != nil {
			b.Fatal(err)
		}
		opt, _ := figs["FP-Tree"].SeriesNamed("Opt. Configured").YAt(384)
		se, _ := figs["FP-Tree"].SeriesNamed("SE").YAt(384)
		b.ReportMetric(opt/se, "fptree-opt/se-x")
	}
}

// BenchmarkFigure8 regenerates the FP-Tree abort-ratio and L2-miss curves.
func BenchmarkFigure8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		abort, _, err := harness.Figure8()
		if err != nil {
			b.Fatal(err)
		}
		y, _ := abort.SeriesNamed("SE").YAt(384)
		b.ReportMetric(y, "se-abort-ratio")
	}
}

// BenchmarkFigure9 regenerates the BW-Tree interconnect-volume curves.
func BenchmarkFigure9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := harness.Figure9()
		if err != nil {
			b.Fatal(err)
		}
		se, _ := fig.SeriesNamed("SE").YAt(384)
		opt, _ := fig.SeriesNamed("Opt. Configured").YAt(384)
		b.ReportMetric(se/opt, "se/opt-volume-x")
	}
}

// BenchmarkFigure10 regenerates the read-only scaling curves.
func BenchmarkFigure10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := harness.Figure10(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure11 regenerates the application-size sweep (16–1024 indexes).
func BenchmarkFigure11(b *testing.B) {
	for i := 0; i < b.N; i++ {
		figs, err := harness.Figure11()
		if err != nil {
			b.Fatal(err)
		}
		a, _ := figs["FP-Tree"].SeriesNamed("Opt. Configured").YAt(16)
		z, _ := figs["FP-Tree"].SeriesNamed("Opt. Configured").YAt(1024)
		b.ReportMetric(z/a, "opt-stability-x")
	}
}

// BenchmarkFigure12 regenerates the TMAM cost breakdown (2 vs 8 sockets).
func BenchmarkFigure12(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := harness.Figure12()
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Structure == "FP-Tree" && r.Strategy == "Opt. Configured" && r.Sockets == 8 {
				b.ReportMetric(r.TMAM.Total()/1000, "opt-fptree-Kcycles/op")
			}
		}
	}
}

// BenchmarkFigure13Left regenerates TPC-C throughput vs system size.
func BenchmarkFigure13Left(b *testing.B) {
	for i := 0; i < b.N; i++ {
		left, _, err := harness.Figure13()
		if err != nil {
			b.Fatal(err)
		}
		y, _ := left.SeriesNamed("Our OLTP Engine (FP-Tree)").YAt(384)
		b.ReportMetric(y, "ours-fptree-Ktxn/s")
	}
}

// BenchmarkFigure13Right regenerates TPC-C throughput vs remote fraction.
func BenchmarkFigure13Right(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, right, err := harness.Figure13()
		if err != nil {
			b.Fatal(err)
		}
		base1, _ := right.SeriesNamed("SN-NUMA OLTP Engine (FP-Tree)").YAt(1)
		b.ReportMetric(base1, "baseline-1pct-Ktxn/s")
	}
}

// --- Real-hardware microbenchmarks (delegation runtime) ------------------

// BenchmarkDelegationInvoke measures one synchronous delegated round trip
// on this host.
func BenchmarkDelegationInvoke(b *testing.B) {
	machine := robustconf.Machine(1)
	cfg := robustconf.Config{
		Machine:    machine,
		Domains:    []robustconf.Domain{{Name: "d", CPUs: robustconf.CPURange(0, 4)}},
		Assignment: map[string]int{"x": 0},
	}
	rt, err := robustconf.Start(cfg, map[string]any{"x": btree.New()})
	if err != nil {
		b.Fatal(err)
	}
	defer rt.Stop()
	s, err := rt.NewSession(0, 1)
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	task := robustconf.Task{Structure: "x", Op: func(ds any) any { return nil }}
	if _, err := s.Invoke(task); err != nil { // warm up: lazy client creation
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Invoke(task); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDelegationInvokeKV measures the typed key/value round trip
// through the interleaved sweep path (Config.BatchExec on, full width):
// a burst of 14 pipelined SubmitKV Gets answered by live workers through
// the hashmap's batch kernel. Pinned allocation-free by alloc-smoke — the
// typed path must not re-introduce boxing anywhere from post to answer.
func BenchmarkDelegationInvokeKV(b *testing.B) {
	const burst = 14
	machine := robustconf.Machine(1)
	cfg := robustconf.Config{
		Machine:    machine,
		Domains:    []robustconf.Domain{{Name: "d", CPUs: robustconf.CPURange(0, 4)}},
		Assignment: map[string]int{"x": 0},
		BatchExec:  robustconf.BatchExecConfig{Enabled: true, Width: 15},
	}
	idx := hashmap.New()
	for k := uint64(0); k < 1024; k++ {
		idx.Insert(k, k, nil)
	}
	rt, err := robustconf.Start(cfg, map[string]any{"x": idx})
	if err != nil {
		b.Fatal(err)
	}
	defer rt.Stop()
	s, err := rt.NewSession(0, burst)
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	var futs [burst]*core.AsyncFuture
	cycle := func() error {
		for j := 0; j < burst; j++ {
			f, err := s.SubmitKV("x", robustconf.KVGet, uint64(j), 0)
			if err != nil {
				return err
			}
			futs[j] = f
		}
		for j := 0; j < burst; j++ {
			if _, _, err := futs[j].WaitKV(); err != nil {
				return err
			}
		}
		return nil
	}
	if err := cycle(); err != nil { // warm up: lazy client + future pool
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := cycle(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDelegationInvokeObserved is the same round trip with an
// Observer attached at default sampling — the overhead budget for the
// introspection layer (DESIGN.md §9) is ≤5% over BenchmarkDelegationInvoke.
func BenchmarkDelegationInvokeObserved(b *testing.B) {
	machine := robustconf.Machine(1)
	cfg := robustconf.Config{
		Machine:    machine,
		Domains:    []robustconf.Domain{{Name: "d", CPUs: robustconf.CPURange(0, 4)}},
		Assignment: map[string]int{"x": 0},
		Obs:        robustconf.NewObserver(robustconf.ObserverOptions{}),
	}
	rt, err := robustconf.Start(cfg, map[string]any{"x": btree.New()})
	if err != nil {
		b.Fatal(err)
	}
	defer rt.Stop()
	s, err := rt.NewSession(0, 1)
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	task := robustconf.Task{Structure: "x", Op: func(ds any) any { return nil }}
	if _, err := s.Invoke(task); err != nil { // warm up: lazy client creation
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Invoke(task); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDelegationInvokeSampled is BenchmarkDelegationInvokeObserved
// with the continuous-signal sampler running at its default 250ms cadence —
// the overhead budget for continuous telemetry is <1% over the observed
// number, since the sampler only reads the shards' published atomics from
// its own goroutine and adds nothing to the invoke path itself.
func BenchmarkDelegationInvokeSampled(b *testing.B) {
	machine := robustconf.Machine(1)
	observer := robustconf.NewObserver(robustconf.ObserverOptions{})
	cfg := robustconf.Config{
		Machine:    machine,
		Domains:    []robustconf.Domain{{Name: "d", CPUs: robustconf.CPURange(0, 4)}},
		Assignment: map[string]int{"x": 0},
		Obs:        observer,
	}
	rt, err := robustconf.Start(cfg, map[string]any{"x": btree.New()})
	if err != nil {
		b.Fatal(err)
	}
	defer rt.Stop()
	smp := observer.StartSampler(robustconf.SamplerOptions{})
	defer smp.Stop()
	s, err := rt.NewSession(0, 1)
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	task := robustconf.Task{Structure: "x", Op: func(ds any) any { return nil }}
	if _, err := s.Invoke(task); err != nil { // warm up: lazy client creation
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Invoke(task); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDelegationSignalTick measures one sampler tick — snapshot every
// shard's published counters, window the deltas, derive the signal set and
// classify health — against a live runtime. This is the cost the sampler
// goroutine pays per cadence, off every worker's critical path; obs's
// TestSignalTickZeroAlloc pins its 0 allocs/op.
func BenchmarkDelegationSignalTick(b *testing.B) {
	machine := robustconf.Machine(1)
	observer := robustconf.NewObserver(robustconf.ObserverOptions{})
	cfg := robustconf.Config{
		Machine:    machine,
		Domains:    []robustconf.Domain{{Name: "d", CPUs: robustconf.CPURange(0, 4)}},
		Assignment: map[string]int{"x": 0},
		Obs:        observer,
	}
	rt, err := robustconf.Start(cfg, map[string]any{"x": btree.New()})
	if err != nil {
		b.Fatal(err)
	}
	defer rt.Stop()
	// Manual sampler: negative cadence means no goroutine; the benchmark
	// loop is the tick driver.
	smp := observer.StartSampler(robustconf.SamplerOptions{Every: -1})
	defer smp.Stop()
	s, err := rt.NewSession(0, 1)
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	task := robustconf.Task{Structure: "x", Op: func(ds any) any { return nil }}
	for i := 0; i < 1000; i++ { // give the window real traffic to digest
		if _, err := s.Invoke(task); err != nil {
			b.Fatal(err)
		}
	}
	smp.TickNow()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		smp.TickNow()
	}
}

// BenchmarkDelegationReadBypass is the read-path counterpart of
// BenchmarkDelegationInvoke: a NOP read-only task submitted through
// SubmitRead against a bypass-armed Hash Map, so the number measures the
// validated-local-read protocol itself — route, publication-word loads,
// re-validation — with no index work and no allocations (alloc-smoke pins
// the 0 B/op).
func BenchmarkDelegationReadBypass(b *testing.B) {
	machine := robustconf.Machine(1)
	cfg := robustconf.Config{
		Machine:      machine,
		Domains:      []robustconf.Domain{{Name: "d", CPUs: robustconf.CPURange(0, 4)}},
		Assignment:   map[string]int{"x": 0},
		ReadPolicies: map[string]robustconf.ReadPolicy{"x": robustconf.ReadBypass},
	}
	rt, err := robustconf.Start(cfg, map[string]any{"x": hashmap.New()})
	if err != nil {
		b.Fatal(err)
	}
	defer rt.Stop()
	s, err := rt.NewSession(0, 1)
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	task := robustconf.Task{Structure: "x", Op: func(ds any) any { return nil }}
	if _, err := s.SubmitRead(task); err != nil { // warm up lazy read state
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.SubmitRead(task); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDelegationInvokeLogged is BenchmarkDelegationInvoke with a WAL
// attached and every task carrying a logical record: route, delegate,
// execute, encode the record into the worker's staging buffer, group-commit
// (no fsync — the in-process replay-journal configuration) and complete the
// future after the commit. The wal-smoke gate holds it at 0 B/op: the logged
// hot path must not allocate. The checkpoint cadence is pushed out of the
// window — the periodic snapshot legitimately allocates its buffer, but off
// the client path; this measures the per-task cost.
func BenchmarkDelegationInvokeLogged(b *testing.B) {
	machine := robustconf.Machine(1)
	cfg := robustconf.Config{
		Machine:    machine,
		Domains:    []robustconf.Domain{{Name: "d", CPUs: robustconf.CPURange(0, 4)}},
		Assignment: map[string]int{"x": 0},
		WAL:        robustconf.WALConfig{Dir: b.TempDir(), Fsync: robustconf.FsyncNone, CheckpointEvery: time.Hour},
	}
	rt, err := robustconf.Start(cfg, map[string]any{"x": harness.NewWALTree()})
	if err != nil {
		b.Fatal(err)
	}
	defer rt.Stop()
	s, err := rt.NewSession(0, 1)
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	var k, v uint64
	task := robustconf.Task{
		Structure: "x",
		Op:        func(ds any) any { ds.(*harness.WALTree).Set(k, v); return nil },
		Log:       func(dst []byte) []byte { return harness.AppendWALSet(dst, k, v) },
	}
	// Warm up: lazy client creation, the full key set (so measured
	// iterations update tree nodes instead of allocating fresh ones) and
	// the staging buffer's growth to its steady-state size.
	for i := 0; i < 1024; i++ {
		k, v = uint64(i), uint64(i)
		if _, err := s.Invoke(task); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k, v = uint64(i&1023), uint64(i)
		if _, err := s.Invoke(task); err != nil {
			b.Fatal(err)
		}
	}
	// The deferred Stop runs a shutdown checkpoint whose snapshot buffer
	// would otherwise be billed to the timed region.
	b.StopTimer()
}

// BenchmarkRecoveryReplay measures the recovery path itself (DESIGN.md §13):
// every iteration rebuilds a structure from a checkpoint plus a committed
// log tail and then serves one write — ns/op is the time-to-first-serve
// after a crash, records/sec the replay rate. Tracked in bench-snapshot.
func BenchmarkRecoveryReplay(b *testing.B) {
	const ckptKeys = 1 << 15
	const tailRecords = 1 << 15
	d, err := wal.OpenDomain(b.TempDir(), 2, wal.FsyncNone)
	if err != nil {
		b.Fatal(err)
	}
	defer d.Close()
	golden := harness.NewWALTree()
	for k := uint64(0); k < ckptKeys; k++ {
		golden.Set(k, k)
	}
	if err := d.Checkpoint(golden.WALSnapshot); err != nil {
		b.Fatal(err)
	}
	// The log tail: both worker segments, group commits of eight records.
	for i := 0; i < tailRecords; {
		for w := 0; w < 2 && i < tailRecords; w++ {
			wl := d.Worker(w)
			wl.Begin()
			for j := 0; j < 8 && i < tailRecords; j++ {
				k, v := uint64(i%ckptKeys), uint64(i)
				wl.StageRecord(func(dst []byte) []byte { return harness.AppendWALSet(dst, k, v) })
				i++
			}
			if err := wl.Commit(false); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree := harness.NewWALTree()
		if _, err := d.Recover(tree.WALRestore, tree.WALApply); err != nil {
			b.Fatal(err)
		}
		tree.Set(0, uint64(i)) // first post-recovery serve
	}
	b.StopTimer()
	b.ReportMetric(float64(tailRecords)*float64(b.N)/b.Elapsed().Seconds(), "records/sec")
}

// benchReadPolicy drives one seeded YCSB stream through a single session
// with reads classified at submit time, under the given read policy — the
// real-work version of the read-path comparison (ISSUE 5 acceptance: bypass
// must at least double delegated YCSB-C throughput and come within 1.5× of
// the direct baseline; adaptive must not regress YCSB-A).
func benchReadPolicy(b *testing.B, mix workload.Mix, policy robustconf.ReadPolicy) {
	const preload = 100_000
	idx := hashmap.New()
	for _, k := range workload.LoadKeys(preload) {
		idx.Insert(k, k, nil)
	}
	machine := robustconf.Machine(1)
	rt, err := robustconf.Start(robustconf.Config{
		Machine:      machine,
		Domains:      []robustconf.Domain{{Name: "d", CPUs: robustconf.CPURange(0, 4)}},
		Assignment:   map[string]int{"x": 0},
		ReadPolicies: map[string]robustconf.ReadPolicy{"x": policy},
	}, map[string]any{"x": idx})
	if err != nil {
		b.Fatal(err)
	}
	defer rt.Stop()
	s, err := rt.NewSession(0, 1)
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	gen, err := workload.NewGenerator(mix, preload, 0, 1)
	if err != nil {
		b.Fatal(err)
	}
	// One reusable task per kind, closing over mutable operands: both paths
	// are synchronous, so the operands are stable while a task is in flight,
	// and neither path pays a per-op closure allocation the direct baseline
	// doesn't have.
	var key, val uint64
	var update bool
	readTask := robustconf.Task{Structure: "x", Op: func(ds any) any {
		ds.(*hashmap.Map).Get(key, nil)
		return nil
	}}
	writeTask := robustconf.Task{Structure: "x", Op: func(ds any) any {
		mp := ds.(*hashmap.Map)
		if update {
			mp.Update(key, val, nil)
		} else {
			mp.Insert(key, val, nil)
		}
		return nil
	}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		op := gen.Next()
		key, val, update = op.Key, op.Val, op.Type == workload.OpUpdate
		if op.Type == workload.OpRead {
			_, err = s.SubmitRead(readTask)
		} else {
			_, err = s.Invoke(writeTask)
		}
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReadBypass compares the read-path policies on the Hash Map:
// YCSB-C delegated vs bypass vs the undelgated direct bound, and YCSB-A
// delegated vs adaptive (which must detect the 50% write fraction and stay
// at delegation cost). Tracked in BENCH_delegation.json.
func BenchmarkReadBypass(b *testing.B) {
	b.Run("ycsb-c/delegated", func(b *testing.B) { benchReadPolicy(b, workload.C, robustconf.ReadDelegate) })
	b.Run("ycsb-c/bypass", func(b *testing.B) { benchReadPolicy(b, workload.C, robustconf.ReadBypass) })
	b.Run("ycsb-c/direct", func(b *testing.B) {
		const preload = 100_000
		idx := hashmap.New()
		for _, k := range workload.LoadKeys(preload) {
			idx.Insert(k, k, nil)
		}
		gen, err := workload.NewGenerator(workload.C, preload, 0, 1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			op := gen.Next()
			idx.Get(op.Key, nil)
		}
	})
	b.Run("ycsb-a/delegated", func(b *testing.B) { benchReadPolicy(b, workload.A, robustconf.ReadDelegate) })
	b.Run("ycsb-a/adaptive", func(b *testing.B) { benchReadPolicy(b, workload.A, robustconf.ReadAdaptive) })
}

// BenchmarkAblationBurstSize sweeps the burst size (the paper fixes 14):
// larger bursts overlap more pending tasks per client.
func BenchmarkAblationBurstSize(b *testing.B) {
	for _, burst := range []int{1, 4, 14} {
		b.Run(fmt.Sprintf("burst-%d", burst), func(b *testing.B) {
			machine := robustconf.Machine(1)
			cfg := robustconf.Config{
				Machine:    machine,
				Domains:    []robustconf.Domain{{Name: "d", CPUs: robustconf.CPURange(0, 4)}},
				Assignment: map[string]int{"x": 0},
			}
			tree := btree.New()
			rt, err := robustconf.Start(cfg, map[string]any{"x": tree})
			if err != nil {
				b.Fatal(err)
			}
			defer rt.Stop()
			s, err := rt.NewSession(0, burst)
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			// Pre-boxed keys and one shared op: SubmitAsync threads the
			// argument (a pointer, boxed alloc-free) instead of closing over
			// it, and waiting the window's futures in FIFO order keeps the
			// session's future pool recycling — the measured loop allocates
			// nothing, so the sweep isolates the burst size itself.
			var keys [1024]uint64
			for i := range keys {
				keys[i] = uint64(i)
			}
			insert := func(ds, arg any) any {
				k := *arg.(*uint64)
				ds.(*btree.Tree).Insert(k, k, nil)
				return nil
			}
			futs := make([]*core.AsyncFuture, burst)
			submit := func(i int) {
				if f := futs[i%burst]; f != nil {
					if _, err := f.Wait(); err != nil {
						b.Fatal(err)
					}
				}
				f, err := s.SubmitAsync("x", insert, &keys[i%1024])
				if err != nil {
					b.Fatal(err)
				}
				futs[i%burst] = f
			}
			for i := 0; i < 2*burst; i++ {
				submit(i) // warm the future pool before measuring
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				submit(i)
			}
			b.StopTimer()
			for _, f := range futs {
				if f != nil {
					_, _ = f.Wait()
				}
			}
		})
	}
}

// BenchmarkAblationResponseBatching compares a worker sweep answering 14
// posted requests at once (FFWD batching) against 14 individual sweeps.
func BenchmarkAblationResponseBatching(b *testing.B) {
	for _, batched := range []bool{true, false} {
		name := "batched"
		if !batched {
			name = "one-by-one"
		}
		b.Run(name, func(b *testing.B) {
			buf, err := delegation.NewBuffer(0, 14)
			if err != nil {
				b.Fatal(err)
			}
			inbox, err := delegation.NewInbox([]*delegation.Buffer{buf})
			if err != nil {
				b.Fatal(err)
			}
			slots, err := inbox.AcquireSlots(14, nil)
			if err != nil {
				b.Fatal(err)
			}
			client, err := delegation.NewClient(slots)
			if err != nil {
				b.Fatal(err)
			}
			// The reserved-slot pipeline (Reserve/PostReserved/Await) reuses
			// the slot-embedded futures, so the loop measures sweep batching
			// alone — Delegate would add one detached future allocation per
			// task.
			noop := delegation.Task(func() any { return nil })
			var hs [14]delegation.InvokeHandle
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if batched {
					for j := 0; j < 14; j++ {
						slot, ok := client.Reserve()
						if !ok {
							b.Fatal("no free slot")
						}
						hs[j] = client.PostReserved(slot, noop)
					}
					buf.Sweep() // one sweep answers all 14
					for j := 0; j < 14; j++ {
						if _, err := client.Await(hs[j]); err != nil {
							b.Fatal(err)
						}
					}
				} else {
					for j := 0; j < 14; j++ {
						slot, ok := client.Reserve()
						if !ok {
							b.Fatal("no free slot")
						}
						h := client.PostReserved(slot, noop)
						buf.Sweep()
						if _, err := client.Await(h); err != nil {
							b.Fatal(err)
						}
					}
				}
			}
		})
	}
}

// BenchmarkAblationBatchExec compares serial sweep execution against the
// interleaved batched schedule (DESIGN.md §15) on the real indexes: 14
// typed random Gets are posted as one burst, a single sweep claims and
// executes them, and the only difference between the arms is whether the
// sweep hands the run to the structure's batch kernel (which walks the 14
// traversals stage by stage, prefetching each op's next node) or runs them
// one at a time. The working set is sized well past LLC so the traversals
// are cache-miss bound — the regime the interleave targets. ns/kvop is the
// per-operation figure (ns/op covers the whole 14-op burst).
func BenchmarkAblationBatchExec(b *testing.B) {
	const records = 1 << 21
	const burst = 14
	keys := workload.LoadKeys(records)
	builders := []struct {
		name  string
		build func() index.Index
	}{
		{"hashmap", func() index.Index { return hashmap.New() }},
		{"btree", func() index.Index { return btree.New() }},
		{"fptree", func() index.Index { return fptree.New() }},
		{"bwtree", func() index.Index { return bwtree.New() }},
	}
	for _, bl := range builders {
		b.Run(bl.name, func(b *testing.B) {
			idx := bl.build()
			for _, k := range keys {
				idx.Insert(k, k, nil)
			}
			kern, ok := idx.(delegation.BatchKernel)
			if !ok {
				b.Fatalf("%s has no batch kernel", bl.name)
			}
			for _, width := range []int{0, 8, 15} {
				name := "serial"
				if width >= 2 {
					name = fmt.Sprintf("width=%d", width)
				}
				b.Run(name, func(b *testing.B) {
					buf, err := delegation.NewBuffer(0, burst)
					if err != nil {
						b.Fatal(err)
					}
					if width >= 2 {
						buf.SetBatchExec(width)
					}
					inbox, err := delegation.NewInbox([]*delegation.Buffer{buf})
					if err != nil {
						b.Fatal(err)
					}
					slots, err := inbox.AcquireSlots(burst, nil)
					if err != nil {
						b.Fatal(err)
					}
					client, err := delegation.NewClient(slots)
					if err != nil {
						b.Fatal(err)
					}
					var hs [burst]delegation.InvokeHandle
					rng := uint64(0x9e3779b97f4a7c15)
					b.ReportAllocs()
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						for j := 0; j < burst; j++ {
							rng ^= rng << 13
							rng ^= rng >> 7
							rng ^= rng << 17
							slot, ok := client.Reserve()
							if !ok {
								b.Fatal("no free slot")
							}
							hs[j] = client.PostReservedKV(slot, kern, delegation.KVGet, keys[rng%records], 0)
						}
						buf.Sweep()
						for j := 0; j < burst; j++ {
							if _, _, err := client.AwaitKV(hs[j]); err != nil {
								b.Fatal(err)
							}
						}
					}
					b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*burst), "ns/kvop")
				})
			}
		})
	}
}

// BenchmarkAblationNUMAAwareSlots quantifies (in the cost model) what the
// NUMA-aware slot assignment of Section 6 saves: without it every delegated
// message is a worst-case remote transfer.
func BenchmarkAblationNUMAAwareSlots(b *testing.B) {
	aware := sim.DefaultParams()
	naive := aware
	naive.MsgTransferDiscount = 1.0 // every message fully stalls the worker
	naive.MsgBytes *= 2             // and both directions cross sockets
	for i := 0; i < b.N; i++ {
		run := func(p *sim.Params) float64 {
			r, err := sim.Run(sim.Scenario{
				Kind: sim.KindFPTree, Mix: workload.A, Strategy: sim.StratConfigured,
				Threads: 384, OptDomainSize: 24, Params: p,
			})
			if err != nil {
				b.Fatal(err)
			}
			return r.ThroughputMOps
		}
		b.ReportMetric(run(&aware)/run(&naive), "aware/naive-x")
	}
}

// BenchmarkAblationILPvsGreedy compares the exact GAP-MQ solution against
// the greedy fallback on the paper's OLTP2 instance.
func BenchmarkAblationILPvsGreedy(b *testing.B) {
	instances := []ilp.GAPInstance{
		{Name: "w1", OptimalSize: 24, Load: 1},
		{Name: "w2", OptimalSize: 24, Load: 1},
		{Name: "r1", OptimalSize: 48, Load: 1},
		{Name: "r2", OptimalSize: 48, Load: 1},
		{Name: "r3", OptimalSize: 48, Load: 1},
	}
	b.Run("ilp", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := ilp.SolveGAPMQ(instances, 192, 0.5, 1.5, nil, 0)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(res.WorkersUsed()), "workers-used")
		}
	})
	b.Run("greedy", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := ilp.GreedyGAPMQ(instances, 192, 1.5)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(res.WorkersUsed()), "workers-used")
		}
	})
}

// --- Real index-structure microbenchmarks --------------------------------

func benchIndex(b *testing.B, idx index.Index) {
	const preload = 100_000
	for _, k := range workload.LoadKeys(preload) {
		idx.Insert(k, k, nil)
	}
	gen, err := workload.NewGenerator(workload.A, preload, 0, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		op := gen.Next()
		switch op.Type {
		case workload.OpRead:
			idx.Get(op.Key, nil)
		case workload.OpUpdate:
			idx.Update(op.Key, op.Val, nil)
		default:
			idx.Insert(op.Key, op.Val, nil)
		}
	}
}

// BenchmarkIndexBTree measures the real B-Tree under YCSB-A on this host.
func BenchmarkIndexBTree(b *testing.B) { benchIndex(b, btree.New()) }

// BenchmarkIndexFPTree measures the real FP-Tree under YCSB-A on this host.
func BenchmarkIndexFPTree(b *testing.B) { benchIndex(b, fptree.New()) }

// BenchmarkIndexBWTree measures the real BW-Tree under YCSB-A on this host.
func BenchmarkIndexBWTree(b *testing.B) { benchIndex(b, bwtree.New()) }

// BenchmarkIndexHashMap measures the real Hash Map under YCSB-A on this host.
func BenchmarkIndexHashMap(b *testing.B) { benchIndex(b, hashmap.New()) }

// --- Real TPC-C execution benchmarks --------------------------------------

func benchTPCC(b *testing.B, delegated bool, fullMix bool) {
	cfg := tpcc.Config{Warehouses: 2, Customers: 100, Items: 300}
	newIndex := func() index.Index { return fptree.New() }
	loader, err := tpcc.NewLoader(cfg, 1)
	if err != nil {
		b.Fatal(err)
	}
	var store tpcc.Store
	if delegated {
		machine := robustconf.Machine(1)
		engine, err := oltp.NewEngine(cfg, newIndex, machine)
		if err != nil {
			b.Fatal(err)
		}
		defer engine.Stop()
		s, err := engine.NewStore(0, robustconf.PaperBurstSize)
		if err != nil {
			b.Fatal(err)
		}
		defer s.Close()
		store = s
	} else {
		engine, err := oltp.NewDirectEngine(cfg, newIndex)
		if err != nil {
			b.Fatal(err)
		}
		store = engine
	}
	if err := loader.Load(store); err != nil {
		b.Fatal(err)
	}
	term, err := tpcc.NewTerminal(cfg, store, 1, 0.05, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		if fullMix {
			err = term.NextFullMix()
		} else {
			err = term.NextTransaction()
		}
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTPCCDirectNOP measures real New-Order+Payment transactions on
// the direct-execution baseline engine on this host.
func BenchmarkTPCCDirectNOP(b *testing.B) { benchTPCC(b, false, false) }

// BenchmarkTPCCDelegatedNOP measures the same mix through the delegated
// engine (statements as tasks) on this host.
func BenchmarkTPCCDelegatedNOP(b *testing.B) { benchTPCC(b, true, false) }

// BenchmarkTPCCDirectFullMix measures the full five-transaction TPC-C mix
// (extension beyond the paper's 88% subset) on the baseline engine.
func BenchmarkTPCCDirectFullMix(b *testing.B) { benchTPCC(b, false, true) }

// BenchmarkTPCCDelegatedFullMix measures the full mix on the delegated
// engine.
func BenchmarkTPCCDelegatedFullMix(b *testing.B) { benchTPCC(b, true, true) }

// BenchmarkTPCCDelegatedFullMixArena is BenchmarkTPCCDelegatedFullMix with
// the per-worker batch arenas enabled — the steady-state allocation pin
// (scripts/alloc-smoke.sh holds it at ≤10 allocs/op) and the ns/op gap to
// the arena-off run quantify the arena configuration axis.
func BenchmarkTPCCDelegatedFullMixArena(b *testing.B) {
	cfg := tpcc.Config{Warehouses: 2, Customers: 100, Items: 300}
	machine := robustconf.Machine(1)
	rc, err := oltp.EvenConfig(cfg, machine)
	if err != nil {
		b.Fatal(err)
	}
	rc.Arena = robustconf.ArenaConfig{Enabled: true}
	engine, err := oltp.NewEngineWithConfig(cfg, func() index.Index { return fptree.New() }, rc)
	if err != nil {
		b.Fatal(err)
	}
	defer engine.Stop()
	s, err := engine.NewStore(0, robustconf.PaperBurstSize)
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	loader, err := tpcc.NewLoader(cfg, 1)
	if err != nil {
		b.Fatal(err)
	}
	if err := loader.Load(s); err != nil {
		b.Fatal(err)
	}
	term, err := tpcc.NewTerminal(cfg, s, 1, 0.05, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := term.NextFullMix(); err != nil {
			b.Fatal(err)
		}
	}
}

// benchTPCCParallel drives concurrent terminals (one per benchmark
// goroutine, whole-transaction mode) through the delegated engine, with
// write-ahead logging when walDir is non-empty. Group commit only amortises
// under concurrency — a lone synchronous terminal pays one fsync per
// transaction — so the WAL-on/WAL-off comparison is made at the concurrent
// operating point the log batching is designed for. Note that the measured
// gap is dominated by the physical fsync path, not the WAL machinery:
// rerunning the WAL side with FsyncNone lands within ~15% of the no-WAL
// baseline, while FsyncBatch adds the filesystem's journal-commit latency
// per group (≈250µs on this repo's ext4 CI disk), amortised across however
// many terminals the host can actually run in parallel.
func benchTPCCParallel(b *testing.B, walDir string) {
	cfg := tpcc.Config{Warehouses: 2, Customers: 100, Items: 300}
	machine := robustconf.Machine(1)
	rc, err := oltp.EvenConfig(cfg, machine)
	if err != nil {
		b.Fatal(err)
	}
	if walDir != "" {
		rc.WAL = robustconf.WALConfig{Dir: walDir, Fsync: robustconf.FsyncBatch}
	}
	engine, err := oltp.NewEngineWithConfig(cfg, func() index.Index { return fptree.New() }, rc)
	if err != nil {
		b.Fatal(err)
	}
	defer engine.Stop()
	boot, err := engine.NewStore(0, robustconf.PaperBurstSize)
	if err != nil {
		b.Fatal(err)
	}
	loader, err := tpcc.NewLoader(cfg, 1)
	if err != nil {
		b.Fatal(err)
	}
	if err := loader.Load(boot); err != nil {
		b.Fatal(err)
	}
	boot.Close()
	var gid atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		g := int(gid.Add(1))
		// Whole-txn mode needs one slot at a time; a small burst packs
		// several terminals into each worker's buffer, so one sweep batch —
		// and in the WAL run one group commit — carries several terminals'
		// transactions. That sharing is what amortises the fsync.
		s, err := engine.NewStoreMode(g%machine.LogicalCPUs(), 2, oltp.ModeWholeTxn)
		if err != nil {
			b.Error(err)
			return
		}
		defer s.Close()
		term, err := tpcc.NewTerminal(cfg, s, 1+g%cfg.Warehouses, 0.05, int64(g))
		if err != nil {
			b.Error(err)
			return
		}
		for pb.Next() {
			if err := term.NextFullMix(); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

// BenchmarkTPCCDelegatedFullMixPar is the concurrent-terminal baseline for
// the WAL comparison below.
func BenchmarkTPCCDelegatedFullMixPar(b *testing.B) { benchTPCCParallel(b, "") }

// BenchmarkTPCCDelegatedFullMixWAL is the same concurrent mix with
// durability on (batch-fsync WAL + periodic checkpoints): the gap to
// BenchmarkTPCCDelegatedFullMixPar is the price of crash-with-replay over
// crash-with-data-loss (README "Durability"). On a single-CPU host the
// group commit degenerates to one fsync per transaction, so the absolute
// ratio tracks the disk, not the log.
func BenchmarkTPCCDelegatedFullMixWAL(b *testing.B) { benchTPCCParallel(b, b.TempDir()) }

// BenchmarkAblationTxnMode isolates the contribution of each statement→task
// mapping on the delegated engine under the full TPC-C mix: per-statement
// pipelining (async statement futures), same-domain fusion (one multi-op
// task per dependency wave), and whole-transaction delegation (one task per
// single-warehouse transaction, pipelined fallback across warehouses).
func BenchmarkAblationTxnMode(b *testing.B) {
	for _, mode := range []oltp.ExecMode{oltp.ModePerStatement, oltp.ModeFused, oltp.ModeWholeTxn} {
		b.Run(mode.String(), func(b *testing.B) {
			cfg := tpcc.Config{Warehouses: 2, Customers: 100, Items: 300}
			loader, err := tpcc.NewLoader(cfg, 1)
			if err != nil {
				b.Fatal(err)
			}
			engine, err := oltp.NewEngine(cfg, func() index.Index { return fptree.New() }, robustconf.Machine(1))
			if err != nil {
				b.Fatal(err)
			}
			defer engine.Stop()
			s, err := engine.NewStoreMode(0, robustconf.PaperBurstSize, mode)
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			if err := loader.Load(s); err != nil {
				b.Fatal(err)
			}
			term, err := tpcc.NewTerminal(cfg, s, 1, 0.05, 1)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := term.NextFullMix(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkServerPipelined measures the network front end end to end on
// loopback: a client pipelines GET windows of the given depth over the
// binary protocol; the server folds each window into delegation bursts
// through its session pool (DESIGN.md §16). The runtime underneath is the
// same single-domain interleaved-sweep setup as BenchmarkDelegationInvokeKV,
// so ns/op here against that benchmark isolates the network front end's
// overhead, and the depth series shows pipelining amortising it: depth 1
// pays one full network round trip per op, depth 64 spreads that round
// trip across a whole delegation burst worth of work.
func BenchmarkServerPipelined(b *testing.B) {
	for _, depth := range []int{1, 16, 64, 128} {
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			machine := robustconf.Machine(1)
			cfg := robustconf.Config{
				Machine:    machine,
				Domains:    []robustconf.Domain{{Name: "d", CPUs: robustconf.CPURange(0, 4)}},
				Assignment: map[string]int{"x": 0},
				BatchExec:  robustconf.BatchExecConfig{Enabled: true, Width: 15},
			}
			idx := hashmap.New()
			for k := uint64(0); k < 1024; k++ {
				idx.Insert(k, k, nil)
			}
			rt, err := robustconf.Start(cfg, map[string]any{"x": idx})
			if err != nil {
				b.Fatal(err)
			}
			defer rt.Stop()
			srv, err := server.Listen("127.0.0.1:0", server.Config{
				Runtime:  rt,
				Shards:   []string{"x"},
				Sessions: 4,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer srv.Close(5 * time.Second)
			c, err := client.Dial(srv.Addr())
			if err != nil {
				b.Fatal(err)
			}
			defer c.Close()

			window := func(n, base int) error {
				for j := 0; j < n; j++ {
					c.QueueGet(uint64(base+j) & 1023)
				}
				if err := c.Flush(); err != nil {
					return err
				}
				for j := 0; j < n; j++ {
					if _, _, err := c.Recv(); err != nil {
						return err
					}
				}
				return nil
			}
			if err := window(depth, 0); err != nil { // warm up buffers + pool
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; {
				n := depth
				if left := b.N - i; left < n {
					n = left
				}
				if err := window(n, i); err != nil {
					b.Fatal(err)
				}
				i += n
			}
		})
	}
}

// BenchmarkDelegationInvokeKVSync measures the synchronous typed round
// trip — one InvokeKV Get per call, no pipelining — on the same
// single-domain hashmap setup as BenchmarkServerPipelined. It is the
// in-process baseline for the network front end's acceptance ratio: a
// remote client at depth 64 amortises its network round trip across a
// window and should land within 2× of this per-op latency.
func BenchmarkDelegationInvokeKVSync(b *testing.B) {
	machine := robustconf.Machine(1)
	cfg := robustconf.Config{
		Machine:    machine,
		Domains:    []robustconf.Domain{{Name: "d", CPUs: robustconf.CPURange(0, 4)}},
		Assignment: map[string]int{"x": 0},
		BatchExec:  robustconf.BatchExecConfig{Enabled: true, Width: 15},
	}
	idx := hashmap.New()
	for k := uint64(0); k < 1024; k++ {
		idx.Insert(k, k, nil)
	}
	rt, err := robustconf.Start(cfg, map[string]any{"x": idx})
	if err != nil {
		b.Fatal(err)
	}
	defer rt.Stop()
	s, err := rt.NewSession(0, 1)
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	if _, _, err := s.InvokeKV("x", robustconf.KVGet, 0, 0); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := s.InvokeKV("x", robustconf.KVGet, uint64(i)&1023, 0); err != nil {
			b.Fatal(err)
		}
	}
}
