// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (regenerating the same rows/series on the simulated reference
// machine), plus real-hardware microbenchmarks of the delegation runtime
// and ablation benchmarks for the design choices called out in DESIGN.md.
//
// Regenerate everything with:
//
//	go test -bench=. -benchmem
//
// Individual artefacts: -bench=BenchmarkFigure7, -bench=BenchmarkTable2, …
package robustconf_test

import (
	"fmt"
	"testing"

	"robustconf"
	"robustconf/internal/config"
	"robustconf/internal/delegation"
	"robustconf/internal/harness"
	"robustconf/internal/ilp"
	"robustconf/internal/index"
	"robustconf/internal/index/btree"
	"robustconf/internal/index/bwtree"
	"robustconf/internal/index/fptree"
	"robustconf/internal/index/hashmap"
	"robustconf/internal/oltp"
	"robustconf/internal/sim"
	"robustconf/internal/tpcc"
	"robustconf/internal/workload"
)

// --- Paper artefacts (Experiments E1–E13, see DESIGN.md) -----------------

// BenchmarkFigure1 regenerates the teaser figure: FP-Tree at 8 sockets
// across the three YCSB workloads. Reports Opt. Configured's read-update
// throughput as the headline metric.
func BenchmarkFigure1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := harness.Figure1()
		if err != nil {
			b.Fatal(err)
		}
		if y, ok := fig.SeriesNamed("Opt. Configured").YAt(0); ok {
			b.ReportMetric(y, "opt-RU-MOp/s")
		}
	}
}

// BenchmarkTable2 regenerates the calibrated optimal domain sizes.
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t2, err := config.Table2(nil)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(t2[sim.KindFPTree][workload.A.Name]), "fptree-RU-size")
		b.ReportMetric(float64(t2[sim.KindHashMap][workload.A.Name]), "hashmap-RU-size")
	}
}

// BenchmarkFigure6 regenerates throughput for all structures × workloads at
// the largest system size under the five strategies.
func BenchmarkFigure6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := harness.Figure6(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure7 regenerates the read-update scaling curves (1–8 sockets).
func BenchmarkFigure7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		figs, err := harness.Figure7()
		if err != nil {
			b.Fatal(err)
		}
		opt, _ := figs["FP-Tree"].SeriesNamed("Opt. Configured").YAt(384)
		se, _ := figs["FP-Tree"].SeriesNamed("SE").YAt(384)
		b.ReportMetric(opt/se, "fptree-opt/se-x")
	}
}

// BenchmarkFigure8 regenerates the FP-Tree abort-ratio and L2-miss curves.
func BenchmarkFigure8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		abort, _, err := harness.Figure8()
		if err != nil {
			b.Fatal(err)
		}
		y, _ := abort.SeriesNamed("SE").YAt(384)
		b.ReportMetric(y, "se-abort-ratio")
	}
}

// BenchmarkFigure9 regenerates the BW-Tree interconnect-volume curves.
func BenchmarkFigure9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := harness.Figure9()
		if err != nil {
			b.Fatal(err)
		}
		se, _ := fig.SeriesNamed("SE").YAt(384)
		opt, _ := fig.SeriesNamed("Opt. Configured").YAt(384)
		b.ReportMetric(se/opt, "se/opt-volume-x")
	}
}

// BenchmarkFigure10 regenerates the read-only scaling curves.
func BenchmarkFigure10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := harness.Figure10(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure11 regenerates the application-size sweep (16–1024 indexes).
func BenchmarkFigure11(b *testing.B) {
	for i := 0; i < b.N; i++ {
		figs, err := harness.Figure11()
		if err != nil {
			b.Fatal(err)
		}
		a, _ := figs["FP-Tree"].SeriesNamed("Opt. Configured").YAt(16)
		z, _ := figs["FP-Tree"].SeriesNamed("Opt. Configured").YAt(1024)
		b.ReportMetric(z/a, "opt-stability-x")
	}
}

// BenchmarkFigure12 regenerates the TMAM cost breakdown (2 vs 8 sockets).
func BenchmarkFigure12(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := harness.Figure12()
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Structure == "FP-Tree" && r.Strategy == "Opt. Configured" && r.Sockets == 8 {
				b.ReportMetric(r.TMAM.Total()/1000, "opt-fptree-Kcycles/op")
			}
		}
	}
}

// BenchmarkFigure13Left regenerates TPC-C throughput vs system size.
func BenchmarkFigure13Left(b *testing.B) {
	for i := 0; i < b.N; i++ {
		left, _, err := harness.Figure13()
		if err != nil {
			b.Fatal(err)
		}
		y, _ := left.SeriesNamed("Our OLTP Engine (FP-Tree)").YAt(384)
		b.ReportMetric(y, "ours-fptree-Ktxn/s")
	}
}

// BenchmarkFigure13Right regenerates TPC-C throughput vs remote fraction.
func BenchmarkFigure13Right(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, right, err := harness.Figure13()
		if err != nil {
			b.Fatal(err)
		}
		base1, _ := right.SeriesNamed("SN-NUMA OLTP Engine (FP-Tree)").YAt(1)
		b.ReportMetric(base1, "baseline-1pct-Ktxn/s")
	}
}

// --- Real-hardware microbenchmarks (delegation runtime) ------------------

// BenchmarkDelegationInvoke measures one synchronous delegated round trip
// on this host.
func BenchmarkDelegationInvoke(b *testing.B) {
	machine := robustconf.Machine(1)
	cfg := robustconf.Config{
		Machine:    machine,
		Domains:    []robustconf.Domain{{Name: "d", CPUs: robustconf.CPURange(0, 4)}},
		Assignment: map[string]int{"x": 0},
	}
	rt, err := robustconf.Start(cfg, map[string]any{"x": btree.New()})
	if err != nil {
		b.Fatal(err)
	}
	defer rt.Stop()
	s, err := rt.NewSession(0, 1)
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	task := robustconf.Task{Structure: "x", Op: func(ds any) any { return nil }}
	if _, err := s.Invoke(task); err != nil { // warm up: lazy client creation
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Invoke(task); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDelegationInvokeObserved is the same round trip with an
// Observer attached at default sampling — the overhead budget for the
// introspection layer (DESIGN.md §9) is ≤5% over BenchmarkDelegationInvoke.
func BenchmarkDelegationInvokeObserved(b *testing.B) {
	machine := robustconf.Machine(1)
	cfg := robustconf.Config{
		Machine:    machine,
		Domains:    []robustconf.Domain{{Name: "d", CPUs: robustconf.CPURange(0, 4)}},
		Assignment: map[string]int{"x": 0},
		Obs:        robustconf.NewObserver(robustconf.ObserverOptions{}),
	}
	rt, err := robustconf.Start(cfg, map[string]any{"x": btree.New()})
	if err != nil {
		b.Fatal(err)
	}
	defer rt.Stop()
	s, err := rt.NewSession(0, 1)
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	task := robustconf.Task{Structure: "x", Op: func(ds any) any { return nil }}
	if _, err := s.Invoke(task); err != nil { // warm up: lazy client creation
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Invoke(task); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDelegationReadBypass is the read-path counterpart of
// BenchmarkDelegationInvoke: a NOP read-only task submitted through
// SubmitRead against a bypass-armed Hash Map, so the number measures the
// validated-local-read protocol itself — route, publication-word loads,
// re-validation — with no index work and no allocations (alloc-smoke pins
// the 0 B/op).
func BenchmarkDelegationReadBypass(b *testing.B) {
	machine := robustconf.Machine(1)
	cfg := robustconf.Config{
		Machine:      machine,
		Domains:      []robustconf.Domain{{Name: "d", CPUs: robustconf.CPURange(0, 4)}},
		Assignment:   map[string]int{"x": 0},
		ReadPolicies: map[string]robustconf.ReadPolicy{"x": robustconf.ReadBypass},
	}
	rt, err := robustconf.Start(cfg, map[string]any{"x": hashmap.New()})
	if err != nil {
		b.Fatal(err)
	}
	defer rt.Stop()
	s, err := rt.NewSession(0, 1)
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	task := robustconf.Task{Structure: "x", Op: func(ds any) any { return nil }}
	if _, err := s.SubmitRead(task); err != nil { // warm up lazy read state
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.SubmitRead(task); err != nil {
			b.Fatal(err)
		}
	}
}

// benchReadPolicy drives one seeded YCSB stream through a single session
// with reads classified at submit time, under the given read policy — the
// real-work version of the read-path comparison (ISSUE 5 acceptance: bypass
// must at least double delegated YCSB-C throughput and come within 1.5× of
// the direct baseline; adaptive must not regress YCSB-A).
func benchReadPolicy(b *testing.B, mix workload.Mix, policy robustconf.ReadPolicy) {
	const preload = 100_000
	idx := hashmap.New()
	for _, k := range workload.LoadKeys(preload) {
		idx.Insert(k, k, nil)
	}
	machine := robustconf.Machine(1)
	rt, err := robustconf.Start(robustconf.Config{
		Machine:      machine,
		Domains:      []robustconf.Domain{{Name: "d", CPUs: robustconf.CPURange(0, 4)}},
		Assignment:   map[string]int{"x": 0},
		ReadPolicies: map[string]robustconf.ReadPolicy{"x": policy},
	}, map[string]any{"x": idx})
	if err != nil {
		b.Fatal(err)
	}
	defer rt.Stop()
	s, err := rt.NewSession(0, 1)
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	gen, err := workload.NewGenerator(mix, preload, 0, 1)
	if err != nil {
		b.Fatal(err)
	}
	// One reusable task per kind, closing over mutable operands: both paths
	// are synchronous, so the operands are stable while a task is in flight,
	// and neither path pays a per-op closure allocation the direct baseline
	// doesn't have.
	var key, val uint64
	var update bool
	readTask := robustconf.Task{Structure: "x", Op: func(ds any) any {
		ds.(*hashmap.Map).Get(key, nil)
		return nil
	}}
	writeTask := robustconf.Task{Structure: "x", Op: func(ds any) any {
		mp := ds.(*hashmap.Map)
		if update {
			mp.Update(key, val, nil)
		} else {
			mp.Insert(key, val, nil)
		}
		return nil
	}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		op := gen.Next()
		key, val, update = op.Key, op.Val, op.Type == workload.OpUpdate
		if op.Type == workload.OpRead {
			_, err = s.SubmitRead(readTask)
		} else {
			_, err = s.Invoke(writeTask)
		}
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReadBypass compares the read-path policies on the Hash Map:
// YCSB-C delegated vs bypass vs the undelgated direct bound, and YCSB-A
// delegated vs adaptive (which must detect the 50% write fraction and stay
// at delegation cost). Tracked in BENCH_delegation.json.
func BenchmarkReadBypass(b *testing.B) {
	b.Run("ycsb-c/delegated", func(b *testing.B) { benchReadPolicy(b, workload.C, robustconf.ReadDelegate) })
	b.Run("ycsb-c/bypass", func(b *testing.B) { benchReadPolicy(b, workload.C, robustconf.ReadBypass) })
	b.Run("ycsb-c/direct", func(b *testing.B) {
		const preload = 100_000
		idx := hashmap.New()
		for _, k := range workload.LoadKeys(preload) {
			idx.Insert(k, k, nil)
		}
		gen, err := workload.NewGenerator(workload.C, preload, 0, 1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			op := gen.Next()
			idx.Get(op.Key, nil)
		}
	})
	b.Run("ycsb-a/delegated", func(b *testing.B) { benchReadPolicy(b, workload.A, robustconf.ReadDelegate) })
	b.Run("ycsb-a/adaptive", func(b *testing.B) { benchReadPolicy(b, workload.A, robustconf.ReadAdaptive) })
}

// BenchmarkAblationBurstSize sweeps the burst size (the paper fixes 14):
// larger bursts overlap more pending tasks per client.
func BenchmarkAblationBurstSize(b *testing.B) {
	for _, burst := range []int{1, 4, 14} {
		b.Run(fmt.Sprintf("burst-%d", burst), func(b *testing.B) {
			machine := robustconf.Machine(1)
			cfg := robustconf.Config{
				Machine:    machine,
				Domains:    []robustconf.Domain{{Name: "d", CPUs: robustconf.CPURange(0, 4)}},
				Assignment: map[string]int{"x": 0},
			}
			tree := btree.New()
			rt, err := robustconf.Start(cfg, map[string]any{"x": tree})
			if err != nil {
				b.Fatal(err)
			}
			defer rt.Stop()
			s, err := rt.NewSession(0, burst)
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				k := uint64(i)
				_, err := s.Submit(robustconf.Task{Structure: "x", Op: func(ds any) any {
					ds.(*btree.Tree).Insert(k, k, nil)
					return nil
				}})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationResponseBatching compares a worker sweep answering 14
// posted requests at once (FFWD batching) against 14 individual sweeps.
func BenchmarkAblationResponseBatching(b *testing.B) {
	for _, batched := range []bool{true, false} {
		name := "batched"
		if !batched {
			name = "one-by-one"
		}
		b.Run(name, func(b *testing.B) {
			buf, err := delegation.NewBuffer(0, 14)
			if err != nil {
				b.Fatal(err)
			}
			inbox, err := delegation.NewInbox([]*delegation.Buffer{buf})
			if err != nil {
				b.Fatal(err)
			}
			slots, err := inbox.AcquireSlots(14, nil)
			if err != nil {
				b.Fatal(err)
			}
			client, err := delegation.NewClient(slots)
			if err != nil {
				b.Fatal(err)
			}
			noop := delegation.Task(func() any { return nil })
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if batched {
					for j := 0; j < 14; j++ {
						client.Delegate(noop)
					}
					buf.Sweep() // one sweep answers all 14
				} else {
					for j := 0; j < 14; j++ {
						client.Delegate(noop)
						buf.Sweep()
					}
				}
				client.Drain()
			}
		})
	}
}

// BenchmarkAblationNUMAAwareSlots quantifies (in the cost model) what the
// NUMA-aware slot assignment of Section 6 saves: without it every delegated
// message is a worst-case remote transfer.
func BenchmarkAblationNUMAAwareSlots(b *testing.B) {
	aware := sim.DefaultParams()
	naive := aware
	naive.MsgTransferDiscount = 1.0 // every message fully stalls the worker
	naive.MsgBytes *= 2             // and both directions cross sockets
	for i := 0; i < b.N; i++ {
		run := func(p *sim.Params) float64 {
			r, err := sim.Run(sim.Scenario{
				Kind: sim.KindFPTree, Mix: workload.A, Strategy: sim.StratConfigured,
				Threads: 384, OptDomainSize: 24, Params: p,
			})
			if err != nil {
				b.Fatal(err)
			}
			return r.ThroughputMOps
		}
		b.ReportMetric(run(&aware)/run(&naive), "aware/naive-x")
	}
}

// BenchmarkAblationILPvsGreedy compares the exact GAP-MQ solution against
// the greedy fallback on the paper's OLTP2 instance.
func BenchmarkAblationILPvsGreedy(b *testing.B) {
	instances := []ilp.GAPInstance{
		{Name: "w1", OptimalSize: 24, Load: 1},
		{Name: "w2", OptimalSize: 24, Load: 1},
		{Name: "r1", OptimalSize: 48, Load: 1},
		{Name: "r2", OptimalSize: 48, Load: 1},
		{Name: "r3", OptimalSize: 48, Load: 1},
	}
	b.Run("ilp", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := ilp.SolveGAPMQ(instances, 192, 0.5, 1.5, nil, 0)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(res.WorkersUsed()), "workers-used")
		}
	})
	b.Run("greedy", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := ilp.GreedyGAPMQ(instances, 192, 1.5)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(res.WorkersUsed()), "workers-used")
		}
	})
}

// --- Real index-structure microbenchmarks --------------------------------

func benchIndex(b *testing.B, idx index.Index) {
	const preload = 100_000
	for _, k := range workload.LoadKeys(preload) {
		idx.Insert(k, k, nil)
	}
	gen, err := workload.NewGenerator(workload.A, preload, 0, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		op := gen.Next()
		switch op.Type {
		case workload.OpRead:
			idx.Get(op.Key, nil)
		case workload.OpUpdate:
			idx.Update(op.Key, op.Val, nil)
		default:
			idx.Insert(op.Key, op.Val, nil)
		}
	}
}

// BenchmarkIndexBTree measures the real B-Tree under YCSB-A on this host.
func BenchmarkIndexBTree(b *testing.B) { benchIndex(b, btree.New()) }

// BenchmarkIndexFPTree measures the real FP-Tree under YCSB-A on this host.
func BenchmarkIndexFPTree(b *testing.B) { benchIndex(b, fptree.New()) }

// BenchmarkIndexBWTree measures the real BW-Tree under YCSB-A on this host.
func BenchmarkIndexBWTree(b *testing.B) { benchIndex(b, bwtree.New()) }

// BenchmarkIndexHashMap measures the real Hash Map under YCSB-A on this host.
func BenchmarkIndexHashMap(b *testing.B) { benchIndex(b, hashmap.New()) }

// --- Real TPC-C execution benchmarks --------------------------------------

func benchTPCC(b *testing.B, delegated bool, fullMix bool) {
	cfg := tpcc.Config{Warehouses: 2, Customers: 100, Items: 300}
	newIndex := func() index.Index { return fptree.New() }
	loader, err := tpcc.NewLoader(cfg, 1)
	if err != nil {
		b.Fatal(err)
	}
	var store tpcc.Store
	if delegated {
		machine := robustconf.Machine(1)
		engine, err := oltp.NewEngine(cfg, newIndex, machine)
		if err != nil {
			b.Fatal(err)
		}
		defer engine.Stop()
		s, err := engine.NewStore(0, robustconf.PaperBurstSize)
		if err != nil {
			b.Fatal(err)
		}
		defer s.Close()
		store = s
	} else {
		engine, err := oltp.NewDirectEngine(cfg, newIndex)
		if err != nil {
			b.Fatal(err)
		}
		store = engine
	}
	if err := loader.Load(store); err != nil {
		b.Fatal(err)
	}
	term, err := tpcc.NewTerminal(cfg, store, 1, 0.05, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		if fullMix {
			err = term.NextFullMix()
		} else {
			err = term.NextTransaction()
		}
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTPCCDirectNOP measures real New-Order+Payment transactions on
// the direct-execution baseline engine on this host.
func BenchmarkTPCCDirectNOP(b *testing.B) { benchTPCC(b, false, false) }

// BenchmarkTPCCDelegatedNOP measures the same mix through the delegated
// engine (statements as tasks) on this host.
func BenchmarkTPCCDelegatedNOP(b *testing.B) { benchTPCC(b, true, false) }

// BenchmarkTPCCDirectFullMix measures the full five-transaction TPC-C mix
// (extension beyond the paper's 88% subset) on the baseline engine.
func BenchmarkTPCCDirectFullMix(b *testing.B) { benchTPCC(b, false, true) }

// BenchmarkTPCCDelegatedFullMix measures the full mix on the delegated
// engine.
func BenchmarkTPCCDelegatedFullMix(b *testing.B) { benchTPCC(b, true, true) }

// BenchmarkAblationTxnMode isolates the contribution of each statement→task
// mapping on the delegated engine under the full TPC-C mix: per-statement
// pipelining (async statement futures), same-domain fusion (one multi-op
// task per dependency wave), and whole-transaction delegation (one task per
// single-warehouse transaction, pipelined fallback across warehouses).
func BenchmarkAblationTxnMode(b *testing.B) {
	for _, mode := range []oltp.ExecMode{oltp.ModePerStatement, oltp.ModeFused, oltp.ModeWholeTxn} {
		b.Run(mode.String(), func(b *testing.B) {
			cfg := tpcc.Config{Warehouses: 2, Customers: 100, Items: 300}
			loader, err := tpcc.NewLoader(cfg, 1)
			if err != nil {
				b.Fatal(err)
			}
			engine, err := oltp.NewEngine(cfg, func() index.Index { return fptree.New() }, robustconf.Machine(1))
			if err != nil {
				b.Fatal(err)
			}
			defer engine.Stop()
			s, err := engine.NewStoreMode(0, robustconf.PaperBurstSize, mode)
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			if err := loader.Load(s); err != nil {
				b.Fatal(err)
			}
			term, err := tpcc.NewTerminal(cfg, s, 1, 0.05, 1)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := term.NextFullMix(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
