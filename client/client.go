// Package client is the thin Go client for the robustconf network front
// end (internal/server). It speaks the length-prefixed binary protocol of
// internal/server/proto over one TCP connection and exposes two surfaces:
//
//   - a synchronous surface (Get/Put/Delete/Ping/Stats) — one round trip
//     per call, convenient for tools and tests;
//   - a pipelined surface (QueueGet/QueuePut/QueueDelete + Flush + Recv) —
//     the client queues any number of request frames, flushes them as one
//     write, and pairs replies back by order. Depth-k pipelining is what
//     lets the server turn one network read into one k-op delegation
//     burst, so this surface is the one benchmarks and robustycsb use.
//
// A Conn is single-goroutine, like a core.Session: no internal locking,
// and the steady-state hot path (queue, flush, recv of GET/PUT/DELETE)
// allocates nothing — frames encode into a retained write buffer and
// responses decode from a retained read buffer.
package client

import (
	"errors"
	"fmt"
	"net"
	"time"

	"robustconf/internal/server/proto"
)

// ErrBusy is the typed admission-control rejection: the server's session
// pool stayed empty past its deadline or the tenant quota was exceeded.
// The request did not execute; the caller may retry (ideally after
// backoff — the server is telling you it is saturated).
var ErrBusy = errors.New("client: server busy (admission control)")

// ErrUnsupported reports an op the server recognises but does not serve
// (SCAN, until the range path lands).
var ErrUnsupported = errors.New("client: op unsupported by server")

// ServerError carries a typed execution error relayed from the server
// (worker crash PanicError, dead domain, upsert race exhaustion, …).
type ServerError struct{ Msg string }

func (e *ServerError) Error() string { return "client: server error: " + e.Msg }

// Conn is one client connection. Not safe for concurrent use — open one
// Conn per goroutine, exactly like a delegation session.
type Conn struct {
	nc   net.Conn
	wbuf []byte // queued request frames, flushed as one write
	rbuf []byte // response framing buffer; [r,w) unconsumed
	r, w int
	// pending counts flushed requests whose replies have not been received;
	// queued counts requests written into wbuf but not yet flushed.
	pending int
	queued  int
	resp    proto.Response
	timeout time.Duration
}

// Dial connects to a robustconf server.
func Dial(addr string) (*Conn, error) { return DialTenant(addr, "") }

// DialTenant connects and names the connection's tenant for quota
// accounting (HELLO handshake). Empty tenant skips the handshake.
func DialTenant(addr, tenant string) (*Conn, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	if tc, ok := nc.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	c := &Conn{
		nc:      nc,
		wbuf:    make([]byte, 0, 4<<10),
		rbuf:    make([]byte, 4<<10),
		timeout: 30 * time.Second,
	}
	if tenant != "" {
		if len(tenant) > proto.MaxTenant {
			nc.Close()
			return nil, fmt.Errorf("client: tenant name %d bytes > max %d", len(tenant), proto.MaxTenant)
		}
		c.wbuf = proto.AppendRequest(c.wbuf, proto.Request{Op: proto.OpHello, Tenant: []byte(tenant)})
		c.queued++
		if err := c.Flush(); err != nil {
			nc.Close()
			return nil, err
		}
		if _, _, err := c.Recv(); err != nil {
			nc.Close()
			return nil, fmt.Errorf("client: HELLO rejected: %w", err)
		}
	}
	return c, nil
}

// SetTimeout bounds each Flush write and each Recv read (default 30s).
func (c *Conn) SetTimeout(d time.Duration) { c.timeout = d }

// Close closes the connection.
func (c *Conn) Close() error { return c.nc.Close() }

// QueueGet queues a GET without flushing.
func (c *Conn) QueueGet(key uint64) {
	c.wbuf = proto.AppendRequest(c.wbuf, proto.Request{Op: proto.OpGet, Key: key})
	c.queued++
}

// QueuePut queues an upsert PUT without flushing.
func (c *Conn) QueuePut(key, val uint64) {
	c.wbuf = proto.AppendRequest(c.wbuf, proto.Request{Op: proto.OpPut, Key: key, Val: val})
	c.queued++
}

// QueueDelete queues a DELETE without flushing.
func (c *Conn) QueueDelete(key uint64) {
	c.wbuf = proto.AppendRequest(c.wbuf, proto.Request{Op: proto.OpDelete, Key: key})
	c.queued++
}

// Queued reports requests queued but not yet flushed.
func (c *Conn) Queued() int { return c.queued }

// Pending reports flushed requests whose replies are still owed.
func (c *Conn) Pending() int { return c.pending }

// Flush writes every queued frame as one write. The queued requests
// become pending; their replies arrive in queue order via Recv.
func (c *Conn) Flush() error {
	if len(c.wbuf) == 0 {
		return nil
	}
	if err := c.nc.SetWriteDeadline(time.Now().Add(c.timeout)); err != nil {
		return err
	}
	_, err := c.nc.Write(c.wbuf)
	c.wbuf = c.wbuf[:0]
	c.pending += c.queued
	c.queued = 0
	return err
}

// Recv receives the next pending reply in FIFO order. For a GET hit it
// returns (value, true, nil); a GET/DELETE miss returns (0, false, nil);
// PUT/PING/HELLO acknowledgements return (0, true, nil). Admission
// rejections map to ErrBusy, relayed execution errors to *ServerError.
func (c *Conn) Recv() (uint64, bool, error) {
	if c.pending == 0 {
		return 0, false, errors.New("client: Recv with no pending requests")
	}
	payload, err := c.readFrame()
	if err != nil {
		return 0, false, err
	}
	c.pending--
	if err := proto.DecodeResponse(payload, &c.resp); err != nil {
		return 0, false, err
	}
	switch c.resp.Status {
	case proto.StatusOK:
		if c.resp.HasVal {
			return c.resp.Val, true, nil
		}
		return 0, true, nil
	case proto.StatusNotFound:
		return 0, false, nil
	case proto.StatusBusy:
		return 0, false, ErrBusy
	case proto.StatusUnsupported:
		return 0, false, ErrUnsupported
	case proto.StatusErr:
		return 0, false, &ServerError{Msg: string(c.resp.Msg)}
	}
	return 0, false, fmt.Errorf("client: unknown status %d", c.resp.Status)
}

// Get looks a key up synchronously.
func (c *Conn) Get(key uint64) (uint64, bool, error) {
	c.QueueGet(key)
	if err := c.Flush(); err != nil {
		return 0, false, err
	}
	return c.Recv()
}

// Put upserts synchronously.
func (c *Conn) Put(key, val uint64) error {
	c.QueuePut(key, val)
	if err := c.Flush(); err != nil {
		return err
	}
	_, _, err := c.Recv()
	return err
}

// Delete removes a key synchronously, reporting whether it was present.
func (c *Conn) Delete(key uint64) (bool, error) {
	c.QueueDelete(key)
	if err := c.Flush(); err != nil {
		return false, err
	}
	_, found, err := c.Recv()
	return found, err
}

// Ping round-trips a liveness probe.
func (c *Conn) Ping() error {
	c.wbuf = proto.AppendRequest(c.wbuf, proto.Request{Op: proto.OpPing})
	c.queued++
	if err := c.Flush(); err != nil {
		return err
	}
	_, _, err := c.Recv()
	return err
}

// Stats fetches the server's counter snapshot as text.
func (c *Conn) Stats() (string, error) {
	c.wbuf = proto.AppendRequest(c.wbuf, proto.Request{Op: proto.OpStats})
	c.queued++
	if err := c.Flush(); err != nil {
		return "", err
	}
	payload, err := c.readFrame()
	if err != nil {
		return "", err
	}
	c.pending--
	if err := proto.DecodeResponse(payload, &c.resp); err != nil {
		return "", err
	}
	if c.resp.Status != proto.StatusOK {
		return "", fmt.Errorf("client: STATS status %d", c.resp.Status)
	}
	return string(c.resp.Msg), nil
}

// readFrame blocks until one complete response frame is buffered and
// returns its payload (aliasing the read buffer — valid until the next
// readFrame call).
func (c *Conn) readFrame() ([]byte, error) {
	for {
		payload, size, ok, err := proto.Frame(c.rbuf[c.r:c.w])
		if err != nil {
			return nil, err
		}
		if ok {
			c.r += size
			return payload, nil
		}
		if c.r > 0 {
			copy(c.rbuf, c.rbuf[c.r:c.w])
			c.w -= c.r
			c.r = 0
		}
		if c.w == len(c.rbuf) {
			grown := make([]byte, 2*len(c.rbuf))
			copy(grown, c.rbuf[:c.w])
			c.rbuf = grown
		}
		if err := c.nc.SetReadDeadline(time.Now().Add(c.timeout)); err != nil {
			return nil, err
		}
		n, err := c.nc.Read(c.rbuf[c.w:])
		if n > 0 {
			c.w += n
		}
		if err != nil && n == 0 {
			return nil, err
		}
	}
}
