// Command robustbench reproduces the paper's evaluation figures and tables
// on the simulated reference machine.
//
// Usage:
//
//	robustbench                 # run every experiment
//	robustbench -exp fig7       # one experiment (fig1, table2, fig6..fig13, ablations, txn-modes)
//	robustbench -exp fig7 -format csv   # machine-readable series for plotting
//	robustbench -exp chaos      # fault-injection schedules on the real runtime
//	robustbench -exp skew-shift # windowed health detection on the real runtime
//	robustbench -list           # list experiment names
//	robustbench -obs :6060      # live metrics/pprof endpoint during the run
//	robustbench -exp chaos -signals -signals-stream signals.ndjson
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"robustconf/internal/harness"
	"robustconf/internal/metrics"
	"robustconf/internal/obs"
)

func main() {
	exp := flag.String("exp", "", "experiment to run (default: all)")
	format := flag.String("format", "text", "output format: text or csv (figures only)")
	list := flag.Bool("list", false, "list experiment names")
	obsAddr := flag.String("obs", "", "serve the observability endpoint on this address during the run (e.g. :6060)")
	signals := flag.Bool("signals", false, "run the continuous-signal sampler during the run (adds /signals + gauges, report block)")
	signalsEvery := flag.Duration("signals-every", obs.DefaultSamplerEvery, "sampler cadence (with -signals)")
	signalsStream := flag.String("signals-stream", "", "stream per-tick domain signals as NDJSON to this file (implies -signals)")
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(append(append([]string{}, harness.Experiments...), "chaos", "skew-shift"), "\n"))
		return
	}

	faults := &metrics.FaultCounters{}
	observer := obs.New(obs.Options{Faults: faults})
	if *obsAddr != "" {
		addr, stopSrv, err := observer.Serve(*obsAddr)
		if err != nil {
			fatal(err)
		}
		defer stopSrv()
		fmt.Printf("obs: serving http://%s/metrics (also /signals, /spans, /events, /debug/pprof/)\n", addr)
	}
	samplerOn := *signals || *signalsStream != ""
	if samplerOn {
		stopSampler, err := observer.StartSamplerToPath(*signalsEvery, *signalsStream)
		if err != nil {
			fatal(err)
		}
		defer stopSampler()
	}
	opts := harness.ChaosOptions{Observer: observer, Faults: faults}

	var out string
	var err error
	switch {
	case *exp == "":
		out, err = harness.RunAll()
	case *exp == "chaos":
		// On the real runtime rather than the simulator: every fault
		// schedule, with telemetry attached.
		out, err = harness.RunChaosAllOpts(1, 6, 300, opts)
	case *exp == "skew-shift":
		// Also on the real runtime: hammer one domain until the sampler
		// reports Degraded, shift the load away, watch it recover.
		var r harness.SkewShiftReport
		r, err = harness.RunSkewShift(harness.SkewShiftOptions{})
		out = r.String()
	default:
		out, err = harness.RunFormat(*exp, *format)
	}
	if err != nil {
		fmt.Fprint(os.Stdout, out)
		fatal(err)
	}
	fmt.Print(out)
	// Every report ends with the fault summary: zero counters assert the
	// run saw no runtime faults, non-zero ones (chaos) quantify them.
	if *exp == "chaos" || samplerOn {
		fmt.Print(observer.Report())
	} else {
		fmt.Printf("faults: %s\n", faults.Snapshot())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "robustbench:", err)
	os.Exit(1)
}
