// Command robustbench reproduces the paper's evaluation figures and tables
// on the simulated reference machine.
//
// Usage:
//
//	robustbench                 # run every experiment
//	robustbench -exp fig7       # one experiment (fig1, table2, fig6..fig13, ablations, txn-modes)
//	robustbench -exp fig7 -format csv   # machine-readable series for plotting
//	robustbench -exp chaos      # fault-injection schedules on the real runtime
//	robustbench -list           # list experiment names
//	robustbench -obs :6060      # live metrics/pprof endpoint during the run
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"robustconf/internal/harness"
	"robustconf/internal/metrics"
	"robustconf/internal/obs"
)

func main() {
	exp := flag.String("exp", "", "experiment to run (default: all)")
	format := flag.String("format", "text", "output format: text or csv (figures only)")
	list := flag.Bool("list", false, "list experiment names")
	obsAddr := flag.String("obs", "", "serve the observability endpoint on this address during the run (e.g. :6060)")
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(append(append([]string{}, harness.Experiments...), "chaos"), "\n"))
		return
	}

	faults := &metrics.FaultCounters{}
	observer := obs.New(obs.Options{Faults: faults})
	if *obsAddr != "" {
		addr, stopSrv, err := observer.Serve(*obsAddr)
		if err != nil {
			fatal(err)
		}
		defer stopSrv()
		fmt.Printf("obs: serving http://%s/metrics (also /spans, /events, /debug/pprof/)\n", addr)
	}
	opts := harness.ChaosOptions{Observer: observer, Faults: faults}

	var out string
	var err error
	switch {
	case *exp == "":
		out, err = harness.RunAll()
	case *exp == "chaos":
		// The one experiment on the real runtime rather than the simulator:
		// every fault schedule, with telemetry attached.
		out, err = harness.RunChaosAllOpts(1, 6, 300, opts)
	default:
		out, err = harness.RunFormat(*exp, *format)
	}
	if err != nil {
		fmt.Fprint(os.Stdout, out)
		fatal(err)
	}
	fmt.Print(out)
	// Every report ends with the fault summary: zero counters assert the
	// run saw no runtime faults, non-zero ones (chaos) quantify them.
	if *exp == "chaos" {
		fmt.Print(observer.Report())
	} else {
		fmt.Printf("faults: %s\n", faults.Snapshot())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "robustbench:", err)
	os.Exit(1)
}
