// Command robustbench reproduces the paper's evaluation figures and tables
// on the simulated reference machine.
//
// Usage:
//
//	robustbench                 # run every experiment
//	robustbench -exp fig7       # one experiment (fig1, table2, fig6..fig13, ablations)
//	robustbench -exp fig7 -format csv   # machine-readable series for plotting
//	robustbench -list           # list experiment names
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"robustconf/internal/harness"
)

func main() {
	exp := flag.String("exp", "", "experiment to run (default: all)")
	format := flag.String("format", "text", "output format: text or csv (figures only)")
	list := flag.Bool("list", false, "list experiment names")
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(harness.Experiments, "\n"))
		return
	}
	var out string
	var err error
	if *exp == "" {
		out, err = harness.RunAll()
	} else {
		out, err = harness.RunFormat(*exp, *format)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "robustbench:", err)
		os.Exit(1)
	}
	fmt.Print(out)
}
