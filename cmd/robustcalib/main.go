// Command robustcalib runs the calibration phase of the configuration
// process (Section 5.2, step 1): it sweeps virtual-domain sizes for every
// data structure and workload on the simulated reference machine, prints
// the throughput curves, and reports the optimal sizes (the paper's
// Table 2).
package main

import (
	"flag"
	"fmt"
	"os"

	"robustconf/internal/config"
	"robustconf/internal/sim"
	"robustconf/internal/workload"
)

func main() {
	curves := flag.Bool("curves", false, "print the full calibration curves")
	flag.Parse()

	mixes := []workload.Mix{workload.C, workload.A, workload.D}
	fmt.Printf("%-10s %14s %14s %14s\n", "Structure", "Read-Only", "Read-Update", "Read-Insert")
	for _, kind := range []sim.StructureKind{sim.KindBTree, sim.KindFPTree, sim.KindBWTree, sim.KindHashMap} {
		fmt.Printf("%-10s", kind.Name())
		var cals []config.Calibration
		for _, mix := range mixes {
			cal, err := config.Calibrate(kind, mix, nil, nil)
			if err != nil {
				fmt.Fprintln(os.Stderr, "robustcalib:", err)
				os.Exit(1)
			}
			cals = append(cals, cal)
			fmt.Printf(" %14d", cal.OptimalSize)
		}
		fmt.Println()
		if *curves {
			for i, cal := range cals {
				fmt.Printf("  %s:\n", mixes[i].Name)
				for _, p := range cal.Curve {
					fmt.Printf("    size %4.0f → %8.1f MOp/s\n", p.X, p.Y)
				}
			}
		}
	}
}
