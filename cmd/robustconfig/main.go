// Command robustconfig runs the composition step of the configuration
// process for the paper's example scenarios (Figure 4): OLTP1
// (homogeneous), OLTP2 (isolated + ILP), and HTAP (shared heterogeneous).
//
// Usage:
//
//	robustconfig -scenario oltp2 -workers 192
//	robustconfig -scenario htap -run 2000 -obs :6060
//
// With -run the composed plan is materialised on the reference topology and
// actually started: real index structures are registered per instance, the
// given number of operations is driven through each, and the report ends
// with the runtime's per-domain telemetry and fault summary.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"sync"
	"time"

	"robustconf/internal/config"
	"robustconf/internal/core"
	"robustconf/internal/index"
	"robustconf/internal/index/btree"
	"robustconf/internal/index/bwtree"
	"robustconf/internal/index/fptree"
	"robustconf/internal/index/hashmap"
	"robustconf/internal/metrics"
	"robustconf/internal/obs"
	"robustconf/internal/sim"
	"robustconf/internal/topology"
	"robustconf/internal/workload"
)

func scenario(name string) ([]config.Instance, error) {
	switch name {
	case "oltp1":
		// Homogeneous: all indexes write-heavy.
		return []config.Instance{
			{Name: "orders-idx", Kind: sim.KindFPTree, Mix: workload.A, Load: 1},
			{Name: "stock-idx", Kind: sim.KindFPTree, Mix: workload.A, Load: 1},
			{Name: "customer-idx", Kind: sim.KindFPTree, Mix: workload.A, Load: 1},
			{Name: "district-idx", Kind: sim.KindFPTree, Mix: workload.A, Load: 1},
		}, nil
	case "oltp2":
		// Mixed OLTP with two crucial indexes isolated (Fig. 4.2).
		return []config.Instance{
			{Name: "lock-table", Kind: sim.KindHashMap, Mix: workload.A, Load: 0.5, Crucial: true},
			{Name: "hot-orders", Kind: sim.KindFPTree, Mix: workload.A, Load: 0.5, Crucial: true},
			{Name: "write-idx-1", Kind: sim.KindFPTree, Mix: workload.A, Load: 1},
			{Name: "write-idx-2", Kind: sim.KindFPTree, Mix: workload.A, Load: 1},
			{Name: "read-idx-1", Kind: sim.KindFPTree, Mix: workload.C, Load: 1},
			{Name: "read-idx-2", Kind: sim.KindFPTree, Mix: workload.C, Load: 1},
			{Name: "read-idx-3", Kind: sim.KindFPTree, Mix: workload.C, Load: 1},
		}, nil
	case "htap":
		// Shared heterogeneous: write-heavy, read-update, read-only.
		return []config.Instance{
			{Name: "oltp-idx-1", Kind: sim.KindFPTree, Mix: workload.A, Load: 1},
			{Name: "oltp-idx-2", Kind: sim.KindFPTree, Mix: workload.A, Load: 1, CoLocateWith: "oltp-idx-1"},
			{Name: "fresh-idx", Kind: sim.KindBWTree, Mix: workload.D, Load: 1},
			{Name: "olap-idx-1", Kind: sim.KindBTree, Mix: workload.C, Load: 1},
			{Name: "olap-idx-2", Kind: sim.KindBTree, Mix: workload.C, Load: 1},
		}, nil
	default:
		return nil, fmt.Errorf("unknown scenario %q (have oltp1, oltp2, htap)", name)
	}
}

// newIndexForKind builds the real structure implementation matching the
// simulator kind an instance was planned with.
func newIndexForKind(k sim.StructureKind) index.Index {
	switch k {
	case sim.KindBTree:
		return btree.New()
	case sim.KindBWTree:
		return bwtree.New()
	case sim.KindHashMap:
		return hashmap.New()
	default:
		return fptree.New()
	}
}

// runPlan materialises the composed plan, starts the runtime with real
// structures registered for every instance, drives ops operations per
// instance through it, and prints throughput plus the observer's telemetry
// and fault report.
func runPlan(plan *config.Plan, instances []config.Instance, ops int, records uint64, obsAddr string, obsTrace int, signalsOn bool, signalsEvery time.Duration, signalsStream string) error {
	sockets := (plan.WorkersUsed() + 47) / 48
	if sockets < 1 {
		sockets = 1
	}
	m, err := topology.Restricted(sockets)
	if err != nil {
		return err
	}
	cfg, err := config.Materialise(plan, m)
	if err != nil {
		return err
	}
	faults := &metrics.FaultCounters{}
	observer := obs.New(obs.Options{TraceEvery: obsTrace, Faults: faults})
	if obsAddr != "" {
		addr, stopSrv, err := observer.Serve(obsAddr)
		if err != nil {
			return err
		}
		defer stopSrv()
		fmt.Printf("obs: serving http://%s/metrics (also /signals, /spans, /events, /debug/pprof/)\n", addr)
	}
	if signalsOn {
		stopSampler, err := observer.StartSamplerToPath(signalsEvery, signalsStream)
		if err != nil {
			return err
		}
		defer stopSampler()
	}
	cfg.Faults = faults
	cfg.Obs = observer

	structures := make(map[string]any, len(instances))
	for _, inst := range instances {
		idx := newIndexForKind(inst.Kind)
		for _, k := range workload.LoadKeys(records) {
			idx.Insert(k, k, nil)
		}
		structures[inst.Name] = idx
	}
	rt, err := core.Start(cfg, structures)
	if err != nil {
		return err
	}
	defer rt.Stop()

	var wg sync.WaitGroup
	errs := make(chan error, len(instances))
	start := time.Now()
	for c, inst := range instances {
		wg.Add(1)
		go func(c int, inst config.Instance) {
			defer wg.Done()
			session, err := rt.NewSession(c%m.LogicalCPUs(), 14)
			if err != nil {
				errs <- err
				return
			}
			defer session.Close()
			gen, err := workload.NewGenerator(inst.Mix, records, uint64(c), int64(c)+1)
			if err != nil {
				errs <- err
				return
			}
			for i := 0; i < ops; i++ {
				op := gen.Next()
				var err error
				if op.Type == workload.OpRead {
					// Reads are classified at submit time so the plan's
					// calibrated read policy takes effect (bypass/adaptive
					// instances serve these locally when validation holds).
					_, err = session.SubmitRead(core.Task{Structure: inst.Name, Op: func(ds any) any {
						v, _ := ds.(index.Index).Get(op.Key, nil)
						return v
					}})
				} else {
					_, err = session.Invoke(core.Task{Structure: inst.Name, Op: func(ds any) any {
						tr := ds.(index.Index)
						if op.Type == workload.OpUpdate {
							return tr.Update(op.Key, op.Val, nil)
						}
						return tr.Insert(op.Key, op.Val, nil)
					}})
				}
				if err != nil {
					errs <- err
					return
				}
			}
		}(c, inst)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			return err
		}
	}
	elapsed := time.Since(start)
	rt.Stop() // final worker-shard flush before the report (defer is a no-op then)
	total := len(instances) * ops
	fmt.Printf("run: %d ops in %v → %.0f ops/s across %d instances\n",
		total, elapsed.Round(time.Millisecond), float64(total)/elapsed.Seconds(), len(instances))
	fmt.Print(observer.Report())
	return nil
}

func main() {
	name := flag.String("scenario", "oltp2", "scenario: oltp1, oltp2, htap")
	workers := flag.Int("workers", 192, "available worker threads")
	runOps := flag.Int("run", 0, "materialise the plan and drive this many ops per instance through the real runtime (0 = plan only)")
	records := flag.Uint64("records", 10_000, "pre-loaded records per instance when -run is set")
	obsAddr := flag.String("obs", "", "serve the observability endpoint on this address during -run (e.g. :6060)")
	obsTrace := flag.Int("obs-trace", 0, "commit every Nth sampled task span to the trace ring (0 = off)")
	signals := flag.Bool("signals", false, "run the continuous-signal sampler during -run (adds /signals + gauges, report block)")
	signalsEvery := flag.Duration("signals-every", obs.DefaultSamplerEvery, "sampler cadence (with -signals)")
	signalsStream := flag.String("signals-stream", "", "stream per-tick domain signals as NDJSON to this file (implies -signals)")
	flag.Parse()

	instances, err := scenario(*name)
	if err != nil {
		fmt.Fprintln(os.Stderr, "robustconfig:", err)
		os.Exit(1)
	}
	plan, err := config.Compose(instances, *workers, nil)
	if err != nil {
		fmt.Fprintln(os.Stderr, "robustconfig:", err)
		os.Exit(1)
	}
	fmt.Printf("scenario %s on %d workers → %s composition, %d domains, %d workers used\n",
		*name, *workers, plan.Kind, len(plan.Domains), plan.WorkersUsed())
	for i, d := range plan.Domains {
		tag := ""
		if d.Isolated {
			tag = " [isolated]"
		}
		fmt.Printf("  domain %2d: %3d workers%s ← %s\n", i, d.Size, tag, strings.Join(d.Instances, ", "))
	}
	fmt.Println("calibrated sizes:")
	for _, inst := range instances {
		fmt.Printf("  %-14s %d\n", inst.Name, plan.CalibratedSizes[inst.Name])
	}
	if *runOps > 0 {
		if err := runPlan(plan, instances, *runOps, *records, *obsAddr, *obsTrace,
			*signals || *signalsStream != "", *signalsEvery, *signalsStream); err != nil {
			fmt.Fprintln(os.Stderr, "robustconfig:", err)
			os.Exit(1)
		}
	}
}
