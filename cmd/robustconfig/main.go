// Command robustconfig runs the composition step of the configuration
// process for the paper's example scenarios (Figure 4): OLTP1
// (homogeneous), OLTP2 (isolated + ILP), and HTAP (shared heterogeneous).
//
// Usage:
//
//	robustconfig -scenario oltp2 -workers 192
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"robustconf/internal/config"
	"robustconf/internal/sim"
	"robustconf/internal/workload"
)

func scenario(name string) ([]config.Instance, error) {
	switch name {
	case "oltp1":
		// Homogeneous: all indexes write-heavy.
		return []config.Instance{
			{Name: "orders-idx", Kind: sim.KindFPTree, Mix: workload.A, Load: 1},
			{Name: "stock-idx", Kind: sim.KindFPTree, Mix: workload.A, Load: 1},
			{Name: "customer-idx", Kind: sim.KindFPTree, Mix: workload.A, Load: 1},
			{Name: "district-idx", Kind: sim.KindFPTree, Mix: workload.A, Load: 1},
		}, nil
	case "oltp2":
		// Mixed OLTP with two crucial indexes isolated (Fig. 4.2).
		return []config.Instance{
			{Name: "lock-table", Kind: sim.KindHashMap, Mix: workload.A, Load: 0.5, Crucial: true},
			{Name: "hot-orders", Kind: sim.KindFPTree, Mix: workload.A, Load: 0.5, Crucial: true},
			{Name: "write-idx-1", Kind: sim.KindFPTree, Mix: workload.A, Load: 1},
			{Name: "write-idx-2", Kind: sim.KindFPTree, Mix: workload.A, Load: 1},
			{Name: "read-idx-1", Kind: sim.KindFPTree, Mix: workload.C, Load: 1},
			{Name: "read-idx-2", Kind: sim.KindFPTree, Mix: workload.C, Load: 1},
			{Name: "read-idx-3", Kind: sim.KindFPTree, Mix: workload.C, Load: 1},
		}, nil
	case "htap":
		// Shared heterogeneous: write-heavy, read-update, read-only.
		return []config.Instance{
			{Name: "oltp-idx-1", Kind: sim.KindFPTree, Mix: workload.A, Load: 1},
			{Name: "oltp-idx-2", Kind: sim.KindFPTree, Mix: workload.A, Load: 1, CoLocateWith: "oltp-idx-1"},
			{Name: "fresh-idx", Kind: sim.KindBWTree, Mix: workload.D, Load: 1},
			{Name: "olap-idx-1", Kind: sim.KindBTree, Mix: workload.C, Load: 1},
			{Name: "olap-idx-2", Kind: sim.KindBTree, Mix: workload.C, Load: 1},
		}, nil
	default:
		return nil, fmt.Errorf("unknown scenario %q (have oltp1, oltp2, htap)", name)
	}
}

func main() {
	name := flag.String("scenario", "oltp2", "scenario: oltp1, oltp2, htap")
	workers := flag.Int("workers", 192, "available worker threads")
	flag.Parse()

	instances, err := scenario(*name)
	if err != nil {
		fmt.Fprintln(os.Stderr, "robustconfig:", err)
		os.Exit(1)
	}
	plan, err := config.Compose(instances, *workers, nil)
	if err != nil {
		fmt.Fprintln(os.Stderr, "robustconfig:", err)
		os.Exit(1)
	}
	fmt.Printf("scenario %s on %d workers → %s composition, %d domains, %d workers used\n",
		*name, *workers, plan.Kind, len(plan.Domains), plan.WorkersUsed())
	for i, d := range plan.Domains {
		tag := ""
		if d.Isolated {
			tag = " [isolated]"
		}
		fmt.Printf("  domain %2d: %3d workers%s ← %s\n", i, d.Size, tag, strings.Join(d.Instances, ", "))
	}
	fmt.Println("calibrated sizes:")
	for _, inst := range instances {
		fmt.Printf("  %-14s %d\n", inst.Name, plan.CalibratedSizes[inst.Name])
	}
}
