// Command robustserved serves the delegation runtime over TCP: the network
// front end of internal/server wired to a sharded index composition, so
// remote clients (robustconf/client, robustycsb -addr) drive the same
// two-phase batched sweeps as in-process sessions — one pipelined network
// batch per delegation burst.
//
// Usage:
//
//	robustserved -addr :7070 -structure fptree -shards 4 -records 100000
//	robustserved -addr :0 -structure hashmap -obs :6060 -signals
//
// The session pool defaults to what the composition can absorb (every
// session reserves -burst slots per domain; a domain of w workers exposes
// w×15), mirroring config.RecommendServer. SIGINT/SIGTERM drain
// gracefully: the listener closes, in-flight pipelined batches execute and
// flush, then the pool and runtime come down.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"robustconf"
	"robustconf/internal/delegation"
	"robustconf/internal/index"
	"robustconf/internal/index/btree"
	"robustconf/internal/index/bwtree"
	"robustconf/internal/index/fptree"
	"robustconf/internal/index/hashmap"
	"robustconf/internal/metrics"
	"robustconf/internal/server"
	"robustconf/internal/workload"
)

func main() {
	addr := flag.String("addr", ":7070", "listen address (:0 picks a free port)")
	structure := flag.String("structure", "fptree", "btree, fptree, bwtree, hashmap")
	shards := flag.Int("shards", 4, "structure shards keys are consistent-hashed over")
	domain := flag.Int("domain", 0, "virtual domain size in workers (0 = one domain over all CPUs)")
	records := flag.Uint64("records", 100_000, "pre-loaded records")
	sessions := flag.Int("sessions", 0, "session pool size (0 = derive from slot capacity)")
	burst := flag.Int("burst", robustconf.PaperBurstSize, "per-session burst window")
	pipeline := flag.Int("pipeline", server.DefaultMaxPipeline, "max requests decoded into one batch per connection")
	stripe := flag.Int("stripe", 1, "max pooled sessions one batch widens across (1 = single sliding window)")
	acquireTimeout := flag.Duration("acquire-timeout", server.DefaultAcquireTimeout, "session-lease deadline before BUSY")
	writeTimeout := flag.Duration("write-timeout", server.DefaultWriteTimeout, "per-response-run write deadline (slow readers are dropped)")
	tenantOps := flag.Int("tenant-ops", 0, "per-tenant in-flight op quota (0 = unlimited)")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "graceful shutdown bound")
	obsAddr := flag.String("obs", "", "serve the observability endpoint on this address (e.g. :6060)")
	signals := flag.Bool("signals", false, "run the continuous-signal sampler (adds /signals + server-rate gauges)")
	signalsEvery := flag.Duration("signals-every", robustconf.DefaultSamplerEvery, "sampler cadence (with -signals)")
	flag.Parse()

	if *shards < 1 {
		fatal(fmt.Errorf("-shards must be ≥ 1"))
	}
	newIndex := map[string]func() index.Index{
		"btree":   func() index.Index { return btree.New() },
		"fptree":  func() index.Index { return fptree.New() },
		"bwtree":  func() index.Index { return bwtree.New() },
		"hashmap": func() index.Index { return hashmap.New() },
	}[*structure]
	if newIndex == nil {
		fatal(fmt.Errorf("unknown structure %q", *structure))
	}

	machine := robustconf.Machine(1)
	size := *domain
	if size <= 0 {
		size = machine.LogicalCPUs()
	}
	var domains []robustconf.Domain
	for lo := 0; lo < machine.LogicalCPUs(); lo += size {
		hi := lo + size
		if hi > machine.LogicalCPUs() {
			hi = machine.LogicalCPUs()
		}
		domains = append(domains, robustconf.Domain{
			Name: fmt.Sprintf("d%d", len(domains)),
			CPUs: robustconf.CPURange(lo, hi),
		})
	}

	// Shards spread round-robin over the domains; the shard names seed the
	// server's consistent-hash ring, and building the same ring here lets
	// the preload place each key on the shard the server will route it to.
	shardNames := make([]string, *shards)
	assignment := map[string]int{}
	registered := map[string]any{}
	indexes := map[string]index.Index{}
	for i := range shardNames {
		name := fmt.Sprintf("shard%d", i)
		shardNames[i] = name
		assignment[name] = i % len(domains)
		idx := newIndex()
		registered[name] = idx
		indexes[name] = idx
	}
	router, err := server.NewRouter(shardNames)
	if err != nil {
		fatal(err)
	}
	for _, k := range workload.LoadKeys(*records) {
		indexes[router.Lookup(k)].Insert(k, k, nil)
	}

	faults := &metrics.FaultCounters{}
	observer := robustconf.NewObserver(robustconf.ObserverOptions{Faults: faults})
	if *obsAddr != "" {
		oaddr, stopSrv, err := observer.Serve(*obsAddr)
		if err != nil {
			fatal(err)
		}
		defer stopSrv()
		fmt.Printf("obs: serving http://%s/metrics (also /signals, /spans, /events, /debug/pprof/)\n", oaddr)
	}
	if *signals {
		stopSampler, err := observer.StartSamplerToPath(*signalsEvery, "")
		if err != nil {
			fatal(err)
		}
		defer stopSampler()
	}

	rt, err := robustconf.Start(robustconf.Config{
		Machine:    machine,
		Domains:    domains,
		Assignment: assignment,
		Faults:     faults,
		Obs:        observer,
		BatchExec:  robustconf.BatchExecConfig{Enabled: true, Width: delegation.SlotsPerBuffer},
	}, registered)
	if err != nil {
		fatal(err)
	}
	defer rt.Stop()

	// Pool sizing mirrors config.RecommendServer: the smallest domain's
	// slot capacity bounds how many sessions can hold a full burst there.
	nSessions := *sessions
	if nSessions <= 0 {
		minSize := domains[0].CPUs.Len()
		for _, d := range domains[1:] {
			if d.CPUs.Len() < minSize {
				minSize = d.CPUs.Len()
			}
		}
		nSessions = minSize * delegation.SlotsPerBuffer / *burst
		if nSessions < 1 {
			nSessions = 1
		}
	}

	srv, err := server.Listen(*addr, server.Config{
		Runtime:        rt,
		Shards:         shardNames,
		Sessions:       nSessions,
		Burst:          *burst,
		MaxPipeline:    *pipeline,
		Stripe:         *stripe,
		AcquireTimeout: *acquireTimeout,
		WriteTimeout:   *writeTimeout,
		TenantOps:      *tenantOps,
		Obs:            observer,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("robustserved: serving %s (%s ×%d shards over %d domains, %d sessions, burst %d, pipeline ≤%d)\n",
		srv.Addr(), *structure, *shards, len(domains), nSessions, *burst, *pipeline)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("robustserved: draining…")
	if err := srv.Close(*drainTimeout); err != nil {
		fmt.Fprintln(os.Stderr, "robustserved: drain:", err)
	}
	st := srv.Stats()
	fmt.Printf("robustserved: served %d ops in %d batches over %d connections (pipeline max %d, busy %d, quota %d)\n",
		st.Ops, st.Batches, st.ConnsAccepted, st.PipelineMax, st.BusyRejects, st.QuotaRejects)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "robustserved:", err)
	os.Exit(1)
}
