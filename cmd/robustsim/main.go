// Command robustsim inspects the simulated reference machine and runs a
// single simulation point with explicit parameters — a debugging lens into
// the cost model behind the benchmark harness.
//
// Usage:
//
//	robustsim -topology
//	robustsim -kind fptree -mix a -strategy opt -threads 384 -domain 24
//	robustsim -kind hashmap -mix a -sweep      # strategies × system sizes
//	robustsim -chaos all                       # fault-injection schedules
//	robustsim -chaos worker-kill -chaos-seed 7
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"robustconf/internal/harness"
	"robustconf/internal/metrics"
	"robustconf/internal/obs"
	"robustconf/internal/sim"
	"robustconf/internal/topology"
	"robustconf/internal/workload"
)

func main() {
	topo := flag.Bool("topology", false, "print the reference machine topology")
	sweep := flag.Bool("sweep", false, "print a strategies × system-sizes throughput table")
	kindName := flag.String("kind", "fptree", "structure: btree, fptree, bwtree, hashmap")
	mixName := flag.String("mix", "a", "workload: a (read-update), c (read-only), d (read-insert)")
	stratName := flag.String("strategy", "opt", "strategy: opt, sn-numa, sn-thread, se-numa, se")
	threads := flag.Int("threads", 384, "system size in threads (48 per socket)")
	domain := flag.Int("domain", 24, "virtual domain size (opt strategy)")
	instances := flag.Int("instances", 0, "structure instances (0 = one per domain)")
	chaos := flag.String("chaos", "", "run a chaos schedule against the real runtime: all, task-panic, worker-kill, worker-stall, sweep-delay, stop-post, mixed")
	chaosSeed := flag.Int64("chaos-seed", 1, "fault-injection seed (chaos mode)")
	chaosSessions := flag.Int("chaos-sessions", 6, "concurrent client sessions (chaos mode)")
	chaosTasks := flag.Int("chaos-tasks", 300, "tasks per session (chaos mode)")
	obsAddr := flag.String("obs", "", "serve the observability endpoint on this address (e.g. :6060; chaos mode)")
	obsTrace := flag.Int("obs-trace", 0, "commit every Nth sampled task span to the trace ring (0 = off)")
	obsHold := flag.Bool("obs-hold", false, "keep the process (and the -obs endpoint) alive after the chaos run until interrupted")
	signals := flag.Bool("signals", false, "run the continuous-signal sampler during chaos (adds /signals + gauges, report block)")
	signalsEvery := flag.Duration("signals-every", obs.DefaultSamplerEvery, "sampler cadence (with -signals)")
	signalsStream := flag.String("signals-stream", "", "stream per-tick domain signals as NDJSON to this file (implies -signals)")
	flag.Parse()

	if *chaos != "" {
		runChaos(*chaos, *chaosSeed, *chaosSessions, *chaosTasks, *obsAddr, *obsTrace, *obsHold,
			*signals || *signalsStream != "", *signalsEvery, *signalsStream)
		return
	}

	if *topo {
		m := topology.MC990X()
		fmt.Println(m)
		fmt.Println("NUMA latencies (ns) by level:")
		for l := 0; l < m.NUMALevels(); l++ {
			fmt.Printf("  level %d: %.0f\n", l, m.LatencyOfLevel(l))
		}
		fmt.Println("socket distance matrix:")
		for i := range m.Sockets {
			fmt.Print("  ")
			for j := range m.Sockets {
				fmt.Printf("%d ", m.Distance(i, j))
			}
			fmt.Println()
		}
		return
	}

	kinds := map[string]sim.StructureKind{
		"btree": sim.KindBTree, "fptree": sim.KindFPTree,
		"bwtree": sim.KindBWTree, "hashmap": sim.KindHashMap,
	}
	kind, ok := kinds[*kindName]
	if !ok {
		fatal(fmt.Errorf("unknown kind %q", *kindName))
	}
	mixes := map[string]workload.Mix{"a": workload.A, "c": workload.C, "d": workload.D}
	mix, ok := mixes[*mixName]
	if !ok {
		fatal(fmt.Errorf("unknown mix %q", *mixName))
	}
	strats := map[string]sim.Strategy{
		"opt": sim.StratConfigured, "sn-numa": sim.StratSNNUMA,
		"sn-thread": sim.StratSNThread, "se-numa": sim.StratSENUMA, "se": sim.StratSE,
	}
	strat, ok := strats[*stratName]
	if !ok {
		fatal(fmt.Errorf("unknown strategy %q", *stratName))
	}

	if *sweep {
		fmt.Printf("%s / %s — MOp/s by strategy and system size (opt domain %d)\n", kind.Name(), mix.Name, *domain)
		fmt.Printf("%-16s", "strategy")
		sizes := []int{48, 96, 144, 192, 240, 288, 336, 384}
		for _, th := range sizes {
			fmt.Printf(" %8d", th)
		}
		fmt.Println()
		for _, st := range sim.AllStrategies {
			fmt.Printf("%-16s", st.Name())
			for _, th := range sizes {
				r, err := sim.Run(sim.Scenario{Kind: kind, Mix: mix, Strategy: st, Threads: th, OptDomainSize: *domain})
				if err != nil {
					fatal(err)
				}
				fmt.Printf(" %8.1f", r.ThroughputMOps)
			}
			fmt.Println()
		}
		return
	}

	r, err := sim.Run(sim.Scenario{
		Kind: kind, Mix: mix, Strategy: strat,
		Threads: *threads, OptDomainSize: *domain, Instances: *instances,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%s / %s / %s at %d threads\n", kind.Name(), mix.Name, strat.Name(), *threads)
	fmt.Printf("  layout:        %d domains × %d workers (span level %d), %d instances\n",
		r.Layout.Domains, r.Layout.DomainSize, r.Layout.SpanLevel, r.Instances)
	fmt.Printf("  throughput:    %.1f MOp/s%s\n", r.ThroughputMOps, limitedTag(r))
	fmt.Printf("  per-op cost:   %.0f ns (%s)\n", r.Cost.TotalNs(), r.TMAM.String())
	fmt.Printf("  L2 misses/op:  %.1f\n", r.L2MissesPerOp)
	fmt.Printf("  abort ratio:   %.2f (fallback %.4f)\n", r.AbortRatio, r.Cost.FallbackProb)
	fmt.Printf("  interconnect:  %.0f GB for the full run (%.0f B/op)\n", r.InterconnectGB, r.Cost.CrossBytes)
}

// runChaos drives the real delegation runtime (not the simulator) under a
// seeded fault schedule and reports whether every submitted future resolved.
// With -obs, every chaos runtime attaches to one observer behind a live
// endpoint, and the run ends with the per-domain telemetry + fault summary.
func runChaos(name string, seed int64, sessions, tasks int, obsAddr string, obsTrace int, hold bool, signalsOn bool, signalsEvery time.Duration, signalsStream string) {
	opts := harness.ChaosOptions{Faults: &metrics.FaultCounters{}}
	var observer *obs.Observer
	if obsAddr != "" || obsTrace > 0 || signalsOn {
		observer = obs.New(obs.Options{TraceEvery: obsTrace, Faults: opts.Faults})
		opts.Observer = observer
	}
	if obsAddr != "" {
		addr, stopSrv, err := observer.Serve(obsAddr)
		if err != nil {
			fatal(err)
		}
		defer stopSrv()
		fmt.Printf("obs: serving http://%s/metrics (also /signals, /spans, /events, /debug/pprof/)\n", addr)
	}
	if signalsOn {
		stopSampler, err := observer.StartSamplerToPath(signalsEvery, signalsStream)
		if err != nil {
			fatal(err)
		}
		defer stopSampler()
	}

	if name == "all" {
		out, err := harness.RunChaosAllOpts(seed, sessions, tasks, opts)
		fmt.Print(out)
		if err != nil {
			fatal(err)
		}
		fmt.Println("chaos: all schedules complete, no hung futures")
	} else {
		sched, err := harness.ChaosScheduleNamed(name)
		if err != nil {
			fatal(err)
		}
		r, err := harness.RunChaosOpts(sched, seed, sessions, tasks, opts)
		if err != nil {
			fatal(err)
		}
		fmt.Println(r)
		if !r.Complete() {
			fatal(fmt.Errorf("chaos %s: %d futures hung", name, r.Hangs))
		}
		fmt.Println("chaos: complete, no hung futures")
	}
	if observer != nil {
		fmt.Print(observer.Report())
	} else {
		fmt.Printf("faults: %s\n", opts.Faults.Snapshot())
	}
	if hold {
		fmt.Println("obs: holding endpoint open (interrupt to exit)")
		for {
			time.Sleep(time.Hour)
		}
	}
}

func limitedTag(r sim.Result) string {
	if r.BandwidthLimited {
		return " (bandwidth limited)"
	}
	return ""
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "robustsim:", err)
	os.Exit(1)
}
