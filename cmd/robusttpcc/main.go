// Command robusttpcc runs TPC-C New-Order and Payment transactions for real
// on the light-weight OLTP engine (delegated execution through the runtime)
// or on the direct-execution shared-nothing baseline, and reports measured
// throughput. It also prints the simulated Figure 13 point for the same
// parameters on the reference machine.
//
// Usage:
//
//	robusttpcc -engine delegated -mode whole-txn -warehouses 4 -terminals 4 -txns 2000
//
// The -mode flag selects the delegated engine's statement→task mapping:
// per-statement (pipelined statement futures), fused (same-domain multi-op
// tasks) or whole-txn (single-warehouse transactions as one task, the
// default).
//
// -wal DIR turns on per-domain write-ahead logging with periodic
// checkpoints (delegated engine only); -fsync picks the flush discipline
// (none, batch, always) and -checkpoint the snapshot cadence.
package main

import (
	"flag"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"robustconf/internal/core"
	"robustconf/internal/index"
	"robustconf/internal/index/bwtree"
	"robustconf/internal/index/fptree"
	"robustconf/internal/metrics"
	"robustconf/internal/obs"
	"robustconf/internal/oltp"
	"robustconf/internal/sim"
	"robustconf/internal/topology"
	"robustconf/internal/tpcc"
	"robustconf/internal/wal"
)

func main() {
	engine := flag.String("engine", "delegated", "engine: delegated or direct")
	mode := flag.String("mode", "whole-txn", "delegated statement→task mapping: per-statement, fused or whole-txn")
	tree := flag.String("tree", "fptree", "index structure: fptree or bwtree")
	warehouses := flag.Int("warehouses", 4, "TPC-C warehouses")
	customers := flag.Int("customers", 300, "customers per district (scaled down)")
	items := flag.Int("items", 1000, "items (scaled down)")
	terminals := flag.Int("terminals", 4, "concurrent terminals")
	txns := flag.Int("txns", 2000, "transactions per terminal")
	remote := flag.Float64("remote", 0.01, "remote transaction fraction")
	obsAddr := flag.String("obs", "", "serve the observability endpoint on this address during the run (delegated engine; e.g. :6060)")
	obsTrace := flag.Int("obs-trace", 0, "commit every Nth sampled task span to the trace ring (0 = off)")
	signals := flag.Bool("signals", false, "run the continuous-signal sampler during the run (adds /signals + gauges, report block)")
	signalsEvery := flag.Duration("signals-every", obs.DefaultSamplerEvery, "sampler cadence (with -signals)")
	signalsStream := flag.String("signals-stream", "", "stream per-tick domain signals as NDJSON to this file (implies -signals)")
	walDir := flag.String("wal", "", "directory for per-domain write-ahead logs (delegated engine; empty = durability off)")
	fsync := flag.String("fsync", "batch", "WAL flush discipline: none, batch or always")
	checkpoint := flag.Duration("checkpoint", 0, "WAL checkpoint cadence (0 = default)")
	flag.Parse()

	var newIndex func() index.Index
	var kind sim.StructureKind
	switch *tree {
	case "fptree":
		newIndex, kind = func() index.Index { return fptree.New() }, sim.KindFPTree
	case "bwtree":
		newIndex, kind = func() index.Index { return bwtree.New() }, sim.KindBWTree
	default:
		fmt.Fprintln(os.Stderr, "robusttpcc: unknown tree", *tree)
		os.Exit(1)
	}
	cfg := tpcc.Config{Warehouses: *warehouses, Customers: *customers, Items: *items}
	loader, err := tpcc.NewLoader(cfg, 1)
	if err != nil {
		fatal(err)
	}

	faults := &metrics.FaultCounters{}
	observer := obs.New(obs.Options{TraceEvery: *obsTrace, Faults: faults})
	if *obsAddr != "" {
		addr, stopSrv, err := observer.Serve(*obsAddr)
		if err != nil {
			fatal(err)
		}
		defer stopSrv()
		fmt.Printf("obs: serving http://%s/metrics (also /signals, /spans, /events, /debug/pprof/)\n", addr)
	}
	if *signals || *signalsStream != "" {
		stopSampler, err := observer.StartSamplerToPath(*signalsEvery, *signalsStream)
		if err != nil {
			fatal(err)
		}
		defer stopSampler()
	}

	var openStore func(id int) (tpcc.Store, func() error, error)
	var walEngine *oltp.Engine
	delegated := false
	switch *engine {
	case "direct":
		e, err := oltp.NewDirectEngine(cfg, newIndex)
		if err != nil {
			fatal(err)
		}
		if err := loader.Load(e); err != nil {
			fatal(err)
		}
		openStore = func(int) (tpcc.Store, func() error, error) {
			return e, func() error { return nil }, nil
		}
	case "delegated":
		delegated = true
		execMode, err := oltp.ParseMode(*mode)
		if err != nil {
			fatal(err)
		}
		m, err := topology.Restricted(1)
		if err != nil {
			fatal(err)
		}
		rc, err := oltp.EvenConfig(cfg, m)
		if err != nil {
			fatal(err)
		}
		rc.Faults = faults
		rc.Obs = observer
		if *walDir != "" {
			fmode, err := wal.ParseFsyncMode(*fsync)
			if err != nil {
				fatal(err)
			}
			rc.WAL = core.WALConfig{Dir: *walDir, Fsync: fmode, CheckpointEvery: *checkpoint}
		}
		e, err := oltp.NewEngineWithConfig(cfg, newIndex, rc)
		if err != nil {
			fatal(err)
		}
		defer e.Stop()
		walEngine = e
		boot, err := e.NewStore(0, 14)
		if err != nil {
			fatal(err)
		}
		if err := loader.Load(boot); err != nil {
			fatal(err)
		}
		if err := boot.Close(); err != nil {
			fatal(err)
		}
		openStore = func(id int) (tpcc.Store, func() error, error) {
			s, err := e.NewStoreMode(id%m.LogicalCPUs(), 14, execMode)
			if err != nil {
				return nil, nil, err
			}
			return s, s.Close, nil
		}
	default:
		fmt.Fprintln(os.Stderr, "robusttpcc: unknown engine", *engine)
		os.Exit(1)
	}

	var done atomic.Uint64
	var latency metrics.Histogram
	var wg sync.WaitGroup
	start := time.Now()
	errs := make(chan error, *terminals)
	for g := 0; g < *terminals; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			store, closeStore, err := openStore(g)
			if err != nil {
				errs <- err
				return
			}
			defer closeStore()
			term, err := tpcc.NewTerminal(cfg, store, 1+g%cfg.Warehouses, *remote, int64(g+1))
			if err != nil {
				errs <- err
				return
			}
			for i := 0; i < *txns; i++ {
				t0 := time.Now()
				if err := term.NextTransaction(); err != nil {
					errs <- err
					return
				}
				latency.Record(uint64(time.Since(t0).Nanoseconds()))
				done.Add(1)
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		fatal(err)
	}
	elapsed := time.Since(start)
	label := *engine
	if delegated {
		label += " mode=" + *mode
	}
	fmt.Printf("engine=%s tree=%s warehouses=%d terminals=%d remote=%.0f%%\n",
		label, *tree, *warehouses, *terminals, *remote*100)
	fmt.Printf("measured: %d txns in %v → %.0f txn/s on this host\n",
		done.Load(), elapsed.Round(time.Millisecond), float64(done.Load())/elapsed.Seconds())
	fmt.Printf("txn latency ns: %s\n", latency.String())
	if delegated {
		fmt.Print(observer.Report())
	}
	if walEngine != nil && *walDir != "" {
		var committed, replayed, recoveries uint64
		for _, d := range walEngine.Runtime().Domains() {
			st := d.WALStats()
			committed += st.Committed
			replayed += st.Replayed
			recoveries += st.Recoveries
		}
		fmt.Printf("wal: fsync=%s committed=%d recoveries=%d replayed=%d\n",
			*fsync, committed, recoveries, replayed)
	}

	// The corresponding Figure 13 point on the simulated reference machine.
	engKind := sim.EngineDelegated
	if *engine == "direct" {
		engKind = sim.EngineDirectSNNUMA
	}
	r, err := sim.RunTPCC(sim.TPCCScenario{
		Engine: engKind, Kind: kind, Threads: 384, Warehouses: 8, RemoteFrac: *remote,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("simulated reference machine (384 threads, 8 warehouses): %.0f Ktxn/s\n", r.KTxnPerSec)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "robusttpcc:", err)
	os.Exit(1)
}
