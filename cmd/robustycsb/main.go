// Command robustycsb runs YCSB workloads for real on this host, through the
// runtime under a chosen partitioning strategy — the measurement loop of the
// paper's Experiment 1 at laptop scale. It reports throughput and the
// delegation round-trip latency distribution, plus structure-specific
// counters (HTM aborts, CAS failures, bucket skew).
//
// Usage:
//
//	robustycsb -structure fptree -mix a -domain 24 -clients 4 -records 100000 -ops 50000
//	robustycsb -structure hashmap -mix c -domain 1 -trace /tmp/ops.trace
//	robustycsb -structure fptree -mix a -wal /tmp/wal -fsync batch
//
// -wal DIR turns on per-domain write-ahead logging with periodic
// checkpoints: writes become logged upserts that complete only after their
// group commit (-fsync none|batch|always, -checkpoint cadence).
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"robustconf"
	"robustconf/client"
	"robustconf/internal/harness"
	"robustconf/internal/index"
	"robustconf/internal/index/btree"
	"robustconf/internal/index/bwtree"
	"robustconf/internal/index/fptree"
	"robustconf/internal/index/hashmap"
	"robustconf/internal/metrics"
	"robustconf/internal/workload"
)

func main() {
	addr := flag.String("addr", "", "drive a robustserved server at this address over TCP instead of an in-process runtime")
	pipeline := flag.Int("pipeline", 16, "pipelining depth per connection (with -addr)")
	tenant := flag.String("tenant", "", "tenant name for server-side quota accounting (with -addr)")
	structure := flag.String("structure", "fptree", "btree, fptree, bwtree, hashmap")
	mixName := flag.String("mix", "a", "a (read-update), c (read-only), d (read-insert)")
	domain := flag.Int("domain", 24, "virtual domain size in workers")
	clients := flag.Int("clients", 4, "client threads")
	records := flag.Uint64("records", 100_000, "pre-loaded records")
	ops := flag.Int("ops", 50_000, "operations per client")
	burst := flag.Int("burst", robustconf.PaperBurstSize, "burst size (outstanding tasks per client)")
	readPolicy := flag.String("readpolicy", "delegate", "read path: delegate, bypass, adaptive")
	tracePath := flag.String("trace", "", "optional: write the generated op trace to this file first, then replay it")
	obsAddr := flag.String("obs", "", "serve the observability endpoint on this address during the run (e.g. :6060)")
	obsTrace := flag.Int("obs-trace", 0, "commit every Nth sampled task span to the trace ring (0 = off)")
	signals := flag.Bool("signals", false, "run the continuous-signal sampler during the run (adds /signals + gauges, report block)")
	signalsEvery := flag.Duration("signals-every", robustconf.DefaultSamplerEvery, "sampler cadence (with -signals)")
	signalsStream := flag.String("signals-stream", "", "stream per-tick domain signals as NDJSON to this file (implies -signals)")
	walDir := flag.String("wal", "", "directory for per-domain write-ahead logs (empty = durability off; needs -structure fptree or bwtree)")
	fsyncMode := flag.String("fsync", "batch", "WAL flush discipline: none, batch or always")
	checkpoint := flag.Duration("checkpoint", 0, "WAL checkpoint cadence (0 = default)")
	batchExec := flag.Int("batch-exec", 0, "interleaved sweep execution group width (0 = off, ≥2 = batch typed ops through index kernels with prefetch)")
	flag.Parse()

	// Network mode: the server owns the structures and the runtime; this
	// binary is only the driver, pipelining ops over TCP connections.
	if *addr != "" {
		mixes := map[string]workload.Mix{"a": workload.A, "c": workload.C, "d": workload.D}
		mix, ok := mixes[*mixName]
		if !ok {
			fatal(fmt.Errorf("unknown mix %q", *mixName))
		}
		runNetwork(*addr, *tenant, mix, *clients, *records, *ops, *pipeline)
		return
	}

	// With -wal the structure must be Durable (checkpoint + replay), so the
	// tree is wrapped in the harness's durable adapter; writes become
	// logged upserts whose futures resolve only after their group commit.
	var idx index.Index
	var wt *harness.WALTree
	switch *structure {
	case "btree":
		idx = btree.New()
	case "fptree":
		idx = fptree.New()
		if *walDir != "" {
			wt = harness.NewWALTree()
		}
	case "bwtree":
		idx = bwtree.New()
		if *walDir != "" {
			wt = harness.NewWALBwTree()
		}
	case "hashmap":
		idx = hashmap.New()
	default:
		fatal(fmt.Errorf("unknown structure %q", *structure))
	}
	if *walDir != "" && wt == nil {
		fatal(fmt.Errorf("-wal needs a durable structure (fptree or bwtree), not %q", *structure))
	}
	mixes := map[string]workload.Mix{"a": workload.A, "c": workload.C, "d": workload.D}
	mix, ok := mixes[*mixName]
	if !ok {
		fatal(fmt.Errorf("unknown mix %q", *mixName))
	}
	policy, err := robustconf.ParseReadPolicy(*readPolicy)
	if err != nil {
		fatal(err)
	}

	for _, k := range workload.LoadKeys(*records) {
		if wt != nil {
			wt.Set(k, k)
		} else {
			idx.Insert(k, k, nil)
		}
	}

	machine := robustconf.Machine(1)
	var domains []robustconf.Domain
	for lo := 0; lo < machine.LogicalCPUs(); lo += *domain {
		hi := lo + *domain
		if hi > machine.LogicalCPUs() {
			hi = machine.LogicalCPUs()
		}
		domains = append(domains, robustconf.Domain{
			Name: fmt.Sprintf("d%d", len(domains)),
			CPUs: robustconf.CPURange(lo, hi),
		})
	}
	faults := &metrics.FaultCounters{}
	observer := robustconf.NewObserver(robustconf.ObserverOptions{TraceEvery: *obsTrace, Faults: faults})
	if *obsAddr != "" {
		addr, stopSrv, err := observer.Serve(*obsAddr)
		if err != nil {
			fatal(err)
		}
		defer stopSrv()
		fmt.Printf("obs: serving http://%s/metrics (also /signals, /spans, /events, /debug/pprof/)\n", addr)
	}
	if *signals || *signalsStream != "" {
		stopSampler, err := observer.StartSamplerToPath(*signalsEvery, *signalsStream)
		if err != nil {
			fatal(err)
		}
		defer stopSampler()
	}
	rtCfg := robustconf.Config{
		Machine:      machine,
		Domains:      domains,
		Assignment:   map[string]int{"ycsb": 0},
		ReadPolicies: map[string]robustconf.ReadPolicy{"ycsb": policy},
		Faults:       faults,
		Obs:          observer,
	}
	if *batchExec >= 2 {
		rtCfg.BatchExec = robustconf.BatchExecConfig{Enabled: true, Width: *batchExec}
	}
	registered := map[string]any{"ycsb": idx}
	if wt != nil {
		fmode, err := robustconf.ParseFsyncMode(*fsyncMode)
		if err != nil {
			fatal(err)
		}
		rtCfg.WAL = robustconf.WALConfig{Dir: *walDir, Fsync: fmode, CheckpointEvery: *checkpoint}
		registered["ycsb"] = wt
	}
	rt, err := robustconf.Start(rtCfg, registered)
	if err != nil {
		fatal(err)
	}
	defer rt.Stop()

	// Optional trace: generate once, replay identically (the paper's
	// methodology for comparing strategies on the same operation stream).
	streams := make([][]workload.Op, *clients)
	for c := 0; c < *clients; c++ {
		gen, err := workload.NewGenerator(mix, *records, uint64(c), int64(c)+1)
		if err != nil {
			fatal(err)
		}
		if *tracePath != "" {
			path := fmt.Sprintf("%s.%d", *tracePath, c)
			f, err := os.Create(path)
			if err != nil {
				fatal(err)
			}
			if err := workload.WriteTrace(f, gen, *ops); err != nil {
				fatal(err)
			}
			f.Close()
			rf, err := os.Open(path)
			if err != nil {
				fatal(err)
			}
			tr, err := workload.NewTraceReader(rf)
			if err != nil {
				fatal(err)
			}
			for {
				op, ok := tr.Next()
				if !ok {
					break
				}
				streams[c] = append(streams[c], op)
			}
			rf.Close()
			if err := tr.Err(); err != nil {
				fatal(err)
			}
		} else {
			for i := 0; i < *ops; i++ {
				streams[c] = append(streams[c], gen.Next())
			}
		}
	}

	// The structure's domain has domainSize workers × 15 slots; clamp the
	// burst so all clients fit (the inbox bounds concurrent clients).
	effBurst := *burst
	if cap := domains[0].CPUs.Len() * 15 / *clients; cap < effBurst {
		effBurst = cap
		if effBurst < 1 {
			fatal(fmt.Errorf("domain of %d workers cannot serve %d clients", domains[0].CPUs.Len(), *clients))
		}
		fmt.Printf("note: burst clamped to %d (%d clients share a %d-worker domain)\n",
			effBurst, *clients, domains[0].CPUs.Len())
	}

	var latency metrics.Histogram
	var wg sync.WaitGroup
	start := time.Now()
	errs := make(chan error, *clients)
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			session, err := rt.NewSession(c%machine.LogicalCPUs(), effBurst)
			if err != nil {
				errs <- err
				return
			}
			defer session.Close()
			for _, op := range streams[c] {
				op := op
				t0 := time.Now()
				var err error
				switch {
				case op.Type == workload.OpRead && wt != nil:
					_, err = session.SubmitRead(robustconf.Task{Structure: "ycsb", Op: func(ds any) any {
						v, _ := ds.(*harness.WALTree).Get(op.Key)
						return v
					}})
				case op.Type == workload.OpRead:
					// Classified at submit time so the -readpolicy axis takes
					// effect: bypass/adaptive attempt the validated local read
					// and fall back to delegation when validation fails.
					_, err = session.SubmitRead(robustconf.Task{Structure: "ycsb", Op: func(ds any) any {
						v, _ := ds.(index.Index).Get(op.Key, nil)
						return v
					}})
				case wt != nil:
					// Logged upsert: the future resolves only after the
					// record's group commit, so a nil error means durable.
					_, err = session.Invoke(robustconf.Task{
						Structure: "ycsb",
						Op: func(ds any) any {
							ds.(*harness.WALTree).Set(op.Key, op.Val)
							return nil
						},
						Log: func(dst []byte) []byte {
							return harness.AppendWALSet(dst, op.Key, op.Val)
						},
					})
				default:
					_, err = session.Invoke(robustconf.Task{Structure: "ycsb", Op: func(ds any) any {
						tr := ds.(index.Index)
						if op.Type == workload.OpUpdate {
							return tr.Update(op.Key, op.Val, nil)
						}
						return tr.Insert(op.Key, op.Val, nil)
					}})
				}
				latency.Record(uint64(time.Since(t0).Nanoseconds()))
				if err != nil {
					errs <- err
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		fatal(err)
	}
	elapsed := time.Since(start)

	total := float64(*clients * *ops)
	fmt.Printf("%s / %s: domains of %d workers, %d clients, burst %d, read policy %s (effective %s)\n",
		idx.Name(), mix.Name, *domain, *clients, effBurst, policy, rt.EffectiveReadPolicy("ycsb"))
	fmt.Printf("throughput: %.0f ops/s (%d ops in %v)\n",
		total/elapsed.Seconds(), int(total), elapsed.Round(time.Millisecond))
	fmt.Printf("latency ns: %s\n", latency.String())

	if wt == nil {
		switch s := idx.(type) {
		case *fptree.Tree:
			st := s.HTMStats()
			fmt.Printf("htm: commits=%d aborts=%d fallbacks=%d abort-ratio=%.4f\n",
				st.Commits.Load(), st.Aborts.Load(), st.Fallbacks.Load(), st.AbortRatio())
		case *bwtree.Tree:
			fmt.Printf("bwtree: cas-failures=%d consolidations=%d\n",
				s.CASFailures.Load(), s.Consolidations.Load())
		case *hashmap.Map:
			fmt.Printf("hashmap: reader-registrations=%d bucket-stddev=%.2f\n",
				s.ReaderRegistrations(), s.BucketSizeStdDev())
		}
	} else {
		var committed, replayed, recoveries uint64
		for _, d := range rt.Domains() {
			st := d.WALStats()
			committed += st.Committed
			replayed += st.Replayed
			recoveries += st.Recoveries
		}
		fmt.Printf("wal: fsync=%s committed=%d recoveries=%d replayed=%d\n",
			*fsyncMode, committed, recoveries, replayed)
	}
	fmt.Print(observer.Report())
}

// runNetwork drives a robustserved server: one connection per client
// goroutine, each keeping a window of `depth` requests pipelined so the
// server turns every network read into one delegation burst. Latency is
// recorded per flushed window (a depth-k window's round trip covers k ops).
func runNetwork(addr, tenant string, mix workload.Mix, clients int, records uint64, ops, depth int) {
	if depth < 1 {
		depth = 1
	}
	var latency metrics.Histogram
	var busy atomic.Uint64
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			gen, err := workload.NewGenerator(mix, records, uint64(c), int64(c)+1)
			if err != nil {
				errs <- err
				return
			}
			conn, err := client.DialTenant(addr, tenant)
			if err != nil {
				errs <- err
				return
			}
			defer conn.Close()
			drain := func() error {
				for conn.Pending() > 0 {
					if _, _, err := conn.Recv(); err != nil {
						if errors.Is(err, client.ErrBusy) {
							busy.Add(1)
							continue
						}
						return err
					}
				}
				return nil
			}
			sent := 0
			for sent < ops {
				window := depth
				if left := ops - sent; left < window {
					window = left
				}
				for i := 0; i < window; i++ {
					op := gen.Next()
					if op.Type == workload.OpRead {
						conn.QueueGet(op.Key)
					} else {
						conn.QueuePut(op.Key, op.Val)
					}
				}
				t0 := time.Now()
				if err := conn.Flush(); err != nil {
					errs <- err
					return
				}
				if err := drain(); err != nil {
					errs <- err
					return
				}
				ns := uint64(time.Since(t0).Nanoseconds())
				for i := 0; i < window; i++ {
					latency.Record(ns)
				}
				sent += window
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		fatal(err)
	}
	elapsed := time.Since(start)
	total := float64(clients * ops)
	fmt.Printf("network / %s: %s, %d clients, pipeline depth %d\n", mix.Name, addr, clients, depth)
	fmt.Printf("throughput: %.0f ops/s (%d ops in %v, %d busy-rejected)\n",
		total/elapsed.Seconds(), int(total), elapsed.Round(time.Millisecond), busy.Load())
	fmt.Printf("window latency ns: %s\n", latency.String())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "robustycsb:", err)
	os.Exit(1)
}
