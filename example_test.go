package robustconf_test

import (
	"fmt"

	"robustconf"
	"robustconf/internal/index/btree"
	"robustconf/internal/sim"
	"robustconf/internal/workload"
)

// ExampleStart shows the minimal lifecycle: configure two virtual domains,
// start the runtime, delegate a task, read its future.
func ExampleStart() {
	machine := robustconf.Machine(1)
	cfg := robustconf.Config{
		Machine: machine,
		Domains: []robustconf.Domain{
			{Name: "left", CPUs: robustconf.CPURange(0, 24)},
			{Name: "right", CPUs: robustconf.CPURange(24, 48)},
		},
		Assignment: map[string]int{"kv": 0},
	}
	rt, err := robustconf.Start(cfg, map[string]any{"kv": btree.New()})
	if err != nil {
		fmt.Println(err)
		return
	}
	defer rt.Stop()

	session, _ := rt.NewSession(0, robustconf.PaperBurstSize)
	defer session.Close()
	res, _ := session.Invoke(robustconf.Task{
		Structure: "kv",
		Op: func(ds any) any {
			t := ds.(*btree.Tree)
			t.Insert(7, 42, nil)
			v, _ := t.Get(7, nil)
			return v
		},
	})
	fmt.Println(res)
	// Output: 42
}

// ExampleCompose runs the paper's configuration process: calibration picks
// each instance's optimal domain size, composition assembles the domains.
func ExampleCompose() {
	plan, err := robustconf.Compose([]robustconf.PlanInstance{
		{Name: "writes", Kind: sim.KindFPTree, Mix: workload.A, Load: 1},
		{Name: "reads", Kind: sim.KindFPTree, Mix: workload.C, Load: 1},
	}, 96)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(plan.Kind)
	fmt.Println("write-heavy domain size:", plan.CalibratedSizes["writes"])
	fmt.Println("read-only domain size:", plan.CalibratedSizes["reads"])
	// Output:
	// heterogeneous
	// write-heavy domain size: 24
	// read-only domain size: 48
}

// ExampleRuntime_Migrate demonstrates online reconfiguration: the structure
// moves to another domain while the runtime keeps serving.
func ExampleRuntime_Migrate() {
	machine := robustconf.Machine(1)
	rt, _ := robustconf.Start(robustconf.Config{
		Machine: machine,
		Domains: []robustconf.Domain{
			{Name: "day", CPUs: robustconf.CPURange(0, 24)},
			{Name: "night", CPUs: robustconf.CPURange(24, 48)},
		},
		Assignment: map[string]int{"orders": 0},
	}, map[string]any{"orders": btree.New()})
	defer rt.Stop()

	before, _ := rt.AssignmentOf("orders")
	rt.Migrate("orders", 1)
	after, _ := rt.AssignmentOf("orders")
	fmt.Println(before, "->", after)
	// Output: 0 -> 1
}
