// HTAP example: let the configuration process itself lay out the machine.
// A mixed workload — write-heavy OLTP indexes, a fresh-data index, read-only
// analytical indexes, and a crucial lock table — is composed via calibration
// and the GAP-MQ ILP into heterogeneous virtual domains (the paper's
// Figure 4 scenario), then materialised and executed for real.
//
//	go run ./examples/htap
package main

import (
	"fmt"
	"log"
	"strings"

	"robustconf"
	"robustconf/internal/index/btree"
	"robustconf/internal/index/fptree"
	"robustconf/internal/index/hashmap"
	"robustconf/internal/sim"
	"robustconf/internal/workload"
)

func main() {
	// Describe the application's structure instances and their workloads.
	instances := []robustconf.PlanInstance{
		{Name: "lock-table", Kind: sim.KindHashMap, Mix: workload.A, Load: 0.4, Crucial: true},
		{Name: "orders-idx", Kind: sim.KindFPTree, Mix: workload.A, Load: 1},
		{Name: "orders-2nd", Kind: sim.KindFPTree, Mix: workload.A, Load: 0.6, CoLocateWith: "orders-idx"},
		{Name: "olap-idx-1", Kind: sim.KindBTree, Mix: workload.C, Load: 1},
		{Name: "olap-idx-2", Kind: sim.KindBTree, Mix: workload.C, Load: 1},
	}

	// Compose for a one-socket deployment (48 workers): calibration picks
	// each instance's optimal domain size, isolation carves out the lock
	// table, and the ILP assigns the rest.
	plan, err := robustconf.Compose(instances, 48)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("composition: %s, %d domains, %d workers used\n",
		plan.Kind, len(plan.Domains), plan.WorkersUsed())
	for i, d := range plan.Domains {
		tag := ""
		if d.Isolated {
			tag = " [isolated]"
		}
		fmt.Printf("  domain %d: %2d workers%s ← %s\n", i, d.Size, tag, strings.Join(d.Instances, ", "))
	}

	// Materialise onto the machine and boot the runtime with the real
	// structures.
	machine := robustconf.Machine(1)
	cfg, err := robustconf.Materialise(plan, machine)
	if err != nil {
		log.Fatal(err)
	}
	rt, err := robustconf.Start(cfg, map[string]any{
		"lock-table": hashmap.New(),
		"orders-idx": fptree.New(),
		"orders-2nd": fptree.New(),
		"olap-idx-1": btree.New(),
		"olap-idx-2": btree.New(),
	})
	if err != nil {
		log.Fatal(err)
	}
	defer rt.Stop()

	session, err := rt.NewSession(0, robustconf.PaperBurstSize)
	if err != nil {
		log.Fatal(err)
	}
	defer session.Close()

	// Transactional path: lock, write the primary and the co-located
	// secondary index, unlock — each step a data-aware task.
	for i := uint64(1); i <= 200; i++ {
		i := i
		if _, err := session.Invoke(robustconf.Task{Structure: "lock-table", Op: func(ds any) any {
			return ds.(*hashmap.Map).Insert(i, 1, nil)
		}}); err != nil {
			log.Fatal(err)
		}
		if _, err := session.Invoke(robustconf.Task{Structure: "orders-idx", Op: func(ds any) any {
			return ds.(*fptree.Tree).Insert(i, i*10, nil)
		}}); err != nil {
			log.Fatal(err)
		}
		if _, err := session.Invoke(robustconf.Task{Structure: "orders-2nd", Op: func(ds any) any {
			return ds.(*fptree.Tree).Insert(i*10, i, nil)
		}}); err != nil {
			log.Fatal(err)
		}
	}

	// Analytical path: bulk-load then scan the OLAP indexes.
	var ops []func(ds any) any
	for i := uint64(0); i < 5000; i++ {
		i := i
		ops = append(ops, func(ds any) any {
			return ds.(*btree.Tree).Insert(i, i, nil)
		})
	}
	if _, err := session.SubmitBulk("olap-idx-1", ops); err != nil {
		log.Fatal(err)
	}
	count, err := session.Invoke(robustconf.Task{Structure: "olap-idx-1", Op: func(ds any) any {
		n := 0
		ds.(*btree.Tree).Scan(1000, 1999, func(k, v uint64) bool { n++; return true }, nil)
		return n
	}})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("transactional path wrote 200 orders + secondary entries\n")
	fmt.Printf("analytical scan over olap-idx-1 visited %v keys inside its own domain\n", count)
	od, _ := rt.DomainOf("orders-idx")
	sd, _ := rt.DomainOf("orders-2nd")
	fmt.Printf("co-location honoured: orders-idx and orders-2nd share domain %q\n", od.Spec().Name)
	if od != sd {
		log.Fatal("co-location violated")
	}
}
