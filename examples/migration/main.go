// Migration example: online reconfiguration (the paper's future work,
// implemented as an extension). A hot structure is moved between virtual
// domains while client sessions keep hammering it — no drain, no restart,
// no lost operations. Domain statistics before and after show the execution
// really moved.
//
//	go run ./examples/migration
package main

import (
	"fmt"
	"log"
	"sync"
	"sync/atomic"

	"robustconf"
	"robustconf/internal/index/fptree"
)

func main() {
	machine := robustconf.Machine(1)
	cfg := robustconf.Config{
		Machine: machine,
		Domains: []robustconf.Domain{
			{Name: "day-domain", CPUs: robustconf.CPURange(0, 24)},
			{Name: "night-domain", CPUs: robustconf.CPURange(24, 48)},
		},
		Assignment: map[string]int{"orders": 0},
	}
	tree := fptree.New()
	rt, err := robustconf.Start(cfg, map[string]any{"orders": tree})
	if err != nil {
		log.Fatal(err)
	}
	defer rt.Stop()

	const clients, opsPer = 4, 3000
	var inserted atomic.Uint64
	var wg sync.WaitGroup
	migrated := make(chan struct{})

	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			session, err := rt.NewSession(c, 8)
			if err != nil {
				log.Fatal(err)
			}
			defer session.Close()
			for i := 0; i < opsPer; i++ {
				k := uint64(c*opsPer + i)
				res, err := session.Invoke(robustconf.Task{
					Structure: "orders",
					Op: func(ds any) any {
						return ds.(*fptree.Tree).Insert(k, k, nil)
					},
				})
				if err != nil {
					log.Fatal(err)
				}
				if res != true {
					log.Fatalf("insert %d failed", k)
				}
				inserted.Add(1)
			}
		}(c)
	}

	// Halfway through the load, move the structure to the other domain —
	// clients never notice.
	go func() {
		for inserted.Load() < clients*opsPer/2 {
		}
		before, _ := rt.AssignmentOf("orders")
		if err := rt.Migrate("orders", 1); err != nil {
			log.Fatal(err)
		}
		after, _ := rt.AssignmentOf("orders")
		fmt.Printf("migrated orders from domain %d to domain %d mid-load\n", before, after)
		close(migrated)
	}()

	wg.Wait()
	<-migrated

	fmt.Printf("all %d inserts completed across the migration; tree holds %d keys\n",
		inserted.Load(), tree.Len())
	for _, s := range rt.Stats() {
		fmt.Printf("  %s\n", s)
	}
}
