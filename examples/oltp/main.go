// OLTP example: run TPC-C New-Order and Payment transactions on the
// light-weight OLTP engine — each statement an asynchronous data-aware task
// delegated to the virtual domain owning the warehouse — and compare with
// the direct-execution shared-nothing baseline on the same database scale.
//
//	go run ./examples/oltp
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"robustconf"
	"robustconf/internal/index"
	"robustconf/internal/index/fptree"
	"robustconf/internal/oltp"
	"robustconf/internal/tpcc"
)

const (
	terminals   = 4
	txnsPerTerm = 500
	remoteFrac  = 0.10
)

func main() {
	cfg := tpcc.Config{Warehouses: 4, Customers: 200, Items: 1000}
	newIndex := func() index.Index { return fptree.New() }

	// --- The paper's engine: statements as delegated tasks --------------
	machine := robustconf.Machine(1)
	engine, err := oltp.NewEngine(cfg, newIndex, machine)
	if err != nil {
		log.Fatal(err)
	}
	defer engine.Stop()

	loader, err := tpcc.NewLoader(cfg, 1)
	if err != nil {
		log.Fatal(err)
	}
	boot, err := engine.NewStore(0, robustconf.PaperBurstSize)
	if err != nil {
		log.Fatal(err)
	}
	if err := loader.Load(boot); err != nil {
		log.Fatal(err)
	}
	boot.Close()

	delegatedTPS := drive(cfg, func(id int) (tpcc.Store, func() error, error) {
		s, err := engine.NewStore(id%machine.LogicalCPUs(), robustconf.PaperBurstSize)
		if err != nil {
			return nil, nil, err
		}
		return s, s.Close, nil
	})
	fmt.Printf("delegated engine:  %8.0f txn/s (%d terminals, %d warehouses, %.0f%% remote)\n",
		delegatedTPS, terminals, cfg.Warehouses, remoteFrac*100)

	// --- The baseline: direct execution ---------------------------------
	direct, err := oltp.NewDirectEngine(cfg, newIndex)
	if err != nil {
		log.Fatal(err)
	}
	loader2, _ := tpcc.NewLoader(cfg, 1)
	if err := loader2.Load(direct); err != nil {
		log.Fatal(err)
	}
	directTPS := drive(cfg, func(id int) (tpcc.Store, func() error, error) {
		return direct, func() error { return nil }, nil
	})
	fmt.Printf("direct baseline:   %8.0f txn/s\n", directTPS)

	// Verify both databases saw real work.
	orders := engine.Warehouse(1).Table(tpcc.Orders).Len()
	fmt.Printf("warehouse 1 accumulated %d orders under delegation\n", orders)
}

// drive runs the terminal fleet and returns transactions per second.
func drive(cfg tpcc.Config, open func(id int) (tpcc.Store, func() error, error)) float64 {
	var wg sync.WaitGroup
	start := time.Now()
	errs := make(chan error, terminals)
	for g := 0; g < terminals; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			store, closeStore, err := open(g)
			if err != nil {
				errs <- err
				return
			}
			defer closeStore()
			term, err := tpcc.NewTerminal(cfg, store, 1+g%cfg.Warehouses, remoteFrac, int64(g+1))
			if err != nil {
				errs <- err
				return
			}
			for i := 0; i < txnsPerTerm; i++ {
				if err := term.NextTransaction(); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			log.Fatal(err)
		}
	}
	return float64(terminals*txnsPerTerm) / time.Since(start).Seconds()
}
