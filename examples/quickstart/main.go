// Quickstart: partition a machine into virtual domains, assign data
// structures, and execute asynchronous data-aware tasks through the runtime.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"robustconf"
	"robustconf/internal/index/btree"
	"robustconf/internal/index/hashmap"
)

func main() {
	// A one-socket machine (24 cores / 48 SMT threads), split into two
	// virtual domains: half a socket each — a granularity no rigid
	// NUMA-partitioning scheme offers.
	machine := robustconf.Machine(1)
	cfg := robustconf.Config{
		Machine: machine,
		Domains: []robustconf.Domain{
			{Name: "orders-domain", CPUs: robustconf.CPURange(0, 24)},
			{Name: "sessions-domain", CPUs: robustconf.CPURange(24, 48)},
		},
		Assignment: map[string]int{
			"orders":   0, // B-Tree lives in the first domain
			"sessions": 1, // hash map in the second
		},
	}

	orders := btree.New()
	sessions := hashmap.New()
	rt, err := robustconf.Start(cfg, map[string]any{
		"orders":   orders,
		"sessions": sessions,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer rt.Stop()

	// A session is one client thread's connection; tasks route to the
	// domain owning their structure and results come back via futures.
	session, err := rt.NewSession(0, robustconf.PaperBurstSize)
	if err != nil {
		log.Fatal(err)
	}
	defer session.Close()

	// Asynchronous burst: delegate many inserts without waiting.
	var futures []*robustconf.Future
	for i := uint64(1); i <= 1000; i++ {
		i := i
		f, err := session.Submit(robustconf.Task{
			Structure: "orders",
			Op: func(ds any) any {
				return ds.(*btree.Tree).Insert(i, i*100, nil)
			},
		})
		if err != nil {
			log.Fatal(err)
		}
		futures = append(futures, f)
	}
	// Futures always complete — with the value or a typed error
	// (robustconf.PanicError, robustconf.ErrWorkerStopped); Result separates
	// the two channels.
	for i, f := range futures {
		if _, err := f.Result(); err != nil {
			log.Fatalf("insert %d: %v", i+1, err)
		}
	}

	// Synchronous invocation against the other domain.
	res, err := session.Invoke(robustconf.Task{
		Structure: "sessions",
		Op: func(ds any) any {
			m := ds.(*hashmap.Map)
			m.Insert(7, 77, nil)
			v, _ := m.Get(7, nil)
			return v
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("orders tree holds %d keys after the burst\n", orders.Len())
	fmt.Printf("sessions map answered %v through its own domain\n", res)

	// Offline reconfiguration (Section 2.2): drain, then restart with a
	// different partitioning — the data structures are untouched.
	rt2, err := rt.Reconfigure(robustconf.Config{
		Machine: machine,
		Domains: []robustconf.Domain{
			{Name: "everything", CPUs: robustconf.CPURange(0, 48)},
		},
		Assignment: map[string]int{"orders": 0, "sessions": 0},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer rt2.Stop()

	s2, err := rt2.NewSession(0, 4)
	if err != nil {
		log.Fatal(err)
	}
	defer s2.Close()
	v, err := s2.Invoke(robustconf.Task{
		Structure: "orders",
		Op: func(ds any) any {
			v, _ := ds.(*btree.Tree).Get(500, nil)
			return v
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after reconfiguration, key 500 still maps to %v\n", v)
}
