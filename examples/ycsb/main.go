// YCSB example: run the paper's three workloads (Read-Update, Read-Insert,
// Read-Only) against an FP-Tree through the runtime, reconfiguring the
// virtual domains between workloads to each one's calibrated optimal size —
// robust performance by configuration, on real hardware.
//
//	go run ./examples/ycsb
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"robustconf"
	"robustconf/internal/index"
	"robustconf/internal/index/fptree"
	"robustconf/internal/workload"
)

const (
	records      = 50_000
	opsPerClient = 20_000
	clients      = 4
)

func main() {
	machine := robustconf.Machine(1)
	tree := fptree.New()
	for _, k := range workload.LoadKeys(records) {
		tree.Insert(k, k, nil)
	}

	// The calibrated domain sizes from the paper's Table 2 (FP-Tree):
	// read-update and read-insert want half a socket, read-only a full
	// socket. We reconfigure between workloads instead of redesigning
	// the structure.
	phases := []struct {
		mix        workload.Mix
		domainSize int
	}{
		{workload.A, 24},
		{workload.D, 24},
		{workload.C, 48},
	}

	var rt *robustconf.Runtime
	for _, phase := range phases {
		cfg := configFor(machine, phase.domainSize)
		var err error
		if rt == nil {
			rt, err = robustconf.Start(cfg, map[string]any{"ycsb": tree})
		} else {
			rt, err = rt.Reconfigure(cfg) // offline reconfiguration
		}
		if err != nil {
			log.Fatal(err)
		}

		start := time.Now()
		var wg sync.WaitGroup
		errs := make(chan error, clients)
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				errs <- runClient(rt, phase.mix, c)
			}(c)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			if err != nil {
				log.Fatal(err)
			}
		}
		elapsed := time.Since(start)
		total := float64(clients * opsPerClient)
		fmt.Printf("%-18s domains of %2d workers: %8.0f ops/s (HTM aborts: %d, fallbacks: %d)\n",
			phase.mix.Name, phase.domainSize, total/elapsed.Seconds(),
			tree.HTMStats().Aborts.Load(), tree.HTMStats().Fallbacks.Load())
	}
	rt.Stop()
	fmt.Printf("tree finished with %d keys\n", tree.Len())
}

// configFor partitions the machine into domains of the given size; the tree
// lives in the first (the rest would host other structures in a real
// deployment).
func configFor(machine *robustconf.Topology, size int) robustconf.Config {
	var domains []robustconf.Domain
	for lo := 0; lo < machine.LogicalCPUs(); lo += size {
		hi := lo + size
		if hi > machine.LogicalCPUs() {
			hi = machine.LogicalCPUs()
		}
		domains = append(domains, robustconf.Domain{
			Name: fmt.Sprintf("d%d", len(domains)),
			CPUs: robustconf.CPURange(lo, hi),
		})
	}
	return robustconf.Config{
		Machine:    machine,
		Domains:    domains,
		Assignment: map[string]int{"ycsb": 0},
	}
}

// runClient drives one client session through the generator's stream.
func runClient(rt *robustconf.Runtime, mix workload.Mix, id int) error {
	gen, err := workload.NewGenerator(mix, records, uint64(id), int64(id)+1)
	if err != nil {
		return err
	}
	session, err := rt.NewSession(id, robustconf.PaperBurstSize)
	if err != nil {
		return err
	}
	defer session.Close()
	for i := 0; i < opsPerClient; i++ {
		op := gen.Next()
		_, err := session.Submit(robustconf.Task{
			Structure: "ycsb",
			Op: func(ds any) any {
				tr := ds.(index.Index)
				switch op.Type {
				case workload.OpRead:
					v, _ := tr.Get(op.Key, nil)
					return v
				case workload.OpUpdate:
					return tr.Update(op.Key, op.Val, nil)
				default:
					return tr.Insert(op.Key, op.Val, nil)
				}
			},
		})
		if err != nil {
			return err
		}
	}
	return nil
}
