module robustconf

go 1.22
