package robustconf_test

import (
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"robustconf"
	"robustconf/internal/index"
	"robustconf/internal/index/btree"
	"robustconf/internal/index/bwtree"
	"robustconf/internal/index/fptree"
	"robustconf/internal/index/hashmap"
	"robustconf/internal/workload"
)

// TestIntegrationStress exercises the whole stack at once: four structures
// in four domains, concurrent client sessions running mixed YCSB streams,
// occasional panicking tasks, live migrations bouncing a structure between
// domains, and a final offline reconfiguration — all while verifying no
// operation result is lost and final structure contents are consistent.
func TestIntegrationStress(t *testing.T) {
	machine := robustconf.Machine(1)
	cfg := robustconf.Config{
		Machine: machine,
		Domains: []robustconf.Domain{
			{Name: "q0", CPUs: robustconf.CPURange(0, 12)},
			{Name: "q1", CPUs: robustconf.CPURange(12, 24)},
			{Name: "q2", CPUs: robustconf.CPURange(24, 36)},
			{Name: "q3", CPUs: robustconf.CPURange(36, 48)},
		},
		Assignment: map[string]int{
			"btree": 0, "fptree": 1, "bwtree": 2, "hashmap": 3,
		},
	}
	structures := map[string]any{
		"btree":   btree.New(),
		"fptree":  fptree.New(),
		"bwtree":  bwtree.New(),
		"hashmap": hashmap.New(),
	}
	rt, err := robustconf.Start(cfg, structures)
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Stop()

	const records = 5000
	names := []string{"btree", "fptree", "bwtree", "hashmap"}
	// Load every structure through the runtime itself.
	boot, err := rt.NewSession(0, robustconf.PaperBurstSize)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range names {
		keys := workload.LoadKeys(records)
		_, err := boot.SubmitBulk(name, []func(ds any) any{func(ds any) any {
			idx := ds.(index.Index)
			for _, k := range keys {
				idx.Insert(k, k, nil)
			}
			return nil
		}})
		if err != nil {
			t.Fatal(err)
		}
	}
	boot.Close()

	const clients, opsPer = 6, 2000
	var completed atomic.Uint64
	var panicsSeen atomic.Uint64
	var wg, migrWG sync.WaitGroup
	stopMigrate := make(chan struct{})

	// Live migration in the background: bounce the hash map across domains.
	migrWG.Add(1)
	go func() {
		defer migrWG.Done()
		d := 0
		for {
			select {
			case <-stopMigrate:
				return
			default:
			}
			if err := rt.Migrate("hashmap", d%4); err != nil {
				t.Error(err)
				return
			}
			d++
		}
	}()

	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(c)))
			gen, err := workload.NewGenerator(workload.A, records, uint64(c), int64(c))
			if err != nil {
				t.Error(err)
				return
			}
			session, err := rt.NewSession(c*8%48, 8)
			if err != nil {
				t.Error(err)
				return
			}
			defer session.Close()
			for i := 0; i < opsPer; i++ {
				name := names[rng.Intn(len(names))]
				if rng.Intn(500) == 0 {
					// Inject a faulty task; the domain must survive and the
					// panic must come back through the error channel.
					_, err := session.Invoke(robustconf.Task{Structure: name, Op: func(any) any {
						panic("injected failure")
					}})
					var pe robustconf.PanicError
					if !errors.As(err, &pe) {
						t.Errorf("injected panic returned %v, want PanicError", err)
						return
					}
					panicsSeen.Add(1)
					continue
				}
				op := gen.Next()
				res, err := session.Invoke(robustconf.Task{Structure: name, Op: func(ds any) any {
					idx := ds.(index.Index)
					switch op.Type {
					case workload.OpRead:
						v, ok := idx.Get(op.Key, nil)
						if !ok {
							return "missing"
						}
						return v
					default:
						return idx.Update(op.Key, op.Val, nil)
					}
				}})
				if err != nil {
					t.Error(err)
					return
				}
				if res == "missing" || res == false {
					t.Errorf("client %d op %d: loaded key %d vanished", c, i, op.Key)
					return
				}
				completed.Add(1)
			}
		}(c)
	}
	wg.Wait()
	close(stopMigrate)
	migrWG.Wait()

	if panicsSeen.Load() == 0 {
		t.Error("stress never exercised the panic path")
	}
	wantOps := uint64(clients*opsPer) - panicsSeen.Load()
	if completed.Load() != wantOps {
		t.Errorf("completed %d ops, want %d", completed.Load(), wantOps)
	}

	// Offline reconfiguration at the end: merge everything, verify reads.
	rt2, err := rt.Reconfigure(robustconf.Config{
		Machine:    machine,
		Domains:    []robustconf.Domain{{Name: "all", CPUs: robustconf.CPURange(0, 48)}},
		Assignment: map[string]int{"btree": 0, "fptree": 0, "bwtree": 0, "hashmap": 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt2.Stop()
	s, _ := rt2.NewSession(0, 4)
	defer s.Close()
	for _, name := range names {
		res, err := s.Invoke(robustconf.Task{Structure: name, Op: func(ds any) any {
			return ds.(index.Index).Len()
		}})
		if err != nil {
			t.Fatal(err)
		}
		if res.(int) != records {
			t.Errorf("%s holds %v keys after stress, want %d", name, res, records)
		}
	}
}
