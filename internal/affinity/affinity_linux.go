//go:build linux

// Package affinity pins the calling OS thread to a CPU — the mechanism that
// turns a virtual domain's PlacePinned policy into a real scheduling
// constraint on Linux hosts (Section 5.1: "a worker thread placement policy
// … strict pinning to cores"). On other platforms Pin is a no-op.
package affinity

import (
	"fmt"
	"runtime"
	"syscall"
	"unsafe"
)

// cpuSet is a minimal cpu_set_t: 1024 bits.
type cpuSet [16]uint64

func (s *cpuSet) set(cpu int) {
	if cpu >= 0 && cpu < 1024 {
		s[cpu/64] |= 1 << uint(cpu%64)
	}
}

// Pin locks the calling goroutine to its OS thread and restricts that
// thread to the given host CPU. Returns an unpin function that releases the
// thread lock (the affinity mask persists for the thread's lifetime, which
// is fine: the worker owns it).
func Pin(cpu int) (unpin func(), err error) {
	if cpu < 0 || cpu >= 1024 {
		return nil, fmt.Errorf("affinity: cpu %d out of range", cpu)
	}
	runtime.LockOSThread()
	var set cpuSet
	set.set(cpu)
	// sched_setaffinity(0 /* this thread */, sizeof(set), &set)
	_, _, errno := syscall.RawSyscall(syscall.SYS_SCHED_SETAFFINITY,
		0, uintptr(unsafe.Sizeof(set)), uintptr(unsafe.Pointer(&set)))
	if errno != 0 {
		runtime.UnlockOSThread()
		return nil, fmt.Errorf("affinity: sched_setaffinity(%d): %v", cpu, errno)
	}
	return runtime.UnlockOSThread, nil
}
