//go:build !linux

package affinity

// Pin is a no-op off Linux: worker placement degrades to the Go scheduler,
// which matches the PlaceMigratable policy.
func Pin(cpu int) (unpin func(), err error) {
	return func() {}, nil
}
