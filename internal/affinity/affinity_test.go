package affinity

import (
	"runtime"
	"testing"
)

func TestPinAndCurrent(t *testing.T) {
	if runtime.GOOS != "linux" {
		t.Skip("pinning is Linux-only")
	}
	unpin, err := Pin(0)
	if err != nil {
		t.Fatalf("Pin(0): %v", err)
	}
	defer unpin()
	if cur := Current(); cur != 0 && cur != -1 {
		t.Errorf("Current() = %d after pinning to 0", cur)
	}
}

func TestPinValidation(t *testing.T) {
	if runtime.GOOS != "linux" {
		t.Skip("pinning is Linux-only")
	}
	if _, err := Pin(-1); err == nil {
		t.Error("negative cpu accepted")
	}
	if _, err := Pin(2048); err == nil {
		t.Error("out-of-range cpu accepted")
	}
}

func TestPinOfflineCPUFails(t *testing.T) {
	if runtime.GOOS != "linux" {
		t.Skip("pinning is Linux-only")
	}
	// CPU 1023 is almost certainly not present; sched_setaffinity with an
	// empty effective mask must fail rather than wedge the thread.
	if _, err := Pin(1023); err == nil {
		if runtime.NumCPU() < 1024 {
			t.Error("pinning to a non-existent CPU should fail")
		}
	}
}
