//go:build linux && amd64

package affinity

import (
	"syscall"
	"unsafe"
)

// sysGetcpu is the x86-64 getcpu syscall number; the syscall package does
// not export it.
const sysGetcpu = 309

// Current returns the CPU the calling thread is running on, or -1 when the
// getcpu syscall fails.
func Current() int {
	var c, n uint32
	_, _, errno := syscall.RawSyscall(sysGetcpu,
		uintptr(unsafe.Pointer(&c)), uintptr(unsafe.Pointer(&n)), 0)
	if errno != 0 {
		return -1
	}
	return int(c)
}
