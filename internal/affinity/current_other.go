//go:build !(linux && amd64)

package affinity

// Current is unknown on this platform.
func Current() int { return -1 }
