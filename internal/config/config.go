// Package config implements the paper's configuration process (Section 5.2,
// Figure 4): calibrating the optimal virtual-domain size of each data
// structure instance under its workload, then composing the calibrated
// sizes into a single configuration — homogeneous when one size fits all,
// isolated for crucial instances, and shared heterogeneous via the GAP-MQ
// integer linear program otherwise — and finally materialising the plan as
// a runtime configuration over a concrete machine.
package config

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"robustconf/internal/core"
	"robustconf/internal/delegation"
	"robustconf/internal/ilp"
	"robustconf/internal/metrics"
	"robustconf/internal/sim"
	"robustconf/internal/topology"
	"robustconf/internal/wal"
	"robustconf/internal/workload"
)

// DefaultSizes is the calibration sweep grid: thread-sized, half-socket,
// socket, and socket multiples of the reference machine — the granularities
// the paper's experiments use (Table 2 reports 1, 24 and 48).
var DefaultSizes = []int{1, 24, 48, 96, 192, 384}

// SlopeTolerance treats a throughput dip of up to 3% as measurement noise:
// calibration keeps growing the domain while throughput stays within this
// tolerance of the best seen, preferring larger domains as the ILP's
// objective does, and stops at the first clearly negative slope.
const SlopeTolerance = 0.03

// MeasureFunc measures the whole-machine throughput (MOp/s) of running the
// mix over the structure partitioned into domains of the given size. The
// default implementation simulates the reference machine; tests can inject
// synthetic curves.
type MeasureFunc func(kind sim.StructureKind, mix workload.Mix, size int) (float64, error)

// SimMeasure measures via the machine simulator at the full system size.
func SimMeasure(kind sim.StructureKind, mix workload.Mix, size int) (float64, error) {
	r, err := sim.Run(sim.Scenario{
		Kind:          kind,
		Mix:           mix,
		Strategy:      sim.StratConfigured,
		Threads:       384,
		OptDomainSize: size,
	})
	if err != nil {
		return 0, err
	}
	return r.ThroughputMOps, nil
}

// Calibration is the result of calibrating one (structure, workload) pair.
type Calibration struct {
	Kind        sim.StructureKind
	Mix         workload.Mix
	OptimalSize int
	// Curve is the measured throughput at each swept size (Fig. 4 step 1).
	Curve []metrics.Point
}

// Calibrate sweeps the sizes (ascending) and picks the optimal domain size:
// the largest size whose throughput is within SlopeTolerance of the best
// observed before the slope turns clearly negative.
func Calibrate(kind sim.StructureKind, mix workload.Mix, sizes []int, measure MeasureFunc) (Calibration, error) {
	if len(sizes) == 0 {
		sizes = DefaultSizes
	}
	if measure == nil {
		measure = SimMeasure
	}
	sorted := append([]int(nil), sizes...)
	sort.Ints(sorted)
	cal := Calibration{Kind: kind, Mix: mix}
	best := 0.0
	bestSize := 0
	for _, s := range sorted {
		thr, err := measure(kind, mix, s)
		if err != nil {
			return Calibration{}, fmt.Errorf("config: calibrating %s/%s at size %d: %w", kind.Name(), mix.Name, s, err)
		}
		cal.Curve = append(cal.Curve, metrics.Point{X: float64(s), Y: thr})
		switch {
		case thr > best:
			best, bestSize = thr, s
		case thr >= best*(1-SlopeTolerance):
			bestSize = s // flat within noise: prefer the larger domain
		default:
			// Clearly negative slope: stop growing (Fig. 4 step 1).
			cal.OptimalSize = bestSize
			return cal, nil
		}
	}
	cal.OptimalSize = bestSize
	return cal, nil
}

// Table2 calibrates every structure under the three YCSB workloads,
// reproducing the paper's Table 2.
func Table2(measure MeasureFunc) (map[sim.StructureKind]map[string]int, error) {
	out := map[sim.StructureKind]map[string]int{}
	for _, kind := range sim.AllKinds {
		out[kind] = map[string]int{}
		for _, mix := range []workload.Mix{workload.C, workload.A, workload.D} {
			cal, err := Calibrate(kind, mix, nil, measure)
			if err != nil {
				return nil, err
			}
			out[kind][mix.Name] = cal.OptimalSize
		}
	}
	return out, nil
}

// Instance is one data structure instance entering composition.
type Instance struct {
	Name string
	Kind sim.StructureKind
	Mix  workload.Mix
	// Load is the abstract expected load l_i of Equation 6; uniform loads
	// are fine for symmetric workloads.
	Load float64
	// Crucial marks instances needing predictable performance (e.g. a
	// lock table); they are isolated into dedicated domains (Fig. 4.2).
	Crucial bool
	// CoLocateWith optionally names another instance that must share this
	// instance's domain (e.g. a table's secondary index).
	CoLocateWith string
	// RetainsReferences marks instances whose task results hand back
	// references into long-lived buffers the client keeps (e.g. a structure
	// that returns views instead of copies). Batch-boundary arena recycling
	// is unsound for them — the reference would outlive the reset — so
	// RecommendArena disables the arena axis for any composition containing
	// one.
	RetainsReferences bool
}

// RecommendReadPolicy derives an instance's read-path policy from its
// workload mix, making the read policy a calibrated configuration axis
// alongside domain size: purely read-only mixes always bypass, read-mostly
// mixes bypass adaptively (so a drifting write fraction self-corrects at
// runtime), and write-heavy mixes keep every read delegated — bypass
// validation would mostly fail under them and each miss costs wasted
// attempts. The 15% threshold mirrors core's adaptive cutoff: YCSB-C (0%)
// bypasses, YCSB-D (5% inserts) adapts, YCSB-A (50% updates) delegates.
func RecommendReadPolicy(mix workload.Mix) core.ReadPolicy {
	switch wf := mix.WriteFraction(); {
	case wf == 0:
		return core.ReadBypass
	case wf <= 0.15:
		return core.ReadAdaptive
	default:
		return core.ReadDelegate
	}
}

// Durability is the composed durability configuration: the WAL fsync
// discipline and the checkpoint cadence, two further configuration axes
// alongside domain size and read policy. The zero value (FsyncNone, default
// cadence) is what read-only compositions get.
type Durability struct {
	Fsync           wal.FsyncMode
	CheckpointEvery time.Duration
}

// RecommendDurability derives the durability axes from the composed
// workload, following the RecommendReadPolicy precedent: read-only
// compositions log nothing, so syncing buys nothing (FsyncNone, relaxed
// checkpoints); write-heavy compositions group-commit with fsync per batch
// and checkpoint tightly, bounding the replay tail a crash leaves behind;
// mixed compositions batch-fsync at the default cadence. FsyncAlways is
// never recommended — it is the explicit opt-in for strict per-record
// durability, surfaced as a flag on the binaries.
func RecommendDurability(instances []Instance) Durability {
	maxWF := 0.0
	for _, inst := range instances {
		if wf := inst.Mix.WriteFraction(); wf > maxWF {
			maxWF = wf
		}
	}
	switch {
	case maxWF == 0:
		return Durability{Fsync: wal.FsyncNone, CheckpointEvery: time.Second}
	case maxWF > 0.15:
		return Durability{Fsync: wal.FsyncBatch, CheckpointEvery: core.DefaultCheckpointEvery / 2}
	default:
		return Durability{Fsync: wal.FsyncBatch, CheckpointEvery: core.DefaultCheckpointEvery}
	}
}

// RecommendArena derives the arena axis from the composition, following the
// RecommendDurability precedent. Any instance that retains references into
// result buffers disables the axis (recycling would invalidate memory the
// client still holds). Otherwise arenas go on, sized by write volume: the
// arena's main tenant is WAL effect staging, which scales with the write
// fraction, so write-heavy compositions get deeper slabs and read-mostly
// ones stay at the default.
func RecommendArena(instances []Instance) core.ArenaConfig {
	maxWF := 0.0
	for _, inst := range instances {
		if inst.RetainsReferences {
			return core.ArenaConfig{}
		}
		if wf := inst.Mix.WriteFraction(); wf > maxWF {
			maxWF = wf
		}
	}
	cfg := core.ArenaConfig{Enabled: true}
	if maxWF > 0.15 {
		// One sweep batch stages up to SlotsPerBuffer records per worker;
		// deeper slabs keep a write-heavy batch inside one slab per class.
		cfg.SlabAllocs = 16
	}
	return cfg
}

// RecommendBatchExec derives the interleaved-execution axis from the
// composition. The axis only restructures how a worker's sweep schedules
// the ops it already claimed, so unlike the arena axis nothing about the
// instances can make it unsound — it is always on, at the full group width.
// Typed ops only flow through it when the application uses the typed
// session calls (InvokeKV/SubmitKV) against kernel-bearing structures;
// compositions that never do simply run the serial schedule inside the
// batched claim, at unchanged cost.
func RecommendBatchExec(instances []Instance) core.BatchExecConfig {
	return core.BatchExecConfig{Enabled: true, Width: delegation.SlotsPerBuffer}
}

// ServerAxes is the composed network front-end configuration: how many
// pooled delegation sessions the server multiplexes its connections onto,
// each session's bursting window, and how deep one connection's pipelined
// batch may run. Two further configuration axes in the paper's sense —
// derived from the plan, not hand-tuned per deployment.
type ServerAxes struct {
	Sessions    int
	Burst       int
	MaxPipeline int
}

// RecommendServer derives the front-end axes from a composed plan. The
// binding constraint is slot capacity: every pooled session may reserve
// Burst message-buffer slots in every domain it touches (and the router
// spreads keys over all shards, so every session touches every domain),
// while a domain of w workers exposes w×SlotsPerBuffer slots. Sessions is
// therefore sized to what the smallest domain can absorb —
// ⌊minSize×SlotsPerBuffer/Burst⌋ — which saturates that domain's buffers
// without ever making a session block on slot acquisition. Burst is the
// paper's 14. MaxPipeline is fixed at 128: deep enough that a depth-64
// client still lands one batch per read, shallow enough to bound
// per-connection scratch and reply latency.
func RecommendServer(p *Plan) ServerAxes {
	const burst = 14 // the paper's bursting window
	minSize := 0
	for _, d := range p.Domains {
		if minSize == 0 || d.Size < minSize {
			minSize = d.Size
		}
	}
	sessions := minSize * delegation.SlotsPerBuffer / burst
	if sessions < 1 {
		sessions = 1
	}
	return ServerAxes{Sessions: sessions, Burst: burst, MaxPipeline: 128}
}

// PlanDomain is one virtual domain of a composed plan.
type PlanDomain struct {
	Size      int
	Instances []string
	Isolated  bool
}

// Plan is a composed configuration before machine materialisation.
type Plan struct {
	Domains []PlanDomain
	// Kind records which composition case applied: "homogeneous",
	// "isolated+homogeneous", "heterogeneous", ...
	Kind string
	// CalibratedSizes records each instance's calibrated optimal size.
	CalibratedSizes map[string]int
	// ReadPolicies records each instance's recommended read-path policy
	// (RecommendReadPolicy over its mix); Materialise carries them into
	// core.Config.ReadPolicies.
	ReadPolicies map[string]core.ReadPolicy
	// Durability records the recommended durability axes
	// (RecommendDurability over the composition); Materialise carries them
	// into core.Config.WAL, which stays disabled until a log directory is
	// supplied.
	Durability Durability
	// Arena records the recommended worker-arena axis (RecommendArena over
	// the composition); Materialise carries it into core.Config.Arena.
	Arena core.ArenaConfig
	// BatchExec records the recommended interleaved-execution axis
	// (RecommendBatchExec over the composition); Materialise carries it
	// into core.Config.BatchExec.
	BatchExec core.BatchExecConfig
	// Server records the recommended network front-end axes (RecommendServer
	// over the finished plan); robustserved seeds its defaults from them.
	Server ServerAxes
}

// String renders the plan in the robustconfig tool's format.
func (p *Plan) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s composition, %d domains, %d workers\n", p.Kind, len(p.Domains), p.WorkersUsed())
	for i, d := range p.Domains {
		tag := ""
		if d.Isolated {
			tag = " [isolated]"
		}
		fmt.Fprintf(&b, "  domain %2d: %3d workers%s ← %s\n", i, d.Size, tag, strings.Join(d.Instances, ", "))
	}
	if len(p.ReadPolicies) > 0 {
		names := make([]string, 0, len(p.ReadPolicies))
		for name := range p.ReadPolicies {
			names = append(names, name)
		}
		sort.Strings(names)
		var pairs []string
		for _, name := range names {
			pairs = append(pairs, fmt.Sprintf("%s=%s", name, p.ReadPolicies[name]))
		}
		fmt.Fprintf(&b, "  read policies: %s\n", strings.Join(pairs, ", "))
	}
	fmt.Fprintf(&b, "  durability: fsync=%s checkpoint=%s\n", p.Durability.Fsync, p.Durability.cadence())
	if p.Arena.Enabled {
		slabs := p.Arena.SlabAllocs
		if slabs <= 0 {
			fmt.Fprintf(&b, "  arena: on (default slabs)\n")
		} else {
			fmt.Fprintf(&b, "  arena: on (slabs=%d)\n", slabs)
		}
	} else {
		fmt.Fprintf(&b, "  arena: off\n")
	}
	if p.BatchExec.Enabled {
		fmt.Fprintf(&b, "  batch exec: on (width=%d)\n", p.BatchExec.Width)
	} else {
		fmt.Fprintf(&b, "  batch exec: off\n")
	}
	if p.Server.Sessions > 0 {
		fmt.Fprintf(&b, "  server: sessions=%d burst=%d pipeline=%d\n",
			p.Server.Sessions, p.Server.Burst, p.Server.MaxPipeline)
	}
	return b.String()
}

func (d Durability) cadence() time.Duration {
	if d.CheckpointEvery <= 0 {
		return core.DefaultCheckpointEvery
	}
	return d.CheckpointEvery
}

// WorkersUsed sums the plan's domain sizes.
func (p *Plan) WorkersUsed() int {
	n := 0
	for _, d := range p.Domains {
		n += d.Size
	}
	return n
}

// DomainOf returns the index of the domain holding the named instance.
func (p *Plan) DomainOf(name string) (int, error) {
	for i, d := range p.Domains {
		for _, inst := range d.Instances {
			if inst == name {
				return i, nil
			}
		}
	}
	return 0, fmt.Errorf("config: instance %q not in plan", name)
}

// Compose runs the composition step of Figure 4 over the instances for a
// machine with `workers` worker threads. Calibration is performed per
// (kind, mix) pair through measure (nil → simulator).
func Compose(instances []Instance, workers int, measure MeasureFunc) (*Plan, error) {
	if len(instances) == 0 {
		return nil, fmt.Errorf("config: no instances to compose")
	}
	if workers < 1 {
		return nil, fmt.Errorf("config: no workers")
	}
	names := map[string]int{}
	for i, inst := range instances {
		if inst.Name == "" {
			return nil, fmt.Errorf("config: instance %d has no name", i)
		}
		if _, dup := names[inst.Name]; dup {
			return nil, fmt.Errorf("config: duplicate instance %q", inst.Name)
		}
		names[inst.Name] = i
	}

	plan := &Plan{CalibratedSizes: map[string]int{}, ReadPolicies: map[string]core.ReadPolicy{}}

	// Step 1+2: calibrated optimal size per instance, plus the read-path
	// policy its mix recommends (a second per-instance configuration axis;
	// core gates it on the materialised structure's concurrent-read safety).
	plan.Durability = RecommendDurability(instances)
	plan.Arena = RecommendArena(instances)
	plan.BatchExec = RecommendBatchExec(instances)
	calCache := map[string]int{}
	for _, inst := range instances {
		plan.ReadPolicies[inst.Name] = RecommendReadPolicy(inst.Mix)
		key := fmt.Sprintf("%d/%s", inst.Kind, inst.Mix.Name)
		size, ok := calCache[key]
		if !ok {
			cal, err := Calibrate(inst.Kind, inst.Mix, nil, measure)
			if err != nil {
				return nil, err
			}
			size = cal.OptimalSize
			calCache[key] = size
		}
		if size > workers {
			size = workers
		}
		plan.CalibratedSizes[inst.Name] = size
	}

	// Step 3a: isolate crucial instances first (Fig. 4.2) — each gets a
	// dedicated domain of its calibrated size.
	remaining := workers
	var shared []Instance
	for _, inst := range instances {
		if !inst.Crucial {
			shared = append(shared, inst)
			continue
		}
		size := plan.CalibratedSizes[inst.Name]
		if size > remaining {
			return nil, fmt.Errorf("config: not enough workers to isolate %q (needs %d, %d left)", inst.Name, size, remaining)
		}
		plan.Domains = append(plan.Domains, PlanDomain{Size: size, Instances: []string{inst.Name}, Isolated: true})
		remaining -= size
	}
	isolated := len(plan.Domains) > 0

	if len(shared) == 0 {
		plan.Kind = "isolated"
		plan.Server = RecommendServer(plan)
		return plan, nil
	}
	if remaining == 0 {
		return nil, fmt.Errorf("config: isolation consumed all workers, none left for %d shared instances", len(shared))
	}

	// Step 3b: homogeneous or heterogeneous composition of the rest.
	sizes := map[int]struct{}{}
	for _, inst := range shared {
		sizes[plan.CalibratedSizes[inst.Name]] = struct{}{}
	}
	if len(sizes) == 1 {
		if err := composeHomogeneous(plan, shared, remaining); err != nil {
			return nil, err
		}
		plan.Kind = "homogeneous"
	} else {
		if err := composeHeterogeneous(plan, shared, remaining, names); err != nil {
			return nil, err
		}
		plan.Kind = "heterogeneous"
	}
	if isolated {
		plan.Kind = "isolated+" + plan.Kind
	}
	plan.Server = RecommendServer(plan)
	return plan, nil
}

// composeHomogeneous fills the workers with domains of the single calibrated
// size and spreads the instances round-robin (load balancing, Fig. 4.1).
func composeHomogeneous(plan *Plan, shared []Instance, workers int) error {
	size := plan.CalibratedSizes[shared[0].Name]
	n := workers / size
	if n == 0 {
		n = 1
		size = workers
	}
	if n > len(shared) {
		n = len(shared) // a domain without instances is pointless
	}
	start := len(plan.Domains)
	for i := 0; i < n; i++ {
		plan.Domains = append(plan.Domains, PlanDomain{Size: size})
	}
	// Honour co-location by assigning pairs together.
	assigned := map[string]int{}
	next := 0
	for _, inst := range shared {
		var d int
		if inst.CoLocateWith != "" {
			if prev, ok := assigned[inst.CoLocateWith]; ok {
				d = prev
			} else {
				d = start + next%n
				next++
			}
		} else {
			d = start + next%n
			next++
		}
		plan.Domains[d].Instances = append(plan.Domains[d].Instances, inst.Name)
		assigned[inst.Name] = d
	}
	return nil
}

// composeHeterogeneous solves the GAP-MQ ILP (Equations 1–7) for mixed
// calibrated sizes; beyond exact reach it falls back to the greedy
// first-fit composition.
func composeHeterogeneous(plan *Plan, shared []Instance, workers int, names map[string]int) error {
	gap := make([]ilp.GAPInstance, len(shared))
	totalLoad := 0.0
	for i, inst := range shared {
		load := inst.Load
		if load <= 0 {
			load = 1
		}
		size := plan.CalibratedSizes[inst.Name]
		if size > workers {
			// Isolation may have shrunk the shared pool below the
			// calibrated optimum; a smaller domain only lowers worst-case
			// contention (Section 5.2), so clamping is safe.
			size = workers
		}
		gap[i] = ilp.GAPInstance{Name: inst.Name, OptimalSize: size, Load: load}
		totalLoad += load
	}
	var coLocate [][2]int
	sharedIdx := map[string]int{}
	for i, inst := range shared {
		sharedIdx[inst.Name] = i
	}
	for i, inst := range shared {
		if inst.CoLocateWith == "" {
			continue
		}
		j, ok := sharedIdx[inst.CoLocateWith]
		if !ok {
			return fmt.Errorf("config: %q co-locates with unknown or isolated instance %q", inst.Name, inst.CoLocateWith)
		}
		coLocate = append(coLocate, [2]int{i, j})
	}
	// Load window: balanced within a factor of ~2 around the mean domain
	// load, assuming roughly one domain per distinct size per instance.
	maxLoad := totalLoad // permissive upper bound; Eq. 2 still forces ≥ 1
	minLoad := 0.0
	var res *ilp.GAPResult
	var err error
	const exactLimit = 12
	if len(shared) <= exactLimit {
		res, err = ilp.SolveGAPMQ(gap, workers, minLoad, maxLoad, coLocate, 0)
	} else {
		res, err = ilp.GreedyGAPMQ(gap, workers, totalLoad/float64(len(shared))*4)
	}
	if err != nil {
		return err
	}
	start := len(plan.Domains)
	for _, size := range res.DomainSizes {
		plan.Domains = append(plan.Domains, PlanDomain{Size: size})
	}
	for i, d := range res.Assignment {
		plan.Domains[start+d].Instances = append(plan.Domains[start+d].Instances, shared[i].Name)
	}
	return nil
}

// Materialise turns a plan into a runnable core.Config on the machine,
// carving socket-major CPU sets for each domain in plan order.
func Materialise(plan *Plan, m *topology.Machine) (core.Config, error) {
	need := plan.WorkersUsed()
	if need > m.LogicalCPUs() {
		return core.Config{}, fmt.Errorf("config: plan needs %d CPUs, machine has %d", need, m.LogicalCPUs())
	}
	// Socket-major CPU order, mirroring topology.PartitionEven.
	var order []int
	for _, sk := range m.Sockets {
		order = append(order, m.CPUsOfSocket(sk.ID)...)
	}
	cfg := core.Config{Machine: m, Assignment: map[string]int{}}
	cursor := 0
	for i, d := range plan.Domains {
		cpus := topology.NewCPUSet(order[cursor : cursor+d.Size]...)
		cursor += d.Size
		name := fmt.Sprintf("domain-%d", i)
		if d.Isolated {
			name = fmt.Sprintf("isolated-%d", i)
		}
		cfg.Domains = append(cfg.Domains, core.DomainSpec{
			Name:      name,
			CPUs:      cpus,
			Placement: core.PlacePinned,
			Memory:    core.MemLocal,
		})
		for _, inst := range d.Instances {
			cfg.Assignment[inst] = i
		}
	}
	if len(plan.ReadPolicies) > 0 {
		cfg.ReadPolicies = map[string]core.ReadPolicy{}
		for inst, p := range plan.ReadPolicies {
			if _, ok := cfg.Assignment[inst]; ok && p != core.ReadDelegate {
				cfg.ReadPolicies[inst] = p
			}
		}
	}
	// Durability axes ride along; the WAL stays off (Dir == "") until the
	// caller points it at a log directory. The arena axis is live
	// immediately — it needs no external resource.
	cfg.WAL.Fsync = plan.Durability.Fsync
	cfg.WAL.CheckpointEvery = plan.Durability.CheckpointEvery
	cfg.Arena = plan.Arena
	cfg.BatchExec = plan.BatchExec
	if err := cfg.Validate(); err != nil {
		return core.Config{}, err
	}
	return cfg, nil
}
