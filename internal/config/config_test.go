package config

import (
	"fmt"
	"strings"
	"testing"

	"robustconf/internal/sim"
	"robustconf/internal/topology"
	"robustconf/internal/workload"
)

// syntheticMeasure returns a curve peaking at `peak` and falling beyond.
func syntheticMeasure(peak int) MeasureFunc {
	return func(kind sim.StructureKind, mix workload.Mix, size int) (float64, error) {
		if size <= peak {
			return float64(size) / float64(peak) * 100, nil
		}
		return 100 / (float64(size) / float64(peak)), nil
	}
}

func TestCalibrateFindsPeak(t *testing.T) {
	cal, err := Calibrate(sim.KindBTree, workload.A, []int{1, 24, 48, 96}, syntheticMeasure(48))
	if err != nil {
		t.Fatal(err)
	}
	if cal.OptimalSize != 48 {
		t.Errorf("OptimalSize = %d, want 48", cal.OptimalSize)
	}
	if len(cal.Curve) < 3 {
		t.Errorf("curve has %d points", len(cal.Curve))
	}
}

func TestCalibratePrefersLargerWithinTolerance(t *testing.T) {
	// Flat within 2% between 24 and 48 → pick 48 (the ILP's preference).
	measure := func(kind sim.StructureKind, mix workload.Mix, size int) (float64, error) {
		switch size {
		case 24:
			return 100, nil
		case 48:
			return 99, nil // 1% dip: noise
		default:
			return 50, nil
		}
	}
	cal, err := Calibrate(sim.KindBTree, workload.A, []int{1, 24, 48, 96}, measure)
	if err != nil {
		t.Fatal(err)
	}
	if cal.OptimalSize != 48 {
		t.Errorf("OptimalSize = %d, want 48 (larger within tolerance)", cal.OptimalSize)
	}
}

func TestCalibrateStopsAtNegativeSlope(t *testing.T) {
	calls := 0
	measure := func(kind sim.StructureKind, mix workload.Mix, size int) (float64, error) {
		calls++
		if size == 1 {
			return 100, nil
		}
		return 10, nil // cliff after size 1 (the Hash Map pattern)
	}
	cal, err := Calibrate(sim.KindHashMap, workload.A, []int{1, 24, 48, 96, 192, 384}, measure)
	if err != nil {
		t.Fatal(err)
	}
	if cal.OptimalSize != 1 {
		t.Errorf("OptimalSize = %d, want 1", cal.OptimalSize)
	}
	if calls > 2 {
		t.Errorf("calibration kept sweeping after a clear cliff (%d calls)", calls)
	}
}

func TestCalibrateErrorPropagates(t *testing.T) {
	measure := func(sim.StructureKind, workload.Mix, int) (float64, error) {
		return 0, fmt.Errorf("boom")
	}
	if _, err := Calibrate(sim.KindBTree, workload.A, nil, measure); err == nil {
		t.Error("measure error swallowed")
	}
}

// TestTable2MatchesPaper is the E2 reproduction: the simulator-driven
// calibration must produce the paper's Table 2 exactly.
func TestTable2MatchesPaper(t *testing.T) {
	got, err := Table2(nil)
	if err != nil {
		t.Fatal(err)
	}
	want := map[sim.StructureKind]map[string]int{
		sim.KindBTree:   {workload.C.Name: 48, workload.A.Name: 24, workload.D.Name: 24},
		sim.KindFPTree:  {workload.C.Name: 48, workload.A.Name: 24, workload.D.Name: 24},
		sim.KindBWTree:  {workload.C.Name: 48, workload.A.Name: 48, workload.D.Name: 48},
		sim.KindHashMap: {workload.C.Name: 1, workload.A.Name: 1, workload.D.Name: 1},
	}
	for kind, mixes := range want {
		for mix, size := range mixes {
			if got[kind][mix] != size {
				t.Errorf("Table 2 %s / %s = %d, want %d", kind.Name(), mix, got[kind][mix], size)
			}
		}
	}
}

func TestComposeHomogeneous(t *testing.T) {
	instances := []Instance{
		{Name: "a", Kind: sim.KindFPTree, Mix: workload.A, Load: 1},
		{Name: "b", Kind: sim.KindFPTree, Mix: workload.A, Load: 1},
	}
	plan, err := Compose(instances, 192, syntheticMeasure(24))
	if err != nil {
		t.Fatal(err)
	}
	if plan.Kind != "homogeneous" {
		t.Errorf("Kind = %q", plan.Kind)
	}
	// Two instances → at most two domains of the calibrated size 24.
	if len(plan.Domains) != 2 {
		t.Errorf("domains = %d, want 2", len(plan.Domains))
	}
	for _, d := range plan.Domains {
		if d.Size != 24 {
			t.Errorf("domain size = %d, want 24", d.Size)
		}
		if len(d.Instances) != 1 {
			t.Errorf("domain holds %d instances, want 1", len(d.Instances))
		}
	}
}

func TestComposeIsolated(t *testing.T) {
	instances := []Instance{
		{Name: "locktable", Kind: sim.KindHashMap, Mix: workload.A, Load: 1, Crucial: true},
		{Name: "idx1", Kind: sim.KindFPTree, Mix: workload.A, Load: 1},
		{Name: "idx2", Kind: sim.KindFPTree, Mix: workload.A, Load: 1},
	}
	measure := func(kind sim.StructureKind, mix workload.Mix, size int) (float64, error) {
		if kind == sim.KindHashMap {
			return syntheticMeasure(1)(kind, mix, size)
		}
		return syntheticMeasure(24)(kind, mix, size)
	}
	plan, err := Compose(instances, 96, measure)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Kind != "isolated+homogeneous" {
		t.Errorf("Kind = %q", plan.Kind)
	}
	di, err := plan.DomainOf("locktable")
	if err != nil {
		t.Fatal(err)
	}
	d := plan.Domains[di]
	if !d.Isolated || d.Size != 1 || len(d.Instances) != 1 {
		t.Errorf("crucial instance domain: %+v", d)
	}
}

func TestComposeHeterogeneousUsesILP(t *testing.T) {
	// The paper's OLTP2-like scenario: two write-heavy (24) and three
	// read-heavy (48) instances on 192 workers → 2×24 + 3×48.
	measure := func(kind sim.StructureKind, mix workload.Mix, size int) (float64, error) {
		peak := 24
		if mix.Name == workload.C.Name {
			peak = 48
		}
		return syntheticMeasure(peak)(kind, mix, size)
	}
	instances := []Instance{
		{Name: "w1", Kind: sim.KindFPTree, Mix: workload.A, Load: 1},
		{Name: "w2", Kind: sim.KindFPTree, Mix: workload.A, Load: 1},
		{Name: "r1", Kind: sim.KindFPTree, Mix: workload.C, Load: 1},
		{Name: "r2", Kind: sim.KindFPTree, Mix: workload.C, Load: 1},
		{Name: "r3", Kind: sim.KindFPTree, Mix: workload.C, Load: 1},
	}
	plan, err := Compose(instances, 192, measure)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Kind != "heterogeneous" {
		t.Errorf("Kind = %q", plan.Kind)
	}
	if plan.WorkersUsed() != 192 {
		t.Errorf("workers used = %d, want 192", plan.WorkersUsed())
	}
	c24, c48 := 0, 0
	for _, d := range plan.Domains {
		switch d.Size {
		case 24:
			c24++
		case 48:
			c48++
		default:
			t.Errorf("unexpected domain size %d", d.Size)
		}
	}
	if c24 != 2 || c48 != 3 {
		t.Errorf("domains = %d×24 + %d×48, want 2×24 + 3×48", c24, c48)
	}
	// Write-heavy instances must not land in 48-sized domains (Eq. 4).
	for _, n := range []string{"w1", "w2"} {
		di, _ := plan.DomainOf(n)
		if plan.Domains[di].Size != 24 {
			t.Errorf("%s in size-%d domain", n, plan.Domains[di].Size)
		}
	}
}

func TestComposeCoLocation(t *testing.T) {
	instances := []Instance{
		{Name: "table", Kind: sim.KindFPTree, Mix: workload.A, Load: 1},
		{Name: "index", Kind: sim.KindFPTree, Mix: workload.A, Load: 1, CoLocateWith: "table"},
		{Name: "other", Kind: sim.KindFPTree, Mix: workload.A, Load: 1},
	}
	plan, err := Compose(instances, 96, syntheticMeasure(24))
	if err != nil {
		t.Fatal(err)
	}
	dt, _ := plan.DomainOf("table")
	di, _ := plan.DomainOf("index")
	if dt != di {
		t.Errorf("co-located instances in different domains: %d vs %d", dt, di)
	}
}

func TestComposeValidation(t *testing.T) {
	if _, err := Compose(nil, 48, syntheticMeasure(24)); err == nil {
		t.Error("no instances accepted")
	}
	if _, err := Compose([]Instance{{Name: "a", Load: 1}}, 0, syntheticMeasure(24)); err == nil {
		t.Error("no workers accepted")
	}
	dup := []Instance{
		{Name: "a", Kind: sim.KindBTree, Mix: workload.A, Load: 1},
		{Name: "a", Kind: sim.KindBTree, Mix: workload.A, Load: 1},
	}
	if _, err := Compose(dup, 48, syntheticMeasure(24)); err == nil {
		t.Error("duplicate names accepted")
	}
	unnamed := []Instance{{Kind: sim.KindBTree, Mix: workload.A, Load: 1}}
	if _, err := Compose(unnamed, 48, syntheticMeasure(24)); err == nil {
		t.Error("unnamed instance accepted")
	}
}

func TestComposeManyInstancesGreedy(t *testing.T) {
	// Figure 11 scale: 64 instances on 384 workers, shared domains.
	var instances []Instance
	for i := 0; i < 64; i++ {
		instances = append(instances, Instance{
			Name: fmt.Sprintf("idx%d", i), Kind: sim.KindFPTree, Mix: workload.A, Load: 1,
		})
	}
	// Heterogeneous mix to force the greedy path: one read-only instance.
	instances[63].Mix = workload.C
	measure := func(kind sim.StructureKind, mix workload.Mix, size int) (float64, error) {
		peak := 24
		if mix.Name == workload.C.Name {
			peak = 48
		}
		return syntheticMeasure(peak)(kind, mix, size)
	}
	plan, err := Compose(instances, 384, measure)
	if err != nil {
		t.Fatal(err)
	}
	if plan.WorkersUsed() > 384 {
		t.Errorf("plan exceeds workers: %d", plan.WorkersUsed())
	}
	for _, inst := range instances {
		if _, err := plan.DomainOf(inst.Name); err != nil {
			t.Errorf("instance %s unplaced", inst.Name)
		}
	}
}

func TestMaterialise(t *testing.T) {
	instances := []Instance{
		{Name: "a", Kind: sim.KindFPTree, Mix: workload.A, Load: 1},
		{Name: "b", Kind: sim.KindFPTree, Mix: workload.A, Load: 1},
	}
	plan, err := Compose(instances, 48, syntheticMeasure(24))
	if err != nil {
		t.Fatal(err)
	}
	m, _ := topology.Restricted(1)
	cfg, err := Materialise(plan, m)
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.Domains) != len(plan.Domains) {
		t.Errorf("domains = %d, want %d", len(cfg.Domains), len(plan.Domains))
	}
	if err := cfg.Validate(); err != nil {
		t.Errorf("materialised config invalid: %v", err)
	}
	// Domains must be disjoint and within the machine (Validate checks);
	// instance assignment must match the plan.
	for _, inst := range instances {
		pd, _ := plan.DomainOf(inst.Name)
		if cfg.Assignment[inst.Name] != pd {
			t.Errorf("assignment mismatch for %s", inst.Name)
		}
	}
}

func TestMaterialiseTooBig(t *testing.T) {
	plan := &Plan{Domains: []PlanDomain{{Size: 100, Instances: []string{"x"}}}}
	m, _ := topology.Restricted(1) // 48 CPUs
	if _, err := Materialise(plan, m); err == nil {
		t.Error("oversized plan accepted")
	}
}

func TestPlanString(t *testing.T) {
	instances := []Instance{
		{Name: "hot", Kind: sim.KindHashMap, Mix: workload.A, Load: 1, Crucial: true},
		{Name: "cold", Kind: sim.KindFPTree, Mix: workload.A, Load: 1},
	}
	measure := func(kind sim.StructureKind, mix workload.Mix, size int) (float64, error) {
		if kind == sim.KindHashMap {
			return syntheticMeasure(1)(kind, mix, size)
		}
		return syntheticMeasure(24)(kind, mix, size)
	}
	plan, err := Compose(instances, 48, measure)
	if err != nil {
		t.Fatal(err)
	}
	s := plan.String()
	for _, want := range []string{"isolated", "hot", "cold", "domain"} {
		if !strings.Contains(s, want) {
			t.Errorf("Plan.String missing %q:\n%s", want, s)
		}
	}
}
