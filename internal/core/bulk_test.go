package core

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"robustconf/internal/delegation"
)

// SubmitBulk error paths: a panicking op mid-bulk, posts rescued from a
// sealed buffer mid-bulk, and session teardown with bulk work outstanding.

func TestSubmitBulkPartialPanic(t *testing.T) {
	cfg, structures := smallConfig(2)
	rt, err := Start(cfg, structures)
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Stop()
	s, _ := rt.NewSession(0, 4)
	defer s.Close()

	ops := make([]func(ds any) any, 5)
	for i := range ops {
		i := i
		if i == 2 {
			ops[i] = func(any) any { panic("bulk op bug") }
			continue
		}
		ops[i] = func(any) any { return i * 10 }
	}
	out, err := s.SubmitBulk("tree", ops)
	var pe delegation.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("SubmitBulk error = %v, want PanicError", err)
	}
	if pe.Value != "bulk op bug" {
		t.Errorf("panic value = %v", pe.Value)
	}
	if len(out) != len(ops) {
		t.Fatalf("results length = %d", len(out))
	}
	for i, v := range out {
		if i == 2 {
			if v != nil {
				t.Errorf("panicked op result = %v, want nil", v)
			}
			continue
		}
		if v != i*10 {
			t.Errorf("op %d result = %v, want %d", i, v, i*10)
		}
	}
	// The domain keeps serving: the panic poisoned one task, not the worker.
	if v, err := s.Invoke(Task{Structure: "tree", Op: func(any) any { return 7 }}); err != nil || v != 7 {
		t.Fatalf("post-panic invoke = %v, %v", v, err)
	}
}

func TestSubmitBulkIntoSealedBuffer(t *testing.T) {
	cfg, structures := smallConfig(2)
	rt, err := Start(cfg, structures)
	if err != nil {
		t.Fatal(err)
	}
	s, _ := rt.NewSession(0, 2)
	// Acquire slots before the stop so the bulk's posts hit the sealed
	// buffer (the rescue path), not session setup.
	if _, err := s.Invoke(Task{Structure: "tree", Op: func(any) any { return 1 }}); err != nil {
		t.Fatal(err)
	}
	rt.Stop()

	// Burst 2, bulk of 4: the bulk must cycle rescued slots mid-bulk and
	// resolve every op with ErrWorkerStopped instead of hanging.
	ran := atomic.Int32{}
	ops := make([]func(ds any) any, 4)
	for i := range ops {
		ops[i] = func(any) any { ran.Add(1); return 1 }
	}
	done := make(chan struct{})
	var out []any
	var bulkErr error
	go func() {
		defer close(done)
		out, bulkErr = s.SubmitBulk("tree", ops)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("SubmitBulk hung on a sealed buffer")
	}
	if !errors.Is(bulkErr, delegation.ErrWorkerStopped) {
		t.Fatalf("SubmitBulk error = %v, want ErrWorkerStopped", bulkErr)
	}
	for i, v := range out {
		if v != nil {
			t.Errorf("op %d result = %v, want nil (never ran)", i, v)
		}
	}
	if ran.Load() != 0 {
		t.Errorf("%d ops executed after seal", ran.Load())
	}
	if err := s.Close(); err != nil && !errors.Is(err, delegation.ErrWorkerStopped) {
		t.Errorf("Close = %v", err)
	}
	if stats := rt.Stats(); stats[0].Rescued == 0 {
		t.Error("rescued-post counter not incremented")
	}
}

func TestCloseWithBulkOutstanding(t *testing.T) {
	cfg, structures := smallConfig(2)
	rt, err := Start(cfg, structures)
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Stop()
	s, _ := rt.NewSession(0, 4)

	// Fill the burst window with slow detached futures and a queue of async
	// statements, then Close without waiting on any of them: Close must
	// drain everything, run it exactly once and release the slots cleanly.
	ran := atomic.Int32{}
	slow := Task{Structure: "tree", Op: func(any) any {
		time.Sleep(200 * time.Microsecond)
		ran.Add(1)
		return nil
	}}
	for i := 0; i < 4; i++ {
		if _, err := s.Submit(slow); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		if _, err := s.SubmitAsync("tree", func(ds, arg any) any {
			time.Sleep(200 * time.Microsecond)
			ran.Add(1)
			return nil
		}, nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close with outstanding bulk = %v", err)
	}
	if got := ran.Load(); got != 7 {
		t.Errorf("outstanding tasks run = %d, want 7", got)
	}
	// The slots came back: a fresh session can take the full burst again.
	s2, err := rt.NewSession(0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Invoke(Task{Structure: "tree", Op: func(any) any { return 1 }}); err != nil {
		t.Fatal(err)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
}
