// Package core is the paper's runtime system (Section 3.2 and 6): it
// executes asynchronous data-aware tasks inside virtual domains according to
// a configuration. A configuration declares (1) the virtual domains —
// arbitrary partitions of the machine's logical CPUs with a worker placement
// and a memory allocation policy — and (2) the assignment of data structure
// instances to domains. The runtime spawns one worker per domain CPU, each
// owning an FFWD-style message buffer; the domain's inbox is composed of
// those buffers; client sessions obtain slot ownership (NUMA-nearest worker
// first) and delegate tasks, consuming results through futures.
//
// Reconfiguration is offline, as in the paper: Runtime.Stop drains all
// workers, and a new Runtime is started from the next configuration.
package core

import (
	"context"
	"fmt"
	"runtime/pprof"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"robustconf/internal/affinity"
	"robustconf/internal/delegation"
	"robustconf/internal/mem"
	"robustconf/internal/metrics"
	"robustconf/internal/obs"
	"robustconf/internal/topology"
	"robustconf/internal/wal"
)

// PlacementPolicy controls how a domain's workers relate to its CPUs
// (Section 5.1: strict pinning vs. allowed migration).
type PlacementPolicy int

const (
	// PlacePinned binds worker i to the domain's i-th CPU; the NUMA-aware
	// slot assignment uses this binding.
	PlacePinned PlacementPolicy = iota
	// PlaceMigratable lets workers float over the domain's CPUs; slot
	// assignment then treats all workers as equidistant.
	PlaceMigratable
)

// MemoryPolicy controls where a domain's allocations are homed.
type MemoryPolicy int

const (
	// MemLocal homes memory on each worker's own socket.
	MemLocal MemoryPolicy = iota
	// MemInterleaved spreads memory across the sockets the domain spans.
	MemInterleaved
)

// DefaultRestartBudget is the number of worker respawns a domain is granted
// after crashes when its spec does not set one.
const DefaultRestartBudget = 8

// DomainSpec declares one virtual domain.
type DomainSpec struct {
	Name      string
	CPUs      topology.CPUSet
	Placement PlacementPolicy
	Memory    MemoryPolicy

	// RestartBudget bounds how many times the domain respawns crashed
	// workers (shared across the domain's workers). 0 means
	// DefaultRestartBudget; negative disables respawning — a crashed
	// worker's buffer is sealed immediately and posts into it are answered
	// with ErrWorkerStopped.
	RestartBudget int
}

// budget resolves the spec's restart budget.
func (d DomainSpec) budget() int {
	if d.RestartBudget == 0 {
		return DefaultRestartBudget
	}
	if d.RestartBudget < 0 {
		return 0
	}
	return d.RestartBudget
}

// Config is a full runtime configuration: the machine, its partitioning
// into virtual domains, and the structure→domain assignment.
type Config struct {
	Machine *topology.Machine
	Domains []DomainSpec
	// Assignment maps a data structure instance name to the index of the
	// domain that owns it.
	Assignment map[string]int
	// PinWorkers makes PlacePinned domains pin their worker goroutines to
	// the OS CPUs named by the domain's CPU set (Linux sched_setaffinity;
	// a no-op elsewhere). Use with a topology.DetectHost machine so the
	// CPU ids are real host ids. Off by default: simulated topologies'
	// ids don't correspond to host CPUs.
	PinWorkers bool
	// FaultHook, when non-nil, is installed into every worker buffer for
	// deterministic fault injection (see internal/faultinject). Nil — the
	// default — leaves the delegation hot path untouched.
	FaultHook delegation.FaultHook
	// Faults receives the runtime's fault-tolerance counters. Nil — the
	// default — reports to the process-wide metrics.Faults; harnesses inject
	// their own set so concurrent runs don't bleed into each other.
	Faults *metrics.FaultCounters
	// Obs, when non-nil, attaches the runtime to an observability layer:
	// every worker buffer gets a telemetry shard, sessions get client
	// shards, worker goroutines carry pprof labels, and lifecycle events
	// (crash, respawn, stop) are recorded. Nil — the default — leaves the
	// delegation hot path untouched.
	Obs *obs.Observer
	// ReadPolicies maps structure names to their read-path policy (see
	// ReadPolicy and Session.SubmitRead). Structures absent from the map —
	// and structures that do not vouch for concurrent-reader safety — use
	// ReadDelegate.
	ReadPolicies map[string]ReadPolicy
	// WAL configures per-domain write-ahead logging and checkpointing (see
	// wal.go). The zero value disables it: no log is opened, no structure
	// is snapshotted, and the delegation hot path is unchanged.
	WAL WALConfig
	// Arena configures the per-worker batch arenas (internal/mem): each
	// domain worker owns an arena recycled at sweep-batch boundaries, and
	// the WAL's staging buffers draw from it. The zero value disables it.
	Arena ArenaConfig
	// BatchExec configures interleaved sweep execution (DESIGN.md §15):
	// workers claim a whole pass of posted slots up front and hand runs of
	// typed key/value ops to the structure's batch kernel, which overlaps
	// their traversal cache misses with software prefetch. The zero value
	// disables it: sweeps claim-execute-answer one slot at a time.
	BatchExec BatchExecConfig
}

// ArenaConfig is the arena axis of a configuration: whether domain workers
// get batch arenas, and how they are sized. The composer (internal/config)
// disables the axis for plans whose structures retain references into
// client buffers, where batch-boundary recycling would be unsound.
type ArenaConfig struct {
	// Enabled turns per-worker batch arenas on.
	Enabled bool
	// SlabAllocs sizes each size class's slabs in max-size
	// allocations-per-slab (0 = the mem package default).
	SlabAllocs int
	// MaxBytes caps one arena's retained slab bytes; past it, allocations
	// fall back to the heap and are counted (0 = unlimited).
	MaxBytes int
}

// BatchExecConfig is the interleaved-execution axis of a configuration.
// Only typed ops issued through Session.InvokeKV / SubmitKV reach a batch
// kernel; closure tasks always execute serially, in slot order, inside the
// same pass. Structures without a kernel simply never receive typed ops, so
// the axis is safe to enable for any plan.
type BatchExecConfig struct {
	// Enabled turns the interleaved batched sweep body on.
	Enabled bool
	// Width caps how many same-kernel typed ops one ExecBatch call covers
	// (the group-prefetch width). Clamped to the slot count per buffer;
	// values below 2 disable the axis (a group of one cannot overlap
	// anything). 0 with Enabled uses the delegation default of the full
	// buffer.
	Width int
}

// Validate checks the configuration's internal consistency.
func (c *Config) Validate() error {
	if c.Machine == nil {
		return fmt.Errorf("core: config has no machine")
	}
	if len(c.Domains) == 0 {
		return fmt.Errorf("core: config has no domains")
	}
	names := map[string]struct{}{}
	for i, d := range c.Domains {
		if d.Name == "" {
			return fmt.Errorf("core: domain %d has no name", i)
		}
		if _, dup := names[d.Name]; dup {
			return fmt.Errorf("core: duplicate domain name %q", d.Name)
		}
		names[d.Name] = struct{}{}
		if d.CPUs.Len() == 0 {
			return fmt.Errorf("core: domain %q has no CPUs", d.Name)
		}
		for _, id := range d.CPUs.IDs() {
			if id < 0 || id >= c.Machine.LogicalCPUs() {
				return fmt.Errorf("core: domain %q uses CPU %d outside machine (%d CPUs)", d.Name, id, c.Machine.LogicalCPUs())
			}
		}
		for j := 0; j < i; j++ {
			if c.Domains[j].CPUs.Intersects(d.CPUs) {
				return fmt.Errorf("core: domains %q and %q overlap on CPUs", c.Domains[j].Name, d.Name)
			}
		}
	}
	for s, di := range c.Assignment {
		if di < 0 || di >= len(c.Domains) {
			return fmt.Errorf("core: structure %q assigned to domain %d of %d", s, di, len(c.Domains))
		}
	}
	for s, p := range c.ReadPolicies {
		if _, ok := c.Assignment[s]; !ok {
			return fmt.Errorf("core: read policy for unassigned structure %q", s)
		}
		if p < ReadDelegate || p > ReadAdaptive {
			return fmt.Errorf("core: structure %q has invalid read policy %d", s, int(p))
		}
	}
	return nil
}

// Task is an asynchronous data-aware task (Section 4): it names the data
// structure instance it targets and carries the access operation. The
// runtime routes it to the owning domain; Op receives the registered
// structure and its return value becomes the future's result.
type Task struct {
	Structure string
	Op        func(ds any) any
	// Log, when non-nil on a WAL-enabled runtime, marks the task as a
	// logged mutation: the worker appends Log's output (the operation's
	// logical record, fed to Durable.WALApply on replay) to its domain log
	// during the sweep, and the future completes only after the sweep
	// batch's group commit — success implies the record is durable. Log
	// runs on the worker goroutine immediately after Op, so it may encode
	// post-state Op computed. Nil tasks are not logged; so are read-only
	// submissions regardless of Log.
	Log func(dst []byte) []byte
}

// Domain is a running virtual domain: its workers, inbox and structures.
type Domain struct {
	spec       DomainSpec
	index      int
	inbox      *delegation.Inbox
	workerCPUs []int // CPU of worker i (placement binding)
	structures map[string]any
	stop       chan struct{}
	wg         sync.WaitGroup
	restarts   atomic.Int64 // worker respawns consumed (shared budget)
	dead       atomic.Bool  // budget exhausted: domain retired for good

	// Durability (nil / no-op without Config.WAL): the domain's log and
	// the recovery closure supervise runs before respawning a crashed
	// worker (built in setupWAL; it needs the runtime for routing state).
	// The closure receives the crashed worker's id so recovery can discard
	// that worker's arena — the call runs on the crashed worker's own
	// (supervisor) goroutine, which is what makes the owner-only Discard
	// legal there.
	wal       *wal.DomainLog
	recoverFn func(worker int)

	// arenas holds worker i's batch arena (nil slice when Config.Arena is
	// off). Per-worker, not per-domain: AcquireSlots may spread one
	// client's slots over several buffers, so tasks for one structure
	// execute on multiple workers concurrently and a shared arena would
	// race its owner-only bump pointer.
	arenas []*mem.Arena

	faults *metrics.FaultCounters
	obs    *obs.Observer  // nil when observability is not attached
	obsDom *obs.DomainObs // nil when observability is not attached
}

// event records a lifecycle event when observability is attached.
func (d *Domain) event(worker int, kind string) {
	if d.obs != nil {
		d.obs.Lifecycle(d.spec.Name, worker, kind)
	}
}

// externalCounters is the snapshot-time closure the obs layer calls for
// counters the runtime owns: failure accounting and queue depth from the
// buffer atomics, restart budget, and the WAL's durability stats. Called
// from scrape/sampler goroutines; everything it reads is atomic or behind
// the WAL's own lock, and it allocates nothing (the signal sampler's tick
// is pinned allocation-free).
func (d *Domain) externalCounters() obs.DomainExternal {
	var ext obs.DomainExternal
	for _, b := range d.inbox.Buffers() {
		ext.Failed += b.Failed.Load()
		ext.Rescued += b.Rescued.Load()
		// The published gauge, not the live slot scan: the endpoint polls
		// from foreign goroutines and only needs a bounded-staleness queue
		// depth.
		ext.Pending += b.PendingPublished()
		ext.BatchSweeps += b.BatchSweeps.Load()
		ext.BatchKernelOps += b.BatchKernelOps.Load()
	}
	ext.Restarts = d.restarts.Load()
	ext.BudgetRemaining = d.BudgetRemaining()
	if d.wal != nil {
		st := d.wal.Stats()
		ext.Recoveries = st.Recoveries
		ext.WALReplayed = st.Replayed
		ext.WALReplayNs = st.ReplayNs
		ext.WALCommitted = st.Committed
		ext.WALLastCheckpoint = st.LastCheckpoint
	}
	for _, a := range d.arenas {
		st := a.Snapshot()
		ext.ArenaLiveBytes += st.LiveBytes
		ext.ArenaCapBytes += st.CapBytes
		ext.ArenaOverflows += st.Overflows
		ext.ArenaResets += st.Resets
		ext.ArenaDiscards += st.Discards
	}
	return ext
}

// Restarts returns how many worker respawns the domain has consumed.
func (d *Domain) Restarts() int64 { return d.restarts.Load() }

// allowRestart consumes one respawn token, reporting whether the domain's
// budget still covers it.
func (d *Domain) allowRestart() bool {
	return d.restarts.Add(1) <= int64(d.spec.budget())
}

// Spec returns the domain's declaration.
func (d *Domain) Spec() DomainSpec { return d.spec }

// Workers returns the number of worker threads in the domain.
func (d *Domain) Workers() int { return len(d.workerCPUs) }

// Inbox exposes the composed inbox (for stats).
func (d *Domain) Inbox() *delegation.Inbox { return d.inbox }

// Runtime executes tasks under one configuration. Construct with Start.
type Runtime struct {
	cfg     Config
	domains []*Domain
	faults  *metrics.FaultCounters

	// readStates holds the per-structure read-bypass state for structures
	// whose effective policy is not ReadDelegate. Built once in Start and
	// read-only afterwards, so the read hot path probes it without a lock.
	readStates map[string]*readState

	mu      sync.Mutex
	stopped bool

	// walMu serializes the operations that walk a domain's structure set
	// while touching structure state — checkpoints, crash recovery, and the
	// ownership swap in Migrate. Without it, a structure could migrate away
	// between recovery's snapshot of the domain and its in-place restore,
	// leaving recovery rewriting state the new owner domain is mutating.
	// Acquired before rt.mu; never held by hot paths and never across the
	// migration quiesce (a crashed worker's recovery needs it to respawn
	// and drain, so holding it there would deadlock).
	walMu sync.Mutex
	// migrating counts in-flight migrations (guarded by walMu). While it is
	// non-zero, periodic checkpoints skip their tick: a straggler task still
	// draining in the old domain may be mutating the moving structure, and a
	// checkpoint snapshot in the new domain would race it. Crash recovery
	// needs no such guard — it only restores structures present in the
	// domain's last checkpoint, which a mid-migration structure never is.
	migrating int
}

// Faults returns the fault-counter set this runtime reports to (the
// injected cfg.Faults, or the process-wide metrics.Faults).
func (rt *Runtime) Faults() *metrics.FaultCounters { return rt.faults }

// Observer returns the attached observability layer, nil when none.
func (rt *Runtime) Observer() *obs.Observer { return rt.cfg.Obs }

// Start validates cfg, registers the given data structures, spawns the
// domain workers and returns the running runtime. Every structure in
// cfg.Assignment must be present in structures and vice versa.
func Start(cfg Config, structures map[string]any) (*Runtime, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	for name := range structures {
		if _, ok := cfg.Assignment[name]; !ok {
			return nil, fmt.Errorf("core: structure %q has no domain assignment", name)
		}
	}
	for name := range cfg.Assignment {
		if _, ok := structures[name]; !ok {
			return nil, fmt.Errorf("core: assignment references unknown structure %q", name)
		}
	}
	rt := &Runtime{cfg: cfg, faults: cfg.Faults}
	rt.readStates = buildReadStates(cfg.ReadPolicies, structures)
	if rt.faults == nil {
		rt.faults = metrics.Faults
	}
	if cfg.Obs != nil {
		cfg.Obs.SetFaults(rt.faults)
	}
	for i, spec := range cfg.Domains {
		d := &Domain{
			spec:       spec,
			index:      i,
			structures: map[string]any{},
			stop:       make(chan struct{}),
			workerCPUs: spec.CPUs.IDs(),
			faults:     rt.faults,
			obs:        cfg.Obs,
		}
		if cfg.Obs != nil {
			d.obsDom = cfg.Obs.Domain(spec.Name, len(d.workerCPUs))
		}
		var bufs []*delegation.Buffer
		for w := range d.workerCPUs {
			b, err := delegation.NewBuffer(w, delegation.SlotsPerBuffer)
			if err != nil {
				return nil, err
			}
			if d.obsDom != nil {
				b.SetProbe(d.obsDom.Worker(w))
			}
			if cfg.Arena.Enabled {
				a := mem.New(mem.Options{SlabAllocs: cfg.Arena.SlabAllocs, MaxBytes: cfg.Arena.MaxBytes})
				d.arenas = append(d.arenas, a)
				b.SetArena(a)
			}
			if cfg.BatchExec.Enabled {
				w := cfg.BatchExec.Width
				if w == 0 {
					w = delegation.SlotsPerBuffer
				}
				b.SetBatchExec(w)
			}
			bufs = append(bufs, b)
		}
		inbox, err := delegation.NewInbox(bufs)
		if err != nil {
			return nil, err
		}
		d.inbox = inbox
		rt.domains = append(rt.domains, d)
	}
	for name, di := range cfg.Assignment {
		rt.domains[di].structures[name] = structures[name]
	}
	if cfg.WAL.Enabled() {
		// Open the per-domain logs, take the initial checkpoints (replay
		// always has a base) and start the checkpoint cadence — before
		// workers spawn, so no sweep ever runs without its log handle.
		if err := rt.setupWAL(); err != nil {
			return nil, err
		}
		rt.startCheckpointers()
	}
	// Install the obs external-counter closures only now, after setupWAL:
	// the closure reads d.wal, and an endpoint scrape can race Start (the
	// observer may already be serving). Ordering the install after the WAL
	// assignment — with SetExternal's mutex pairing against the snapshot's
	// — makes the write visible to every scrape that sees the closure.
	if cfg.Obs != nil {
		for _, d := range rt.domains {
			d.obsDom.SetExternal(d.externalCounters)
		}
	}
	// Spawn workers after all registration so a task can never observe a
	// half-registered domain. Each worker runs under a supervisor loop that
	// respawns it on its CPU after a crash, within the domain's restart
	// budget.
	for _, d := range rt.domains {
		for wi, b := range d.inbox.Buffers() {
			if cfg.FaultHook != nil {
				b.SetFaultHook(cfg.FaultHook)
			}
			d.wg.Add(1)
			cpu := d.workerCPUs[wi]
			pin := cfg.PinWorkers && d.spec.Placement == PlacePinned
			go func(d *Domain, b *delegation.Buffer, cpu int, pin bool) {
				defer d.wg.Done()
				// Whatever path exits the supervisor, the buffer ends
				// sealed: the seal's final pass answers anything still
				// posted, and later posts are rescued with
				// ErrWorkerStopped — no future can dangle.
				defer b.Seal()
				if d.obs != nil {
					// Label the goroutine so CPU profiles off the obs
					// endpoint attribute samples per domain/worker.
					pprof.SetGoroutineLabels(pprof.WithLabels(context.Background(),
						pprof.Labels("domain", d.spec.Name, "worker", strconv.Itoa(b.Worker()))))
					d.event(b.Worker(), obs.EventWorkerStart)
				}
				if pin {
					if unpin, err := affinity.Pin(cpu); err == nil {
						defer unpin()
					}
					// A pinning failure (e.g. the CPU is offline) degrades
					// to migratable placement rather than failing the
					// domain.
				}
				supervise(d, b)
			}(d, b, cpu, pin)
		}
	}
	return rt, nil
}

// supervise runs the worker poll loop, respawning it after crashes with
// exponential backoff until the stop channel closes or the domain's restart
// budget is exhausted. A crash has already failed the buffer's posted tasks
// with a PanicError (see delegation.Worker.Run); the respawned worker picks
// up anything posted since. On a WAL-enabled runtime the respawn is
// preceded by recovery: the domain quiesces, the latest checkpoint restores
// and the committed log tail replays, healing any state the crash tore
// (recoverDomain documents why no read can observe the restore in flight).
func supervise(d *Domain, b *delegation.Buffer) {
	for attempt := 0; ; attempt++ {
		crash := delegation.NewWorker(b).Run(d.stop)
		if crash == nil {
			return // clean stop; Run sealed the buffer
		}
		d.faults.WorkerPanics.Add(1)
		d.event(b.Worker(), obs.EventWorkerCrash)
		if !d.allowRestart() {
			d.dead.Store(true) // submissions now fail with ErrDomainDead
			d.faults.RestartsExhausted.Add(1)
			d.event(b.Worker(), obs.EventRestartsExhausted)
			return // deferred Seal retires the buffer
		}
		select {
		case <-d.stop:
			return
		case <-time.After(restartBackoff(attempt)):
		}
		if d.recoverFn != nil {
			d.recoverFn(b.Worker())
		}
		d.faults.WorkerRestarts.Add(1)
		d.event(b.Worker(), obs.EventWorkerRespawn)
	}
}

// restartBackoff spaces respawn attempts: 50µs doubling to a 10ms cap, so a
// crash loop cannot monopolise a CPU while staying far below any client
// timeout.
func restartBackoff(attempt int) time.Duration {
	d := 50 * time.Microsecond
	for i := 0; i < attempt && d < 10*time.Millisecond; i++ {
		d *= 2
	}
	if d > 10*time.Millisecond {
		d = 10 * time.Millisecond
	}
	return d
}

// Config returns the configuration the runtime was started with.
func (rt *Runtime) Config() Config { return rt.cfg }

// Domains returns the running domains in configuration order.
func (rt *Runtime) Domains() []*Domain { return rt.domains }

// DomainOf returns the domain owning the named structure. The assignment is
// read under the runtime lock so it stays consistent with live migrations.
func (rt *Runtime) DomainOf(structure string) (*Domain, error) {
	d, _, err := rt.route(structure)
	return d, err
}

// route resolves a structure to its current domain and instance atomically
// with respect to Migrate. Routing to a domain that exhausted its restart
// budget fails fast with ErrDomainDead — the tasks would only ever be
// answered with ErrWorkerStopped by its sealed buffers.
func (rt *Runtime) route(structure string) (*Domain, any, error) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	di, ok := rt.cfg.Assignment[structure]
	if !ok {
		return nil, nil, fmt.Errorf("core: unknown structure %q", structure)
	}
	d := rt.domains[di]
	if d.dead.Load() {
		return nil, nil, fmt.Errorf("core: structure %q: %w", structure, ErrDomainDead)
	}
	return d, d.structures[structure], nil
}

// Stop drains and terminates all workers. It is the first half of the
// paper's offline reconfiguration: after Stop returns, no task is in flight
// and a new Runtime may be started with a different configuration over the
// same structures.
//
// Draining is exact, not best-effort: every worker seals its buffer on the
// way out, the seal's final sweep executes everything already posted, and a
// task racing past the seal completes with ErrWorkerStopped — so every
// future held by an open session resolves, and sessions that keep
// submitting after Stop get typed errors instead of hanging.
func (rt *Runtime) Stop() {
	rt.mu.Lock()
	if rt.stopped {
		rt.mu.Unlock()
		return
	}
	rt.stopped = true
	rt.mu.Unlock()
	for _, d := range rt.domains {
		close(d.stop)
	}
	for _, d := range rt.domains {
		d.wg.Wait()
		d.event(-1, obs.EventDomainStop)
	}
	for _, d := range rt.domains {
		if d.wal != nil {
			d.wal.Close()
		}
	}
}

// Reconfigure performs the paper's offline reconfiguration in one step:
// it stops this runtime — draining all active operations: outstanding
// futures resolve with their value, and submissions racing the shutdown
// resolve with ErrWorkerStopped — and starts a new runtime with the given
// configuration over the same structure instances. Sessions opened on the
// old runtime must be reopened on the new one; their submissions can error
// but can never hang.
func (rt *Runtime) Reconfigure(cfg Config) (*Runtime, error) {
	rt.mu.Lock()
	structures := map[string]any{}
	for _, d := range rt.domains {
		for name, ds := range d.structures {
			structures[name] = ds
		}
	}
	rt.mu.Unlock()
	rt.Stop()
	return Start(cfg, structures)
}

// Session is one client thread's connection to the runtime. It lazily
// acquires slot ownership in each domain it talks to, with up to `burst`
// outstanding tasks per domain (the paper's bursting mode, burst 14 in all
// experiments). A Session is not safe for concurrent use — it models a
// single client thread.
type Session struct {
	rt        *Runtime
	cpu       int
	burst     int
	perDomain map[*Domain]*sessionClient

	// Read-bypass state (readpolicy.go): session-local adaptive observation
	// mirrors for the most recently touched adaptive structure, and the
	// per-domain telemetry shards bypass outcomes report to.
	rsLast            *readState
	rsReads, rsWrites uint64
	rsSince           uint64
	readShards        map[*Domain]*obs.ClientShard
}

// sessionClient pairs a domain's delegation client with a reusable task
// thunk. The thunk closes over the sessionClient once, at client creation,
// and reads the op/ds fields the session stores immediately before each
// synchronous post — so Invoke wraps a Task without allocating a closure
// per call. Safe because a Session is single-threaded and Invoke is
// synchronous: the fields cannot be overwritten while a posted thunk may
// still read them (the slot post's release store publishes them to the
// worker along with the task).
//
// The pipelined path (SubmitAsync) generalises the same trick to many
// statements in flight: each reserved slot owns an asyncThunk argument
// block and each in-flight statement a pooled AsyncFuture, so issuing a
// burst of independent statements allocates nothing in steady state.
type sessionClient struct {
	c      *delegation.Client
	ds     any
	op     func(ds any) any
	thunk  delegation.Task
	faults *metrics.FaultCounters

	// Logged-invocation state: the reusable record encoder reads these
	// exactly like thunk reads ds/op. logenc prefixes the structure name
	// and delegates to the task's Log encoder, so a logged Invoke carries
	// no per-call closure either.
	logName string
	logApp  func(dst []byte) []byte
	logenc  func(dst []byte) []byte

	// Pipelined-statement state: per-slot argument blocks, the FIFO of
	// issued-but-unrecycled futures, and the future free list.
	athunks []asyncThunk
	qhead   *AsyncFuture
	qtail   *AsyncFuture
	pool    *AsyncFuture

	// Batch-invocation state: the reusable thunk of InvokeBatch reads these
	// exactly like thunk reads ds/op.
	bds    any
	bops   []func(ds any) any
	bout   []any
	bthunk delegation.Task

	// Typed-op state (InvokeKVLogged): the reusable KV record encoder
	// prefixes the structure name and delegates to the caller's encoder,
	// exactly like logenc does for closure tasks. The worker invokes it
	// with the slot's own kind/key/val, so unlike logenc it needs no
	// per-call argument capture beyond these two fields.
	kvName string
	kvApp  delegation.KVEncoder
	kvenc  delegation.KVEncoder
}

// asyncThunk is one reserved slot's argument block on the pipelined path.
// SubmitAsync stores the structure instance, operation and argument here and
// posts the slot's prebuilt fn, so a statement carries no per-call closure.
// Reuse is safe for the same reason the sync thunk's is: the slot returns to
// the free stack only after its embedded future completes, which happens
// after the worker has finished reading these fields.
type asyncThunk struct {
	ds  any
	op  func(ds, arg any) any
	arg any
	fn  delegation.Task

	// Logged-statement state (SubmitAsyncLogged): the per-slot prebuilt
	// encFn prefixes the structure name and calls encAp with the slot's
	// argument block. The encoder runs on the worker after op, so it may
	// derive the record from post-execution state reachable through arg.
	name  string
	encAp func(dst []byte, arg any) []byte
	encFn func(dst []byte) []byte
}

// AsyncFuture is the handle SubmitAsync returns for one pipelined
// statement. It is pooled per session client: Wait caches the result, and
// once a future is both resolved and consumed it recycles from the FIFO head
// back onto the free list — so a long-lived session issues millions of
// statements through a handful of future objects.
//
// Consume-once contract: call Wait exactly once per returned future (it
// blocks, or returns the result a Barrier already cached). After Wait the
// handle may be recycled and must not be touched again.
type AsyncFuture struct {
	sc       *sessionClient
	h        delegation.InvokeHandle
	val      any
	err      error
	kv       bool   // issued by SubmitKV: resolve through AwaitKV
	kvVal    uint64 // typed result value (kv futures only)
	kvOK     bool   // typed result found flag (kv futures only)
	resolved bool   // result cached; the underlying slot is free again
	consumed bool   // Wait handed the result to the caller
	qNext    *AsyncFuture
}

// getFuture pops a pooled future (or mints one) and rearms it.
func (sc *sessionClient) getFuture() *AsyncFuture {
	f := sc.pool
	if f == nil {
		f = &AsyncFuture{sc: sc}
	} else {
		sc.pool = f.qNext
	}
	f.val, f.err = nil, nil
	f.kv, f.kvVal, f.kvOK = false, 0, false
	f.resolved, f.consumed = false, false
	f.qNext = nil
	return f
}

// enqueue appends an issued future to the client's FIFO.
func (sc *sessionClient) enqueue(f *AsyncFuture) {
	if sc.qtail == nil {
		sc.qhead = f
	} else {
		sc.qtail.qNext = f
	}
	sc.qtail = f
}

// recycleHead returns fully finished futures at the FIFO head to the pool.
// Only head recycling keeps the invariant that every queued future is still
// owned by its issuer: a resolved-but-unconsumed future stays queued (and
// un-recycled) until its Wait.
func (sc *sessionClient) recycleHead() {
	for f := sc.qhead; f != nil && f.resolved && f.consumed; f = sc.qhead {
		sc.qhead = f.qNext
		if sc.qhead == nil {
			sc.qtail = nil
		}
		f.val, f.err = nil, nil
		f.qNext = sc.pool
		sc.pool = f
	}
}

// resolve awaits the future's handle if it hasn't been awaited yet, caching
// the result and freeing the slot. Idempotent.
func (sc *sessionClient) resolve(f *AsyncFuture) {
	if f.resolved {
		return
	}
	if f.kv {
		f.kvVal, f.kvOK, f.err = sc.c.AwaitKV(f.h)
	} else {
		f.val, f.err = sc.c.Await(f.h)
	}
	f.resolved = true
	if f.err != nil {
		sc.faults.TasksFailed.Add(1)
	}
}

// resolveOldest resolves the oldest unresolved queued future to free its
// slot, reporting whether there was one.
func (sc *sessionClient) resolveOldest() bool {
	f := sc.qhead
	for f != nil && f.resolved {
		f = f.qNext
	}
	if f == nil {
		return false
	}
	sc.resolve(f)
	return true
}

// ensureFree makes room for a synchronous delegation when every slot is held
// by an un-awaited pipelined handle (the delegation client can harvest its
// own ring-tracked delegations, but reserved handles are session-owned).
func (sc *sessionClient) ensureFree() {
	for sc.c.FreeSlots() == 0 && sc.c.Outstanding() == 0 {
		if !sc.resolveOldest() {
			return
		}
	}
}

// NewSession opens a session for a client thread logically running on the
// given CPU; the CPU determines NUMA-nearest slot assignment. Burst is the
// maximum number of outstanding tasks per domain.
func (rt *Runtime) NewSession(cpu, burst int) (*Session, error) {
	if cpu < 0 || cpu >= rt.cfg.Machine.LogicalCPUs() {
		return nil, fmt.Errorf("core: session cpu %d outside machine", cpu)
	}
	if burst < 1 {
		return nil, fmt.Errorf("core: burst must be ≥ 1, got %d", burst)
	}
	return &Session{
		rt: rt, cpu: cpu, burst: burst,
		perDomain:  map[*Domain]*sessionClient{},
		readShards: map[*Domain]*obs.ClientShard{},
	}, nil
}

// client returns (creating on first use) the delegation client for domain d.
func (s *Session) client(d *Domain) (*sessionClient, error) {
	if sc, ok := s.perDomain[d]; ok {
		return sc, nil
	}
	m := s.rt.cfg.Machine
	mySocket := m.SocketOfCPU(s.cpu)
	rank := func(worker int) int {
		if d.spec.Placement == PlaceMigratable {
			return 0
		}
		return m.Distance(mySocket, m.SocketOfCPU(d.workerCPUs[worker]))
	}
	slots, err := d.inbox.AcquireSlots(s.burst, rank)
	if err != nil {
		return nil, fmt.Errorf("core: domain %q: %w", d.spec.Name, err)
	}
	c, err := delegation.NewClient(slots)
	if err != nil {
		return nil, err
	}
	if d.obsDom != nil {
		c.SetProbe(d.obsDom.NewClient())
	}
	sc := &sessionClient{c: c, faults: s.rt.faults}
	sc.thunk = func() any { return sc.op(sc.ds) }
	sc.logenc = func(dst []byte) []byte {
		return sc.logApp(appendWALName(dst, sc.logName))
	}
	sc.bthunk = func() any {
		ds := sc.bds
		for i, op := range sc.bops {
			sc.bout[i] = op(ds)
		}
		return nil
	}
	sc.kvenc = func(dst []byte, kind uint8, key, val uint64) []byte {
		return sc.kvApp(appendWALName(dst, sc.kvName), kind, key, val)
	}
	sc.athunks = make([]asyncThunk, len(slots))
	for i := range sc.athunks {
		at := &sc.athunks[i]
		at.fn = func() any { return at.op(at.ds, at.arg) }
		at.encFn = func(dst []byte) []byte {
			return at.encAp(appendWALName(dst, at.name), at.arg)
		}
	}
	s.perDomain[d] = sc
	return sc, nil
}

// Submit routes the task to the domain owning its structure and delegates
// it, returning the future (step 1/2.x of Figure 3).
func (s *Session) Submit(task Task) (*delegation.Future, error) {
	s.noteWrite(task.Structure, 1)
	d, ds, err := s.rt.route(task.Structure)
	if err != nil {
		return nil, err
	}
	sc, err := s.client(d)
	if err != nil {
		return nil, err
	}
	sc.ensureFree()
	op := task.Op
	if task.Log != nil {
		name, logApp := task.Structure, task.Log
		return sc.c.DelegateLogged(func() any { return op(ds) }, func(dst []byte) []byte {
			return logApp(appendWALName(dst, name))
		}), nil
	}
	return sc.c.Delegate(func() any { return op(ds) }), nil
}

// SubmitAsync issues one pipelined statement against the named structure and
// returns its future without waiting: up to the session's burst of
// statements ride the domain's slots concurrently, and the caller
// synchronises once per dependency barrier (Wait per future, or Barrier)
// instead of once per statement. The op receives the structure instance and
// the given argument; threading the argument through instead of closing over
// it keeps the steady state allocation-free (per-slot argument blocks,
// pooled futures, recycled slot-embedded delegation futures).
//
// When all slots are in flight SubmitAsync resolves the oldest outstanding
// statement first (its result stays cached for its Wait), preserving the
// bursting-window semantics of Delegate.
func (s *Session) SubmitAsync(structure string, op func(ds, arg any) any, arg any) (*AsyncFuture, error) {
	s.noteWrite(structure, 1)
	d, ds, err := s.rt.route(structure)
	if err != nil {
		return nil, err
	}
	sc, err := s.client(d)
	if err != nil {
		return nil, err
	}
	i, ok := sc.c.Reserve()
	for !ok {
		if !sc.resolveOldest() {
			return nil, fmt.Errorf("core: domain %q: no free slots and no outstanding statements", d.spec.Name)
		}
		i, ok = sc.c.Reserve()
	}
	at := &sc.athunks[i]
	at.ds, at.op, at.arg = ds, op, arg
	f := sc.getFuture()
	f.h = sc.c.PostReserved(i, at.fn)
	sc.enqueue(f)
	return f, nil
}

// SubmitAsyncLogged is SubmitAsync for a logged mutation: enc encodes the
// statement's logical WAL record from its argument, and the future completes
// only after the record's group commit — Wait returning nil means durable.
// Like SubmitAsync the op and enc must be statement-pooled or otherwise
// allocation-free to keep the hot path clean.
func (s *Session) SubmitAsyncLogged(structure string, op func(ds, arg any) any, arg any, enc func(dst []byte, arg any) []byte) (*AsyncFuture, error) {
	s.noteWrite(structure, 1)
	d, ds, err := s.rt.route(structure)
	if err != nil {
		return nil, err
	}
	sc, err := s.client(d)
	if err != nil {
		return nil, err
	}
	i, ok := sc.c.Reserve()
	for !ok {
		if !sc.resolveOldest() {
			return nil, fmt.Errorf("core: domain %q: no free slots and no outstanding statements", d.spec.Name)
		}
		i, ok = sc.c.Reserve()
	}
	at := &sc.athunks[i]
	at.ds, at.op, at.arg = ds, op, arg
	at.name, at.encAp = structure, enc
	f := sc.getFuture()
	f.h = sc.c.PostReservedLogged(i, at.fn, at.encFn)
	sc.enqueue(f)
	return f, nil
}

// Wait blocks until the statement completes and returns its result (or the
// result a Barrier already cached). Lifecycle failures surface exactly like
// Invoke's: PanicError, or ErrWorkerStopped when the statement never ran.
// Consume-once: the handle recycles after Wait and must not be reused.
func (f *AsyncFuture) Wait() (any, error) {
	sc := f.sc
	sc.resolve(f)
	f.consumed = true
	v, err := f.val, f.err
	sc.recycleHead()
	return v, err
}

// WaitKV is Wait for a future returned by SubmitKV: it returns the typed
// value/found pair instead of a boxed any. Consume-once, like Wait.
func (f *AsyncFuture) WaitKV() (uint64, bool, error) {
	sc := f.sc
	sc.resolve(f)
	f.consumed = true
	v, ok, err := f.kvVal, f.kvOK, f.err
	sc.recycleHead()
	return v, ok, err
}

// Done reports whether the statement's result is already available without
// blocking (either cached by a Barrier or completed in its slot).
func (f *AsyncFuture) Done() bool {
	return f.resolved || f.sc.c.HandleDone(f.h)
}

// Barrier resolves every outstanding pipelined statement previously issued
// to the named structure's domain, returning the first lifecycle error among
// them. Results stay cached: each future's Wait still returns its own
// result. A barrier on a structure with no outstanding statements is free.
func (s *Session) Barrier(structure string) error {
	d, _, err := s.rt.route(structure)
	if err != nil {
		return err
	}
	sc, ok := s.perDomain[d]
	if !ok {
		return nil
	}
	var firstErr error
	for f := sc.qhead; f != nil; f = f.qNext {
		sc.resolve(f)
		if f.err != nil && firstErr == nil {
			firstErr = f.err
		}
	}
	sc.recycleHead()
	return firstErr
}

// Invoke submits the task and waits for its result (synchronous
// delegation). Lifecycle failures surface as the error: a PanicError when
// the task panicked in its domain, ErrWorkerStopped when the runtime shut
// down before the task ran.
//
// Invoke is the zero-allocation round trip: the task runs through the
// session's reusable per-domain thunk and the slot's recycled embedded
// future, so the steady state allocates nothing (unlike Submit, whose
// detached future and closure must escape to the heap).
func (s *Session) Invoke(task Task) (any, error) {
	s.noteWrite(task.Structure, 1)
	d, ds, err := s.rt.route(task.Structure)
	if err != nil {
		return nil, err
	}
	sc, err := s.client(d)
	if err != nil {
		return nil, err
	}
	sc.ensureFree()
	sc.ds, sc.op = ds, task.Op
	var v any
	if task.Log != nil {
		// Logged mutation: the future completes after the group commit, so
		// a nil error here means the record is durable. Field reuse is safe
		// for the same reason ds/op reuse is — the call is synchronous and
		// the encoder runs on the worker before the future completes.
		sc.logName, sc.logApp = task.Structure, task.Log
		v, err = sc.c.InvokeLoggedErr(sc.thunk, sc.logenc)
	} else {
		v, err = sc.c.InvokeErr(sc.thunk)
	}
	if err != nil {
		s.rt.faults.TasksFailed.Add(1)
		return nil, err
	}
	return v, nil
}

// InvokeKV submits one typed key/value op (delegation.KVGet, KVInsert,
// KVUpdate or KVDelete) against the named structure and waits for its
// value/found pair. The op travels as three words in the slot — no closure,
// no boxing — and executes through the structure's batch kernel: when the
// owning worker runs interleaved sweeps (Config.BatchExec) adjacent typed
// ops are grouped into one kernel call that overlaps their traversal cache
// misses with software prefetch; otherwise the kernel runs them one at a
// time with identical semantics. The structure must implement
// delegation.BatchKernel (every built-in index does); structures without a
// kernel must use Invoke with a closure task.
func (s *Session) InvokeKV(structure string, kind uint8, key, val uint64) (uint64, bool, error) {
	s.noteWrite(structure, 1)
	d, ds, err := s.rt.route(structure)
	if err != nil {
		return 0, false, err
	}
	kern, ok := ds.(delegation.BatchKernel)
	if !ok {
		return 0, false, fmt.Errorf("core: structure %q has no batch kernel; use Invoke", structure)
	}
	sc, err := s.client(d)
	if err != nil {
		return 0, false, err
	}
	sc.ensureFree()
	v, found, err := sc.c.InvokeKVErr(kern, kind, key, val)
	if err != nil {
		s.rt.faults.TasksFailed.Add(1)
		return 0, false, err
	}
	return v, found, nil
}

// InvokeKVLogged is InvokeKV for a logged mutation: enc encodes the op's
// logical WAL record from its kind/key/val (the structure-name prefix is
// added by the session) and the call returns only after the record's group
// commit — a nil error means durable.
func (s *Session) InvokeKVLogged(structure string, kind uint8, key, val uint64, enc delegation.KVEncoder) (uint64, bool, error) {
	s.noteWrite(structure, 1)
	d, ds, err := s.rt.route(structure)
	if err != nil {
		return 0, false, err
	}
	kern, ok := ds.(delegation.BatchKernel)
	if !ok {
		return 0, false, fmt.Errorf("core: structure %q has no batch kernel; use Invoke", structure)
	}
	sc, err := s.client(d)
	if err != nil {
		return 0, false, err
	}
	sc.ensureFree()
	sc.kvName, sc.kvApp = structure, enc
	v, found, err := sc.c.InvokeKVLoggedErr(kern, kind, key, val, sc.kvenc)
	if err != nil {
		s.rt.faults.TasksFailed.Add(1)
		return 0, false, err
	}
	return v, found, nil
}

// SubmitKV issues one pipelined typed op and returns its future without
// waiting — the typed counterpart of SubmitAsync, and the path that feeds
// interleaved execution best: a burst of SubmitKV calls lands several typed
// ops in the worker's pass, so one sweep executes them through a single
// prefetch-interleaved kernel call. Synchronise with WaitKV (or Barrier,
// then WaitKV for the cached results).
func (s *Session) SubmitKV(structure string, kind uint8, key, val uint64) (*AsyncFuture, error) {
	s.noteWrite(structure, 1)
	d, ds, err := s.rt.route(structure)
	if err != nil {
		return nil, err
	}
	kern, ok := ds.(delegation.BatchKernel)
	if !ok {
		return nil, fmt.Errorf("core: structure %q has no batch kernel; use SubmitAsync", structure)
	}
	sc, err := s.client(d)
	if err != nil {
		return nil, err
	}
	i, ok := sc.c.Reserve()
	for !ok {
		if !sc.resolveOldest() {
			return nil, fmt.Errorf("core: domain %q: no free slots and no outstanding statements", d.spec.Name)
		}
		i, ok = sc.c.Reserve()
	}
	f := sc.getFuture()
	f.kv = true
	f.h = sc.c.PostReservedKV(i, kern, kind, key, val)
	sc.enqueue(f)
	return f, nil
}

// SubmitBulk delegates several tasks targeting the same structure under a
// single synchronisation phase (bulk bursting) and returns their results in
// order. The error is the first lifecycle failure among them (PanicError,
// ErrWorkerStopped); results of failed tasks are nil.
func (s *Session) SubmitBulk(structure string, ops []func(ds any) any) ([]any, error) {
	s.noteWrite(structure, uint64(len(ops)))
	d, ds, err := s.rt.route(structure)
	if err != nil {
		return nil, err
	}
	sc, err := s.client(d)
	if err != nil {
		return nil, err
	}
	sc.ensureFree()
	tasks := make([]delegation.Task, len(ops))
	for i, op := range ops {
		op := op
		tasks[i] = func() any { return op(ds) }
	}
	out, err := sc.c.DelegateBulkErr(tasks)
	if err != nil {
		s.rt.faults.TasksFailed.Add(1)
	}
	return out, err
}

// InvokeBatch executes several operations against the same structure as ONE
// delegated task — same-domain task fusion: the worker runs the ops in order
// in a single sweep, so the batch pays one round trip instead of len(ops).
// Results come back in order. If an op panics, the whole batch completes
// with its PanicError; results of the ops that ran before the panic are
// already filled in, the rest stay nil.
//
// Like Invoke, the batch rides a reusable per-domain thunk and the slot's
// recycled future — the only steady-state allocation is the results slice.
func (s *Session) InvokeBatch(structure string, ops []func(ds any) any) ([]any, error) {
	s.noteWrite(structure, uint64(len(ops)))
	d, ds, err := s.rt.route(structure)
	if err != nil {
		return nil, err
	}
	sc, err := s.client(d)
	if err != nil {
		return nil, err
	}
	sc.ensureFree()
	out := make([]any, len(ops))
	sc.bds, sc.bops, sc.bout = ds, ops, out
	_, err = sc.c.InvokeErr(sc.bthunk)
	sc.bds, sc.bops, sc.bout = nil, nil, nil
	if err != nil {
		s.rt.faults.TasksFailed.Add(1)
		return out, err
	}
	return out, nil
}

// Close drains all outstanding tasks and returns the session's slots. The
// error reports the first drain failure (a task abandoned by a stopped or
// crashed worker) or slot-release inconsistency; the session is torn down
// either way.
func (s *Session) Close() error {
	s.flushReadStats()
	for _, sh := range s.readShards {
		sh.Flush()
	}
	var firstErr error
	for d, sc := range s.perDomain {
		// Retire the pipelined statements first: every issued handle must be
		// awaited before its slot can be released.
		for f := sc.qhead; f != nil; f = f.qNext {
			sc.resolve(f)
			if f.err != nil && firstErr == nil {
				firstErr = f.err
			}
			f.consumed = true
		}
		sc.qhead, sc.qtail, sc.pool = nil, nil, nil
		if err := sc.c.DrainErr(); err != nil && firstErr == nil {
			firstErr = err
		}
		if err := d.inbox.ReleaseSlots(sc.c.Slots()); err != nil && firstErr == nil {
			firstErr = err
		}
		delete(s.perDomain, d)
	}
	return firstErr
}
