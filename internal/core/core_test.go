package core

import (
	"runtime"
	"sync"
	"testing"
	"time"

	"robustconf/internal/index/btree"
	"robustconf/internal/index/hashmap"
	"robustconf/internal/topology"
)

// twoDomainConfig partitions a 1-socket machine into two 24-CPU domains with
// one structure each.
func twoDomainConfig(t *testing.T) (Config, map[string]any) {
	t.Helper()
	m, err := topology.Restricted(1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Machine: m,
		Domains: []DomainSpec{
			{Name: "d0", CPUs: topology.Range(0, 24)},
			{Name: "d1", CPUs: topology.Range(24, 48)},
		},
		Assignment: map[string]int{"tree": 0, "map": 1},
	}
	return cfg, map[string]any{"tree": btree.New(), "map": hashmap.New()}
}

func TestConfigValidate(t *testing.T) {
	m, _ := topology.Restricted(1)
	good := Config{
		Machine:    m,
		Domains:    []DomainSpec{{Name: "a", CPUs: topology.Range(0, 4)}},
		Assignment: map[string]int{"x": 0},
	}
	if err := good.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"no machine", func(c *Config) { c.Machine = nil }},
		{"no domains", func(c *Config) { c.Domains = nil }},
		{"unnamed domain", func(c *Config) { c.Domains[0].Name = "" }},
		{"empty cpus", func(c *Config) { c.Domains[0].CPUs = topology.CPUSet{} }},
		{"cpu out of range", func(c *Config) { c.Domains[0].CPUs = topology.Range(40, 50) }},
		{"bad assignment", func(c *Config) { c.Assignment = map[string]int{"x": 5} }},
		{"duplicate names", func(c *Config) {
			c.Domains = append(c.Domains, DomainSpec{Name: "a", CPUs: topology.Range(10, 12)})
		}},
		{"overlapping domains", func(c *Config) {
			c.Domains = append(c.Domains, DomainSpec{Name: "b", CPUs: topology.Range(2, 6)})
		}},
	}
	for _, c := range cases {
		cfg := Config{
			Machine:    m,
			Domains:    []DomainSpec{{Name: "a", CPUs: topology.Range(0, 4)}},
			Assignment: map[string]int{"x": 0},
		}
		c.mut(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: invalid config accepted", c.name)
		}
	}
}

func TestStartRejectsMismatchedStructures(t *testing.T) {
	cfg, structures := twoDomainConfig(t)
	delete(structures, "map")
	if _, err := Start(cfg, structures); err == nil {
		t.Error("missing structure accepted")
	}
	cfg2, structures2 := twoDomainConfig(t)
	structures2["extra"] = btree.New()
	if _, err := Start(cfg2, structures2); err == nil {
		t.Error("unassigned structure accepted")
	}
	_ = cfg
}

func TestRuntimeBasicInvoke(t *testing.T) {
	cfg, structures := twoDomainConfig(t)
	rt, err := Start(cfg, structures)
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Stop()

	s, err := rt.NewSession(0, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	res, err := s.Invoke(Task{Structure: "tree", Op: func(ds any) any {
		tr := ds.(*btree.Tree)
		tr.Insert(1, 100, nil)
		v, _ := tr.Get(1, nil)
		return v
	}})
	if err != nil {
		t.Fatal(err)
	}
	if res != uint64(100) {
		t.Errorf("Invoke = %v, want 100", res)
	}
	if _, err := s.Invoke(Task{Structure: "nope", Op: func(any) any { return nil }}); err == nil {
		t.Error("unknown structure accepted")
	}
}

func TestTasksRouteToOwningDomain(t *testing.T) {
	cfg, structures := twoDomainConfig(t)
	rt, err := Start(cfg, structures)
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Stop()

	s, _ := rt.NewSession(0, 2)
	defer s.Close()
	s.Invoke(Task{Structure: "tree", Op: func(any) any { return nil }})
	s.Invoke(Task{Structure: "map", Op: func(any) any { return nil }})

	d0, _ := rt.DomainOf("tree")
	d1, _ := rt.DomainOf("map")
	if d0 == d1 {
		t.Fatal("structures share a domain")
	}
	rt.Stop() // worker exit publishes the final stat flush
	exec0, exec1 := uint64(0), uint64(0)
	for _, b := range d0.Inbox().Buffers() {
		exec0 += b.Executed.Load()
	}
	for _, b := range d1.Inbox().Buffers() {
		exec1 += b.Executed.Load()
	}
	if exec0 != 1 || exec1 != 1 {
		t.Errorf("executions per domain = %d/%d, want 1/1", exec0, exec1)
	}
}

func TestDomainAccessors(t *testing.T) {
	cfg, structures := twoDomainConfig(t)
	rt, err := Start(cfg, structures)
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Stop()
	if len(rt.Domains()) != 2 {
		t.Fatalf("Domains = %d", len(rt.Domains()))
	}
	d := rt.Domains()[0]
	if d.Workers() != 24 {
		t.Errorf("Workers = %d, want 24", d.Workers())
	}
	if d.Spec().Name != "d0" {
		t.Errorf("Spec.Name = %q", d.Spec().Name)
	}
	if rt.Config().Machine == nil {
		t.Error("Config lost machine")
	}
}

func TestAsyncSubmitBurst(t *testing.T) {
	cfg, structures := twoDomainConfig(t)
	rt, _ := Start(cfg, structures)
	defer rt.Stop()
	s, _ := rt.NewSession(0, 14)
	defer s.Close()

	tr := structures["tree"].(*btree.Tree)
	var futs []*futWrap
	for i := uint64(0); i < 500; i++ {
		i := i
		f, err := s.Submit(Task{Structure: "tree", Op: func(ds any) any {
			ds.(*btree.Tree).Insert(i, i, nil)
			return nil
		}})
		if err != nil {
			t.Fatal(err)
		}
		futs = append(futs, &futWrap{f.Wait})
	}
	for _, f := range futs {
		f.wait()
	}
	if tr.Len() != 500 {
		t.Errorf("tree has %d keys, want 500", tr.Len())
	}
}

type futWrap struct{ wait func() any }

func TestSubmitBulk(t *testing.T) {
	cfg, structures := twoDomainConfig(t)
	rt, _ := Start(cfg, structures)
	defer rt.Stop()
	s, _ := rt.NewSession(0, 8)
	defer s.Close()

	var ops []func(ds any) any
	for i := uint64(0); i < 100; i++ {
		i := i
		ops = append(ops, func(ds any) any {
			ds.(*hashmap.Map).Insert(i, i*3, nil)
			return i
		})
	}
	out, err := s.SubmitBulk("map", ops)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != uint64(i) {
			t.Fatalf("bulk[%d] = %v", i, v)
		}
	}
	if structures["map"].(*hashmap.Map).Len() != 100 {
		t.Error("bulk inserts lost")
	}
	if _, err := s.SubmitBulk("nope", ops); err == nil {
		t.Error("bulk to unknown structure accepted")
	}
}

func TestManyConcurrentSessions(t *testing.T) {
	cfg, structures := twoDomainConfig(t)
	rt, _ := Start(cfg, structures)
	defer rt.Stop()

	tr := structures["tree"].(*btree.Tree)
	var wg sync.WaitGroup
	const sessions, perS = 8, 300
	for g := 0; g < sessions; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			s, err := rt.NewSession(g%48, 4)
			if err != nil {
				t.Error(err)
				return
			}
			defer s.Close()
			for i := 0; i < perS; i++ {
				k := uint64(g*perS + i)
				_, err := s.Invoke(Task{Structure: "tree", Op: func(ds any) any {
					return ds.(*btree.Tree).Insert(k, k, nil)
				}})
				if err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if tr.Len() != sessions*perS {
		t.Errorf("tree has %d keys, want %d", tr.Len(), sessions*perS)
	}
}

func TestSessionValidation(t *testing.T) {
	cfg, structures := twoDomainConfig(t)
	rt, _ := Start(cfg, structures)
	defer rt.Stop()
	if _, err := rt.NewSession(-1, 4); err == nil {
		t.Error("negative cpu accepted")
	}
	if _, err := rt.NewSession(999, 4); err == nil {
		t.Error("out-of-range cpu accepted")
	}
	if _, err := rt.NewSession(0, 0); err == nil {
		t.Error("zero burst accepted")
	}
}

func TestOfflineReconfigure(t *testing.T) {
	cfg, structures := twoDomainConfig(t)
	rt, err := Start(cfg, structures)
	if err != nil {
		t.Fatal(err)
	}
	s, _ := rt.NewSession(0, 4)
	s.Invoke(Task{Structure: "tree", Op: func(ds any) any {
		return ds.(*btree.Tree).Insert(7, 7, nil)
	}})
	s.Close()

	// Reconfigure: merge everything into one big domain.
	m := cfg.Machine
	cfg2 := Config{
		Machine:    m,
		Domains:    []DomainSpec{{Name: "all", CPUs: topology.Range(0, 48)}},
		Assignment: map[string]int{"tree": 0, "map": 0},
	}
	rt2, err := rt.Reconfigure(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	defer rt2.Stop()

	// Data inserted under the old configuration must survive.
	s2, _ := rt2.NewSession(0, 4)
	defer s2.Close()
	v, err := s2.Invoke(Task{Structure: "tree", Op: func(ds any) any {
		v, _ := ds.(*btree.Tree).Get(7, nil)
		return v
	}})
	if err != nil {
		t.Fatal(err)
	}
	if v != uint64(7) {
		t.Errorf("value after reconfiguration = %v", v)
	}
	if len(rt2.Domains()) != 1 {
		t.Errorf("new runtime has %d domains", len(rt2.Domains()))
	}
}

func TestStopIdempotent(t *testing.T) {
	cfg, structures := twoDomainConfig(t)
	rt, _ := Start(cfg, structures)
	rt.Stop()
	rt.Stop() // second stop must not panic or deadlock
}

func TestNUMANearestSlotAssignment(t *testing.T) {
	// Domain spanning sockets 0 and 1 of a 2-socket machine; a client on
	// socket 1 must get slots from socket-1 workers.
	// On Restricted(2) the primary SMT threads are ids 0-47: 0-23 on
	// socket 0 and 24-47 on socket 1.
	m, _ := topology.Restricted(2)
	cpus := topology.Range(0, 4).Union(topology.Range(24, 28))
	cfg := Config{
		Machine:    m,
		Domains:    []DomainSpec{{Name: "span", CPUs: cpus, Placement: PlacePinned}},
		Assignment: map[string]int{"tree": 0},
	}
	rt, err := Start(cfg, map[string]any{"tree": btree.New()})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Stop()

	s, _ := rt.NewSession(26, 2) // client on socket 1
	defer s.Close()
	s.Invoke(Task{Structure: "tree", Op: func(any) any { return nil }})

	d := rt.Domains()[0]
	rt.Stop() // worker exit publishes the final stat flush
	// Workers 4..7 are the socket-1 CPUs (24..27); the executed task must
	// have landed there.
	var socket1Exec uint64
	for wi, b := range d.Inbox().Buffers() {
		if m.SocketOfCPU(d.workerCPUs[wi]) == 1 {
			socket1Exec += b.Executed.Load()
		}
	}
	if socket1Exec != 1 {
		t.Errorf("task executed on socket-1 workers %d times, want 1", socket1Exec)
	}
}

func TestPinWorkersOnDetectedHost(t *testing.T) {
	host, err := topology.DetectHost()
	if err != nil {
		t.Skipf("host detection unavailable: %v", err)
	}
	n := host.LogicalCPUs()
	cfg := Config{
		Machine:    host,
		Domains:    []DomainSpec{{Name: "host", CPUs: topology.Range(0, n), Placement: PlacePinned}},
		Assignment: map[string]int{"x": 0},
		PinWorkers: true,
	}
	// The domain CPU set must use the host's real ids; Range(0,n) works when
	// they are dense (common case), otherwise fall back to the explicit ids.
	ids := make([]int, 0, n)
	for _, c := range host.CPUs() {
		ids = append(ids, c.ID)
	}
	cfg.Domains[0].CPUs = topology.NewCPUSet(ids...)

	rt, err := Start(cfg, map[string]any{"x": btree.New()})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Stop()
	s, _ := rt.NewSession(ids[0], 2)
	defer s.Close()
	v, err := s.Invoke(Task{Structure: "x", Op: func(ds any) any {
		return ds.(*btree.Tree).Insert(1, 1, nil)
	}})
	if err != nil || v != true {
		t.Fatalf("pinned runtime failed: %v %v", v, err)
	}
}

func TestPinWorkersDegradesOnSimulatedTopology(t *testing.T) {
	// PinWorkers with the simulated 48-CPU machine: most ids don't exist on
	// this host, so pinning fails and workers degrade to migratable — the
	// runtime must still serve correctly.
	m, _ := topology.Restricted(1)
	cfg := Config{
		Machine:    m,
		Domains:    []DomainSpec{{Name: "a", CPUs: topology.Range(0, 48), Placement: PlacePinned}},
		Assignment: map[string]int{"x": 0},
		PinWorkers: true,
	}
	rt, err := Start(cfg, map[string]any{"x": btree.New()})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Stop()
	s, _ := rt.NewSession(0, 2)
	defer s.Close()
	if v, err := s.Invoke(Task{Structure: "x", Op: func(any) any { return 7 }}); err != nil || v != 7 {
		t.Fatalf("degraded runtime failed: %v %v", v, err)
	}
}

func TestDomainStats(t *testing.T) {
	cfg, structures := twoDomainConfig(t)
	rt, _ := Start(cfg, structures)
	defer rt.Stop()
	s, _ := rt.NewSession(0, 4)
	defer s.Close()
	for i := 0; i < 50; i++ {
		if _, err := s.Invoke(Task{Structure: "tree", Op: func(any) any { return nil }}); err != nil {
			t.Fatal(err)
		}
	}
	// Counters publish on the worker's flush cadence (or when it parks
	// idle), so poll briefly instead of stopping the runtime — the test
	// migrates on it below.
	var stats []DomainStats
	deadline := time.Now().Add(2 * time.Second)
	for {
		stats = rt.Stats()
		if len(stats) == 2 && stats[0].Executed == 50 {
			break
		}
		if time.Now().After(deadline) {
			break
		}
		runtime.Gosched()
	}
	if len(stats) != 2 {
		t.Fatalf("stats for %d domains", len(stats))
	}
	if stats[0].Executed != 50 {
		t.Errorf("domain 0 executed %d, want 50", stats[0].Executed)
	}
	if stats[0].Structures != 1 || stats[1].Structures != 1 {
		t.Errorf("structure counts: %d/%d", stats[0].Structures, stats[1].Structures)
	}
	if stats[0].Occupancy() < 0 || stats[0].Occupancy() > 1 {
		t.Errorf("occupancy out of range: %v", stats[0].Occupancy())
	}
	if stats[0].Pending != 0 {
		t.Errorf("pending after sync invokes: %d", stats[0].Pending)
	}
	if stats[0].String() == "" {
		t.Error("empty stats string")
	}
	// Migration moves the structure count.
	if err := rt.Migrate("tree", 1); err != nil {
		t.Fatal(err)
	}
	stats = rt.Stats()
	if stats[0].Structures != 0 || stats[1].Structures != 2 {
		t.Errorf("post-migration structure counts: %d/%d", stats[0].Structures, stats[1].Structures)
	}
}

func TestDomainStatsZeroDivision(t *testing.T) {
	s := DomainStats{}
	if s.Occupancy() != 0 || s.BatchingRate() != 0 {
		t.Error("zero stats should not divide by zero")
	}
}
