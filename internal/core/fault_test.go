package core

import (
	"errors"
	"sync"
	"testing"
	"time"

	"robustconf/internal/delegation"
	"robustconf/internal/faultinject"
	"robustconf/internal/index/btree"
	"robustconf/internal/metrics"
	"robustconf/internal/topology"
)

// smallConfig is a one-domain, few-worker config so fault tests stay fast
// and a single worker's crash is observable.
func smallConfig(workers int) (Config, map[string]any) {
	m, _ := topology.Restricted(1)
	cfg := Config{
		Machine:    m,
		Domains:    []DomainSpec{{Name: "d", CPUs: topology.Range(0, workers)}},
		Assignment: map[string]int{"tree": 0},
	}
	return cfg, map[string]any{"tree": btree.New()}
}

// waitInvoke runs Invoke under a deadline so a regression back to hanging
// futures fails the test instead of wedging the suite.
func waitInvoke(t *testing.T, s *Session, task Task, d time.Duration) (any, error) {
	t.Helper()
	f, err := s.Submit(task)
	if err != nil {
		return nil, err
	}
	v, err := f.WaitTimeout(d)
	if errors.Is(err, delegation.ErrWaitTimeout) {
		t.Fatalf("future hung for %v", d)
	}
	return v, err
}

func TestInvokeUnwrapsPanicError(t *testing.T) {
	cfg, structures := smallConfig(2)
	rt, err := Start(cfg, structures)
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Stop()
	s, _ := rt.NewSession(0, 2)
	defer s.Close()

	_, err = s.Invoke(Task{Structure: "tree", Op: func(any) any { panic("task bug") }})
	var pe delegation.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("Invoke error = %v, want PanicError", err)
	}
	if pe.Value != "task bug" {
		t.Errorf("panic value = %v", pe.Value)
	}
	// The domain keeps serving after the task panic.
	if v, err := s.Invoke(Task{Structure: "tree", Op: func(any) any { return 7 }}); err != nil || v != 7 {
		t.Fatalf("post-panic invoke = %v, %v", v, err)
	}
}

func TestWorkerCrashRespawnsAndServes(t *testing.T) {
	metrics.Faults.Reset()
	cfg, structures := smallConfig(1) // single worker: the crash must hit it
	cfg.FaultHook = faultinject.New(1, faultinject.Rule{
		Kind: faultinject.WorkerKill, Worker: -1, EveryNth: 10, Once: true,
	})
	rt, err := Start(cfg, structures)
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Stop()
	s, _ := rt.NewSession(0, 2)
	defer s.Close()

	// Submit until the kill has fired and a task has completed after it:
	// the respawned worker on the same domain CPU must serve again.
	sawError := false
	okAfterCrash := 0
	for i := 0; i < 2000 && okAfterCrash < 10; i++ {
		v, err := waitInvoke(t, s, Task{Structure: "tree", Op: func(any) any { return i }}, 5*time.Second)
		if err != nil {
			var pe delegation.PanicError
			if !errors.As(err, &pe) {
				t.Fatalf("unexpected error type: %v", err)
			}
			sawError = true
			continue
		}
		if metrics.Faults.WorkerPanics.Load() > 0 {
			okAfterCrash++
		}
		_ = v
	}
	if metrics.Faults.WorkerPanics.Load() == 0 {
		t.Fatal("injected worker kill never fired")
	}
	if metrics.Faults.WorkerRestarts.Load() == 0 {
		t.Fatal("worker was not respawned")
	}
	if okAfterCrash < 10 {
		t.Fatalf("only %d tasks succeeded after the crash", okAfterCrash)
	}
	if rt.Domains()[0].Restarts() == 0 {
		t.Error("domain restart counter not consumed")
	}
	_ = sawError // tasks posted at crash time may or may not exist; both fine
}

func TestRestartBudgetExhaustionSealsDomain(t *testing.T) {
	metrics.Faults.Reset()
	cfg, structures := smallConfig(1)
	cfg.Domains[0].RestartBudget = 2
	// Kill the worker on every sweep: the budget burns out immediately.
	cfg.FaultHook = faultinject.New(1, faultinject.Rule{
		Kind: faultinject.WorkerKill, Worker: -1, EveryNth: 1,
	})
	rt, err := Start(cfg, structures)
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Stop()
	s, _ := rt.NewSession(0, 2)
	defer s.Close()

	// Every submission must resolve — by error once the domain is sealed.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("domain never sealed after budget exhaustion")
		}
		_, err := waitInvoke(t, s, Task{Structure: "tree", Op: func(any) any { return 1 }}, 5*time.Second)
		if errors.Is(err, delegation.ErrWorkerStopped) || errors.Is(err, ErrDomainDead) {
			break // sealed: typed error instead of a hang
		}
	}
	// Once dead, routing fails fast with the permanent verdict.
	if _, err := waitInvoke(t, s, Task{Structure: "tree", Op: func(any) any { return 1 }}, 5*time.Second); !errors.Is(err, ErrDomainDead) {
		t.Errorf("post-seal submission error = %v, want ErrDomainDead", err)
	}
	if !rt.Domains()[0].Dead() {
		t.Error("Dead() = false after exhaustion")
	}
	if got := rt.Domains()[0].BudgetRemaining(); got != 0 {
		t.Errorf("BudgetRemaining = %d, want 0", got)
	}
	if metrics.Faults.RestartsExhausted.Load() == 0 {
		t.Error("exhaustion not counted")
	}
	if got := rt.Domains()[0].Restarts(); got < 2 {
		t.Errorf("restarts consumed = %d, want ≥ budget 2", got)
	}
}

// TestReconfigureUnderConcurrentSessions is the satellite race test: client
// goroutines submit throughout an offline reconfiguration; every submission
// must get a result or ErrWorkerStopped, never hang. Run with -race.
func TestReconfigureUnderConcurrentSessions(t *testing.T) {
	m, _ := topology.Restricted(1)
	cfg := Config{
		Machine: m,
		Domains: []DomainSpec{
			{Name: "d0", CPUs: topology.Range(0, 4)},
			{Name: "d1", CPUs: topology.Range(4, 8)},
		},
		Assignment: map[string]int{"tree": 0},
	}
	rt, err := Start(cfg, map[string]any{"tree": btree.New()})
	if err != nil {
		t.Fatal(err)
	}

	const clients = 6
	var wg sync.WaitGroup
	start := make(chan struct{})
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			s, err := rt.NewSession(g%8, 4)
			if err != nil {
				t.Error(err)
				return
			}
			defer s.Close()
			<-start
			for i := 0; i < 400; i++ {
				k := uint64(g*1000 + i)
				f, err := s.Submit(Task{Structure: "tree", Op: func(ds any) any {
					return ds.(*btree.Tree).Insert(k, k, nil)
				}})
				if err != nil {
					return // routing error after stop is acceptable
				}
				_, werr := f.WaitTimeout(10 * time.Second)
				if errors.Is(werr, delegation.ErrWaitTimeout) {
					t.Errorf("client %d: future hung during reconfiguration", g)
					return
				}
				if werr != nil && !errors.Is(werr, delegation.ErrWorkerStopped) {
					t.Errorf("client %d: unexpected error %v", g, werr)
					return
				}
			}
		}(g)
	}
	close(start)
	// Reconfigure mid-traffic: merge to one domain.
	cfg2 := Config{
		Machine:    m,
		Domains:    []DomainSpec{{Name: "all", CPUs: topology.Range(0, 8)}},
		Assignment: map[string]int{"tree": 0},
	}
	rt2, err := rt.Reconfigure(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	rt2.Stop()
}

// TestMigrateUnderConcurrentSessions: structures migrate between domains
// while sessions submit; every future must resolve. Run with -race.
func TestMigrateUnderConcurrentSessions(t *testing.T) {
	m, _ := topology.Restricted(1)
	cfg := Config{
		Machine: m,
		Domains: []DomainSpec{
			{Name: "d0", CPUs: topology.Range(0, 4)},
			{Name: "d1", CPUs: topology.Range(4, 8)},
		},
		Assignment: map[string]int{"tree": 0},
	}
	rt, err := Start(cfg, map[string]any{"tree": btree.New()})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Stop()

	stopMigr := make(chan struct{})
	var migrWG sync.WaitGroup
	migrWG.Add(1)
	go func() {
		defer migrWG.Done()
		to := 1
		for {
			select {
			case <-stopMigr:
				return
			default:
			}
			if err := rt.Migrate("tree", to); err != nil {
				t.Error(err)
				return
			}
			to = 1 - to
		}
	}()

	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			s, err := rt.NewSession(g%8, 4)
			if err != nil {
				t.Error(err)
				return
			}
			defer s.Close()
			for i := 0; i < 300; i++ {
				k := uint64(g*1000 + i)
				v, err := waitInvoke(t, s, Task{Structure: "tree", Op: func(ds any) any {
					return ds.(*btree.Tree).Insert(k, k, nil)
				}}, 10*time.Second)
				if err != nil {
					t.Errorf("client %d: %v", g, err)
					return
				}
				if v != true {
					t.Errorf("client %d: insert %d = %v", g, k, v)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(stopMigr)
	migrWG.Wait()
}

// TestSubmitAfterStopGetsTypedError: the "draining all active operations"
// guarantee — a session that keeps using a stopped runtime errors instead
// of hanging.
func TestSubmitAfterStopGetsTypedError(t *testing.T) {
	cfg, structures := smallConfig(2)
	rt, err := Start(cfg, structures)
	if err != nil {
		t.Fatal(err)
	}
	s, _ := rt.NewSession(0, 2)
	// Acquire slots before the stop so the sealed-post path is exercised.
	if _, err := s.Invoke(Task{Structure: "tree", Op: func(any) any { return 1 }}); err != nil {
		t.Fatal(err)
	}
	rt.Stop()

	f, err := s.Submit(Task{Structure: "tree", Op: func(any) any { return 2 }})
	if err != nil {
		t.Fatalf("Submit after stop errored at routing: %v", err)
	}
	v, werr := f.WaitTimeout(5 * time.Second)
	if !errors.Is(werr, delegation.ErrWorkerStopped) {
		t.Fatalf("post-stop future = (%v, %v), want ErrWorkerStopped", v, werr)
	}
	if err := s.Close(); err != nil && !errors.Is(err, delegation.ErrWorkerStopped) {
		t.Errorf("Close = %v", err)
	}
	if stats := rt.Stats(); stats[0].Rescued == 0 {
		t.Error("rescued-post counter not incremented")
	}
}
