package core

import (
	"testing"
)

// TestInvokeZeroAlloc pins the session-level half of the zero-allocation
// round trip: Invoke routes through the per-domain reusable thunk and the
// slot's recycled embedded future, so the steady state — route, wrap, post,
// wait — allocates nothing.
func TestInvokeZeroAlloc(t *testing.T) {
	cfg, structures := twoDomainConfig(t)
	rt, err := Start(cfg, structures)
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Stop()
	s, _ := rt.NewSession(0, 1)
	defer s.Close()

	task := Task{Structure: "tree", Op: func(any) any { return nil }}
	if _, err := s.Invoke(task); err != nil { // warm up: lazy client creation
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(2000, func() {
		if _, err := s.Invoke(task); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("Session.Invoke allocates %.1f objects/op, want 0", n)
	}
}
