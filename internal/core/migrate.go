package core

import (
	"fmt"
	"runtime"
)

// This file implements online reconfiguration, which the paper leaves as
// future work (Section 2.2): moving a data structure instance between
// virtual domains while the runtime keeps serving, instead of draining the
// whole system offline.
//
// The protocol relies on the fact that domain exclusivity is a
// *performance* property in this runtime — the structures themselves are
// thread-safe per their schemes — so a short overlap window during which a
// straggler task still executes in the old domain while new tasks already
// run in the new one is correct, merely momentarily non-exclusive:
//
//  1. the assignment is swapped under the runtime lock, so every submission
//     after Migrate returns routes to the new domain;
//  2. Migrate then waits until the old domain's inboxes hold no posted
//     task, bounding the overlap window before it returns.

// Pending reports whether any slot of the domain's inbox currently holds a
// posted, unswept task (advisory; used by the migration quiesce loop).
func (d *Domain) Pending() bool {
	for _, b := range d.inbox.Buffers() {
		if b.Pending() > 0 {
			return true
		}
	}
	return false
}

// Migrate moves the named structure to the domain with index toDomain while
// the runtime keeps running. On return, all future tasks for the structure
// execute in the new domain and the old domain has fully drained.
func (rt *Runtime) Migrate(structure string, toDomain int) error {
	// Taken before rt.mu (lock order walMu > rt.mu) around the swap: a WAL
	// checkpoint or crash recovery walking either domain's structure set
	// must not interleave with the ownership change, or it would
	// snapshot/restore a structure another domain is mutating. Released
	// before the quiesce — a crashed worker's recovery needs it to respawn
	// and drain — with rt.migrating keeping checkpoints away meanwhile.
	rt.walMu.Lock()
	rt.migrating++
	defer func() {
		// Re-acquired (or still held on the error paths) by the time any
		// return runs; see the unlock/relock around the quiesce below.
		rt.migrating--
		rt.walMu.Unlock()
	}()
	rt.mu.Lock()
	if rt.stopped {
		rt.mu.Unlock()
		return fmt.Errorf("core: runtime stopped")
	}
	if toDomain < 0 || toDomain >= len(rt.domains) {
		rt.mu.Unlock()
		return fmt.Errorf("core: domain %d out of range", toDomain)
	}
	from, ok := rt.cfg.Assignment[structure]
	if !ok {
		rt.mu.Unlock()
		return fmt.Errorf("core: unknown structure %q", structure)
	}
	if from == toDomain {
		rt.mu.Unlock()
		return nil
	}
	src, dst := rt.domains[from], rt.domains[toDomain]
	if rs := rt.readStates[structure]; rs != nil {
		// Bump the migration epoch before the assignment swap, still under
		// the lock: any session that routed before this bump and validates a
		// bypass read after a new-domain mutation becomes visible re-reads
		// the epoch and discards the read (see Session.SubmitRead).
		rs.migrations.Add(1)
	}
	ds := src.structures[structure]
	dst.structures[structure] = ds
	delete(src.structures, structure)
	rt.cfg.Assignment[structure] = toDomain
	rt.mu.Unlock()

	// Quiesce: wait for the old domain's inboxes to drain so the
	// momentary non-exclusivity window closes before we return. Tasks
	// already posted there still see the structure through their closures
	// and execute correctly. walMu is dropped for the wait: draining may
	// require a crashed worker to recover and respawn, and recovery takes
	// walMu. rt.migrating stays elevated, so checkpoint ticks keep away
	// from the still-moving structure.
	rt.walMu.Unlock()
	for src.Pending() {
		runtime.Gosched()
	}
	rt.walMu.Lock()

	// With a WAL, re-checkpoint both ends so each domain's checkpoint again
	// matches its structure set: the source stops snapshotting the structure
	// (a crash there must not restore a stale copy over live state that now
	// lives elsewhere) and the destination starts. Sequential, one gate at a
	// time — recovery's skip rules make the transient window safe either way.
	if src.wal != nil || dst.wal != nil {
		_ = rt.checkpointDomainLocked(src)
		_ = rt.checkpointDomainLocked(dst)
	}
	return nil
}

// AssignmentOf returns the current domain index of the structure
// (post-migration views included).
func (rt *Runtime) AssignmentOf(structure string) (int, error) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	di, ok := rt.cfg.Assignment[structure]
	if !ok {
		return 0, fmt.Errorf("core: unknown structure %q", structure)
	}
	return di, nil
}
