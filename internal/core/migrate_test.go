package core

import (
	"sync"
	"sync/atomic"
	"testing"

	"robustconf/internal/index/btree"
	"robustconf/internal/topology"
)

func TestMigrateBasic(t *testing.T) {
	cfg, structures := twoDomainConfig(t)
	rt, err := Start(cfg, structures)
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Stop()

	if di, _ := rt.AssignmentOf("tree"); di != 0 {
		t.Fatalf("tree starts in domain %d", di)
	}
	if err := rt.Migrate("tree", 1); err != nil {
		t.Fatal(err)
	}
	if di, _ := rt.AssignmentOf("tree"); di != 1 {
		t.Errorf("tree in domain %d after migration", di)
	}
	// Self-migration is a no-op.
	if err := rt.Migrate("tree", 1); err != nil {
		t.Fatal(err)
	}
	// Tasks now execute in the new domain.
	s, _ := rt.NewSession(0, 2)
	defer s.Close()
	if _, err := s.Invoke(Task{Structure: "tree", Op: func(ds any) any {
		return ds.(*btree.Tree).Insert(1, 1, nil)
	}}); err != nil {
		t.Fatal(err)
	}
	d1 := rt.Domains()[1]
	rt.Stop() // worker exit publishes the final stat flush
	exec := uint64(0)
	for _, b := range d1.Inbox().Buffers() {
		exec += b.Executed.Load()
	}
	if exec != 1 {
		t.Errorf("post-migration task executed %d times in new domain, want 1", exec)
	}
}

func TestMigrateValidation(t *testing.T) {
	cfg, structures := twoDomainConfig(t)
	rt, _ := Start(cfg, structures)
	if err := rt.Migrate("nope", 1); err == nil {
		t.Error("unknown structure accepted")
	}
	if err := rt.Migrate("tree", 5); err == nil {
		t.Error("out-of-range domain accepted")
	}
	if _, err := rt.AssignmentOf("nope"); err == nil {
		t.Error("unknown structure accepted by AssignmentOf")
	}
	rt.Stop()
	if err := rt.Migrate("tree", 1); err == nil {
		t.Error("migration on stopped runtime accepted")
	}
}

// TestMigrateUnderLoad migrates a structure back and forth while client
// sessions hammer it; no task may be lost and every insert must land.
func TestMigrateUnderLoad(t *testing.T) {
	m, _ := topology.Restricted(1)
	cfg := Config{
		Machine: m,
		Domains: []DomainSpec{
			{Name: "a", CPUs: topology.Range(0, 16)},
			{Name: "b", CPUs: topology.Range(16, 32)},
			{Name: "c", CPUs: topology.Range(32, 48)},
		},
		Assignment: map[string]int{"hot": 0},
	}
	tree := btree.New()
	rt, err := Start(cfg, map[string]any{"hot": tree})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Stop()

	const clients, perClient = 4, 500
	var inserted atomic.Uint64
	var wg, migrWG sync.WaitGroup
	stopMigrate := make(chan struct{})

	// The migrator bounces the structure across all three domains.
	migrWG.Add(1)
	go func() {
		defer migrWG.Done()
		next := 1
		for {
			select {
			case <-stopMigrate:
				return
			default:
			}
			if err := rt.Migrate("hot", next); err != nil {
				t.Error(err)
				return
			}
			next = (next + 1) % 3
		}
	}()

	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			s, err := rt.NewSession(g, 4)
			if err != nil {
				t.Error(err)
				return
			}
			defer s.Close()
			for i := 0; i < perClient; i++ {
				k := uint64(g*perClient + i)
				res, err := s.Invoke(Task{Structure: "hot", Op: func(ds any) any {
					return ds.(*btree.Tree).Insert(k, k, nil)
				}})
				if err != nil {
					t.Error(err)
					return
				}
				if res == true {
					inserted.Add(1)
				}
			}
		}(g)
	}
	// Stop migrating once all clients are done.
	wg.Wait()
	close(stopMigrate)
	migrWG.Wait()

	if got := inserted.Load(); got != clients*perClient {
		t.Errorf("inserted = %d, want %d", got, clients*perClient)
	}
	if tree.Len() != clients*perClient {
		t.Errorf("tree holds %d keys, want %d", tree.Len(), clients*perClient)
	}
}
