package core

import (
	"testing"

	"robustconf/internal/faultinject"
	"robustconf/internal/metrics"
	"robustconf/internal/obs"
)

// TestRuntimeObsWiring attaches an observer to a runtime and checks that the
// traffic a session drives shows up in the aggregated snapshot with domain
// attribution, and that lifecycle events cover start and stop.
func TestRuntimeObsWiring(t *testing.T) {
	cfg, structures := twoDomainConfig(t)
	o := obs.New(obs.Options{SampleEvery: 1})
	cfg.Obs = o
	rt, err := Start(cfg, structures)
	if err != nil {
		t.Fatal(err)
	}
	s, err := rt.NewSession(0, 4)
	if err != nil {
		t.Fatal(err)
	}
	const perStructure = 200
	for i := 0; i < perStructure; i++ {
		for _, name := range []string{"tree", "map"} {
			if _, err := s.Invoke(Task{Structure: name, Op: func(ds any) any { return nil }}); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	rt.Stop()

	snap := o.Snapshot()
	if len(snap.Domains) != 2 {
		t.Fatalf("snapshot has %d domains, want 2", len(snap.Domains))
	}
	for _, d := range snap.Domains {
		if d.Name != "d0" && d.Name != "d1" {
			t.Errorf("unexpected domain %q", d.Name)
		}
		if d.Posts != perStructure || d.Tasks != perStructure {
			t.Errorf("domain %s: posts %d tasks %d, want %d/%d", d.Name, d.Posts, d.Tasks, perStructure, perStructure)
		}
		if d.RespNs.Count != perStructure {
			t.Errorf("domain %s: response samples %d, want %d", d.Name, d.RespNs.Count, perStructure)
		}
	}
	if snap.EventCounts[obs.EventWorkerStart] != 48 {
		t.Errorf("worker-start events = %d, want 48", snap.EventCounts[obs.EventWorkerStart])
	}
	if snap.EventCounts[obs.EventDomainStop] != 2 {
		t.Errorf("domain-stop events = %d, want 2", snap.EventCounts[obs.EventDomainStop])
	}
}

// TestInjectedFaultCountersIsolated is the regression test for per-runtime
// fault counters: a runtime given its own counter set must report crashes
// there and only there — a second counter set and the process-global
// metrics.Faults stay untouched.
func TestInjectedFaultCountersIsolated(t *testing.T) {
	globalBefore := metrics.Faults.Snapshot()

	mine := &metrics.FaultCounters{}
	other := &metrics.FaultCounters{}
	cfg, structures := twoDomainConfig(t)
	cfg.Faults = mine
	cfg.FaultHook = faultinject.New(1, faultinject.Rule{
		Kind: faultinject.WorkerKill, Worker: -1, EveryNth: 50,
	})
	rt, err := Start(cfg, structures)
	if err != nil {
		t.Fatal(err)
	}
	if rt.Faults() != mine {
		t.Fatal("runtime not using the injected counters")
	}
	s, err := rt.NewSession(0, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		// Results may be PanicErrors from kills racing posted tasks; the
		// chaos invariants are covered elsewhere, this test only tracks
		// where the counters land.
		_, _ = s.Invoke(Task{Structure: "tree", Op: func(ds any) any { return nil }})
	}
	_ = s.Close()
	rt.Stop()

	got := mine.Snapshot()
	if got.WorkerPanics == 0 {
		t.Error("injected counters saw no worker panics despite WorkerKill every 50 sweeps")
	}
	if got.WorkerRestarts == 0 {
		t.Error("injected counters saw no respawns")
	}
	if o := other.Snapshot(); o != (metrics.FaultSnapshot{}) {
		t.Errorf("unrelated counter set contaminated: %+v", o)
	}
	if g := metrics.Faults.Snapshot(); g != globalBefore {
		t.Errorf("process-global counters moved: before %+v after %+v", globalBefore, g)
	}
}

// TestDefaultFaultsIsGlobal pins the default: without cfg.Faults the runtime
// reports to metrics.Faults, preserving pre-injection behaviour.
func TestDefaultFaultsIsGlobal(t *testing.T) {
	cfg, structures := twoDomainConfig(t)
	rt, err := Start(cfg, structures)
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Stop()
	if rt.Faults() != metrics.Faults {
		t.Error("default fault counters are not the process-global set")
	}
}
