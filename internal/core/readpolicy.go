package core

import (
	"fmt"
	"sync/atomic"

	"robustconf/internal/delegation"
)

// This file implements the optimistic read-path bypass (DESIGN.md §12).
//
// Delegation serializes every mutation of a structure through its owning
// domain's workers, so each worker buffer can keep a seqlock-style pair of
// publication words (delegation.Buffer.MutEnter/MutExit) that bracket its
// mutating sweep batches. A read-only task classified at submit time
// (Session.SubmitRead) first attempts a direct local read: verify every
// buffer's pair is balanced, run the structure's concurrent-reader-safe read
// in the client's own goroutine, then re-verify that no pair advanced (and
// that the structure was not migrated mid-read). Validation failure retries
// a bounded number of times and then falls back to normal delegation, so
// correctness never depends on the fast path; seal and crash fail-over
// poison the pair (an enter with no matching exit) before any future is
// completed, so a torn read can never validate across a shutdown or crash
// window.

// ReadPolicy selects how a structure's read-only tasks execute. It is a
// per-structure configuration axis (Config.ReadPolicies) alongside domain
// sizing: the composed-plan layer derives it from the workload mix the same
// way it sizes domains (see config.RecommendReadPolicy).
type ReadPolicy int

const (
	// ReadDelegate sends every read through the owning domain's workers,
	// exactly like a mutation. The default, and the only choice for
	// structures whose reads are unsafe under concurrent writers (see
	// index.ConcurrentReadSafe).
	ReadDelegate ReadPolicy = iota
	// ReadBypass always attempts the validated local read first and falls
	// back to delegation when validation fails. Best for read-mostly mixes.
	ReadBypass
	// ReadAdaptive bypasses while the observed write fraction stays below
	// adaptiveWriteMax (mirroring workload.Mix.WriteFraction) and reverts to
	// delegation under write-heavy traffic, where validation would mostly
	// fail and every miss costs wasted attempts.
	ReadAdaptive
)

// String renders the policy the way the cmd flags spell it.
func (p ReadPolicy) String() string {
	switch p {
	case ReadDelegate:
		return "delegate"
	case ReadBypass:
		return "bypass"
	case ReadAdaptive:
		return "adaptive"
	default:
		return fmt.Sprintf("ReadPolicy(%d)", int(p))
	}
}

// ParseReadPolicy parses the flag spelling used by robustycsb -readpolicy.
func ParseReadPolicy(s string) (ReadPolicy, error) {
	switch s {
	case "delegate":
		return ReadDelegate, nil
	case "bypass":
		return ReadBypass, nil
	case "adaptive":
		return ReadAdaptive, nil
	default:
		return ReadDelegate, fmt.Errorf("core: unknown read policy %q (delegate, bypass, adaptive)", s)
	}
}

const (
	// bypassAttempts bounds how many times a read re-validates before
	// falling back to delegation. Low on purpose: an unstable window means a
	// mutating batch is in flight right now, and the delegated fallback
	// queues behind it anyway.
	bypassAttempts = 4
	// readStatsFlushEvery is the session-local cadence for publishing
	// adaptive read/write observations (same discipline as the obs client
	// shards: plain local counters, one atomic publish per cadence).
	readStatsFlushEvery = 64
	// adaptiveMinOps is the minimum observed operation count before
	// ReadAdaptive trusts the write fraction; below it the policy stays in
	// bypass mode (reads-first optimism, corrected within one flush).
	adaptiveMinOps = 64
	// adaptiveWriteMax is the write fraction above which ReadAdaptive
	// reverts to delegation. Mirrors workload.Mix.WriteFraction: YCSB-C (0)
	// and YCSB-D (0.05) bypass, YCSB-A (0.5) delegates.
	adaptiveWriteMax = 0.15
)

// concurrentReadSafe is the structural marker a registered structure must
// implement (and answer true) before any non-delegate read policy takes
// effect; internal/index documents which substrates qualify and why.
type concurrentReadSafe interface{ ConcurrentReadSafe() bool }

// readState is the per-structure runtime state of a non-delegate read
// policy. Built once in Start (the map it lives in is read-only afterwards)
// and owned by the structure name, not the domain — it survives migrations.
type readState struct {
	policy ReadPolicy

	// migrations counts Migrate calls for this structure. Bumped under the
	// runtime lock *before* the assignment swap, and loaded by readers in the
	// same critical section as their route: a reader that observes a
	// post-migration mutation through the structure therefore observes the
	// bump on its second load and discards the read.
	migrations atomic.Uint64

	// Adaptive observations, published on the readStatsFlushEvery cadence by
	// sessions; delegateMode caches the decision so the per-read check is one
	// atomic load.
	reads        atomic.Uint64
	writes       atomic.Uint64
	delegateMode atomic.Bool
}

// bypassNow reports whether the next read should attempt the fast path.
func (rs *readState) bypassNow() bool {
	return rs.policy == ReadBypass || !rs.delegateMode.Load()
}

// publish folds a session's local observations in and refreshes the
// adaptive decision.
func (rs *readState) publish(reads, writes uint64) {
	r := rs.reads.Add(reads)
	w := rs.writes.Add(writes)
	if rs.policy != ReadAdaptive {
		return
	}
	tot := r + w
	rs.delegateMode.Store(tot >= adaptiveMinOps && float64(w) > adaptiveWriteMax*float64(tot))
}

// buildReadStates gates the configured policies against the registered
// structures: a non-delegate policy only takes effect when the structure
// vouches for its own concurrent-reader safety, otherwise it silently
// degrades to delegation (correct, just slower — the same contract as the
// bypass fallback itself).
func buildReadStates(policies map[string]ReadPolicy, structures map[string]any) map[string]*readState {
	if len(policies) == 0 {
		return nil
	}
	states := make(map[string]*readState, len(policies))
	for name, p := range policies {
		if p == ReadDelegate {
			continue
		}
		crs, ok := structures[name].(concurrentReadSafe)
		if !ok || !crs.ConcurrentReadSafe() {
			continue
		}
		states[name] = &readState{policy: p}
	}
	return states
}

// EffectiveReadPolicy returns the read policy actually in force for the
// structure: the configured one, unless the structure could not vouch for
// concurrent-reader safety, in which case it degraded to ReadDelegate.
func (rt *Runtime) EffectiveReadPolicy(structure string) ReadPolicy {
	if rs := rt.readStates[structure]; rs != nil {
		return rs.policy
	}
	return ReadDelegate
}

// routeEpoch is route plus the structure's migration epoch, loaded in the
// same critical section. Migrate bumps the epoch under the same lock before
// swapping the assignment, so a reader holding (domain, epoch) from one call
// detects any migration that lands after it.
func (rt *Runtime) routeEpoch(structure string, rs *readState) (*Domain, any, uint64, error) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	di, ok := rt.cfg.Assignment[structure]
	if !ok {
		return nil, nil, 0, fmt.Errorf("core: unknown structure %q", structure)
	}
	d := rt.domains[di]
	if d.dead.Load() {
		return nil, nil, 0, fmt.Errorf("core: structure %q: %w", structure, ErrDomainDead)
	}
	return d, d.structures[structure], rs.migrations.Load(), nil
}

// noteRead records one read against the structure's adaptive observations
// (no-op for non-adaptive policies). Session-local plain counters, published
// on the readStatsFlushEvery cadence.
func (s *Session) noteRead(rs *readState) {
	if rs.policy != ReadAdaptive {
		return
	}
	if s.rsLast != rs {
		s.flushReadStats()
		s.rsLast = rs
	}
	s.rsReads++
	s.rsSince++
	if s.rsSince >= readStatsFlushEvery {
		s.flushReadStats()
		s.rsLast = rs
	}
}

// noteWrite records one mutating submission, looked up by structure name so
// the write paths (Invoke, Submit, SubmitAsync, the batch entry points) can
// call it unconditionally: structures without an adaptive policy cost one
// read-only map probe.
func (s *Session) noteWrite(structure string, n uint64) {
	rs := s.rt.readStates[structure]
	if rs == nil || rs.policy != ReadAdaptive {
		return
	}
	if s.rsLast != rs {
		s.flushReadStats()
		s.rsLast = rs
	}
	s.rsWrites += n
	s.rsSince += n
	if s.rsSince >= readStatsFlushEvery {
		s.flushReadStats()
		s.rsLast = rs
	}
}

// flushReadStats publishes the session-local adaptive observations.
func (s *Session) flushReadStats() {
	if s.rsLast != nil && s.rsReads+s.rsWrites > 0 {
		s.rsLast.publish(s.rsReads, s.rsWrites)
	}
	s.rsLast = nil
	s.rsReads, s.rsWrites, s.rsSince = 0, 0, 0
}

// countBypass reports a fast-path outcome to the domain's telemetry, when
// observability is attached. The shard is session-owned (sessions are
// single-threaded), created on first use per domain.
func (s *Session) countBypass(d *Domain, hit bool, retries uint64) {
	if d.obsDom == nil {
		return
	}
	sh := s.readShards[d]
	if sh == nil {
		sh = d.obsDom.NewClient()
		s.readShards[d] = sh
	}
	if hit {
		sh.BypassHit(retries)
	} else {
		sh.BypassFallback(retries)
	}
}

// SubmitRead executes a task the caller guarantees is read-only: Op must not
// mutate the structure. Under a non-delegate effective policy it first
// attempts the validated local read described above; on validation failure —
// a mutating batch in flight, a sealed or crashed worker's poisoned buffer,
// a concurrent migration — it falls back to a delegated read, which
// serializes with mutations exactly like Invoke. Under ReadDelegate (or for
// structures that never qualified for bypass) it is precisely a delegated
// Invoke whose task is flagged read-only, so it cannot spuriously invalidate
// other sessions' bypass reads.
func (s *Session) SubmitRead(task Task) (any, error) {
	rs := s.rt.readStates[task.Structure] // read-only map after Start
	if rs == nil {
		d, ds, err := s.rt.route(task.Structure)
		if err != nil {
			return nil, err
		}
		return s.invokeRead(d, ds, task)
	}
	s.noteRead(rs)
	if rs.bypassNow() {
		var d *Domain
		for attempt := uint64(0); attempt < bypassAttempts; attempt++ {
			var ds any
			var m1 uint64
			var err error
			d, ds, m1, err = s.rt.routeEpoch(task.Structure, rs)
			if err != nil {
				return nil, err
			}
			// Stability check, per buffer: exit loaded before enter, so a
			// mutating batch in flight (enter ahead of exit) or a poisoned
			// pair (seal/crash) reads unequal and the attempt aborts before
			// touching the structure's memory ordering assumptions.
			bufs := d.inbox.Buffers()
			var n1 uint64
			stable := true
			for _, b := range bufs {
				e := b.MutExit()
				n := b.MutEnter()
				if e != n {
					stable = false
					break
				}
				n1 += n
			}
			if !stable {
				continue
			}
			v, perr := runBypassRead(task.Op, ds)
			// Validate: no buffer opened a mutating batch during the read
			// (enter counters are monotonic, so an unchanged sum means no
			// per-buffer change), and the structure did not migrate.
			var n2 uint64
			for _, b := range bufs {
				n2 += b.MutEnter()
			}
			if n2 == n1 && rs.migrations.Load() == m1 {
				s.countBypass(d, true, attempt)
				if perr != nil {
					// The read was stable, so the panic is the op's own
					// fault: surface the same typed error a delegated task
					// would produce.
					s.rt.faults.TasksFailed.Add(1)
					return nil, perr
				}
				return v, nil
			}
			// Validation failed. A panic raised under an unvalidated read may
			// itself be an artifact of torn state, so it is discarded with the
			// value and the read retries (and, if need be, delegates).
		}
		if d != nil {
			s.countBypass(d, false, bypassAttempts)
		}
	}
	d, ds, err := s.rt.route(task.Structure)
	if err != nil {
		return nil, err
	}
	return s.invokeRead(d, ds, task)
}

// runBypassRead executes a bypass read on the client's own goroutine,
// converting a panic into the same typed PanicError a delegated task yields,
// so SubmitRead's error contract does not depend on the effective policy.
// The caller decides whether the panic counts: only a read that validates may
// surface it (an unvalidated read can panic on torn state through no fault of
// the op).
func runBypassRead(op func(any) any, ds any) (v any, err error) {
	defer func() {
		if r := recover(); r != nil {
			v, err = nil, delegation.PanicError{Value: r}
		}
	}()
	return op(ds), nil
}

// invokeRead is the delegated read: Invoke's zero-allocation round trip with
// the slot flagged read-only.
func (s *Session) invokeRead(d *Domain, ds any, task Task) (any, error) {
	sc, err := s.client(d)
	if err != nil {
		return nil, err
	}
	sc.ensureFree()
	sc.ds, sc.op = ds, task.Op
	v, err := sc.c.InvokeReadErr(sc.thunk)
	if err != nil {
		s.rt.faults.TasksFailed.Add(1)
		return nil, err
	}
	return v, nil
}

// BypassArmed reports whether every buffer of the domain currently has a
// balanced (unpoisoned, idle) publication pair — i.e. a bypass read issued
// now could validate. Test and diagnostic helper, racy by nature.
func (d *Domain) BypassArmed() bool {
	for _, b := range d.inbox.Buffers() {
		if b.MutExit() != b.MutEnter() {
			return false
		}
	}
	return true
}
