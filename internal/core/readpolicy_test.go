package core

import (
	"errors"
	"fmt"
	"sort"
	"testing"

	"robustconf/internal/delegation"
	"robustconf/internal/index/btree"
	"robustconf/internal/index/hashmap"
	"robustconf/internal/topology"
	"robustconf/internal/workload"
)

func TestParseReadPolicy(t *testing.T) {
	for _, c := range []struct {
		in   string
		want ReadPolicy
	}{{"delegate", ReadDelegate}, {"bypass", ReadBypass}, {"adaptive", ReadAdaptive}} {
		got, err := ParseReadPolicy(c.in)
		if err != nil || got != c.want {
			t.Errorf("ParseReadPolicy(%q) = %v, %v; want %v", c.in, got, err, c.want)
		}
		if got.String() != c.in {
			t.Errorf("%v.String() = %q, want %q", got, got.String(), c.in)
		}
	}
	if _, err := ParseReadPolicy("sometimes"); err == nil {
		t.Error("ParseReadPolicy accepted garbage")
	}
}

func TestConfigValidateReadPolicies(t *testing.T) {
	m, _ := topology.Restricted(1)
	cfg := Config{
		Machine:    m,
		Domains:    []DomainSpec{{Name: "a", CPUs: topology.Range(0, 4)}},
		Assignment: map[string]int{"x": 0},
	}
	cfg.ReadPolicies = map[string]ReadPolicy{"ghost": ReadBypass}
	if err := cfg.Validate(); err == nil {
		t.Error("read policy for unassigned structure accepted")
	}
	cfg.ReadPolicies = map[string]ReadPolicy{"x": ReadPolicy(9)}
	if err := cfg.Validate(); err == nil {
		t.Error("out-of-range read policy accepted")
	}
	cfg.ReadPolicies = map[string]ReadPolicy{"x": ReadAdaptive}
	if err := cfg.Validate(); err != nil {
		t.Errorf("valid read policy rejected: %v", err)
	}
}

// TestEffectiveReadPolicyGating pins the safety gate: a structure that does
// not answer ConcurrentReadSafe() == true silently degrades to delegation no
// matter what the configuration asked for.
func TestEffectiveReadPolicyGating(t *testing.T) {
	m, _ := topology.Restricted(1)
	cfg := Config{
		Machine:    m,
		Domains:    []DomainSpec{{Name: "d0", CPUs: topology.Range(0, 4)}},
		Assignment: map[string]int{"tree": 0, "map": 0},
		ReadPolicies: map[string]ReadPolicy{
			"tree": ReadBypass, // B-Tree: in-place leaf stores, not read-safe
			"map":  ReadBypass, // Hash Map: bucket RW lock, read-safe
		},
	}
	rt, err := Start(cfg, map[string]any{"tree": btree.New(), "map": hashmap.New()})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Stop()
	if got := rt.EffectiveReadPolicy("tree"); got != ReadDelegate {
		t.Errorf("unsafe structure: effective policy %v, want delegate", got)
	}
	if got := rt.EffectiveReadPolicy("map"); got != ReadBypass {
		t.Errorf("safe structure: effective policy %v, want bypass", got)
	}
	if got := rt.EffectiveReadPolicy("ghost"); got != ReadDelegate {
		t.Errorf("unknown structure: effective policy %v, want delegate", got)
	}
}

// TestReadPolicyEquivalence is the cross-policy acceptance gate: the same
// seeded operation trace, replayed sequentially under each read policy,
// must return identical values from every read and leave the structure in
// an identical final state — the policy axis changes where reads execute,
// never what they or the writes they interleave with produce.
func TestReadPolicyEquivalence(t *testing.T) {
	const records = 2000
	const ops = 4000
	for _, mix := range []workload.Mix{workload.A, workload.D, workload.C} {
		gen, err := workload.NewGenerator(mix, records, 0, 1)
		if err != nil {
			t.Fatal(err)
		}
		trace := make([]workload.Op, ops)
		// YCSB keys are sparse 64-bit values; collect the exact key set the
		// run can touch (preload + trace) for the final-state dump.
		keySet := map[uint64]struct{}{}
		for _, k := range workload.LoadKeys(records) {
			keySet[k] = struct{}{}
		}
		for i := range trace {
			trace[i] = gen.Next()
			keySet[trace[i].Key] = struct{}{}
		}
		keys := make([]uint64, 0, len(keySet))
		for k := range keySet {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })

		type outcome struct {
			reads []uint64
			state string
		}
		run := func(p ReadPolicy) outcome {
			t.Helper()
			idx := hashmap.New()
			for _, k := range workload.LoadKeys(records) {
				idx.Insert(k, k, nil)
			}
			m, _ := topology.Restricted(1)
			rt, err := Start(Config{
				Machine:      m,
				Domains:      []DomainSpec{{Name: "d0", CPUs: topology.Range(0, 4)}},
				Assignment:   map[string]int{"map": 0},
				ReadPolicies: map[string]ReadPolicy{"map": p},
			}, map[string]any{"map": idx})
			if err != nil {
				t.Fatal(err)
			}
			defer rt.Stop()
			s, err := rt.NewSession(0, 4)
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			var out outcome
			for _, op := range trace {
				op := op
				if op.Type == workload.OpRead {
					v, err := s.SubmitRead(Task{Structure: "map", Op: func(ds any) any {
						v, _ := ds.(*hashmap.Map).Get(op.Key, nil)
						return v
					}})
					if err != nil {
						t.Fatal(err)
					}
					out.reads = append(out.reads, v.(uint64))
				} else {
					_, err := s.Invoke(Task{Structure: "map", Op: func(ds any) any {
						if op.Type == workload.OpUpdate {
							return idx.Update(op.Key, op.Val, nil)
						}
						return idx.Insert(op.Key, op.Val, nil)
					}})
					if err != nil {
						t.Fatal(err)
					}
				}
			}
			rt.Stop()
			// Serialize the final state: every key the run could have
			// touched, in ascending order.
			var b []byte
			for _, k := range keys {
				v, ok := idx.Get(k, nil)
				b = fmt.Appendf(b, "%d=%d,%v;", k, v, ok)
			}
			out.state = string(b)
			return out
		}

		base := run(ReadDelegate)
		for _, p := range []ReadPolicy{ReadBypass, ReadAdaptive} {
			got := run(p)
			if len(got.reads) != len(base.reads) {
				t.Fatalf("%s/%v: %d reads vs %d under delegate", mix.Name, p, len(got.reads), len(base.reads))
			}
			for i := range got.reads {
				if got.reads[i] != base.reads[i] {
					t.Fatalf("%s/%v: read %d returned %d, delegate returned %d",
						mix.Name, p, i, got.reads[i], base.reads[i])
				}
			}
			if got.state != base.state {
				t.Errorf("%s/%v: final state diverged from delegate", mix.Name, p)
			}
		}
	}
}

// TestSubmitReadZeroAlloc pins the bypass read hot path at zero allocations:
// route under the runtime lock, publication-word loads, the operation
// itself, and the re-validation — no closure wrapping, no future, no boxing
// (the pinned Op returns nil; value boxing is the caller's choice, not the
// path's).
func TestSubmitReadZeroAlloc(t *testing.T) {
	m, _ := topology.Restricted(1)
	rt, err := Start(Config{
		Machine:      m,
		Domains:      []DomainSpec{{Name: "d0", CPUs: topology.Range(0, 4)}},
		Assignment:   map[string]int{"map": 0},
		ReadPolicies: map[string]ReadPolicy{"map": ReadBypass},
	}, map[string]any{"map": hashmap.New()})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Stop()
	s, err := rt.NewSession(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	task := Task{Structure: "map", Op: func(ds any) any {
		ds.(*hashmap.Map).Get(42, nil)
		return nil
	}}
	if _, err := s.SubmitRead(task); err != nil { // warm up lazy state
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(2000, func() {
		if _, err := s.SubmitRead(task); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("Session.SubmitRead (bypass hit) allocates %.1f objects/op, want 0", n)
	}
}

// TestSubmitReadBypassPanic pins SubmitRead's error contract against the
// effective policy: a panicking read op must come back as the same typed
// delegation.PanicError on the bypass path as it does delegated, not escape
// into the caller's goroutine.
func TestSubmitReadBypassPanic(t *testing.T) {
	m, _ := topology.Restricted(1)
	rt, err := Start(Config{
		Machine:      m,
		Domains:      []DomainSpec{{Name: "d0", CPUs: topology.Range(0, 4)}},
		Assignment:   map[string]int{"map": 0},
		ReadPolicies: map[string]ReadPolicy{"map": ReadBypass},
	}, map[string]any{"map": hashmap.New()})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Stop()
	s, err := rt.NewSession(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if got := rt.EffectiveReadPolicy("map"); got != ReadBypass {
		t.Fatalf("effective policy = %v, want bypass", got)
	}

	_, err = s.SubmitRead(Task{Structure: "map", Op: func(any) any {
		panic("boom")
	}})
	var pe delegation.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("bypass read panic: got %v, want delegation.PanicError", err)
	}
	if pe.Value != "boom" {
		t.Errorf("PanicError.Value = %v, want boom", pe.Value)
	}
}
