package core

import "fmt"

// DomainStats is a point-in-time snapshot of one virtual domain's activity,
// aggregated over its workers' message buffers.
type DomainStats struct {
	Name       string
	Workers    int
	Structures int
	Executed   uint64 // tasks executed
	Sweeps     uint64 // poll rounds
	EmptySweep uint64 // poll rounds that found nothing
	Batched    uint64 // tasks answered in multi-task sweeps
	Pending    int    // posted, unswept tasks right now
	Failed     uint64 // futures completed with a typed error
	Rescued    uint64 // posts into sealed buffers answered with ErrWorkerStopped
	Restarts   int64  // worker respawns consumed from the restart budget
}

// Occupancy is the fraction of sweeps that found work — a proxy for worker
// utilisation (low occupancy means the domain is over-provisioned).
func (s DomainStats) Occupancy() float64 {
	if s.Sweeps == 0 {
		return 0
	}
	return 1 - float64(s.EmptySweep)/float64(s.Sweeps)
}

// BatchingRate is the fraction of executed tasks that were answered
// together with at least one other task in the same sweep — how much of
// FFWD's response batching the workload actually exploits.
func (s DomainStats) BatchingRate() float64 {
	if s.Executed == 0 {
		return 0
	}
	return float64(s.Batched) / float64(s.Executed)
}

func (s DomainStats) String() string {
	out := fmt.Sprintf("%s: %d workers, %d structures, %d executed, occupancy %.3f, batching %.3f, %d pending",
		s.Name, s.Workers, s.Structures, s.Executed, s.Occupancy(), s.BatchingRate(), s.Pending)
	if s.Failed > 0 || s.Rescued > 0 || s.Restarts > 0 {
		out += fmt.Sprintf(", %d failed, %d rescued, %d restarts", s.Failed, s.Rescued, s.Restarts)
	}
	return out
}

// Stats snapshots the domain's counters.
func (d *Domain) Stats() DomainStats {
	s := DomainStats{
		Name:    d.spec.Name,
		Workers: len(d.workerCPUs),
	}
	for _, b := range d.inbox.Buffers() {
		s.Executed += b.Executed.Load()
		s.Sweeps += b.Sweeps.Load()
		s.EmptySweep += b.EmptySweep.Load()
		s.Batched += b.Batched.Load()
		s.Pending += b.Pending()
		s.Failed += b.Failed.Load()
		s.Rescued += b.Rescued.Load()
	}
	s.Restarts = d.Restarts()
	return s
}

// Stats snapshots every domain, in configuration order. The structure
// counts reflect live migrations.
func (rt *Runtime) Stats() []DomainStats {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	out := make([]DomainStats, len(rt.domains))
	for i, d := range rt.domains {
		out[i] = d.Stats()
		out[i].Structures = len(d.structures)
	}
	return out
}
