package core

import (
	"bytes"
	"errors"
	"io"
	"path/filepath"
	"sort"
	"time"

	"robustconf/internal/obs"
	"robustconf/internal/wal"
)

// This file wires the per-domain write-ahead log (internal/wal) into the
// runtime: Start opens one DomainLog per domain, installs each worker's log
// handle into its buffer (the delegation sweep stages logical records and
// defers future completion to the group commit), runs a checkpointer
// goroutine per domain, and supervise runs recovery — checkpoint restore
// plus log-tail replay — before respawning a crashed worker. DESIGN.md §13
// documents the protocol.

// WALConfig surfaces the durability axes of a configuration: where the
// per-domain logs live, the fsync mode, and the checkpoint cadence. An
// empty Dir — the default — disables the WAL entirely: no structure is
// logged and the delegation hot path is byte-identical to a WAL-less build.
type WALConfig struct {
	// Dir is the root directory for per-domain WAL subdirectories.
	Dir string
	// Fsync selects the flush discipline (none / batch / always).
	Fsync wal.FsyncMode
	// CheckpointEvery is the checkpoint cadence; 0 means
	// DefaultCheckpointEvery.
	CheckpointEvery time.Duration
}

// Enabled reports whether the configuration carries a WAL.
func (w WALConfig) Enabled() bool { return w.Dir != "" }

// DefaultCheckpointEvery is the checkpoint cadence when the configuration
// does not set one: frequent enough to keep replay tails short in tests and
// simulations, rare enough that the quiescence pause is amortised away.
const DefaultCheckpointEvery = 200 * time.Millisecond

func (w WALConfig) cadence() time.Duration {
	if w.CheckpointEvery <= 0 {
		return DefaultCheckpointEvery
	}
	return w.CheckpointEvery
}

// ErrDomainDead is returned by submission paths once a domain has exhausted
// its restart budget: its workers are retired, its buffers sealed, and no
// task routed to it will ever execute. Unlike ErrWorkerStopped (which also
// covers clean shutdown races), ErrDomainDead is a permanent verdict — the
// caller should fail over or re-plan rather than retry.
var ErrDomainDead = errors.New("core: domain restart budget exhausted, domain is dead")

// Durable is the contract a structure registered with a WAL-enabled runtime
// implements to participate in checkpointing and replay. Snapshot and
// Restore run under the domain's quiescence gate (no task executing in the
// domain), Apply runs during recovery replay under the same gate. Restore
// must rebuild *in place*: live task closures hold the instance pointer.
type Durable interface {
	// WALSnapshot streams the structure's full state.
	WALSnapshot(w io.Writer) error
	// WALRestore rebuilds the structure in place from a snapshot stream.
	WALRestore(r io.Reader) error
	// WALApply applies one logical log record produced by a Task.Log /
	// SubmitAsyncLogged encoder. Records replay in per-worker commit order
	// and must be idempotent under re-application.
	WALApply(rec []byte) error
}

// walFaultDecider is the structural bridge to internal/faultinject: a fault
// hook that also decides commit faults returns one of wal.CommitNone /
// CommitKill / CommitTear per group commit (as plain ints, so neither
// package imports the other through core).
type walFaultDecider interface {
	DecideWALFault(worker int) int
}

// appendWALName prefixes a record or snapshot payload with its structure
// name: [u16 little-endian length][name bytes].
func appendWALName(dst []byte, name string) []byte {
	dst = append(dst, byte(len(name)), byte(len(name)>>8))
	return append(dst, name...)
}

// splitWALName parses the name prefix off a payload.
func splitWALName(p []byte) (name string, body []byte, ok bool) {
	if len(p) < 2 {
		return "", nil, false
	}
	n := int(p[0]) | int(p[1])<<8
	if len(p) < 2+n {
		return "", nil, false
	}
	return string(p[2 : 2+n]), p[2+n:], true
}

// setupWAL opens each domain's log, installs the worker handles, writes the
// initial checkpoint (so replay always has a base), and prepares the
// recovery closure supervise runs before a respawn. Called from Start after
// structure registration, before workers spawn.
func (rt *Runtime) setupWAL() error {
	cfg := rt.cfg
	for _, d := range rt.domains {
		dlog, err := wal.OpenDomain(filepath.Join(cfg.WAL.Dir, d.spec.Name), len(d.workerCPUs), cfg.WAL.Fsync)
		if err != nil {
			return err
		}
		d.wal = dlog
		if dec, ok := cfg.FaultHook.(walFaultDecider); ok {
			dlog.SetCommitHook(dec.DecideWALFault)
		}
		for wi, b := range d.inbox.Buffers() {
			b.SetWAL(dlog.Worker(wi))
			if len(d.arenas) > 0 {
				// The worker log's staging buffers draw from the worker's
				// own arena: batch-lifetime memory, recycled by the sweep's
				// post-commit reset.
				dlog.Worker(wi).SetArena(d.arenas[wi])
			}
		}
		if err := rt.checkpointDomain(d); err != nil {
			return err
		}
		d := d
		d.recoverFn = func(worker int) { rt.recoverDomain(d, worker) }
	}
	return nil
}

// startCheckpointers spawns one checkpointer goroutine per domain, on the
// domain's waitgroup so Stop joins them. Each runs Checkpoint on the
// configured cadence and once more on shutdown, so a runtime that stops
// cleanly leaves a fresh checkpoint and empty segments behind.
func (rt *Runtime) startCheckpointers() {
	every := rt.cfg.WAL.cadence()
	for _, d := range rt.domains {
		d.wg.Add(1)
		go func(d *Domain) {
			defer d.wg.Done()
			t := time.NewTicker(every)
			defer t.Stop()
			for {
				select {
				case <-d.stop:
					_ = rt.checkpointDomain(d)
					return
				case <-t.C:
					_ = rt.checkpointDomain(d)
				}
			}
		}(d)
	}
}

// domainDurables snapshots the domain's current Durable structures under
// the runtime lock, so checkpoint and recovery observe a structure set
// consistent with live migrations.
func (rt *Runtime) domainDurables(d *Domain) map[string]Durable {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	out := make(map[string]Durable, len(d.structures))
	for name, ds := range d.structures {
		if du, ok := ds.(Durable); ok {
			out[name] = du
		}
	}
	return out
}

// checkpointDomain writes one consistent checkpoint of the domain: the WAL
// layer quiesces the domain (every in-flight sweep batch commits, new ones
// block), the snapshot closure writes one name-prefixed frame per Durable
// structure, and the segments truncate. Names are sorted so checkpoint
// bytes are deterministic for a given structure state.
func (rt *Runtime) checkpointDomain(d *Domain) error {
	rt.walMu.Lock()
	defer rt.walMu.Unlock()
	if rt.migrating > 0 {
		// A structure is mid-move: a straggler task in its old domain may
		// still be mutating it, and snapshotting it here would race that.
		// Skip the tick; Migrate itself checkpoints both ends on completion.
		return nil
	}
	return rt.checkpointDomainLocked(d)
}

// checkpointDomainLocked is checkpointDomain for callers already holding
// rt.walMu (Migrate checkpoints both ends of a move under one hold).
func (rt *Runtime) checkpointDomainLocked(d *Domain) error {
	if d.wal == nil {
		return nil
	}
	durables := rt.domainDurables(d)
	names := make([]string, 0, len(durables))
	for name := range durables {
		names = append(names, name)
	}
	sort.Strings(names)
	var buf bytes.Buffer
	return d.wal.Checkpoint(func(w io.Writer) error {
		// Deliberately no arena reset here. The gate's write side quiesces
		// logged batches, but workers hold the read side only lazily (first
		// staged record to group commit) — the owner's sweep-boundary
		// recycle runs after Commit, outside the gate, so a checkpoint-time
		// reset would race it. It is also unnecessary: every non-empty sweep
		// already recycles, so a quiesced worker's arena has no live bytes.
		for _, name := range names {
			buf.Reset()
			buf.Write(appendWALName(nil, name))
			if err := durables[name].WALSnapshot(&buf); err != nil {
				return err
			}
			if err := wal.WriteFrame(w, buf.Bytes()); err != nil {
				return err
			}
		}
		return nil
	})
}

// recoverDomain heals the domain after a worker crash, before the respawn:
// under the quiescence gate (no sweep in the domain executes while it
// holds), every checkpointed structure still owned by the domain is
// restored in place and the committed log tail replays over it — the torn
// frame the crash may have left is truncated by the WAL layer. Structures
// that migrated away since the checkpoint are skipped (their live state
// lives in the destination domain); structures that migrated in after the
// checkpoint keep their live in-memory state, which in the goroutine-crash
// model is exactly the committed state.
//
// No bypass read can validate against mid-restore state: the crash already
// poisoned the dead worker's publication pair (every bypass validation on
// this domain fails from the crash on), and the migration epoch of each
// owned structure is bumped besides, so even a reader that routed before
// the crash discards its read. Delegated reads quiesce behind the gate like
// every other task.
func (rt *Runtime) recoverDomain(d *Domain, worker int) {
	// Exclude migrations (and other domains' checkpoints) for the whole
	// recovery: the structure set snapshotted below must still be this
	// domain's when the in-place restore rewrites it.
	rt.walMu.Lock()
	defer rt.walMu.Unlock()
	if worker >= 0 && worker < len(d.arenas) {
		// Discard-and-rebuild: the crash may have unwound mid-batch with
		// arena-backed WAL staging half-written, so the crashed worker's
		// arena goes back to the GC wholesale and the respawn starts from
		// virgin slabs — replay can never observe recycled bytes. This runs
		// on the crashed worker's own supervisor goroutine (owner-only
		// Discard is legal), and walMu excludes the checkpointer's
		// quiesce-time Reset of the same arena.
		d.arenas[worker].Discard()
	}
	rt.mu.Lock()
	durables := make(map[string]Durable, len(d.structures))
	for name, ds := range d.structures {
		if du, ok := ds.(Durable); ok {
			durables[name] = du
		}
		if rs := rt.readStates[name]; rs != nil {
			rs.migrations.Add(1)
		}
	}
	rt.mu.Unlock()

	restored := map[string]bool{}
	_, err := d.wal.Recover(
		func(r io.Reader) error {
			// One reusable frame buffer for the whole checkpoint stream:
			// each payload is consumed (restored) before the next read.
			fr := wal.NewFrameReader(r)
			for {
				p, err := fr.Next()
				if err == io.EOF {
					return nil
				}
				if err != nil {
					return err
				}
				name, body, ok := splitWALName(p)
				if !ok {
					continue
				}
				du := durables[name]
				if du == nil {
					continue // migrated away since this checkpoint
				}
				if err := du.WALRestore(bytes.NewReader(body)); err != nil {
					return err
				}
				restored[name] = true
			}
		},
		func(rec []byte) error {
			name, body, ok := splitWALName(rec)
			if !ok {
				return nil
			}
			du := durables[name]
			if du == nil || !restored[name] {
				// Unknown here, or not in the checkpoint (migrated in
				// after it): live state is already the committed state.
				return nil
			}
			return du.WALApply(body)
		},
	)
	if err != nil && d.obs != nil {
		// Recovery is best-effort healing in this fault model: live state
		// is still serviceable, so a replay error is surfaced, not fatal.
		d.obs.Lifecycle(d.spec.Name, -1, "wal-recovery-error: "+err.Error())
	}
	d.event(-1, obs.EventWALRecovery)
}

// WALStats returns the domain's durability counters; the zero value when
// the runtime runs without a WAL.
func (d *Domain) WALStats() wal.Stats {
	if d.wal == nil {
		return wal.Stats{}
	}
	return d.wal.Stats()
}

// Dead reports whether the domain has exhausted its restart budget and been
// retired (see ErrDomainDead).
func (d *Domain) Dead() bool { return d.dead.Load() }

// BudgetRemaining returns how many more worker crashes the domain survives
// before it dies. Never negative.
func (d *Domain) BudgetRemaining() int64 {
	rem := int64(d.spec.budget()) - d.restarts.Load()
	if rem < 0 {
		rem = 0
	}
	return rem
}
