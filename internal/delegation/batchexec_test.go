package delegation

import (
	"encoding/binary"
	"errors"
	"sync"
	"testing"

	"robustconf/internal/index"
)

// TestKVKindsMatchIndexBatchKinds pins the structural-typing contract
// between the two packages: delegation's KV op kinds must equal index's
// batch-kernel kinds value for value, because a Slot's kind byte is handed
// to index kernels verbatim (through the structurally-identical BatchKernel
// interfaces). A drift here would silently execute the wrong operations.
func TestKVKindsMatchIndexBatchKinds(t *testing.T) {
	if KVGet != index.BatchGet || KVInsert != index.BatchInsert ||
		KVUpdate != index.BatchUpdate || KVDelete != index.BatchDelete {
		t.Fatalf("delegation KV kinds (%d,%d,%d,%d) != index batch kinds (%d,%d,%d,%d)",
			KVGet, KVInsert, KVUpdate, KVDelete,
			index.BatchGet, index.BatchInsert, index.BatchUpdate, index.BatchDelete)
	}
}

// mapKernel is the protocol fake: a BatchKernel over a plain map that
// records the group size of every ExecBatch call and can be armed to panic
// on a specific key.
type mapKernel struct {
	m        map[uint64]uint64
	groups   []int
	panicKey uint64 // ExecBatch panics on reaching this key (0 = never)
}

func newMapKernel() *mapKernel { return &mapKernel{m: map[uint64]uint64{}} }

func (k *mapKernel) ExecBatch(kinds []uint8, keys, vals, outVals []uint64, outOKs []bool) {
	k.groups = append(k.groups, len(kinds))
	for i := range kinds {
		if k.panicKey != 0 && keys[i] == k.panicKey {
			panic("kernel boom")
		}
		_, present := k.m[keys[i]]
		switch kinds[i] {
		case KVGet:
			outVals[i], outOKs[i] = k.m[keys[i]], present
		case KVInsert:
			if !present {
				k.m[keys[i]] = vals[i]
			}
			outOKs[i] = !present
		case KVUpdate:
			if present {
				k.m[keys[i]] = vals[i]
			}
			outOKs[i] = present
		case KVDelete:
			if present {
				delete(k.m, keys[i])
			}
			outOKs[i] = present
		}
	}
}

// newBatchedClient builds a single 15-slot buffer with interleaving armed at
// the given width, and a client owning 14 of its slots.
func newBatchedClient(t *testing.T, width int) (*Buffer, *Client) {
	t.Helper()
	b, err := NewBuffer(0, SlotsPerBuffer)
	if err != nil {
		t.Fatal(err)
	}
	if width != 0 {
		b.SetBatchExec(width)
	}
	in, err := NewInbox([]*Buffer{b})
	if err != nil {
		t.Fatal(err)
	}
	slots, err := in.AcquireSlots(14, nil)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewClient(slots)
	if err != nil {
		t.Fatal(err)
	}
	return b, c
}

func postKVt(t *testing.T, c *Client, kern BatchKernel, kind uint8, key, val uint64) InvokeHandle {
	t.Helper()
	i, ok := c.Reserve()
	if !ok {
		t.Fatal("no free slot")
	}
	return c.PostReservedKV(i, kern, kind, key, val)
}

// TestBatchedSweepGroupsAndAnswers drives one batched pass over a mixed
// burst: typed ops on two kernels with an opaque closure task in between.
// The pass must execute everything in slot order, group only adjacent
// same-kernel typed ops, and answer every future with the serially-correct
// result.
func TestBatchedSweepGroupsAndAnswers(t *testing.T) {
	buf, c := newBatchedClient(t, SlotsPerBuffer)
	ka, kb := newMapKernel(), newMapKernel()
	ka.m[7] = 70
	kb.m[9] = 90

	h1 := postKVt(t, c, ka, KVGet, 7, 0)    // group A: [get, insert]
	h2 := postKVt(t, c, ka, KVInsert, 8, 80)
	i3, _ := c.Reserve()
	h3 := c.PostReserved(i3, func() any { return "opaque" }) // splits the runs
	h4 := postKVt(t, c, ka, KVUpdate, 7, 71) // group B: same kernel, split by the closure
	h5 := postKVt(t, c, kb, KVDelete, 9, 0)  // group C: different kernel ⇒ own group
	h6 := postKVt(t, c, kb, KVGet, 9, 0)     // group C continued: delete then get ⇒ miss

	if n := buf.Sweep(); n != 6 {
		t.Fatalf("sweep answered %d, want 6", n)
	}
	if v, ok, err := c.AwaitKV(h1); err != nil || !ok || v != 70 {
		t.Fatalf("get(7) = %d,%v,%v want 70,true,nil", v, ok, err)
	}
	if _, ok, err := c.AwaitKV(h2); err != nil || !ok {
		t.Fatalf("insert(8) ok=%v err=%v, want true,nil", ok, err)
	}
	if v, err := c.Await(h3); err != nil || v != "opaque" {
		t.Fatalf("opaque = %v,%v", v, err)
	}
	if _, ok, err := c.AwaitKV(h4); err != nil || !ok {
		t.Fatalf("update(7) ok=%v err=%v, want true,nil", ok, err)
	}
	if _, ok, err := c.AwaitKV(h5); err != nil || !ok {
		t.Fatalf("delete(9) ok=%v err=%v, want true,nil", ok, err)
	}
	if _, ok, err := c.AwaitKV(h6); err != nil || ok {
		t.Fatalf("get(9) after delete ok=%v err=%v, want false,nil", ok, err)
	}
	if ka.m[7] != 71 || ka.m[8] != 80 {
		t.Fatalf("kernel A state = %v", ka.m)
	}
	if len(ka.groups) != 2 || ka.groups[0] != 2 || ka.groups[1] != 1 {
		t.Fatalf("kernel A groups = %v, want [2 1]", ka.groups)
	}
	if len(kb.groups) != 1 || kb.groups[0] != 2 {
		t.Fatalf("kernel B groups = %v, want [2]", kb.groups)
	}
	buf.SyncStats()
	if got := buf.BatchSweeps.Load(); got != 1 {
		t.Errorf("BatchSweeps = %d, want 1", got)
	}
	if got := buf.BatchKernelOps.Load(); got != 5 {
		t.Errorf("BatchKernelOps = %d, want 5", got)
	}
}

// TestBatchedSweepWidthCapsGroups pins the group-width clamp: at width 4 a
// run of 10 same-kernel ops must execute as 4+4+2.
func TestBatchedSweepWidthCapsGroups(t *testing.T) {
	buf, c := newBatchedClient(t, 4)
	k := newMapKernel()
	var hs [10]InvokeHandle
	for i := range hs {
		hs[i] = postKVt(t, c, k, KVInsert, uint64(i+1), uint64(i))
	}
	if n := buf.Sweep(); n != 10 {
		t.Fatalf("sweep answered %d, want 10", n)
	}
	for i := range hs {
		if _, ok, err := c.AwaitKV(hs[i]); err != nil || !ok {
			t.Fatalf("insert %d: ok=%v err=%v", i, ok, err)
		}
	}
	if len(k.groups) != 3 || k.groups[0] != 4 || k.groups[1] != 4 || k.groups[2] != 2 {
		t.Fatalf("groups = %v, want [4 4 2]", k.groups)
	}
}

// TestBatchedSweepKernelPanicFailsRun arms the kernel to panic mid-group.
// The whole run fails with a PanicError (its ops may have half-executed
// inside the kernel — exactly a task panic's contract), while the opaque
// task and the second kernel's run in the same pass still succeed, and the
// buffer keeps serving afterwards.
func TestBatchedSweepKernelPanicFailsRun(t *testing.T) {
	buf, c := newBatchedClient(t, SlotsPerBuffer)
	ka, kb := newMapKernel(), newMapKernel()
	ka.panicKey = 2

	h1 := postKVt(t, c, ka, KVInsert, 1, 10)
	h2 := postKVt(t, c, ka, KVInsert, 2, 20) // boom
	h3 := postKVt(t, c, ka, KVInsert, 3, 30) // same run: fails wholesale
	i4, _ := c.Reserve()
	h4 := c.PostReserved(i4, func() any { return 44 })
	h5 := postKVt(t, c, kb, KVInsert, 5, 50)

	buf.Sweep()
	for i, h := range []InvokeHandle{h1, h2, h3} {
		var pe PanicError
		if _, _, err := c.AwaitKV(h); !errors.As(err, &pe) {
			t.Fatalf("typed op %d err = %v, want PanicError", i+1, err)
		}
	}
	if v, err := c.Await(h4); err != nil || v != 44 {
		t.Fatalf("opaque = %v,%v", v, err)
	}
	if _, ok, err := c.AwaitKV(h5); err != nil || !ok {
		t.Fatalf("kernel B insert ok=%v err=%v", ok, err)
	}
	if buf.Failed.Load() != 3 {
		t.Errorf("Failed = %d, want 3", buf.Failed.Load())
	}
	// The worker survives a kernel panic like any task panic.
	h6 := postKVt(t, c, kb, KVGet, 5, 0)
	buf.Sweep()
	if v, ok, err := c.AwaitKV(h6); err != nil || !ok || v != 50 {
		t.Fatalf("post-panic get = %d,%v,%v", v, ok, err)
	}
}

// TestBatchedSweepOpaquePanicMidBatch interleaves a panicking closure task
// between typed runs: only it fails, and in slot order the typed ops before
// and after still execute.
func TestBatchedSweepOpaquePanicMidBatch(t *testing.T) {
	buf, c := newBatchedClient(t, SlotsPerBuffer)
	k := newMapKernel()
	h1 := postKVt(t, c, k, KVInsert, 1, 10)
	i2, _ := c.Reserve()
	h2 := c.PostReserved(i2, func() any { panic("task boom") })
	h3 := postKVt(t, c, k, KVGet, 1, 0)

	if n := buf.Sweep(); n != 3 {
		t.Fatalf("sweep answered %d, want 3", n)
	}
	if _, ok, err := c.AwaitKV(h1); err != nil || !ok {
		t.Fatalf("insert ok=%v err=%v", ok, err)
	}
	var pe PanicError
	if _, err := c.Await(h2); !errors.As(err, &pe) || pe.Value != "task boom" {
		t.Fatalf("opaque err = %v, want PanicError(task boom)", err)
	}
	if v, ok, err := c.AwaitKV(h3); err != nil || !ok || v != 10 {
		t.Fatalf("get = %d,%v,%v want 10,true,nil", v, ok, err)
	}
}

// recordingWAL is a WALSink fake: it applies encoders eagerly (like the
// real sink), remembers every staged record, and can fail the commit or
// panic on a chosen StageRecord call.
type recordingWAL struct {
	begins, commits, aborts int
	records                 [][]byte
	commitErr               error
	panicOnStage            int // 1-based staged-record ordinal; 0 = never
}

func (w *recordingWAL) Begin() { w.begins++ }

func (w *recordingWAL) StageRecord(enc func(dst []byte) []byte) {
	if w.panicOnStage != 0 && len(w.records)+1 == w.panicOnStage {
		panic("stage boom")
	}
	w.records = append(w.records, enc(nil))
}

func (w *recordingWAL) Commit(allowFaults bool) error {
	w.commits++
	return w.commitErr
}

func (w *recordingWAL) Abort() { w.aborts++ }

func testKVEnc(dst []byte, kind uint8, key, val uint64) []byte {
	dst = append(dst, kind)
	dst = binary.LittleEndian.AppendUint64(dst, key)
	return binary.LittleEndian.AppendUint64(dst, val)
}

// TestBatchedSweepWALStagesAndCommits runs a logged batched pass: typed
// mutations stage records in execution order and complete only after the
// group commit; the typed read completes inline and stages nothing.
func TestBatchedSweepWALStagesAndCommits(t *testing.T) {
	buf, c := newBatchedClient(t, SlotsPerBuffer)
	w := &recordingWAL{}
	buf.SetWAL(w)
	k := newMapKernel()

	post := func(kind uint8, key, val uint64) InvokeHandle {
		i, ok := c.Reserve()
		if !ok {
			t.Fatal("no free slot")
		}
		return c.PostReservedKVLogged(i, k, kind, key, val, testKVEnc)
	}
	h1 := post(KVInsert, 1, 11)
	h2 := post(KVGet, 1, 0) // read-only: never staged
	h3 := post(KVUpdate, 1, 12)

	if n := buf.Sweep(); n != 3 {
		t.Fatalf("sweep answered %d, want 3", n)
	}
	if _, ok, err := c.AwaitKV(h1); err != nil || !ok {
		t.Fatalf("insert ok=%v err=%v", ok, err)
	}
	if v, ok, err := c.AwaitKV(h2); err != nil || !ok || v != 11 {
		t.Fatalf("get = %d,%v,%v want 11,true,nil", v, ok, err)
	}
	if _, ok, err := c.AwaitKV(h3); err != nil || !ok {
		t.Fatalf("update ok=%v err=%v", ok, err)
	}
	if w.begins != 1 || w.commits != 1 || w.aborts != 0 {
		t.Fatalf("wal begins/commits/aborts = %d/%d/%d, want 1/1/0", w.begins, w.commits, w.aborts)
	}
	if len(w.records) != 2 {
		t.Fatalf("staged %d records, want 2 (mutations only)", len(w.records))
	}
	want1 := testKVEnc(nil, KVInsert, 1, 11)
	want2 := testKVEnc(nil, KVUpdate, 1, 12)
	if string(w.records[0]) != string(want1) || string(w.records[1]) != string(want2) {
		t.Fatalf("records = %x / %x, want %x / %x", w.records[0], w.records[1], want1, want2)
	}
}

// TestBatchedSweepWALCommitErrorFailsStashed pins the group-commit rule on
// the batched path: when Commit fails, every stashed (logged-mutation)
// future fails with a PanicError carrying the commit error, while inline
// completions (the typed read) keep their results.
func TestBatchedSweepWALCommitErrorFailsStashed(t *testing.T) {
	buf, c := newBatchedClient(t, SlotsPerBuffer)
	w := &recordingWAL{commitErr: errors.New("disk gone")}
	buf.SetWAL(w)
	k := newMapKernel()
	k.m[5] = 55

	i1, _ := c.Reserve()
	h1 := c.PostReservedKVLogged(i1, k, KVInsert, 1, 11, testKVEnc)
	i2, _ := c.Reserve()
	h2 := c.PostReservedKVLogged(i2, k, KVGet, 5, 0, testKVEnc)

	buf.Sweep()
	var pe PanicError
	if _, _, err := c.AwaitKV(h1); !errors.As(err, &pe) {
		t.Fatalf("logged insert err = %v, want PanicError", err)
	}
	if v, ok, err := c.AwaitKV(h2); err != nil || !ok || v != 55 {
		t.Fatalf("inline get = %d,%v,%v want 55,true,nil", v, ok, err)
	}
}

// TestBatchedSweepWALPanicAborts panics the pass itself (StageRecord blows
// up, as an injected worker kill would): the defer must Abort the log
// batch, fail the already-stashed and the claimed-but-unanswered futures
// with PanicError, and re-raise to the sweep's caller.
func TestBatchedSweepWALPanicAborts(t *testing.T) {
	buf, c := newBatchedClient(t, SlotsPerBuffer)
	w := &recordingWAL{panicOnStage: 2}
	buf.SetWAL(w)
	k := newMapKernel()

	i1, _ := c.Reserve()
	h1 := c.PostReservedKVLogged(i1, k, KVInsert, 1, 11, testKVEnc) // stages fine
	i2, _ := c.Reserve()
	h2 := c.PostReservedKVLogged(i2, k, KVInsert, 2, 22, testKVEnc) // stage boom
	i3, _ := c.Reserve()
	h3 := c.PostReservedKVLogged(i3, k, KVInsert, 3, 33, testKVEnc) // never staged

	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("sweep did not re-panic")
			}
		}()
		buf.Sweep()
	}()
	if w.aborts != 1 || w.commits != 0 {
		t.Fatalf("wal aborts/commits = %d/%d, want 1/0", w.aborts, w.commits)
	}
	var pe PanicError
	for i, h := range []InvokeHandle{h1, h2, h3} {
		if _, _, err := c.AwaitKV(h); !errors.As(err, &pe) {
			t.Fatalf("op %d err = %v, want PanicError", i+1, err)
		}
	}
}

// TestBatchedSweepSealRace races a batched local sweep against a foreign
// Seal over a full burst of typed posts. Whoever wins each slot's claim
// CAS, every future must resolve exactly once — a value from the kernel or
// ErrWorkerStopped from the seal — with no hang and no double completion.
// Run under -race this also exercises the sealMu/claim interplay of the
// batched body.
func TestBatchedSweepSealRace(t *testing.T) {
	for round := 0; round < 50; round++ {
		buf, c := newBatchedClient(t, SlotsPerBuffer)
		k := newMapKernel()
		var hs [14]InvokeHandle
		for i := range hs {
			hs[i] = postKVt(t, c, k, KVInsert, uint64(i+1), uint64(i))
		}
		var wg sync.WaitGroup
		wg.Add(2)
		go func() { defer wg.Done(); buf.Sweep() }()
		go func() { defer wg.Done(); buf.Seal() }()
		wg.Wait()
		executed, stopped := 0, 0
		for i := range hs {
			_, ok, err := c.AwaitKV(hs[i])
			switch {
			case err == nil && ok:
				executed++
			case errors.Is(err, ErrWorkerStopped):
				stopped++
			default:
				t.Fatalf("round %d op %d: ok=%v err=%v", round, i, ok, err)
			}
		}
		if executed+stopped != 14 {
			t.Fatalf("round %d: %d executed + %d stopped != 14", round, executed, stopped)
		}
		if len(k.m) != executed {
			t.Fatalf("round %d: kernel holds %d keys, %d ops executed", round, len(k.m), executed)
		}
	}
}

// TestBatchedSweepPostAfterSealRescued: a typed post into a sealed buffer
// must be rescued with ErrWorkerStopped (the stop/post race contract,
// extended to postKV).
func TestBatchedSweepPostAfterSealRescued(t *testing.T) {
	buf, c := newBatchedClient(t, SlotsPerBuffer)
	buf.Seal()
	k := newMapKernel()
	h := postKVt(t, c, k, KVInsert, 1, 10)
	if _, _, err := c.AwaitKV(h); !errors.Is(err, ErrWorkerStopped) {
		t.Fatalf("err = %v, want ErrWorkerStopped", err)
	}
	if len(k.m) != 0 {
		t.Fatal("sealed post executed")
	}
}

// TestSetBatchExecClamps pins the width clamp: below 2 disables the batched
// body, above the slot count clamps to it.
func TestSetBatchExecClamps(t *testing.T) {
	b, err := NewBuffer(0, SlotsPerBuffer)
	if err != nil {
		t.Fatal(err)
	}
	b.SetBatchExec(1)
	if b.batchWidth != 0 {
		t.Errorf("width 1 → %d, want 0 (disabled)", b.batchWidth)
	}
	b.SetBatchExec(1000)
	if b.batchWidth != SlotsPerBuffer {
		t.Errorf("width 1000 → %d, want %d", b.batchWidth, SlotsPerBuffer)
	}
	b.SetBatchExec(8)
	if b.batchWidth != 8 {
		t.Errorf("width 8 → %d", b.batchWidth)
	}
}

// TestInvokeKVSerialFallback runs typed ops through a buffer with
// interleaving off: they must execute through the kernel one at a time
// (groups of 1) with identical results — the degraded path structures get
// when the axis is disabled.
func TestInvokeKVSerialFallback(t *testing.T) {
	buf, c := newBatchedClient(t, 0)
	k := newMapKernel()
	h1 := postKVt(t, c, k, KVInsert, 1, 10)
	h2 := postKVt(t, c, k, KVGet, 1, 0)
	buf.Sweep()
	if _, ok, err := c.AwaitKV(h1); err != nil || !ok {
		t.Fatalf("insert ok=%v err=%v", ok, err)
	}
	if v, ok, err := c.AwaitKV(h2); err != nil || !ok || v != 10 {
		t.Fatalf("get = %d,%v,%v", v, ok, err)
	}
	for i, g := range k.groups {
		if g != 1 {
			t.Fatalf("serial path group %d has size %d, want 1", i, g)
		}
	}
	buf.SyncStats()
	if got := buf.BatchSweeps.Load(); got != 0 {
		t.Errorf("BatchSweeps = %d on the serial path, want 0", got)
	}
}
