// Package delegation implements the paper's in-memory message-passing layer,
// modelled on fast fly-weight delegation (FFWD, Roghanchi et al. SOSP'17)
// and extended as Section 6 describes: every worker owns a contiguous
// message buffer of fixed slots; a virtual domain's inbox is composed of the
// buffers of its configured workers; clients obtain *ownership* of slots
// from the inbox (rather than being hard-wired to one worker) and delegate
// asynchronous tasks through them, receiving results via futures.
//
// The FFWD properties carried over:
//
//   - each slot is padded to 128 bytes so two slots never share (adjacent)
//     cache lines and clients never contend with each other;
//   - a slot has a single state word toggled between "free" and "posted",
//     written by exactly one client and one worker, so the steady-state
//     protocol needs no read-modify-write atomics on the critical path
//     (plain release stores and acquire loads);
//   - a worker buffer holds up to 15 slots, the batch FFWD answers with a
//     single response-line write; the worker drains all posted slots of a
//     buffer in one sweep (response batching).
//
// NUMA-aware slot assignment — giving a client slots in the buffer of the
// worker nearest to it — is the caller's policy: AcquireSlots accepts a
// preference ranking over workers.
//
// Failure model (beyond FFWD, which assumes immortal workers): a future
// completes exactly once, with a value or with a typed error — PanicError
// when the task panicked, ErrWorkerStopped when it never ran. On shutdown a
// worker *seals* its buffer: the seal's final sweep answers everything
// already posted, and a post racing past it is rescued by its own client
// with ErrWorkerStopped, so no client can block forever on a stopping
// worker. A worker crash (a panic escaping the sweep, e.g. injected via
// FaultHook) fails the buffer's posted tasks with a PanicError and is
// reported to the caller of Worker.Run so a supervisor can respawn the
// worker; the buffer stays open for the respawn.
package delegation

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"robustconf/internal/obs"
)

// SlotsPerBuffer is the FFWD response-batching width: one worker answers up
// to 15 clients per response line.
const SlotsPerBuffer = 15

// Task is the unit of delegated work. The worker goroutine executes it and
// places the returned value into the task's future.
type Task func() any

// ErrWorkerStopped is delivered through a future when its task was posted
// into a sealed buffer: the owning worker has shut down (or exhausted its
// restart budget after crashing) and will never execute the task. The task
// did NOT run.
var ErrWorkerStopped = errors.New("delegation: worker stopped, task not executed")

// ErrWaitTimeout is returned by Future.WaitTimeout when the deadline expires
// before the task completes. The task may still complete later; the future
// stays valid and can be waited on again.
var ErrWaitTimeout = errors.New("delegation: wait timed out")

// Future lifecycle states.
const (
	futPending uint32 = 0 // no result yet
	futValue   uint32 = 1 // completed with a value
	futError   uint32 = 2 // completed with a typed error (never ran, or panicked)
)

// Future is the invocation handle a client holds on a delegated task. A
// future completes exactly once, either with a value (the task ran and
// returned) or with a typed error: PanicError when the task panicked,
// ErrWorkerStopped when it was posted into a sealed buffer and never ran.
type Future struct {
	state atomic.Uint32 // futPending, futValue or futError
	val   any
	err   error
	span  *obs.Span // lifecycle span on sampled posts; nil almost always
}

// complete publishes a value result; called by the worker exactly once. The
// span's responded stamp lands before the state store so a waiter that
// resolves immediately still sees responded ≤ resolved.
func (f *Future) complete(v any) {
	f.val = v
	f.span.MarkResponded()
	f.state.Store(futValue)
}

// completeErr publishes an error result. It uses a CAS so the lifecycle
// paths that fail futures (seal rescue, crash fail-over) can never clobber
// a result the worker already published. A losing path's responded stamp
// overwrites the winner's — benign, the stamps are atomic and advisory.
func (f *Future) completeErr(err error) bool {
	f.err = err
	f.span.MarkResponded()
	return f.state.CompareAndSwap(futPending, futError)
}

// observeResolved finalises the future's lifecycle span the first time a
// waiter observes the completed result (no-op without a span).
func (f *Future) observeResolved() {
	f.span.Resolve(f.state.Load() == futError)
}

// Done reports whether the result is available without blocking.
func (f *Future) Done() bool { return f.state.Load() != futPending }

// Err returns the typed error the future completed with, nil for a pending
// future or a value result.
func (f *Future) Err() error {
	if f.state.Load() == futError {
		return f.err
	}
	return nil
}

// Idle-wait backoff: spin (yielding) this many times, then sleep with
// exponential backoff between polls. Bursting clients normally see their
// oldest future complete within the spin phase; the sleep phase only
// engages on genuinely idle waits, where burning a core on Gosched would
// starve co-scheduled workers.
const (
	waitSpins    = 256
	waitSleepMin = time.Microsecond
	waitSleepMax = 100 * time.Microsecond
)

// block waits until the future completes, spinning first and then sleeping
// with exponential backoff.
func (f *Future) block() {
	for i := 0; i < waitSpins; i++ {
		if f.state.Load() != futPending {
			return
		}
		runtime.Gosched()
	}
	d := waitSleepMin
	for f.state.Load() == futPending {
		time.Sleep(d)
		if d < waitSleepMax {
			d *= 2
		}
	}
}

// result returns the completed future's result in Wait's historical shape:
// the value, or the error as the value (a PanicError came back through Wait
// as a plain value before futures grew an error channel).
func (f *Future) result() any {
	f.observeResolved()
	if f.state.Load() == futError {
		return f.err
	}
	return f.val
}

// Wait blocks until the result is available. An error-completed future
// yields its error as the returned value (use Result or Err for a typed
// error). Waiting spins briefly and then backs off to sleeping, so an idle
// wait does not burn a core.
func (f *Future) Wait() any {
	f.block()
	return f.result()
}

// Result blocks like Wait but separates the two completion channels: the
// task's value, or the typed error (PanicError, ErrWorkerStopped) when the
// task panicked or never ran.
func (f *Future) Result() (any, error) {
	f.block()
	f.observeResolved()
	if f.state.Load() == futError {
		return nil, f.err
	}
	return f.val, nil
}

// WaitTimeout waits up to d for the result. It returns ErrWaitTimeout when
// the deadline expires first; the future remains valid and may still
// complete afterwards.
func (f *Future) WaitTimeout(d time.Duration) (any, error) {
	deadline := time.Now().Add(d)
	for i := 0; i < waitSpins; i++ {
		if f.state.Load() != futPending {
			return f.Result()
		}
		runtime.Gosched()
	}
	sleep := waitSleepMin
	for f.state.Load() == futPending {
		if time.Now().After(deadline) {
			return nil, ErrWaitTimeout
		}
		time.Sleep(sleep)
		if sleep < waitSleepMax {
			sleep *= 2
		}
	}
	return f.Result()
}

// WaitCtx waits until the result is available or the context is cancelled,
// returning the context's error in the latter case. The future remains
// valid after cancellation.
func (f *Future) WaitCtx(ctx context.Context) (any, error) {
	for i := 0; i < waitSpins; i++ {
		if f.state.Load() != futPending {
			return f.Result()
		}
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		runtime.Gosched()
	}
	sleep := waitSleepMin
	for f.state.Load() == futPending {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		time.Sleep(sleep)
		if sleep < waitSleepMax {
			sleep *= 2
		}
	}
	return f.Result()
}

// TryGet returns the result if available (an error-completed future yields
// its error as the value, mirroring Wait).
func (f *Future) TryGet() (any, bool) {
	if f.state.Load() != futPending {
		return f.result(), true
	}
	return nil, false
}

// slot states.
const (
	slotFree   uint32 = 0 // owned by client side, ready for a request
	slotPosted uint32 = 1 // request posted, owned by worker side
)

// Slot is one message cell in a worker's buffer. Exactly one client owns it
// at a time (enforced by the inbox) and exactly one worker polls it.
type Slot struct {
	_     [128]byte // padding: no false sharing with the previous slot
	state atomic.Uint32
	task  Task
	fut   *Future
	owner int32 // client id for diagnostics; -1 = unowned
	buf   *Buffer
}

// post publishes a task into the slot. The client must own the slot and the
// slot must be free.
//
// The sealed check after the posted store closes the stop/post race: both
// sides use sequentially consistent atomics, so either the worker's final
// sweep observes the posted slot, or this client observes the seal and
// rescues its own task with ErrWorkerStopped — a post can never dangle.
func (s *Slot) post(t Task, f *Future) {
	s.task = t
	s.fut = f
	s.state.Store(slotPosted) // release: publishes task+fut to the worker
	if s.buf.sealed.Load() {
		s.buf.rescue(s)
	}
}

// FaultHook intercepts the worker's poll loop for deterministic fault
// injection (see internal/faultinject). A nil hook — the default — keeps
// the hot path unchanged. BeforeSweep runs outside the task-panic recovery,
// so a panic there simulates a worker crash (recovered by Worker.Run);
// BeforeTask runs inside it, so a panic there becomes the task's
// PanicError. Either may sleep to simulate stalls.
type FaultHook interface {
	BeforeSweep(worker int)
	BeforeTask(worker int)
}

// Buffer is the contiguous message buffer of one worker.
type Buffer struct {
	worker int // worker id within the domain (index into the inbox)
	slots  []Slot

	// Lifecycle. sealed flips once, on shutdown or restart-budget
	// exhaustion; sealMu serialises every operation that may complete
	// futures outside the worker's own sweep (final sweep, crash
	// fail-over, client-side rescue of a post into a sealed buffer).
	sealed atomic.Bool
	sealMu sync.Mutex

	hook FaultHook // fault injection; nil by default, set before workers run

	probe *obs.WorkerShard // telemetry shard; nil by default, set before workers run

	// Stats, updated by the owning worker only.
	Executed   atomic.Uint64 // tasks executed
	Sweeps     atomic.Uint64 // buffer sweeps (poll rounds)
	EmptySweep atomic.Uint64 // sweeps that found no posted slot
	Batched    atomic.Uint64 // tasks answered in multi-task sweeps (batching)

	// Fault stats, updated under sealMu or by the owning worker.
	Failed  atomic.Uint64 // futures completed with a typed error
	Rescued atomic.Uint64 // posts into a sealed buffer answered with ErrWorkerStopped
}

// NewBuffer allocates a worker buffer with n slots (n ≤ SlotsPerBuffer).
func NewBuffer(worker, n int) (*Buffer, error) {
	if n < 1 || n > SlotsPerBuffer {
		return nil, fmt.Errorf("delegation: %d slots per buffer out of range [1,%d]", n, SlotsPerBuffer)
	}
	b := &Buffer{worker: worker, slots: make([]Slot, n)}
	for i := range b.slots {
		b.slots[i].owner = -1
		b.slots[i].buf = b
	}
	return b, nil
}

// Worker returns the worker id this buffer belongs to.
func (b *Buffer) Worker() int { return b.worker }

// SetFaultHook installs a fault-injection hook. Call before any worker
// polls the buffer; the field is read without synchronisation on the hot
// path (goroutine creation orders the write for workers spawned after it).
func (b *Buffer) SetFaultHook(h FaultHook) { b.hook = h }

// SetProbe installs the worker's telemetry shard. Like SetFaultHook it must
// be called before any worker polls the buffer; the field is read without
// synchronisation on the hot path.
func (b *Buffer) SetProbe(p *obs.WorkerShard) { b.probe = p }

// Sealed reports whether the buffer has been sealed.
func (b *Buffer) Sealed() bool { return b.sealed.Load() }

// Pending counts the currently posted, unswept slots (advisory snapshot;
// the runtime's migration quiesce polls it).
func (b *Buffer) Pending() int {
	n := 0
	for i := range b.slots {
		if b.slots[i].state.Load() == slotPosted {
			n++
		}
	}
	return n
}

// PanicError is delivered through a future when the delegated task
// panicked. The worker survives: one client's faulty task must not take
// down a virtual domain that other clients depend on.
type PanicError struct {
	Value any // the recovered panic value
}

// Error implements error.
func (p PanicError) Error() string {
	return fmt.Sprintf("delegation: task panicked: %v", p.Value)
}

// runTask executes a task, converting a panic into a PanicError result. The
// fault hook's BeforeTask runs inside the recovery scope, so an injected
// task fault surfaces exactly like a genuine one.
func runTask(task Task, hook FaultHook, worker int) (res any) {
	defer func() {
		if r := recover(); r != nil {
			res = PanicError{Value: r}
		}
	}()
	if hook != nil {
		hook.BeforeTask(worker)
	}
	return task()
}

// Sweep executes all currently posted tasks in the buffer, in slot order,
// and reports how many it ran. This is the worker's poll body: one pass over
// the buffer detects posted toggles and answers them as a batch. A panicking
// task yields a PanicError result instead of killing the worker; a panic
// out of the hook's BeforeSweep escapes to Worker.Run as a worker crash.
// On a sealed buffer the pass runs under the seal lock so it cannot race
// client-side rescues.
func (b *Buffer) Sweep() int {
	if b.sealed.Load() {
		b.sealMu.Lock()
		defer b.sealMu.Unlock()
		// No probe on the sealed path: seal/rescue sweeps may run on
		// non-worker goroutines, which must not touch the worker's shard.
		return b.sweepSlots(nil, nil)
	}
	if h := b.hook; h != nil {
		h.BeforeSweep(b.worker)
	}
	probe := b.probe
	if probe == nil {
		return b.sweepSlots(b.hook, nil)
	}
	t0 := probe.SweepBegin()
	n := b.sweepSlots(b.hook, probe)
	probe.SweepEnd(t0, n)
	return n
}

// sweepSlots is the sweep body. Callers on the sealed path hold sealMu and
// pass a nil hook (shutdown must not re-inject faults) and a nil probe.
func (b *Buffer) sweepSlots(hook FaultHook, probe *obs.WorkerShard) int {
	n := 0
	for i := range b.slots {
		s := &b.slots[i]
		if s.state.Load() != slotPosted { // acquire: sees task+fut when posted
			continue
		}
		task, fut := s.task, s.fut
		s.task, s.fut = nil, nil
		sp := fut.span // nil unless this task's post was trace-sampled
		sp.MarkSwept(b.worker)
		var tt int64
		if probe != nil {
			tt = probe.TaskBegin()
		}
		sp.MarkExecStart()
		res := runTask(task, hook, b.worker)
		sp.MarkExecEnd()
		if probe != nil {
			probe.TaskEnd(tt)
		}
		if pe, ok := res.(PanicError); ok {
			fut.completeErr(pe)
			b.Failed.Add(1)
		} else {
			fut.complete(res)
		}
		s.state.Store(slotFree) // release the slot back to its client
		n++
	}
	b.Sweeps.Add(1)
	if n == 0 {
		b.EmptySweep.Add(1)
	} else {
		b.Executed.Add(uint64(n))
		if n > 1 {
			b.Batched.Add(uint64(n))
		}
	}
	return n
}

// Seal marks the buffer closed and runs a final sweep that executes every
// task already posted, so no future delegated before shutdown dangles. Any
// task posted after the seal is completed with ErrWorkerStopped by its own
// client (see Slot.post). Seal is idempotent and safe to call from a
// supervisor goroutine after the worker has exited; it returns the number
// of tasks the final sweep executed.
func (b *Buffer) Seal() int {
	b.sealMu.Lock()
	defer b.sealMu.Unlock()
	b.sealed.Store(true)
	return b.sweepSlots(nil, nil)
}

// FailPending completes every posted, unswept task with err without
// executing it, and frees the slots. The worker crash path uses it so the
// tasks that were in the buffer when the worker died are answered with a
// PanicError instead of waiting for a respawn that may never come. Returns
// the number of futures failed.
func (b *Buffer) FailPending(err error) int {
	b.sealMu.Lock()
	defer b.sealMu.Unlock()
	n := 0
	for i := range b.slots {
		s := &b.slots[i]
		if s.state.Load() != slotPosted {
			continue
		}
		fut := s.fut
		s.task, s.fut = nil, nil
		s.state.Store(slotFree)
		if fut == nil {
			// The crashed sweep had already taken this task (the crash hit
			// between claiming the slot and releasing it); its future was
			// completed — or will be failed via the crash value — upstream.
			continue
		}
		fut.completeErr(err)
		b.Failed.Add(1)
		n++
	}
	return n
}

// rescue answers the calling client's own post into a sealed buffer. The
// seal lock orders it against the final sweep: if the sweep already took
// the task the slot is free and there is nothing to do, otherwise the task
// never ran and its future completes with ErrWorkerStopped.
func (b *Buffer) rescue(s *Slot) {
	b.sealMu.Lock()
	defer b.sealMu.Unlock()
	if s.state.Load() != slotPosted {
		return
	}
	fut := s.fut
	s.task, s.fut = nil, nil
	fut.completeErr(ErrWorkerStopped)
	s.state.Store(slotFree)
	b.Failed.Add(1)
	b.Rescued.Add(1)
}

// Inbox composes the message buffers of a domain's workers and hands slot
// ownership to clients. Acquisition and release are off the critical path
// and guarded by a mutex; posting and polling are lock-free.
type Inbox struct {
	buffers []*Buffer

	mu        sync.Mutex
	nextOwner int32
	freeCount int
}

// ErrNoSlots is returned when the inbox cannot satisfy a slot acquisition:
// the configured workers bound the number of concurrently served clients.
var ErrNoSlots = errors.New("delegation: inbox has no free slots")

// NewInbox builds an inbox over the given worker buffers.
func NewInbox(buffers []*Buffer) (*Inbox, error) {
	if len(buffers) == 0 {
		return nil, fmt.Errorf("delegation: inbox needs at least one buffer")
	}
	in := &Inbox{buffers: buffers}
	for _, b := range buffers {
		in.freeCount += len(b.slots)
	}
	return in, nil
}

// Buffers returns the composed worker buffers.
func (in *Inbox) Buffers() []*Buffer { return in.buffers }

// FreeSlots returns the number of currently unowned slots.
func (in *Inbox) FreeSlots() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.freeCount
}

// AcquireSlots grants ownership of n slots to a new client. The optional
// rank function orders workers by preference (lower is better) — the runtime
// passes NUMA distance from the client's CPU to each worker's CPU, so slots
// come from the nearest worker's buffer first (Section 6's locality-aware
// slot assignment). Slots may span several buffers when the preferred one
// is exhausted.
func (in *Inbox) AcquireSlots(n int, rank func(worker int) int) ([]*Slot, error) {
	if n < 1 {
		return nil, fmt.Errorf("delegation: acquiring %d slots", n)
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.freeCount < n {
		return nil, ErrNoSlots
	}
	order := make([]int, len(in.buffers))
	for i := range order {
		order[i] = i
	}
	if rank != nil {
		sort.SliceStable(order, func(a, b int) bool {
			return rank(in.buffers[order[a]].worker) < rank(in.buffers[order[b]].worker)
		})
	}
	owner := in.nextOwner
	in.nextOwner++
	var out []*Slot
	for _, bi := range order {
		b := in.buffers[bi]
		for i := range b.slots {
			if len(out) == n {
				break
			}
			if b.slots[i].owner == -1 {
				b.slots[i].owner = owner
				out = append(out, &b.slots[i])
			}
		}
		if len(out) == n {
			break
		}
	}
	in.freeCount -= n
	return out, nil
}

// ReleaseSlots returns slot ownership to the inbox. All slots must be free
// (no posted task in flight).
func (in *Inbox) ReleaseSlots(slots []*Slot) error {
	in.mu.Lock()
	defer in.mu.Unlock()
	for _, s := range slots {
		if s.state.Load() == slotPosted {
			return fmt.Errorf("delegation: releasing slot with task in flight")
		}
		if s.owner == -1 {
			return fmt.Errorf("delegation: releasing unowned slot")
		}
		s.owner = -1
		in.freeCount++
	}
	return nil
}

// Client delegates tasks through slots it owns, keeping up to burst tasks
// outstanding (the paper's bursting delegation mode; Section 6). A Client is
// not safe for concurrent use — it models one application thread, as in FFWD.
type Client struct {
	slots   []*Slot
	pending []pendingTask // FIFO of outstanding delegations
	probe   *obs.ClientShard
}

type pendingTask struct {
	slot *Slot
	fut  *Future
}

// NewClient wraps owned slots into a delegating client. The burst size is
// len(slots): the paper's experiments use 14.
func NewClient(slots []*Slot) (*Client, error) {
	if len(slots) == 0 {
		return nil, fmt.Errorf("delegation: client needs at least one slot")
	}
	return &Client{slots: slots, pending: make([]pendingTask, 0, len(slots))}, nil
}

// SetProbe installs the client's telemetry shard. The Client is single-
// threaded by contract, so the shard shares its owner's serial execution.
func (c *Client) SetProbe(p *obs.ClientShard) { c.probe = p }

// Burst returns the client's maximum number of outstanding tasks.
func (c *Client) Burst() int { return len(c.slots) }

// Outstanding returns the number of tasks currently in flight.
func (c *Client) Outstanding() int { return len(c.pending) }

// Delegate posts task into a free owned slot and returns its future. When
// the burst is completely filled it first waits for the oldest outstanding
// task — the throughput-maximising delegation mode of Section 6.
func (c *Client) Delegate(task Task) *Future {
	var slot *Slot
	if len(c.pending) == len(c.slots) {
		if c.probe != nil {
			c.probe.BurstWait()
		}
		oldest := c.pending[0]
		oldest.fut.Wait()
		c.pending = c.pending[1:]
		slot = oldest.slot
	} else {
		for _, s := range c.slots {
			if s.state.Load() == slotFree && !c.inFlight(s) {
				slot = s
				break
			}
		}
		if slot == nil {
			// All free slots are bookkept as pending but not yet swept;
			// wait for the oldest.
			if c.probe != nil {
				c.probe.BurstWait()
			}
			oldest := c.pending[0]
			oldest.fut.Wait()
			c.pending = c.pending[1:]
			slot = oldest.slot
		}
	}
	f := &Future{}
	if c.probe != nil {
		// Post counts the delegation and, on sampled posts, mints the
		// lifecycle span; the slot's release store publishes it (via the
		// future) to the worker alongside the task.
		f.span = c.probe.Post()
	}
	slot.post(task, f)
	c.pending = append(c.pending, pendingTask{slot: slot, fut: f})
	return f
}

func (c *Client) inFlight(s *Slot) bool {
	for _, p := range c.pending {
		if p.slot == s {
			return true
		}
	}
	return false
}

// Invoke delegates a task and synchronously waits for its result — the
// simple delegation mode (burst size 1 semantics regardless of owned slots).
// An error completion comes back as the value; InvokeErr separates it.
func (c *Client) Invoke(task Task) any {
	return c.Delegate(task).Wait()
}

// DelegateErr posts like Delegate and additionally surfaces an immediately
// known failure: a post into a sealed buffer is completed with
// ErrWorkerStopped before DelegateErr returns, so the caller can stop
// submitting instead of discovering the error future by future.
func (c *Client) DelegateErr(task Task) (*Future, error) {
	f := c.Delegate(task)
	return f, f.Err()
}

// InvokeErr delegates a task, waits, and returns the value and the typed
// error separately: PanicError when the task panicked, ErrWorkerStopped
// when the buffer was sealed before the task ran.
func (c *Client) InvokeErr(task Task) (any, error) {
	return c.Delegate(task).Result()
}

// DelegateBulk posts tasks as one bulk burst under a single synchronisation
// phase (the bulk-bursting mode): all tasks are delegated, then all futures
// awaited, and the results returned in order.
func (c *Client) DelegateBulk(tasks []Task) []any {
	futs := make([]*Future, len(tasks))
	for i, t := range tasks {
		futs[i] = c.Delegate(t)
	}
	out := make([]any, len(tasks))
	for i, f := range futs {
		out[i] = f.Wait()
	}
	return out
}

// DelegateBulkErr is DelegateBulk with an error channel: results hold each
// task's value (nil where a task failed) and the returned error is the
// first typed error among them.
func (c *Client) DelegateBulkErr(tasks []Task) ([]any, error) {
	futs := make([]*Future, len(tasks))
	for i, t := range tasks {
		futs[i] = c.Delegate(t)
	}
	out := make([]any, len(tasks))
	var firstErr error
	for i, f := range futs {
		v, err := f.Result()
		out[i] = v
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return out, firstErr
}

// Drain waits for every outstanding task to finish and frees the pending
// list. Call before releasing slots.
func (c *Client) Drain() {
	for _, p := range c.pending {
		p.fut.Wait()
	}
	c.pending = c.pending[:0]
	if c.probe != nil {
		c.probe.Flush()
	}
}

// DrainErr drains like Drain and returns the first typed error among the
// outstanding tasks, so a caller shutting down can tell "all work done"
// from "work abandoned by a stopped or crashed worker".
func (c *Client) DrainErr() error {
	var firstErr error
	for _, p := range c.pending {
		if _, err := p.fut.Result(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	c.pending = c.pending[:0]
	if c.probe != nil {
		c.probe.Flush()
	}
	return firstErr
}

// Slots exposes the owned slots (for release back to the inbox).
func (c *Client) Slots() []*Slot { return c.slots }

// Worker runs the poll loop over one buffer until stop is closed.
// A worker is bound to exactly one buffer, mirroring FFWD's design.
type Worker struct {
	buf *Buffer
}

// NewWorker wraps a buffer into a pollable worker.
func NewWorker(buf *Buffer) *Worker { return &Worker{buf: buf} }

// Run polls the buffer until stop is closed or the worker crashes. It
// yields to the scheduler on empty sweeps so co-scheduled goroutines make
// progress on small machines.
//
// On a clean stop Run seals the buffer — the seal's final sweep answers
// every task posted before the seal, and a task racing past it is rescued
// with ErrWorkerStopped by its own client — then returns nil.
//
// A panic escaping the sweep (a fault-injected worker kill, or a bug in
// the protocol itself; task panics never escape, runTask converts them) is
// recovered here: every task posted in the buffer at crash time completes
// with a PanicError, and the crash is returned so a supervisor can respawn
// the worker. The buffer is NOT sealed on a crash — it keeps accepting
// posts for the respawned worker.
func (w *Worker) Run(stop <-chan struct{}) (crash error) {
	defer func() {
		// Publish the telemetry shard's local mirror: this deferred func
		// runs on the worker goroutine on both the clean and crash exits.
		if p := w.buf.probe; p != nil {
			p.Flush()
		}
		if r := recover(); r != nil {
			err := PanicError{Value: r}
			w.buf.FailPending(err)
			crash = err
		}
	}()
	for {
		n := w.buf.Sweep()
		if n == 0 {
			select {
			case <-stop:
				w.buf.Seal()
				return nil
			default:
				runtime.Gosched()
			}
		}
	}
}
