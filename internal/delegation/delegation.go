// Package delegation implements the paper's in-memory message-passing layer,
// modelled on fast fly-weight delegation (FFWD, Roghanchi et al. SOSP'17)
// and extended as Section 6 describes: every worker owns a contiguous
// message buffer of fixed slots; a virtual domain's inbox is composed of the
// buffers of its configured workers; clients obtain *ownership* of slots
// from the inbox (rather than being hard-wired to one worker) and delegate
// asynchronous tasks through them, receiving results via futures.
//
// The FFWD properties carried over:
//
//   - each slot is padded to 128 bytes so two slots never share (adjacent)
//     cache lines and clients never contend with each other;
//   - a slot has a single versioned state word toggled between "free" (even)
//     and "posted" (odd), advanced by exactly one client and claimed by the
//     sweeping worker, so the steady-state protocol needs no contended
//     read-modify-write atomics on the critical path;
//   - a worker buffer holds up to 15 slots, the batch FFWD answers with a
//     single response-line write; the worker drains all posted slots of a
//     buffer in one sweep (response batching).
//
// Hot-path memory discipline (DESIGN.md §10): the steady-state round trip
// allocates nothing and is O(1) per operation. Each slot embeds a recycled
// Future whose completion word carries a monotonically increasing generation
// (gen<<2 | state), so the synchronous Invoke/InvokeErr paths reuse the same
// future across operations without ABA: every completion path — worker
// sweep, seal rescue, crash fail-over — first claims the slot with a CAS on
// its versioned state word and then publishes the result with a CAS on the
// future's generation word, making both execution and completion exactly
// once per generation. Clients track free slots and outstanding tasks in
// fixed-capacity index rings, so posting never scans and never grows.
// Asynchronous Delegate still hands out a one-shot heap future, because its
// caller may hold the handle arbitrarily long after the slot has cycled.
//
// NUMA-aware slot assignment — giving a client slots in the buffer of the
// worker nearest to it — is the caller's policy: AcquireSlots accepts a
// preference ranking over workers.
//
// Failure model (beyond FFWD, which assumes immortal workers): a future
// completes exactly once, with a value or with a typed error — PanicError
// when the task panicked, ErrWorkerStopped when it never ran. On shutdown a
// worker *seals* its buffer: the seal's final sweep answers everything
// already posted, and a post racing past it is rescued by its own client
// with ErrWorkerStopped, so no client can block forever on a stopping
// worker. A worker crash (a panic escaping the sweep, e.g. injected via
// FaultHook) fails the buffer's posted tasks with a PanicError and is
// reported to the caller of Worker.Run so a supervisor can respawn the
// worker; the buffer stays open for the respawn.
package delegation

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"robustconf/internal/obs"
)

// SlotsPerBuffer is the FFWD response-batching width: one worker answers up
// to 15 clients per response line.
const SlotsPerBuffer = 15

// Task is the unit of delegated work. The worker goroutine executes it and
// places the returned value into the task's future.
type Task func() any

// ErrWorkerStopped is delivered through a future when its task was posted
// into a sealed buffer: the owning worker has shut down (or exhausted its
// restart budget after crashing) and will never execute the task. The task
// did NOT run.
var ErrWorkerStopped = errors.New("delegation: worker stopped, task not executed")

// ErrWaitTimeout is returned by Future.WaitTimeout when the deadline expires
// before the task completes. The task may still complete later; the future
// stays valid and can be waited on again.
var ErrWaitTimeout = errors.New("delegation: wait timed out")

// Future completion states, held in the low bits of the future's word.
const (
	futPending   uint64 = 0 // no result yet
	futValue     uint64 = 1 // completed with a value
	futError     uint64 = 2 // completed with a typed error (never ran, or panicked)
	futStateMask uint64 = 3
	futGenShift         = 2
)

// Future is the invocation handle a client holds on a delegated task. A
// future completes exactly once per generation, either with a value (the
// task ran and returned) or with a typed error: PanicError when the task
// panicked, ErrWorkerStopped when it was posted into a sealed buffer and
// never ran.
//
// The word packs a generation counter over the completion state
// (gen<<2 | state). Detached futures — the ones Delegate returns — live and
// die in generation 0 and behave like ordinary one-shot futures. Slot-
// embedded futures are recycled: the owning client bumps the generation on
// every reuse (begin), and completion paths CAS against the exact pending
// word they observed, so a straggling completer from an old generation can
// never touch a newer one (no ABA).
type Future struct {
	word atomic.Uint64 // gen<<2 | futPending/futValue/futError
	val  any
	err  error
	span *obs.Span // lifecycle span on sampled posts; nil almost always

	// Typed result channel for KV posts (postKV): written by the completer
	// before the publishing CAS, read by awaitTokenKV after it, so a typed
	// round trip never boxes a uint64 into val. Every completion path of a
	// typed op either writes these or completes with futError, so no reset
	// in begin is needed.
	kvVal uint64
	kvOK  bool
}

// begin recycles the future for its next generation and returns the pending
// word completion paths must CAS against. Only the slot-owning client calls
// it, and only while the slot is free — no completer can hold a reference to
// the new generation yet, so plain stores suffice.
func (f *Future) begin() uint64 {
	w := (f.word.Load()>>futGenShift + 1) << futGenShift
	f.val, f.err, f.span = nil, nil, nil
	f.word.Store(w)
	return w
}

// awaitToken blocks until the generation identified by tok completes, then
// returns its result. Only the slot-owning client calls it (the embedded
// future is never handed out), so the word cannot move past tok's completion
// while we wait.
func (f *Future) awaitToken(tok uint64) (any, error) {
	w := f.word.Load()
	for i := 0; w == tok && i < waitSpins; i++ {
		runtime.Gosched()
		w = f.word.Load()
	}
	d := waitSleepMin
	for w == tok {
		time.Sleep(d)
		if d < waitSleepMax {
			d *= 2
		}
		w = f.word.Load()
	}
	failed := w&futStateMask == futError
	f.span.Resolve(failed)
	if failed {
		return nil, f.err
	}
	return f.val, nil
}

// awaitTokenKV is awaitToken for a typed KV post: it blocks until the
// generation identified by tok completes and returns the typed result
// without boxing. Only the slot-owning client calls it.
func (f *Future) awaitTokenKV(tok uint64) (uint64, bool, error) {
	w := f.word.Load()
	for i := 0; w == tok && i < waitSpins; i++ {
		runtime.Gosched()
		w = f.word.Load()
	}
	d := waitSleepMin
	for w == tok {
		time.Sleep(d)
		if d < waitSleepMax {
			d *= 2
		}
		w = f.word.Load()
	}
	failed := w&futStateMask == futError
	f.span.Resolve(failed)
	if failed {
		return 0, false, f.err
	}
	return f.kvVal, f.kvOK, nil
}

// complete publishes a value result for the current generation; used by
// tests and benchmarks that drive futures directly (the worker path in
// sweepSlots claims the slot first and CASes the word inline).
func (f *Future) complete(v any) {
	w := f.word.Load()
	if w&futStateMask != futPending {
		return
	}
	f.val = v
	f.span.MarkResponded()
	f.word.CompareAndSwap(w, w|futValue)
}

// completeErr publishes an error result. The generation CAS means lifecycle
// paths that fail futures (seal rescue, crash fail-over) can never clobber a
// result the worker already published, nor touch a later generation.
func (f *Future) completeErr(err error) bool {
	w := f.word.Load()
	if w&futStateMask != futPending {
		return false
	}
	f.err = err
	f.span.MarkResponded()
	return f.word.CompareAndSwap(w, w|futError)
}

// observeResolved finalises the future's lifecycle span the first time a
// waiter observes the completed result (no-op without a span).
func (f *Future) observeResolved() {
	f.span.Resolve(f.word.Load()&futStateMask == futError)
}

// Done reports whether the result is available without blocking.
func (f *Future) Done() bool { return f.word.Load()&futStateMask != futPending }

// Err returns the typed error the future completed with, nil for a pending
// future or a value result.
func (f *Future) Err() error {
	if f.word.Load()&futStateMask == futError {
		return f.err
	}
	return nil
}

// Idle-wait backoff: spin (yielding) this many times, then sleep with
// exponential backoff between polls. Bursting clients normally see their
// oldest future complete within the spin phase; the sleep phase only
// engages on genuinely idle waits, where burning a core on Gosched would
// starve co-scheduled workers.
const (
	waitSpins    = 256
	waitSleepMin = time.Microsecond
	waitSleepMax = 100 * time.Microsecond
)

// block waits until the future completes, spinning first and then sleeping
// with exponential backoff.
func (f *Future) block() {
	for i := 0; i < waitSpins; i++ {
		if f.word.Load()&futStateMask != futPending {
			return
		}
		runtime.Gosched()
	}
	d := waitSleepMin
	for f.word.Load()&futStateMask == futPending {
		time.Sleep(d)
		if d < waitSleepMax {
			d *= 2
		}
	}
}

// result returns the completed future's result in Wait's historical shape:
// the value, or the error as the value (a PanicError came back through Wait
// as a plain value before futures grew an error channel).
func (f *Future) result() any {
	f.observeResolved()
	if f.word.Load()&futStateMask == futError {
		return f.err
	}
	return f.val
}

// Wait blocks until the result is available. An error-completed future
// yields its error as the returned value (use Result or Err for a typed
// error). Waiting spins briefly and then backs off to sleeping, so an idle
// wait does not burn a core.
func (f *Future) Wait() any {
	f.block()
	return f.result()
}

// Result blocks like Wait but separates the two completion channels: the
// task's value, or the typed error (PanicError, ErrWorkerStopped) when the
// task panicked or never ran.
func (f *Future) Result() (any, error) {
	f.block()
	f.observeResolved()
	if f.word.Load()&futStateMask == futError {
		return nil, f.err
	}
	return f.val, nil
}

// WaitTimeout waits up to d for the result. It returns ErrWaitTimeout when
// the deadline expires first; the future remains valid and may still
// complete afterwards.
func (f *Future) WaitTimeout(d time.Duration) (any, error) {
	deadline := time.Now().Add(d)
	for i := 0; i < waitSpins; i++ {
		if f.Done() {
			return f.Result()
		}
		runtime.Gosched()
	}
	sleep := waitSleepMin
	for !f.Done() {
		if time.Now().After(deadline) {
			return nil, ErrWaitTimeout
		}
		time.Sleep(sleep)
		if sleep < waitSleepMax {
			sleep *= 2
		}
	}
	return f.Result()
}

// WaitCtx waits until the result is available or the context is cancelled,
// returning the context's error in the latter case. The future remains
// valid after cancellation.
func (f *Future) WaitCtx(ctx context.Context) (any, error) {
	for i := 0; i < waitSpins; i++ {
		if f.Done() {
			return f.Result()
		}
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		runtime.Gosched()
	}
	sleep := waitSleepMin
	for !f.Done() {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		time.Sleep(sleep)
		if sleep < waitSleepMax {
			sleep *= 2
		}
	}
	return f.Result()
}

// TryGet returns the result if available (an error-completed future yields
// its error as the value, mirroring Wait).
func (f *Future) TryGet() (any, bool) {
	if f.Done() {
		return f.result(), true
	}
	return nil, false
}

// Slot is one message cell in a worker's buffer. Exactly one client owns it
// at a time (enforced by the inbox) and exactly one worker polls it.
//
// The state word is a version counter: odd means posted, even means free,
// and the count itself is the slot's generation. The owning client advances
// free→posted with a plain store (it is the sole writer of a free slot);
// every consumer — worker sweep, seal's final sweep, client-side rescue,
// crash fail-over — claims posted→free with a CAS on the exact odd value it
// observed. A claim that loses the CAS walks away, so a task is executed by
// exactly one sweeper and a stale free from an old generation can never
// clobber a newer post.
type Slot struct {
	_     [128]byte // padding: no false sharing with the previous slot
	state atomic.Uint64
	task  Task
	fut   *Future
	fut0  Future // recycled future for the zero-alloc synchronous path
	owner int32  // client id for diagnostics; -1 = unowned
	ro    bool   // task is read-only: the sweep must not count it as a mutating batch
	enc   func(dst []byte) []byte
	buf   *Buffer

	// Typed KV posts (postKV): the op encoded as plain words instead of a
	// closure, so the sweep can group same-kernel ops into one interleaved
	// ExecBatch call and the result travels back through the future's typed
	// fields — no boxing anywhere. kern is nil for opaque closure posts.
	kern  BatchKernel
	kind  uint8
	key   uint64
	val   uint64
	kvenc KVEncoder
	// encKV adapts kvenc to the WALSink.StageRecord shape; prebuilt once in
	// NewBuffer (it reads the slot's kind/key/val at encode time), so logged
	// typed posts allocate nothing.
	encKV func(dst []byte) []byte
}

// posted reports whether the slot currently holds an unclaimed task.
func (s *Slot) posted() bool { return s.state.Load()&1 == 1 }

// post publishes a task into the slot. The client must own the slot and the
// slot must be free. f is either a fresh detached future (Delegate) or the
// slot's own recycled fut0 with its generation already begun (InvokeErr).
// enc, when non-nil, is the task's logical WAL record encoder: the sweep
// stages its output and defers the future's completion to the group commit.
//
// The sealed check after the posted store closes the stop/post race: both
// sides use sequentially consistent atomics, so either the worker's final
// sweep observes the posted slot, or this client observes the seal and
// rescues its own task with ErrWorkerStopped — a post can never dangle.
func (s *Slot) post(t Task, f *Future, ro bool, enc func(dst []byte) []byte) {
	s.task = t
	s.fut = f
	s.ro = ro
	s.enc = enc
	s.kern = nil // opaque post: the sweep must not route it through a kernel
	s.state.Store(s.state.Load() + 1) // release: publishes task+fut+ro+enc to the worker
	if s.buf.sealed.Load() {
		s.buf.rescue(s)
	}
}

// postKV publishes a typed KV operation into the slot: kern is the target
// structure's batch kernel, kind/key/val the operation. A KVGet posts as
// read-only (it must not open the mutating-batch window, like
// InvokeReadErr); a mutation with a non-nil kvenc posts with the prebuilt
// encKV record encoder so the WAL sweep stages and group-commits it exactly
// like a logged closure task. The same sealed check as post closes the
// stop/post race.
func (s *Slot) postKV(kern BatchKernel, kind uint8, key, val uint64, f *Future, kvenc KVEncoder) {
	s.task = nil
	s.fut = f
	s.kern = kern
	s.kind = kind
	s.key = key
	s.val = val
	s.kvenc = kvenc
	s.ro = kind == KVGet
	if kvenc != nil && kind != KVGet {
		s.enc = s.encKV
	} else {
		s.enc = nil
	}
	s.state.Store(s.state.Load() + 1) // release: publishes the typed op to the worker
	if s.buf.sealed.Load() {
		s.buf.rescue(s)
	}
}

// FaultHook intercepts the worker's poll loop for deterministic fault
// injection (see internal/faultinject). A nil hook — the default — keeps
// the hot path unchanged. BeforeSweep runs outside the task-panic recovery,
// so a panic there simulates a worker crash (recovered by Worker.Run);
// BeforeTask runs inside it, so a panic there becomes the task's
// PanicError. Either may sleep to simulate stalls.
type FaultHook interface {
	BeforeSweep(worker int)
	BeforeTask(worker int)
}

// statFlushEvery is the worker's stat-publication cadence: the sweep loop
// counts into plain worker-local mirrors and stores them to the published
// atomics every statFlushEvery sweeps (and when parking idle, and on worker
// exit) — the same flush discipline internal/obs shards use. The sweep loop
// therefore issues no stat read-modify-write at all; external readers see
// counters that lag a live worker by at most statFlushEvery-1 sweeps.
const statFlushEvery = 64

// Buffer is the contiguous message buffer of one worker.
type Buffer struct {
	worker int // worker id within the domain (index into the inbox)
	slots  []Slot

	// Lifecycle. sealed flips once, on shutdown or restart-budget
	// exhaustion; sealMu serialises every operation that may complete
	// futures outside the worker's own sweep (final sweep, crash
	// fail-over, client-side rescue of a post into a sealed buffer).
	sealed atomic.Bool
	sealMu sync.Mutex

	hook FaultHook // fault injection; nil by default, set before workers run

	probe *obs.WorkerShard // telemetry shard; nil by default, set before workers run

	// wal, when set, routes sweeps through sweepSlotsWAL: mutating tasks
	// that carry a record encoder are staged into the worker's log and
	// their futures complete only after the batch group-commits (success
	// implies durable). Nil — the default — keeps Sweep on the original
	// body, so the WAL-off hot path is unchanged. stash holds the
	// executed-but-uncommitted completions between execute and commit; it
	// is worker-local state, preallocated so the logged path stays
	// allocation-free.
	wal   WALSink
	stash [SlotsPerBuffer]walStash

	// Interleaved batched execution (DESIGN.md §15), armed by SetBatchExec:
	// batchWidth > 0 routes local sweeps through sweepSlotsBatch, which
	// claims the whole pass first and then executes same-kernel runs of
	// typed slots (capped at batchWidth) through one ExecBatch call. The bk*
	// arrays are the pass's claim list and kernel staging area; bk1* is the
	// single-op staging used by the serial bodies' typed branch. All are
	// worker-local in the same sense as stash: written by the owning
	// worker's sweeps, and by sealed-path sweeps only under the shutdown
	// discipline that keeps them off live-worker passes.
	batchWidth int
	bkSlot     [SlotsPerBuffer]*Slot
	bkW        [SlotsPerBuffer]uint64
	bkKind     [SlotsPerBuffer]uint8
	bkKey      [SlotsPerBuffer]uint64
	bkVal      [SlotsPerBuffer]uint64
	bkOutV     [SlotsPerBuffer]uint64
	bkOutOK    [SlotsPerBuffer]bool
	bk1Kind    [1]uint8
	bk1Key     [1]uint64
	bk1Val     [1]uint64
	bk1OutV    [1]uint64
	bk1OutOK   [1]bool

	// arena, when set, is the worker-owned batch allocator recycled at
	// sweep-batch boundaries: after a non-empty local sweep completes (and,
	// on the WAL path, after the batch group-commits and every stashed
	// future is answered) no batch-lifetime allocation is referenced
	// anywhere, so the sweep resets the arena and the next batch reuses the
	// same slabs. Sealed-path sweeps never reset — they may run on foreign
	// goroutines, and Reset is owner-only.
	arena ArenaSink

	_ [64]byte // keep the worker-local mirrors off the lifecycle fields' line

	// Worker-local stat mirrors: written only by the owning worker's
	// unsealed sweeps, published to the atomics below on the flush cadence.
	// Sealed-path sweeps (Seal's final pass, rescues) do not count here —
	// they may run on non-worker goroutines and shutdown traffic is not
	// steady-state signal.
	nSweeps, nEmpty, nExec, nBatch, sinceFlush uint64
	nBatchSweeps, nKernOps                     uint64

	_ [64]byte // local mirrors and published images on separate lines

	// Published stat images (flushed on the statFlushEvery cadence; see
	// SyncStats). Snapshots lag a live worker by at most one cadence.
	Executed       atomic.Uint64 // tasks executed
	Sweeps         atomic.Uint64 // buffer sweeps (poll rounds)
	EmptySweep     atomic.Uint64 // sweeps that found no posted slot
	Batched        atomic.Uint64 // tasks answered in multi-task sweeps (batching)
	BatchSweeps    atomic.Uint64 // non-empty passes of the interleaved batched path
	BatchKernelOps atomic.Uint64 // typed ops executed through batch kernels
	pubPending     atomic.Int64  // posted-slot gauge at last flush (obs export)

	_ [64]byte // publication words off the flush-cadence stats' line

	// Read-bypass publication words (DESIGN.md §12): a seqlock split into an
	// enter/exit counter pair so concurrent bumpers compose (a single parity
	// word would not). A sweep pass bumps mutEnter before executing its first
	// non-read task and mutExit after the pass; the pair is equal exactly when
	// no mutating batch is in flight. Seal and crash fail-over poison the pair
	// (mutEnter alone, under sealMu, before any future completes), leaving it
	// permanently unequal — a bypass read can never validate across a seal or
	// crash window, and a buffer is never re-armed after either. Invariant:
	// mutEnter >= mutExit, always.
	mutEnter atomic.Uint64
	mutExit  atomic.Uint64

	// Fault stats: cold paths only, kept exact with atomic RMWs.
	Failed  atomic.Uint64 // futures completed with a typed error
	Rescued atomic.Uint64 // posts into a sealed buffer answered with ErrWorkerStopped
}

// NewBuffer allocates a worker buffer with n slots (n ≤ SlotsPerBuffer).
func NewBuffer(worker, n int) (*Buffer, error) {
	if n < 1 || n > SlotsPerBuffer {
		return nil, fmt.Errorf("delegation: %d slots per buffer out of range [1,%d]", n, SlotsPerBuffer)
	}
	b := &Buffer{worker: worker, slots: make([]Slot, n)}
	for i := range b.slots {
		s := &b.slots[i]
		s.owner = -1
		s.buf = b
		// One closure per slot, for the buffer's lifetime: adapts a typed
		// post's stateless KVEncoder to the WALSink.StageRecord shape by
		// reading the slot's op words at encode time (stable until the
		// future is answered, which is after the commit that consumes them).
		s.encKV = func(dst []byte) []byte { return s.kvenc(dst, s.kind, s.key, s.val) }
	}
	return b, nil
}

// Worker returns the worker id this buffer belongs to.
func (b *Buffer) Worker() int { return b.worker }

// SetFaultHook installs a fault-injection hook. Call before any worker
// polls the buffer; the field is read without synchronisation on the hot
// path (goroutine creation orders the write for workers spawned after it).
func (b *Buffer) SetFaultHook(h FaultHook) { b.hook = h }

// SetProbe installs the worker's telemetry shard. Like SetFaultHook it must
// be called before any worker polls the buffer; the field is read without
// synchronisation on the hot path.
func (b *Buffer) SetProbe(p *obs.WorkerShard) { b.probe = p }

// WALSink is the per-worker write-ahead log handle the sweep drives; it is
// satisfied structurally by internal/wal.WorkerLog so this package stays
// free of a wal import. The contract mirrors a sweep batch: Begin on the
// first staged record of a pass (may block on the domain's quiescence
// gate), StageRecord per logged task, then exactly one of Commit (group
// commit; allowFaults=false on seal-path sweeps suppresses injected commit
// faults) or Abort (crash unwind: discard the batch, release the gate).
type WALSink interface {
	Begin()
	StageRecord(enc func(dst []byte) []byte)
	Commit(allowFaults bool) error
	Abort()
}

// walStash is one executed-but-uncommitted completion: the future, the
// pending word to CAS against, and the task's result, parked between
// execution and the batch's group commit. Typed KV results park in the kv
// fields (kv=true) so the logged typed path stays free of boxing.
type walStash struct {
	f     *Future
	w     uint64
	res   any
	kv    bool
	kvVal uint64
	kvOK  bool
}

// SetWAL installs the worker's log handle, switching this buffer's sweeps
// to the write-ahead logged path. Call before any worker polls the buffer;
// the field is read without synchronisation on the hot path.
func (b *Buffer) SetWAL(l WALSink) { b.wal = l }

// ArenaSink is the slice of the worker arena the sweep drives — just the
// batch-boundary recycle. Satisfied structurally by *mem.Arena so this
// package stays free of a mem import, mirroring WALSink.
type ArenaSink interface {
	Reset()
}

// SetArena installs the worker's batch arena; the sweep resets it after
// every non-empty local pass (post-commit on the WAL path). Call before any
// worker polls the buffer; the field is read without synchronisation on the
// hot path.
func (b *Buffer) SetArena(a ArenaSink) { b.arena = a }

// Typed KV op kinds for the batched-execution path. The values mirror
// index.BatchGet..BatchDelete numerically (a test pins the equality) so the
// sweep can hand its claimed kinds straight to an index batch kernel without
// this package importing internal/index — the same structural-decoupling
// pattern as WALSink and ArenaSink.
const (
	KVGet uint8 = 1 + iota
	KVInsert
	KVUpdate
	KVDelete
)

// BatchKernel is the structural mirror of index.BatchKernel: a target that
// can execute a group of typed point operations with their traversal stages
// interleaved (software prefetch between stages), with effects and results
// identical to serial execution in index order. The sweep hands it maximal
// same-target runs of claimed typed slots.
type BatchKernel interface {
	ExecBatch(kinds []uint8, keys, vals, outVals []uint64, outOKs []bool)
}

// KVEncoder encodes the logical WAL record of one typed KV mutation into
// dst. It must be stateless with respect to the call site — the sweep
// invokes it through a per-slot prebuilt closure that reads the slot's
// kind/key/val fields, which stay stable from post until the future is
// answered (the owning client never reposts before observing completion).
type KVEncoder func(dst []byte, kind uint8, key, val uint64) []byte

// SetBatchExec arms the interleaved batched-execution sweep path with the
// given kernel group width: a local sweep claims every posted slot first,
// then executes maximal same-kernel runs of typed slots (capped at width)
// through BatchKernel.ExecBatch, overlapping their cache misses. width < 2
// disables the path (serial sweeps, the default). Call before any worker
// polls the buffer; the field is read without synchronisation on the hot
// path. Opaque closure tasks and typed slots without a kernel still execute
// serially inside a batched sweep — structures without a kernel silently
// degrade, they never break.
func (b *Buffer) SetBatchExec(width int) {
	if width > SlotsPerBuffer {
		width = SlotsPerBuffer
	}
	if width < 2 {
		width = 0
	}
	b.batchWidth = width
}

// Sealed reports whether the buffer has been sealed.
func (b *Buffer) Sealed() bool { return b.sealed.Load() }

// MutExit loads the exit half of the read-bypass publication pair. A
// validating reader must load MutExit before MutEnter (per buffer): exits
// trail enters, so loading in that order can only under-count exits and the
// equality check stays conservative.
func (b *Buffer) MutExit() uint64 { return b.mutExit.Load() }

// MutEnter loads the enter half of the read-bypass publication pair. Equal
// MutExit/MutEnter values mean no mutating sweep batch was in flight between
// the two loads; a reader that re-reads MutEnter unchanged after its
// structure read knows the read overlapped no mutating batch on this buffer.
func (b *Buffer) MutEnter() uint64 { return b.mutEnter.Load() }

// Pending counts the currently posted, unclaimed slots.
//
// The contract is advisory: the per-slot loads are atomic but the scan is
// not serialised against concurrent posts and sweeps, so a snapshot can miss
// a post that lands behind the scan position or still count a task a sweeper
// is about to claim. Two properties make it safe for its callers anyway:
// it never reports a phantom task (a counted slot really was posted at its
// load), and once all posters have stopped, a drain observed by this scan is
// permanent. The migration quiesce loop relies on exactly that; anything
// wanting a cheap racy gauge (the obs endpoint) should use PendingPublished
// instead.
func (b *Buffer) Pending() int {
	n := 0
	for i := range b.slots {
		if b.slots[i].posted() {
			n++
		}
	}
	return n
}

// PendingPublished returns the posted-slot gauge captured at the worker's
// last stat flush. It is a bounded-staleness snapshot for exporters: unlike
// Pending it costs one atomic load and never walks the slot array from a
// foreign goroutine.
func (b *Buffer) PendingPublished() int { return int(b.pubPending.Load()) }

// SyncStats publishes the worker-local stat mirrors to the exported atomic
// counters and refreshes the pending gauge. The sweep loop calls it on the
// statFlushEvery cadence, before parking idle, and on worker exit. It must
// only be called from the sweeping goroutine — or from any goroutine while
// no worker is polling the buffer (tests that drive Sweep manually).
func (b *Buffer) SyncStats() {
	b.sinceFlush = 0
	b.Sweeps.Store(b.nSweeps)
	b.EmptySweep.Store(b.nEmpty)
	b.Executed.Store(b.nExec)
	b.Batched.Store(b.nBatch)
	b.BatchSweeps.Store(b.nBatchSweeps)
	b.BatchKernelOps.Store(b.nKernOps)
	b.pubPending.Store(int64(b.Pending()))
}

// PanicError is delivered through a future when the delegated task
// panicked. The worker survives: one client's faulty task must not take
// down a virtual domain that other clients depend on.
type PanicError struct {
	Value any // the recovered panic value
}

// Error implements error.
func (p PanicError) Error() string {
	return fmt.Sprintf("delegation: task panicked: %v", p.Value)
}

// runTask executes a task, converting a panic into a PanicError result. The
// fault hook's BeforeTask runs inside the recovery scope, so an injected
// task fault surfaces exactly like a genuine one.
func runTask(task Task, hook FaultHook, worker int) (res any) {
	defer func() {
		if r := recover(); r != nil {
			res = PanicError{Value: r}
		}
	}()
	if hook != nil {
		hook.BeforeTask(worker)
	}
	return task()
}

// runKV executes one claimed typed slot through its kernel via the
// single-op staging arrays, converting a panic into a PanicError exactly
// like runTask. Used by the serial sweep bodies (sealed-path sweeps, and
// live sweeps with batched execution disabled) so typed posts behave
// identically whichever body claims them.
func (b *Buffer) runKV(s *Slot, hook FaultHook) (v uint64, ok bool, err error) {
	defer func() {
		if r := recover(); r != nil {
			v, ok, err = 0, false, PanicError{Value: r}
		}
	}()
	if hook != nil {
		hook.BeforeTask(b.worker)
	}
	b.bk1Kind[0] = s.kind
	b.bk1Key[0] = s.key
	b.bk1Val[0] = s.val
	b.bk1OutV[0] = 0
	b.bk1OutOK[0] = false
	s.kern.ExecBatch(b.bk1Kind[:], b.bk1Key[:], b.bk1Val[:], b.bk1OutV[:], b.bk1OutOK[:])
	return b.bk1OutV[0], b.bk1OutOK[0], nil
}

// Sweep executes all currently posted tasks in the buffer, in slot order,
// and reports how many it ran. This is the worker's poll body: one pass over
// the buffer detects posted toggles and answers them as a batch. A panicking
// task yields a PanicError result instead of killing the worker; a panic
// out of the hook's BeforeSweep escapes to Worker.Run as a worker crash.
// On a sealed buffer the pass runs under the seal lock so it cannot race
// client-side rescues.
func (b *Buffer) Sweep() int {
	if b.sealed.Load() {
		b.sealMu.Lock()
		defer b.sealMu.Unlock()
		// No probe or local stats on the sealed path: seal/rescue sweeps may
		// run on non-worker goroutines, which must not touch the worker's
		// unsynchronised mirrors.
		return b.sweepBody(nil, nil, false)
	}
	if h := b.hook; h != nil {
		h.BeforeSweep(b.worker)
	}
	probe := b.probe
	if probe == nil {
		return b.sweepBody(b.hook, nil, true)
	}
	t0 := probe.SweepBegin()
	n := b.sweepBody(b.hook, probe, true)
	probe.SweepEnd(t0, n)
	return n
}

// sweepBody dispatches one pass over the slots: the interleaved batched
// variant when SetBatchExec armed it (local sweeps only — sealed-path
// sweeps may run on foreign goroutines and always take the serial bodies,
// whose typed branch keeps KV slots working), the write-ahead logged
// variant when a WAL sink is installed, the original body otherwise — the
// WAL-off serial hot path pays two predictable branches.
func (b *Buffer) sweepBody(hook FaultHook, probe *obs.WorkerShard, local bool) int {
	if local && b.batchWidth > 0 {
		return b.sweepSlotsBatch(hook, probe)
	}
	if b.wal != nil {
		return b.sweepSlotsWAL(hook, probe, local)
	}
	return b.sweepSlots(hook, probe, local)
}

// sweepSlots is the sweep body. Callers on the sealed path hold sealMu and
// pass a nil hook (shutdown must not re-inject faults), a nil probe, and
// local=false so the worker-owned stat mirrors stay single-writer.
//
// Per posted slot: read the pending word of its future, claim the slot with
// a CAS on its version (the loser of a racing seal-path sweep walks away),
// execute, and publish the result with a CAS on the future word. Claiming
// frees the slot version *before* the result is published — safe, because
// the owning client never reposts until it has observed the completion.
func (b *Buffer) sweepSlots(hook FaultHook, probe *obs.WorkerShard, local bool) int {
	n := 0
	mutating := false
	for i := range b.slots {
		s := &b.slots[i]
		v := s.state.Load() // acquire: sees task+fut when posted
		if v&1 == 0 {
			continue
		}
		f := s.fut
		w := f.word.Load()
		if w&futStateMask != futPending {
			continue // answered by a racing completer this very moment
		}
		task := s.task
		ro := s.ro
		kern := s.kern
		if !s.state.CompareAndSwap(v, v+1) {
			continue // a seal-path sweep or rescue claimed it first
		}
		if !ro && !mutating {
			// First non-read task of this pass: open the mutating window
			// before it runs so a concurrent bypass reader cannot validate
			// over its effects. Read-flagged tasks never open the window —
			// a delegated read must not invalidate concurrent bypass reads.
			b.mutEnter.Add(1)
			mutating = true
		}
		s.task = nil
		sp := f.span // nil unless this task's post was trace-sampled
		sp.MarkSwept(b.worker)
		var tt int64
		if probe != nil {
			tt = probe.TaskBegin()
		}
		sp.MarkExecStart()
		if kern != nil {
			// Typed KV slot: one-op kernel execution, serial order.
			kvV, kvOK, kerr := b.runKV(s, hook)
			sp.MarkExecEnd()
			if probe != nil {
				probe.TaskEnd(tt)
			}
			sp.MarkResponded()
			if kerr != nil {
				f.err = kerr
				f.word.CompareAndSwap(w, w|futError)
				b.Failed.Add(1)
			} else {
				f.kvVal, f.kvOK = kvV, kvOK
				f.word.CompareAndSwap(w, w|futValue)
			}
			n++
			continue
		}
		res := runTask(task, hook, b.worker)
		sp.MarkExecEnd()
		if probe != nil {
			probe.TaskEnd(tt)
		}
		sp.MarkResponded()
		if pe, ok := res.(PanicError); ok {
			f.err = pe
			f.word.CompareAndSwap(w, w|futError)
			b.Failed.Add(1)
		} else {
			f.val = res
			f.word.CompareAndSwap(w, w|futValue)
		}
		n++
	}
	if mutating {
		b.mutExit.Add(1) // close the mutating window: pair balanced again
	}
	if local {
		if n > 0 && b.arena != nil {
			b.arena.Reset() // batch boundary: no batch allocation outlives the pass
		}
		b.nSweeps++
		b.sinceFlush++
		if n == 0 {
			b.nEmpty++
		} else {
			b.nExec += uint64(n)
			if n > 1 {
				b.nBatch += uint64(n)
			}
		}
		if b.sinceFlush >= statFlushEvery {
			b.SyncStats()
		}
	}
	return n
}

// sweepSlotsWAL is the sweep body on the write-ahead logged path. It
// mirrors sweepSlots exactly, with one extra discipline: a mutating task
// that carries a record encoder has its logical record staged into the
// worker log, and its future parks in the stash until the end-of-pass group
// commit — a client observes success only once the record is durable
// (group-commit rule, DESIGN.md §13). Unlogged tasks, read-only tasks, and
// panicked tasks complete inline as before: they change no logged state.
//
// The first claimed task of a pass — logged or not — opens the log batch
// (Begin takes the domain quiescence gate's read side), so only empty
// sweeps skip the gate: recovery's in-place restore rewrites structure
// state, and *every* task execution in the domain (including unlogged and
// read-only tasks) must quiesce behind its write side, not just logged
// mutations. A panic unwinding the pass — an injected worker kill, a
// commit fault — aborts the batch (discarding staged records, releasing
// the gate) and fails the stashed futures with a PanicError: those tasks
// executed but their effects were never committed, so after recovery
// replays the committed prefix the client's retry re-converges (records
// are idempotent post-state effects). The panic then re-raises to
// Worker.Run's crash recovery. FailPending cannot answer stashed futures —
// their slots are already claimed — which is exactly why the defer here
// must.
func (b *Buffer) sweepSlotsWAL(hook FaultHook, probe *obs.WorkerShard, local bool) (n int) {
	mutating := false
	logging := false
	ns := 0
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		if logging {
			b.wal.Abort()
		}
		for i := 0; i < ns; i++ {
			st := &b.stash[i]
			st.f.err = PanicError{Value: r}
			st.f.span.MarkResponded()
			if st.f.word.CompareAndSwap(st.w, st.w|futError) {
				b.Failed.Add(1)
			}
			*st = walStash{}
		}
		panic(r)
	}()
	for i := range b.slots {
		s := &b.slots[i]
		v := s.state.Load() // acquire: sees task+fut+enc when posted
		if v&1 == 0 {
			continue
		}
		f := s.fut
		w := f.word.Load()
		if w&futStateMask != futPending {
			continue // answered by a racing completer this very moment
		}
		task := s.task
		ro := s.ro
		enc := s.enc
		kern := s.kern
		if !s.state.CompareAndSwap(v, v+1) {
			continue // a seal-path sweep or rescue claimed it first
		}
		if !logging {
			b.wal.Begin()
			logging = true
		}
		if !ro && !mutating {
			b.mutEnter.Add(1)
			mutating = true
		}
		s.task = nil
		sp := f.span
		sp.MarkSwept(b.worker)
		var tt int64
		if probe != nil {
			tt = probe.TaskBegin()
		}
		sp.MarkExecStart()
		if kern != nil {
			// Typed KV slot: one-op kernel execution. The record encoder
			// (enc, the slot's prebuilt encKV) reads the slot's op words, so
			// it must stage before the future is answered — the same
			// stability window the stash relies on.
			kvV, kvOK, kerr := b.runKV(s, hook)
			sp.MarkExecEnd()
			if probe != nil {
				probe.TaskEnd(tt)
			}
			sp.MarkResponded()
			switch {
			case kerr != nil:
				f.err = kerr
				f.word.CompareAndSwap(w, w|futError)
				b.Failed.Add(1)
			case enc == nil || ro:
				f.kvVal, f.kvOK = kvV, kvOK
				f.word.CompareAndSwap(w, w|futValue)
			default:
				b.wal.StageRecord(enc)
				b.stash[ns] = walStash{f: f, w: w, kv: true, kvVal: kvV, kvOK: kvOK}
				ns++
			}
			n++
			continue
		}
		s.enc = nil
		res := runTask(task, hook, b.worker)
		sp.MarkExecEnd()
		if probe != nil {
			probe.TaskEnd(tt)
		}
		sp.MarkResponded()
		if pe, ok := res.(PanicError); ok {
			f.err = pe
			f.word.CompareAndSwap(w, w|futError)
			b.Failed.Add(1)
		} else if enc == nil || ro {
			f.val = res
			f.word.CompareAndSwap(w, w|futValue)
		} else {
			b.wal.StageRecord(enc)
			b.stash[ns] = walStash{f: f, w: w, res: res}
			ns++
		}
		n++
	}
	if logging {
		// Group commit: injected commit faults only fire on live worker
		// sweeps (hook != nil); the seal path's final sweep must not crash
		// the sealing goroutine.
		err := b.wal.Commit(hook != nil)
		logging = false
		for i := 0; i < ns; i++ {
			st := &b.stash[i]
			if err != nil {
				st.f.err = PanicError{Value: err}
				if st.f.word.CompareAndSwap(st.w, st.w|futError) {
					b.Failed.Add(1)
				}
			} else {
				if st.kv {
					st.f.kvVal, st.f.kvOK = st.kvVal, st.kvOK
				} else {
					st.f.val = st.res
				}
				st.f.word.CompareAndSwap(st.w, st.w|futValue)
			}
			*st = walStash{}
		}
		ns = 0
	}
	if mutating {
		b.mutExit.Add(1) // close the mutating window: pair balanced again
	}
	if local {
		if n > 0 && b.arena != nil {
			// Batch boundary: the group commit is done and every stashed
			// future answered, so no arena-backed staging memory is live.
			b.arena.Reset()
		}
		b.nSweeps++
		b.sinceFlush++
		if n == 0 {
			b.nEmpty++
		} else {
			b.nExec += uint64(n)
			if n > 1 {
				b.nBatch += uint64(n)
			}
		}
		if b.sinceFlush >= statFlushEvery {
			b.SyncStats()
		}
	}
	return n
}

// runKernel executes the claimed typed run [i,j) through kern with one
// interleaved ExecBatch call over the staging arrays, converting a panic —
// the kernel's own, or an injected BeforeTask fault's — into a PanicError
// the caller applies to the run's unanswered ops. The worker survives, as
// with any task panic; BeforeTask fires once per op in the run so injected
// task-fault budgets drain at the same rate as on the serial path.
func (b *Buffer) runKernel(kern BatchKernel, i, j int, hook FaultHook) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = PanicError{Value: r}
		}
	}()
	if hook != nil {
		for g := i; g < j; g++ {
			hook.BeforeTask(b.worker)
		}
	}
	kern.ExecBatch(b.bkKind[i:j], b.bkKey[i:j], b.bkVal[i:j], b.bkOutV[i:j], b.bkOutOK[i:j])
	return nil
}

// sweepSlotsBatch is the interleaved batched sweep body (DESIGN.md §15),
// taken only by local unsealed sweeps when SetBatchExec armed it. It
// restructures the pass from claim→execute→answer per slot into three
// phases over the whole pass:
//
//  1. Claim: every posted slot is claimed into the batch array with exactly
//     the per-slot protocol of the serial bodies (pending-word read, state
//     CAS; losers walk away). Slot fields stay readable after the claim —
//     the owning client never reposts before observing its completion.
//  2. Execute: claimed slots run in slot order. Maximal runs of typed slots
//     sharing a kernel (capped at the configured width) execute through one
//     ExecBatch call, which interleaves their traversal stages around
//     software prefetches so the run's cache misses overlap. Opaque closure
//     tasks — and typed slots whose structure has no kernel never exist
//     (the client falls back to closures) — execute serially in place, so a
//     mixed pass preserves slot order end to end.
//  3. Answer: results publish with the same future CAS as the serial
//     bodies. On the WAL path, logged mutations stage their records in
//     execution order and park in the stash until the end-of-pass group
//     commit — the group-commit rule and the arena's batch-boundary recycle
//     point are untouched, because both were already end-of-pass concepts.
//
// The mutating window opens once, before anything executes, when any
// claimed op is non-read — slightly wider than the serial bodies' first-
// mutation point, which only costs concurrent bypass readers a retry. A
// panic unwinding the pass aborts the log batch and fails every stashed and
// claimed-but-unanswered future with a PanicError (FailPending cannot see
// claimed slots), then re-raises to Worker.Run's crash recovery.
func (b *Buffer) sweepSlotsBatch(hook FaultHook, probe *obs.WorkerShard) (n int) {
	nc := 0
	anyMut := false
	for i := range b.slots {
		s := &b.slots[i]
		v := s.state.Load() // acquire: sees the op fields when posted
		if v&1 == 0 {
			continue
		}
		f := s.fut
		w := f.word.Load()
		if w&futStateMask != futPending {
			continue // answered by a racing completer this very moment
		}
		if !s.state.CompareAndSwap(v, v+1) {
			continue // a seal-path sweep or rescue claimed it first
		}
		if !s.ro {
			anyMut = true
		}
		b.bkSlot[nc] = s
		b.bkW[nc] = w
		nc++
	}
	if nc == 0 {
		b.nSweeps++
		b.nEmpty++
		b.sinceFlush++
		if b.sinceFlush >= statFlushEvery {
			b.SyncStats()
		}
		return 0
	}
	mutating := false
	logging := false
	ns := 0
	done := 0
	kernOps := 0
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		if logging {
			b.wal.Abort()
		}
		for i := 0; i < ns; i++ {
			st := &b.stash[i]
			st.f.err = PanicError{Value: r}
			st.f.span.MarkResponded()
			if st.f.word.CompareAndSwap(st.w, st.w|futError) {
				b.Failed.Add(1)
			}
			*st = walStash{}
		}
		// Claimed-but-unanswered slots (nil entries are ops a partially
		// answered run already published; their completion CAS makes the
		// overlap with the stash loop idempotent).
		for g := done; g < nc; g++ {
			s := b.bkSlot[g]
			if s == nil {
				continue
			}
			f := s.fut
			f.err = PanicError{Value: r}
			f.span.MarkResponded()
			if f.word.CompareAndSwap(b.bkW[g], b.bkW[g]|futError) {
				b.Failed.Add(1)
			}
			b.bkSlot[g] = nil
		}
		panic(r)
	}()
	if b.wal != nil {
		// First claimed task of the pass opens the log batch: Begin takes
		// the domain quiescence gate's read side for every execution in the
		// pass, logged or not, exactly like the serial WAL body.
		b.wal.Begin()
		logging = true
	}
	if anyMut {
		b.mutEnter.Add(1)
		mutating = true
	}
	for done < nc {
		s := b.bkSlot[done]
		if s.kern == nil {
			// Opaque closure task: serial execution in place, identical to
			// the serial bodies.
			f := s.fut
			w := b.bkW[done]
			task := s.task
			ro := s.ro
			enc := s.enc
			s.task = nil
			s.enc = nil
			sp := f.span
			sp.MarkSwept(b.worker)
			var tt int64
			if probe != nil {
				tt = probe.TaskBegin()
			}
			sp.MarkExecStart()
			res := runTask(task, hook, b.worker)
			sp.MarkExecEnd()
			if probe != nil {
				probe.TaskEnd(tt)
			}
			sp.MarkResponded()
			if pe, ok := res.(PanicError); ok {
				f.err = pe
				f.word.CompareAndSwap(w, w|futError)
				b.Failed.Add(1)
			} else if logging && enc != nil && !ro {
				b.wal.StageRecord(enc)
				b.stash[ns] = walStash{f: f, w: w, res: res}
				ns++
			} else {
				f.val = res
				f.word.CompareAndSwap(w, w|futValue)
			}
			b.bkSlot[done] = nil
			done++
			n++
			continue
		}
		// Typed run: extend over subsequent claimed ops on the same kernel,
		// up to the configured group width.
		kern := s.kern
		j := done + 1
		for j < nc && j-done < b.batchWidth && b.bkSlot[j].kern == kern {
			j++
		}
		for g := done; g < j; g++ {
			sg := b.bkSlot[g]
			b.bkKind[g] = sg.kind
			b.bkKey[g] = sg.key
			b.bkVal[g] = sg.val
			b.bkOutV[g] = 0
			b.bkOutOK[g] = false
			sp := sg.fut.span
			sp.MarkSwept(b.worker)
			sp.MarkExecStart()
		}
		var tt int64
		if probe != nil {
			// The run times as one probe task (its ops genuinely overlap);
			// the per-op count is BatchKernelOps.
			tt = probe.TaskBegin()
		}
		kerr := b.runKernel(kern, done, j, hook)
		if probe != nil {
			probe.TaskEnd(tt)
		}
		for g := done; g < j; g++ {
			sg := b.bkSlot[g]
			f := sg.fut
			w := b.bkW[g]
			sp := f.span
			sp.MarkExecEnd()
			sp.MarkResponded()
			switch {
			case kerr != nil:
				f.err = kerr
				f.word.CompareAndSwap(w, w|futError)
				b.Failed.Add(1)
			case logging && sg.enc != nil && !sg.ro:
				b.wal.StageRecord(sg.enc)
				b.stash[ns] = walStash{f: f, w: w, kv: true, kvVal: b.bkOutV[g], kvOK: b.bkOutOK[g]}
				ns++
			default:
				f.kvVal, f.kvOK = b.bkOutV[g], b.bkOutOK[g]
				f.word.CompareAndSwap(w, w|futValue)
			}
			b.bkSlot[g] = nil
			n++
		}
		kernOps += j - done
		done = j
	}
	if logging {
		err := b.wal.Commit(hook != nil)
		logging = false
		for i := 0; i < ns; i++ {
			st := &b.stash[i]
			if err != nil {
				st.f.err = PanicError{Value: err}
				if st.f.word.CompareAndSwap(st.w, st.w|futError) {
					b.Failed.Add(1)
				}
			} else {
				if st.kv {
					st.f.kvVal, st.f.kvOK = st.kvVal, st.kvOK
				} else {
					st.f.val = st.res
				}
				st.f.word.CompareAndSwap(st.w, st.w|futValue)
			}
			*st = walStash{}
		}
		ns = 0
	}
	if mutating {
		b.mutExit.Add(1) // close the mutating window: pair balanced again
	}
	if b.arena != nil {
		b.arena.Reset() // batch boundary, post-commit: nothing batch-lived survives
	}
	b.nSweeps++
	b.sinceFlush++
	b.nExec += uint64(n)
	if n > 1 {
		b.nBatch += uint64(n)
	}
	b.nBatchSweeps++
	b.nKernOps += uint64(kernOps)
	if b.sinceFlush >= statFlushEvery {
		b.SyncStats()
	}
	return n
}

// Seal marks the buffer closed and runs a final sweep that executes every
// task already posted, so no future delegated before shutdown dangles. Any
// task posted after the seal is completed with ErrWorkerStopped by its own
// client (see Slot.post). Seal is idempotent and safe to call from a
// supervisor goroutine after the worker has exited; it returns the number
// of tasks the final sweep executed.
func (b *Buffer) Seal() int {
	b.sealMu.Lock()
	defer b.sealMu.Unlock()
	// Poison the read-bypass publication pair before the final sweep runs a
	// single task or completes a single future: the unmatched enter leaves
	// the pair permanently unequal, so no bypass read that overlaps (or
	// follows) the shutdown window can ever validate. Idempotent calls just
	// deepen the imbalance.
	b.mutEnter.Add(1)
	b.sealed.Store(true)
	return b.sweepBody(nil, nil, false)
}

// FailPending completes every posted, unclaimed task with err without
// executing it, and claims the slots. The worker crash path uses it so the
// tasks that were in the buffer when the worker died are answered with a
// PanicError instead of waiting for a respawn that may never come. Returns
// the number of futures failed.
func (b *Buffer) FailPending(err error) int {
	b.sealMu.Lock()
	defer b.sealMu.Unlock()
	// Crash fail-over poisons the publication pair before any future is
	// failed, exactly like Seal: the worker may have died with structure
	// state only it could vouch for, so bypass on this buffer is disabled
	// for good — a respawned worker never re-arms it.
	b.mutEnter.Add(1)
	n := 0
	for i := range b.slots {
		s := &b.slots[i]
		v := s.state.Load()
		if v&1 == 0 {
			continue
		}
		f := s.fut
		w := f.word.Load()
		if w&futStateMask != futPending {
			continue
		}
		if !s.state.CompareAndSwap(v, v+1) {
			continue // a racing sweep owns it; that sweep answers the future
		}
		s.task = nil
		f.err = err
		f.span.MarkResponded()
		if f.word.CompareAndSwap(w, w|futError) {
			b.Failed.Add(1)
			n++
		}
	}
	return n
}

// rescue answers the calling client's own post into a sealed buffer. The
// seal lock orders it against the final sweep: if the sweep already claimed
// the task there is nothing to do, otherwise the task never ran and its
// future completes with ErrWorkerStopped.
func (b *Buffer) rescue(s *Slot) {
	b.sealMu.Lock()
	defer b.sealMu.Unlock()
	v := s.state.Load()
	if v&1 == 0 {
		return
	}
	f := s.fut
	w := f.word.Load()
	if w&futStateMask != futPending {
		return
	}
	if !s.state.CompareAndSwap(v, v+1) {
		return // a straggling unsealed sweep claimed it; it will answer
	}
	s.task = nil
	f.err = ErrWorkerStopped
	f.span.MarkResponded()
	if f.word.CompareAndSwap(w, w|futError) {
		b.Failed.Add(1)
		b.Rescued.Add(1)
	}
}

// Inbox composes the message buffers of a domain's workers and hands slot
// ownership to clients. Acquisition and release are off the critical path
// and guarded by a mutex; posting and polling are lock-free.
type Inbox struct {
	buffers []*Buffer

	mu        sync.Mutex
	nextOwner int32
	freeCount int
}

// ErrNoSlots is returned when the inbox cannot satisfy a slot acquisition:
// the configured workers bound the number of concurrently served clients.
var ErrNoSlots = errors.New("delegation: inbox has no free slots")

// NewInbox builds an inbox over the given worker buffers.
func NewInbox(buffers []*Buffer) (*Inbox, error) {
	if len(buffers) == 0 {
		return nil, fmt.Errorf("delegation: inbox needs at least one buffer")
	}
	in := &Inbox{buffers: buffers}
	for _, b := range buffers {
		in.freeCount += len(b.slots)
	}
	return in, nil
}

// Buffers returns the composed worker buffers.
func (in *Inbox) Buffers() []*Buffer { return in.buffers }

// FreeSlots returns the number of currently unowned slots.
func (in *Inbox) FreeSlots() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.freeCount
}

// AcquireSlots grants ownership of n slots to a new client. The optional
// rank function orders workers by preference (lower is better) — the runtime
// passes NUMA distance from the client's CPU to each worker's CPU, so slots
// come from the nearest worker's buffer first (Section 6's locality-aware
// slot assignment). Slots may span several buffers when the preferred one
// is exhausted.
func (in *Inbox) AcquireSlots(n int, rank func(worker int) int) ([]*Slot, error) {
	if n < 1 {
		return nil, fmt.Errorf("delegation: acquiring %d slots", n)
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.freeCount < n {
		return nil, ErrNoSlots
	}
	order := make([]int, len(in.buffers))
	for i := range order {
		order[i] = i
	}
	if rank != nil {
		sort.SliceStable(order, func(a, b int) bool {
			return rank(in.buffers[order[a]].worker) < rank(in.buffers[order[b]].worker)
		})
	}
	owner := in.nextOwner
	in.nextOwner++
	var out []*Slot
	for _, bi := range order {
		b := in.buffers[bi]
		for i := range b.slots {
			if len(out) == n {
				break
			}
			if b.slots[i].owner == -1 {
				b.slots[i].owner = owner
				out = append(out, &b.slots[i])
			}
		}
		if len(out) == n {
			break
		}
	}
	in.freeCount -= n
	return out, nil
}

// ReleaseSlots returns slot ownership to the inbox. All slots must be free
// (no posted task in flight).
func (in *Inbox) ReleaseSlots(slots []*Slot) error {
	in.mu.Lock()
	defer in.mu.Unlock()
	for _, s := range slots {
		if s.posted() {
			return fmt.Errorf("delegation: releasing slot with task in flight")
		}
		if s.owner == -1 {
			return fmt.Errorf("delegation: releasing unowned slot")
		}
		s.owner = -1
		in.freeCount++
	}
	return nil
}

// Client delegates tasks through slots it owns, keeping up to burst tasks
// outstanding (the paper's bursting delegation mode; Section 6). A Client is
// not safe for concurrent use — it models one application thread, as in FFWD.
//
// Bookkeeping is O(1) and allocation-free: free slots live on a fixed index
// stack, outstanding delegations in a fixed-capacity FIFO ring — there is no
// slot scan, no in-flight list walk, and no slice growth no matter how long
// the client lives.
type Client struct {
	slots []*Slot
	free  []int32     // LIFO stack of free slot indices
	ring  []pendingOp // FIFO ring of outstanding delegations
	head  int         // ring index of the oldest outstanding delegation
	n     int         // outstanding delegations
	probe *obs.ClientShard
}

type pendingOp struct {
	slot int32
	fut  *Future
}

// NewClient wraps owned slots into a delegating client. The burst size is
// len(slots): the paper's experiments use 14.
func NewClient(slots []*Slot) (*Client, error) {
	if len(slots) == 0 {
		return nil, fmt.Errorf("delegation: client needs at least one slot")
	}
	c := &Client{
		slots: slots,
		free:  make([]int32, len(slots)),
		ring:  make([]pendingOp, len(slots)),
	}
	for i := range slots {
		// Reverse order so slot 0 pops first, preserving the NUMA-ranked
		// acquisition order on the fast path.
		c.free[i] = int32(len(slots) - 1 - i)
	}
	return c, nil
}

// SetProbe installs the client's telemetry shard. The Client is single-
// threaded by contract, so the shard shares its owner's serial execution.
func (c *Client) SetProbe(p *obs.ClientShard) { c.probe = p }

// Burst returns the client's maximum number of outstanding tasks.
func (c *Client) Burst() int { return len(c.slots) }

// Outstanding returns the number of tasks currently in flight.
func (c *Client) Outstanding() int { return c.n }

// harvestOldest retires the oldest outstanding delegation: waits for its
// future and returns its slot to the free stack. The completer has already
// advanced the slot's version to free before publishing the result, so
// observing the future settles slot ownership too.
func (c *Client) harvestOldest() *Future {
	op := &c.ring[c.head]
	f := op.fut
	f.block()
	c.free = append(c.free, op.slot)
	op.fut = nil
	c.head++
	if c.head == len(c.ring) {
		c.head = 0
	}
	c.n--
	return f
}

// takeSlot pops a free slot index, first retiring the oldest outstanding
// task when the burst window is full — the throughput-maximising delegation
// mode of Section 6. When every non-free slot is held by a reserved handle
// (Reserve) rather than a ring-tracked delegation there is nothing this
// client can harvest; the caller must Await its handles first.
func (c *Client) takeSlot() int32 {
	for len(c.free) == 0 {
		if c.n == 0 {
			panic("delegation: no free slots and none outstanding; await reserved handles first")
		}
		if c.probe != nil {
			c.probe.BurstWait()
		}
		f := c.harvestOldest()
		f.observeResolved()
	}
	i := c.free[len(c.free)-1]
	c.free = c.free[:len(c.free)-1]
	return i
}

// InvokeHandle identifies one in-flight reserved-slot invocation: the slot
// whose embedded future carries the result and the generation token to await.
// It is a value, not a pointer — pipelined callers keep handles in their own
// storage, so the burst path stays allocation-free.
type InvokeHandle struct {
	slot int32
	tok  uint64
}

// Reserve pops a free slot for a pipelined zero-allocation invocation
// (PostReserved/Await). When no slot is free it retires the oldest
// ring-tracked delegation like takeSlot; when every slot is held by an
// un-awaited handle it reports false — the caller owns those handles and
// must Await one to free a slot.
func (c *Client) Reserve() (int32, bool) {
	for len(c.free) == 0 {
		if c.n == 0 {
			return 0, false
		}
		if c.probe != nil {
			c.probe.BurstWait()
		}
		f := c.harvestOldest()
		f.observeResolved()
	}
	i := c.free[len(c.free)-1]
	c.free = c.free[:len(c.free)-1]
	return i, true
}

// PostReserved posts a task into a slot obtained from Reserve without
// waiting, returning the handle to Await later. Like InvokeErr it runs on
// the zero-allocation path — the slot's embedded future is recycled for this
// generation and never escapes — but the round trip is split so a client can
// keep several statements in flight and synchronise once per dependency
// barrier instead of once per statement.
func (c *Client) PostReserved(i int32, task Task) InvokeHandle {
	return c.postReserved(i, task, nil)
}

// PostReservedLogged is PostReserved for a mutating task with a logical WAL
// record encoder: the worker stages enc's output into its log and completes
// the handle's future only after the sweep batch group-commits. On a
// runtime without a WAL sink the encoder is ignored and the task behaves
// exactly like PostReserved.
func (c *Client) PostReservedLogged(i int32, task Task, enc func(dst []byte) []byte) InvokeHandle {
	return c.postReserved(i, task, enc)
}

func (c *Client) postReserved(i int32, task Task, enc func(dst []byte) []byte) InvokeHandle {
	s := c.slots[i]
	f := &s.fut0
	tok := f.begin()
	if c.probe != nil {
		f.span = c.probe.PostRecycled()
	}
	s.post(task, f, false, enc)
	return InvokeHandle{slot: i, tok: tok}
}

// Await blocks until the handle's invocation completes, frees its slot, and
// returns the result. Each handle must be awaited exactly once; handles may
// be awaited in any order (each lives in its own slot's embedded future).
func (c *Client) Await(h InvokeHandle) (any, error) {
	v, err := c.slots[h.slot].fut0.awaitToken(h.tok)
	c.free = append(c.free, h.slot)
	return v, err
}

// PostReservedKV posts a typed key/value op into a slot obtained from
// Reserve without waiting, returning the handle to AwaitKV later. The op
// carries no closure: the worker's interleaved sweep body groups adjacent
// typed ops on the same kernel into one ExecBatch call, overlapping their
// traversal cache misses. On a worker without batching armed the op runs
// through the same kernel one at a time — semantics are identical either
// way, only the execution schedule changes.
func (c *Client) PostReservedKV(i int32, kern BatchKernel, kind uint8, key, val uint64) InvokeHandle {
	return c.postReservedKV(i, kern, kind, key, val, nil)
}

// PostReservedKVLogged is PostReservedKV for a logged mutation: kvenc
// encodes the op's logical WAL record on the worker and the handle's future
// completes only after the sweep batch group-commits.
func (c *Client) PostReservedKVLogged(i int32, kern BatchKernel, kind uint8, key, val uint64, kvenc KVEncoder) InvokeHandle {
	return c.postReservedKV(i, kern, kind, key, val, kvenc)
}

func (c *Client) postReservedKV(i int32, kern BatchKernel, kind uint8, key, val uint64, kvenc KVEncoder) InvokeHandle {
	s := c.slots[i]
	f := &s.fut0
	tok := f.begin()
	if c.probe != nil {
		f.span = c.probe.PostRecycled()
	}
	s.postKV(kern, kind, key, val, f, kvenc)
	return InvokeHandle{slot: i, tok: tok}
}

// AwaitKV blocks until a typed handle's op completes, frees its slot, and
// returns the kernel's value/found pair. Each handle must be awaited
// exactly once, with the await flavour matching the post flavour.
func (c *Client) AwaitKV(h InvokeHandle) (uint64, bool, error) {
	v, ok, err := c.slots[h.slot].fut0.awaitTokenKV(h.tok)
	c.free = append(c.free, h.slot)
	return v, ok, err
}

// HandleDone reports, without blocking or freeing the slot, whether the
// handle's invocation has completed. Valid only between PostReserved and
// Await — the embedded future's word equals the handle's token exactly while
// that generation is pending.
func (c *Client) HandleDone(h InvokeHandle) bool {
	return c.slots[h.slot].fut0.word.Load() != h.tok
}

// FreeSlots returns how many of the client's slots are currently free
// (neither ring-tracked outstanding nor held by a reserved handle).
func (c *Client) FreeSlots() int { return len(c.free) }

// Delegate posts task into a free owned slot and returns its future. When
// the burst is completely filled it first waits for the oldest outstanding
// task. The returned future is detached (heap-allocated, generation 0): the
// caller may hold it for as long as it likes, independent of slot reuse.
func (c *Client) Delegate(task Task) *Future {
	i := c.takeSlot()
	f := &Future{}
	if c.probe != nil {
		// Post counts the delegation and, on sampled posts, mints the
		// lifecycle span; the slot's release store publishes it (via the
		// future) to the worker alongside the task.
		f.span = c.probe.Post()
	}
	c.slots[i].post(task, f, false, nil)
	tail := c.head + c.n
	if tail >= len(c.ring) {
		tail -= len(c.ring)
	}
	c.ring[tail] = pendingOp{slot: i, fut: f}
	c.n++
	return f
}

// DelegateLogged is Delegate for a logged mutation: enc encodes the task's
// WAL record on the worker after the task runs, and the future completes
// only after the record's group commit — success implies durable.
func (c *Client) DelegateLogged(task Task, enc func(dst []byte) []byte) *Future {
	i := c.takeSlot()
	f := &Future{}
	if c.probe != nil {
		f.span = c.probe.Post()
	}
	c.slots[i].post(task, f, false, enc)
	tail := c.head + c.n
	if tail >= len(c.ring) {
		tail -= len(c.ring)
	}
	c.ring[tail] = pendingOp{slot: i, fut: f}
	c.n++
	return f
}

// Invoke delegates a task and synchronously waits for its result — the
// simple delegation mode (burst size 1 semantics regardless of owned slots).
// An error completion comes back as the value; InvokeErr separates it.
//
// Invoke runs on the zero-allocation path: it recycles the slot's embedded
// future instead of allocating one.
func (c *Client) Invoke(task Task) any {
	v, err := c.InvokeErr(task)
	if err != nil {
		return err
	}
	return v
}

// InvokeErr delegates a task, waits, and returns the value and the typed
// error separately: PanicError when the task panicked, ErrWorkerStopped
// when the buffer was sealed before the task ran.
//
// This is the steady-state zero-allocation round trip: the task is posted
// through the slot's embedded future, whose generation word is bumped for
// this invocation and CAS-completed by exactly one of worker sweep, seal
// rescue, or crash fail-over. The future never escapes, so the slot can be
// recycled the moment the result is observed.
func (c *Client) InvokeErr(task Task) (any, error) { return c.invokeErr(task, false, nil) }

// InvokeLoggedErr is InvokeErr for a mutating task with a logical WAL
// record encoder: the worker stages enc's output into its log during the
// sweep and completes the future only after the batch group-commits, so a
// successful return implies the record is durable. On a runtime without a
// WAL sink the encoder is ignored and the call behaves exactly like
// InvokeErr. The encoder runs on the worker goroutine, serialised with the
// task itself — it may read the structure state the task just wrote.
func (c *Client) InvokeLoggedErr(task Task, enc func(dst []byte) []byte) (any, error) {
	return c.invokeErr(task, false, enc)
}

// InvokeReadErr is InvokeErr for a task the caller guarantees is read-only:
// the slot is posted with the read flag, so the worker's sweep does not open
// a mutating-batch window for it. The read-bypass fallback path uses it — a
// delegated read serializes with mutations exactly like any other task, it
// just must not spuriously invalidate concurrent bypass readers.
func (c *Client) InvokeReadErr(task Task) (any, error) { return c.invokeErr(task, true, nil) }

// InvokeKVErr delegates a typed key/value op synchronously: the op's kind,
// key and value travel in the slot itself (no closure, no boxing) and the
// worker executes it through kern — batched with neighbouring typed ops
// when interleaved execution is armed, one at a time otherwise. Returns the
// kernel's value/found pair. Zero-allocation like InvokeErr.
func (c *Client) InvokeKVErr(kern BatchKernel, kind uint8, key, val uint64) (uint64, bool, error) {
	return c.invokeKVErr(kern, kind, key, val, nil)
}

// InvokeKVLoggedErr is InvokeKVErr for a logged mutation: kvenc encodes the
// op's logical WAL record on the worker (from the same kind/key/val the
// kernel executed) and the call returns only after the record's batch
// group-commits, so success implies durable.
func (c *Client) InvokeKVLoggedErr(kern BatchKernel, kind uint8, key, val uint64, kvenc KVEncoder) (uint64, bool, error) {
	return c.invokeKVErr(kern, kind, key, val, kvenc)
}

func (c *Client) invokeKVErr(kern BatchKernel, kind uint8, key, val uint64, kvenc KVEncoder) (uint64, bool, error) {
	i := c.takeSlot()
	s := c.slots[i]
	f := &s.fut0
	tok := f.begin()
	if c.probe != nil {
		if kind == KVGet {
			c.probe.CountRead()
		}
		f.span = c.probe.PostRecycled()
	}
	s.postKV(kern, kind, key, val, f, kvenc)
	v, ok, err := f.awaitTokenKV(tok)
	c.free = append(c.free, i)
	return v, ok, err
}

func (c *Client) invokeErr(task Task, ro bool, enc func(dst []byte) []byte) (any, error) {
	i := c.takeSlot()
	s := c.slots[i]
	f := &s.fut0
	tok := f.begin()
	if c.probe != nil {
		// PostRecycled, not Post: the embedded future resolves its span
		// exactly once per generation, so the shard can hand back a recycled
		// span instead of allocating one (the stray 1 B/op on the observed
		// path). Detached Delegate futures keep the allocating Post — their
		// holders may Wait (and Resolve) long after the span would recycle.
		if ro {
			// The read/write split is known right here and nowhere cheaper:
			// counting read-flagged invokes at this branch gives the signal
			// sampler its write fraction without adding any bookkeeping to
			// the (hotter) write path.
			c.probe.CountRead()
		}
		f.span = c.probe.PostRecycled()
	}
	s.post(task, f, ro, enc)
	v, err := f.awaitToken(tok)
	c.free = append(c.free, i)
	return v, err
}

// DelegateErr posts like Delegate and additionally surfaces an immediately
// known failure: a post into a sealed buffer is completed with
// ErrWorkerStopped before DelegateErr returns, so the caller can stop
// submitting instead of discovering the error future by future.
func (c *Client) DelegateErr(task Task) (*Future, error) {
	f := c.Delegate(task)
	return f, f.Err()
}

// DelegateBulk posts tasks as one bulk burst under a single synchronisation
// phase (the bulk-bursting mode): all tasks are delegated, then all futures
// awaited, and the results returned in order.
func (c *Client) DelegateBulk(tasks []Task) []any {
	futs := make([]*Future, len(tasks))
	for i, t := range tasks {
		futs[i] = c.Delegate(t)
	}
	out := make([]any, len(tasks))
	for i, f := range futs {
		out[i] = f.Wait()
	}
	return out
}

// DelegateBulkErr is DelegateBulk with an error channel: results hold each
// task's value (nil where a task failed) and the returned error is the
// first typed error among them.
func (c *Client) DelegateBulkErr(tasks []Task) ([]any, error) {
	futs := make([]*Future, len(tasks))
	for i, t := range tasks {
		futs[i] = c.Delegate(t)
	}
	out := make([]any, len(tasks))
	var firstErr error
	for i, f := range futs {
		v, err := f.Result()
		out[i] = v
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return out, firstErr
}

// Drain waits for every outstanding task to finish and frees the pending
// window. Call before releasing slots.
func (c *Client) Drain() {
	for c.n > 0 {
		f := c.harvestOldest()
		f.observeResolved()
	}
	if c.probe != nil {
		c.probe.Flush()
	}
}

// DrainErr drains like Drain and returns the first typed error among the
// outstanding tasks, so a caller shutting down can tell "all work done"
// from "work abandoned by a stopped or crashed worker".
func (c *Client) DrainErr() error {
	var firstErr error
	for c.n > 0 {
		f := c.harvestOldest()
		if _, err := f.Result(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if c.probe != nil {
		c.probe.Flush()
	}
	return firstErr
}

// Slots exposes the owned slots (for release back to the inbox).
func (c *Client) Slots() []*Slot { return c.slots }

// Worker runs the poll loop over one buffer until stop is closed.
// A worker is bound to exactly one buffer, mirroring FFWD's design.
type Worker struct {
	buf *Buffer
}

// NewWorker wraps a buffer into a pollable worker.
func NewWorker(buf *Buffer) *Worker { return &Worker{buf: buf} }

// Adaptive idle policy: after idleSpinSweeps consecutive empty sweeps the
// worker stops yield-spinning and parks in short sleeps with exponential
// backoff, capped at idleSleepMax — so an idle domain costs sleeps instead
// of a burning core. The first non-empty sweep resets the policy, which
// bounds the requickening latency of a post into an idle buffer by one
// sleep period (≤ idleSleepMax).
const (
	idleSpinSweeps = 128
	idleSleepMin   = time.Microsecond
	idleSleepMax   = 100 * time.Microsecond
)

// Run polls the buffer until stop is closed or the worker crashes. Empty
// sweeps first yield to the scheduler (so co-scheduled goroutines make
// progress on small machines) and then back off to parked sleeps under the
// adaptive idle policy, publishing stats before the first park.
//
// On a clean stop Run seals the buffer — the seal's final sweep answers
// every task posted before the seal, and a task racing past it is rescued
// with ErrWorkerStopped by its own client — then returns nil.
//
// A panic escaping the sweep (a fault-injected worker kill, or a bug in
// the protocol itself; task panics never escape, runTask converts them) is
// recovered here: every task posted in the buffer at crash time completes
// with a PanicError, and the crash is returned so a supervisor can respawn
// the worker. The buffer is NOT sealed on a crash — it keeps accepting
// posts for the respawned worker.
func (w *Worker) Run(stop <-chan struct{}) (crash error) {
	defer func() {
		// Publish the stat mirrors and the telemetry shard's local mirror:
		// this deferred func runs on the worker goroutine on both the clean
		// and crash exits.
		w.buf.SyncStats()
		if p := w.buf.probe; p != nil {
			p.Flush()
		}
		if r := recover(); r != nil {
			err := PanicError{Value: r}
			w.buf.FailPending(err)
			crash = err
		}
	}()
	idle := 0
	sleep := idleSleepMin
	for {
		if n := w.buf.Sweep(); n > 0 {
			idle, sleep = 0, idleSleepMin
			continue
		}
		select {
		case <-stop:
			w.buf.Seal()
			return nil
		default:
		}
		idle++
		switch {
		case idle < idleSpinSweeps:
			runtime.Gosched()
		case idle == idleSpinSweeps:
			w.buf.SyncStats() // publish before parking; flushes stall while asleep
			time.Sleep(sleep)
		default:
			time.Sleep(sleep)
			if sleep < idleSleepMax {
				sleep *= 2
			}
		}
	}
}
