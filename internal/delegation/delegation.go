// Package delegation implements the paper's in-memory message-passing layer,
// modelled on fast fly-weight delegation (FFWD, Roghanchi et al. SOSP'17)
// and extended as Section 6 describes: every worker owns a contiguous
// message buffer of fixed slots; a virtual domain's inbox is composed of the
// buffers of its configured workers; clients obtain *ownership* of slots
// from the inbox (rather than being hard-wired to one worker) and delegate
// asynchronous tasks through them, receiving results via futures.
//
// The FFWD properties carried over:
//
//   - each slot is padded to 128 bytes so two slots never share (adjacent)
//     cache lines and clients never contend with each other;
//   - a slot has a single state word toggled between "free" and "posted",
//     written by exactly one client and one worker, so the steady-state
//     protocol needs no read-modify-write atomics on the critical path
//     (plain release stores and acquire loads);
//   - a worker buffer holds up to 15 slots, the batch FFWD answers with a
//     single response-line write; the worker drains all posted slots of a
//     buffer in one sweep (response batching).
//
// NUMA-aware slot assignment — giving a client slots in the buffer of the
// worker nearest to it — is the caller's policy: AcquireSlots accepts a
// preference ranking over workers.
package delegation

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
)

// SlotsPerBuffer is the FFWD response-batching width: one worker answers up
// to 15 clients per response line.
const SlotsPerBuffer = 15

// Task is the unit of delegated work. The worker goroutine executes it and
// places the returned value into the task's future.
type Task func() any

// Future is the invocation handle a client holds on a delegated task.
type Future struct {
	state atomic.Uint32 // 0 pending, 1 done
	val   any
}

// complete publishes the result; called by the worker exactly once.
func (f *Future) complete(v any) {
	f.val = v
	f.state.Store(1)
}

// Done reports whether the result is available without blocking.
func (f *Future) Done() bool { return f.state.Load() == 1 }

// Wait spins (yielding to the scheduler) until the result is available.
func (f *Future) Wait() any {
	for f.state.Load() == 0 {
		runtime.Gosched()
	}
	return f.val
}

// TryGet returns the result if available.
func (f *Future) TryGet() (any, bool) {
	if f.state.Load() == 1 {
		return f.val, true
	}
	return nil, false
}

// slot states.
const (
	slotFree   uint32 = 0 // owned by client side, ready for a request
	slotPosted uint32 = 1 // request posted, owned by worker side
)

// Slot is one message cell in a worker's buffer. Exactly one client owns it
// at a time (enforced by the inbox) and exactly one worker polls it.
type Slot struct {
	_     [128]byte // padding: no false sharing with the previous slot
	state atomic.Uint32
	task  Task
	fut   *Future
	owner int32 // client id for diagnostics; -1 = unowned
	buf   *Buffer
}

// post publishes a task into the slot. The client must own the slot and the
// slot must be free.
func (s *Slot) post(t Task, f *Future) {
	s.task = t
	s.fut = f
	s.state.Store(slotPosted) // release: publishes task+fut to the worker
}

// Buffer is the contiguous message buffer of one worker.
type Buffer struct {
	worker int // worker id within the domain (index into the inbox)
	slots  []Slot

	// Stats, updated by the owning worker only.
	Executed   atomic.Uint64 // tasks executed
	Sweeps     atomic.Uint64 // buffer sweeps (poll rounds)
	EmptySweep atomic.Uint64 // sweeps that found no posted slot
	Batched    atomic.Uint64 // tasks answered in multi-task sweeps (batching)
}

// NewBuffer allocates a worker buffer with n slots (n ≤ SlotsPerBuffer).
func NewBuffer(worker, n int) (*Buffer, error) {
	if n < 1 || n > SlotsPerBuffer {
		return nil, fmt.Errorf("delegation: %d slots per buffer out of range [1,%d]", n, SlotsPerBuffer)
	}
	b := &Buffer{worker: worker, slots: make([]Slot, n)}
	for i := range b.slots {
		b.slots[i].owner = -1
		b.slots[i].buf = b
	}
	return b, nil
}

// Worker returns the worker id this buffer belongs to.
func (b *Buffer) Worker() int { return b.worker }

// Pending counts the currently posted, unswept slots (advisory snapshot;
// the runtime's migration quiesce polls it).
func (b *Buffer) Pending() int {
	n := 0
	for i := range b.slots {
		if b.slots[i].state.Load() == slotPosted {
			n++
		}
	}
	return n
}

// PanicError is delivered through a future when the delegated task
// panicked. The worker survives: one client's faulty task must not take
// down a virtual domain that other clients depend on.
type PanicError struct {
	Value any // the recovered panic value
}

// Error implements error.
func (p PanicError) Error() string {
	return fmt.Sprintf("delegation: task panicked: %v", p.Value)
}

// runTask executes a task, converting a panic into a PanicError result.
func runTask(task Task) (res any) {
	defer func() {
		if r := recover(); r != nil {
			res = PanicError{Value: r}
		}
	}()
	return task()
}

// Sweep executes all currently posted tasks in the buffer, in slot order,
// and reports how many it ran. This is the worker's poll body: one pass over
// the buffer detects posted toggles and answers them as a batch. A panicking
// task yields a PanicError result instead of killing the worker.
func (b *Buffer) Sweep() int {
	n := 0
	for i := range b.slots {
		s := &b.slots[i]
		if s.state.Load() != slotPosted { // acquire: sees task+fut when posted
			continue
		}
		task, fut := s.task, s.fut
		s.task, s.fut = nil, nil
		fut.complete(runTask(task))
		s.state.Store(slotFree) // release the slot back to its client
		n++
	}
	b.Sweeps.Add(1)
	if n == 0 {
		b.EmptySweep.Add(1)
	} else {
		b.Executed.Add(uint64(n))
		if n > 1 {
			b.Batched.Add(uint64(n))
		}
	}
	return n
}

// Inbox composes the message buffers of a domain's workers and hands slot
// ownership to clients. Acquisition and release are off the critical path
// and guarded by a mutex; posting and polling are lock-free.
type Inbox struct {
	buffers []*Buffer

	mu        sync.Mutex
	nextOwner int32
	freeCount int
}

// ErrNoSlots is returned when the inbox cannot satisfy a slot acquisition:
// the configured workers bound the number of concurrently served clients.
var ErrNoSlots = errors.New("delegation: inbox has no free slots")

// NewInbox builds an inbox over the given worker buffers.
func NewInbox(buffers []*Buffer) (*Inbox, error) {
	if len(buffers) == 0 {
		return nil, fmt.Errorf("delegation: inbox needs at least one buffer")
	}
	in := &Inbox{buffers: buffers}
	for _, b := range buffers {
		in.freeCount += len(b.slots)
	}
	return in, nil
}

// Buffers returns the composed worker buffers.
func (in *Inbox) Buffers() []*Buffer { return in.buffers }

// FreeSlots returns the number of currently unowned slots.
func (in *Inbox) FreeSlots() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.freeCount
}

// AcquireSlots grants ownership of n slots to a new client. The optional
// rank function orders workers by preference (lower is better) — the runtime
// passes NUMA distance from the client's CPU to each worker's CPU, so slots
// come from the nearest worker's buffer first (Section 6's locality-aware
// slot assignment). Slots may span several buffers when the preferred one
// is exhausted.
func (in *Inbox) AcquireSlots(n int, rank func(worker int) int) ([]*Slot, error) {
	if n < 1 {
		return nil, fmt.Errorf("delegation: acquiring %d slots", n)
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.freeCount < n {
		return nil, ErrNoSlots
	}
	order := make([]int, len(in.buffers))
	for i := range order {
		order[i] = i
	}
	if rank != nil {
		sort.SliceStable(order, func(a, b int) bool {
			return rank(in.buffers[order[a]].worker) < rank(in.buffers[order[b]].worker)
		})
	}
	owner := in.nextOwner
	in.nextOwner++
	var out []*Slot
	for _, bi := range order {
		b := in.buffers[bi]
		for i := range b.slots {
			if len(out) == n {
				break
			}
			if b.slots[i].owner == -1 {
				b.slots[i].owner = owner
				out = append(out, &b.slots[i])
			}
		}
		if len(out) == n {
			break
		}
	}
	in.freeCount -= n
	return out, nil
}

// ReleaseSlots returns slot ownership to the inbox. All slots must be free
// (no posted task in flight).
func (in *Inbox) ReleaseSlots(slots []*Slot) error {
	in.mu.Lock()
	defer in.mu.Unlock()
	for _, s := range slots {
		if s.state.Load() == slotPosted {
			return fmt.Errorf("delegation: releasing slot with task in flight")
		}
		if s.owner == -1 {
			return fmt.Errorf("delegation: releasing unowned slot")
		}
		s.owner = -1
		in.freeCount++
	}
	return nil
}

// Client delegates tasks through slots it owns, keeping up to burst tasks
// outstanding (the paper's bursting delegation mode; Section 6). A Client is
// not safe for concurrent use — it models one application thread, as in FFWD.
type Client struct {
	slots   []*Slot
	pending []pendingTask // FIFO of outstanding delegations
}

type pendingTask struct {
	slot *Slot
	fut  *Future
}

// NewClient wraps owned slots into a delegating client. The burst size is
// len(slots): the paper's experiments use 14.
func NewClient(slots []*Slot) (*Client, error) {
	if len(slots) == 0 {
		return nil, fmt.Errorf("delegation: client needs at least one slot")
	}
	return &Client{slots: slots, pending: make([]pendingTask, 0, len(slots))}, nil
}

// Burst returns the client's maximum number of outstanding tasks.
func (c *Client) Burst() int { return len(c.slots) }

// Outstanding returns the number of tasks currently in flight.
func (c *Client) Outstanding() int { return len(c.pending) }

// Delegate posts task into a free owned slot and returns its future. When
// the burst is completely filled it first waits for the oldest outstanding
// task — the throughput-maximising delegation mode of Section 6.
func (c *Client) Delegate(task Task) *Future {
	var slot *Slot
	if len(c.pending) == len(c.slots) {
		oldest := c.pending[0]
		oldest.fut.Wait()
		c.pending = c.pending[1:]
		slot = oldest.slot
	} else {
		for _, s := range c.slots {
			if s.state.Load() == slotFree && !c.inFlight(s) {
				slot = s
				break
			}
		}
		if slot == nil {
			// All free slots are bookkept as pending but not yet swept;
			// wait for the oldest.
			oldest := c.pending[0]
			oldest.fut.Wait()
			c.pending = c.pending[1:]
			slot = oldest.slot
		}
	}
	f := &Future{}
	slot.post(task, f)
	c.pending = append(c.pending, pendingTask{slot: slot, fut: f})
	return f
}

func (c *Client) inFlight(s *Slot) bool {
	for _, p := range c.pending {
		if p.slot == s {
			return true
		}
	}
	return false
}

// Invoke delegates a task and synchronously waits for its result — the
// simple delegation mode (burst size 1 semantics regardless of owned slots).
func (c *Client) Invoke(task Task) any {
	return c.Delegate(task).Wait()
}

// DelegateBulk posts tasks as one bulk burst under a single synchronisation
// phase (the bulk-bursting mode): all tasks are delegated, then all futures
// awaited, and the results returned in order.
func (c *Client) DelegateBulk(tasks []Task) []any {
	futs := make([]*Future, len(tasks))
	for i, t := range tasks {
		futs[i] = c.Delegate(t)
	}
	out := make([]any, len(tasks))
	for i, f := range futs {
		out[i] = f.Wait()
	}
	return out
}

// Drain waits for every outstanding task to finish and frees the pending
// list. Call before releasing slots.
func (c *Client) Drain() {
	for _, p := range c.pending {
		p.fut.Wait()
	}
	c.pending = c.pending[:0]
}

// Slots exposes the owned slots (for release back to the inbox).
func (c *Client) Slots() []*Slot { return c.slots }

// Worker runs the poll loop over one buffer until stop is closed.
// A worker is bound to exactly one buffer, mirroring FFWD's design.
type Worker struct {
	buf *Buffer
}

// NewWorker wraps a buffer into a pollable worker.
func NewWorker(buf *Buffer) *Worker { return &Worker{buf: buf} }

// Run polls the buffer until stop is closed. It yields to the scheduler on
// empty sweeps so co-scheduled goroutines make progress on small machines.
func (w *Worker) Run(stop <-chan struct{}) {
	for {
		n := w.buf.Sweep()
		if n == 0 {
			select {
			case <-stop:
				// Final sweep so a task posted just before stop is answered.
				w.buf.Sweep()
				return
			default:
				runtime.Gosched()
			}
		}
	}
}
