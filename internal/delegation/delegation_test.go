package delegation

import (
	"errors"
	"sync"
	"testing"
)

// startWorkers spins up one worker goroutine per buffer and returns a stop
// function that shuts them all down.
func startWorkers(bufs []*Buffer) (stop func()) {
	stopCh := make(chan struct{})
	var wg sync.WaitGroup
	for _, b := range bufs {
		wg.Add(1)
		go func(b *Buffer) {
			defer wg.Done()
			NewWorker(b).Run(stopCh)
		}(b)
	}
	return func() {
		close(stopCh)
		wg.Wait()
	}
}

func newInboxT(t *testing.T, workers, slotsPer int) *Inbox {
	t.Helper()
	var bufs []*Buffer
	for w := 0; w < workers; w++ {
		b, err := NewBuffer(w, slotsPer)
		if err != nil {
			t.Fatal(err)
		}
		bufs = append(bufs, b)
	}
	in, err := NewInbox(bufs)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestBufferValidation(t *testing.T) {
	if _, err := NewBuffer(0, 0); err == nil {
		t.Error("0 slots accepted")
	}
	if _, err := NewBuffer(0, SlotsPerBuffer+1); err == nil {
		t.Error("oversized buffer accepted")
	}
	if _, err := NewInbox(nil); err == nil {
		t.Error("empty inbox accepted")
	}
}

func TestSynchronousInvoke(t *testing.T) {
	in := newInboxT(t, 1, 4)
	stop := startWorkers(in.Buffers())
	defer stop()

	slots, err := in.AcquireSlots(1, nil)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewClient(slots)
	if err != nil {
		t.Fatal(err)
	}
	got := c.Invoke(func() any { return 41 + 1 })
	if got != 42 {
		t.Errorf("Invoke = %v, want 42", got)
	}
	c.Drain()
	if err := in.ReleaseSlots(c.Slots()); err != nil {
		t.Fatal(err)
	}
}

func TestFutureStates(t *testing.T) {
	var f Future
	if f.Done() {
		t.Error("fresh future done")
	}
	if _, ok := f.TryGet(); ok {
		t.Error("fresh future has value")
	}
	f.complete("x")
	if !f.Done() {
		t.Error("completed future not done")
	}
	if v, ok := f.TryGet(); !ok || v != "x" {
		t.Errorf("TryGet = %v,%v", v, ok)
	}
	if v := f.Wait(); v != "x" {
		t.Errorf("Wait = %v", v)
	}
}

func TestBurstDelegation(t *testing.T) {
	in := newInboxT(t, 1, 14) // the paper's burst size
	stop := startWorkers(in.Buffers())
	defer stop()

	slots, err := in.AcquireSlots(14, nil)
	if err != nil {
		t.Fatal(err)
	}
	c, _ := NewClient(slots)
	if c.Burst() != 14 {
		t.Fatalf("Burst = %d", c.Burst())
	}
	var futs []*Future
	for i := 0; i < 1000; i++ {
		i := i
		futs = append(futs, c.Delegate(func() any { return i * 2 }))
		if c.Outstanding() > 14 {
			t.Fatalf("outstanding %d exceeds burst", c.Outstanding())
		}
	}
	for i, f := range futs {
		if got := f.Wait(); got != i*2 {
			t.Fatalf("task %d = %v", i, got)
		}
	}
	c.Drain()
	if c.Outstanding() != 0 {
		t.Errorf("Outstanding = %d after drain", c.Outstanding())
	}
}

func TestDelegateBulk(t *testing.T) {
	in := newInboxT(t, 2, 8)
	stop := startWorkers(in.Buffers())
	defer stop()

	slots, err := in.AcquireSlots(10, nil)
	if err != nil {
		t.Fatal(err)
	}
	c, _ := NewClient(slots)
	var tasks []Task
	for i := 0; i < 50; i++ {
		i := i
		tasks = append(tasks, func() any { return i })
	}
	out := c.DelegateBulk(tasks)
	if len(out) != 50 {
		t.Fatalf("bulk returned %d results", len(out))
	}
	for i, v := range out {
		if v != i {
			t.Fatalf("bulk[%d] = %v", i, v)
		}
	}
}

func TestManyClientsOneWorker(t *testing.T) {
	in := newInboxT(t, 1, 15)
	stop := startWorkers(in.Buffers())

	var wg sync.WaitGroup
	total := int64(0)
	var mu sync.Mutex
	for g := 0; g < 15; g++ {
		slots, err := in.AcquireSlots(1, nil)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, _ := NewClient(slots)
			sum := 0
			for i := 0; i < 500; i++ {
				v := c.Invoke(func() any { return 1 }).(int)
				sum += v
			}
			mu.Lock()
			total += int64(sum)
			mu.Unlock()
		}()
	}
	wg.Wait()
	stop() // worker exit publishes the final stat flush
	if total != 15*500 {
		t.Errorf("total = %d, want %d", total, 15*500)
	}
	if in.Buffers()[0].Executed.Load() != 15*500 {
		t.Errorf("executed = %d", in.Buffers()[0].Executed.Load())
	}
}

func TestResponseBatchingObserved(t *testing.T) {
	// Post several tasks into one buffer before any sweep: a single sweep
	// must answer them all (FFWD's batched responses).
	b, _ := NewBuffer(0, 8)
	in, _ := NewInbox([]*Buffer{b})
	slots, _ := in.AcquireSlots(8, nil)
	c, _ := NewClient(slots)
	for i := 0; i < 8; i++ {
		c.Delegate(func() any { return nil })
	}
	if n := b.Sweep(); n != 8 {
		t.Errorf("sweep answered %d, want 8", n)
	}
	b.SyncStats() // no worker: publish the manual sweep's counts
	if b.Batched.Load() != 8 {
		t.Errorf("Batched = %d, want 8", b.Batched.Load())
	}
	c.Drain()
}

func TestSlotExhaustion(t *testing.T) {
	in := newInboxT(t, 1, 4)
	a, err := in.AcquireSlots(3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := in.AcquireSlots(2, nil); !errors.Is(err, ErrNoSlots) {
		t.Errorf("over-acquisition error = %v, want ErrNoSlots", err)
	}
	if in.FreeSlots() != 1 {
		t.Errorf("FreeSlots = %d, want 1", in.FreeSlots())
	}
	if err := in.ReleaseSlots(a); err != nil {
		t.Fatal(err)
	}
	if in.FreeSlots() != 4 {
		t.Errorf("FreeSlots = %d after release", in.FreeSlots())
	}
	// Double release must fail.
	if err := in.ReleaseSlots(a); err == nil {
		t.Error("double release accepted")
	}
}

func TestAcquireSlotsValidation(t *testing.T) {
	in := newInboxT(t, 1, 4)
	if _, err := in.AcquireSlots(0, nil); err == nil {
		t.Error("acquiring 0 slots accepted")
	}
	if _, err := NewClient(nil); err == nil {
		t.Error("client with no slots accepted")
	}
}

func TestNUMAAwareSlotPreference(t *testing.T) {
	// Workers 0,1,2; the rank function says worker 2 is nearest.
	in := newInboxT(t, 3, 4)
	slots, err := in.AcquireSlots(4, func(worker int) int {
		return (worker + 1) % 3 // worker 2 ranks 0 (best)
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range slots {
		if s.buf.Worker() != 2 {
			t.Errorf("slot %d from worker %d, want 2", i, s.buf.Worker())
		}
	}
	// Next acquisition of 6 must spill from worker 2's remaining 0 slots
	// into the next-preferred worker 0.
	slots2, err := in.AcquireSlots(6, func(worker int) int {
		return (worker + 1) % 3
	})
	if err != nil {
		t.Fatal(err)
	}
	fromW0 := 0
	for _, s := range slots2 {
		if s.buf.Worker() == 0 {
			fromW0++
		}
	}
	if fromW0 != 4 {
		t.Errorf("%d slots from worker 0, want 4 (spill order)", fromW0)
	}
}

func TestReleaseInFlightRejected(t *testing.T) {
	b, _ := NewBuffer(0, 2)
	in, _ := NewInbox([]*Buffer{b})
	slots, _ := in.AcquireSlots(1, nil)
	c, _ := NewClient(slots)
	c.Delegate(func() any { return nil }) // never swept: no worker running
	if err := in.ReleaseSlots(slots); err == nil {
		t.Error("release of in-flight slot accepted")
	}
	b.Sweep()
	c.Drain()
	if err := in.ReleaseSlots(slots); err != nil {
		t.Errorf("release after drain failed: %v", err)
	}
}

func TestWorkerStopAnswersLateTask(t *testing.T) {
	in := newInboxT(t, 1, 2)
	slots, _ := in.AcquireSlots(1, nil)
	c, _ := NewClient(slots)

	stopCh := make(chan struct{})
	done := make(chan struct{})
	go func() {
		NewWorker(in.Buffers()[0]).Run(stopCh)
		close(done)
	}()
	f := c.Delegate(func() any { return "late" })
	close(stopCh)
	<-done
	// The final sweep in Run must have answered the task (or the regular
	// loop did before stopping).
	if v, ok := f.TryGet(); !ok || v != "late" {
		// One more manual sweep settles any race in this test's timing.
		in.Buffers()[0].Sweep()
		if v2 := f.Wait(); v2 != "late" {
			t.Errorf("late task = %v", v2)
		}
		_ = v
	}
}

func TestStatsCounters(t *testing.T) {
	b, _ := NewBuffer(0, 2)
	if n := b.Sweep(); n != 0 {
		t.Errorf("empty sweep = %d", n)
	}
	b.SyncStats() // no worker: publish the manual sweep's counts
	if b.EmptySweep.Load() != 1 || b.Sweeps.Load() != 1 {
		t.Error("empty sweep not counted")
	}
	in, _ := NewInbox([]*Buffer{b})
	slots, _ := in.AcquireSlots(1, nil)
	c, _ := NewClient(slots)
	c.Delegate(func() any { return nil })
	b.Sweep()
	b.SyncStats()
	if b.Executed.Load() != 1 {
		t.Errorf("Executed = %d", b.Executed.Load())
	}
	if b.Batched.Load() != 0 {
		t.Errorf("single task counted as batched")
	}
	c.Drain()
}

func TestPanickingTaskDoesNotKillWorker(t *testing.T) {
	in := newInboxT(t, 1, 4)
	stop := startWorkers(in.Buffers())
	defer stop()

	slots, _ := in.AcquireSlots(2, nil)
	c, _ := NewClient(slots)
	defer c.Drain()

	f := c.Delegate(func() any { panic("boom") })
	res := f.Wait()
	perr, ok := res.(PanicError)
	if !ok {
		t.Fatalf("result = %#v, want PanicError", res)
	}
	if perr.Value != "boom" {
		t.Errorf("panic value = %v", perr.Value)
	}
	if perr.Error() == "" {
		t.Error("empty error string")
	}
	// The worker must still serve subsequent tasks.
	if got := c.Invoke(func() any { return "alive" }); got != "alive" {
		t.Errorf("worker dead after panic: %v", got)
	}
}
