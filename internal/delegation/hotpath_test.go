package delegation

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// TestInvokeErrZeroAlloc pins the tentpole property: the synchronous
// round trip through the slot-embedded recycled future allocates nothing in
// steady state.
func TestInvokeErrZeroAlloc(t *testing.T) {
	in := newInboxT(t, 1, 4)
	stop := startWorkers(in.Buffers())
	defer stop()

	slots, _ := in.AcquireSlots(1, nil)
	c, _ := NewClient(slots)
	task := Task(func() any { return nil })
	c.InvokeErr(task) // warm up: first post touches cold paths

	if n := testing.AllocsPerRun(2000, func() {
		if _, err := c.InvokeErr(task); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("InvokeErr allocates %.1f objects/op, want 0", n)
	}
}

// TestDelegateCyclingDoesNotGrow is the Client.pending regression test: the
// old implementation resliced pending[1:] and re-appended, so a long-lived
// client kept re-growing its backing array. The ring must hold steady-state
// delegation at exactly 1 alloc/op (the detached future) no matter how many
// operations cycle through.
func TestDelegateCyclingDoesNotGrow(t *testing.T) {
	if testing.Short() {
		t.Skip("1e6-op cycling test skipped under -short")
	}
	in := newInboxT(t, 1, SlotsPerBuffer)
	stop := startWorkers(in.Buffers())
	defer stop()

	slots, _ := in.AcquireSlots(14, nil) // the paper's burst size
	c, _ := NewClient(slots)
	task := Task(func() any { return nil })
	for i := 0; i < 100; i++ { // cycle the window a few times before measuring
		c.Delegate(task)
	}
	c.Drain()

	const ops = 1_000_000
	if n := testing.AllocsPerRun(ops, func() {
		c.Delegate(task)
	}); n > 1 {
		t.Errorf("Delegate allocates %.2f objects/op over %d ops, want ≤1 (no bookkeeping growth)", n, ops)
	}
	c.Drain()
	if got := c.Outstanding(); got != 0 {
		t.Errorf("Outstanding after drain = %d", got)
	}
}

// TestEmbeddedFutureGenerations drives one slot's recycled future through
// several generations by hand and checks stale completers cannot touch a
// newer generation (the ABA guard).
func TestEmbeddedFutureGenerations(t *testing.T) {
	var f Future
	tok1 := f.begin()
	f.complete(1)
	if v, err := f.awaitToken(tok1); err != nil || v != 1 {
		t.Fatalf("gen1 = %v, %v", v, err)
	}
	tok2 := f.begin()
	if tok2 <= tok1 {
		t.Fatalf("generation did not advance: %d -> %d", tok1, tok2)
	}
	// A stale completer still holding gen-1's token must not land.
	f.err = nil
	if f.word.CompareAndSwap(tok1, tok1|futError) {
		t.Fatal("stale generation CAS succeeded")
	}
	f.complete(2)
	if v, err := f.awaitToken(tok2); err != nil || v != 2 {
		t.Fatalf("gen2 = %v, %v", v, err)
	}
	// completeErr after completion is a no-op.
	if f.completeErr(errors.New("late")) {
		t.Fatal("completeErr landed on a completed future")
	}
}

// TestGenerationStressChaos is the -race stress test for future recycling:
// clients reuse their slot-embedded futures across many generations while a
// chaos schedule crashes the worker (via a fault hook), respawns it, and
// finally seals the buffer. Every generation must resolve exactly once —
// with its own value, or with a typed lifecycle error — and the recycled
// future's generation counter must have advanced once per invocation.
func TestGenerationStressChaos(t *testing.T) {
	const (
		nClients = 4
		perGen   = 200 // invocations per client per phase; ≥3 phases below
	)
	b, _ := NewBuffer(0, SlotsPerBuffer)
	in, _ := NewInbox([]*Buffer{b})

	kill := &killEveryNHook{n: 97} // crash the worker repeatedly mid-stream
	b.SetFaultHook(kill)

	stopCh := make(chan struct{})
	workersDone := make(chan struct{})
	go func() {
		defer close(workersDone)
		// Supervisor loop: respawn the worker after every crash until stop.
		for {
			if crash := NewWorker(b).Run(stopCh); crash == nil {
				return
			}
			select {
			case <-stopCh:
				// Run crashed while stop was pending; seal so late posts
				// cannot dangle.
				b.Seal()
				return
			default:
			}
		}
	}()

	var wg sync.WaitGroup
	errCh := make(chan error, nClients)
	for ci := 0; ci < nClients; ci++ {
		slots, err := in.AcquireSlots(1, nil)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(ci int, s *Slot) {
			defer wg.Done()
			c, _ := NewClient([]*Slot{s})
			startGen := s.fut0.word.Load() >> futGenShift
			invocations := uint64(0)
			// Three phases ≈ three generations-of-life for the embedded
			// future: pre-crash, across crashes, and into the seal.
			for phase := 0; phase < 3; phase++ {
				for i := 0; i < perGen; i++ {
					want := ci*1_000_000 + phase*1_000 + i
					v, err := c.InvokeErr(func() any { return want })
					invocations++
					switch {
					case err == nil:
						if v != want {
							errCh <- fmt.Errorf("client %d: got %v, want %d (cross-generation bleed)", ci, v, want)
							return
						}
					case errors.Is(err, ErrWorkerStopped):
						// Sealed under us: a valid exactly-once resolution.
					default:
						var pe PanicError
						if !errors.As(err, &pe) {
							errCh <- fmt.Errorf("client %d: unexpected error %v", ci, err)
							return
						}
						// Crash fail-over: also exactly-once.
					}
				}
			}
			// The recycled future must have advanced exactly one generation
			// per invocation: more would mean a double-begin, fewer a reuse
			// without recycling.
			endGen := s.fut0.word.Load() >> futGenShift
			if endGen-startGen != invocations {
				errCh <- fmt.Errorf("client %d: %d invocations advanced %d generations", ci, invocations, endGen-startGen)
			}
		}(ci, slots[0])
	}
	wg.Wait()
	close(stopCh)
	<-workersDone
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	if kill.fired.Load() == 0 {
		t.Error("chaos schedule never crashed the worker")
	}
	if !b.Sealed() {
		t.Error("buffer not sealed after shutdown")
	}
}

// killEveryNHook panics out of every n-th sweep, simulating repeated worker
// crashes for the generation stress test.
type killEveryNHook struct {
	n     int
	calls int
	fired atomic.Int64
}

func (h *killEveryNHook) BeforeSweep(worker int) {
	h.calls++
	if h.calls%h.n == 0 {
		h.fired.Add(1)
		panic(fmt.Sprintf("injected crash #%d", h.fired.Load()))
	}
}

func (h *killEveryNHook) BeforeTask(worker int) {}
