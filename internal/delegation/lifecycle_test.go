package delegation

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// TestPostAfterStopResolves is the stop/post race regression test. Before
// buffers learned to seal, a task posted after the worker's final sweep was
// never swept and its future never completed — the seed code hung here
// forever. Now the post must resolve with ErrWorkerStopped.
func TestPostAfterStopResolves(t *testing.T) {
	in := newInboxT(t, 1, 2)
	slots, _ := in.AcquireSlots(1, nil)
	c, _ := NewClient(slots)

	stopCh := make(chan struct{})
	done := make(chan struct{})
	go func() {
		NewWorker(in.Buffers()[0]).Run(stopCh)
		close(done)
	}()
	close(stopCh)
	<-done // worker exited: buffer sealed, nobody will ever sweep again

	f := c.Delegate(func() any { t.Error("task executed after stop"); return nil })
	v, err := f.WaitTimeout(2 * time.Second)
	if errors.Is(err, ErrWaitTimeout) {
		t.Fatal("post-stop future hung (the pre-seal stop/post race)")
	}
	if !errors.Is(err, ErrWorkerStopped) {
		t.Fatalf("post-stop future = (%v, %v), want ErrWorkerStopped", v, err)
	}
	if in.Buffers()[0].Rescued.Load() == 0 {
		t.Error("rescued counter not incremented")
	}
	// The slot is free again and releasable.
	if err := in.ReleaseSlots(c.Slots()); err != nil {
		t.Errorf("release after rescue: %v", err)
	}
}

// TestStopPostRaceHammer races worker shutdowns against posting clients many
// times; every future must resolve. Run with -race.
func TestStopPostRaceHammer(t *testing.T) {
	for round := 0; round < 200; round++ {
		in := newInboxT(t, 1, 4)
		slots, _ := in.AcquireSlots(2, nil)
		c, _ := NewClient(slots)

		stopCh := make(chan struct{})
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			NewWorker(in.Buffers()[0]).Run(stopCh)
		}()

		var futs []*Future
		postDone := make(chan struct{})
		go func() {
			defer close(postDone)
			for i := 0; i < 20; i++ {
				futs = append(futs, c.Delegate(func() any { return i }))
			}
		}()
		if round%2 == 0 {
			close(stopCh)
			<-postDone
		} else {
			<-postDone
			close(stopCh)
		}
		wg.Wait()
		for i, f := range futs {
			if _, err := f.WaitTimeout(5 * time.Second); errors.Is(err, ErrWaitTimeout) {
				t.Fatalf("round %d: future %d hung", round, i)
			}
		}
	}
}

func TestWaitTimeoutAndCtx(t *testing.T) {
	var f Future
	if _, err := f.WaitTimeout(5 * time.Millisecond); !errors.Is(err, ErrWaitTimeout) {
		t.Errorf("pending WaitTimeout err = %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	if _, err := f.WaitCtx(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("pending WaitCtx err = %v", err)
	}
	// The future stays valid after both timeouts.
	f.complete(9)
	if v, err := f.WaitTimeout(time.Second); err != nil || v != 9 {
		t.Errorf("completed WaitTimeout = %v, %v", v, err)
	}
	if v, err := f.WaitCtx(context.Background()); err != nil || v != 9 {
		t.Errorf("completed WaitCtx = %v, %v", v, err)
	}
}

func TestResultSeparatesChannels(t *testing.T) {
	var ok Future
	ok.complete("v")
	if v, err := ok.Result(); err != nil || v != "v" {
		t.Errorf("value Result = %v, %v", v, err)
	}
	if ok.Err() != nil {
		t.Errorf("value Err = %v", ok.Err())
	}

	var bad Future
	bad.completeErr(PanicError{Value: "x"})
	if v, err := bad.Result(); v != nil || err == nil {
		t.Errorf("error Result = %v, %v", v, err)
	}
	var pe PanicError
	if !errors.As(bad.Err(), &pe) || pe.Value != "x" {
		t.Errorf("error Err = %v", bad.Err())
	}
	// Wait's historical shape: the error is the value.
	if v := bad.Wait(); v != bad.Err() {
		t.Errorf("Wait on error future = %v", v)
	}
}

func TestCompleteErrCannotClobberValue(t *testing.T) {
	var f Future
	f.complete(1)
	if f.completeErr(ErrWorkerStopped) {
		t.Error("completeErr overwrote a value result")
	}
	if v, err := f.Result(); err != nil || v != 1 {
		t.Errorf("Result after attempted clobber = %v, %v", v, err)
	}
}

func TestSealIdempotentAndSweepsPosted(t *testing.T) {
	b, _ := NewBuffer(0, 4)
	in, _ := NewInbox([]*Buffer{b})
	slots, _ := in.AcquireSlots(3, nil)
	c, _ := NewClient(slots)
	f1 := c.Delegate(func() any { return 1 })
	f2 := c.Delegate(func() any { return 2 })
	if n := b.Seal(); n != 2 {
		t.Errorf("seal's final sweep ran %d tasks, want 2", n)
	}
	if !b.Sealed() {
		t.Error("buffer not sealed")
	}
	if v, _ := f1.Result(); v != 1 {
		t.Errorf("f1 = %v", v)
	}
	if v, _ := f2.Result(); v != 2 {
		t.Errorf("f2 = %v", v)
	}
	if n := b.Seal(); n != 0 {
		t.Errorf("second seal ran %d tasks", n)
	}
}

func TestFailPending(t *testing.T) {
	b, _ := NewBuffer(0, 4)
	in, _ := NewInbox([]*Buffer{b})
	slots, _ := in.AcquireSlots(2, nil)
	c, _ := NewClient(slots)
	f1 := c.Delegate(func() any { return 1 })
	f2 := c.Delegate(func() any { return 2 })
	crash := PanicError{Value: "kill"}
	if n := b.FailPending(crash); n != 2 {
		t.Fatalf("FailPending failed %d futures, want 2", n)
	}
	for i, f := range []*Future{f1, f2} {
		var pe PanicError
		if !errors.As(f.Err(), &pe) {
			t.Errorf("f%d err = %v, want PanicError", i+1, f.Err())
		}
	}
	if b.Failed.Load() != 2 {
		t.Errorf("Failed = %d", b.Failed.Load())
	}
	// Slots are free again (and the buffer is NOT sealed: a respawned worker
	// keeps serving it).
	if b.Sealed() {
		t.Error("FailPending sealed the buffer")
	}
	c.Drain() // futures already resolved by error; harvest frees the window
	if err := in.ReleaseSlots(c.Slots()); err != nil {
		t.Errorf("release after FailPending: %v", err)
	}
}

func TestErrVariants(t *testing.T) {
	in := newInboxT(t, 1, 4)
	stop := startWorkers(in.Buffers())

	slots, _ := in.AcquireSlots(2, nil)
	c, _ := NewClient(slots)

	if v, err := c.InvokeErr(func() any { return 5 }); err != nil || v != 5 {
		t.Errorf("InvokeErr = %v, %v", v, err)
	}
	if _, err := c.InvokeErr(func() any { panic("p") }); err == nil {
		t.Error("InvokeErr missed the panic")
	}
	out, err := c.DelegateBulkErr([]Task{
		func() any { return 1 },
		func() any { panic("bulk") },
		func() any { return 3 },
	})
	var pe PanicError
	if !errors.As(err, &pe) || pe.Value != "bulk" {
		t.Errorf("DelegateBulkErr err = %v", err)
	}
	if out[0] != 1 || out[1] != nil || out[2] != 3 {
		t.Errorf("DelegateBulkErr out = %v", out)
	}
	// The panicked bulk task is still in the pending window, so DrainErr
	// reports it again (futures hold their result; draining re-reads it).
	var dpe PanicError
	if err := c.DrainErr(); !errors.As(err, &dpe) || dpe.Value != "bulk" {
		t.Errorf("DrainErr after bulk = %v, want the bulk PanicError", err)
	}

	// After the worker stops, DelegateErr reports the failure immediately
	// and DrainErr surfaces it again on drain.
	stop()
	f, derr := c.DelegateErr(func() any { return nil })
	if !errors.Is(derr, ErrWorkerStopped) {
		t.Errorf("DelegateErr after stop = %v", derr)
	}
	if !errors.Is(f.Err(), ErrWorkerStopped) {
		t.Errorf("future err = %v", f.Err())
	}
	if err := c.DrainErr(); !errors.Is(err, ErrWorkerStopped) {
		t.Errorf("DrainErr after stop = %v", err)
	}
}

// TestCrashedWorkerReportsAndBufferStaysOpen covers Worker.Run's crash
// contract directly: the escaped panic comes back as the crash error, posted
// tasks fail with PanicError, and a fresh worker can take over the buffer.
func TestCrashedWorkerReportsAndBufferStaysOpen(t *testing.T) {
	b, _ := NewBuffer(0, 4)
	in, _ := NewInbox([]*Buffer{b})
	slots, _ := in.AcquireSlots(2, nil)
	c, _ := NewClient(slots)

	kill := &killOnceHook{}
	b.SetFaultHook(kill)
	f := c.Delegate(func() any { return "never" })

	stopCh := make(chan struct{})
	crash := NewWorker(b).Run(stopCh)
	var pe PanicError
	if !errors.As(crash, &pe) {
		t.Fatalf("crash = %v, want PanicError", crash)
	}
	var fpe PanicError
	if !errors.As(f.Err(), &fpe) {
		t.Fatalf("posted future err = %v, want PanicError", f.Err())
	}
	if b.Sealed() {
		t.Fatal("crash sealed the buffer")
	}
	c.Drain()

	// Respawn: the same buffer serves again.
	done := make(chan struct{})
	go func() {
		NewWorker(b).Run(stopCh)
		close(done)
	}()
	if v, err := c.InvokeErr(func() any { return "back" }); err != nil || v != "back" {
		t.Fatalf("respawned worker invoke = %v, %v", v, err)
	}
	close(stopCh)
	<-done
}

// killOnceHook panics out of the first sweep, simulating a worker crash.
type killOnceHook struct{ fired bool }

func (h *killOnceHook) BeforeSweep(worker int) {
	if !h.fired {
		h.fired = true
		panic("injected worker kill")
	}
}
func (h *killOnceHook) BeforeTask(int) {}
