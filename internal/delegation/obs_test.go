package delegation

import (
	"sync"
	"testing"

	"robustconf/internal/obs"
)

// startWorker spawns a polling worker over buf and returns a stop-and-join
// function.
func startWorker(t *testing.T, buf *Buffer) func() {
	t.Helper()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := NewWorker(buf).Run(stop); err != nil {
			t.Errorf("worker crashed: %v", err)
		}
	}()
	return func() { close(stop); wg.Wait() }
}

// TestDelegateNoObsAllocs pins the disabled-observability cost of the post
// path: exactly the one Future allocation it always had, nothing more.
func TestDelegateNoObsAllocs(t *testing.T) {
	buf, err := NewBuffer(0, SlotsPerBuffer)
	if err != nil {
		t.Fatal(err)
	}
	join := startWorker(t, buf)
	defer join()
	in, _ := NewInbox([]*Buffer{buf})
	slots, err := in.AcquireSlots(4, nil)
	if err != nil {
		t.Fatal(err)
	}
	c, _ := NewClient(slots)
	defer c.Drain()

	task := Task(func() any { return nil })
	if n := testing.AllocsPerRun(2000, func() {
		c.Delegate(task).Wait()
	}); n > 1 {
		t.Errorf("Invoke with no probe allocates %.1f objects, want ≤1 (the Future)", n)
	}
}

// TestInvokeObservedZeroAlloc pins the observed hot path: with a client
// probe attached and EVERY post sampled, Invoke must not allocate — the
// sampled span recycles through the shard's one-deep spare as soon as the
// previous generation resolves. (Before span recycling this path allocated
// one Span per sampled post — the stray byte/op in the committed
// BenchmarkDelegationInvokeObserved snapshot.)
func TestInvokeObservedZeroAlloc(t *testing.T) {
	o := obs.New(obs.Options{SampleEvery: 1})
	d := o.Domain("dom", 1)
	buf, err := NewBuffer(0, SlotsPerBuffer)
	if err != nil {
		t.Fatal(err)
	}
	buf.SetProbe(d.Worker(0))
	join := startWorker(t, buf)
	defer join()
	in, _ := NewInbox([]*Buffer{buf})
	slots, err := in.AcquireSlots(4, nil)
	if err != nil {
		t.Fatal(err)
	}
	c, _ := NewClient(slots)
	c.SetProbe(d.NewClient())
	defer c.Drain()

	task := Task(func() any { return nil })
	for i := 0; i < 100; i++ {
		c.Invoke(task) // warm the spare span and the shard
	}
	if n := testing.AllocsPerRun(5000, func() {
		c.Invoke(task)
	}); n != 0 {
		t.Errorf("observed Invoke allocates %.2f objects/op, want 0", n)
	}
}

// TestProbeCountsDelegations attaches worker and client shards and checks
// the aggregated counters line up with the actual traffic.
func TestProbeCountsDelegations(t *testing.T) {
	o := obs.New(obs.Options{SampleEvery: 1})
	d := o.Domain("dom", 1)

	buf, err := NewBuffer(0, SlotsPerBuffer)
	if err != nil {
		t.Fatal(err)
	}
	buf.SetProbe(d.Worker(0))
	join := startWorker(t, buf)
	in, _ := NewInbox([]*Buffer{buf})
	slots, _ := in.AcquireSlots(2, nil)
	c, _ := NewClient(slots)
	c.SetProbe(d.NewClient())

	const posts = 500
	for i := 0; i < posts; i++ {
		c.Delegate(func() any { return i })
	}
	c.Drain()
	join() // worker exit flushes its shard

	s := o.Snapshot().Domains[0]
	if s.Posts != posts {
		t.Errorf("posts = %d, want %d", s.Posts, posts)
	}
	if s.Tasks != posts {
		t.Errorf("tasks = %d, want %d", s.Tasks, posts)
	}
	// Burst 2 with 500 posts must have stalled on the window repeatedly.
	if s.BurstWaits == 0 {
		t.Error("burst waits = 0, want > 0 with burst 2")
	}
	if s.Sweeps == 0 || s.ExecNs.Count != posts {
		t.Errorf("sweeps %d exec samples %d, want >0 and %d", s.Sweeps, s.ExecNs.Count, posts)
	}
	if s.RespNs.Count != posts {
		t.Errorf("response samples %d, want %d (SampleEvery=1)", s.RespNs.Count, posts)
	}
}

// TestSpanLifecycleThroughWorker traces every task and checks the committed
// spans carry monotone stage stamps from a real client→worker round trip.
func TestSpanLifecycleThroughWorker(t *testing.T) {
	o := obs.New(obs.Options{SampleEvery: 1, TraceEvery: 1})
	d := o.Domain("dom", 1)

	buf, err := NewBuffer(0, SlotsPerBuffer)
	if err != nil {
		t.Fatal(err)
	}
	buf.SetProbe(d.Worker(0))
	join := startWorker(t, buf)
	defer join()
	in, _ := NewInbox([]*Buffer{buf})
	slots, _ := in.AcquireSlots(4, nil)
	c, _ := NewClient(slots)
	c.SetProbe(d.NewClient())

	const posts = 100
	for i := 0; i < posts; i++ {
		if v := c.Invoke(func() any { return i * 2 }); v != i*2 {
			t.Fatalf("Invoke(%d) = %v", i, v)
		}
	}
	c.Drain()

	spans := o.Tracer().Spans()
	if len(spans) != posts {
		t.Fatalf("committed %d spans, want %d", len(spans), posts)
	}
	for _, r := range spans {
		if r.Failed {
			t.Errorf("span marked failed: %+v", r)
		}
		if r.Worker != 0 || r.Domain != "dom" {
			t.Errorf("span attribution: %+v", r)
		}
		if !(r.PostedNs <= r.SweptNs && r.SweptNs <= r.ExecStartNs &&
			r.ExecStartNs <= r.ExecEndNs && r.ExecEndNs <= r.RespondedNs &&
			r.RespondedNs <= r.ResolvedNs) {
			t.Errorf("non-monotone span: %+v", r)
		}
	}
}

// TestSpanResolvedOnSealRescue checks the failure path: a traced task posted
// into a sealed buffer resolves its span with failed=true.
func TestSpanResolvedOnSealRescue(t *testing.T) {
	o := obs.New(obs.Options{SampleEvery: 1, TraceEvery: 1})
	d := o.Domain("dom", 1)

	buf, err := NewBuffer(0, SlotsPerBuffer)
	if err != nil {
		t.Fatal(err)
	}
	in, _ := NewInbox([]*Buffer{buf})
	slots, _ := in.AcquireSlots(1, nil)
	c, _ := NewClient(slots)
	c.SetProbe(d.NewClient())

	buf.Seal() // no worker ever runs
	f := c.Delegate(func() any { return 1 })
	if _, err := f.Result(); err != ErrWorkerStopped {
		t.Fatalf("err = %v, want ErrWorkerStopped", err)
	}
	spans := o.Tracer().Spans()
	if len(spans) != 1 || !spans[0].Failed {
		t.Errorf("spans = %+v, want one failed span", spans)
	}
	if spans[0].SweptNs != 0 {
		t.Errorf("rescued span has a swept stamp: %+v", spans[0])
	}
}

// BenchmarkDelegateProbed measures the probed post path at the default
// sampling rate — the overhead budget for obs-enabled runs.
func BenchmarkDelegateProbed(b *testing.B) {
	o := obs.New(obs.Options{})
	d := o.Domain("dom", 1)
	buf, err := NewBuffer(0, SlotsPerBuffer)
	if err != nil {
		b.Fatal(err)
	}
	buf.SetProbe(d.Worker(0))
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() { defer close(done); _ = NewWorker(buf).Run(stop) }()
	in, _ := NewInbox([]*Buffer{buf})
	slots, _ := in.AcquireSlots(14, nil)
	c, _ := NewClient(slots)
	c.SetProbe(d.NewClient())
	task := Task(func() any { return nil })
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Delegate(task)
	}
	c.Drain()
	b.StopTimer()
	close(stop)
	<-done
}
