package delegation

import (
	"sync"
	"syscall"
	"testing"
	"time"
)

// cpuNs returns this process's user+system CPU time in nanoseconds.
func cpuNs(b *testing.B) int64 {
	b.Helper()
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		b.Skipf("getrusage: %v", err)
	}
	return ru.Utime.Nano() + ru.Stime.Nano()
}

// BenchmarkIdleWait measures the CPU cost of waiting on futures that
// complete only after a genuinely idle period (200µs — far past the spin
// phase). The cpu-ns/op metric is the point: the spin-then-sleep backoff in
// Future.block keeps it orders of magnitude below the wall time per op,
// where a pure Gosched spin would burn a full core for the duration.
func BenchmarkIdleWait(b *testing.B) {
	const idle = 200 * time.Microsecond
	futs := make(chan *Future, 1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for f := range futs {
			time.Sleep(idle)
			f.complete(nil)
		}
	}()

	b.ResetTimer()
	startCPU := cpuNs(b)
	for i := 0; i < b.N; i++ {
		f := &Future{}
		futs <- f
		f.Wait()
	}
	cpu := cpuNs(b) - startCPU
	b.StopTimer()
	close(futs)
	wg.Wait()
	b.ReportMetric(float64(cpu)/float64(b.N), "cpu-ns/op")
}

// BenchmarkBusyWait is the contrast case: the future completes almost
// immediately, so waits resolve inside the spin phase and the backoff adds
// no latency — delegation throughput (see BenchmarkDelegationInvoke at the
// repo root) is untouched by the idle backoff.
func BenchmarkBusyWait(b *testing.B) {
	futs := make(chan *Future, 64)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for f := range futs {
			f.complete(nil)
		}
	}()

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := &Future{}
		futs <- f
		f.Wait()
	}
	b.StopTimer()
	close(futs)
	wg.Wait()
}
