// Package faultinject provides a deterministic, seeded fault injector for
// the delegation runtime. It implements delegation.FaultHook: hooked into a
// worker's poll loop it can panic tasks, kill or stall workers, and delay
// sweeps, each triggered by a probability draw from a seeded source or by a
// deterministic every-nth-opportunity counter. The hook is nil by default
// in the runtime, so production hot paths pay nothing; the chaos harness
// (internal/harness) wires an Injector in to assert that every submitted
// future completes — with a value or a typed error — under every fault
// schedule.
package faultinject

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// Kind enumerates the injectable faults.
type Kind int

const (
	// TaskPanic panics inside the task-execution recovery scope: the
	// delegated task appears to have panicked, yielding a PanicError on
	// its future while the worker survives.
	TaskPanic Kind = iota
	// WorkerKill panics outside the recovery scope, before the sweep
	// touches any slot: the worker goroutine crashes as if a bug escaped
	// the protocol, exercising crash fail-over and supervisor respawn.
	WorkerKill
	// WorkerStall blocks the worker for Rule.Stall before a sweep,
	// simulating a descheduled or wedged worker that later recovers.
	WorkerStall
	// SweepDelay sleeps briefly (Rule.Stall) before a sweep — a milder
	// stall that stretches the response-batching window.
	SweepDelay
	// WALKillCommit kills the worker inside the WAL group commit, after the
	// sweep staged its records but before they reach the segment: the crash
	// loses the whole batch, and recovery must serve the pre-batch state
	// while clients see the batch fail with a typed error.
	WALKillCommit
	// WALTornTail writes a truncated final frame to the segment and then
	// kills the worker, simulating a crash mid-append: replay must detect
	// the torn frame, drop it, and truncate the segment there.
	WALTornTail
	numKinds
)

// String names the fault kind.
func (k Kind) String() string {
	switch k {
	case TaskPanic:
		return "task-panic"
	case WorkerKill:
		return "worker-kill"
	case WorkerStall:
		return "worker-stall"
	case SweepDelay:
		return "sweep-delay"
	case WALKillCommit:
		return "wal-kill-commit"
	case WALTornTail:
		return "wal-torn-tail"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Killed is the panic value a WorkerKill raises; supervisors see it as the
// PanicError's Value.
type Killed struct {
	Worker int
}

func (k Killed) String() string {
	return fmt.Sprintf("faultinject: worker %d killed", k.Worker)
}

// Rule arms one fault. A rule triggers at an opportunity (a sweep for
// worker-level kinds, a task execution for TaskPanic) when its
// deterministic counter or its probability draw fires.
type Rule struct {
	Kind   Kind
	Worker int // restrict to this worker id; -1 matches any worker

	// Probability triggers the fault on each opportunity with this chance,
	// drawn from the injector's seeded source (0 disables the draw).
	Probability float64
	// EveryNth triggers the fault deterministically on every nth
	// opportunity seen by this rule (0 disables the counter).
	EveryNth uint64
	// Once disarms the rule after its first trigger.
	Once bool

	// Stall is the sleep duration for WorkerStall and SweepDelay.
	Stall time.Duration
}

// ruleState pairs a rule with its opportunity counter.
type ruleState struct {
	Rule
	seen  atomic.Uint64
	fired atomic.Uint64
}

// Injector is a seeded fault source. It is safe for concurrent use by all
// workers of a runtime; determinism holds for the *decisions* (which
// opportunity fires, given a serialisation of the draws), not for wall-clock
// interleavings.
type Injector struct {
	mu    sync.Mutex
	rng   *rand.Rand
	rules []*ruleState

	triggered [numKinds]atomic.Uint64
}

// New builds an injector drawing from a source seeded with seed.
func New(seed int64, rules ...Rule) *Injector {
	in := &Injector{rng: rand.New(rand.NewSource(seed))}
	for _, r := range rules {
		in.rules = append(in.rules, &ruleState{Rule: r})
	}
	return in
}

// Triggered returns how many times faults of kind k have fired.
func (in *Injector) Triggered(k Kind) uint64 {
	if k < 0 || k >= numKinds {
		return 0
	}
	return in.triggered[k].Load()
}

// Counts snapshots the per-kind trigger counters.
func (in *Injector) Counts() map[string]uint64 {
	out := map[string]uint64{}
	for k := Kind(0); k < numKinds; k++ {
		if n := in.triggered[k].Load(); n > 0 {
			out[k.String()] = n
		}
	}
	return out
}

// decide reports whether rule r fires at this opportunity.
func (in *Injector) decide(r *ruleState, worker int) bool {
	if r.Worker >= 0 && r.Worker != worker {
		return false
	}
	if r.Once && r.fired.Load() > 0 {
		return false
	}
	seen := r.seen.Add(1)
	hit := false
	if r.EveryNth > 0 && seen%r.EveryNth == 0 {
		hit = true
	}
	if !hit && r.Probability > 0 {
		in.mu.Lock()
		hit = in.rng.Float64() < r.Probability
		in.mu.Unlock()
	}
	if hit {
		if r.Once && !r.fired.CompareAndSwap(0, 1) {
			return false // another worker won the only shot
		}
		if !r.Once {
			r.fired.Add(1)
		}
		in.triggered[r.Kind].Add(1)
	}
	return hit
}

// BeforeSweep implements delegation.FaultHook: worker-level faults. A
// WorkerKill panics with a Killed value, escaping the sweep into the
// worker's crash recovery; stalls and delays sleep in place.
func (in *Injector) BeforeSweep(worker int) {
	for _, r := range in.rules {
		switch r.Kind {
		case WorkerKill:
			if in.decide(r, worker) {
				panic(Killed{Worker: worker})
			}
		case WorkerStall, SweepDelay:
			if in.decide(r, worker) {
				d := r.Stall
				if d <= 0 {
					d = time.Millisecond
				}
				time.Sleep(d)
			}
		}
	}
}

// DecideWALFault is the commit-fault hook the core runtime bridges into the
// WAL layer (wal.CommitHook): called once per group commit, it returns 0
// (no fault), 1 (kill before the append) or 2 (torn tail), matching
// wal.CommitNone/CommitKill/CommitTear. Plain ints keep the packages
// decoupled; the first armed WAL rule that fires wins.
func (in *Injector) DecideWALFault(worker int) int {
	for _, r := range in.rules {
		switch r.Kind {
		case WALKillCommit:
			if in.decide(r, worker) {
				return 1
			}
		case WALTornTail:
			if in.decide(r, worker) {
				return 2
			}
		}
	}
	return 0
}

// BeforeTask implements delegation.FaultHook: task-level faults. A
// TaskPanic panics inside the task recovery scope, so the delegated task's
// future completes with a PanicError and the worker survives.
func (in *Injector) BeforeTask(worker int) {
	for _, r := range in.rules {
		if r.Kind != TaskPanic {
			continue
		}
		if in.decide(r, worker) {
			panic(fmt.Sprintf("faultinject: task panic on worker %d", worker))
		}
	}
}
