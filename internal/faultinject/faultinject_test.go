package faultinject

import (
	"testing"
	"time"

	"robustconf/internal/delegation"
)

// The injector must satisfy the runtime's hook interface.
var _ delegation.FaultHook = (*Injector)(nil)

func TestEveryNthDeterministic(t *testing.T) {
	in := New(1, Rule{Kind: TaskPanic, Worker: -1, EveryNth: 3})
	fired := 0
	for i := 0; i < 9; i++ {
		func() {
			defer func() {
				if recover() != nil {
					fired++
				}
			}()
			in.BeforeTask(0)
		}()
	}
	if fired != 3 {
		t.Errorf("every-3rd rule fired %d times in 9 opportunities, want 3", fired)
	}
	if in.Triggered(TaskPanic) != 3 {
		t.Errorf("Triggered = %d", in.Triggered(TaskPanic))
	}
}

func TestSeededProbabilityReproducible(t *testing.T) {
	run := func(seed int64) []bool {
		in := New(seed, Rule{Kind: WorkerKill, Worker: -1, Probability: 0.5})
		var out []bool
		for i := 0; i < 32; i++ {
			hit := false
			func() {
				defer func() { hit = recover() != nil }()
				in.BeforeSweep(0)
			}()
			out = append(out, hit)
		}
		return out
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at opportunity %d", i)
		}
	}
	c := run(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical schedules (suspicious)")
	}
}

func TestOnceDisarms(t *testing.T) {
	in := New(7, Rule{Kind: WorkerKill, Worker: -1, EveryNth: 1, Once: true})
	kills := 0
	for i := 0; i < 5; i++ {
		func() {
			defer func() {
				if r := recover(); r != nil {
					if k, ok := r.(Killed); !ok || k.Worker != 3 {
						t.Errorf("panic value = %#v", r)
					}
					kills++
				}
			}()
			in.BeforeSweep(3)
		}()
	}
	if kills != 1 {
		t.Errorf("Once rule killed %d times, want 1", kills)
	}
}

func TestWorkerFilter(t *testing.T) {
	in := New(1, Rule{Kind: TaskPanic, Worker: 2, EveryNth: 1})
	panicked := func(w int) (hit bool) {
		defer func() { hit = recover() != nil }()
		in.BeforeTask(w)
		return
	}
	if panicked(0) || panicked(1) {
		t.Error("rule for worker 2 fired on other workers")
	}
	if !panicked(2) {
		t.Error("rule for worker 2 did not fire on worker 2")
	}
}

func TestStallSleeps(t *testing.T) {
	in := New(1, Rule{Kind: WorkerStall, Worker: -1, EveryNth: 1, Stall: 20 * time.Millisecond})
	start := time.Now()
	in.BeforeSweep(0)
	if d := time.Since(start); d < 15*time.Millisecond {
		t.Errorf("stall slept %v, want ≈20ms", d)
	}
	if in.Triggered(WorkerStall) != 1 {
		t.Error("stall not counted")
	}
}

func TestCountsSnapshot(t *testing.T) {
	in := New(1,
		Rule{Kind: SweepDelay, Worker: -1, EveryNth: 1, Stall: time.Microsecond})
	in.BeforeSweep(0)
	in.BeforeSweep(0)
	counts := in.Counts()
	if counts["sweep-delay"] != 2 {
		t.Errorf("Counts = %v", counts)
	}
	if Kind(99).String() == "" || TaskPanic.String() != "task-panic" {
		t.Error("Kind.String broken")
	}
}
