package harness

import (
	"fmt"
	"strings"

	"robustconf/internal/sim"
	"robustconf/internal/workload"
)

// Ablations quantifies the design choices DESIGN.md calls out, by switching
// individual mechanisms off in the cost model and re-running the FP-Tree
// read-update scenario at the largest system size. Each row reports the
// throughput with the mechanism on, off, and the resulting factor.
func Ablations() (string, error) {
	baseOpt, err := OptSize(sim.KindFPTree, workload.A)
	if err != nil {
		return "", err
	}
	type ablation struct {
		name     string
		scenario sim.Scenario
		mutate   func(*sim.Params)
	}
	base := sim.Scenario{
		Kind: sim.KindFPTree, Mix: workload.A,
		Strategy: sim.StratConfigured, Threads: 384, OptDomainSize: baseOpt,
	}
	rows := []ablation{
		{
			name:     "NUMA-aware slot assignment",
			scenario: base,
			mutate: func(p *sim.Params) {
				// Without locality-aware slots every delegated message
				// fully stalls the worker and crosses sockets both ways.
				p.MsgTransferDiscount = 1.0
				p.MsgBytes *= 2
			},
		},
		{
			name:     "response batching (sweep answers ≤15 clients)",
			scenario: base,
			mutate: func(p *sim.Params) {
				// One response line per task instead of one per sweep.
				p.MsgBytes += 64
				p.DelegActiveNs += 25
			},
		},
		{
			name:     "HTM retry budget (8 retries vs none)",
			scenario: base,
			mutate: func(p *sim.Params) {
				// No retries: every abort goes straight to the global
				// fallback lock.
				p.HTM.MaxRetries = 0
			},
		},
		{
			name:     "Zipfian hot-set caching",
			scenario: base,
			mutate: func(p *sim.Params) {
				p.HotDataFrac = 0
			},
		},
		{
			name:     "calibrated domains (24) vs whole-socket (48)",
			scenario: base,
			mutate:   nil, // handled via the scenario below
		},
	}

	var b strings.Builder
	fmt.Fprintf(&b, "# Ablations: FP-Tree, read-update, 384 threads, Opt. Configured\n")
	fmt.Fprintf(&b, "%-48s %10s %10s %8s\n", "mechanism", "on MOp/s", "off MOp/s", "factor")
	for _, a := range rows {
		on, err := sim.Run(a.scenario)
		if err != nil {
			return "", err
		}
		off := a.scenario
		if a.mutate != nil {
			p := sim.DefaultParams()
			a.mutate(&p)
			off.Params = &p
		} else {
			off.OptDomainSize = 48
		}
		offRes, err := sim.Run(off)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "%-48s %10.1f %10.1f %7.2fx\n",
			a.name, on.ThroughputMOps, offRes.ThroughputMOps,
			on.ThroughputMOps/offRes.ThroughputMOps)
	}
	return b.String(), nil
}
