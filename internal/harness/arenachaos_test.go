package harness

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"robustconf/internal/core"
	"robustconf/internal/faultinject"
	"robustconf/internal/metrics"
	"robustconf/internal/obs"
	"robustconf/internal/topology"
	"robustconf/internal/wal"
)

// TestChaosWALArenaGoldenEquality is the durability gate for per-worker
// batch arenas (DESIGN.md §14): with Config.Arena enabled the WAL's record
// staging lives in arena memory that is recycled at every sweep-batch
// boundary, reset at every checkpoint and discarded on every crash
// recovery — and the crash-storm runs must still converge to a final state
// byte-equal to the crash-free run of the same seed. A divergence here
// means recycled arena bytes leaked into a durable record (reset too
// early) or a committed record was lost with its arena (discard too
// eagerly). The commit-kill and mixed-storm schedules are the sharp ones:
// they crash workers while staged records sit in arena memory, so recovery
// must discard that memory and rebuild purely from the on-disk log.
func TestChaosWALArenaGoldenEquality(t *testing.T) {
	sessions, ops, seeds, div := walChaosScale(t)
	schedules := WALChaosSchedules()
	storm := []ChaosSchedule{schedules[1], schedules[3]} // wal-kill-commit, wal-mixed
	sawRecovery := false
	for _, sched := range storm {
		sched := sched.Scaled(div)
		for _, seed := range seeds {
			r, err := RunWALChaosArena(t.TempDir(), sched, seed, sessions, ops, wal.FsyncBatch)
			if err != nil {
				t.Fatalf("%s/seed %d: %v", sched.Name, seed, err)
			}
			t.Logf("%v arena-resets=%d arena-discards=%d", r, r.ArenaResets, r.ArenaDiscards)
			if !r.Equal() {
				t.Errorf("%s/seed %d: arena-backed faulted state diverged from golden (hash %x, golden %x)",
					sched.Name, seed, r.Hash, r.Golden)
			}
			if r.Ops != sessions*ops {
				t.Errorf("%s/seed %d: only %d of %d ops committed", sched.Name, seed, r.Ops, sessions*ops)
			}
			if r.ArenaResets == 0 {
				t.Errorf("%s/seed %d: arenas enabled but never recycled; staging never drew from them", sched.Name, seed)
			}
			if r.Recoveries > 0 {
				sawRecovery = true
				if r.ArenaDiscards == 0 {
					t.Errorf("%s/seed %d: %d recoveries ran but no arena was discarded", sched.Name, seed, r.Recoveries)
				}
			}
		}
	}
	if !sawRecovery {
		t.Error("no schedule triggered a recovery; the arena discard-on-recovery path was never exercised")
	}
}

// TestChaosWALArenaResetVsBypassReads races every arena lifecycle edge —
// sweep-boundary recycling, checkpoint truncation under the gate, crash
// discard-and-replay — against validated bypass reads on a Bw-Tree-backed
// durable structure. Arena memory only ever backs WAL staging, never the
// structure itself, so a bypass read must either validate against live
// (non-recycled) state or fail validation and fall back to delegation; it
// must never observe recycled bytes. The pair encoding makes a violation
// visible as a torn read, and the race detector (`go test -race`, run by
// make verify) pins the memory-ordering side: no reset may race a read
// that could still reach the recycled allocation.
func TestChaosWALArenaResetVsBypassReads(t *testing.T) {
	const pairs = 1 << 9
	writes, readers := 3000, 3
	seeds := []int64{1, 7}
	if testing.Short() {
		writes, seeds = 1000, []int64{1}
	}
	m, err := topology.Restricted(1)
	if err != nil {
		t.Fatal(err)
	}

	for _, seed := range seeds {
		tree := NewWALBwTree()
		for k := uint64(0); k < pairs; k++ {
			tree.Set(k, 0)
			tree.Set(k+pairs, 0)
		}
		injector := faultinject.New(seed,
			faultinject.Rule{Kind: faultinject.WorkerKill, Worker: -1, EveryNth: 170},
			faultinject.Rule{Kind: faultinject.WALKillCommit, Worker: -1, EveryNth: 70},
			faultinject.Rule{Kind: faultinject.WALTornTail, Worker: -1, EveryNth: 90},
		)
		observer := obs.New(obs.Options{})
		cfg := core.Config{
			Machine:      m,
			Domains:      []core.DomainSpec{{Name: "a0", CPUs: topology.Range(0, 2), RestartBudget: 1 << 20}},
			Assignment:   map[string]int{"wtree": 0},
			ReadPolicies: map[string]core.ReadPolicy{"wtree": core.ReadBypass},
			FaultHook:    injector,
			Faults:       &metrics.FaultCounters{},
			Obs:          observer,
			// A short checkpoint cadence keeps the quiescence gate's write
			// side cycling against the lazily-held read side, so checkpoints
			// run adjacent to (and must stay ordered against) the owner's
			// sweep-boundary arena recycles.
			WAL:   core.WALConfig{Dir: t.TempDir(), Fsync: wal.FsyncBatch, CheckpointEvery: 20 * time.Millisecond},
			Arena: core.ArenaConfig{Enabled: true},
		}
		rt, err := core.Start(cfg, map[string]any{"wtree": tree})
		if err != nil {
			t.Fatal(err)
		}
		if got := rt.EffectiveReadPolicy("wtree"); got != core.ReadBypass {
			t.Fatalf("seed %d: Bw-Tree wrapper should arm bypass, effective policy %v", seed, got)
		}

		var done atomic.Bool
		var torn, readsDone atomic.Uint64
		var wg sync.WaitGroup
		for r := 0; r < readers; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				s, err := rt.NewSession(r%m.LogicalCPUs(), 2)
				if err != nil {
					t.Error(err)
					return
				}
				defer s.Close()
				rng := rand.New(rand.NewSource(seed<<8 | int64(r)))
				for !done.Load() {
					k := uint64(rng.Intn(pairs))
					res, err := s.SubmitRead(core.Task{Structure: "wtree", Op: func(ds any) any {
						wt := ds.(*WALTree)
						v1, _ := wt.Get(k)
						v2, _ := wt.Get(k + pairs)
						return [2]uint64{v1, v2}
					}})
					readsDone.Add(1)
					if err != nil {
						continue // typed failure under chaos; resolution is what counts
					}
					pair := res.([2]uint64)
					if pair[0] != pair[1] {
						torn.Add(1)
					}
				}
			}(r)
		}

		ws, err := rt.NewSession(0, 4)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(seed))
		committed := 0
		for i := 0; i < writes; i++ {
			g := uint64(i + 1)
			k := uint64(rng.Intn(pairs))
			task := core.Task{
				Structure: "wtree",
				Op: func(ds any) any {
					wt := ds.(*WALTree)
					wt.Set(k, g)
					wt.Set(k+pairs, g)
					return g
				},
				Log: func(dst []byte) []byte { return AppendWALPair(dst, k, k+pairs, g) },
			}
			if _, err := ws.Invoke(task); err == nil {
				committed++
			}
			// A failed pair write crashed before its group commit; recovery
			// wipes both halves together, so the pair invariant holds
			// without a retry.
		}
		done.Store(true)
		wg.Wait()
		_ = ws.Close()
		rt.Stop()

		if n := torn.Load(); n > 0 {
			t.Errorf("seed %d: %d torn pair reads observed (of %d reads)", seed, n, readsDone.Load())
		}
		finalTorn := 0
		tree.Scan(func(k, v uint64) bool {
			if k < pairs {
				if v2, ok := tree.Get(k + pairs); !ok || v2 != v {
					finalTorn++
				}
			}
			return true
		})
		if finalTorn > 0 {
			t.Errorf("seed %d: %d pairs torn in the final recovered state", seed, finalTorn)
		}
		if committed == 0 {
			t.Errorf("seed %d: no pair write ever committed", seed)
		}

		var hits, fallbacks uint64
		var resets, discards int64
		for _, d := range observer.Snapshot().Domains {
			hits += d.BypassHits
			fallbacks += d.BypassFallbacks
			resets += d.ArenaResets
			discards += d.ArenaDiscards
		}
		t.Logf("seed %d: writes=%d committed=%d reads=%d bypass-hits=%d fallbacks=%d arena-resets=%d arena-discards=%d injected=%v",
			seed, writes, committed, readsDone.Load(), hits, fallbacks, resets, discards, injector.Counts())
		if hits == 0 {
			t.Errorf("seed %d: no bypass read ever validated; the racing path was not exercised", seed)
		}
		if resets == 0 {
			t.Errorf("seed %d: arenas enabled but never reset; staging never drew from them", seed)
		}
	}
}
