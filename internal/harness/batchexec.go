package harness

import (
	"fmt"
	"strings"
	"time"

	"robustconf/internal/core"
	"robustconf/internal/delegation"
	"robustconf/internal/index"
	"robustconf/internal/index/btree"
	"robustconf/internal/index/bwtree"
	"robustconf/internal/index/fptree"
	"robustconf/internal/index/hashmap"
	"robustconf/internal/topology"
	"robustconf/internal/workload"
)

// BatchExecAblation is the real-execution ablation of the interleaved-
// execution axis (DESIGN.md §15): the same seeded YCSB read-update stream
// runs against each index through pipelined typed ops (Session.SubmitKV in
// bursts of the paper's 14), once with serial sweeps and once per
// interleaved group width. A single-worker domain concentrates the burst in
// one buffer, so a sweep pass claims the whole burst and the kernel gets
// its full group to overlap — the configuration the axis is for. Rows
// report measured per-op latency on this host; the factor column is the
// speed-up over the serial schedule of the identical op stream.
func BatchExecAblation() (string, error) {
	const records = 100_000
	const ops = 56_000 // a multiple of the burst: every pass is full
	const burst = 14
	const seed = int64(1)

	m, err := topology.Restricted(1)
	if err != nil {
		return "", err
	}
	builders := []struct {
		name  string
		build func() index.Index
	}{
		{"Hash Map", func() index.Index { return hashmap.New() }},
		{"B-Tree", func() index.Index { return btree.New() }},
		{"FP-Tree", func() index.Index { return fptree.New() }},
		{"BW-Tree", func() index.Index { return bwtree.New() }},
	}

	run := func(build func() index.Index, width int) (time.Duration, error) {
		idx := build()
		for _, k := range workload.LoadKeys(records) {
			idx.Insert(k, k, nil)
		}
		cfg := core.Config{
			Machine:    m,
			Domains:    []core.DomainSpec{{Name: "d0", CPUs: topology.Range(0, 1)}},
			Assignment: map[string]int{"ycsb": 0},
		}
		if width >= 2 {
			cfg.BatchExec = core.BatchExecConfig{Enabled: true, Width: width}
		}
		rt, err := core.Start(cfg, map[string]any{"ycsb": idx})
		if err != nil {
			return 0, err
		}
		defer rt.Stop()
		session, err := rt.NewSession(0, burst)
		if err != nil {
			return 0, err
		}
		defer session.Close()
		gen, err := workload.NewGenerator(workload.A, records, 0, seed)
		if err != nil {
			return 0, err
		}
		var futs [burst]*core.AsyncFuture
		start := time.Now()
		for done := 0; done < ops; done += burst {
			for i := 0; i < burst; i++ {
				op := gen.Next()
				kind := delegation.KVGet
				switch op.Type {
				case workload.OpUpdate:
					kind = delegation.KVUpdate
				case workload.OpInsert:
					kind = delegation.KVInsert
				}
				futs[i], err = session.SubmitKV("ycsb", kind, op.Key, op.Val)
				if err != nil {
					return 0, err
				}
			}
			for i := 0; i < burst; i++ {
				if _, _, err := futs[i].WaitKV(); err != nil {
					return 0, err
				}
			}
		}
		return time.Since(start), nil
	}

	var b strings.Builder
	fmt.Fprintf(&b, "# Batch-exec ablation: %d records, %d typed ops in bursts of %d, one client, 1-worker domain\n",
		records, ops, burst)
	fmt.Fprintf(&b, "%-24s %12s %12s %10s\n", "structure / schedule", "ns/op", "ops/s", "vs serial")
	for _, bl := range builders {
		serial, err := run(bl.build, 0)
		if err != nil {
			return "", fmt.Errorf("%s serial: %w", bl.name, err)
		}
		serialNs := float64(serial.Nanoseconds()) / ops
		row := func(label string, dur time.Duration) {
			ns := float64(dur.Nanoseconds()) / ops
			fmt.Fprintf(&b, "%-24s %12.0f %12.0f %9.2fx\n",
				bl.name+" "+label, ns, float64(ops)/dur.Seconds(), serialNs/ns)
		}
		row("serial", serial)
		for _, w := range []int{4, 8, 15} {
			dur, err := run(bl.build, w)
			if err != nil {
				return "", fmt.Errorf("%s width %d: %w", bl.name, w, err)
			}
			row(fmt.Sprintf("width=%d", w), dur)
		}
		b.WriteByte('\n')
	}
	b.WriteString("(vs serial > 1 means the interleaved schedule is faster on the identical op stream)\n")
	return b.String(), nil
}
