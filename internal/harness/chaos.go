package harness

// Chaos mode: drive the *real* runtime (not the simulator) under seeded
// fault schedules and verify the fault-tolerance contract — every submitted
// task's future completes, with a value or a typed error, under task
// panics, worker kills, worker stalls, delayed sweeps and the stop/post
// race. This is the executable form of the failure model documented in
// DESIGN.md ("Failure model & shutdown semantics").

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"robustconf/internal/core"
	"robustconf/internal/delegation"
	"robustconf/internal/faultinject"
	"robustconf/internal/index/btree"
	"robustconf/internal/metrics"
	"robustconf/internal/obs"
	"robustconf/internal/topology"
)

// ChaosOptions attaches shared infrastructure to chaos runs.
type ChaosOptions struct {
	// Observer, when non-nil, is attached to every chaos runtime so a live
	// endpoint (or the final report) can watch the storm.
	Observer *obs.Observer
	// Faults, when non-nil, receives the runs' fault counters. Nil gives
	// each run a private set — chaos never touches the process-global
	// metrics.Faults, so concurrent suites don't bleed into each other.
	Faults *metrics.FaultCounters
}

// ChaosSchedule names a seeded fault schedule for one chaos run.
type ChaosSchedule struct {
	Name  string
	Rules []faultinject.Rule
	// StopMidway shuts the runtime down while clients are still
	// submitting, exercising the seal/rescue path (the stop/post race).
	StopMidway bool
}

// ChaosSchedules returns the standard schedule set the chaos suite runs:
// one per fault class plus a mixed storm.
func ChaosSchedules() []ChaosSchedule {
	return []ChaosSchedule{
		{
			Name: "task-panic",
			Rules: []faultinject.Rule{
				{Kind: faultinject.TaskPanic, Worker: -1, Probability: 0.02},
			},
		},
		{
			// The injector mutex serializes hook calls, so a short chaos run
			// sees on the order of a thousand sweep draws in total; the
			// counters below make each fault class fire a few times per run.
			Name: "worker-kill",
			Rules: []faultinject.Rule{
				{Kind: faultinject.WorkerKill, Worker: -1, EveryNth: 300},
			},
		},
		{
			Name: "worker-stall",
			Rules: []faultinject.Rule{
				{Kind: faultinject.WorkerStall, Worker: -1, EveryNth: 150, Stall: 200 * time.Microsecond},
			},
		},
		{
			Name: "sweep-delay",
			Rules: []faultinject.Rule{
				{Kind: faultinject.SweepDelay, Worker: -1, Probability: 0.01, Stall: 200 * time.Microsecond},
			},
		},
		{
			Name:       "stop-post",
			StopMidway: true,
		},
		{
			Name:       "mixed",
			StopMidway: true,
			Rules: []faultinject.Rule{
				{Kind: faultinject.TaskPanic, Worker: -1, Probability: 0.01},
				{Kind: faultinject.WorkerKill, Worker: -1, EveryNth: 500},
				{Kind: faultinject.WorkerStall, Worker: -1, EveryNth: 250, Stall: 200 * time.Microsecond},
			},
		},
	}
}

// Scaled returns a copy of the schedule with every deterministic EveryNth
// counter divided by div (floored at 1). Shrunk -short runs see an order of
// magnitude fewer sweep opportunities than the full-size suite, so the
// full-size thresholds would make deterministic kill rules never fire —
// scaling them down keeps every armed crash kind firing in every domain.
func (s ChaosSchedule) Scaled(div uint64) ChaosSchedule {
	if div <= 1 {
		return s
	}
	out := s
	out.Rules = append([]faultinject.Rule(nil), s.Rules...)
	for i := range out.Rules {
		if n := out.Rules[i].EveryNth; n > 0 {
			if n /= div; n < 1 {
				n = 1
			}
			out.Rules[i].EveryNth = n
		}
	}
	return out
}

// ChaosScheduleNamed returns the named schedule.
func ChaosScheduleNamed(name string) (ChaosSchedule, error) {
	var names []string
	for _, s := range ChaosSchedules() {
		if s.Name == name {
			return s, nil
		}
		names = append(names, s.Name)
	}
	return ChaosSchedule{}, fmt.Errorf("harness: unknown chaos schedule %q (have %s)", name, strings.Join(names, ", "))
}

// ChaosReport summarises one chaos run.
type ChaosReport struct {
	Schedule  string
	Seed      int64
	Submitted int // tasks whose futures were obtained
	Values    int // futures completed with a value
	Errors    int // futures completed with a typed error
	Hangs     int // futures that never completed within the deadline — must be 0
	Panics    uint64
	Restarts  uint64
	Rescued   uint64
	Injected  map[string]uint64
}

func (r ChaosReport) String() string {
	return fmt.Sprintf("chaos %-12s seed=%-3d submitted=%-6d values=%-6d errors=%-5d hangs=%d  worker-panics=%d restarts=%d rescued=%d injected=%v",
		r.Schedule, r.Seed, r.Submitted, r.Values, r.Errors, r.Hangs, r.Panics, r.Restarts, r.Rescued, r.Injected)
}

// Complete reports whether every submitted future resolved.
func (r ChaosReport) Complete() bool { return r.Hangs == 0 && r.Submitted == r.Values+r.Errors }

// RunChaos executes one chaos run: sessions×tasksPerSession tasks submitted
// by concurrent clients against a two-domain runtime with the schedule's
// faults injected, every future then awaited under deadline. The returned
// report counts completions; Hangs > 0 or an unexpected error type is a
// fault-tolerance bug.
func RunChaos(sched ChaosSchedule, seed int64, sessions, tasksPerSession int) (ChaosReport, error) {
	return RunChaosOpts(sched, seed, sessions, tasksPerSession, ChaosOptions{})
}

// RunChaosOpts is RunChaos with shared observability and fault counters.
func RunChaosOpts(sched ChaosSchedule, seed int64, sessions, tasksPerSession int, opts ChaosOptions) (ChaosReport, error) {
	faults := opts.Faults
	if faults == nil {
		faults = &metrics.FaultCounters{}
	}
	// The counter set may be shared across runs (robustsim passes one per
	// suite); report this run's contribution as a delta.
	before := faults.Snapshot()
	m, err := topology.Restricted(1)
	if err != nil {
		return ChaosReport{}, err
	}
	// A generous restart budget: chaos injects far more kills than a
	// production domain should tolerate, and the suite's subject is future
	// completion, not budget policy (fault_test covers exhaustion).
	cfg := core.Config{
		Machine: m,
		Domains: []core.DomainSpec{
			{Name: "c0", CPUs: topology.Range(0, 4), RestartBudget: 1 << 20},
			{Name: "c1", CPUs: topology.Range(4, 8), RestartBudget: 1 << 20},
		},
		Assignment: map[string]int{"tree": 0, "tree2": 1},
		Faults:     faults,
		Obs:        opts.Observer,
	}
	if len(sched.Rules) > 0 {
		cfg.FaultHook = faultinject.New(seed, sched.Rules...)
	}
	rt, err := core.Start(cfg, map[string]any{"tree": btree.New(), "tree2": btree.New()})
	if err != nil {
		return ChaosReport{}, err
	}

	type futRec struct {
		fut *delegation.Future
	}
	var (
		mu   sync.Mutex
		futs []futRec
	)
	var submitted atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < sessions; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			s, err := rt.NewSession(g%8, 4)
			if err != nil {
				return
			}
			structure := "tree"
			if g%2 == 1 {
				structure = "tree2"
			}
			var local []futRec
			for i := 0; i < tasksPerSession; i++ {
				k := uint64(g*tasksPerSession + i)
				f, err := s.Submit(core.Task{Structure: structure, Op: func(ds any) any {
					ds.(*btree.Tree).Insert(k, k, nil)
					return k
				}})
				if err != nil {
					continue // routing/acquisition error: no future to track
				}
				submitted.Add(1)
				local = append(local, futRec{fut: f})
			}
			mu.Lock()
			futs = append(futs, local...)
			mu.Unlock()
			// Close() may legitimately report abandoned tasks under chaos;
			// the per-future accounting below is the assertion that counts.
			_ = s.Close()
		}(g)
	}

	if sched.StopMidway {
		// Let some traffic through, then shut down under it.
		time.Sleep(2 * time.Millisecond)
		rt.Stop()
	}
	wg.Wait()
	if !sched.StopMidway {
		rt.Stop()
	}

	report := ChaosReport{
		Schedule:  sched.Name,
		Seed:      seed,
		Submitted: int(submitted.Load()),
	}
	for _, fr := range futs {
		v, err := fr.fut.WaitTimeout(10 * time.Second)
		switch {
		case errors.Is(err, delegation.ErrWaitTimeout):
			report.Hangs++
		case err != nil:
			var pe delegation.PanicError
			if !errors.Is(err, delegation.ErrWorkerStopped) && !errors.As(err, &pe) {
				return report, fmt.Errorf("harness: chaos %s: untyped future error %v", sched.Name, err)
			}
			report.Errors++
		default:
			_ = v
			report.Values++
		}
	}
	snap := faults.Snapshot()
	report.Panics = snap.WorkerPanics - before.WorkerPanics
	report.Restarts = snap.WorkerRestarts - before.WorkerRestarts
	for _, st := range rt.Stats() {
		report.Rescued += st.Rescued
	}
	if cfg.FaultHook != nil {
		report.Injected = cfg.FaultHook.(*faultinject.Injector).Counts()
	}
	return report, nil
}

// RunChaosAll runs every standard schedule and renders the reports,
// returning an error when any run left a future hanging.
func RunChaosAll(seed int64, sessions, tasksPerSession int) (string, error) {
	return RunChaosAllOpts(seed, sessions, tasksPerSession, ChaosOptions{})
}

// RunChaosAllOpts is RunChaosAll with shared observability and fault
// counters: one observer and one counter set accumulate across the whole
// schedule sweep (each run still reports its own delta).
func RunChaosAllOpts(seed int64, sessions, tasksPerSession int, opts ChaosOptions) (string, error) {
	if opts.Faults == nil {
		opts.Faults = &metrics.FaultCounters{}
	}
	var b strings.Builder
	for _, sched := range ChaosSchedules() {
		r, err := RunChaosOpts(sched, seed, sessions, tasksPerSession, opts)
		if err != nil {
			return b.String(), err
		}
		fmt.Fprintln(&b, r)
		if !r.Complete() {
			return b.String(), fmt.Errorf("harness: chaos %s: %d futures hung (submitted %d, resolved %d)",
				sched.Name, r.Hangs, r.Submitted, r.Values+r.Errors)
		}
	}
	return b.String(), nil
}
