package harness

import (
	"testing"
)

// chaosScale shrinks the suite under -short (the tier-2 `make verify` runs
// it full-size with -race). The returned divisor scales the schedules'
// deterministic EveryNth counters down to match (see ChaosSchedule.Scaled):
// a shrunk run sees ~8× fewer sweeps, and unscaled thresholds would let the
// kill rules never fire in either domain.
func chaosScale(t *testing.T) (sessions, tasks int, seeds []int64, div uint64) {
	if testing.Short() {
		return 4, 100, []int64{1}, 8
	}
	return 6, 300, []int64{1, 7, 42}, 1
}

// TestChaosAllSchedules is the acceptance gate of the fault-tolerance
// layer: for every seeded fault schedule, 100% of submitted futures must
// complete — with a value or a typed error — within the deadline. A hang
// is a protocol bug, not a flake.
func TestChaosAllSchedules(t *testing.T) {
	sessions, tasks, seeds, div := chaosScale(t)
	for _, sched := range ChaosSchedules() {
		sched := sched.Scaled(div)
		for _, seed := range seeds {
			r, err := RunChaos(sched, seed, sessions, tasks)
			if err != nil {
				t.Fatalf("%s/seed %d: %v", sched.Name, seed, err)
			}
			t.Log(r)
			if r.Hangs > 0 {
				t.Errorf("%s/seed %d: %d futures hung", sched.Name, seed, r.Hangs)
			}
			if r.Values+r.Errors != r.Submitted {
				t.Errorf("%s/seed %d: submitted %d but resolved %d",
					sched.Name, seed, r.Submitted, r.Values+r.Errors)
			}
		}
	}
}

// TestChaosWorkerKillRecovers asserts the crash-recovery half of the
// acceptance criterion at the chaos level: under the kill schedule the
// runtime observed panics, respawned workers, and still completed tasks
// with values afterwards.
func TestChaosWorkerKillRecovers(t *testing.T) {
	sessions, tasks, _, div := chaosScale(t)
	sched, err := ChaosScheduleNamed("worker-kill")
	if err != nil {
		t.Fatal(err)
	}
	sched = sched.Scaled(div)
	// Kills are sweep-rate dependent; retry a few seeds until one fires
	// (deterministic per seed, machine-speed dependent across machines).
	for _, seed := range []int64{3, 5, 9, 11} {
		r, runErr := RunChaos(sched, seed, sessions, tasks)
		if runErr != nil {
			t.Fatal(runErr)
		}
		if !r.Complete() {
			t.Fatalf("seed %d: incomplete run: %v", seed, r)
		}
		if r.Panics > 0 {
			if r.Restarts == 0 {
				t.Fatalf("seed %d: %d worker panics but no respawns", seed, r.Panics)
			}
			if r.Values == 0 {
				t.Fatalf("seed %d: no task succeeded despite respawns", seed)
			}
			return
		}
	}
	t.Skip("no kill fired on this machine's sweep rate; covered by core fault tests")
}

// TestChaosStopPostNoDangle pins the stop/post race at the system level:
// shutting down mid-traffic must resolve every future.
func TestChaosStopPostNoDangle(t *testing.T) {
	sessions, tasks, seeds, _ := chaosScale(t)
	sched, err := ChaosScheduleNamed("stop-post")
	if err != nil {
		t.Fatal(err)
	}
	for _, seed := range seeds {
		r, err := RunChaos(sched, seed, sessions, tasks)
		if err != nil {
			t.Fatal(err)
		}
		if !r.Complete() {
			t.Fatalf("seed %d: %v", seed, r)
		}
		if r.Errors == 0 && r.Rescued == 0 {
			// Shutdown beat all submitters: legal but means the race was
			// not exercised; still a pass, the schedule runs repeatedly
			// across seeds.
			t.Logf("seed %d: shutdown raced no submissions (%v)", seed, r)
		}
	}
}

// TestRunChaosAllRenders smoke-tests the robustsim -chaos entry point.
func TestRunChaosAllRenders(t *testing.T) {
	if testing.Short() {
		t.Skip("full schedule sweep skipped in -short")
	}
	out, err := RunChaosAll(1, 4, 100)
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if out == "" {
		t.Error("empty chaos report")
	}
}
