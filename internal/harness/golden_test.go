package harness

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// The simulator is fully deterministic, so every experiment's rendered
// output is stable byte-for-byte. These golden tests pin the calibrated
// model: any accidental change to a cost constant, a layout rule or the
// renderer shows up as a diff against testdata/<exp>.golden.
//
// Regenerate after an intentional recalibration with:
//
//	go test ./internal/harness -run TestGolden -update

var update = flag.Bool("update", false, "rewrite golden files")

// Experiments that measure real execution on the host rather than the
// deterministic simulator; their output carries wall-clock timings and
// cannot be pinned byte-for-byte. Covered by their own tests instead
// (txn-modes: internal/oltp/modes_test.go + BenchmarkAblationTxnMode;
// read-policy: internal/core read-path tests + BenchmarkReadBypass;
// batch-exec: delegation/core batch tests + BenchmarkAblationBatchExec).
var measured = map[string]bool{"txn-modes": true, "read-policy": true, "batch-exec": true}

func TestGoldenExperiments(t *testing.T) {
	for _, name := range Experiments {
		name := name
		t.Run(name, func(t *testing.T) {
			if measured[name] {
				t.Skip("measured on the host, not deterministic")
			}
			out, err := Run(name)
			if err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", name+".golden")
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(out), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update): %v", err)
			}
			if string(want) != out {
				t.Errorf("%s output drifted from golden file; if the model was recalibrated intentionally, re-run with -update.\n--- got ---\n%.600s\n--- want ---\n%.600s",
					name, out, want)
			}
		})
	}
}
