// Package harness reproduces every table and figure of the paper's
// evaluation (Section 7) on the simulated reference machine. Each Figure*
// function returns the same rows/series the paper plots; RunAll renders
// them as text for EXPERIMENTS.md and the robustbench tool.
//
// Methodology follows the paper: every measurement point is taken as the
// median of seven executions and checked against the CV ≤ 5% reliability
// criterion (the simulator is deterministic, so CV is 0, but the harness
// keeps the paper's procedure so a nondeterministic measure could be
// substituted).
package harness

import (
	"fmt"
	"sort"
	"strings"

	"robustconf/internal/config"
	"robustconf/internal/metrics"
	"robustconf/internal/sim"
	"robustconf/internal/workload"
)

// Executions per measurement point (the paper uses seven).
const Executions = 7

// SystemSizes is the x-axis of the scaling figures: 1–8 sockets.
var SystemSizes = []int{48, 96, 144, 192, 240, 288, 336, 384}

// point measures one scenario Executions times and returns the median
// throughput, verifying the reliability criterion.
func point(s sim.Scenario) (sim.Result, float64, error) {
	var sample metrics.Sample
	var last sim.Result
	for i := 0; i < Executions; i++ {
		r, err := sim.Run(s)
		if err != nil {
			return sim.Result{}, 0, err
		}
		sample.Add(r.ThroughputMOps)
		last = r
	}
	if !metrics.Reliable(sample.Values) {
		return sim.Result{}, 0, fmt.Errorf("harness: unreliable measurement (CV %.3f > %.2f)", sample.CV(), metrics.ReliableCV)
	}
	return last, sample.Median(), nil
}

// OptimalSizes returns the calibrated Table 2 sizes, memoised.
var optimalSizes map[sim.StructureKind]map[string]int

// OptSize returns the calibrated optimal domain size for (kind, mix).
func OptSize(kind sim.StructureKind, mix workload.Mix) (int, error) {
	if optimalSizes == nil {
		t2, err := config.Table2(nil)
		if err != nil {
			return 0, err
		}
		optimalSizes = t2
	}
	s, ok := optimalSizes[kind][mix.Name]
	if !ok || s == 0 {
		return 0, fmt.Errorf("harness: no calibrated size for %s/%s", kind.Name(), mix.Name)
	}
	return s, nil
}

// scenario builds a Scenario with the calibrated size for Opt. Configured.
func scenario(kind sim.StructureKind, mix workload.Mix, strat sim.Strategy, threads int) (sim.Scenario, error) {
	s := sim.Scenario{Kind: kind, Mix: mix, Strategy: strat, Threads: threads}
	if strat == sim.StratConfigured {
		opt, err := OptSize(kind, mix)
		if err != nil {
			return sim.Scenario{}, err
		}
		s.OptDomainSize = opt
	}
	return s, nil
}

// Figure1 reproduces the teaser: FP-Tree throughput at 8 sockets under the
// three YCSB workloads for Opt. Configured vs SN-NUMA, SN-Thread and SE.
func Figure1() (*metrics.Figure, error) {
	fig := metrics.NewFigure("Figure 1: FP-Tree on 8 sockets, MOp/s", "workload", "MOp/s")
	for wi, mix := range []workload.Mix{workload.A, workload.D, workload.C} {
		for _, strat := range []sim.Strategy{sim.StratConfigured, sim.StratSNNUMA, sim.StratSNThread, sim.StratSE} {
			sc, err := scenario(sim.KindFPTree, mix, strat, 384)
			if err != nil {
				return nil, err
			}
			_, thr, err := point(sc)
			if err != nil {
				return nil, err
			}
			fig.SeriesNamed(strat.Name()).Add(float64(wi), thr)
		}
	}
	return fig, nil
}

// Table2 reproduces the calibrated optimal domain sizes.
func Table2() (string, error) {
	t2, err := config.Table2(nil)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "# Table 2: optimal virtual-domain sizes (no. of workers)\n")
	fmt.Fprintf(&b, "%-10s %12s %12s %12s\n", "Workload", "Read-Only", "Read-Update", "Read-Insert")
	order := []sim.StructureKind{sim.KindBTree, sim.KindFPTree, sim.KindBWTree, sim.KindHashMap}
	for _, kind := range order {
		fmt.Fprintf(&b, "%-10s %12d %12d %12d\n", kind.Name(),
			t2[kind][workload.C.Name], t2[kind][workload.A.Name], t2[kind][workload.D.Name])
	}
	return b.String(), nil
}

// Figure6 reproduces the full cross of structures × workloads at 8 sockets
// for the five strategies.
func Figure6() (map[string]*metrics.Figure, error) {
	out := map[string]*metrics.Figure{}
	for _, mix := range []workload.Mix{workload.A, workload.D, workload.C} {
		fig := metrics.NewFigure(fmt.Sprintf("Figure 6 (%s): throughput at 8 sockets", mix.Name), "structure", "MOp/s")
		for ki, kind := range []sim.StructureKind{sim.KindFPTree, sim.KindBWTree, sim.KindHashMap, sim.KindBTree} {
			for _, strat := range sim.AllStrategies {
				sc, err := scenario(kind, mix, strat, 384)
				if err != nil {
					return nil, err
				}
				_, thr, err := point(sc)
				if err != nil {
					return nil, err
				}
				fig.SeriesNamed(strat.Name()).Add(float64(ki), thr)
			}
		}
		out[mix.Name] = fig
	}
	return out, nil
}

// scalingFigure sweeps system sizes for one workload across all structures.
func scalingFigure(title string, mix workload.Mix) (map[string]*metrics.Figure, error) {
	out := map[string]*metrics.Figure{}
	for _, kind := range []sim.StructureKind{sim.KindFPTree, sim.KindBWTree, sim.KindHashMap, sim.KindBTree} {
		fig := metrics.NewFigure(fmt.Sprintf("%s — %s", title, kind.Name()), "threads", "MOp/s")
		for _, strat := range sim.AllStrategies {
			for _, threads := range SystemSizes {
				sc, err := scenario(kind, mix, strat, threads)
				if err != nil {
					return nil, err
				}
				_, thr, err := point(sc)
				if err != nil {
					return nil, err
				}
				fig.SeriesNamed(strat.Name()).Add(float64(threads), thr)
			}
		}
		out[kind.Name()] = fig
	}
	return out, nil
}

// Figure7 reproduces read-update throughput across system sizes.
func Figure7() (map[string]*metrics.Figure, error) {
	return scalingFigure("Figure 7: read-update scaling", workload.A)
}

// Figure10 reproduces read-only throughput across system sizes.
func Figure10() (map[string]*metrics.Figure, error) {
	return scalingFigure("Figure 10: read-only scaling", workload.C)
}

// Figure8 reproduces the FP-Tree hardware metrics under read-update:
// HTM abort ratio (left) and L2 misses per op (right) across system sizes.
func Figure8() (abort, l2 *metrics.Figure, err error) {
	abort = metrics.NewFigure("Figure 8 (left): FP-Tree HTM abort ratio, read-update", "threads", "abort ratio")
	l2 = metrics.NewFigure("Figure 8 (right): FP-Tree L2 misses/op, read-update", "threads", "L2 misses/op")
	for _, strat := range sim.AllStrategies {
		for _, threads := range SystemSizes {
			sc, e := scenario(sim.KindFPTree, workload.A, strat, threads)
			if e != nil {
				return nil, nil, e
			}
			r, _, e := point(sc)
			if e != nil {
				return nil, nil, e
			}
			abort.SeriesNamed(strat.Name()).Add(float64(threads), r.AbortRatio)
			l2.SeriesNamed(strat.Name()).Add(float64(threads), r.L2MissesPerOp)
		}
	}
	return abort, l2, nil
}

// Figure9 reproduces the BW-Tree interconnect communication volume (GB)
// under read-update across system sizes.
func Figure9() (*metrics.Figure, error) {
	fig := metrics.NewFigure("Figure 9: BW-Tree interconnect volume, read-update", "threads", "GB")
	for _, strat := range sim.AllStrategies {
		for _, threads := range SystemSizes {
			sc, err := scenario(sim.KindBWTree, workload.A, strat, threads)
			if err != nil {
				return nil, err
			}
			r, _, err := point(sc)
			if err != nil {
				return nil, err
			}
			fig.SeriesNamed(strat.Name()).Add(float64(threads), r.InterconnectGB)
		}
	}
	return fig, nil
}

// Figure11 reproduces aggregate throughput for 16–1024 index instances
// (application size) under read-update for FP-Tree and Hash Map.
func Figure11() (map[string]*metrics.Figure, error) {
	counts := []int{16, 32, 64, 128, 256, 512, 1024}
	out := map[string]*metrics.Figure{}
	for _, kind := range []sim.StructureKind{sim.KindFPTree, sim.KindHashMap} {
		fig := metrics.NewFigure(fmt.Sprintf("Figure 11: instance sweep — %s", kind.Name()), "indexes", "MOp/s")
		opt, err := OptSize(kind, workload.A)
		if err != nil {
			return nil, err
		}
		for _, strat := range sim.AllStrategies {
			for _, n := range counts {
				sc := sim.Scenario{Kind: kind, Mix: workload.A, Strategy: strat, Threads: 384, Instances: n}
				if strat == sim.StratConfigured {
					sc.OptDomainSize = opt
				}
				_, thr, err := point(sc)
				if err != nil {
					return nil, err
				}
				fig.SeriesNamed(strat.Name()).Add(float64(n), thr)
			}
		}
		out[kind.Name()] = fig
	}
	return out, nil
}

// Figure12Row is one stacked bar of Figure 12: the TMAM cost breakdown per
// operation for a structure/strategy/system-size combination.
type Figure12Row struct {
	Structure string
	Strategy  string
	Sockets   int
	TMAM      metrics.TMAM
}

// Figure12 reproduces the execution cost breakdown (cycles per op) at 2 vs
// 8 sockets under read-update.
func Figure12() ([]Figure12Row, error) {
	var rows []Figure12Row
	for _, kind := range []sim.StructureKind{sim.KindFPTree, sim.KindBWTree, sim.KindHashMap, sim.KindBTree} {
		for _, strat := range sim.AllStrategies {
			for _, sockets := range []int{2, 8} {
				sc, err := scenario(kind, workload.A, strat, sockets*48)
				if err != nil {
					return nil, err
				}
				r, _, err := point(sc)
				if err != nil {
					return nil, err
				}
				rows = append(rows, Figure12Row{
					Structure: kind.Name(),
					Strategy:  strat.Name(),
					Sockets:   sockets,
					TMAM:      r.TMAM,
				})
			}
		}
	}
	return rows, nil
}

// Figure13 reproduces the TPC-C experiment: throughput vs system size at 1%
// remote transactions (left) and vs remote fraction at 384 threads (right).
func Figure13() (left, right *metrics.Figure, err error) {
	left = metrics.NewFigure("Figure 13 (left): TPC-C NO+P, 8 warehouses, 1% remote", "threads", "Ktxn/s")
	right = metrics.NewFigure("Figure 13 (right): TPC-C at 384 threads", "% remote", "Ktxn/s")
	engines := []sim.EngineKind{sim.EngineDelegated, sim.EngineDirectSNNUMA}
	kinds := []sim.StructureKind{sim.KindFPTree, sim.KindBWTree}
	for _, eng := range engines {
		for _, kind := range kinds {
			name := fmt.Sprintf("%s (%s)", eng.Name(), kind.Name())
			for _, threads := range SystemSizes {
				r, e := sim.RunTPCC(sim.TPCCScenario{Engine: eng, Kind: kind, Threads: threads, Warehouses: 8, RemoteFrac: 0.01})
				if e != nil {
					return nil, nil, e
				}
				left.SeriesNamed(name).Add(float64(threads), r.KTxnPerSec)
			}
			for _, rf := range []float64{0, 0.01, 0.15, 0.25, 0.50, 0.75} {
				r, e := sim.RunTPCC(sim.TPCCScenario{Engine: eng, Kind: kind, Threads: 384, Warehouses: 8, RemoteFrac: rf})
				if e != nil {
					return nil, nil, e
				}
				right.SeriesNamed(name).Add(rf*100, r.KTxnPerSec)
			}
		}
	}
	return left, right, nil
}

// RenderFigure12 formats the Figure 12 rows as text.
func RenderFigure12(rows []Figure12Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# Figure 12: cost breakdown, K cycles/op (active | backend | frontend | speculation)\n")
	sort.SliceStable(rows, func(i, j int) bool {
		if rows[i].Structure != rows[j].Structure {
			return rows[i].Structure < rows[j].Structure
		}
		if rows[i].Strategy != rows[j].Strategy {
			return rows[i].Strategy < rows[j].Strategy
		}
		return rows[i].Sockets < rows[j].Sockets
	})
	for _, r := range rows {
		fmt.Fprintf(&b, "%-9s %-16s %d sockets: %8.2f | %8.2f | %8.2f | %8.2f  (total %8.2f)\n",
			r.Structure, r.Strategy, r.Sockets,
			r.TMAM.ActiveCycles/1000, r.TMAM.BackEndStalls/1000,
			r.TMAM.FrontEndStalls/1000, r.TMAM.SpeculationStls/1000, r.TMAM.Total()/1000)
	}
	return b.String()
}

// Experiment names accepted by Run.
var Experiments = []string{"fig1", "table2", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "ablations", "txn-modes", "read-policy", "batch-exec"}

// Run executes one named experiment and renders its result as text.
func Run(name string) (string, error) { return RunFormat(name, "text") }

// RunFormat executes one named experiment rendering either aligned "text"
// or machine-readable "csv" (figures only; tables and breakdowns always
// render as text).
func RunFormat(name, format string) (string, error) {
	if format != "text" && format != "csv" {
		return "", fmt.Errorf("harness: unknown format %q (text, csv)", format)
	}
	render := func(f *metrics.Figure) string {
		if format == "csv" {
			return "# " + f.Title + "\n" + f.CSV()
		}
		return f.Table()
	}
	switch name {
	case "fig1":
		f, err := Figure1()
		if err != nil {
			return "", err
		}
		return render(f) + "\n(x: 0=Read-Update 50/50, 1=Read-Insert 95/5, 2=Read-Only)\n", nil
	case "table2":
		return Table2()
	case "fig6":
		figs, err := Figure6()
		if err != nil {
			return "", err
		}
		var b strings.Builder
		for _, mix := range []workload.Mix{workload.A, workload.D, workload.C} {
			b.WriteString(figs[mix.Name].Table())
			b.WriteString("(x: 0=FP-Tree, 1=BW-Tree, 2=Hash Map, 3=B-Tree)\n\n")
		}
		return b.String(), nil
	case "fig7", "fig10":
		var figs map[string]*metrics.Figure
		var err error
		if name == "fig7" {
			figs, err = Figure7()
		} else {
			figs, err = Figure10()
		}
		if err != nil {
			return "", err
		}
		var b strings.Builder
		for _, kind := range []string{"FP-Tree", "BW-Tree", "Hash Map", "B-Tree"} {
			b.WriteString(render(figs[kind]))
			b.WriteString("\n")
		}
		return b.String(), nil
	case "fig8":
		abort, l2, err := Figure8()
		if err != nil {
			return "", err
		}
		return render(abort) + "\n" + render(l2), nil
	case "fig9":
		f, err := Figure9()
		if err != nil {
			return "", err
		}
		return render(f), nil
	case "fig11":
		figs, err := Figure11()
		if err != nil {
			return "", err
		}
		var b strings.Builder
		for _, kind := range []string{"FP-Tree", "Hash Map"} {
			b.WriteString(render(figs[kind]))
			b.WriteString("\n")
		}
		return b.String(), nil
	case "fig12":
		rows, err := Figure12()
		if err != nil {
			return "", err
		}
		return RenderFigure12(rows), nil
	case "fig13":
		left, right, err := Figure13()
		if err != nil {
			return "", err
		}
		return render(left) + "\n" + render(right), nil
	case "ablations":
		return Ablations()
	case "txn-modes":
		return TxnModes()
	case "read-policy":
		return ReadPolicyAblation()
	case "batch-exec":
		return BatchExecAblation()
	default:
		return "", fmt.Errorf("harness: unknown experiment %q (have %s)", name, strings.Join(Experiments, ", "))
	}
}

// RunAll renders every experiment in order.
func RunAll() (string, error) {
	var b strings.Builder
	for _, name := range Experiments {
		out, err := Run(name)
		if err != nil {
			return "", fmt.Errorf("%s: %w", name, err)
		}
		fmt.Fprintf(&b, "==================== %s ====================\n%s\n", name, out)
	}
	return b.String(), nil
}
