package harness

import (
	"strings"
	"testing"

	"robustconf/internal/sim"
	"robustconf/internal/workload"
)

func TestOptSizeMatchesTable2(t *testing.T) {
	cases := []struct {
		kind sim.StructureKind
		mix  workload.Mix
		want int
	}{
		{sim.KindFPTree, workload.A, 24},
		{sim.KindFPTree, workload.C, 48},
		{sim.KindBWTree, workload.A, 48},
		{sim.KindHashMap, workload.A, 1},
		{sim.KindBTree, workload.D, 24},
	}
	for _, c := range cases {
		got, err := OptSize(c.kind, c.mix)
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Errorf("OptSize(%s, %s) = %d, want %d", c.kind.Name(), c.mix.Name, got, c.want)
		}
	}
}

func TestFigure1SeriesComplete(t *testing.T) {
	fig, err := Figure1()
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 4 {
		t.Fatalf("series = %d, want 4", len(fig.Series))
	}
	for _, s := range fig.Series {
		if len(s.Points) != 3 {
			t.Errorf("series %q has %d points, want 3 workloads", s.Name, len(s.Points))
		}
	}
	// Opt. Configured must lead every workload.
	opt := fig.SeriesNamed("Opt. Configured")
	for _, other := range fig.Series {
		if other.Name == opt.Name {
			continue
		}
		for i, p := range other.Points {
			if o := opt.Points[i]; p.Y > o.Y {
				t.Errorf("%s beats Opt at workload %v: %.1f > %.1f", other.Name, p.X, p.Y, o.Y)
			}
		}
	}
}

func TestTable2Rendering(t *testing.T) {
	out, err := Table2()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"B-Tree", "FP-Tree", "BW-Tree", "Hash Map", "Read-Only", "Read-Update", "Read-Insert"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 2 output missing %q:\n%s", want, out)
		}
	}
}

func TestFigure8Shapes(t *testing.T) {
	abort, l2, err := Figure8()
	if err != nil {
		t.Fatal(err)
	}
	se := abort.SeriesNamed("SE")
	if y, ok := se.YAt(384); !ok || y < 0.5 {
		t.Errorf("SE abort at 384 = %v,%v, want high", y, ok)
	}
	snt := abort.SeriesNamed("SN-Thread")
	if snt.MaxY() != 0 {
		t.Errorf("SN-Thread abort MaxY = %v, want 0", snt.MaxY())
	}
	l2snt := l2.SeriesNamed("SN-Thread")
	l2opt := l2.SeriesNamed("Opt. Configured")
	y1, _ := l2snt.YAt(384)
	y2, _ := l2opt.YAt(384)
	if y1 <= y2 {
		t.Errorf("SN-Thread L2 (%.1f) should exceed Opt (%.1f)", y1, y2)
	}
}

func TestFigure13Shapes(t *testing.T) {
	left, right, err := Figure13()
	if err != nil {
		t.Fatal(err)
	}
	if len(left.Series) != 4 || len(right.Series) != 4 {
		t.Fatalf("series = %d/%d, want 4 each", len(left.Series), len(right.Series))
	}
	ours := right.SeriesNamed("Our OLTP Engine (FP-Tree)")
	base := right.SeriesNamed("SN-NUMA OLTP Engine (FP-Tree)")
	o0, _ := ours.YAt(0)
	o75, _ := ours.YAt(75)
	if o75 < 0.95*o0 {
		t.Errorf("ours should be flat across remote%%: %.0f → %.0f", o0, o75)
	}
	b0, _ := base.YAt(0)
	b1, _ := base.YAt(1)
	if b1 > 0.1*b0 {
		t.Errorf("baseline should collapse at 1%% remote: %.0f → %.0f", b0, b1)
	}
}

func TestRunKnownExperiments(t *testing.T) {
	// Smoke every named experiment through the text renderer (fig6/7/10/12
	// are heavier; they are covered by RunAll in the bench harness, and
	// individually here for the lighter ones).
	for _, name := range []string{"fig1", "table2", "fig8", "fig9", "fig11", "fig13"} {
		out, err := Run(name)
		if err != nil {
			t.Fatalf("Run(%s): %v", name, err)
		}
		if len(out) == 0 {
			t.Errorf("Run(%s) produced no output", name)
		}
	}
	if _, err := Run("nope"); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestFigure12Rows(t *testing.T) {
	rows, err := Figure12()
	if err != nil {
		t.Fatal(err)
	}
	// 4 structures × 5 strategies × 2 system sizes.
	if len(rows) != 40 {
		t.Fatalf("rows = %d, want 40", len(rows))
	}
	rendered := RenderFigure12(rows)
	if !strings.Contains(rendered, "FP-Tree") || !strings.Contains(rendered, "8 sockets") {
		t.Errorf("rendering incomplete:\n%s", rendered[:200])
	}
	// The FP-Tree SE bar at 8 sockets must dwarf Opt (the annotated
	// truncated bars of the paper's figure).
	var seFP, optFP float64
	for _, r := range rows {
		if r.Structure == "FP-Tree" && r.Sockets == 8 {
			switch r.Strategy {
			case "SE":
				seFP = r.TMAM.Total()
			case "Opt. Configured":
				optFP = r.TMAM.Total()
			}
		}
	}
	if seFP < 10*optFP {
		t.Errorf("FP-Tree 8-socket SE cost (%.0f) should dwarf Opt (%.0f)", seFP, optFP)
	}
}

func TestAblations(t *testing.T) {
	out, err := Ablations()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"NUMA-aware", "retry budget", "calibrated domains", "factor"} {
		if !strings.Contains(out, want) {
			t.Errorf("ablations missing %q:\n%s", want, out)
		}
	}
	// "ablations" must be routable through Run.
	if _, err := Run("ablations"); err != nil {
		t.Fatal(err)
	}
}

func TestRunFormatCSV(t *testing.T) {
	out, err := RunFormat("fig9", "csv")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "threads,") {
		t.Errorf("csv output missing header:\n%s", out[:100])
	}
	if _, err := RunFormat("fig9", "xml"); err == nil {
		t.Error("unknown format accepted")
	}
}
