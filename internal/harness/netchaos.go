package harness

// Network chaos: drive the TCP front end (internal/server) over loopback
// while the injector storms the runtime underneath it, and verify the
// end-to-end fault contract — every pipelined request gets a reply (a
// value, a miss, BUSY, or a typed relayed error), never a hang; the
// connection survives a worker dying mid-pipeline; and once the storm
// passes, respawned workers serve a fresh client normally (the session
// pool recovered — no session was poisoned by the faults it rode through).

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"robustconf/client"
	"robustconf/internal/core"
	"robustconf/internal/faultinject"
	"robustconf/internal/index/btree"
	"robustconf/internal/metrics"
	"robustconf/internal/server"
	"robustconf/internal/topology"
	"robustconf/internal/workload"
)

// NetChaosReport summarises one network chaos run.
type NetChaosReport struct {
	Schedule string
	Seed     int64
	Ops      int // requests whose replies were received
	Values   int // OK / value replies
	Misses   int // NOTFOUND replies
	Busy     int // admission-control rejections
	Errors   int // typed relayed execution errors
	Hangs    int // replies that never arrived — must be 0
	Panics   uint64
	Restarts uint64
	// RecoveredOps counts post-storm ops a fresh connection completed
	// against the same server — the pool-recovery assertion.
	RecoveredOps int
}

func (r NetChaosReport) String() string {
	return fmt.Sprintf("netchaos %-12s seed=%-3d ops=%-6d values=%-6d misses=%-5d busy=%-4d errors=%-5d hangs=%d recovered=%d worker-panics=%d restarts=%d",
		r.Schedule, r.Seed, r.Ops, r.Values, r.Misses, r.Busy, r.Errors, r.Hangs, r.RecoveredOps, r.Panics, r.Restarts)
}

// Complete reports whether every request was answered.
func (r NetChaosReport) Complete() bool {
	return r.Hangs == 0 && r.Ops == r.Values+r.Misses+r.Busy+r.Errors
}

// RunNetChaos executes one network chaos run: conns pipelined connections
// each push opsPerConn mixed PUT/GET requests at the given pipeline depth
// against a loopback server whose two-domain runtime runs under the
// schedule's fault injector; afterwards a fresh connection proves the
// server still serves. Hangs > 0, an unanswered request, or a failed
// post-storm op is a fault-tolerance bug.
func RunNetChaos(sched ChaosSchedule, seed int64, conns, opsPerConn, depth int) (NetChaosReport, error) {
	report := NetChaosReport{Schedule: sched.Name, Seed: seed}
	m, err := topology.Restricted(1)
	if err != nil {
		return report, err
	}
	faults := &metrics.FaultCounters{}
	cfg := core.Config{
		Machine: m,
		Domains: []core.DomainSpec{
			{Name: "n0", CPUs: topology.Range(0, 4), RestartBudget: 1 << 20},
			{Name: "n1", CPUs: topology.Range(4, 8), RestartBudget: 1 << 20},
		},
		Assignment: map[string]int{"shard0": 0, "shard1": 1},
		Faults:     faults,
	}
	if len(sched.Rules) > 0 {
		cfg.FaultHook = faultinject.New(seed, sched.Rules...)
	}
	rt, err := core.Start(cfg, map[string]any{"shard0": btree.New(), "shard1": btree.New()})
	if err != nil {
		return report, err
	}
	defer rt.Stop()

	srv, err := server.Listen("127.0.0.1:0", server.Config{
		Runtime:  rt,
		Shards:   []string{"shard0", "shard1"},
		Sessions: 2,
		Obs:      nil,
	})
	if err != nil {
		return report, err
	}
	defer srv.Close(5 * time.Second)

	var values, misses, busy, errsN, hangs, answered atomic.Int64
	var wg sync.WaitGroup
	fatal := make(chan error, conns)
	for g := 0; g < conns; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c, err := client.Dial(srv.Addr())
			if err != nil {
				fatal <- err
				return
			}
			defer c.Close()
			c.SetTimeout(10 * time.Second)
			sent := 0
			for sent < opsPerConn {
				window := depth
				if left := opsPerConn - sent; left < window {
					window = left
				}
				for i := 0; i < window; i++ {
					k := workload.ScatterKey(uint64(g*opsPerConn + sent + i))
					if (sent+i)%2 == 0 {
						c.QueuePut(k, k)
					} else {
						c.QueueGet(k)
					}
				}
				if err := c.Flush(); err != nil {
					fatal <- fmt.Errorf("flush: %w", err)
					return
				}
				for c.Pending() > 0 {
					_, found, err := c.Recv()
					answered.Add(1)
					switch {
					case err == nil && found:
						values.Add(1)
					case err == nil:
						misses.Add(1)
					case errors.Is(err, client.ErrBusy):
						busy.Add(1)
					default:
						var se *client.ServerError
						if !errors.As(err, &se) {
							// A transport error (timeout, reset) means a reply
							// never arrived: the hang the contract forbids.
							answered.Add(-1)
							hangs.Add(int64(c.Pending() + 1))
							fatal <- fmt.Errorf("recv: %w", err)
							return
						}
						errsN.Add(1)
					}
				}
				sent += window
			}
		}(g)
	}
	wg.Wait()
	close(fatal)
	var firstErr error
	for err := range fatal {
		if firstErr == nil {
			firstErr = err
		}
	}

	report.Ops = int(answered.Load())
	report.Values = int(values.Load())
	report.Misses = int(misses.Load())
	report.Busy = int(busy.Load())
	report.Errors = int(errsN.Load())
	report.Hangs = int(hangs.Load())
	snap := faults.Snapshot()
	report.Panics = snap.WorkerPanics
	report.Restarts = snap.WorkerRestarts
	if firstErr != nil {
		return report, firstErr
	}

	// Post-storm recovery: a fresh connection against the same server must
	// execute cleanly. The fault injector is still live — probabilistic
	// rules keep firing after the storm — so transient BUSY and typed
	// execution errors are retried; what must hold is that every op
	// eventually succeeds, proving the pool and workers recovered.
	c, err := client.Dial(srv.Addr())
	if err != nil {
		return report, fmt.Errorf("post-storm dial: %w", err)
	}
	defer c.Close()
	transient := func(err error) bool {
		var srvErr *client.ServerError
		return errors.Is(err, client.ErrBusy) || errors.As(err, &srvErr)
	}
	for i := 0; i < 32; i++ {
		k := workload.ScatterKey(uint64(1_000_000 + i))
		var lastErr error
		for attempt := 0; attempt < 50; attempt++ {
			if lastErr = c.Put(k, k+1); lastErr == nil || !transient(lastErr) {
				break
			}
			time.Sleep(time.Millisecond)
		}
		if lastErr != nil {
			return report, fmt.Errorf("post-storm put: %w", lastErr)
		}
		var v uint64
		var found bool
		for attempt := 0; attempt < 50; attempt++ {
			v, found, lastErr = c.Get(k)
			if lastErr == nil || !transient(lastErr) {
				break
			}
			time.Sleep(time.Millisecond)
		}
		if lastErr != nil || !found || v != k+1 {
			return report, fmt.Errorf("post-storm get(%d) = (%d,%v,%v), want (%d,true,nil)", k, v, found, lastErr, k+1)
		}
		report.RecoveredOps += 2
	}
	return report, nil
}

// NetChaosSchedules returns the fault schedules the network suite runs:
// the classes that stress the wire contract (kills mid-pipeline, panics
// under decode bursts, the mixed storm). StopMidway schedules are excluded
// — Server.Close owns orderly-shutdown coverage.
func NetChaosSchedules() []ChaosSchedule {
	var out []ChaosSchedule
	for _, s := range ChaosSchedules() {
		if s.StopMidway {
			continue
		}
		switch s.Name {
		case "task-panic", "worker-kill", "worker-stall":
			out = append(out, s)
		}
	}
	return out
}
