package harness

import (
	"testing"
)

// netChaosScale shrinks the network suite under -short, mirroring
// chaosScale: fewer connections and ops, with the deterministic EveryNth
// kill thresholds scaled down to keep every fault class firing.
func netChaosScale(t *testing.T) (conns, ops, depth int, seeds []int64, div uint64) {
	if testing.Short() {
		return 3, 200, 16, []int64{1}, 8
	}
	return 4, 800, 16, []int64{1, 7}, 2
}

// TestChaosServerPipeline is the wire-level fault-contract gate: with
// workers dying (and panicking, and stalling) under pipelined network
// batches, every request must still be answered — value, miss, BUSY, or a
// typed relayed error — the connection must survive a worker killed
// mid-pipeline, and after the storm a fresh connection must execute
// cleanly against the recovered pool. A transport-level hang or an
// unanswered request is a bug, not a flake.
func TestChaosServerPipeline(t *testing.T) {
	conns, ops, depth, seeds, div := netChaosScale(t)
	for _, sched := range NetChaosSchedules() {
		sched := sched.Scaled(div)
		for _, seed := range seeds {
			r, err := RunNetChaos(sched, seed, conns, ops, depth)
			if err != nil {
				t.Fatalf("%s/seed %d: %v (%v)", sched.Name, seed, err, r)
			}
			t.Log(r)
			if !r.Complete() {
				t.Errorf("%s/seed %d: %d requests unanswered (%v)", sched.Name, seed,
					r.Ops-r.Values-r.Misses-r.Busy-r.Errors+r.Hangs, r)
			}
			if r.RecoveredOps == 0 {
				t.Errorf("%s/seed %d: post-storm recovery ran no ops", sched.Name, seed)
			}
		}
	}
}

// TestChaosServerWorkerKillTypedErrors pins the error-relay half: when the
// kill schedule fires under load, the injected worker deaths must surface
// to network clients as typed ERR replies (relayed PanicError), never as
// dropped connections or hangs — and the run must still recover.
func TestChaosServerWorkerKillTypedErrors(t *testing.T) {
	conns, ops, depth, _, div := netChaosScale(t)
	sched, err := ChaosScheduleNamed("worker-kill")
	if err != nil {
		t.Fatal(err)
	}
	sched = sched.Scaled(div)
	// Kills are sweep-rate dependent; try seeds until one fires (the same
	// convention as TestChaosWorkerKillRecovers).
	for _, seed := range []int64{3, 5, 9, 11} {
		r, runErr := RunNetChaos(sched, seed, conns, ops, depth)
		if runErr != nil {
			t.Fatalf("seed %d: %v (%v)", seed, runErr, r)
		}
		if !r.Complete() {
			t.Fatalf("seed %d: incomplete: %v", seed, r)
		}
		if r.Panics > 0 {
			t.Log(r)
			if r.Restarts == 0 {
				t.Fatalf("seed %d: %d worker panics but no respawns", seed, r.Panics)
			}
			if r.Values == 0 {
				t.Fatalf("seed %d: no request succeeded despite respawns", seed)
			}
			return
		}
	}
	t.Skip("no kill fired on this machine's sweep rate; contract covered by TestChaosServerPipeline")
}
