package harness

import (
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"robustconf/internal/core"
	"robustconf/internal/delegation"
	"robustconf/internal/faultinject"
	"robustconf/internal/index/hashmap"
	"robustconf/internal/metrics"
	"robustconf/internal/obs"
	"robustconf/internal/topology"
)

// TestChaosReadBypassNoTornReads is the torn-read acceptance gate of the
// read-bypass protocol (DESIGN.md §12): bypass readers hammer a structure
// whose single-worker domain is being killed, stalled and delayed mid-write
// by the fault injector. Every write task updates a key pair (k and k+N) to
// the same generation inside one delegated task, so the pair is torn exactly
// while that task is mid-flight; a validated bypass read that overlapped it
// would observe unequal halves. The test asserts that no read — validated
// local or delegated fallback — ever returns a torn pair, and that every
// SubmitRead call resolves (the loop finishing is the resolution proof:
// fallbacks wait on their futures internally).
//
// Injected kills are crash-atomic with respect to the pair: WorkerKill
// panics before the sweep touches a slot and BeforeTask fires before the
// closure runs, so a torn pair can only come from a reader overlapping a
// live writer — precisely what publication-word validation must exclude.
func TestChaosReadBypassNoTornReads(t *testing.T) {
	const pairs = 1 << 10
	writes := 6000
	readers := 4
	seeds := []int64{1, 7}
	if testing.Short() {
		writes, seeds = 1500, []int64{1}
	}
	m, err := topology.Restricted(1)
	if err != nil {
		t.Fatal(err)
	}

	var totalHits, totalFallbacks, totalKills uint64
	for _, seed := range seeds {
		idx := hashmap.New()
		for k := uint64(0); k < pairs; k++ {
			idx.Insert(k, 0, nil)
			idx.Insert(k+pairs, 0, nil)
		}
		injector := faultinject.New(seed,
			faultinject.Rule{Kind: faultinject.WorkerKill, Worker: -1, EveryNth: 200},
			faultinject.Rule{Kind: faultinject.WorkerStall, Worker: -1, EveryNth: 100, Stall: 100 * time.Microsecond},
			faultinject.Rule{Kind: faultinject.SweepDelay, Worker: -1, Probability: 0.01, Stall: 100 * time.Microsecond},
		)
		observer := obs.New(obs.Options{})
		cfg := core.Config{
			Machine: m,
			// One worker: delegated tasks (writes and fallback reads)
			// serialize, so the only route to a torn observation is a local
			// read overlapping the worker mid-task.
			Domains:      []core.DomainSpec{{Name: "d0", CPUs: topology.Range(0, 1), RestartBudget: 1 << 20}},
			Assignment:   map[string]int{"map": 0},
			ReadPolicies: map[string]core.ReadPolicy{"map": core.ReadBypass},
			FaultHook:    injector,
			Faults:       &metrics.FaultCounters{},
			Obs:          observer,
		}
		rt, err := core.Start(cfg, map[string]any{"map": idx})
		if err != nil {
			t.Fatal(err)
		}
		if got := rt.EffectiveReadPolicy("map"); got != core.ReadBypass {
			t.Fatalf("seed %d: hash map should arm bypass, effective policy %v", seed, got)
		}

		var done atomic.Bool
		var torn atomic.Uint64
		var readsDone atomic.Uint64
		var wg sync.WaitGroup
		for r := 0; r < readers; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				s, err := rt.NewSession(r%m.LogicalCPUs(), 2)
				if err != nil {
					t.Error(err)
					return
				}
				defer s.Close()
				rng := rand.New(rand.NewSource(seed<<8 | int64(r)))
				for !done.Load() {
					k := uint64(rng.Intn(pairs))
					res, err := s.SubmitRead(core.Task{Structure: "map", Op: func(ds any) any {
						mp := ds.(*hashmap.Map)
						v1, _ := mp.Get(k, nil)
						v2, _ := mp.Get(k+pairs, nil)
						return [2]uint64{v1, v2}
					}})
					readsDone.Add(1)
					if err != nil {
						continue // typed failure under chaos; resolution is what counts
					}
					pair := res.([2]uint64)
					if pair[0] != pair[1] {
						torn.Add(1)
					}
				}
			}(r)
		}

		ws, err := rt.NewSession(0, 4)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(seed))
		var futs []*delegation.Future
		for i := 0; i < writes; i++ {
			g := uint64(i + 1)
			k := uint64(rng.Intn(pairs))
			f, err := ws.Submit(core.Task{Structure: "map", Op: func(ds any) any {
				mp := ds.(*hashmap.Map)
				mp.Update(k, g, nil)
				mp.Update(k+pairs, g, nil)
				return g
			}})
			if err != nil {
				continue // acquisition error under chaos: no future to track
			}
			futs = append(futs, f)
		}
		hangs := 0
		for _, f := range futs {
			if _, err := f.WaitTimeout(10 * time.Second); errors.Is(err, delegation.ErrWaitTimeout) {
				hangs++
			}
		}
		done.Store(true)
		wg.Wait()
		_ = ws.Close()
		rt.Stop()

		if hangs > 0 {
			t.Errorf("seed %d: %d write futures hung", seed, hangs)
		}
		if n := torn.Load(); n > 0 {
			t.Errorf("seed %d: %d torn pair reads observed (of %d reads)", seed, n, readsDone.Load())
		}
		var hits, fallbacks uint64
		for _, d := range observer.Snapshot().Domains {
			hits += d.BypassHits
			fallbacks += d.BypassFallbacks
		}
		kills := injector.Triggered(faultinject.WorkerKill)
		t.Logf("seed %d: reads=%d bypass-hits=%d fallbacks=%d kills=%d stalls=%d",
			seed, readsDone.Load(), hits, fallbacks, kills,
			injector.Triggered(faultinject.WorkerStall))
		totalHits += hits
		totalFallbacks += fallbacks
		totalKills += kills
	}
	if totalHits == 0 {
		t.Error("no bypass read ever validated; the bypass path was not exercised")
	}
	if totalFallbacks == 0 {
		t.Error("no bypass read ever fell back; the fallback path was not exercised")
	}
	if totalKills == 0 {
		t.Log("no worker kill fired on this machine's sweep rate; torn-read window still exercised by stalls")
	}
}
