package harness

import (
	"fmt"
	"strings"
	"time"

	"robustconf/internal/core"
	"robustconf/internal/index"
	"robustconf/internal/index/hashmap"
	"robustconf/internal/topology"
	"robustconf/internal/workload"
)

// ReadPolicyAblation is the real-execution ablation of the read-path policy
// axis (DESIGN.md §12): the same seeded YCSB streams run against a Hash Map
// under each Session.SubmitRead policy — always-delegate, validated local
// bypass, and the adaptive mode that watches the observed write fraction —
// plus an undelgated direct baseline. Each row reports measured per-op
// latency on this host; the factor columns show what the bypass recovers of
// the delegation round-trip on read-dominated mixes and that adaptive mode
// backs off to delegation on the write-heavy mix.
func ReadPolicyAblation() (string, error) {
	const records = 50_000
	const ops = 40_000
	const seed = int64(1)

	m, err := topology.Restricted(1)
	if err != nil {
		return "", err
	}
	preload := func() *hashmap.Map {
		idx := hashmap.New()
		for _, k := range workload.LoadKeys(records) {
			idx.Insert(k, k, nil)
		}
		return idx
	}
	apply := func(idx index.Index, op workload.Op) {
		switch op.Type {
		case workload.OpRead:
			idx.Get(op.Key, nil)
		case workload.OpUpdate:
			idx.Update(op.Key, op.Val, nil)
		default:
			idx.Insert(op.Key, op.Val, nil)
		}
	}

	runDirect := func(mix workload.Mix) (time.Duration, error) {
		idx := preload()
		gen, err := workload.NewGenerator(mix, records, 0, seed)
		if err != nil {
			return 0, err
		}
		start := time.Now()
		for i := 0; i < ops; i++ {
			apply(idx, gen.Next())
		}
		return time.Since(start), nil
	}

	runPolicy := func(mix workload.Mix, p core.ReadPolicy) (time.Duration, error) {
		rt, err := core.Start(core.Config{
			Machine:      m,
			Domains:      []core.DomainSpec{{Name: "d0", CPUs: topology.Range(0, 4)}},
			Assignment:   map[string]int{"ycsb": 0},
			ReadPolicies: map[string]core.ReadPolicy{"ycsb": p},
		}, map[string]any{"ycsb": preload()})
		if err != nil {
			return 0, err
		}
		defer rt.Stop()
		session, err := rt.NewSession(0, 14)
		if err != nil {
			return 0, err
		}
		defer session.Close()
		gen, err := workload.NewGenerator(mix, records, 0, seed)
		if err != nil {
			return 0, err
		}
		start := time.Now()
		for i := 0; i < ops; i++ {
			op := gen.Next()
			if op.Type == workload.OpRead {
				_, err = session.SubmitRead(core.Task{Structure: "ycsb", Op: func(ds any) any {
					v, _ := ds.(index.Index).Get(op.Key, nil)
					return v
				}})
			} else {
				_, err = session.Invoke(core.Task{Structure: "ycsb", Op: func(ds any) any {
					tr := ds.(index.Index)
					if op.Type == workload.OpUpdate {
						return tr.Update(op.Key, op.Val, nil)
					}
					return tr.Insert(op.Key, op.Val, nil)
				}})
			}
			if err != nil {
				return 0, err
			}
		}
		return time.Since(start), nil
	}

	var b strings.Builder
	fmt.Fprintf(&b, "# Read-policy ablation: Hash Map, %d records, %d ops, one client, 4-worker domain\n", records, ops)
	fmt.Fprintf(&b, "%-24s %12s %12s %12s\n", "mix / read path", "ns/op", "ops/s", "vs delegate")
	for _, mix := range []workload.Mix{workload.C, workload.D, workload.A} {
		dDur, err := runDirect(mix)
		if err != nil {
			return "", fmt.Errorf("%s direct: %w", mix.Name, err)
		}
		delDur, err := runPolicy(mix, core.ReadDelegate)
		if err != nil {
			return "", fmt.Errorf("%s delegate: %w", mix.Name, err)
		}
		delNs := float64(delDur.Nanoseconds()) / ops
		row := func(label string, dur time.Duration) {
			ns := float64(dur.Nanoseconds()) / ops
			fmt.Fprintf(&b, "%-24s %12.0f %12.0f %11.2fx\n",
				mix.Name+" "+label, ns, float64(ops)/dur.Seconds(), delNs/ns)
		}
		row("direct", dDur)
		row("delegate", delDur)
		for _, p := range []core.ReadPolicy{core.ReadBypass, core.ReadAdaptive} {
			dur, err := runPolicy(mix, p)
			if err != nil {
				return "", fmt.Errorf("%s %s: %w", mix.Name, p, err)
			}
			row(p.String(), dur)
		}
		b.WriteByte('\n')
	}
	b.WriteString("(vs delegate > 1 means faster than always-delegating; direct is the no-runtime bound)\n")
	return b.String(), nil
}
