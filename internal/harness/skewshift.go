package harness

// Skew-shift experiment: demonstrate the continuous-signal pipeline end to
// end on the *real* runtime. Clients hammer one domain ("hot") until the
// sampler's windowed occupancy trips the Degraded threshold, then the load
// shifts entirely to the second domain ("cold") and the hot domain is
// watched until hysteresis publishes Healthy again. The report carries the
// time-to-detect, time-to-recover and the hot domain's health transitions
// exactly as they landed in the event journal — the same feed an autopilot
// would consume.

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"robustconf/internal/core"
	"robustconf/internal/delegation"
	"robustconf/internal/index/btree"
	"robustconf/internal/obs"
	"robustconf/internal/obs/signal"
	"robustconf/internal/topology"
)

// SkewShiftOptions tunes the skew-shift run. Zero values pick defaults
// sized for a laptop-class CI machine.
type SkewShiftOptions struct {
	// Cadence is the sampler tick period (default 20ms — fast enough that
	// detection and recovery both land well inside a one-second run).
	Cadence time.Duration
	// Sessions is the number of concurrent client sessions (default 6).
	Sessions int
	// PhaseTimeout bounds each wait (hammer→Degraded, shift→Healthy);
	// default 5s. The run exits a phase as soon as the transition lands.
	PhaseTimeout time.Duration
}

// SkewShiftReport summarises one skew-shift run.
type SkewShiftReport struct {
	DegradedAfter  time.Duration // hammer start → Degraded published for "hot"
	RecoveredAfter time.Duration // load shift → Healthy re-published for "hot"
	PeakOccupancy  float64       // max windowed occupancy seen on "hot"
	HotOps         uint64        // operations completed against the hot index
	ColdOps        uint64        // operations completed after the shift
	Transitions    []string      // "hot" health events in journal order
}

func (r SkewShiftReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# Skew shift: windowed health detection on the real runtime\n")
	fmt.Fprintf(&b, "hot phase:  %6d ops, peak occupancy %.2f, Degraded after %v\n",
		r.HotOps, r.PeakOccupancy, r.DegradedAfter.Round(time.Millisecond))
	fmt.Fprintf(&b, "cold phase: %6d ops, hot domain Healthy after %v\n",
		r.ColdOps, r.RecoveredAfter.Round(time.Millisecond))
	fmt.Fprintf(&b, "journal (domain=hot): %s\n", strings.Join(r.Transitions, " -> "))
	return b.String()
}

// RunSkewShift executes the experiment. It builds a private observer with a
// tuned threshold set (occupancy Degraded at 0.25, Saturated disabled,
// two-tick hysteresis) so the run is self-contained and deterministic in
// what it asserts, independent of any -signals flags on the hosting command.
func RunSkewShift(opts SkewShiftOptions) (SkewShiftReport, error) {
	if opts.Cadence <= 0 {
		opts.Cadence = 20 * time.Millisecond
	}
	if opts.Sessions <= 0 {
		opts.Sessions = 6
	}
	if opts.PhaseTimeout <= 0 {
		opts.PhaseTimeout = 5 * time.Second
	}

	m, err := topology.Restricted(1)
	if err != nil {
		return SkewShiftReport{}, err
	}
	observer := obs.New(obs.Options{SampleEvery: 64})
	cfg := core.Config{
		Machine: m,
		Domains: []core.DomainSpec{
			{Name: "hot", CPUs: topology.Range(0, 4)},
			{Name: "cold", CPUs: topology.Range(4, 8)},
		},
		Assignment: map[string]int{"hotidx": 0, "coldidx": 1},
		Obs:        observer,
	}
	rt, err := core.Start(cfg, map[string]any{"hotidx": btree.New(), "coldidx": btree.New()})
	if err != nil {
		return SkewShiftReport{}, err
	}
	defer rt.Stop()

	th := signal.Thresholds{
		OccupancyDegraded:  0.25,
		OccupancySaturated: 1.01, // unreachable: keep the demo to Degraded<->Healthy
		SustainTicks:       2,
	}.WithDefaults()
	smp := observer.StartSampler(obs.SamplerOptions{Every: opts.Cadence, Thresholds: th})
	defer smp.Stop()

	// Load generators: each session submits insert bursts against the
	// current target index and waits them out, keeping its slots busy.
	var (
		shifted atomic.Bool // false: hammer hotidx; true: hammer coldidx
		stop    atomic.Bool
		hotOps  atomic.Uint64
		coldOps atomic.Uint64
		wg      sync.WaitGroup
	)
	const burst = 4
	for g := 0; g < opts.Sessions; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			s, err := rt.NewSession(g%8, burst)
			if err != nil {
				return
			}
			defer s.Close()
			k := uint64(g) << 32
			for !stop.Load() {
				structure, ops := "hotidx", &hotOps
				if shifted.Load() {
					structure, ops = "coldidx", &coldOps
				}
				var futs [burst]*delegation.Future
				n := 0
				for i := 0; i < burst; i++ {
					k++
					key := k
					f, err := s.Submit(core.Task{Structure: structure, Op: func(ds any) any {
						ds.(*btree.Tree).Insert(key, key, nil)
						return key
					}})
					if err != nil {
						continue
					}
					futs[n] = f
					n++
				}
				for i := 0; i < n; i++ {
					if _, err := futs[i].WaitTimeout(5 * time.Second); err == nil {
						ops.Add(1)
					}
				}
			}
		}(g)
	}
	defer func() { stop.Store(true); wg.Wait() }()

	// await polls the published signals until the hot domain reaches want.
	await := func(want signal.Health) (time.Duration, float64, error) {
		start := time.Now()
		deadline := start.Add(opts.PhaseTimeout)
		var peak float64
		for time.Now().Before(deadline) {
			for _, ds := range observer.Signals() {
				if ds.Domain != "hot" {
					continue
				}
				if ds.Occupancy.Value > peak {
					peak = ds.Occupancy.Value
				}
				if ds.Health == want {
					return time.Since(start), peak, nil
				}
			}
			time.Sleep(opts.Cadence / 4)
		}
		return 0, peak, fmt.Errorf("harness: skew-shift: hot domain never reached %s within %v (peak occupancy %.2f)",
			want, opts.PhaseTimeout, peak)
	}

	report := SkewShiftReport{}
	report.DegradedAfter, report.PeakOccupancy, err = await(signal.Degraded)
	if err != nil {
		return report, err
	}
	shifted.Store(true)
	report.RecoveredAfter, _, err = await(signal.Healthy)
	if err != nil {
		return report, err
	}
	stop.Store(true)
	wg.Wait()
	report.HotOps = hotOps.Load()
	report.ColdOps = coldOps.Load()

	events, _ := observer.Events()
	for _, e := range events {
		if e.Domain == "hot" && strings.HasPrefix(e.Kind, "health-") {
			report.Transitions = append(report.Transitions, strings.TrimPrefix(e.Kind, "health-"))
		}
	}
	return report, nil
}
