package harness

import (
	"strings"
	"testing"
	"time"
)

// TestSkewShiftDegradedToHealthy runs the full skew-shift experiment at a
// fast cadence and asserts the contract the autopilot depends on: the hot
// domain's journal shows Degraded followed by Healthy, in that order.
func TestSkewShiftDegradedToHealthy(t *testing.T) {
	r, err := RunSkewShift(SkewShiftOptions{
		Cadence:      10 * time.Millisecond,
		Sessions:     4,
		PhaseTimeout: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.HotOps == 0 || r.ColdOps == 0 {
		t.Errorf("phases did no work: hot=%d cold=%d", r.HotOps, r.ColdOps)
	}
	joined := strings.Join(r.Transitions, ",")
	if !strings.Contains(joined, "degraded") {
		t.Errorf("journal missing degraded transition: %q", joined)
	}
	di := strings.Index(joined, "degraded")
	if hi := strings.LastIndex(joined, "healthy"); hi < di {
		t.Errorf("no healthy transition after degraded: %q", joined)
	}
	if r.DegradedAfter <= 0 || r.RecoveredAfter <= 0 {
		t.Errorf("non-positive phase timings: %+v", r)
	}
	if out := r.String(); !strings.Contains(out, "journal (domain=hot)") {
		t.Errorf("report rendering incomplete:\n%s", out)
	}
}
