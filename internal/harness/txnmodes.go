package harness

import (
	"fmt"
	"strings"
	"time"

	"robustconf/internal/index"
	"robustconf/internal/index/fptree"
	"robustconf/internal/oltp"
	"robustconf/internal/topology"
	"robustconf/internal/tpcc"
)

// TxnModes is the real-execution ablation of the statement→task mapping
// (DESIGN.md §11): the same full TPC-C mix runs on the direct baseline and
// on the delegated engine in each execution mode — per-statement pipelining,
// same-domain fusion, whole-transaction delegation — and each row reports
// measured per-transaction latency on this host.
func TxnModes() (string, error) {
	cfg := tpcc.Config{Warehouses: 2, Customers: 100, Items: 300}
	const txns = 4000
	const remote, seed = 0.05, int64(1)
	newIndex := func() index.Index { return fptree.New() }

	runTrace := func(store tpcc.Store) (time.Duration, error) {
		term, err := tpcc.NewTerminal(cfg, store, 1, remote, seed)
		if err != nil {
			return 0, err
		}
		start := time.Now()
		for i := 0; i < txns; i++ {
			if err := term.NextFullMix(); err != nil {
				return 0, fmt.Errorf("txn %d: %w", i, err)
			}
		}
		return time.Since(start), nil
	}

	var b strings.Builder
	fmt.Fprintf(&b, "# Txn-mode ablation: full TPC-C mix, %d warehouses, %d txns, one terminal\n", cfg.Warehouses, txns)
	fmt.Fprintf(&b, "%-24s %12s %12s %10s\n", "engine / mode", "us/txn", "txn/s", "vs direct")

	direct, err := oltp.NewDirectEngine(cfg, newIndex)
	if err != nil {
		return "", err
	}
	loader, err := tpcc.NewLoader(cfg, seed)
	if err != nil {
		return "", err
	}
	if err := loader.Load(direct); err != nil {
		return "", err
	}
	dDur, err := runTrace(direct)
	if err != nil {
		return "", fmt.Errorf("direct: %w", err)
	}
	dUs := float64(dDur.Microseconds()) / txns
	fmt.Fprintf(&b, "%-24s %12.1f %12.0f %9.2fx\n", "direct (baseline)", dUs, float64(txns)/dDur.Seconds(), 1.0)

	m, err := topology.Restricted(1)
	if err != nil {
		return "", err
	}
	for _, mode := range []oltp.ExecMode{oltp.ModePerStatement, oltp.ModeFused, oltp.ModeWholeTxn} {
		engine, err := oltp.NewEngine(cfg, newIndex, m)
		if err != nil {
			return "", err
		}
		store, err := engine.NewStoreMode(0, 14, mode)
		if err != nil {
			engine.Stop()
			return "", err
		}
		ld, _ := tpcc.NewLoader(cfg, seed)
		if err := ld.Load(store); err != nil {
			engine.Stop()
			return "", err
		}
		dur, err := runTrace(store)
		if err != nil {
			engine.Stop()
			return "", fmt.Errorf("%s: %w", mode, err)
		}
		if err := store.Close(); err != nil {
			engine.Stop()
			return "", err
		}
		engine.Stop()
		us := float64(dur.Microseconds()) / txns
		fmt.Fprintf(&b, "%-24s %12.1f %12.0f %9.2fx\n",
			"delegated "+mode.String(), us, float64(txns)/dur.Seconds(), dUs/us)
	}
	return b.String(), nil
}
