package harness

// WAL chaos mode: drive the real runtime with the per-domain write-ahead
// log enabled under seeded crash schedules — worker kills, kills inside the
// group commit, torn segment tails — and verify the durability contract:
// a seeded run with injected crashes and recovery reaches a final state
// byte-equal to the crash-free run of the same seed (clients retry failed
// operations; records are idempotent post-state effects, so at-least-once
// replay converges). This is the executable form of DESIGN.md §13.

import (
	"encoding/binary"
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"robustconf/internal/core"
	"robustconf/internal/faultinject"
	"robustconf/internal/index"
	"robustconf/internal/index/btree"
	"robustconf/internal/index/bwtree"
	"robustconf/internal/metrics"
	"robustconf/internal/obs"
	"robustconf/internal/topology"
	"robustconf/internal/wal"
)

// walIndex is the slice of the index contract the durable wrapper needs:
// point ops plus an ordered scan for snapshots and hashing.
type walIndex interface {
	Get(k uint64, st *index.OpStats) (uint64, bool)
	Insert(k, v uint64, st *index.OpStats) bool
	Update(k, v uint64, st *index.OpStats) bool
	Delete(k uint64, st *index.OpStats) bool
	Scan(lo, hi uint64, fn func(k, v uint64) bool, st *index.OpStats) int
}

// WALTree wraps an ordered index with the logical record codec and the
// core.Durable contract: snapshots stream the sorted contents, restore
// rebuilds a fresh inner index and swaps it in atomically (bypass readers
// may race the swap; the atomic pointer keeps the race benign — their
// validation already fails post-crash, the load must merely be untorn).
type WALTree struct {
	fresh func() walIndex
	cur   atomic.Value // walIndex
	crs   bool
}

// NewWALTree builds a B-Tree-backed durable wrapper (delegation-only reads,
// like the raw B-Tree).
func NewWALTree() *WALTree {
	t := &WALTree{fresh: func() walIndex { return btree.New() }}
	t.cur.Store(t.fresh())
	return t
}

// NewWALBwTree builds a Bw-Tree-backed durable wrapper; the Bw-Tree's reads
// are concurrent-safe, so the wrapper arms the read-bypass path.
func NewWALBwTree() *WALTree {
	t := &WALTree{fresh: func() walIndex { return bwtree.New() }, crs: true}
	t.cur.Store(t.fresh())
	return t
}

func (t *WALTree) inner() walIndex { return t.cur.Load().(walIndex) }

// ConcurrentReadSafe forwards the inner index's read-safety, so core arms
// (or refuses) the bypass path exactly as it would for the bare index.
func (t *WALTree) ConcurrentReadSafe() bool { return t.crs }

// Get/Insert/Update/Delete/Scan forward to the current inner index.
func (t *WALTree) Get(k uint64) (uint64, bool) { return t.inner().Get(k, nil) }
func (t *WALTree) Insert(k, v uint64) bool     { return t.inner().Insert(k, v, nil) }
func (t *WALTree) Update(k, v uint64) bool     { return t.inner().Update(k, v, nil) }
func (t *WALTree) Delete(k uint64) bool        { return t.inner().Delete(k, nil) }
func (t *WALTree) Scan(fn func(k, v uint64) bool) {
	t.inner().Scan(0, ^uint64(0), fn, nil)
}

// Set upserts k to v (the idempotent post-state effect every record encodes).
func (t *WALTree) Set(k, v uint64) {
	in := t.inner()
	if !in.Insert(k, v, nil) {
		in.Update(k, v, nil)
	}
}

// Logical record codec: a record is the idempotent post-state effect of one
// committed task — re-applying any committed suffix converges.
const (
	walRecSet    byte = 1 // [k u64][v u64]      → set k to v
	walRecDelete byte = 2 // [k u64]             → delete k
	walRecPair   byte = 3 // [k1 u64][k2 u64][v u64] → set both keys to v
)

// AppendWALSet encodes a set record.
func AppendWALSet(dst []byte, k, v uint64) []byte {
	dst = append(dst, walRecSet)
	dst = binary.LittleEndian.AppendUint64(dst, k)
	return binary.LittleEndian.AppendUint64(dst, v)
}

// AppendWALDelete encodes a delete record.
func AppendWALDelete(dst []byte, k uint64) []byte {
	dst = append(dst, walRecDelete)
	return binary.LittleEndian.AppendUint64(dst, k)
}

// AppendWALPair encodes a two-key set record: both keys move to v in one
// record, so a recovered state never shows the pair torn.
func AppendWALPair(dst []byte, k1, k2, v uint64) []byte {
	dst = append(dst, walRecPair)
	dst = binary.LittleEndian.AppendUint64(dst, k1)
	dst = binary.LittleEndian.AppendUint64(dst, k2)
	return binary.LittleEndian.AppendUint64(dst, v)
}

// WALSnapshot streams the sorted contents as fixed 16-byte pairs.
func (t *WALTree) WALSnapshot(w io.Writer) error {
	var buf [16]byte
	var err error
	t.inner().Scan(0, ^uint64(0), func(k, v uint64) bool {
		binary.LittleEndian.PutUint64(buf[:8], k)
		binary.LittleEndian.PutUint64(buf[8:], v)
		_, err = w.Write(buf[:])
		return err == nil
	}, nil)
	return err
}

// restoreChunk sizes WALRestore's read buffer: 4Ki pairs per read call, so
// restoring a checkpoint costs one read syscall per 64KiB instead of one
// per 16-byte pair.
const restoreChunk = 1 << 16

// WALRestore rebuilds the wrapper in place from a snapshot stream: a fresh
// inner index is filled and swapped in atomically. The stream is consumed
// in chunks, and the pairs arrive sorted (WALSnapshot scans in order), so
// the inner index's sorted-load fast path sees a pure ascending key
// sequence.
func (t *WALTree) WALRestore(r io.Reader) error {
	in := t.fresh()
	buf := make([]byte, restoreChunk)
	fill := 0
	for {
		n, err := r.Read(buf[fill:])
		fill += n
		rest := 0
		for ; rest+16 <= fill; rest += 16 {
			in.Insert(binary.LittleEndian.Uint64(buf[rest:rest+8]),
				binary.LittleEndian.Uint64(buf[rest+8:rest+16]), nil)
		}
		fill = copy(buf, buf[rest:fill])
		if err == io.EOF {
			if fill != 0 {
				return io.ErrUnexpectedEOF
			}
			break
		}
		if err != nil {
			return err
		}
	}
	t.cur.Store(in)
	return nil
}

// ExecBatch implements delegation.BatchKernel by forwarding to the inner
// index's batch kernel when it has one, so a WAL-wrapped structure keeps
// the interleaved-execution axis (DESIGN.md §15); an inner index without a
// kernel executes the group serially through the wrapper's point ops —
// observationally identical, per the kernel contract.
func (t *WALTree) ExecBatch(kinds []uint8, keys, vals, outVals []uint64, outOKs []bool) {
	in := t.inner()
	if bk, ok := in.(index.BatchKernel); ok {
		bk.ExecBatch(kinds, keys, vals, outVals, outOKs)
		return
	}
	for i := range kinds {
		switch kinds[i] {
		case index.BatchGet:
			outVals[i], outOKs[i] = in.Get(keys[i], nil)
		case index.BatchInsert:
			outVals[i], outOKs[i] = 0, in.Insert(keys[i], vals[i], nil)
		case index.BatchUpdate:
			outVals[i], outOKs[i] = 0, in.Update(keys[i], vals[i], nil)
		case index.BatchDelete:
			outVals[i], outOKs[i] = 0, in.Delete(keys[i], nil)
		}
	}
}

// WALApply applies one committed logical record.
func (t *WALTree) WALApply(rec []byte) error {
	if len(rec) < 9 {
		return fmt.Errorf("harness: short WAL record (%d bytes)", len(rec))
	}
	k := binary.LittleEndian.Uint64(rec[1:9])
	switch rec[0] {
	case walRecSet:
		if len(rec) < 17 {
			return fmt.Errorf("harness: short set record")
		}
		t.Set(k, binary.LittleEndian.Uint64(rec[9:17]))
	case walRecDelete:
		t.inner().Delete(k, nil)
	case walRecPair:
		if len(rec) < 25 {
			return fmt.Errorf("harness: short pair record")
		}
		v := binary.LittleEndian.Uint64(rec[17:25])
		t.Set(k, v)
		t.Set(binary.LittleEndian.Uint64(rec[9:17]), v)
	default:
		return fmt.Errorf("harness: unknown WAL record kind %d", rec[0])
	}
	return nil
}

// Hash folds the sorted contents into an FNV-1a digest; equal digests over
// sorted scans mean byte-equal snapshots.
func (t *WALTree) Hash() uint64 {
	h := uint64(14695981039346656037)
	var buf [16]byte
	t.inner().Scan(0, ^uint64(0), func(k, v uint64) bool {
		binary.LittleEndian.PutUint64(buf[:8], k)
		binary.LittleEndian.PutUint64(buf[8:], v)
		for _, b := range buf {
			h = (h ^ uint64(b)) * 1099511628211
		}
		return true
	}, nil)
	return h
}

// WALChaosSchedules returns the crash schedules the WAL chaos suite runs:
// plain worker kills, kills inside the group commit, torn segment tails,
// and a mixed storm of all three.
func WALChaosSchedules() []ChaosSchedule {
	return []ChaosSchedule{
		{
			Name: "wal-kill",
			Rules: []faultinject.Rule{
				{Kind: faultinject.WorkerKill, Worker: -1, EveryNth: 150},
			},
		},
		{
			Name: "wal-kill-commit",
			Rules: []faultinject.Rule{
				{Kind: faultinject.WALKillCommit, Worker: -1, EveryNth: 40},
			},
		},
		{
			Name: "wal-torn-tail",
			Rules: []faultinject.Rule{
				{Kind: faultinject.WALTornTail, Worker: -1, EveryNth: 40},
			},
		},
		{
			Name: "wal-mixed",
			Rules: []faultinject.Rule{
				{Kind: faultinject.WorkerKill, Worker: -1, EveryNth: 250},
				{Kind: faultinject.WALKillCommit, Worker: -1, EveryNth: 60},
				{Kind: faultinject.WALTornTail, Worker: -1, EveryNth: 70},
			},
		},
	}
}

// WALChaosReport summarises one WAL chaos run against its golden twin.
type WALChaosReport struct {
	Schedule      string
	Seed          int64
	Ops           int    // operations that eventually succeeded
	Retries       int    // extra attempts spent on crashed batches
	Recoveries    uint64 // checkpoint-restore + replay passes
	Replayed      uint64 // records replayed across recoveries
	Committed     uint64 // records group-committed
	Kills         uint64 // injected crashes that fired (all kinds)
	Hash          uint64 // final state digest of the faulted run
	Golden        uint64 // final state digest of the crash-free run
	ArenaResets   uint64 // sweep-batch arena recycles (arena runs only)
	ArenaDiscards uint64 // crash-recovery arena discards (arena runs only)
}

func (r WALChaosReport) String() string {
	return fmt.Sprintf("wal-chaos %-16s seed=%-3d ops=%-5d retries=%-4d recoveries=%-3d replayed=%-5d committed=%-5d kills=%-3d equal=%v",
		r.Schedule, r.Seed, r.Ops, r.Retries, r.Recoveries, r.Replayed, r.Committed, r.Kills, r.Equal())
}

// Equal reports the golden equality: the faulted run converged to the
// crash-free state.
func (r WALChaosReport) Equal() bool { return r.Hash == r.Golden }

// walWorkloadValue derives the deterministic value each key converges to.
func walWorkloadValue(k uint64, seed int64) uint64 {
	return k*0x9E3779B97F4A7C15 + uint64(seed)
}

// runWALWorkload runs the seeded workload — sessions × opsPerSession logged
// upserts split across two single-structure domains — against a runtime with
// the WAL rooted at dir, retrying each operation until it commits. It
// returns the final state digest and the per-domain durability counters.
// With arena.Enabled the domains run per-worker batch arenas (the WAL's
// record staging draws from them) and the report carries the arena
// recycle/discard counters.
func runWALWorkload(dir string, rules []faultinject.Rule, seed int64, sessions, opsPerSession int, fsync wal.FsyncMode, arena core.ArenaConfig) (WALChaosReport, error) {
	rep := WALChaosReport{Seed: seed}
	m, err := topology.Restricted(1)
	if err != nil {
		return rep, err
	}
	t1, t2 := NewWALTree(), NewWALTree()
	cfg := core.Config{
		Machine: m,
		Domains: []core.DomainSpec{
			{Name: "w0", CPUs: topology.Range(0, 4), RestartBudget: 1 << 20},
			{Name: "w1", CPUs: topology.Range(4, 8), RestartBudget: 1 << 20},
		},
		Assignment: map[string]int{"wtree": 0, "wtree2": 1},
		Faults:     &metrics.FaultCounters{},
		WAL:        core.WALConfig{Dir: dir, Fsync: fsync},
		Arena:      arena,
	}
	var observer *obs.Observer
	if arena.Enabled {
		observer = obs.New(obs.Options{})
		cfg.Obs = observer
	}
	if len(rules) > 0 {
		cfg.FaultHook = faultinject.New(seed, rules...)
	}
	rt, err := core.Start(cfg, map[string]any{"wtree": t1, "wtree2": t2})
	if err != nil {
		return rep, err
	}

	var ops, retries atomic.Int64
	var firstErr atomic.Value
	var wg sync.WaitGroup
	for g := 0; g < sessions; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			s, err := rt.NewSession(g%m.LogicalCPUs(), 4)
			if err != nil {
				firstErr.CompareAndSwap(nil, err)
				return
			}
			defer s.Close()
			structure := "wtree"
			if g%2 == 1 {
				structure = "wtree2"
			}
			tree := t1
			if g%2 == 1 {
				tree = t2
			}
			for i := 0; i < opsPerSession; i++ {
				k := uint64(g*opsPerSession + i)
				v := walWorkloadValue(k, seed)
				task := core.Task{
					Structure: structure,
					Op:        func(any) any { tree.Set(k, v); return k },
					Log:       func(dst []byte) []byte { return AppendWALSet(dst, k, v) },
				}
				// Retry until the record commits: a nil Invoke error means
				// durable; a typed error means the batch crashed before its
				// commit and the effect was (or will be) wiped by recovery.
				committed := false
				for attempt := 0; attempt < 1000; attempt++ {
					if _, err := s.Invoke(task); err == nil {
						committed = true
						break
					}
					retries.Add(1)
				}
				if !committed {
					firstErr.CompareAndSwap(nil, fmt.Errorf("harness: op on key %d never committed", k))
					return
				}
				ops.Add(1)
			}
		}(g)
	}
	wg.Wait()
	rt.Stop()

	if e := firstErr.Load(); e != nil {
		return rep, e.(error)
	}
	rep.Ops = int(ops.Load())
	rep.Retries = int(retries.Load())
	for _, d := range rt.Domains() {
		st := d.WALStats()
		rep.Recoveries += st.Recoveries
		rep.Replayed += st.Replayed
		rep.Committed += st.Committed
	}
	if cfg.FaultHook != nil {
		for _, n := range cfg.FaultHook.(*faultinject.Injector).Counts() {
			rep.Kills += n
		}
	}
	if observer != nil {
		for _, d := range observer.Snapshot().Domains {
			rep.ArenaResets += uint64(d.ArenaResets)
			rep.ArenaDiscards += uint64(d.ArenaDiscards)
		}
	}
	h1, h2 := t1.Hash(), t2.Hash()
	rep.Hash = h1*31 + h2
	return rep, nil
}

// RunWALChaos executes the golden-equality check for one schedule: the
// seeded workload runs once crash-free and once under the schedule's
// injected crashes (both WAL-enabled, logs rooted under dir), and the
// report carries both final-state digests. Equal() failing means recovery
// lost or invented state.
func RunWALChaos(dir string, sched ChaosSchedule, seed int64, sessions, opsPerSession int, fsync wal.FsyncMode) (WALChaosReport, error) {
	return runWALChaos(dir, sched, seed, sessions, opsPerSession, fsync, core.ArenaConfig{})
}

// RunWALChaosArena is RunWALChaos with per-worker batch arenas enabled in
// both the golden and the faulted run: WAL record staging draws from arena
// memory recycled at sweep-batch boundaries, checkpoints reset the arenas
// under the gate, and crash recovery discards the crashed worker's arena
// before replay. Equal() failing here means recycled arena memory leaked
// into (or was torn out of) the durable state.
func RunWALChaosArena(dir string, sched ChaosSchedule, seed int64, sessions, opsPerSession int, fsync wal.FsyncMode) (WALChaosReport, error) {
	return runWALChaos(dir, sched, seed, sessions, opsPerSession, fsync, core.ArenaConfig{Enabled: true})
}

func runWALChaos(dir string, sched ChaosSchedule, seed int64, sessions, opsPerSession int, fsync wal.FsyncMode, arena core.ArenaConfig) (WALChaosReport, error) {
	golden, err := runWALWorkload(dir+"/golden", nil, seed, sessions, opsPerSession, fsync, arena)
	if err != nil {
		return golden, err
	}
	rep, err := runWALWorkload(dir+"/faulted", sched.Rules, seed, sessions, opsPerSession, fsync, arena)
	if err != nil {
		return rep, err
	}
	rep.Schedule = sched.Name
	rep.Golden = golden.Hash
	return rep, nil
}
