package harness

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"robustconf/internal/core"
	"robustconf/internal/faultinject"
	"robustconf/internal/metrics"
	"robustconf/internal/topology"
	"robustconf/internal/wal"
)

// walChaosScale shrinks the WAL suite under -short; like chaosScale it also
// returns the EveryNth divisor keeping crash rules firing in shrunk runs.
func walChaosScale(t *testing.T) (sessions, ops int, seeds []int64, div uint64) {
	if testing.Short() {
		return 4, 150, []int64{1}, 4
	}
	return 6, 400, []int64{1, 7}, 1
}

// TestChaosWALGoldenEquality is the durability acceptance gate (DESIGN.md
// §13): for every crash schedule — worker kills, kills inside the group
// commit, torn segment tails, and the mixed storm — a seeded run with
// injected crashes plus checkpoint/replay recovery must reach a final state
// byte-equal to the crash-free run of the same seed.
func TestChaosWALGoldenEquality(t *testing.T) {
	sessions, ops, seeds, div := walChaosScale(t)
	sawRecovery := false
	for _, sched := range WALChaosSchedules() {
		sched := sched.Scaled(div)
		for _, seed := range seeds {
			r, err := RunWALChaos(t.TempDir(), sched, seed, sessions, ops, wal.FsyncBatch)
			if err != nil {
				t.Fatalf("%s/seed %d: %v", sched.Name, seed, err)
			}
			t.Log(r)
			if !r.Equal() {
				t.Errorf("%s/seed %d: faulted state diverged from golden (hash %x, golden %x)",
					sched.Name, seed, r.Hash, r.Golden)
			}
			if r.Ops != sessions*ops {
				t.Errorf("%s/seed %d: only %d of %d ops committed", sched.Name, seed, r.Ops, sessions*ops)
			}
			if r.Recoveries > 0 {
				sawRecovery = true
			}
		}
	}
	if !sawRecovery {
		t.Error("no schedule triggered a recovery; the replay path was never exercised")
	}
}

// TestChaosWALRecoveryObserved pins that the kill-inside-commit schedule
// actually loses batches and heals them: retries happened (a client saw a
// commit fail), recovery ran, and committed records were replayed.
func TestChaosWALRecoveryObserved(t *testing.T) {
	sessions, ops, _, div := walChaosScale(t)
	sched := WALChaosSchedules()[1].Scaled(div) // wal-kill-commit
	for _, seed := range []int64{3, 5, 9} {
		r, err := RunWALChaos(t.TempDir(), sched, seed, sessions, ops, wal.FsyncBatch)
		if err != nil {
			t.Fatal(err)
		}
		t.Log(r)
		if !r.Equal() {
			t.Fatalf("seed %d: state diverged: %v", seed, r)
		}
		if r.Kills > 0 {
			if r.Recoveries == 0 {
				t.Fatalf("seed %d: %d commit kills fired but no recovery ran", seed, r.Kills)
			}
			if r.Retries == 0 {
				t.Fatalf("seed %d: commit kills fired but no client ever retried", seed)
			}
			return
		}
	}
	t.Skip("no commit kill fired on this machine's sweep rate; equality still held")
}

// TestChaosWALCrashDuringMigration composes the three robustness layers:
// crash recovery (WAL replay), online migration (epoch-validated bypass
// reads) and the fault injector. A Bw-Tree-backed durable structure is
// migrated back and forth between two WAL-enabled domains while writers
// update key pairs atomically (one two-key record per task), readers hammer
// the bypass path, and the injector kills workers in and out of group
// commits. A half-migrated or half-recovered structure serving a bypass
// read would show up as a torn pair; pair atomicity through checkpoint,
// replay and migration is the assertion.
func TestChaosWALCrashDuringMigration(t *testing.T) {
	const pairs = 1 << 9
	writes, readers := 4000, 3
	seeds := []int64{1, 7}
	if testing.Short() {
		writes, seeds = 1200, []int64{1}
	}
	m, err := topology.Restricted(1)
	if err != nil {
		t.Fatal(err)
	}

	for _, seed := range seeds {
		tree := NewWALBwTree()
		for k := uint64(0); k < pairs; k++ {
			tree.Set(k, 0)
			tree.Set(k+pairs, 0)
		}
		injector := faultinject.New(seed,
			faultinject.Rule{Kind: faultinject.WorkerKill, Worker: -1, EveryNth: 180},
			faultinject.Rule{Kind: faultinject.WALKillCommit, Worker: -1, EveryNth: 80},
			faultinject.Rule{Kind: faultinject.WALTornTail, Worker: -1, EveryNth: 90},
		)
		cfg := core.Config{
			Machine: m,
			Domains: []core.DomainSpec{
				{Name: "m0", CPUs: topology.Range(0, 2), RestartBudget: 1 << 20},
				{Name: "m1", CPUs: topology.Range(2, 4), RestartBudget: 1 << 20},
			},
			Assignment:   map[string]int{"wtree": 0},
			ReadPolicies: map[string]core.ReadPolicy{"wtree": core.ReadBypass},
			FaultHook:    injector,
			Faults:       &metrics.FaultCounters{},
			WAL:          core.WALConfig{Dir: t.TempDir(), Fsync: wal.FsyncBatch, CheckpointEvery: 20 * time.Millisecond},
		}
		rt, err := core.Start(cfg, map[string]any{"wtree": tree})
		if err != nil {
			t.Fatal(err)
		}
		if got := rt.EffectiveReadPolicy("wtree"); got != core.ReadBypass {
			t.Fatalf("seed %d: Bw-Tree wrapper should arm bypass, effective policy %v", seed, got)
		}

		var done atomic.Bool
		var torn, readsDone atomic.Uint64
		var wg sync.WaitGroup
		for r := 0; r < readers; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				s, err := rt.NewSession(r%m.LogicalCPUs(), 2)
				if err != nil {
					t.Error(err)
					return
				}
				defer s.Close()
				rng := rand.New(rand.NewSource(seed<<8 | int64(r)))
				for !done.Load() {
					k := uint64(rng.Intn(pairs))
					res, err := s.SubmitRead(core.Task{Structure: "wtree", Op: func(ds any) any {
						wt := ds.(*WALTree)
						v1, _ := wt.Get(k)
						v2, _ := wt.Get(k + pairs)
						return [2]uint64{v1, v2}
					}})
					readsDone.Add(1)
					if err != nil {
						continue // typed failure under chaos; resolution is what counts
					}
					pair := res.([2]uint64)
					if pair[0] != pair[1] {
						torn.Add(1)
					}
				}
			}(r)
		}

		migrations := 0
		wg.Add(1)
		go func() {
			defer wg.Done()
			for to := 1; !done.Load(); to ^= 1 {
				if err := rt.Migrate("wtree", to); err != nil {
					t.Error(err)
					return
				}
				migrations++
				time.Sleep(500 * time.Microsecond)
			}
		}()

		ws, err := rt.NewSession(0, 4)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(seed))
		committed := 0
		for i := 0; i < writes; i++ {
			g := uint64(i + 1)
			k := uint64(rng.Intn(pairs))
			task := core.Task{
				Structure: "wtree",
				Op: func(ds any) any {
					wt := ds.(*WALTree)
					wt.Set(k, g)
					wt.Set(k+pairs, g)
					return g
				},
				Log: func(dst []byte) []byte { return AppendWALPair(dst, k, k+pairs, g) },
			}
			if _, err := ws.Invoke(task); err == nil {
				committed++
			}
			// A failed pair write crashed before its group commit: recovery
			// wipes both halves together (the record is atomic), so no retry
			// is needed for the pair invariant.
		}
		done.Store(true)
		wg.Wait()
		_ = ws.Close()
		rt.Stop()

		if n := torn.Load(); n > 0 {
			t.Errorf("seed %d: %d torn pair reads observed (of %d reads)", seed, n, readsDone.Load())
		}
		// The final state must also hold the invariant structurally.
		finalTorn := 0
		tree.Scan(func(k, v uint64) bool {
			if k < pairs {
				if v2, ok := tree.Get(k + pairs); !ok || v2 != v {
					finalTorn++
				}
			}
			return true
		})
		if finalTorn > 0 {
			t.Errorf("seed %d: %d pairs torn in the final recovered state", seed, finalTorn)
		}
		if migrations == 0 {
			t.Errorf("seed %d: migration loop never ran", seed)
		}
		var recoveries, replayed uint64
		for _, d := range rt.Domains() {
			st := d.WALStats()
			recoveries += st.Recoveries
			replayed += st.Replayed
		}
		t.Logf("seed %d: writes=%d committed=%d reads=%d migrations=%d recoveries=%d replayed=%d injected=%v",
			seed, writes, committed, readsDone.Load(), migrations, recoveries, replayed, injector.Counts())
		if committed == 0 {
			t.Errorf("seed %d: no pair write ever committed", seed)
		}
	}
}
