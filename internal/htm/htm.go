// Package htm emulates hardware transactional memory (Intel TSX style) in
// software, so the FP-Tree's synchronisation scheme — HTM-guarded traversal
// with a global-lock fallback — executes for real on hardware without TSX.
//
// The emulation is a small software transactional memory over version locks:
// a transaction records the versions of the cells it reads, defers its
// writes, and at commit acquires the written cells and validates the read
// set. A validation failure or a busy cell aborts the transaction, which is
// retried up to MaxRetries times before the global fallback lock is taken —
// exactly the lock-elision pattern TSX code uses. The fallback lock itself
// is part of every transaction's read set, so taking it aborts all
// concurrent transactions, as on real hardware.
//
// A companion analytical model (model.go) predicts abort ratios as a
// function of domain size and NUMA span for the machine simulator, following
// the measurements of Brown et al. (SPAA'16) that the paper cites.
package htm

import (
	"errors"
	"sync"
	"sync/atomic"

	"robustconf/internal/syncprims"
)

// ErrAbort is returned by transaction operations when the transaction has
// conflicted and must be retried; bodies must propagate it immediately.
var ErrAbort = errors.New("htm: transaction aborted")

// DefaultMaxRetries is the number of transactional attempts before the
// fallback lock is taken. Real TSX deployments typically retry 3–10 times.
const DefaultMaxRetries = 8

// DefaultCapacity bounds the read+write set size (in tracked cells) before a
// capacity abort, emulating the L1-residency limit of real HTM.
const DefaultCapacity = 1024

// Stats counts transactional outcomes; all fields are safe for concurrent
// update and read.
type Stats struct {
	Commits   atomic.Uint64 // transactions committed transactionally
	Aborts    atomic.Uint64 // aborted attempts (conflict, capacity, explicit)
	Fallbacks atomic.Uint64 // executions that took the global lock
}

// AbortRatio returns aborts/(aborts+commits), the quantity Figure 8 plots.
func (s *Stats) AbortRatio() float64 {
	a, c := float64(s.Aborts.Load()), float64(s.Commits.Load())
	if a+c == 0 {
		return 0
	}
	return a / (a + c)
}

// Region is one elided critical section, e.g. "all operations on this
// FP-Tree". The zero value is NOT ready; use NewRegion.
type Region struct {
	fallback   syncprims.VersionLock
	maxRetries int
	capacity   int
	Stats      Stats

	// txPool recycles transaction descriptors (and their read/write-set
	// backing arrays) across Atomic calls, so a steady-state transaction
	// allocates nothing. Safe under concurrent Atomic callers.
	txPool sync.Pool

	// commitGate makes the fallback-lock check atomic with commit:
	// transactional commits hold the read side across [validate
	// fallback version; commit]; the fallback body holds the write
	// side. Without it a fallback execution — whose writes apply
	// directly, without bumping cell versions — can interleave with an
	// in-flight commit that already passed the fallback check, and the
	// two apply concurrently (e.g. double-inserting one key). Real HTM
	// has no such window: the fallback lock sits in the hardware read
	// set, monitored to the commit instant.
	commitGate sync.RWMutex
}

// NewRegion returns a region with default retry and capacity limits.
func NewRegion() *Region {
	return &Region{maxRetries: DefaultMaxRetries, capacity: DefaultCapacity}
}

// NewRegionLimits returns a region with explicit limits, for tests and
// ablation benchmarks.
func NewRegionLimits(maxRetries, capacity int) *Region {
	if maxRetries < 0 {
		maxRetries = 0
	}
	if capacity < 1 {
		capacity = 1
	}
	return &Region{maxRetries: maxRetries, capacity: capacity}
}

// Tx is one in-flight transaction attempt. A Tx is only valid inside the
// body passed to Atomic and must not escape it.
type Tx struct {
	region   *Region
	fallback bool // running under the global lock: operations apply directly
	reads    []readEntry
	writes   []writeEntry
}

type readEntry struct {
	lock    *syncprims.VersionLock
	version uint64
}

type writeEntry struct {
	lock  *syncprims.VersionLock
	apply func()
}

// Fallback reports whether this attempt runs under the global lock. Bodies
// can use it for accounting (the FP-Tree counts fallback executions).
func (tx *Tx) Fallback() bool { return tx.fallback }

// Read registers cell l in the read set. The caller may then read the data
// the cell guards; commit-time validation ensures the snapshot was
// consistent. Returns ErrAbort when the cell is write-locked or the
// capacity limit is exceeded.
func (tx *Tx) Read(l *syncprims.VersionLock) error {
	if tx.fallback {
		return nil
	}
	if len(tx.reads)+len(tx.writes) >= tx.region.capacity {
		return ErrAbort
	}
	v := l.Version()
	if v&1 == 1 {
		return ErrAbort // a writer holds the cell: conflict abort
	}
	tx.reads = append(tx.reads, readEntry{lock: l, version: v})
	return nil
}

// Write schedules apply to run under cell l at commit time. In fallback mode
// apply runs immediately (the global lock already serialises everything).
func (tx *Tx) Write(l *syncprims.VersionLock, apply func()) error {
	if tx.fallback {
		apply()
		return nil
	}
	if len(tx.reads)+len(tx.writes) >= tx.region.capacity {
		return ErrAbort
	}
	tx.writes = append(tx.writes, writeEntry{lock: l, apply: apply})
	return nil
}

// Abort forces an explicit abort of the current attempt (e.g. the body found
// a state it cannot handle transactionally).
func (tx *Tx) Abort() error { return ErrAbort }

// commit acquires write cells, validates the read set, applies the writes
// and releases. It reports whether the transaction committed.
func (tx *Tx) commit() bool {
	// Acquire written cells; any busy cell is a conflict.
	acquired := 0
	ok := true
	for _, w := range tx.writes {
		if !w.lock.TryWriteLock() {
			ok = false
			break
		}
		acquired++
	}
	if ok {
		// Validate reads: a cell we also write moved from even v to odd
		// v+1 by our own acquisition, so accept v+1 for owned cells.
		for _, r := range tx.reads {
			cur := r.lock.Version()
			if cur == r.version {
				continue
			}
			if cur == r.version+1 && tx.owns(r.lock) {
				continue
			}
			ok = false
			break
		}
	}
	if !ok {
		for i := 0; i < acquired; i++ {
			// Roll back the acquisition: WriteUnlock bumps odd→even,
			// which is correct — the cell was untouched but observers
			// must re-validate anyway.
			tx.writes[i].lock.WriteUnlock()
		}
		return false
	}
	for _, w := range tx.writes {
		w.apply()
	}
	for _, w := range tx.writes {
		w.lock.WriteUnlock()
	}
	return true
}

func (tx *Tx) owns(l *syncprims.VersionLock) bool {
	for _, w := range tx.writes {
		if w.lock == l {
			return true
		}
	}
	return false
}

// acquireTx returns a recycled (or fresh) transaction descriptor with
// empty read/write sets.
func (r *Region) acquireTx() *Tx {
	tx, _ := r.txPool.Get().(*Tx)
	if tx == nil {
		tx = &Tx{region: r}
	}
	return tx
}

// releaseTx clears the descriptor (dropping closure references so the
// pool never pins caller state) and returns it for reuse. The Tx
// contract — it must not escape the Atomic body — is what makes the
// recycling safe.
func (r *Region) releaseTx(tx *Tx) {
	tx.resetSets()
	tx.fallback = false
	r.txPool.Put(tx)
}

// resetSets empties the read/write sets, keeping their capacity but
// dropping apply-closure references.
func (tx *Tx) resetSets() {
	tx.reads = tx.reads[:0]
	for i := range tx.writes {
		tx.writes[i] = writeEntry{}
	}
	tx.writes = tx.writes[:0]
}

// Atomic executes body as a memory transaction, retrying on aborts and
// falling back to the region's global lock after MaxRetries attempts. The
// body may be executed several times and must be idempotent up to its Tx
// writes (which only apply on commit). Any non-ErrAbort error is returned
// to the caller after the transaction machinery unwinds.
func (r *Region) Atomic(body func(tx *Tx) error) error {
	tx := r.acquireTx()
	defer r.releaseTx(tx)
	for attempt := 0; attempt <= r.maxRetries; attempt++ {
		tx.resetSets()
		// The fallback lock is in every read set: holders abort us.
		fbVersion := r.fallback.Version()
		if fbVersion&1 == 1 {
			r.Stats.Aborts.Add(1)
			continue // lock held: spin via retry loop
		}
		err := body(tx)
		if err != nil && !errors.Is(err, ErrAbort) {
			return err
		}
		if err == nil {
			r.commitGate.RLock()
			ok := r.fallback.Version() == fbVersion && tx.commit()
			r.commitGate.RUnlock()
			if ok {
				r.Stats.Commits.Add(1)
				return nil
			}
		}
		r.Stats.Aborts.Add(1)
	}
	// Fallback: serialise under the global lock, aborting all concurrent
	// transactions (they validate the fallback lock's version). Taking
	// the commitGate write side drains in-flight commits before the body
	// reads anything, and blocks new commits until it finishes.
	r.fallback.WriteLock()
	r.commitGate.Lock()
	defer func() {
		r.commitGate.Unlock()
		r.fallback.WriteUnlock()
	}()
	r.Stats.Fallbacks.Add(1)
	tx.resetSets()
	tx.fallback = true
	return body(tx)
}
