package htm

import (
	"errors"
	"sync"
	"testing"

	"robustconf/internal/syncprims"
)

func TestAtomicCommitsSimpleWrite(t *testing.T) {
	r := NewRegion()
	var cell syncprims.VersionLock
	value := 0
	err := r.Atomic(func(tx *Tx) error {
		return tx.Write(&cell, func() { value = 42 })
	})
	if err != nil {
		t.Fatal(err)
	}
	if value != 42 {
		t.Errorf("value = %d, want 42", value)
	}
	if r.Stats.Commits.Load() != 1 {
		t.Errorf("commits = %d, want 1", r.Stats.Commits.Load())
	}
	if r.Stats.Aborts.Load() != 0 || r.Stats.Fallbacks.Load() != 0 {
		t.Errorf("unexpected aborts/fallbacks: %d/%d", r.Stats.Aborts.Load(), r.Stats.Fallbacks.Load())
	}
}

func TestWritesDeferredUntilCommit(t *testing.T) {
	r := NewRegion()
	var cell syncprims.VersionLock
	value := 0
	_ = r.Atomic(func(tx *Tx) error {
		if err := tx.Write(&cell, func() { value++ }); err != nil {
			return err
		}
		if value != 0 {
			t.Error("write applied before commit")
		}
		return nil
	})
	if value != 1 {
		t.Errorf("value = %d, want 1 after commit", value)
	}
}

func TestReadValidation(t *testing.T) {
	r := NewRegion()
	var cell syncprims.VersionLock
	data := 10
	err := r.Atomic(func(tx *Tx) error {
		if err := tx.Read(&cell); err != nil {
			return err
		}
		_ = data
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Stats.Commits.Load() != 1 {
		t.Error("read-only tx should commit")
	}
}

func TestReadOfLockedCellAborts(t *testing.T) {
	r := NewRegionLimits(0, 16) // no retries → immediate fallback
	var cell syncprims.VersionLock
	cell.WriteLock()
	// The single transactional attempt must abort (cell write-locked); the
	// fallback path does not validate the cell, so Atomic completes via the
	// global lock even while the cell stays locked.
	err := r.Atomic(func(tx *Tx) error {
		if err := tx.Read(&cell); err != nil {
			return err
		}
		return nil
	})
	cell.WriteUnlock()
	if err != nil {
		t.Fatal(err)
	}
	if r.Stats.Fallbacks.Load() != 1 {
		t.Errorf("fallbacks = %d, want 1", r.Stats.Fallbacks.Load())
	}
	if r.Stats.Aborts.Load() == 0 {
		t.Error("expected at least one abort")
	}
}

func TestExplicitAbortFallsBack(t *testing.T) {
	r := NewRegionLimits(2, 16)
	attempts := 0
	err := r.Atomic(func(tx *Tx) error {
		attempts++
		if !tx.Fallback() {
			return tx.Abort()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// maxRetries=2 → 3 transactional attempts + 1 fallback execution.
	if attempts != 4 {
		t.Errorf("attempts = %d, want 4", attempts)
	}
	if r.Stats.Fallbacks.Load() != 1 {
		t.Errorf("fallbacks = %d, want 1", r.Stats.Fallbacks.Load())
	}
	if r.Stats.Aborts.Load() != 3 {
		t.Errorf("aborts = %d, want 3", r.Stats.Aborts.Load())
	}
}

func TestCapacityAbort(t *testing.T) {
	r := NewRegionLimits(0, 4)
	cells := make([]syncprims.VersionLock, 10)
	fallbackUsed := false
	err := r.Atomic(func(tx *Tx) error {
		if tx.Fallback() {
			fallbackUsed = true
			return nil
		}
		for i := range cells {
			if err := tx.Read(&cells[i]); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !fallbackUsed {
		t.Error("oversized tx should fall back")
	}
}

func TestNonAbortErrorPropagates(t *testing.T) {
	r := NewRegion()
	sentinel := errors.New("boom")
	err := r.Atomic(func(tx *Tx) error { return sentinel })
	if !errors.Is(err, sentinel) {
		t.Errorf("err = %v, want sentinel", err)
	}
	if r.Stats.Commits.Load() != 0 {
		t.Error("errored body must not commit")
	}
}

func TestConcurrentCounterNoLostUpdates(t *testing.T) {
	r := NewRegion()
	var cell syncprims.VersionLock
	counter := 0
	var wg sync.WaitGroup
	const goroutines, perG = 8, 500
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				err := r.Atomic(func(tx *Tx) error {
					if err := tx.Read(&cell); err != nil {
						return err
					}
					cur := counter
					return tx.Write(&cell, func() { counter = cur + 1 })
				})
				if err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if counter != goroutines*perG {
		t.Errorf("counter = %d, want %d (lost updates)", counter, goroutines*perG)
	}
}

func TestConcurrentDisjointWritesCommitTransactionally(t *testing.T) {
	r := NewRegion()
	const n = 8
	cells := make([]syncprims.VersionLock, n)
	values := make([]int, n)
	var wg sync.WaitGroup
	for g := 0; g < n; g++ {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				err := r.Atomic(func(tx *Tx) error {
					return tx.Write(&cells[slot], func() { values[slot]++ })
				})
				if err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for i, v := range values {
		if v != 1000 {
			t.Errorf("values[%d] = %d, want 1000", i, v)
		}
	}
	// Disjoint cells should mostly commit without fallback.
	if fb := r.Stats.Fallbacks.Load(); fb > 100 {
		t.Errorf("fallbacks = %d, disjoint writes should rarely fall back", fb)
	}
}

func TestAbortRatioHelper(t *testing.T) {
	var s Stats
	if s.AbortRatio() != 0 {
		t.Error("empty stats AbortRatio should be 0")
	}
	s.Commits.Store(75)
	s.Aborts.Store(25)
	if got := s.AbortRatio(); got != 0.25 {
		t.Errorf("AbortRatio = %v, want 0.25", got)
	}
}

func TestModelMonotonicity(t *testing.T) {
	m := DefaultModel()
	// More threads → more aborts.
	prev := -1.0
	for _, threads := range []int{1, 2, 12, 24, 48, 96} {
		p := m.AbortProbability(threads, 0.5, 0)
		if p < prev {
			t.Errorf("AbortProbability not monotone in threads at %d: %v < %v", threads, p, prev)
		}
		prev = p
	}
	// Higher write fraction → more aborts.
	if m.AbortProbability(48, 0.05, 0) >= m.AbortProbability(48, 0.5, 0) {
		t.Error("abort probability should grow with write fraction")
	}
	// Larger NUMA span → more aborts.
	if m.AbortProbability(48, 0.5, 0) >= m.AbortProbability(48, 0.5, 3) {
		t.Error("abort probability should grow with NUMA span")
	}
	// Single thread never aborts.
	if m.AbortProbability(1, 1.0, 3) != 0 {
		t.Error("single thread must not abort")
	}
}

func TestModelMatchesPaperShape(t *testing.T) {
	m := DefaultModel()
	// Paper: at 24 writers on one socket (read-update) HTM still performs;
	// shared-everything across 8 sockets collapses (abort ratio → ~60-80%).
	within := m.AbortRatio(24, 0.5, 0)
	if within > 0.5 {
		t.Errorf("abort ratio at 24 threads/1 socket = %v, want moderate (<0.5)", within)
	}
	across := m.AbortRatio(384, 0.5, 3)
	if across < 0.5 {
		t.Errorf("abort ratio at 384 threads across NUMAlink = %v, want severe (>0.5)", across)
	}
	// Fallback probability must approach 1 in the collapsed regime.
	if fb := m.FallbackProbability(384, 0.5, 3); fb < 0.3 {
		t.Errorf("fallback probability at full SE = %v, want high", fb)
	}
	if fb := m.FallbackProbability(24, 0.5, 0); fb > 0.05 {
		t.Errorf("fallback probability at 24/local = %v, want tiny", fb)
	}
}

func TestExpectedAttemptsBounds(t *testing.T) {
	m := DefaultModel()
	if got := m.ExpectedAttempts(1, 0.5, 0); got != 1 {
		t.Errorf("single-thread ExpectedAttempts = %v, want 1", got)
	}
	got := m.ExpectedAttempts(384, 0.5, 3)
	if got < 1 || got > float64(m.MaxRetries)+1 {
		t.Errorf("ExpectedAttempts = %v out of [1, %d]", got, m.MaxRetries+1)
	}
}
