package htm

import "math"

// Model predicts HTM abort behaviour analytically for the machine simulator.
// It follows the empirical findings of Brown et al., "Investigating the
// Performance of Hardware Transactions on a Multi-Socket Machine" (SPAA'16),
// which the paper cites as the cause of the FP-Tree's performance collapse:
// abort probability grows with (1) the number of concurrently executing
// transactions that can conflict, (2) the write fraction of the workload,
// and (3) transaction length — and is strongly amplified once transactions
// span sockets, because longer memory latencies widen the conflict window.
type Model struct {
	// BaseConflict is the probability that two concurrent transactions
	// touch a conflicting cache line, for a single-line write footprint on
	// a Zipfian-contended structure. Calibrated so that ~24 writers on one
	// socket sit at the throughput knee the paper measures.
	BaseConflict float64
	// NUMAAmplification multiplies the conflict window per NUMA level the
	// domain spans (level 0 = socket-local). Brown et al. observe roughly
	// an order of magnitude more aborts across sockets.
	NUMAAmplification float64
	// MaxRetries before the fallback lock is taken (serialising everyone).
	MaxRetries int
}

// DefaultModel returns the calibration used throughout the experiments:
// chosen so that on a read-update workload the abort ratio at 24 writers on
// one socket sits near the throughput knee the paper's calibration finds
// (Table 2: FP-Tree wants 24-worker domains), and shared-everything across
// sockets collapses as in Figure 7.
func DefaultModel() Model {
	return Model{BaseConflict: 0.031, NUMAAmplification: 5.0, MaxRetries: DefaultMaxRetries}
}

// conflictPerPair is the probability one concurrent transaction aborts ours.
// Conflicts require a writer, so the pair probability scales with the write
// fraction, amplified per NUMA level because longer latencies widen the
// transaction's conflict window.
func (m Model) conflictPerPair(writeFraction float64, span int) float64 {
	c := m.BaseConflict * writeFraction * math.Pow(m.NUMAAmplification, float64(span))
	if c > 1 {
		c = 1
	}
	return c
}

// AbortProbability returns the per-attempt abort probability for a
// transaction executing alongside `threads` concurrent threads on the same
// structure, with the given workload write fraction, in a domain spanning
// the given worst-case NUMA level.
func (m Model) AbortProbability(threads int, writeFraction float64, span int) float64 {
	if threads <= 1 {
		return 0
	}
	c := m.conflictPerPair(writeFraction, span)
	// Independent conflicts with each of the other threads.
	return 1 - math.Pow(1-c, float64(threads-1))
}

// AbortRatio returns the steady-state fraction of transactional attempts
// that abort, the metric Figure 8 plots. With per-attempt abort probability
// p and r retries before fallback, a successful operation contributes its
// aborted attempts and either one commit or one fallback.
func (m Model) AbortRatio(threads int, writeFraction float64, span int) float64 {
	p := m.AbortProbability(threads, writeFraction, span)
	if p == 0 {
		return 0
	}
	r := float64(m.MaxRetries)
	if p > 1-1e-9 {
		// Every attempt aborts: r+1 aborts per op, zero commits.
		return 1
	}
	// Expected aborted attempts per operation: sum of the truncated
	// geometric series; expected commits per op: probability an attempt
	// eventually commits within the retry budget.
	pFallback := math.Pow(p, r+1)
	expAborts := p * (1 - math.Pow(p, r+1)) / (1 - p) // truncated geometric mean
	expCommits := 1 - pFallback
	return expAborts / (expAborts + expCommits)
}

// FallbackProbability is the chance an operation exhausts its retries and
// serialises on the global lock. Once fallbacks become common the region
// degenerates to a single global lock — the >90 % collapse the paper
// observes for shared-everything FP-Tree beyond one socket.
func (m Model) FallbackProbability(threads int, writeFraction float64, span int) float64 {
	p := m.AbortProbability(threads, writeFraction, span)
	return math.Pow(p, float64(m.MaxRetries)+1)
}

// MixedStats models an instance whose transactions are a mix of
// socket-local and cross-socket ones (the TPC-C remote-transaction setting,
// Figure 13). A remote transaction's conflict window is amplified both by
// the NUMA level it spans and by `windowFactor` — its memory accesses are
// slower, so it stays open far longer — and because the global fallback
// lock is shared, the amplification degrades *every* transaction on the
// instance: the contagion that makes the NUMA-partitioned baseline collapse
// at even 1% remote transactions.
func (m Model) MixedStats(threads int, writeFraction, remoteFrac float64, span int, windowFactor float64) (abortRatio, fallbackProb, expAttempts float64) {
	if threads <= 1 {
		return 0, 0, 1
	}
	amp := (1 - remoteFrac) + remoteFrac*math.Pow(m.NUMAAmplification, float64(span))*windowFactor
	c := m.BaseConflict * writeFraction * amp
	if c > 1 {
		c = 1
	}
	p := 1 - math.Pow(1-c, float64(threads-1))
	r := float64(m.MaxRetries)
	if p > 1-1e-9 {
		return 1, 1, r + 1
	}
	pFallback := math.Pow(p, r+1)
	expAttempts = (1 - math.Pow(p, r+1)) / (1 - p)
	if p == 0 {
		return 0, 0, 1
	}
	expAborts := p * (1 - math.Pow(p, r+1)) / (1 - p)
	expCommits := 1 - pFallback
	return expAborts / (expAborts + expCommits), pFallback, expAttempts
}

// ExpectedAttempts returns the mean number of transactional attempts per
// operation (including the committing one), capped by the retry budget.
func (m Model) ExpectedAttempts(threads int, writeFraction float64, span int) float64 {
	p := m.AbortProbability(threads, writeFraction, span)
	if p == 0 {
		return 1
	}
	r := float64(m.MaxRetries)
	if p > 1-1e-9 {
		return r + 1
	}
	// 1 + p + p² + … + p^r attempts on average (truncated geometric).
	return (1 - math.Pow(p, r+1)) / (1 - p)
}
