package ilp

import (
	"fmt"
	"math"
	"sort"
)

// GAPInstance is one data structure instance entering the shared
// heterogeneous composition: its calibrated optimal domain size s_i (in
// workers) and its abstract expected load l_i.
type GAPInstance struct {
	Name        string
	OptimalSize int
	Load        float64
}

// GAPResult is a solved configuration: the chosen domain sizes and, for each
// instance (input order), the index of the result domain it is assigned to.
type GAPResult struct {
	DomainSizes []int
	Assignment  []int
	Objective   float64
	Nodes       int
}

// WorkersUsed sums the chosen domain sizes.
func (r *GAPResult) WorkersUsed() int {
	n := 0
	for _, s := range r.DomainSizes {
		n += s
	}
	return n
}

// SolveGAPMQ builds and solves the paper's Equations 1–7 exactly.
//
// The candidate multiset B contains each distinct calibrated size s with
// multiplicity ⌊w/s⌋ (capped at the instance count, since Equation 2 forces
// every chosen domain to hold at least one instance). The objective prefers
// larger domains, with an ε-penalty per chosen domain so that, among
// configurations using the same number of workers, fewer domains win —
// the paper's "p₁ ≪ … ≪ p_|D|" profit ordering.
//
// minLoad and maxLoad are the uniform q_d and r_d bounds of Equation 6.
// coLocate lists instance-index pairs that must share a domain (the
// application-specific constraint hook of Section 5.2, e.g. a table with
// its secondary indexes).
func SolveGAPMQ(instances []GAPInstance, workers int, minLoad, maxLoad float64, coLocate [][2]int, maxNodes int) (*GAPResult, error) {
	n := len(instances)
	if n == 0 {
		return nil, fmt.Errorf("ilp: no instances to configure")
	}
	if workers <= 0 {
		return nil, fmt.Errorf("ilp: no workers available")
	}
	for _, inst := range instances {
		if inst.OptimalSize < 1 {
			return nil, fmt.Errorf("ilp: instance %q has optimal size %d", inst.Name, inst.OptimalSize)
		}
		if inst.OptimalSize > workers {
			return nil, fmt.Errorf("ilp: instance %q wants %d workers, only %d available", inst.Name, inst.OptimalSize, workers)
		}
		if inst.Load < 0 {
			return nil, fmt.Errorf("ilp: instance %q has negative load", inst.Name)
		}
	}
	for _, pair := range coLocate {
		if pair[0] < 0 || pair[0] >= n || pair[1] < 0 || pair[1] >= n {
			return nil, fmt.Errorf("ilp: co-location pair %v out of range", pair)
		}
	}

	// Candidate domains: each distinct size with its multiplicity.
	sizeSet := map[int]struct{}{}
	for _, inst := range instances {
		sizeSet[inst.OptimalSize] = struct{}{}
	}
	sizes := make([]int, 0, len(sizeSet))
	for s := range sizeSet {
		sizes = append(sizes, s)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(sizes))) // big domains first: good incumbents early
	type candidate struct {
		size      int
		sameGroup int // index of the previous same-size candidate, -1 if first
	}
	var cands []candidate
	for _, s := range sizes {
		mult := workers / s
		if mult > n {
			mult = n
		}
		for j := 0; j < mult; j++ {
			prev := -1
			if j > 0 {
				prev = len(cands) - 1
			}
			cands = append(cands, candidate{size: s, sameGroup: prev})
		}
	}
	nd := len(cands)

	// Variable layout: y_d at [0,nd), x_{i,d} at nd + i*nd + d.
	p, err := NewProblem(nd + n*nd)
	if err != nil {
		return nil, err
	}
	yVar := func(d int) int { return d }
	xVar := func(i, d int) int { return nd + i*nd + d }

	// Objective (Eq. 1): profit proportional to domain size, ε-penalised
	// per domain so fewer domains win ties.
	const eps = 1e-3
	for d, c := range cands {
		if err := p.SetObjective(yVar(d), float64(c.size)-eps); err != nil {
			return nil, err
		}
	}

	for d := range cands {
		// Eq. 2: a chosen domain holds at least one instance:
		// n·y_d − Σ_i x_{i,d} ≤ n−1.
		row := map[int]float64{yVar(d): float64(n)}
		for i := 0; i < n; i++ {
			row[xVar(i, d)] = -1
		}
		if err := p.AddLE(row, float64(n-1)); err != nil {
			return nil, err
		}
		// Linking (implicit in the paper's GAP-MQ base problem): an
		// instance can only sit in a chosen domain: x_{i,d} ≤ y_d.
		for i := 0; i < n; i++ {
			if err := p.AddLE(map[int]float64{xVar(i, d): 1, yVar(d): -1}, 0); err != nil {
				return nil, err
			}
		}
		// Symmetry breaking within a size group: choose candidates in
		// prefix order (equivalent to the paper's strictly ordered
		// profits p₁ ≪ … ≪ p_|D|).
		if prev := cands[d].sameGroup; prev >= 0 {
			if err := p.AddLE(map[int]float64{yVar(d): 1, yVar(prev): -1}, 0); err != nil {
				return nil, err
			}
		}
	}

	for i, inst := range instances {
		// Eq. 3: every instance in exactly one domain.
		row := map[int]float64{}
		for d := 0; d < nd; d++ {
			row[xVar(i, d)] = 1
		}
		if err := p.AddEQ(row, 1); err != nil {
			return nil, err
		}
		// Eq. 4: only into domains of at most the calibrated size.
		for d, c := range cands {
			if c.size > inst.OptimalSize {
				if err := p.AddLE(map[int]float64{xVar(i, d): 1}, 0); err != nil {
					return nil, err
				}
			}
		}
	}

	// Eq. 5: chosen domains fit the available workers.
	row5 := map[int]float64{}
	for d, c := range cands {
		row5[yVar(d)] = float64(c.size)
	}
	if err := p.AddLE(row5, float64(workers)); err != nil {
		return nil, err
	}

	// Eq. 6: per-domain load window q_d·y_d ≤ Σ l_i·x_{i,d} ≤ r_d·y_d.
	for d := 0; d < nd; d++ {
		lower := map[int]float64{yVar(d): -minLoad}
		upper := map[int]float64{yVar(d): -maxLoad}
		for i, inst := range instances {
			lower[xVar(i, d)] = inst.Load
			upper[xVar(i, d)] = inst.Load
		}
		if err := p.AddGE(lower, 0); err != nil {
			return nil, err
		}
		if err := p.AddLE(upper, 0); err != nil {
			return nil, err
		}
	}

	// Application constraints: co-located instances share every domain
	// indicator: x_{i,d} = x_{j,d}.
	for _, pair := range coLocate {
		for d := 0; d < nd; d++ {
			err := p.AddEQ(map[int]float64{xVar(pair[0], d): 1, xVar(pair[1], d): -1}, 0)
			if err != nil {
				return nil, err
			}
		}
	}

	sol, err := p.Solve(maxNodes)
	if err != nil {
		return nil, err
	}

	// Extract: chosen domains in candidate order, remapped densely.
	res := &GAPResult{Assignment: make([]int, n), Objective: sol.Objective, Nodes: sol.Nodes}
	remap := make([]int, nd)
	for d := range remap {
		remap[d] = -1
	}
	for d, c := range cands {
		if sol.X[yVar(d)] {
			remap[d] = len(res.DomainSizes)
			res.DomainSizes = append(res.DomainSizes, c.size)
		}
	}
	for i := 0; i < n; i++ {
		res.Assignment[i] = -1
		for d := 0; d < nd; d++ {
			if sol.X[xVar(i, d)] {
				res.Assignment[i] = remap[d]
				break
			}
		}
		if res.Assignment[i] == -1 {
			return nil, fmt.Errorf("ilp: internal error — instance %d unassigned in optimal solution", i)
		}
	}
	return res, nil
}

// GreedyGAPMQ is the fallback for instance counts beyond exact reach (the
// paper's Figure 11 runs 1024 instances): first-fit-decreasing by load into
// domains of each instance's calibrated size, opening a new domain when the
// load cap would be exceeded and workers remain.
func GreedyGAPMQ(instances []GAPInstance, workers int, maxLoad float64) (*GAPResult, error) {
	n := len(instances)
	if n == 0 {
		return nil, fmt.Errorf("ilp: no instances to configure")
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		ia, ib := instances[order[a]], instances[order[b]]
		if ia.OptimalSize != ib.OptimalSize {
			return ia.OptimalSize < ib.OptimalSize // tight domains first
		}
		return ia.Load > ib.Load
	})
	type dom struct {
		size int
		load float64
	}
	var doms []dom
	used := 0
	res := &GAPResult{Assignment: make([]int, n)}
	for _, i := range order {
		inst := instances[i]
		best := -1
		for d := range doms {
			if doms[d].size <= inst.OptimalSize && doms[d].load+inst.Load <= maxLoad {
				if best == -1 || doms[d].load < doms[best].load {
					best = d
				}
			}
		}
		if best == -1 {
			if used+inst.OptimalSize <= workers {
				doms = append(doms, dom{size: inst.OptimalSize})
				used += inst.OptimalSize
				best = len(doms) - 1
			} else {
				// No capacity for a new domain: overflow into the least
				// loaded compatible domain regardless of the cap.
				for d := range doms {
					if doms[d].size <= inst.OptimalSize && (best == -1 || doms[d].load < doms[best].load) {
						best = d
					}
				}
				if best == -1 {
					return nil, fmt.Errorf("ilp: instance %q (size %d) fits no domain", inst.Name, inst.OptimalSize)
				}
			}
		}
		doms[best].load += inst.Load
		res.Assignment[i] = best
	}
	for _, d := range doms {
		res.DomainSizes = append(res.DomainSizes, d.size)
		res.Objective += float64(d.size)
	}
	res.Objective -= 1e-3 * float64(len(doms))
	if math.IsNaN(res.Objective) {
		return nil, fmt.Errorf("ilp: objective overflow")
	}
	return res, nil
}
