// Package ilp provides a small exact solver for 0/1 integer linear programs,
// sized for the configuration problems of Section 5.2: choosing virtual
// domains and assigning data structure instances to them (a General
// Assignment Problem with Minimum Quantities, Equations 1–7). Problems have
// tens of binary variables; branch-and-bound with interval-based pruning
// solves them exactly without any external dependency.
//
// Maximisation form: maximise c·x subject to lo ≤ A·x ≤ hi, x ∈ {0,1}ⁿ.
package ilp

import (
	"errors"
	"fmt"
	"math"
)

// term is one (variable, coefficient) entry of a sparse constraint row.
type term struct {
	v    int
	coef float64
}

type constraint struct {
	terms  []term
	lo, hi float64

	// Search state: contribution of fixed variables, and the minimum /
	// maximum achievable contribution of the still-free variables.
	fixed   float64
	freeMin float64
	freeMax float64
}

// Problem is a 0/1 maximisation ILP under construction.
type Problem struct {
	n   int
	obj []float64
	con []*constraint
	// varCons[v] lists the constraints variable v participates in.
	varCons [][]int
}

// NewProblem creates a problem over n binary variables with zero objective.
func NewProblem(n int) (*Problem, error) {
	if n <= 0 {
		return nil, fmt.Errorf("ilp: need at least one variable, got %d", n)
	}
	return &Problem{n: n, obj: make([]float64, n), varCons: make([][]int, n)}, nil
}

// Vars returns the number of variables.
func (p *Problem) Vars() int { return p.n }

// SetObjective sets the objective coefficient of variable v.
func (p *Problem) SetObjective(v int, c float64) error {
	if v < 0 || v >= p.n {
		return fmt.Errorf("ilp: variable %d out of range", v)
	}
	p.obj[v] = c
	return nil
}

// AddRange adds the constraint lo ≤ Σ coefs[v]·x_v ≤ hi. Use math.Inf for
// one-sided rows.
func (p *Problem) AddRange(coefs map[int]float64, lo, hi float64) error {
	if lo > hi {
		return fmt.Errorf("ilp: empty constraint interval [%v,%v]", lo, hi)
	}
	c := &constraint{lo: lo, hi: hi}
	for v, coef := range coefs {
		if v < 0 || v >= p.n {
			return fmt.Errorf("ilp: variable %d out of range", v)
		}
		if coef == 0 {
			continue
		}
		c.terms = append(c.terms, term{v: v, coef: coef})
	}
	ci := len(p.con)
	p.con = append(p.con, c)
	for _, t := range c.terms {
		p.varCons[t.v] = append(p.varCons[t.v], ci)
	}
	return nil
}

// AddLE adds Σ coefs·x ≤ hi.
func (p *Problem) AddLE(coefs map[int]float64, hi float64) error {
	return p.AddRange(coefs, math.Inf(-1), hi)
}

// AddGE adds Σ coefs·x ≥ lo.
func (p *Problem) AddGE(coefs map[int]float64, lo float64) error {
	return p.AddRange(coefs, lo, math.Inf(1))
}

// AddEQ adds Σ coefs·x = b.
func (p *Problem) AddEQ(coefs map[int]float64, b float64) error {
	return p.AddRange(coefs, b, b)
}

// Solution is the solver's result.
type Solution struct {
	X         []bool
	Objective float64
	Nodes     int  // branch-and-bound nodes explored
	Optimal   bool // false when the node budget was exhausted
}

// ErrInfeasible is returned when no assignment satisfies the constraints.
var ErrInfeasible = errors.New("ilp: infeasible")

// DefaultMaxNodes bounds the search; configuration problems use far fewer.
const DefaultMaxNodes = 5_000_000

type solver struct {
	p        *Problem
	value    []int8 // -1 free, 0, 1
	objFixed float64
	// objFreePos is the sum of positive objective coefficients over free
	// variables — the optimistic completion bound.
	objFreePos float64

	best    float64
	bestX   []bool
	hasBest bool
	nodes   int
	maxN    int
}

// Solve runs branch-and-bound to optimality (or the node budget).
func (p *Problem) Solve(maxNodes int) (*Solution, error) {
	if maxNodes <= 0 {
		maxNodes = DefaultMaxNodes
	}
	s := &solver{p: p, value: make([]int8, p.n), maxN: maxNodes}
	for v := range s.value {
		s.value[v] = -1
		if p.obj[v] > 0 {
			s.objFreePos += p.obj[v]
		}
	}
	for _, c := range p.con {
		c.fixed = 0
		c.freeMin, c.freeMax = 0, 0
		for _, t := range c.terms {
			if t.coef < 0 {
				c.freeMin += t.coef
			} else {
				c.freeMax += t.coef
			}
		}
	}
	s.best = math.Inf(-1)
	s.dfs(0)
	if !s.hasBest {
		if s.nodes >= s.maxN {
			return nil, fmt.Errorf("ilp: node budget exhausted before finding a feasible point (%d nodes)", s.nodes)
		}
		return nil, ErrInfeasible
	}
	return &Solution{X: s.bestX, Objective: s.best, Nodes: s.nodes, Optimal: s.nodes < s.maxN}, nil
}

// feasibleHere reports whether the current partial assignment can still
// satisfy every constraint.
func (s *solver) feasibleHere() bool {
	for _, c := range s.p.con {
		if c.fixed+c.freeMin > c.hi+1e-9 {
			return false
		}
		if c.fixed+c.freeMax < c.lo-1e-9 {
			return false
		}
	}
	return true
}

func (s *solver) dfs(v int) {
	if s.nodes >= s.maxN {
		return
	}
	s.nodes++
	if !s.feasibleHere() {
		return
	}
	if s.objFixed+s.objFreePos <= s.best+1e-12 {
		return // cannot beat the incumbent
	}
	if v == s.p.n {
		s.best = s.objFixed
		s.bestX = make([]bool, s.p.n)
		for i, val := range s.value {
			s.bestX[i] = val == 1
		}
		s.hasBest = true
		return
	}
	// Try 1 first: objectives are non-negative in our models, so this
	// finds strong incumbents early.
	for _, val := range [2]int8{1, 0} {
		s.fix(v, val)
		s.dfs(v + 1)
		s.unfix(v, val)
		if s.nodes >= s.maxN {
			return
		}
	}
}

func (s *solver) fix(v int, val int8) {
	s.value[v] = val
	if s.p.obj[v] > 0 {
		s.objFreePos -= s.p.obj[v]
	}
	if val == 1 {
		s.objFixed += s.p.obj[v]
	}
	for _, ci := range s.p.varCons[v] {
		c := s.p.con[ci]
		coef := coefOf(c, v)
		if coef < 0 {
			c.freeMin -= coef
		} else {
			c.freeMax -= coef
		}
		if val == 1 {
			c.fixed += coef
		}
	}
}

func (s *solver) unfix(v int, val int8) {
	s.value[v] = -1
	if s.p.obj[v] > 0 {
		s.objFreePos += s.p.obj[v]
	}
	if val == 1 {
		s.objFixed -= s.p.obj[v]
	}
	for _, ci := range s.p.varCons[v] {
		c := s.p.con[ci]
		coef := coefOf(c, v)
		if coef < 0 {
			c.freeMin += coef
		} else {
			c.freeMax += coef
		}
		if val == 1 {
			c.fixed -= coef
		}
	}
}

func coefOf(c *constraint, v int) float64 {
	for _, t := range c.terms {
		if t.v == v {
			return t.coef
		}
	}
	return 0
}
