package ilp

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

func TestProblemValidation(t *testing.T) {
	if _, err := NewProblem(0); err == nil {
		t.Error("0 variables accepted")
	}
	p, _ := NewProblem(2)
	if err := p.SetObjective(5, 1); err == nil {
		t.Error("out-of-range objective accepted")
	}
	if err := p.AddLE(map[int]float64{5: 1}, 1); err == nil {
		t.Error("out-of-range constraint var accepted")
	}
	if err := p.AddRange(map[int]float64{0: 1}, 2, 1); err == nil {
		t.Error("empty interval accepted")
	}
	if p.Vars() != 2 {
		t.Errorf("Vars = %d", p.Vars())
	}
}

func TestUnconstrainedMaximisation(t *testing.T) {
	p, _ := NewProblem(3)
	p.SetObjective(0, 5)
	p.SetObjective(1, -2)
	p.SetObjective(2, 3)
	sol, err := p.Solve(0)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Objective != 8 {
		t.Errorf("objective = %v, want 8", sol.Objective)
	}
	if !sol.X[0] || sol.X[1] || !sol.X[2] {
		t.Errorf("X = %v", sol.X)
	}
	if !sol.Optimal {
		t.Error("tiny problem not optimal")
	}
}

func TestKnapsack(t *testing.T) {
	// Classic knapsack: weights 3,4,5,6 values 4,5,6,7 capacity 10.
	// Optimum: items 1+3 (weight 10, value 12).
	p, _ := NewProblem(4)
	weights := []float64{3, 4, 5, 6}
	values := []float64{4, 5, 6, 7}
	row := map[int]float64{}
	for i := range weights {
		p.SetObjective(i, values[i])
		row[i] = weights[i]
	}
	p.AddLE(row, 10)
	sol, err := p.Solve(0)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Objective != 12 {
		t.Errorf("objective = %v, want 12", sol.Objective)
	}
	if !sol.X[1] || !sol.X[3] || sol.X[0] || sol.X[2] {
		t.Errorf("X = %v, want items 1+3", sol.X)
	}
}

func TestEqualityConstraint(t *testing.T) {
	// Exactly two of three chosen, maximise 1,2,3 → pick vars 1 and 2.
	p, _ := NewProblem(3)
	for i, c := range []float64{1, 2, 3} {
		p.SetObjective(i, c)
	}
	p.AddEQ(map[int]float64{0: 1, 1: 1, 2: 1}, 2)
	sol, err := p.Solve(0)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Objective != 5 || sol.X[0] {
		t.Errorf("objective = %v X = %v", sol.Objective, sol.X)
	}
}

func TestInfeasible(t *testing.T) {
	p, _ := NewProblem(2)
	p.AddGE(map[int]float64{0: 1, 1: 1}, 3) // at most 2 achievable
	if _, err := p.Solve(0); !errors.Is(err, ErrInfeasible) {
		t.Errorf("err = %v, want ErrInfeasible", err)
	}
}

func TestGEConstraint(t *testing.T) {
	// Minimise-ish: all objective negative, but GE forces one on.
	p, _ := NewProblem(2)
	p.SetObjective(0, -1)
	p.SetObjective(1, -3)
	p.AddGE(map[int]float64{0: 1, 1: 1}, 1)
	sol, err := p.Solve(0)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Objective != -1 || !sol.X[0] || sol.X[1] {
		t.Errorf("objective = %v X = %v", sol.Objective, sol.X)
	}
}

func TestNodeBudgetExhaustion(t *testing.T) {
	// A problem the solver cannot even find a feasible point for within
	// the budget must report exhaustion, not claim infeasibility.
	p, _ := NewProblem(30)
	row := map[int]float64{}
	for i := 0; i < 30; i++ {
		p.SetObjective(i, 1)
		row[i] = 1
	}
	p.AddEQ(row, 15)
	if _, err := p.Solve(2); err == nil {
		t.Error("expected budget-exhaustion error")
	} else if errors.Is(err, ErrInfeasible) {
		t.Error("budget exhaustion misreported as infeasible")
	}
}

func TestGAPMQValidation(t *testing.T) {
	if _, err := SolveGAPMQ(nil, 10, 0, 1, nil, 0); err == nil {
		t.Error("no instances accepted")
	}
	one := []GAPInstance{{Name: "a", OptimalSize: 4, Load: 1}}
	if _, err := SolveGAPMQ(one, 0, 0, 1, nil, 0); err == nil {
		t.Error("no workers accepted")
	}
	if _, err := SolveGAPMQ([]GAPInstance{{Name: "a", OptimalSize: 0, Load: 1}}, 8, 0, 1, nil, 0); err == nil {
		t.Error("zero size accepted")
	}
	if _, err := SolveGAPMQ([]GAPInstance{{Name: "a", OptimalSize: 16, Load: 1}}, 8, 0, 1, nil, 0); err == nil {
		t.Error("oversized instance accepted")
	}
	if _, err := SolveGAPMQ([]GAPInstance{{Name: "a", OptimalSize: 4, Load: -1}}, 8, 0, 1, nil, 0); err == nil {
		t.Error("negative load accepted")
	}
	if _, err := SolveGAPMQ(one, 8, 0, 1, [][2]int{{0, 5}}, 0); err == nil {
		t.Error("bad co-location pair accepted")
	}
}

func TestGAPMQPaperOLTP2Example(t *testing.T) {
	// The paper's running example (Section 5.2): w = 192 workers, optimal
	// sizes S = {24, 48}; the solved configuration uses 2 domains of 24
	// and 3 of 48 — 5 domains totalling all 192 workers.
	instances := []GAPInstance{
		{Name: "idx-w1", OptimalSize: 24, Load: 1},
		{Name: "idx-w2", OptimalSize: 24, Load: 1},
		{Name: "idx-r1", OptimalSize: 48, Load: 1},
		{Name: "idx-r2", OptimalSize: 48, Load: 1},
		{Name: "idx-r3", OptimalSize: 48, Load: 1},
	}
	res, err := SolveGAPMQ(instances, 192, 0.5, 1.5, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.WorkersUsed() != 192 {
		t.Errorf("workers used = %d, want 192", res.WorkersUsed())
	}
	count24, count48 := 0, 0
	for _, s := range res.DomainSizes {
		switch s {
		case 24:
			count24++
		case 48:
			count48++
		default:
			t.Errorf("unexpected domain size %d", s)
		}
	}
	if count24 != 2 || count48 != 3 {
		t.Errorf("domains = %d×24 + %d×48, want 2×24 + 3×48", count24, count48)
	}
	// Write-heavy instances must sit in 24-sized domains (Eq. 4).
	for i := 0; i < 2; i++ {
		if res.DomainSizes[res.Assignment[i]] != 24 {
			t.Errorf("instance %d in size-%d domain, want 24", i, res.DomainSizes[res.Assignment[i]])
		}
	}
}

func TestGAPMQRespectsSizeCaps(t *testing.T) {
	// A size-1 (thread-sized) instance must never share a big domain.
	instances := []GAPInstance{
		{Name: "hot", OptimalSize: 1, Load: 1},
		{Name: "cold", OptimalSize: 8, Load: 1},
	}
	res, err := SolveGAPMQ(instances, 16, 0, 2, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.DomainSizes[res.Assignment[0]] != 1 {
		t.Errorf("thread-sized instance in size-%d domain", res.DomainSizes[res.Assignment[0]])
	}
	if res.DomainSizes[res.Assignment[1]] > 8 {
		t.Errorf("size cap violated: %d", res.DomainSizes[res.Assignment[1]])
	}
}

func TestGAPMQLoadBalancing(t *testing.T) {
	// Four equal-load instances, maxLoad 1.2 forces ≥ 4 domains of the
	// common size (no domain can hold two instances of load 1).
	instances := []GAPInstance{
		{Name: "a", OptimalSize: 4, Load: 1},
		{Name: "b", OptimalSize: 4, Load: 1},
		{Name: "c", OptimalSize: 4, Load: 1},
		{Name: "d", OptimalSize: 4, Load: 1},
	}
	res, err := SolveGAPMQ(instances, 16, 0.5, 1.2, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.DomainSizes) != 4 {
		t.Errorf("domains = %d, want 4 (load cap)", len(res.DomainSizes))
	}
	seen := map[int]bool{}
	for _, d := range res.Assignment {
		if seen[d] {
			t.Error("two load-1 instances share a domain despite cap 1.2")
		}
		seen[d] = true
	}
}

func TestGAPMQCoLocation(t *testing.T) {
	// A table and its secondary index must share a domain.
	instances := []GAPInstance{
		{Name: "table", OptimalSize: 8, Load: 0.5},
		{Name: "2nd-index", OptimalSize: 8, Load: 0.5},
		{Name: "other", OptimalSize: 8, Load: 0.5},
	}
	res, err := SolveGAPMQ(instances, 16, 0, 2, [][2]int{{0, 1}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Assignment[0] != res.Assignment[1] {
		t.Errorf("co-located instances split: %v", res.Assignment)
	}
}

func TestGAPMQPrefersFewerLargerDomains(t *testing.T) {
	// Two read-heavy instances with size 8 on 16 workers and generous load
	// caps: one domain of 8 holding both beats two domains of 8? No — the
	// objective maximises Σ sizes, so TWO size-8 domains (16 workers) win
	// over one (8 workers).
	instances := []GAPInstance{
		{Name: "a", OptimalSize: 8, Load: 0.5},
		{Name: "b", OptimalSize: 8, Load: 0.5},
	}
	res, err := SolveGAPMQ(instances, 16, 0.1, 2, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.WorkersUsed() != 16 || len(res.DomainSizes) != 2 {
		t.Errorf("got %v (%d workers), want two size-8 domains", res.DomainSizes, res.WorkersUsed())
	}
}

func TestGreedyGAPMQMatchesScale(t *testing.T) {
	// 1024 instances, as in Figure 11: 16 domains of 24 workers on 384,
	// with instances sharing domains.
	var instances []GAPInstance
	for i := 0; i < 1024; i++ {
		instances = append(instances, GAPInstance{Name: "idx", OptimalSize: 24, Load: 1.0 / 64})
	}
	res, err := GreedyGAPMQ(instances, 384, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.DomainSizes) != 16 {
		t.Errorf("domains = %d, want 16", len(res.DomainSizes))
	}
	perDomain := map[int]int{}
	for _, d := range res.Assignment {
		perDomain[d]++
	}
	for d, c := range perDomain {
		if c != 64 {
			t.Errorf("domain %d holds %d instances, want 64", d, c)
		}
	}
	if res.WorkersUsed() != 384 {
		t.Errorf("workers used = %d", res.WorkersUsed())
	}
}

func TestGreedyGAPMQOverflowsWhenOutOfWorkers(t *testing.T) {
	instances := []GAPInstance{
		{Name: "a", OptimalSize: 4, Load: 1},
		{Name: "b", OptimalSize: 4, Load: 1},
		{Name: "c", OptimalSize: 4, Load: 1},
	}
	// Only one domain fits; the cap of 1.0 must be overridden by overflow.
	res, err := GreedyGAPMQ(instances, 4, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.DomainSizes) != 1 {
		t.Errorf("domains = %d, want 1", len(res.DomainSizes))
	}
}

func TestGreedyGAPMQValidation(t *testing.T) {
	if _, err := GreedyGAPMQ(nil, 8, 1); err == nil {
		t.Error("no instances accepted")
	}
}

func TestGAPMQObjectiveFinite(t *testing.T) {
	instances := []GAPInstance{{Name: "a", OptimalSize: 2, Load: 0.1}}
	res, err := SolveGAPMQ(instances, 4, 0, 1, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsInf(res.Objective, 0) || math.IsNaN(res.Objective) {
		t.Errorf("objective = %v", res.Objective)
	}
}

// bruteForce enumerates all 2^n assignments and returns the optimum.
func bruteForce(p *Problem, obj []float64, check func(x []bool) bool) (float64, bool) {
	n := p.Vars()
	best := math.Inf(-1)
	found := false
	x := make([]bool, n)
	for mask := 0; mask < 1<<n; mask++ {
		for i := 0; i < n; i++ {
			x[i] = mask&(1<<i) != 0
		}
		if !check(x) {
			continue
		}
		v := 0.0
		for i := 0; i < n; i++ {
			if x[i] {
				v += obj[i]
			}
		}
		if v > best {
			best = v
			found = true
		}
	}
	return best, found
}

// TestSolverMatchesBruteForce builds random small problems and verifies the
// branch-and-bound optimum against exhaustive enumeration.
func TestSolverMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(424242))
	for trial := 0; trial < 200; trial++ {
		n := 3 + rng.Intn(10) // up to 12 variables
		p, err := NewProblem(n)
		if err != nil {
			t.Fatal(err)
		}
		obj := make([]float64, n)
		for i := range obj {
			obj[i] = float64(rng.Intn(21) - 10)
			p.SetObjective(i, obj[i])
		}
		// 1-3 random ≤/≥/= constraints over random subsets.
		type row struct {
			coefs map[int]float64
			lo    float64
			hi    float64
		}
		var rows []row
		for c := 0; c < 1+rng.Intn(3); c++ {
			coefs := map[int]float64{}
			for i := 0; i < n; i++ {
				if rng.Intn(2) == 0 {
					coefs[i] = float64(rng.Intn(9) - 4)
				}
			}
			bound := float64(rng.Intn(11) - 5)
			switch rng.Intn(3) {
			case 0:
				p.AddLE(coefs, bound)
				rows = append(rows, row{coefs, math.Inf(-1), bound})
			case 1:
				p.AddGE(coefs, bound)
				rows = append(rows, row{coefs, bound, math.Inf(1)})
			default:
				p.AddEQ(coefs, bound)
				rows = append(rows, row{coefs, bound, bound})
			}
		}
		check := func(x []bool) bool {
			for _, r := range rows {
				s := 0.0
				for i, coef := range r.coefs {
					if x[i] {
						s += coef
					}
				}
				if s < r.lo-1e-9 || s > r.hi+1e-9 {
					return false
				}
			}
			return true
		}
		want, feasible := bruteForce(p, obj, check)
		sol, err := p.Solve(0)
		if !feasible {
			if !errors.Is(err, ErrInfeasible) {
				t.Fatalf("trial %d: brute force infeasible, solver said %v", trial, err)
			}
			continue
		}
		if err != nil {
			t.Fatalf("trial %d: solver failed on feasible problem: %v", trial, err)
		}
		if math.Abs(sol.Objective-want) > 1e-9 {
			t.Fatalf("trial %d: solver %v, brute force %v", trial, sol.Objective, want)
		}
		if !check(sol.X) {
			t.Fatalf("trial %d: solver returned infeasible point", trial)
		}
	}
}
