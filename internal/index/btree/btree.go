// Package btree implements an STX-style in-memory B+Tree over 64-bit keys
// and values. The core structure is unsynchronised, as in the original STX
// template classes; following the paper's modification, record updates use
// atomic load/store on leaf slots and structural changes take a global
// lock. The global lock is a reader-writer spin lock: traversals hold it
// shared (readers stay parallel, and — unlike the earlier optimistic
// version-validated scheme, whose plain loads raced in-place writes once
// pooled sessions let one structure's ops execute on several workers —
// race-clean under the Go memory model), structural changes hold it
// exclusive. The paper itself notes this synchronisation is "unfair" (a
// single global lock) and serves as an upper bound for the simplest scheme.
package btree

import (
	"sync/atomic"
	"unsafe"

	"robustconf/internal/index"
	"robustconf/internal/prefetch"
	"robustconf/internal/syncprims"
)

// Fanout parameters follow STX's defaults for 64-bit keys: 256-byte nodes
// hold 16 key slots in inner nodes and 8 key/value pairs per leaf... STX
// actually derives slot counts from a 256-byte target; we use wider nodes
// (cache-line multiples) which behave identically for the evaluation.
const (
	innerSlots = 16 // keys per inner node
	leafSlots  = 16 // records per leaf
)

type leaf struct {
	num    int
	keys   [leafSlots]uint64
	values [leafSlots]atomic.Uint64
	next   *leaf // leaf chaining for scans
}

type inner struct {
	num      int
	keys     [innerSlots]uint64
	children [innerSlots + 1]any // *inner or *leaf
}

// Tree is the STX-style B+Tree. Construct with New.
type Tree struct {
	root       any // *inner or *leaf; nil when empty
	height     int // number of inner levels above the leaves
	count      atomic.Int64
	// structLock is the paper's "global lock": shared for traversals
	// (Get/Update/Scan and the ExecBatch locate stage), exclusive for
	// structural changes (Insert/Delete).
	structLock syncprims.RWSpinLock
	// maxKey is the largest key ever inserted (never lowered on delete, so
	// it may be stale-high — which keeps the k > maxKey append fast-path
	// trigger safe: a strictly greater key is new and belongs at the
	// rightmost edge regardless). Guarded by structLock.
	maxKey uint64
	hasMax bool
}

// New returns an empty tree.
func New() *Tree { return &Tree{} }

// Name implements index.Index.
func (t *Tree) Name() string { return "B-Tree" }

// Scheme implements index.Index.
func (t *Tree) Scheme() index.Scheme { return index.SchemeAtomicRecord }

// ConcurrentReadSafe reports false: reads hold the structural lock in
// shared mode, so a foreign bypass reader would contend on the same spin
// word the delegated sweep's own operations use — the B-Tree stays a
// delegate-only structure (see index.ConcurrentReadSafe) and keeps the
// paper's configuration for it.
func (t *Tree) ConcurrentReadSafe() bool { return false }

// Len implements index.Index.
func (t *Tree) Len() int { return int(t.count.Load()) }

const (
	leafBytes  = 8 + leafSlots*16 + 8
	innerBytes = 8 + innerSlots*8 + (innerSlots+1)*8
)

// findLeaf descends to the leaf that covers k, accounting each visited node.
func (t *Tree) findLeaf(k uint64, st *index.OpStats) *leaf {
	node := t.root
	depth := uint64(0)
	for {
		switch n := node.(type) {
		case *inner:
			st.Visit(1, index.CacheLines(innerBytes))
			depth++
			i := searchKeys(n.keys[:n.num], k)
			node = n.children[i]
		case *leaf:
			st.Visit(1, index.CacheLines(leafBytes))
			if st != nil {
				st.Depth += depth
			}
			return n
		default:
			return nil
		}
	}
}

// searchKeys returns the index of the first key > k (branch to that child).
func searchKeys(keys []uint64, k uint64) int {
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if keys[mid] <= k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Get implements index.Index: a traversal under the shared structural lock;
// the value itself is an atomic load (the paper's record-level atomics).
func (t *Tree) Get(k uint64, st *index.OpStats) (uint64, bool) {
	if st != nil {
		st.Ops++
	}
	t.structLock.RLock()
	defer t.structLock.RUnlock()
	lf := t.findLeaf(k, st)
	if lf == nil {
		return 0, false
	}
	if i := searchRecords(lf, k); i >= 0 {
		return lf.values[i].Load(), true
	}
	return 0, false
}

// searchRecords returns the slot of k in the leaf, or -1.
func searchRecords(lf *leaf, k uint64) int {
	lo, hi := 0, lf.num
	for lo < hi {
		mid := (lo + hi) / 2
		switch {
		case lf.keys[mid] < k:
			lo = mid + 1
		case lf.keys[mid] > k:
			hi = mid
		default:
			return mid
		}
	}
	return -1
}

// Update implements index.Index: an in-place atomic store on the record
// slot under the shared structural lock (the store is atomic, so shared
// mode suffices — record slots never move while the lock is held shared).
func (t *Tree) Update(k, v uint64, st *index.OpStats) bool {
	if st != nil {
		st.Ops++
	}
	t.structLock.RLock()
	defer t.structLock.RUnlock()
	lf := t.findLeaf(k, st)
	if lf == nil {
		return false
	}
	i := searchRecords(lf, k)
	if i < 0 {
		return false
	}
	lf.values[i].Store(v)
	return true
}

// Insert implements index.Index under the global structural lock.
func (t *Tree) Insert(k, v uint64, st *index.OpStats) bool {
	if st != nil {
		st.Ops++
		st.LockAcquires++
	}
	t.structLock.Lock()
	defer t.structLock.Unlock()

	if t.root == nil {
		lf := &leaf{num: 1}
		lf.keys[0] = k
		lf.values[0].Store(v)
		t.root = lf
		t.maxKey, t.hasMax = k, true
		t.count.Add(1)
		st.Visit(1, index.CacheLines(leafBytes))
		return true
	}

	// Sorted-append fast path: a key beyond the current maximum is new by
	// construction and belongs at the rightmost edge. Appending there packs
	// nodes full instead of median-splitting them, so a sorted load (the
	// checkpoint-restore stream, a time-ordered key sequence) builds the
	// tree with half the node allocations and full occupancy.
	if t.hasMax && k > t.maxKey {
		split := t.appendMax(k, v, st)
		t.maxKey = k
		if split && st != nil {
			st.Splits++
		}
		t.count.Add(1)
		return true
	}

	lf := t.findLeaf(k, st)
	if searchRecords(lf, k) >= 0 {
		return false
	}

	split := t.insertAt(k, v, st)
	if split && st != nil {
		st.Splits++
	}
	t.count.Add(1)
	return true
}

// insertAt performs the recursive insert; reports whether any split occurred.
func (t *Tree) insertAt(k, v uint64, st *index.OpStats) bool {
	newChild, splitKey, grew := insertRec(t.root, k, v, st)
	if !grew {
		return false
	}
	r := &inner{num: 1}
	r.keys[0] = splitKey
	r.children[0] = t.root
	r.children[1] = newChild
	t.root = r
	t.height++
	return true
}

// appendMax inserts k (strictly greater than every present key) at the
// rightmost edge: into the last leaf while it has room, otherwise into a
// fresh single-record right sibling whose separator climbs the rightmost
// inner spine — full spine nodes get a fresh single-child sibling too, so
// a pure ascending load leaves every node fully packed. Runs under the
// structural lock with the version write-locked; reports whether the tree
// grew a node.
func (t *Tree) appendMax(k, v uint64, st *index.OpStats) bool {
	var spine [32]*inner
	depth := 0
	node := t.root
	for {
		in, ok := node.(*inner)
		if !ok {
			break
		}
		st.Visit(1, index.CacheLines(innerBytes))
		spine[depth] = in
		depth++
		node = in.children[in.num]
	}
	lf := node.(*leaf)
	st.Visit(1, index.CacheLines(leafBytes))
	if lf.num < leafSlots {
		lf.keys[lf.num] = k
		lf.values[lf.num].Store(v)
		lf.num++
		return false
	}
	r := &leaf{num: 1}
	r.keys[0] = k
	r.values[0].Store(v)
	lf.next = r
	if st != nil {
		st.BytesCopied += 16
	}
	// The separator (k itself: everything existing is strictly below it)
	// climbs the spine; a full spine node gets a single-child sibling and
	// the separator keeps climbing.
	var child any = r
	for i := depth - 1; i >= 0; i-- {
		in := spine[i]
		if in.num < innerSlots {
			in.keys[in.num] = k
			in.children[in.num+1] = child
			in.num++
			return true
		}
		nr := &inner{}
		nr.children[0] = child
		child = nr
	}
	// Every spine node was full (or the root is a leaf): grow the root.
	nr := &inner{num: 1}
	nr.keys[0] = k
	nr.children[0] = t.root
	nr.children[1] = child
	t.root = nr
	t.height++
	return true
}

// insertRec inserts into the subtree rooted at node. When the child splits it
// returns the new right sibling and its separator key with grew=true.
func insertRec(node any, k, v uint64, st *index.OpStats) (right any, splitKey uint64, grew bool) {
	switch n := node.(type) {
	case *leaf:
		return leafInsert(n, k, v, st)
	case *inner:
		i := searchKeys(n.keys[:n.num], k)
		r, sk, g := insertRec(n.children[i], k, v, st)
		if !g {
			return nil, 0, false
		}
		if n.num < innerSlots {
			copy(n.keys[i+1:n.num+1], n.keys[i:n.num])
			copy(n.children[i+2:n.num+2], n.children[i+1:n.num+1])
			n.keys[i] = sk
			n.children[i+1] = r
			n.num++
			return nil, 0, false
		}
		// Split the inner node around its median.
		return innerSplit(n, i, sk, r, st)
	default:
		panic("btree: corrupt node type")
	}
}

func leafInsert(lf *leaf, k, v uint64, st *index.OpStats) (any, uint64, bool) {
	i := searchKeys(lf.keys[:lf.num], k)
	if lf.num < leafSlots {
		copy(lf.keys[i+1:lf.num+1], lf.keys[i:lf.num])
		for j := lf.num; j > i; j-- {
			lf.values[j].Store(lf.values[j-1].Load())
		}
		lf.keys[i] = k
		lf.values[i].Store(v)
		lf.num++
		return nil, 0, false
	}
	// Split: left keeps the lower half, right takes the upper half.
	mid := leafSlots / 2
	r := &leaf{}
	copy(r.keys[:], lf.keys[mid:])
	for j := mid; j < leafSlots; j++ {
		r.values[j-mid].Store(lf.values[j].Load())
	}
	r.num = leafSlots - mid
	lf.num = mid
	r.next = lf.next
	lf.next = r
	if st != nil {
		st.BytesCopied += uint64((leafSlots - mid) * 16)
		st.Splits++
	}
	// Insert into the proper half.
	target := lf
	if k >= r.keys[0] {
		target = r
	}
	leafInsert(target, k, v, nil)
	return r, r.keys[0], true
}

func innerSplit(n *inner, i int, sk uint64, child any, st *index.OpStats) (any, uint64, bool) {
	// Merge the pending (sk, child) into a temporary ordered view, then cut.
	var keys [innerSlots + 1]uint64
	var children [innerSlots + 2]any
	copy(keys[:i], n.keys[:i])
	keys[i] = sk
	copy(keys[i+1:], n.keys[i:n.num])
	copy(children[:i+1], n.children[:i+1])
	children[i+1] = child
	copy(children[i+2:], n.children[i+1:n.num+1])

	total := n.num + 1
	mid := total / 2
	up := keys[mid]

	r := &inner{num: total - mid - 1}
	copy(r.keys[:r.num], keys[mid+1:total])
	copy(r.children[:r.num+1], children[mid+1:total+1])

	n.num = mid
	copy(n.keys[:mid], keys[:mid])
	copy(n.children[:mid+1], children[:mid+1])
	for j := mid + 1; j < len(n.children); j++ {
		n.children[j] = nil
	}
	if st != nil {
		st.BytesCopied += uint64(innerBytes)
		st.Splits++
	}
	return r, up, true
}

// Delete implements index.Index under the global structural lock. The slot
// is removed by shifting; leaves are allowed to underflow (no rebalancing).
func (t *Tree) Delete(k uint64, st *index.OpStats) bool {
	if st != nil {
		st.Ops++
		st.LockAcquires++
	}
	t.structLock.Lock()
	defer t.structLock.Unlock()
	if t.root == nil {
		return false
	}
	lf := t.findLeaf(k, st)
	i := searchRecords(lf, k)
	if i < 0 {
		return false
	}
	copy(lf.keys[i:lf.num-1], lf.keys[i+1:lf.num])
	for j := i; j < lf.num-1; j++ {
		lf.values[j].Store(lf.values[j+1].Load())
	}
	lf.num--
	t.count.Add(-1)
	return true
}

// Scan implements index.Ranger via the leaf chain, under the shared
// structural lock.
func (t *Tree) Scan(lo, hi uint64, fn func(k, v uint64) bool, st *index.OpStats) int {
	if st != nil {
		st.Ops++
	}
	t.structLock.RLock()
	defer t.structLock.RUnlock()
	n := 0
	lf := t.findLeaf(lo, st)
	ok := true
	for lf != nil && ok {
		for i := 0; i < lf.num; i++ {
			k := lf.keys[i]
			if k < lo {
				continue
			}
			if k > hi {
				ok = false
				break
			}
			n++
			if !fn(k, lf.values[i].Load()) {
				ok = false
				break
			}
		}
		if ok {
			lf = lf.next
			if lf != nil {
				st.Visit(1, index.CacheLines(leafBytes))
			}
		}
	}
	return n
}

// batchStride is the interleaved group width of one ExecBatch round; 16
// in-flight descents keep the stage arrays on the stack while exceeding the
// line-fill-buffer depth the prefetches need to overlap.
const batchStride = 16

// ExecBatch implements index.BatchKernel with a level-synchronous descent:
// every operation in the group advances one tree level per round, and the
// child node each will visit next is prefetched before any of them is
// touched, so the group's per-level cache misses overlap. The locate stage
// descends under the shared structural lock: with pooled sessions one
// structure's ops may execute on several workers concurrently, and unlike
// the other kernels the B-Tree mutates nodes in place (no atomic
// publication to read optimistically). The lock is uncontended in the
// single-worker common case, and the descent is discarded entirely by the
// execute stage, which re-runs each operation through the public methods in
// index order (the serial-equivalence contract) — another worker mutating
// between locate and execute only costs prefetch accuracy.
func (t *Tree) ExecBatch(kinds []uint8, keys, vals, outVals []uint64, outOKs []bool) {
	var cur [batchStride]any
	for base := 0; base < len(kinds); base += batchStride {
		n := len(kinds) - base
		if n > batchStride {
			n = batchStride
		}
		t.structLock.RLock()
		for i := 0; i < n; i++ {
			cur[i] = t.root
		}
		// Descend level-synchronously until every op sits on its leaf.
		for {
			advanced := false
			for i := 0; i < n; i++ {
				in, ok := cur[i].(*inner)
				if !ok {
					continue
				}
				c := in.children[searchKeys(in.keys[:in.num], keys[base+i])]
				cur[i] = c
				switch c := c.(type) {
				case *inner:
					prefetch.Line(unsafe.Pointer(c))
					advanced = true
				case *leaf:
					prefetch.Line(unsafe.Pointer(c))
				}
			}
			if !advanced {
				break
			}
		}
		t.structLock.RUnlock()
		for i := base; i < base+n; i++ {
			switch kinds[i] {
			case index.BatchGet:
				outVals[i], outOKs[i] = t.Get(keys[i], nil)
			case index.BatchInsert:
				outVals[i], outOKs[i] = 0, t.Insert(keys[i], vals[i], nil)
			case index.BatchUpdate:
				outVals[i], outOKs[i] = 0, t.Update(keys[i], vals[i], nil)
			case index.BatchDelete:
				outVals[i], outOKs[i] = 0, t.Delete(keys[i], nil)
			}
		}
	}
}

// Height returns the number of inner levels (0 for a leaf-only tree);
// exposed for tests and the cost model.
func (t *Tree) Height() int { return t.height }
