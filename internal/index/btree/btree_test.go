package btree

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"robustconf/internal/index"
)

func TestEmptyTree(t *testing.T) {
	tr := New()
	if tr.Len() != 0 {
		t.Errorf("Len = %d, want 0", tr.Len())
	}
	if _, ok := tr.Get(1, nil); ok {
		t.Error("Get on empty tree found a key")
	}
	if tr.Update(1, 2, nil) {
		t.Error("Update on empty tree succeeded")
	}
}

func TestInsertGet(t *testing.T) {
	tr := New()
	const n = 10000
	for i := uint64(0); i < n; i++ {
		if !tr.Insert(i*7919%100000, i, nil) {
			t.Fatalf("Insert(%d) returned false", i*7919%100000)
		}
	}
	if tr.Len() != n {
		t.Fatalf("Len = %d, want %d", tr.Len(), n)
	}
	for i := uint64(0); i < n; i++ {
		v, ok := tr.Get(i*7919%100000, nil)
		if !ok || v != i {
			t.Fatalf("Get(%d) = %d,%v want %d,true", i*7919%100000, v, ok, i)
		}
	}
	if _, ok := tr.Get(999999999, nil); ok {
		t.Error("Get of absent key succeeded")
	}
}

func TestInsertDuplicate(t *testing.T) {
	tr := New()
	if !tr.Insert(5, 1, nil) {
		t.Fatal("first insert failed")
	}
	if tr.Insert(5, 2, nil) {
		t.Error("duplicate insert succeeded")
	}
	if v, _ := tr.Get(5, nil); v != 1 {
		t.Errorf("duplicate insert modified value: %d", v)
	}
	if tr.Len() != 1 {
		t.Errorf("Len = %d, want 1", tr.Len())
	}
}

func TestUpdateInPlace(t *testing.T) {
	tr := New()
	for i := uint64(0); i < 1000; i++ {
		tr.Insert(i, i, nil)
	}
	var st index.OpStats
	for i := uint64(0); i < 1000; i++ {
		if !tr.Update(i, i*2, &st) {
			t.Fatalf("Update(%d) failed", i)
		}
	}
	if st.Splits != 0 {
		t.Error("updates caused splits")
	}
	for i := uint64(0); i < 1000; i++ {
		if v, _ := tr.Get(i, nil); v != i*2 {
			t.Fatalf("Get(%d) = %d after update", i, v)
		}
	}
	if tr.Update(5000, 1, nil) {
		t.Error("Update of absent key succeeded")
	}
}

func TestOrderedScan(t *testing.T) {
	tr := New()
	keys := rand.New(rand.NewSource(1)).Perm(5000)
	for _, k := range keys {
		tr.Insert(uint64(k), uint64(k)*10, nil)
	}
	var got []uint64
	n := tr.Scan(100, 199, func(k, v uint64) bool {
		if v != k*10 {
			t.Errorf("Scan value mismatch at %d: %d", k, v)
		}
		got = append(got, k)
		return true
	}, nil)
	if n != 100 || len(got) != 100 {
		t.Fatalf("Scan visited %d keys, want 100", n)
	}
	for i, k := range got {
		if k != uint64(100+i) {
			t.Fatalf("Scan out of order at %d: %d", i, k)
		}
	}
	// Early termination.
	n = tr.Scan(0, 4999, func(k, v uint64) bool { return k < 9 }, nil)
	if n != 10 {
		t.Errorf("early-terminated scan visited %d, want 10", n)
	}
}

func TestSplitsAndHeightGrow(t *testing.T) {
	tr := New()
	var st index.OpStats
	for i := uint64(0); i < 100000; i++ {
		tr.Insert(i, i, &st)
	}
	if st.Splits == 0 {
		t.Error("100k sequential inserts caused no splits")
	}
	if tr.Height() < 2 {
		t.Errorf("Height = %d, want ≥ 2 for 100k keys", tr.Height())
	}
	// All keys still reachable after deep splits.
	for i := uint64(0); i < 100000; i += 997 {
		if _, ok := tr.Get(i, nil); !ok {
			t.Fatalf("key %d lost after splits", i)
		}
	}
}

func TestStatsAccounting(t *testing.T) {
	tr := New()
	for i := uint64(0); i < 10000; i++ {
		tr.Insert(i, i, nil)
	}
	var st index.OpStats
	tr.Get(5000, &st)
	if st.Ops != 1 {
		t.Errorf("Ops = %d, want 1", st.Ops)
	}
	if st.NodesVisited < 2 {
		t.Errorf("NodesVisited = %d, want ≥ 2 (inner + leaf)", st.NodesVisited)
	}
	if st.LinesTouched == 0 {
		t.Error("LinesTouched = 0")
	}
	if st.Depth == 0 {
		t.Error("Depth = 0, tree with 10k keys has inner levels")
	}
	var ist index.OpStats
	tr.Insert(999999, 1, &ist)
	if ist.LockAcquires != 1 {
		t.Errorf("insert LockAcquires = %d, want 1", ist.LockAcquires)
	}
}

func TestSchemeAndName(t *testing.T) {
	tr := New()
	if tr.Name() != "B-Tree" {
		t.Errorf("Name = %q", tr.Name())
	}
	if tr.Scheme() != index.SchemeAtomicRecord {
		t.Errorf("Scheme = %v", tr.Scheme())
	}
}

func TestConcurrentReadersWithWriter(t *testing.T) {
	tr := New()
	for i := uint64(0); i < 1000; i++ {
		tr.Insert(i*2, i, nil) // even keys pre-loaded
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// One writer inserting odd keys (global lock), many optimistic readers.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := uint64(0); i < 2000; i++ {
			tr.Insert(i*2+1, i, nil)
		}
		close(stop)
	}()
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				k := uint64(r.Intn(1000)) * 2
				if v, ok := tr.Get(k, nil); !ok || v != k/2 {
					t.Errorf("Get(%d) = %d,%v during concurrent inserts", k, v, ok)
					return
				}
			}
		}(int64(g))
	}
	wg.Wait()
	if tr.Len() != 3000 {
		t.Errorf("Len = %d, want 3000", tr.Len())
	}
}

func TestConcurrentUpdaters(t *testing.T) {
	tr := New()
	for i := uint64(0); i < 100; i++ {
		tr.Insert(i, 0, nil)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(val uint64) {
			defer wg.Done()
			for i := uint64(0); i < 100; i++ {
				tr.Update(i, val, nil)
			}
		}(uint64(g + 1))
	}
	wg.Wait()
	// Every key must hold one of the written values (atomic, not torn).
	for i := uint64(0); i < 100; i++ {
		v, ok := tr.Get(i, nil)
		if !ok || v < 1 || v > 8 {
			t.Fatalf("Get(%d) = %d,%v — torn or lost update", i, v, ok)
		}
	}
}

func TestRandomisedAgainstMap(t *testing.T) {
	tr := New()
	oracle := map[uint64]uint64{}
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 50000; i++ {
		k := uint64(r.Intn(20000))
		switch r.Intn(3) {
		case 0:
			_, exists := oracle[k]
			ok := tr.Insert(k, k+1, nil)
			if ok == exists {
				t.Fatalf("Insert(%d) = %v, oracle exists=%v", k, ok, exists)
			}
			if !exists {
				oracle[k] = k + 1
			}
		case 1:
			_, exists := oracle[k]
			ok := tr.Update(k, k+2, nil)
			if ok != exists {
				t.Fatalf("Update(%d) = %v, oracle exists=%v", k, ok, exists)
			}
			if exists {
				oracle[k] = k + 2
			}
		case 2:
			v, ok := tr.Get(k, nil)
			ov, exists := oracle[k]
			if ok != exists || (ok && v != ov) {
				t.Fatalf("Get(%d) = %d,%v, oracle %d,%v", k, v, ok, ov, exists)
			}
		}
	}
	if tr.Len() != len(oracle) {
		t.Errorf("Len = %d, oracle %d", tr.Len(), len(oracle))
	}
}

func TestScanPropertyMatchesSortedKeys(t *testing.T) {
	f := func(keys []uint16, lo8, hi8 uint8) bool {
		lo, hi := uint64(lo8)*100, uint64(hi8)*100+500
		if lo > hi {
			lo, hi = hi, lo
		}
		tr := New()
		inSet := map[uint64]bool{}
		for _, k16 := range keys {
			k := uint64(k16)
			if tr.Insert(k, k, nil) {
				inSet[k] = true
			}
		}
		want := 0
		for k := range inSet {
			if k >= lo && k <= hi {
				want++
			}
		}
		got := tr.Scan(lo, hi, func(k, v uint64) bool { return true }, nil)
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestSortedAppendFastPath exercises the k > maxKey append path: a pure
// ascending load must leave a fully correct tree (every key retrievable,
// scan ordered and complete), and a subsequent mixed workload below the
// maximum — landing in the fully-packed nodes the fast path builds — must
// keep matching a map oracle through the generic split path.
func TestSortedAppendFastPath(t *testing.T) {
	tr := New()
	const n = 5000
	oracle := map[uint64]uint64{}
	for k := uint64(1); k <= n; k++ {
		if !tr.Insert(k, k*3, nil) {
			t.Fatalf("ascending insert %d rejected", k)
		}
		oracle[k] = k * 3
	}
	if tr.Len() != n {
		t.Fatalf("Len = %d, want %d", tr.Len(), n)
	}
	prev := uint64(0)
	got := 0
	tr.Scan(0, ^uint64(0), func(k, v uint64) bool {
		if k <= prev {
			t.Fatalf("scan out of order: %d after %d", k, prev)
		}
		if v != oracle[k] {
			t.Fatalf("scan value for %d = %d, want %d", k, v, oracle[k])
		}
		prev = k
		got++
		return true
	}, nil)
	if got != n {
		t.Fatalf("scan saw %d keys, want %d", got, n)
	}
	// Mixed follow-up below the maximum: generic inserts split the packed
	// leaves; deletes and re-inserts around the (stale-high) maximum.
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 5000; i++ {
		k := uint64(rng.Intn(2*n)) + 1
		switch rng.Intn(3) {
		case 0:
			v := rng.Uint64()
			if tr.Insert(k, v, nil) {
				if _, dup := oracle[k]; dup {
					t.Fatalf("insert %d accepted a duplicate", k)
				}
				oracle[k] = v
			} else if _, dup := oracle[k]; !dup {
				t.Fatalf("insert %d rejected a fresh key", k)
			}
		case 1:
			_, present := oracle[k]
			if tr.Delete(k, nil) != present {
				t.Fatalf("delete %d disagreed with oracle (present=%v)", k, present)
			}
			delete(oracle, k)
		case 2:
			want, present := oracle[k]
			if v, ok := tr.Get(k, nil); ok != present || (ok && v != want) {
				t.Fatalf("Get(%d) = %d,%v, oracle %d,%v", k, v, ok, want, present)
			}
		}
	}
	if tr.Len() != len(oracle) {
		t.Fatalf("Len = %d, oracle %d", tr.Len(), len(oracle))
	}
	for k, want := range oracle {
		if v, ok := tr.Get(k, nil); !ok || v != want {
			t.Fatalf("Get(%d) = %d,%v, want %d,true", k, v, ok, want)
		}
	}
}

// TestSortedAppendPacksNodes pins what the fast path is for: an ascending
// load allocates one node per leafSlots records plus the thin inner spine —
// about half the median-split cost — and leaves leaves fully packed.
func TestSortedAppendPacksNodes(t *testing.T) {
	tr := New()
	var k uint64
	n := testing.AllocsPerRun(16384, func() {
		k++
		tr.Insert(k, k, nil)
	})
	// One leaf per 16 inserts plus spine inners: ~0.07 allocs per op; the
	// median-split path costs double. Guard with headroom.
	if n > 0.1 {
		t.Errorf("ascending insert allocates %.3f per op, want packed-append (< 0.1)", n)
	}
	full, leaves := 0, 0
	tr.Scan(0, ^uint64(0), func(uint64, uint64) bool { return true }, nil)
	for lf := leftmostLeaf(tr); lf != nil; lf = lf.next {
		leaves++
		if lf.num == leafSlots {
			full++
		}
	}
	// Every leaf but the in-progress rightmost one is fully packed.
	if leaves == 0 || full < leaves-1 {
		t.Errorf("%d of %d leaves fully packed, want all but the last", full, leaves)
	}
}

// leftmostLeaf descends the leftmost spine (test helper).
func leftmostLeaf(t *Tree) *leaf {
	node := t.root
	for {
		switch n := node.(type) {
		case *inner:
			node = n.children[0]
		case *leaf:
			return n
		default:
			return nil
		}
	}
}
