package btree

import "fmt"

// CheckInvariants walks the whole tree and verifies its structural
// invariants: sorted keys within every node, separator consistency between
// inner nodes and their subtrees, and an ascending leaf chain that contains
// exactly the tree's keys. Intended for tests and debugging; it takes the
// structural lock, so do not call it on a hot path.
func (t *Tree) CheckInvariants() error {
	t.structLock.Lock()
	defer t.structLock.Unlock()
	if t.root == nil {
		if t.count.Load() != 0 {
			return fmt.Errorf("btree: empty tree reports %d keys", t.count.Load())
		}
		return nil
	}
	var leftmost *leaf
	counted := 0
	var check func(node any, lo, hi uint64, hasLo, hasHi bool, depth int) error
	check = func(node any, lo, hi uint64, hasLo, hasHi bool, depth int) error {
		switch n := node.(type) {
		case *inner:
			if n.num < 1 || n.num > innerSlots {
				return fmt.Errorf("btree: inner node with %d keys", n.num)
			}
			for i := 1; i < n.num; i++ {
				if n.keys[i-1] >= n.keys[i] {
					return fmt.Errorf("btree: inner keys unsorted at %d", i)
				}
			}
			if hasLo && n.keys[0] < lo {
				return fmt.Errorf("btree: inner key %d below bound %d", n.keys[0], lo)
			}
			if hasHi && n.keys[n.num-1] > hi {
				return fmt.Errorf("btree: inner key %d above bound %d", n.keys[n.num-1], hi)
			}
			for i := 0; i <= n.num; i++ {
				cLo, cHasLo := lo, hasLo
				cHi, cHasHi := hi, hasHi
				if i > 0 {
					cLo, cHasLo = n.keys[i-1], true
				}
				if i < n.num {
					cHi, cHasHi = n.keys[i], true
				}
				if n.children[i] == nil {
					return fmt.Errorf("btree: nil child %d of inner node", i)
				}
				if err := check(n.children[i], cLo, cHi, cHasLo, cHasHi, depth+1); err != nil {
					return err
				}
			}
			return nil
		case *leaf:
			if depth != t.height {
				return fmt.Errorf("btree: leaf at depth %d, want %d", depth, t.height)
			}
			for i := 1; i < n.num; i++ {
				if n.keys[i-1] >= n.keys[i] {
					return fmt.Errorf("btree: leaf keys unsorted at %d", i)
				}
			}
			if n.num > 0 {
				if hasLo && n.keys[0] < lo {
					return fmt.Errorf("btree: leaf key %d below separator %d", n.keys[0], lo)
				}
				if hasHi && n.keys[n.num-1] >= hi {
					return fmt.Errorf("btree: leaf key %d not below separator %d", n.keys[n.num-1], hi)
				}
			}
			if leftmost == nil {
				leftmost = n
			}
			counted += n.num
			return nil
		default:
			return fmt.Errorf("btree: unknown node type %T", node)
		}
	}
	if err := check(t.root, 0, 0, false, false, 0); err != nil {
		return err
	}
	if int64(counted) != t.count.Load() {
		return fmt.Errorf("btree: %d keys in leaves, count says %d", counted, t.count.Load())
	}
	// The leaf chain must be ascending and cover the same keys.
	chain := 0
	var prev uint64
	first := true
	for lf := leftmost; lf != nil; lf = lf.next {
		for i := 0; i < lf.num; i++ {
			if !first && lf.keys[i] <= prev {
				return fmt.Errorf("btree: leaf chain unsorted at key %d", lf.keys[i])
			}
			prev, first = lf.keys[i], false
			chain++
		}
	}
	if chain != counted {
		return fmt.Errorf("btree: leaf chain has %d keys, tree walk found %d", chain, counted)
	}
	return nil
}
