package btree

import (
	"strings"
	"testing"
)

func TestCheckInvariantsAcceptsHealthyTree(t *testing.T) {
	tr := New()
	for i := uint64(0); i < 30000; i++ {
		tr.Insert(i*13%65537, i, nil)
	}
	for i := uint64(0); i < 30000; i += 4 {
		tr.Delete(i*13%65537, nil)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := New().CheckInvariants(); err != nil {
		t.Fatalf("empty tree: %v", err)
	}
}

func TestCheckInvariantsDetectsCorruption(t *testing.T) {
	build := func() *Tree {
		tr := New()
		for i := uint64(0); i < 5000; i++ {
			tr.Insert(i, i, nil)
		}
		return tr
	}

	t.Run("unsorted leaf", func(t *testing.T) {
		tr := build()
		lf := tr.findLeaf(100, nil)
		if lf.num < 2 {
			t.Skip("leaf too small")
		}
		lf.keys[0], lf.keys[1] = lf.keys[1], lf.keys[0]
		err := tr.CheckInvariants()
		if err == nil || !strings.Contains(err.Error(), "unsorted") {
			t.Errorf("unsorted leaf not detected: %v", err)
		}
	})

	t.Run("count drift", func(t *testing.T) {
		tr := build()
		tr.count.Add(-3)
		err := tr.CheckInvariants()
		if err == nil || !strings.Contains(err.Error(), "count") {
			t.Errorf("count drift not detected: %v", err)
		}
	})

	t.Run("separator violation", func(t *testing.T) {
		tr := build()
		// Put a key above the leaf's separator range.
		lf := tr.findLeaf(0, nil)
		lf.keys[lf.num-1] = 1 << 50
		err := tr.CheckInvariants()
		if err == nil {
			t.Error("separator violation not detected")
		}
	})

	t.Run("broken leaf chain", func(t *testing.T) {
		tr := build()
		lf := tr.findLeaf(0, nil)
		// Skip a leaf in the chain: keys disappear from the chain walk.
		if lf.next == nil || lf.next.next == nil {
			t.Skip("chain too short")
		}
		lf.next = lf.next.next
		err := tr.CheckInvariants()
		if err == nil {
			t.Error("broken chain not detected")
		}
	})

	t.Run("empty tree with count", func(t *testing.T) {
		tr := New()
		tr.count.Add(1)
		if err := tr.CheckInvariants(); err == nil {
			t.Error("phantom count on empty tree not detected")
		}
	})
}
