// Package bwtree implements the Open BW-Tree (Levandoski et al. ICDE'13, as
// characterised by Wang et al. SIGMOD'18): a latch-free B-tree variant whose
// nodes are addressed through a mapping table of atomic pointers. Writers
// never modify a node in place — they prepend copy-on-write delta records
// and publish them with a single compare-and-swap on the node's mapping
// table slot. Chains are consolidated into fresh base nodes once they exceed
// a threshold, and node splits follow the B-link discipline: a split first
// becomes visible through the right-sibling link, then a separator is
// installed in the parent (also via copy + CAS).
//
// Synchronisation is therefore exactly Table 1's "Copy-On-Write + atomic
// CAS": the structure contains no locks at all. Memory reclamation, which
// the original uses epochs for, is delegated to the Go garbage collector —
// a chain that loses its mapping-table slot simply becomes unreachable.
package bwtree

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"unsafe"

	"robustconf/internal/index"
	"robustconf/internal/prefetch"
)

const (
	// consolidateAt is the delta-chain length that triggers consolidation.
	consolidateAt = 8
	// maxLeafRecords splits a leaf during consolidation when exceeded.
	maxLeafRecords = 64
	// maxInnerSeps splits an inner node when exceeded.
	maxInnerSeps = 64
	// rootPID is the fixed mapping-table slot of the root.
	rootPID = 0
)

type pid = uint32

const nilPID pid = ^pid(0)

type nodeKind uint8

const (
	leafBase nodeKind = iota
	leafInsertDelta
	leafUpdateDelta
	leafDeleteDelta
	innerBase
)

// node is either a base node or a delta record; immutable once published.
type node struct {
	kind  nodeKind
	next  *node // toward the base (deltas only)
	depth int   // chain length from here down to the base

	// Delta payload (leafInsertDelta, leafUpdateDelta).
	key, val uint64

	// Leaf base payload: parallel sorted slices.
	keys []uint64
	vals []uint64

	// Inner base payload: children[i] covers keys < seps[i]; the last child
	// covers the rest up to highKey.
	seps     []uint64
	children []pid

	// B-link bounds, valid for both base kinds.
	hasHigh bool
	highKey uint64 // exclusive upper bound of this node's key space
	right   pid    // right sibling, nilPID when none
}

func (n *node) isLeaf() bool { return n.kind != innerBase }

// base follows the chain to the base node.
func (n *node) base() *node {
	for n.next != nil {
		n = n.next
	}
	return n
}

func nodeBytes(n *node) int {
	switch n.kind {
	case leafBase:
		return 64 + len(n.keys)*16
	case innerBase:
		return 64 + len(n.seps)*8 + len(n.children)*4
	default:
		return 48 // one delta record
	}
}

// Tree is a concurrent BW-Tree. Construct with New or NewCapacity.
type Tree struct {
	mapping []atomic.Pointer[node]
	nextPID atomic.Uint32
	count   atomic.Int64
	scratch sync.Pool // *opScratch

	// CASFailures and Consolidations are cumulative structure-wide counters
	// mirrored into per-op stats as they occur.
	CASFailures    atomic.Uint64
	Consolidations atomic.Uint64
}

// maxPath sizes the scratch descend-path array; with ≥2 children per inner
// node, 16 levels address far beyond the mapping table's capacity, so the
// append fallback to a heap-grown path never triggers in practice.
const maxPath = 16

// kv pairs a key with its resolved value in flatten scratch buffers.
type kv struct{ k, v uint64 }

// opScratch is pooled per-operation traversal state: the descend path and
// the delta-resolution buffers of flatten. Pooling it makes steady-state
// point operations free of incidental allocations — the only remaining
// per-mutation allocation is the published delta record itself, which lives
// on in the structure (recycling it would require epoch reclamation, since
// concurrent bypass readers may still be traversing a chain after its slot
// is CAS'd away; the Go GC is the epoch scheme here, as the package comment
// notes).
type opScratch struct {
	pathBuf [maxPath]pid
	// flatten buffers, sized for a chain at the consolidation threshold;
	// chains only exceed that under CAS-failure races, and the slices then
	// grow off the scratch arrays transparently.
	resolved [consolidateAt + 2]kv   // newest-first resolution, newest wins
	dead     [consolidateAt + 2]bool // parallel: resolved as deleted
	extraBuf [consolidateAt + 2]kv   // resolved keys absent from the base
}

func (t *Tree) getScratch() *opScratch {
	if sc, ok := t.scratch.Get().(*opScratch); ok {
		return sc
	}
	return &opScratch{}
}

func (t *Tree) putScratch(sc *opScratch) { t.scratch.Put(sc) }

// DefaultCapacity is the mapping-table size of New: 1Mi slots address well
// beyond 30M records at the default leaf size.
const DefaultCapacity = 1 << 20

// New returns an empty tree with the default mapping-table capacity.
func New() *Tree { return NewCapacity(DefaultCapacity) }

// NewCapacity returns an empty tree whose mapping table holds `capacity`
// logical node ids. The tree panics if an insert exhausts the table, so size
// it to ≥ (records / 32) slots.
func NewCapacity(capacity int) *Tree {
	if capacity < 8 {
		capacity = 8
	}
	t := &Tree{mapping: make([]atomic.Pointer[node], capacity)}
	t.nextPID.Store(1) // slot 0 is the root
	t.mapping[rootPID].Store(&node{kind: leafBase, right: nilPID})
	return t
}

func (t *Tree) allocPID(n *node) pid {
	p := t.nextPID.Add(1) - 1
	if int(p) >= len(t.mapping) {
		panic(fmt.Sprintf("bwtree: mapping table exhausted (%d slots)", len(t.mapping)))
	}
	t.mapping[p].Store(n)
	return p
}

func (t *Tree) load(p pid) *node { return t.mapping[p].Load() }

// Name implements index.Index.
func (t *Tree) Name() string { return "BW-Tree" }

// Scheme implements index.Index.
func (t *Tree) Scheme() index.Scheme { return index.SchemeCOW }

// ConcurrentReadSafe reports true: readers only traverse immutable delta
// records and base nodes reached through CAS-published mapping-table slots,
// so a read concurrent with any writer touches no in-place-mutated word
// (see index.ConcurrentReadSafe).
func (t *Tree) ConcurrentReadSafe() bool { return true }

// Len implements index.Index.
func (t *Tree) Len() int { return int(t.count.Load()) }

// descend walks from the root to the leaf responsible for k, following
// B-link right pointers past in-progress splits. It returns the leaf's pid,
// the chain head it observed, and the pid path of inner nodes visited
// (root first) for parent maintenance, appended into the caller's path
// buffer (normally the scratch's fixed array, so no allocation).
func (t *Tree) descend(k uint64, st *index.OpStats, path []pid) (pid, *node, []pid) {
	p := pid(rootPID)
	depth := uint64(0)
	for {
		n := t.load(p)
		st.Visit(1, index.CacheLines(nodeBytes(n)))
		b := n.base()
		// Chase the right sibling when k is beyond this node's bound.
		if b.hasHigh && k >= b.highKey && b.right != nilPID {
			p = b.right
			continue
		}
		if n.isLeaf() {
			if st != nil {
				st.Depth += depth
				st.DeltaLength += uint64(n.depth)
			}
			return p, n, path
		}
		path = append(path, p)
		depth++
		i := searchSeps(b.seps, k)
		p = b.children[i]
	}
}

// searchSeps returns the child index for k (first separator > k).
func searchSeps(seps []uint64, k uint64) int {
	lo, hi := 0, len(seps)
	for lo < hi {
		mid := (lo + hi) / 2
		if seps[mid] <= k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// chainLookup resolves k against a leaf chain: the newest delta for k wins,
// otherwise the base is searched.
func chainLookup(head *node, k uint64, st *index.OpStats) (uint64, bool) {
	for n := head; n != nil; n = n.next {
		switch n.kind {
		case leafInsertDelta, leafUpdateDelta:
			if n.key == k {
				return n.val, true
			}
		case leafDeleteDelta:
			if n.key == k {
				return 0, false
			}
		case leafBase:
			i := sort.Search(len(n.keys), func(i int) bool { return n.keys[i] >= k })
			if i < len(n.keys) && n.keys[i] == k {
				return n.vals[i], true
			}
			return 0, false
		}
	}
	return 0, false
}

// Get implements index.Index.
func (t *Tree) Get(k uint64, st *index.OpStats) (uint64, bool) {
	if st != nil {
		st.Ops++
	}
	sc := t.getScratch()
	_, head, _ := t.descend(k, st, sc.pathBuf[:0])
	v, ok := chainLookup(head, k, st)
	t.putScratch(sc)
	return v, ok
}

// Insert implements index.Index by publishing an insert delta with CAS.
func (t *Tree) Insert(k, v uint64, st *index.OpStats) bool {
	if st != nil {
		st.Ops++
	}
	sc := t.getScratch()
	defer t.putScratch(sc)
	for {
		p, head, path := t.descend(k, st, sc.pathBuf[:0])
		if _, exists := chainLookup(head, k, st); exists {
			return false
		}
		d := &node{kind: leafInsertDelta, key: k, val: v, next: head, depth: head.depth + 1}
		if st != nil {
			st.BytesCopied += uint64(nodeBytes(d))
		}
		if t.mapping[p].CompareAndSwap(head, d) {
			t.count.Add(1)
			if d.depth >= consolidateAt {
				t.consolidate(p, d, path, st, sc)
			}
			return true
		}
		t.CASFailures.Add(1)
		if st != nil {
			st.CASFailures++
		}
	}
}

// Update implements index.Index by publishing an update delta with CAS.
func (t *Tree) Update(k, v uint64, st *index.OpStats) bool {
	if st != nil {
		st.Ops++
	}
	sc := t.getScratch()
	defer t.putScratch(sc)
	for {
		p, head, path := t.descend(k, st, sc.pathBuf[:0])
		if _, exists := chainLookup(head, k, st); !exists {
			return false
		}
		d := &node{kind: leafUpdateDelta, key: k, val: v, next: head, depth: head.depth + 1}
		if st != nil {
			st.BytesCopied += uint64(nodeBytes(d))
		}
		if t.mapping[p].CompareAndSwap(head, d) {
			if d.depth >= consolidateAt {
				t.consolidate(p, d, path, st, sc)
			}
			return true
		}
		t.CASFailures.Add(1)
		if st != nil {
			st.CASFailures++
		}
	}
}

// Delete implements index.Index by publishing a delete delta with CAS —
// copy-on-write removal; the key physically disappears at the next
// consolidation.
func (t *Tree) Delete(k uint64, st *index.OpStats) bool {
	if st != nil {
		st.Ops++
	}
	sc := t.getScratch()
	defer t.putScratch(sc)
	for {
		p, head, path := t.descend(k, st, sc.pathBuf[:0])
		if _, exists := chainLookup(head, k, st); !exists {
			return false
		}
		d := &node{kind: leafDeleteDelta, key: k, next: head, depth: head.depth + 1}
		if st != nil {
			st.BytesCopied += uint64(nodeBytes(d))
		}
		if t.mapping[p].CompareAndSwap(head, d) {
			t.count.Add(-1)
			if d.depth >= consolidateAt {
				t.consolidate(p, d, path, st, sc)
			}
			return true
		}
		t.CASFailures.Add(1)
		if st != nil {
			st.CASFailures++
		}
	}
}

// insertionSortKVs sorts a small kv slice by key in place. The slice is a
// chain's worth of entries (~consolidateAt), so the quadratic bound is
// irrelevant and the sort stays allocation-free (sort.Slice would build a
// reflect-based swapper).
func insertionSortKVs(a []kv) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j].k < a[j-1].k; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// resolveIdx returns the index of k in the resolved buffer, or -1. Linear
// scan: the buffer holds one entry per distinct delta key in a chain.
func resolveIdx(resolved []kv, k uint64) int {
	for i := range resolved {
		if resolved[i].k == k {
			return i
		}
	}
	return -1
}

// flatten merges a leaf chain into sorted key/value slices. The output
// slices are freshly allocated (they become the new base's payload); all
// intermediate delta-resolution state lives in the scratch's fixed buffers,
// replacing the per-consolidation maps and sort.Slice closure this function
// used to allocate.
func flatten(head *node, sc *opScratch) (keys, vals []uint64, b *node) {
	b = head.base()
	// Newest-first wins: resolve each distinct delta key once (deletions
	// drop the key), then merge with the base.
	resolved := sc.resolved[:0]
	dead := sc.dead[:0]
	for n := head; n != nil; n = n.next {
		if n.kind != leafInsertDelta && n.kind != leafUpdateDelta && n.kind != leafDeleteDelta {
			break
		}
		if resolveIdx(resolved, n.key) >= 0 {
			continue
		}
		resolved = append(resolved, kv{n.key, n.val})
		dead = append(dead, n.kind == leafDeleteDelta)
	}
	keys = make([]uint64, 0, len(b.keys)+len(resolved))
	vals = make([]uint64, 0, len(b.keys)+len(resolved))
	// Live resolved keys absent from the (sorted) base are merged in key
	// order alongside it.
	extra := sc.extraBuf[:0]
	for i, e := range resolved {
		if dead[i] {
			continue
		}
		j := sort.Search(len(b.keys), func(j int) bool { return b.keys[j] >= e.k })
		if j >= len(b.keys) || b.keys[j] != e.k {
			extra = append(extra, e)
		}
	}
	insertionSortKVs(extra)
	ei := 0
	for i, k := range b.keys {
		for ei < len(extra) && extra[ei].k < k {
			keys = append(keys, extra[ei].k)
			vals = append(vals, extra[ei].v)
			ei++
		}
		if ri := resolveIdx(resolved, k); ri >= 0 {
			if dead[ri] {
				continue
			}
			keys = append(keys, k)
			vals = append(vals, resolved[ri].v)
			continue
		}
		keys = append(keys, k)
		vals = append(vals, b.vals[i])
	}
	for ; ei < len(extra); ei++ {
		keys = append(keys, extra[ei].k)
		vals = append(vals, extra[ei].v)
	}
	return keys, vals, b
}

// consolidate replaces the chain at p (observed as head) with a fresh base,
// splitting it when oversized. Failure to install is benign — someone else
// changed the chain and will consolidate later.
func (t *Tree) consolidate(p pid, head *node, path []pid, st *index.OpStats, sc *opScratch) {
	keys, vals, b := flatten(head, sc)
	t.Consolidations.Add(1)
	if st != nil {
		st.Consolidates++
		st.BytesCopied += uint64(len(keys) * 16)
	}
	if len(keys) <= maxLeafRecords {
		nb := &node{kind: leafBase, keys: keys, vals: vals, hasHigh: b.hasHigh, highKey: b.highKey, right: b.right}
		if !t.mapping[p].CompareAndSwap(head, nb) {
			t.CASFailures.Add(1)
			if st != nil {
				st.CASFailures++
			}
		}
		return
	}
	// Split: the right half becomes a new pid, visible through the B-link
	// before the parent learns the separator.
	mid := len(keys) / 2
	sep := keys[mid]
	rightNode := &node{kind: leafBase, keys: append([]uint64(nil), keys[mid:]...), vals: append([]uint64(nil), vals[mid:]...),
		hasHigh: b.hasHigh, highKey: b.highKey, right: b.right}
	rp := t.allocPID(rightNode)
	leftNode := &node{kind: leafBase, keys: append([]uint64(nil), keys[:mid]...), vals: append([]uint64(nil), vals[:mid]...),
		hasHigh: true, highKey: sep, right: rp}
	if !t.mapping[p].CompareAndSwap(head, leftNode) {
		// Lost the race; the right pid stays orphaned until GC'd.
		t.CASFailures.Add(1)
		if st != nil {
			st.CASFailures++
		}
		return
	}
	if st != nil {
		st.Splits++
	}
	t.installSeparator(p, rp, sep, path, st, sc)
}

// installSeparator publishes (sep → right) into the parent of p, splitting
// parents and growing the root as needed. Inner nodes are replaced wholesale
// (copy-on-write) with a CAS on their mapping slot.
func (t *Tree) installSeparator(left, right pid, sep uint64, path []pid, st *index.OpStats, sc *opScratch) {
	for attempt := 0; attempt < 64; attempt++ {
		if len(path) == 0 {
			// p was the root: grow the tree. The old root's content has
			// already been replaced at its pid... the root pid IS left
			// here only when path is empty, so move its content to a new
			// pid and point a fresh root at both halves.
			if left != rootPID {
				return // a concurrent grower already handled it
			}
			cur := t.load(rootPID)
			movedLeft := t.allocPID(cur)
			newRoot := &node{kind: innerBase, seps: []uint64{sep}, children: []pid{movedLeft, right}, right: nilPID}
			if t.mapping[rootPID].CompareAndSwap(cur, newRoot) {
				if st != nil {
					st.Splits++
				}
				return
			}
			t.CASFailures.Add(1)
			// Root changed under us (e.g. concurrent delta on the old
			// leaf that is now also reachable via movedLeft — those CAS
			// on rootPID, not movedLeft, so retry from scratch).
			path = t.refreshPath(sep, sc)
			continue
		}
		pp := path[len(path)-1]
		cur := t.load(pp)
		b := cur.base()
		if b.kind != innerBase {
			// The parent got replaced by something unexpected; re-walk.
			path = t.refreshPath(sep, sc)
			continue
		}
		// Already installed? (Another thread may have helped.)
		i := searchSeps(b.seps, sep)
		if i > 0 && b.seps[i-1] == sep {
			return
		}
		if b.hasHigh && sep >= b.highKey {
			// The parent split concurrently and sep belongs to its right
			// sibling now; re-walk from the root to find the new parent.
			path = t.refreshPath(sep, sc)
			continue
		}
		nseps := make([]uint64, 0, len(b.seps)+1)
		nchildren := make([]pid, 0, len(b.children)+1)
		nseps = append(nseps, b.seps[:i]...)
		nseps = append(nseps, sep)
		nseps = append(nseps, b.seps[i:]...)
		nchildren = append(nchildren, b.children[:i+1]...)
		nchildren = append(nchildren, right)
		nchildren = append(nchildren, b.children[i+1:]...)

		if len(nseps) <= maxInnerSeps {
			nb := &node{kind: innerBase, seps: nseps, children: nchildren, hasHigh: b.hasHigh, highKey: b.highKey, right: b.right}
			if st != nil {
				st.BytesCopied += uint64(nodeBytes(nb))
			}
			if t.mapping[pp].CompareAndSwap(cur, nb) {
				return
			}
			t.CASFailures.Add(1)
			if st != nil {
				st.CASFailures++
			}
			continue
		}
		// Parent overflow: split it, then recurse upward with its separator.
		mid := len(nseps) / 2
		upSep := nseps[mid]
		rightInner := &node{kind: innerBase, seps: append([]uint64(nil), nseps[mid+1:]...), children: append([]pid(nil), nchildren[mid+1:]...),
			hasHigh: b.hasHigh, highKey: b.highKey, right: b.right}
		rip := t.allocPID(rightInner)
		leftInner := &node{kind: innerBase, seps: append([]uint64(nil), nseps[:mid]...), children: append([]pid(nil), nchildren[:mid+1]...),
			hasHigh: true, highKey: upSep, right: rip}
		if st != nil {
			st.BytesCopied += uint64(nodeBytes(leftInner) + nodeBytes(rightInner))
		}
		if !t.mapping[pp].CompareAndSwap(cur, leftInner) {
			t.CASFailures.Add(1)
			if st != nil {
				st.CASFailures++
			}
			continue
		}
		if st != nil {
			st.Splits++
		}
		t.installSeparator(pp, rip, upSep, path[:len(path)-1], st, sc)
		return
	}
}

// refreshPath re-walks from the root and returns the inner pid path leading
// to the leaf that covers k, rebuilt into the scratch's path buffer (the
// caller's stale path slice aliases the same buffer but is dead by then).
func (t *Tree) refreshPath(k uint64, sc *opScratch) []pid {
	_, _, path := t.descend(k, nil, sc.pathBuf[:0])
	return path
}

// Scan implements index.Ranger by flattening each leaf chain in turn and
// following the B-link chain rightward.
func (t *Tree) Scan(lo, hi uint64, fn func(k, v uint64) bool, st *index.OpStats) int {
	if st != nil {
		st.Ops++
	}
	sc := t.getScratch()
	defer t.putScratch(sc)
	p, head, _ := t.descend(lo, st, sc.pathBuf[:0])
	n := 0
	for {
		keys, vals, b := flatten(head, sc)
		for i, k := range keys {
			if k < lo {
				continue
			}
			if k > hi {
				return n
			}
			n++
			if !fn(k, vals[i]) {
				return n
			}
		}
		if !b.hasHigh || b.highKey > hi || b.right == nilPID {
			return n
		}
		p = b.right
		head = t.load(p)
		st.Visit(1, index.CacheLines(nodeBytes(head)))
	}
}

// DeltaChainLength returns the current chain length at the leaf covering k,
// exposed for tests and the cost model.
func (t *Tree) DeltaChainLength(k uint64) int {
	sc := t.getScratch()
	_, head, _ := t.descend(k, nil, sc.pathBuf[:0])
	t.putScratch(sc)
	return head.depth
}

// batchStride is the interleaved group width of one ExecBatch round.
const batchStride = 16

// ExecBatch implements index.BatchKernel. The locate stage advances every
// operation's descent one mapping-table hop per round — prefetching first
// the mapping slot the op will load next and then the chain head it
// resolves to — so the group's pointer-chase misses overlap. The walk is
// purely optimistic (mapping slots are atomic pointers and published nodes
// are immutable, the same property ConcurrentReadSafe relies on) and
// publishes nothing; the execute stage then runs each operation through the
// public methods in index order against the warmed lines. The BW-Tree's
// per-op cost is dominated by delta-chain walks rather than node hops, so
// this kernel is deliberately minimal — correctness comes from the serial
// execute stage, the prefetches are best-effort.
func (t *Tree) ExecBatch(kinds []uint8, keys, vals, outVals []uint64, outOKs []bool) {
	var cur [batchStride]pid
	var live [batchStride]bool
	for base := 0; base < len(kinds); base += batchStride {
		n := len(kinds) - base
		if n > batchStride {
			n = batchStride
		}
		for i := 0; i < n; i++ {
			cur[i] = rootPID
			live[i] = true
		}
		for {
			advanced := false
			for i := 0; i < n; i++ {
				if !live[i] {
					continue
				}
				nd := t.load(cur[i])
				if nd == nil {
					live[i] = false
					continue
				}
				prefetch.Line(unsafe.Pointer(nd))
				b := nd.base()
				k := keys[base+i]
				switch {
				case b.hasHigh && k >= b.highKey && b.right != nilPID:
					cur[i] = b.right
				case nd.isLeaf():
					live[i] = false
					continue
				default:
					cur[i] = b.children[searchSeps(b.seps, k)]
				}
				prefetch.Line(unsafe.Pointer(&t.mapping[cur[i]]))
				advanced = true
			}
			if !advanced {
				break
			}
		}
		for i := base; i < base+n; i++ {
			switch kinds[i] {
			case index.BatchGet:
				outVals[i], outOKs[i] = t.Get(keys[i], nil)
			case index.BatchInsert:
				outVals[i], outOKs[i] = 0, t.Insert(keys[i], vals[i], nil)
			case index.BatchUpdate:
				outVals[i], outOKs[i] = 0, t.Update(keys[i], vals[i], nil)
			case index.BatchDelete:
				outVals[i], outOKs[i] = 0, t.Delete(keys[i], nil)
			}
		}
	}
}
