// Package bwtree implements the Open BW-Tree (Levandoski et al. ICDE'13, as
// characterised by Wang et al. SIGMOD'18): a latch-free B-tree variant whose
// nodes are addressed through a mapping table of atomic pointers. Writers
// never modify a node in place — they prepend copy-on-write delta records
// and publish them with a single compare-and-swap on the node's mapping
// table slot. Chains are consolidated into fresh base nodes once they exceed
// a threshold, and node splits follow the B-link discipline: a split first
// becomes visible through the right-sibling link, then a separator is
// installed in the parent (also via copy + CAS).
//
// Synchronisation is therefore exactly Table 1's "Copy-On-Write + atomic
// CAS": the structure contains no locks at all. Memory reclamation, which
// the original uses epochs for, is delegated to the Go garbage collector —
// a chain that loses its mapping-table slot simply becomes unreachable.
package bwtree

import (
	"fmt"
	"sort"
	"sync/atomic"

	"robustconf/internal/index"
)

const (
	// consolidateAt is the delta-chain length that triggers consolidation.
	consolidateAt = 8
	// maxLeafRecords splits a leaf during consolidation when exceeded.
	maxLeafRecords = 64
	// maxInnerSeps splits an inner node when exceeded.
	maxInnerSeps = 64
	// rootPID is the fixed mapping-table slot of the root.
	rootPID = 0
)

type pid = uint32

const nilPID pid = ^pid(0)

type nodeKind uint8

const (
	leafBase nodeKind = iota
	leafInsertDelta
	leafUpdateDelta
	leafDeleteDelta
	innerBase
)

// node is either a base node or a delta record; immutable once published.
type node struct {
	kind  nodeKind
	next  *node // toward the base (deltas only)
	depth int   // chain length from here down to the base

	// Delta payload (leafInsertDelta, leafUpdateDelta).
	key, val uint64

	// Leaf base payload: parallel sorted slices.
	keys []uint64
	vals []uint64

	// Inner base payload: children[i] covers keys < seps[i]; the last child
	// covers the rest up to highKey.
	seps     []uint64
	children []pid

	// B-link bounds, valid for both base kinds.
	hasHigh bool
	highKey uint64 // exclusive upper bound of this node's key space
	right   pid    // right sibling, nilPID when none
}

func (n *node) isLeaf() bool { return n.kind != innerBase }

// base follows the chain to the base node.
func (n *node) base() *node {
	for n.next != nil {
		n = n.next
	}
	return n
}

func nodeBytes(n *node) int {
	switch n.kind {
	case leafBase:
		return 64 + len(n.keys)*16
	case innerBase:
		return 64 + len(n.seps)*8 + len(n.children)*4
	default:
		return 48 // one delta record
	}
}

// Tree is a concurrent BW-Tree. Construct with New or NewCapacity.
type Tree struct {
	mapping []atomic.Pointer[node]
	nextPID atomic.Uint32
	count   atomic.Int64

	// CASFailures and Consolidations are cumulative structure-wide counters
	// mirrored into per-op stats as they occur.
	CASFailures    atomic.Uint64
	Consolidations atomic.Uint64
}

// DefaultCapacity is the mapping-table size of New: 1Mi slots address well
// beyond 30M records at the default leaf size.
const DefaultCapacity = 1 << 20

// New returns an empty tree with the default mapping-table capacity.
func New() *Tree { return NewCapacity(DefaultCapacity) }

// NewCapacity returns an empty tree whose mapping table holds `capacity`
// logical node ids. The tree panics if an insert exhausts the table, so size
// it to ≥ (records / 32) slots.
func NewCapacity(capacity int) *Tree {
	if capacity < 8 {
		capacity = 8
	}
	t := &Tree{mapping: make([]atomic.Pointer[node], capacity)}
	t.nextPID.Store(1) // slot 0 is the root
	t.mapping[rootPID].Store(&node{kind: leafBase, right: nilPID})
	return t
}

func (t *Tree) allocPID(n *node) pid {
	p := t.nextPID.Add(1) - 1
	if int(p) >= len(t.mapping) {
		panic(fmt.Sprintf("bwtree: mapping table exhausted (%d slots)", len(t.mapping)))
	}
	t.mapping[p].Store(n)
	return p
}

func (t *Tree) load(p pid) *node { return t.mapping[p].Load() }

// Name implements index.Index.
func (t *Tree) Name() string { return "BW-Tree" }

// Scheme implements index.Index.
func (t *Tree) Scheme() index.Scheme { return index.SchemeCOW }

// ConcurrentReadSafe reports true: readers only traverse immutable delta
// records and base nodes reached through CAS-published mapping-table slots,
// so a read concurrent with any writer touches no in-place-mutated word
// (see index.ConcurrentReadSafe).
func (t *Tree) ConcurrentReadSafe() bool { return true }

// Len implements index.Index.
func (t *Tree) Len() int { return int(t.count.Load()) }

// descend walks from the root to the leaf responsible for k, following
// B-link right pointers past in-progress splits. It returns the leaf's pid,
// the chain head it observed, and the pid path of inner nodes visited
// (root first) for parent maintenance.
func (t *Tree) descend(k uint64, st *index.OpStats) (pid, *node, []pid) {
	var path []pid
	p := pid(rootPID)
	depth := uint64(0)
	for {
		n := t.load(p)
		st.Visit(1, index.CacheLines(nodeBytes(n)))
		b := n.base()
		// Chase the right sibling when k is beyond this node's bound.
		if b.hasHigh && k >= b.highKey && b.right != nilPID {
			p = b.right
			continue
		}
		if n.isLeaf() {
			if st != nil {
				st.Depth += depth
				st.DeltaLength += uint64(n.depth)
			}
			return p, n, path
		}
		path = append(path, p)
		depth++
		i := searchSeps(b.seps, k)
		p = b.children[i]
	}
}

// searchSeps returns the child index for k (first separator > k).
func searchSeps(seps []uint64, k uint64) int {
	lo, hi := 0, len(seps)
	for lo < hi {
		mid := (lo + hi) / 2
		if seps[mid] <= k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// chainLookup resolves k against a leaf chain: the newest delta for k wins,
// otherwise the base is searched.
func chainLookup(head *node, k uint64, st *index.OpStats) (uint64, bool) {
	for n := head; n != nil; n = n.next {
		switch n.kind {
		case leafInsertDelta, leafUpdateDelta:
			if n.key == k {
				return n.val, true
			}
		case leafDeleteDelta:
			if n.key == k {
				return 0, false
			}
		case leafBase:
			i := sort.Search(len(n.keys), func(i int) bool { return n.keys[i] >= k })
			if i < len(n.keys) && n.keys[i] == k {
				return n.vals[i], true
			}
			return 0, false
		}
	}
	return 0, false
}

// Get implements index.Index.
func (t *Tree) Get(k uint64, st *index.OpStats) (uint64, bool) {
	if st != nil {
		st.Ops++
	}
	_, head, _ := t.descend(k, st)
	return chainLookup(head, k, st)
}

// Insert implements index.Index by publishing an insert delta with CAS.
func (t *Tree) Insert(k, v uint64, st *index.OpStats) bool {
	if st != nil {
		st.Ops++
	}
	for {
		p, head, path := t.descend(k, st)
		if _, exists := chainLookup(head, k, st); exists {
			return false
		}
		d := &node{kind: leafInsertDelta, key: k, val: v, next: head, depth: head.depth + 1}
		if st != nil {
			st.BytesCopied += uint64(nodeBytes(d))
		}
		if t.mapping[p].CompareAndSwap(head, d) {
			t.count.Add(1)
			if d.depth >= consolidateAt {
				t.consolidate(p, d, path, st)
			}
			return true
		}
		t.CASFailures.Add(1)
		if st != nil {
			st.CASFailures++
		}
	}
}

// Update implements index.Index by publishing an update delta with CAS.
func (t *Tree) Update(k, v uint64, st *index.OpStats) bool {
	if st != nil {
		st.Ops++
	}
	for {
		p, head, path := t.descend(k, st)
		if _, exists := chainLookup(head, k, st); !exists {
			return false
		}
		d := &node{kind: leafUpdateDelta, key: k, val: v, next: head, depth: head.depth + 1}
		if st != nil {
			st.BytesCopied += uint64(nodeBytes(d))
		}
		if t.mapping[p].CompareAndSwap(head, d) {
			if d.depth >= consolidateAt {
				t.consolidate(p, d, path, st)
			}
			return true
		}
		t.CASFailures.Add(1)
		if st != nil {
			st.CASFailures++
		}
	}
}

// Delete implements index.Index by publishing a delete delta with CAS —
// copy-on-write removal; the key physically disappears at the next
// consolidation.
func (t *Tree) Delete(k uint64, st *index.OpStats) bool {
	if st != nil {
		st.Ops++
	}
	for {
		p, head, path := t.descend(k, st)
		if _, exists := chainLookup(head, k, st); !exists {
			return false
		}
		d := &node{kind: leafDeleteDelta, key: k, next: head, depth: head.depth + 1}
		if st != nil {
			st.BytesCopied += uint64(nodeBytes(d))
		}
		if t.mapping[p].CompareAndSwap(head, d) {
			t.count.Add(-1)
			if d.depth >= consolidateAt {
				t.consolidate(p, d, path, st)
			}
			return true
		}
		t.CASFailures.Add(1)
		if st != nil {
			st.CASFailures++
		}
	}
}

// flatten merges a leaf chain into sorted key/value slices.
func flatten(head *node) (keys, vals []uint64, b *node) {
	b = head.base()
	type kv struct{ k, v uint64 }
	// Newest-first wins: collect delta overrides (deletions drop the
	// key), then merge with the base.
	overrides := map[uint64]uint64{}
	deleted := map[uint64]bool{}
	inserted := []kv{}
	for n := head; n != nil; n = n.next {
		if n.kind != leafInsertDelta && n.kind != leafUpdateDelta && n.kind != leafDeleteDelta {
			break
		}
		if _, seen := overrides[n.key]; seen || deleted[n.key] {
			continue
		}
		if n.kind == leafDeleteDelta {
			deleted[n.key] = true
			continue
		}
		overrides[n.key] = n.val
		inserted = append(inserted, kv{n.key, n.val})
	}
	keys = make([]uint64, 0, len(b.keys)+len(inserted))
	vals = make([]uint64, 0, len(b.keys)+len(inserted))
	extra := make([]kv, 0, len(inserted))
	inBase := map[uint64]bool{}
	for _, k := range b.keys {
		inBase[k] = true
	}
	for _, e := range inserted {
		if !inBase[e.k] {
			extra = append(extra, e)
		}
	}
	sort.Slice(extra, func(i, j int) bool { return extra[i].k < extra[j].k })
	ei := 0
	for i, k := range b.keys {
		for ei < len(extra) && extra[ei].k < k {
			keys = append(keys, extra[ei].k)
			vals = append(vals, extra[ei].v)
			ei++
		}
		if deleted[k] {
			continue
		}
		keys = append(keys, k)
		if ov, ok := overrides[k]; ok {
			vals = append(vals, ov)
		} else {
			vals = append(vals, b.vals[i])
		}
	}
	for ; ei < len(extra); ei++ {
		keys = append(keys, extra[ei].k)
		vals = append(vals, extra[ei].v)
	}
	return keys, vals, b
}

// consolidate replaces the chain at p (observed as head) with a fresh base,
// splitting it when oversized. Failure to install is benign — someone else
// changed the chain and will consolidate later.
func (t *Tree) consolidate(p pid, head *node, path []pid, st *index.OpStats) {
	keys, vals, b := flatten(head)
	t.Consolidations.Add(1)
	if st != nil {
		st.Consolidates++
		st.BytesCopied += uint64(len(keys) * 16)
	}
	if len(keys) <= maxLeafRecords {
		nb := &node{kind: leafBase, keys: keys, vals: vals, hasHigh: b.hasHigh, highKey: b.highKey, right: b.right}
		if !t.mapping[p].CompareAndSwap(head, nb) {
			t.CASFailures.Add(1)
			if st != nil {
				st.CASFailures++
			}
		}
		return
	}
	// Split: the right half becomes a new pid, visible through the B-link
	// before the parent learns the separator.
	mid := len(keys) / 2
	sep := keys[mid]
	rightNode := &node{kind: leafBase, keys: append([]uint64(nil), keys[mid:]...), vals: append([]uint64(nil), vals[mid:]...),
		hasHigh: b.hasHigh, highKey: b.highKey, right: b.right}
	rp := t.allocPID(rightNode)
	leftNode := &node{kind: leafBase, keys: append([]uint64(nil), keys[:mid]...), vals: append([]uint64(nil), vals[:mid]...),
		hasHigh: true, highKey: sep, right: rp}
	if !t.mapping[p].CompareAndSwap(head, leftNode) {
		// Lost the race; the right pid stays orphaned until GC'd.
		t.CASFailures.Add(1)
		if st != nil {
			st.CASFailures++
		}
		return
	}
	if st != nil {
		st.Splits++
	}
	t.installSeparator(p, rp, sep, path, st)
}

// installSeparator publishes (sep → right) into the parent of p, splitting
// parents and growing the root as needed. Inner nodes are replaced wholesale
// (copy-on-write) with a CAS on their mapping slot.
func (t *Tree) installSeparator(left, right pid, sep uint64, path []pid, st *index.OpStats) {
	for attempt := 0; attempt < 64; attempt++ {
		if len(path) == 0 {
			// p was the root: grow the tree. The old root's content has
			// already been replaced at its pid... the root pid IS left
			// here only when path is empty, so move its content to a new
			// pid and point a fresh root at both halves.
			if left != rootPID {
				return // a concurrent grower already handled it
			}
			cur := t.load(rootPID)
			movedLeft := t.allocPID(cur)
			newRoot := &node{kind: innerBase, seps: []uint64{sep}, children: []pid{movedLeft, right}, right: nilPID}
			if t.mapping[rootPID].CompareAndSwap(cur, newRoot) {
				if st != nil {
					st.Splits++
				}
				return
			}
			t.CASFailures.Add(1)
			// Root changed under us (e.g. concurrent delta on the old
			// leaf that is now also reachable via movedLeft — those CAS
			// on rootPID, not movedLeft, so retry from scratch).
			path = t.refreshPath(sep)
			continue
		}
		pp := path[len(path)-1]
		cur := t.load(pp)
		b := cur.base()
		if b.kind != innerBase {
			// The parent got replaced by something unexpected; re-walk.
			path = t.refreshPath(sep)
			continue
		}
		// Already installed? (Another thread may have helped.)
		i := searchSeps(b.seps, sep)
		if i > 0 && b.seps[i-1] == sep {
			return
		}
		if b.hasHigh && sep >= b.highKey {
			// The parent split concurrently and sep belongs to its right
			// sibling now; re-walk from the root to find the new parent.
			path = t.refreshPath(sep)
			continue
		}
		nseps := make([]uint64, 0, len(b.seps)+1)
		nchildren := make([]pid, 0, len(b.children)+1)
		nseps = append(nseps, b.seps[:i]...)
		nseps = append(nseps, sep)
		nseps = append(nseps, b.seps[i:]...)
		nchildren = append(nchildren, b.children[:i+1]...)
		nchildren = append(nchildren, right)
		nchildren = append(nchildren, b.children[i+1:]...)

		if len(nseps) <= maxInnerSeps {
			nb := &node{kind: innerBase, seps: nseps, children: nchildren, hasHigh: b.hasHigh, highKey: b.highKey, right: b.right}
			if st != nil {
				st.BytesCopied += uint64(nodeBytes(nb))
			}
			if t.mapping[pp].CompareAndSwap(cur, nb) {
				return
			}
			t.CASFailures.Add(1)
			if st != nil {
				st.CASFailures++
			}
			continue
		}
		// Parent overflow: split it, then recurse upward with its separator.
		mid := len(nseps) / 2
		upSep := nseps[mid]
		rightInner := &node{kind: innerBase, seps: append([]uint64(nil), nseps[mid+1:]...), children: append([]pid(nil), nchildren[mid+1:]...),
			hasHigh: b.hasHigh, highKey: b.highKey, right: b.right}
		rip := t.allocPID(rightInner)
		leftInner := &node{kind: innerBase, seps: append([]uint64(nil), nseps[:mid]...), children: append([]pid(nil), nchildren[:mid+1]...),
			hasHigh: true, highKey: upSep, right: rip}
		if st != nil {
			st.BytesCopied += uint64(nodeBytes(leftInner) + nodeBytes(rightInner))
		}
		if !t.mapping[pp].CompareAndSwap(cur, leftInner) {
			t.CASFailures.Add(1)
			if st != nil {
				st.CASFailures++
			}
			continue
		}
		if st != nil {
			st.Splits++
		}
		t.installSeparator(pp, rip, upSep, path[:len(path)-1], st)
		return
	}
}

// refreshPath re-walks from the root and returns the inner pid path leading
// to the leaf that covers k.
func (t *Tree) refreshPath(k uint64) []pid {
	_, _, path := t.descend(k, nil)
	return path
}

// Scan implements index.Ranger by flattening each leaf chain in turn and
// following the B-link chain rightward.
func (t *Tree) Scan(lo, hi uint64, fn func(k, v uint64) bool, st *index.OpStats) int {
	if st != nil {
		st.Ops++
	}
	p, head, _ := t.descend(lo, st)
	n := 0
	for {
		keys, vals, b := flatten(head)
		for i, k := range keys {
			if k < lo {
				continue
			}
			if k > hi {
				return n
			}
			n++
			if !fn(k, vals[i]) {
				return n
			}
		}
		if !b.hasHigh || b.highKey > hi || b.right == nilPID {
			return n
		}
		p = b.right
		head = t.load(p)
		st.Visit(1, index.CacheLines(nodeBytes(head)))
	}
}

// DeltaChainLength returns the current chain length at the leaf covering k,
// exposed for tests and the cost model.
func (t *Tree) DeltaChainLength(k uint64) int {
	_, head, _ := t.descend(k, nil)
	return head.depth
}
