package bwtree

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"robustconf/internal/index"
)

func TestEmptyTree(t *testing.T) {
	tr := New()
	if tr.Len() != 0 {
		t.Errorf("Len = %d, want 0", tr.Len())
	}
	if _, ok := tr.Get(1, nil); ok {
		t.Error("Get on empty tree found a key")
	}
	if tr.Update(1, 1, nil) {
		t.Error("Update on empty tree succeeded")
	}
}

func TestInsertGetThroughSplits(t *testing.T) {
	tr := New()
	const n = 50000
	for i := uint64(0); i < n; i++ {
		k := i * 2654435761 % 1000003
		if !tr.Insert(k, i, nil) {
			t.Fatalf("Insert(%d) failed", k)
		}
	}
	if tr.Len() != n {
		t.Fatalf("Len = %d, want %d", tr.Len(), n)
	}
	for i := uint64(0); i < n; i++ {
		k := i * 2654435761 % 1000003
		v, ok := tr.Get(k, nil)
		if !ok || v != i {
			t.Fatalf("Get(%d) = %d,%v want %d", k, v, ok, i)
		}
	}
}

func TestSequentialInsertExercisesRootGrowth(t *testing.T) {
	tr := New()
	var st index.OpStats
	for i := uint64(0); i < 100000; i++ {
		tr.Insert(i, i, &st)
	}
	if st.Splits == 0 {
		t.Error("no splits on 100k sequential inserts")
	}
	if st.Consolidates == 0 {
		t.Error("no consolidations recorded")
	}
	for i := uint64(0); i < 100000; i += 991 {
		if v, ok := tr.Get(i, nil); !ok || v != i {
			t.Fatalf("Get(%d) = %d,%v", i, v, ok)
		}
	}
}

func TestDuplicateInsertRejected(t *testing.T) {
	tr := New()
	if !tr.Insert(9, 1, nil) {
		t.Fatal("first insert failed")
	}
	if tr.Insert(9, 2, nil) {
		t.Error("duplicate insert succeeded")
	}
	if v, _ := tr.Get(9, nil); v != 1 {
		t.Errorf("value = %d after duplicate insert", v)
	}
}

func TestUpdateNewestDeltaWins(t *testing.T) {
	tr := New()
	tr.Insert(5, 1, nil)
	for v := uint64(2); v <= 20; v++ {
		if !tr.Update(5, v, nil) {
			t.Fatalf("Update to %d failed", v)
		}
	}
	if got, _ := tr.Get(5, nil); got != 20 {
		t.Errorf("Get = %d, want 20 (newest delta)", got)
	}
	if tr.Update(6, 1, nil) {
		t.Error("Update of absent key succeeded")
	}
	if tr.Len() != 1 {
		t.Errorf("Len = %d, want 1", tr.Len())
	}
}

func TestDeltaChainsConsolidate(t *testing.T) {
	tr := New()
	tr.Insert(1, 1, nil)
	// Hammer one key with updates; the chain must be bounded by
	// consolidation rather than growing without limit.
	for i := uint64(0); i < 1000; i++ {
		tr.Update(1, i, nil)
	}
	if l := tr.DeltaChainLength(1); l > consolidateAt {
		t.Errorf("chain length %d exceeds consolidation threshold %d", l, consolidateAt)
	}
	if tr.Consolidations.Load() == 0 {
		t.Error("no consolidations happened")
	}
}

func TestScanOrdered(t *testing.T) {
	tr := New()
	keys := rand.New(rand.NewSource(3)).Perm(5000)
	for _, k := range keys {
		tr.Insert(uint64(k), uint64(k)*3, nil)
	}
	var got []uint64
	n := tr.Scan(2000, 2199, func(k, v uint64) bool {
		if v != k*3 {
			t.Errorf("value mismatch at %d", k)
		}
		got = append(got, k)
		return true
	}, nil)
	if n != 200 {
		t.Fatalf("Scan visited %d, want 200", n)
	}
	for i, k := range got {
		if k != uint64(2000+i) {
			t.Fatalf("out of order at %d: %d", i, k)
		}
	}
}

func TestScanSeesFreshDeltas(t *testing.T) {
	tr := New()
	for i := uint64(0); i < 100; i++ {
		tr.Insert(i*2, i, nil)
	}
	// Updates sit in deltas; scans must observe the newest values.
	tr.Update(10, 999, nil)
	seen := false
	tr.Scan(10, 10, func(k, v uint64) bool {
		seen = true
		if v != 999 {
			t.Errorf("Scan saw stale value %d", v)
		}
		return true
	}, nil)
	if !seen {
		t.Error("Scan missed key 10")
	}
}

func TestSchemeAndName(t *testing.T) {
	tr := New()
	if tr.Name() != "BW-Tree" {
		t.Errorf("Name = %q", tr.Name())
	}
	if tr.Scheme() != index.SchemeCOW {
		t.Errorf("Scheme = %v", tr.Scheme())
	}
}

func TestStatsAccounting(t *testing.T) {
	tr := New()
	for i := uint64(0); i < 10000; i++ {
		tr.Insert(i, i, nil)
	}
	var st index.OpStats
	tr.Get(5000, &st)
	if st.NodesVisited == 0 || st.LinesTouched == 0 {
		t.Errorf("stats not accounted: %+v", st)
	}
	var ust index.OpStats
	tr.Update(5000, 1, &ust)
	if ust.BytesCopied == 0 {
		t.Error("update delta copied no bytes")
	}
}

func TestMappingTableExhaustionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on mapping-table exhaustion")
		}
	}()
	tr := NewCapacity(8)
	for i := uint64(0); i < 100000; i++ {
		tr.Insert(i, i, nil)
	}
}

func TestConcurrentInsertsDisjoint(t *testing.T) {
	tr := New()
	const goroutines, perG = 8, 5000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(base uint64) {
			defer wg.Done()
			for i := uint64(0); i < perG; i++ {
				if !tr.Insert(base+i, base+i, nil) {
					t.Errorf("Insert(%d) failed", base+i)
					return
				}
			}
		}(uint64(g) * 10_000_000)
	}
	wg.Wait()
	if tr.Len() != goroutines*perG {
		t.Fatalf("Len = %d, want %d", tr.Len(), goroutines*perG)
	}
	for g := 0; g < goroutines; g++ {
		base := uint64(g) * 10_000_000
		for i := uint64(0); i < perG; i += 499 {
			if v, ok := tr.Get(base+i, nil); !ok || v != base+i {
				t.Fatalf("Get(%d) = %d,%v", base+i, v, ok)
			}
		}
	}
}

func TestConcurrentContendedInserts(t *testing.T) {
	tr := New()
	const n = 3000
	var wins [n]int32
	var mu sync.Mutex
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := uint64(0); k < n; k++ {
				if tr.Insert(k, k, nil) {
					mu.Lock()
					wins[k]++
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	for k := range wins {
		if wins[k] != 1 {
			t.Fatalf("key %d inserted %d times", k, wins[k])
		}
	}
	if tr.Len() != n {
		t.Errorf("Len = %d, want %d", tr.Len(), n)
	}
}

func TestConcurrentReadUpdateConsistency(t *testing.T) {
	tr := New()
	const n = 2000
	for i := uint64(0); i < n; i++ {
		tr.Insert(i, i*10, nil)
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(2)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for i := 0; i < 5000; i++ {
				k := uint64(r.Intn(n))
				if !tr.Update(k, k*10, nil) {
					t.Errorf("Update(%d) failed", k)
					return
				}
			}
		}(int64(g))
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed + 50))
			for i := 0; i < 5000; i++ {
				k := uint64(r.Intn(n))
				v, ok := tr.Get(k, nil)
				if !ok || v != k*10 {
					t.Errorf("Get(%d) = %d,%v", k, v, ok)
					return
				}
			}
		}(int64(g))
	}
	wg.Wait()
}

func TestConcurrentInsertsWithCASConflictsTracked(t *testing.T) {
	tr := New()
	var wg sync.WaitGroup
	// Zipf-like contention on a small hot range maximises CAS conflicts.
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 5000; i++ {
				k := uint64(r.Intn(200))
				if !tr.Insert(k, k, nil) {
					tr.Update(k, uint64(i), nil)
				}
			}
		}(g)
	}
	wg.Wait()
	if tr.Len() != 200 {
		t.Errorf("Len = %d, want 200", tr.Len())
	}
	// With 8 goroutines on 200 hot keys, some CAS failures are expected on
	// a 1-CPU box but not guaranteed; just ensure the counter is readable.
	_ = tr.CASFailures.Load()
}

func TestRandomisedAgainstMap(t *testing.T) {
	tr := New()
	oracle := map[uint64]uint64{}
	r := rand.New(rand.NewSource(1234))
	for i := 0; i < 60000; i++ {
		k := uint64(r.Intn(20000))
		switch r.Intn(3) {
		case 0:
			_, exists := oracle[k]
			if ok := tr.Insert(k, k+1, nil); ok == exists {
				t.Fatalf("Insert(%d) = %v, exists=%v", k, ok, exists)
			}
			if !exists {
				oracle[k] = k + 1
			}
		case 1:
			_, exists := oracle[k]
			if ok := tr.Update(k, k+2, nil); ok != exists {
				t.Fatalf("Update(%d) = %v, exists=%v", k, ok, exists)
			}
			if exists {
				oracle[k] = k + 2
			}
		case 2:
			v, ok := tr.Get(k, nil)
			ov, exists := oracle[k]
			if ok != exists || (ok && v != ov) {
				t.Fatalf("Get(%d) = %d,%v, oracle %d,%v", k, v, ok, ov, exists)
			}
		}
	}
	if tr.Len() != len(oracle) {
		t.Errorf("Len = %d, oracle %d", tr.Len(), len(oracle))
	}
}

func TestScanCountProperty(t *testing.T) {
	f := func(keys []uint16, a, b uint16) bool {
		lo, hi := uint64(a), uint64(b)
		if lo > hi {
			lo, hi = hi, lo
		}
		tr := New()
		set := map[uint64]bool{}
		for _, k16 := range keys {
			k := uint64(k16)
			if tr.Insert(k, k, nil) {
				set[k] = true
			}
		}
		want := 0
		for k := range set {
			if k >= lo && k <= hi {
				want++
			}
		}
		return tr.Scan(lo, hi, func(k, v uint64) bool { return true }, nil) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestPointOpAllocationsPinned pins the pooled-scratch guarantee: with the
// descend path and flatten buffers coming from the per-tree pool, a steady-
// state Get allocates nothing, and a steady-state Update allocates only the
// published delta record (plus the amortised consolidation at every
// consolidateAt-th delta) — never incidental traversal state. Regressing
// this re-introduces the per-op garbage the delegation hot path is pinned
// against.
func TestPointOpAllocationsPinned(t *testing.T) {
	tr := New()
	const keys = 4096
	for k := uint64(1); k <= keys; k++ {
		tr.Insert(k, k, nil)
	}
	var i uint64
	if n := testing.AllocsPerRun(2000, func() {
		i++
		tr.Get(i%keys+1, nil)
	}); n != 0 {
		t.Errorf("Get allocates %.3f per op, want 0", n)
	}
	if n := testing.AllocsPerRun(2000, func() {
		i++
		tr.Update(i%keys+1, i, nil)
	}); n >= 2 {
		t.Errorf("Update allocates %.3f per op, want delta+amortised consolidation only (< 2)", n)
	}
}
