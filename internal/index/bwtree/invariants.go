package bwtree

import "fmt"

// CheckInvariants verifies the tree's structural invariants from a quiesced
// state (no concurrent writers): every base node's keys are sorted and
// within its B-link bounds, delta chains are well-formed with consistent
// depths, the mapping table contains no cycles on the traversal paths, and
// the leaf-level B-link chain visits ascending key ranges whose union is
// exactly Len() keys. For tests and debugging.
func (t *Tree) CheckInvariants() error {
	// Walk the leaf level via the leftmost path, then the B-link chain.
	p := pid(rootPID)
	for {
		n := t.load(p)
		if n == nil {
			return fmt.Errorf("bwtree: nil mapping entry %d", p)
		}
		if err := checkChain(n); err != nil {
			return err
		}
		b := n.base()
		if n.isLeaf() {
			break
		}
		if len(b.children) != len(b.seps)+1 {
			return fmt.Errorf("bwtree: inner pid %d has %d children for %d seps", p, len(b.children), len(b.seps))
		}
		for i := 1; i < len(b.seps); i++ {
			if b.seps[i-1] >= b.seps[i] {
				return fmt.Errorf("bwtree: inner pid %d separators unsorted", p)
			}
		}
		p = b.children[0]
	}
	// Leaf chain.
	total := 0
	var prev uint64
	first := true
	visited := map[pid]bool{}
	for {
		if visited[p] {
			return fmt.Errorf("bwtree: leaf chain cycle at pid %d", p)
		}
		visited[p] = true
		head := t.load(p)
		if head == nil {
			return fmt.Errorf("bwtree: nil leaf pid %d", p)
		}
		if err := checkChain(head); err != nil {
			return err
		}
		keys, _, b := flatten(head, &opScratch{})
		for i, k := range keys {
			if i > 0 && keys[i-1] >= k {
				return fmt.Errorf("bwtree: leaf pid %d keys unsorted", p)
			}
			if !first && k <= prev {
				return fmt.Errorf("bwtree: leaf chain key %d out of order", k)
			}
			if b.hasHigh && k >= b.highKey {
				return fmt.Errorf("bwtree: leaf pid %d key %d ≥ high bound %d", p, k, b.highKey)
			}
			prev, first = k, false
		}
		total += len(keys)
		if b.right == nilPID {
			if b.hasHigh {
				return fmt.Errorf("bwtree: rightmost leaf pid %d has a high bound", p)
			}
			break
		}
		if !b.hasHigh {
			return fmt.Errorf("bwtree: leaf pid %d has a right sibling but no high bound", p)
		}
		p = b.right
	}
	if int64(total) != t.count.Load() {
		return fmt.Errorf("bwtree: leaf chain holds %d keys, count says %d", total, t.count.Load())
	}
	return nil
}

// checkChain validates a delta chain: monotonically decreasing depths down
// to a base of depth 0, delta kinds only above a single base.
func checkChain(head *node) error {
	depth := head.depth
	seen := 0
	for n := head; n != nil; n = n.next {
		if n.depth != depth-seen {
			return fmt.Errorf("bwtree: chain depth %d at position %d, want %d", n.depth, seen, depth-seen)
		}
		seen++
		if n.next == nil {
			if n.kind != leafBase && n.kind != innerBase {
				return fmt.Errorf("bwtree: chain ends in non-base kind %d", n.kind)
			}
			if n.depth != 0 {
				return fmt.Errorf("bwtree: base has depth %d", n.depth)
			}
		} else {
			switch n.kind {
			case leafInsertDelta, leafUpdateDelta, leafDeleteDelta:
			default:
				return fmt.Errorf("bwtree: non-delta kind %d mid-chain", n.kind)
			}
		}
		if seen > 1<<16 {
			return fmt.Errorf("bwtree: chain of absurd length (cycle?)")
		}
	}
	return nil
}
