package bwtree

import (
	"strings"
	"testing"
)

func TestCheckInvariantsAcceptsHealthyTree(t *testing.T) {
	tr := New()
	for i := uint64(0); i < 20000; i++ {
		tr.Insert(i*7%100003, i, nil)
	}
	for i := uint64(0); i < 20000; i += 3 {
		tr.Delete(i*7%100003, nil)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestCheckInvariantsDetectsCorruption plants specific defects and verifies
// the checker reports each one — a checker that never fails checks nothing.
func TestCheckInvariantsDetectsCorruption(t *testing.T) {
	build := func() *Tree {
		tr := New()
		for i := uint64(0); i < 5000; i++ {
			tr.Insert(i, i, nil)
		}
		return tr
	}

	t.Run("unsorted base keys", func(t *testing.T) {
		tr := build()
		// Find a leaf base and swap two keys in place.
		_, head, _ := tr.descend(100, nil, nil)
		b := head.base()
		if len(b.keys) < 2 {
			t.Skip("leaf too small")
		}
		b.keys[0], b.keys[1] = b.keys[1], b.keys[0]
		err := tr.CheckInvariants()
		if err == nil || !strings.Contains(err.Error(), "unsorted") {
			t.Errorf("swapped keys not detected: %v", err)
		}
	})

	t.Run("count drift", func(t *testing.T) {
		tr := build()
		tr.count.Add(5)
		err := tr.CheckInvariants()
		if err == nil || !strings.Contains(err.Error(), "count") {
			t.Errorf("count drift not detected: %v", err)
		}
	})

	t.Run("broken chain depth", func(t *testing.T) {
		tr := build()
		p, head, _ := tr.descend(42, nil, nil)
		bad := &node{kind: leafUpdateDelta, key: 42, val: 0, next: head, depth: head.depth + 7}
		tr.mapping[p].Store(bad)
		err := tr.CheckInvariants()
		if err == nil || !strings.Contains(err.Error(), "depth") {
			t.Errorf("bad chain depth not detected: %v", err)
		}
	})

	t.Run("key beyond high bound", func(t *testing.T) {
		tr := build()
		// The leftmost leaf has a high bound after splits; plant a key
		// beyond it via a raw base rewrite.
		p, head, _ := tr.descend(0, nil, nil)
		b := head.base()
		if !b.hasHigh {
			t.Skip("tree too small to have split")
		}
		nb := &node{kind: leafBase, keys: append([]uint64(nil), b.keys...), vals: append([]uint64(nil), b.vals...),
			hasHigh: b.hasHigh, highKey: b.highKey, right: b.right}
		nb.keys[len(nb.keys)-1] = b.highKey + 10
		tr.mapping[p].Store(nb)
		err := tr.CheckInvariants()
		if err == nil {
			t.Error("out-of-bound key not detected")
		}
	})
}

func TestRefreshPathFindsParents(t *testing.T) {
	tr := New()
	for i := uint64(0); i < 100000; i++ {
		tr.Insert(i, i, nil)
	}
	path := tr.refreshPath(50000, &opScratch{})
	if len(path) == 0 {
		t.Fatal("no inner path for a deep tree")
	}
	if path[0] != rootPID {
		t.Errorf("path starts at %d, want root", path[0])
	}
}

func TestDeltaChainLengthBounded(t *testing.T) {
	tr := New()
	tr.Insert(1, 1, nil)
	for i := 0; i < 100; i++ {
		tr.Update(1, uint64(i), nil)
	}
	if l := tr.DeltaChainLength(1); l > consolidateAt {
		t.Errorf("chain length %d exceeds threshold", l)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
