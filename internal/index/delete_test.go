package index_test

import (
	"math/rand"
	"sync"
	"testing"

	"robustconf/internal/index"
	"robustconf/internal/index/btree"
)

// TestDeleteUniformBehaviour exercises Delete across all four structures
// through the common interface: delete removes, double delete fails,
// deleted keys can be re-inserted, Len tracks.
func TestDeleteUniformBehaviour(t *testing.T) {
	for name, idx := range table1() {
		t.Run(name, func(t *testing.T) {
			const n = 2000
			for i := uint64(0); i < n; i++ {
				idx.Insert(i, i, nil)
			}
			if idx.Delete(99999, nil) {
				t.Error("delete of absent key succeeded")
			}
			// Delete every third key.
			removed := 0
			for i := uint64(0); i < n; i += 3 {
				if !idx.Delete(i, nil) {
					t.Fatalf("Delete(%d) failed", i)
				}
				removed++
			}
			if idx.Len() != n-removed {
				t.Errorf("Len = %d, want %d", idx.Len(), n-removed)
			}
			for i := uint64(0); i < n; i++ {
				_, ok := idx.Get(i, nil)
				want := i%3 != 0
				if ok != want {
					t.Fatalf("Get(%d) = %v, want %v after deletes", i, ok, want)
				}
			}
			// Deleted keys are re-insertable with new values.
			if !idx.Insert(0, 777, nil) {
				t.Fatal("re-insert of deleted key failed")
			}
			if v, ok := idx.Get(0, nil); !ok || v != 777 {
				t.Errorf("re-inserted key reads %d,%v", v, ok)
			}
			if idx.Delete(0, nil) != true {
				t.Error("delete of re-inserted key failed")
			}
			// Update of a deleted key must fail.
			if idx.Update(3, 1, nil) {
				t.Error("update of deleted key succeeded")
			}
		})
	}
}

// TestDeleteInterleavedRandomised cross-checks delete against a map oracle
// for every structure.
func TestDeleteInterleavedRandomised(t *testing.T) {
	for name, idx := range table1() {
		t.Run(name, func(t *testing.T) {
			oracle := map[uint64]uint64{}
			r := rand.New(rand.NewSource(5))
			for i := 0; i < 30000; i++ {
				k := uint64(r.Intn(3000))
				switch r.Intn(4) {
				case 0:
					_, exists := oracle[k]
					if ok := idx.Insert(k, k+1, nil); ok == exists {
						t.Fatalf("Insert(%d) = %v, exists=%v", k, ok, exists)
					}
					if !exists {
						oracle[k] = k + 1
					}
				case 1:
					_, exists := oracle[k]
					if ok := idx.Update(k, k+2, nil); ok != exists {
						t.Fatalf("Update(%d) = %v, exists=%v", k, ok, exists)
					}
					if exists {
						oracle[k] = k + 2
					}
				case 2:
					_, exists := oracle[k]
					if ok := idx.Delete(k, nil); ok != exists {
						t.Fatalf("Delete(%d) = %v, exists=%v", k, ok, exists)
					}
					delete(oracle, k)
				case 3:
					v, ok := idx.Get(k, nil)
					ov, exists := oracle[k]
					if ok != exists || (ok && v != ov) {
						t.Fatalf("Get(%d) = %d,%v, oracle %d,%v", k, v, ok, ov, exists)
					}
				}
			}
			if idx.Len() != len(oracle) {
				t.Errorf("Len = %d, oracle %d", idx.Len(), len(oracle))
			}
		})
	}
}

// TestDeleteExcludedFromScans verifies ordered structures stop returning
// deleted keys from range scans.
func TestDeleteExcludedFromScans(t *testing.T) {
	for _, name := range []string{"B-Tree", "FP-Tree", "BW-Tree"} {
		t.Run(name, func(t *testing.T) {
			idx := table1()[name]
			r := idx.(index.Ranger)
			for i := uint64(0); i < 100; i++ {
				idx.Insert(i, i, nil)
			}
			for i := uint64(20); i < 40; i++ {
				idx.Delete(i, nil)
			}
			var got []uint64
			r.Scan(0, 99, func(k, v uint64) bool {
				got = append(got, k)
				return true
			}, nil)
			if len(got) != 80 {
				t.Fatalf("scan returned %d keys, want 80", len(got))
			}
			for _, k := range got {
				if k >= 20 && k < 40 {
					t.Fatalf("scan returned deleted key %d", k)
				}
			}
		})
	}
}

// TestConcurrentDeleteInsertChurn stresses delete/insert churn on the same
// key range from several goroutines for each structure.
func TestConcurrentDeleteInsertChurn(t *testing.T) {
	for name, idx := range table1() {
		t.Run(name, func(t *testing.T) {
			const keys = 500
			for i := uint64(0); i < keys; i++ {
				idx.Insert(i, i, nil)
			}
			var wg sync.WaitGroup
			for g := 0; g < 6; g++ {
				wg.Add(1)
				go func(seed int64) {
					defer wg.Done()
					r := rand.New(rand.NewSource(seed))
					for i := 0; i < 3000; i++ {
						k := uint64(r.Intn(keys))
						if r.Intn(2) == 0 {
							idx.Delete(k, nil)
						} else {
							idx.Insert(k, k, nil)
						}
					}
				}(int64(g))
			}
			wg.Wait()
			// Invariants after churn: Len matches an exhaustive count, and
			// every readable key maps to its own value.
			count := 0
			for i := uint64(0); i < keys; i++ {
				if v, ok := idx.Get(i, nil); ok {
					count++
					if v != i {
						t.Fatalf("key %d holds %d after churn", i, v)
					}
				}
			}
			if idx.Len() != count {
				t.Errorf("Len = %d, exhaustive count = %d", idx.Len(), count)
			}
		})
	}
}

// TestPartitionedDelete exercises Delete through the partitioned wrapper.
func TestPartitionedDelete(t *testing.T) {
	parts := []index.Index{btree.New(), btree.New()}
	p, err := index.NewHashPartitioned(parts)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 100; i++ {
		p.Insert(i, i, nil)
	}
	for i := uint64(0); i < 100; i += 2 {
		if !p.Delete(i, nil) {
			t.Fatalf("Delete(%d) failed", i)
		}
	}
	if p.Len() != 50 {
		t.Errorf("Len = %d", p.Len())
	}
	if p.Delete(0, nil) {
		t.Error("double delete succeeded")
	}
}
