// Package fptree implements the FP-Tree of Oukid et al. (SIGMOD'16) as a
// main-memory index: volatile sorted inner nodes above unsorted leaves that
// carry a one-byte fingerprint per record and an occupancy bitmap. Lookups
// descend the inner nodes, then probe the leaf's fingerprint array and only
// compare keys on fingerprint hits — the design that makes the leaf probe a
// single cache-line scan in the common case.
//
// Synchronisation follows the paper's Table 1: operations run as hardware
// memory transactions with a global-lock fallback, provided here by the
// software HTM emulation in internal/htm. Every node carries a version cell;
// transactions read the cells along their path and write the cells of the
// nodes they modify. Leaf records are published through atomic stores so
// in-flight optimistic readers never observe torn words.
//
// In the original system the leaves live in storage-class memory; here they
// are DRAM-resident (see DESIGN.md §2) with identical structure.
package fptree

import (
	"sort"
	"sync/atomic"

	"robustconf/internal/htm"
	"robustconf/internal/index"
	"robustconf/internal/syncprims"
)

const (
	leafCap     = 32 // records per leaf
	innerFanout = 32 // children per inner node
)

// fingerprint is the one-byte hash probed before any key comparison.
func fingerprint(k uint64) uint32 {
	k ^= k >> 33
	k *= 0xff51afd7ed558ccd
	k ^= k >> 33
	return uint32(k & 0xff)
}

type leaf struct {
	cell   syncprims.VersionLock
	bitmap atomic.Uint64 // publishes slot occupancy (release store)
	fps    [leafCap]atomic.Uint32
	keys   [leafCap]atomic.Uint64
	vals   [leafCap]atomic.Uint64
	next   atomic.Pointer[leaf]
}

const leafBytes = 8 + 8 + leafCap*(4+8+8) + 8

// innerContent is the immutable payload of an inner node; structural changes
// install a fresh content (copy-on-write) so concurrent readers always see a
// consistent key/children pairing.
type innerContent struct {
	keys     []uint64
	children []any // *inner or *leaf
}

type inner struct {
	cell    syncprims.VersionLock
	content atomic.Pointer[innerContent]
}

func innerBytes(c *innerContent) int { return 16 + len(c.keys)*8 + len(c.children)*8 }

// rootRef wraps the root so it can be swapped atomically.
type rootRef struct {
	node any // *inner or *leaf
}

// Tree is a concurrent FP-Tree. Construct with New.
type Tree struct {
	region   *htm.Region
	rootCell syncprims.VersionLock
	root     atomic.Pointer[rootRef]
	count    atomic.Int64
}

// New returns an empty FP-Tree with a fresh HTM region.
func New() *Tree {
	t := &Tree{region: htm.NewRegion()}
	t.root.Store(&rootRef{node: newLeaf()})
	return t
}

func newLeaf() *leaf { return &leaf{} }

// Name implements index.Index.
func (t *Tree) Name() string { return "FP-Tree" }

// Scheme implements index.Index.
func (t *Tree) Scheme() index.Scheme { return index.SchemeHTM }

// ConcurrentReadSafe reports true: reads run inside the software-HTM
// region's version-lock validation, inner-node content is copy-on-write
// behind an atomic pointer, and leaf bitmap/fingerprint/key/value cells are
// atomic — so a concurrent read is race-clean, though not allocation-free
// (each read opens a transaction descriptor; see index.ConcurrentReadSafe).
func (t *Tree) ConcurrentReadSafe() bool { return true }

// Len implements index.Index.
func (t *Tree) Len() int { return int(t.count.Load()) }

// HTMStats exposes the region's transactional outcome counters (commits,
// aborts, fallbacks) for the experiment harness.
func (t *Tree) HTMStats() *htm.Stats { return &t.region.Stats }

// descend walks from the root to the leaf covering k inside tx, registering
// every cell on the path in the transaction's read set. It returns the leaf
// and its parent chain (nearest last).
func (t *Tree) descend(tx *htm.Tx, k uint64, st *index.OpStats) (*leaf, []*inner, error) {
	if err := tx.Read(&t.rootCell); err != nil {
		return nil, nil, err
	}
	ref := t.root.Load()
	node := ref.node
	var path []*inner
	depth := uint64(0)
	for {
		switch n := node.(type) {
		case *inner:
			if err := tx.Read(&n.cell); err != nil {
				return nil, nil, err
			}
			c := n.content.Load()
			if c == nil || len(c.children) == 0 {
				return nil, nil, tx.Abort() // torn mid-install; retry
			}
			st.Visit(1, index.CacheLines(innerBytes(c)))
			depth++
			i := searchSeparators(c.keys, k)
			path = append(path, n)
			node = c.children[i]
		case *leaf:
			if err := tx.Read(&n.cell); err != nil {
				return nil, nil, err
			}
			st.Visit(1, index.CacheLines(leafBytes))
			if st != nil {
				st.Depth += depth
			}
			return n, path, nil
		default:
			return nil, nil, tx.Abort()
		}
	}
}

// searchSeparators returns the child index for k: first separator > k.
func searchSeparators(keys []uint64, k uint64) int {
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if keys[mid] <= k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// probe scans the leaf's fingerprints for k and returns the slot, or -1.
func probe(lf *leaf, k uint64, st *index.OpStats) int {
	fp := fingerprint(k)
	bm := lf.bitmap.Load()
	for i := 0; i < leafCap; i++ {
		if bm&(1<<uint(i)) == 0 {
			continue
		}
		if st != nil {
			st.FPProbes++
		}
		if lf.fps[i].Load() != fp {
			continue
		}
		if lf.keys[i].Load() == k {
			return i
		}
	}
	return -1
}

// Get implements index.Index.
func (t *Tree) Get(k uint64, st *index.OpStats) (uint64, bool) {
	if st != nil {
		st.Ops++
	}
	var val uint64
	var found bool
	err := t.region.Atomic(func(tx *htm.Tx) error {
		val, found = 0, false
		lf, _, err := t.descend(tx, k, st)
		if err != nil {
			return err
		}
		if i := probe(lf, k, st); i >= 0 {
			val = lf.vals[i].Load()
			found = true
		}
		return nil
	})
	if err != nil {
		// Atomic only surfaces non-abort errors, which we never generate.
		panic("fptree: unexpected transaction error: " + err.Error())
	}
	return val, found
}

// Update implements index.Index: an in-place value store under the leaf cell.
func (t *Tree) Update(k, v uint64, st *index.OpStats) bool {
	if st != nil {
		st.Ops++
	}
	var updated bool
	err := t.region.Atomic(func(tx *htm.Tx) error {
		updated = false
		lf, _, err := t.descend(tx, k, st)
		if err != nil {
			return err
		}
		i := probe(lf, k, st)
		if i < 0 {
			return nil
		}
		updated = true
		return tx.Write(&lf.cell, func() { lf.vals[i].Store(v) })
	})
	if err != nil {
		panic("fptree: unexpected transaction error: " + err.Error())
	}
	return updated
}

// Delete implements index.Index: the unsorted-leaf design makes removal a
// single bitmap-bit clear under the leaf's cell — the slot is simply
// unpublished and becomes reusable by later inserts.
func (t *Tree) Delete(k uint64, st *index.OpStats) bool {
	if st != nil {
		st.Ops++
	}
	var deleted bool
	err := t.region.Atomic(func(tx *htm.Tx) error {
		deleted = false
		lf, _, err := t.descend(tx, k, st)
		if err != nil {
			return err
		}
		i := probe(lf, k, st)
		if i < 0 {
			return nil
		}
		deleted = true
		bm := lf.bitmap.Load()
		return tx.Write(&lf.cell, func() {
			lf.bitmap.Store(bm &^ (1 << uint(i)))
		})
	})
	if err != nil {
		panic("fptree: unexpected transaction error: " + err.Error())
	}
	if deleted {
		t.count.Add(-1)
	}
	return deleted
}

// Insert implements index.Index.
func (t *Tree) Insert(k, v uint64, st *index.OpStats) bool {
	if st != nil {
		st.Ops++
	}
	var inserted bool
	err := t.region.Atomic(func(tx *htm.Tx) error {
		inserted = false
		lf, path, err := t.descend(tx, k, st)
		if err != nil {
			return err
		}
		if probe(lf, k, st) >= 0 {
			return nil // duplicate
		}
		bm := lf.bitmap.Load()
		if slot := freeSlot(bm); slot >= 0 {
			inserted = true
			return tx.Write(&lf.cell, func() {
				lf.fps[slot].Store(fingerprint(k))
				lf.keys[slot].Store(k)
				lf.vals[slot].Store(v)
				lf.bitmap.Store(bm | 1<<uint(slot)) // publish last
			})
		}
		// Leaf full: split, then insert into the proper half. The split
		// plan is computed here (reads only); all mutations are deferred
		// writes under the cells of the modified nodes.
		inserted = true
		return t.planSplitInsert(tx, lf, path, k, v, st)
	})
	if err != nil {
		panic("fptree: unexpected transaction error: " + err.Error())
	}
	if inserted {
		t.count.Add(1)
	}
	return inserted
}

func freeSlot(bm uint64) int {
	for i := 0; i < leafCap; i++ {
		if bm&(1<<uint(i)) == 0 {
			return i
		}
	}
	return -1
}

// planSplitInsert splits the full leaf lf around its median, inserts (k, v)
// into the correct half, and updates the parent chain, growing the tree if
// the root splits. All modifications are registered as transactional writes.
func (t *Tree) planSplitInsert(tx *htm.Tx, lf *leaf, path []*inner, k, v uint64, st *index.OpStats) error {
	// Snapshot the full leaf (bitmap is all-ones here).
	type rec struct{ k, v uint64 }
	recs := make([]rec, 0, leafCap+1)
	for i := 0; i < leafCap; i++ {
		recs = append(recs, rec{lf.keys[i].Load(), lf.vals[i].Load()})
	}
	recs = append(recs, rec{k, v})
	sort.Slice(recs, func(i, j int) bool { return recs[i].k < recs[j].k })
	mid := len(recs) / 2
	sep := recs[mid].k // first key of the right leaf

	right := newLeaf()
	// The right leaf is private until the commit publishes the parent
	// link, so it can be populated eagerly.
	var rightBM uint64
	for i, r := range recs[mid:] {
		right.fps[i].Store(fingerprint(r.k))
		right.keys[i].Store(r.k)
		right.vals[i].Store(r.v)
		rightBM |= 1 << uint(i)
	}
	if st != nil {
		st.Splits++
		st.BytesCopied += uint64(len(recs) * 16)
	}

	leftRecs := recs[:mid]
	applyLeaf := func() {
		// Rewrite the left leaf compacted; publish via bitmap store.
		lf.bitmap.Store(0)
		var bm uint64
		for i, r := range leftRecs {
			lf.fps[i].Store(fingerprint(r.k))
			lf.keys[i].Store(r.k)
			lf.vals[i].Store(r.v)
			bm |= 1 << uint(i)
		}
		right.next.Store(lf.next.Load())
		lf.next.Store(right)
		right.bitmap.Store(rightBM)
		lf.bitmap.Store(bm)
	}
	if err := tx.Write(&lf.cell, applyLeaf); err != nil {
		return err
	}
	return t.propagateSplit(tx, path, lf, right, sep, st)
}

// propagateSplit inserts separator sep with new right child into the parent,
// splitting inner nodes upward as needed (copy-on-write contents).
func (t *Tree) propagateSplit(tx *htm.Tx, path []*inner, left, right any, sep uint64, st *index.OpStats) error {
	if len(path) == 0 {
		// The split node was the root: grow the tree.
		newRoot := &inner{}
		newRoot.content.Store(&innerContent{
			keys:     []uint64{sep},
			children: []any{left, right},
		})
		return tx.Write(&t.rootCell, func() { t.root.Store(&rootRef{node: newRoot}) })
	}
	parent := path[len(path)-1]
	c := parent.content.Load()
	i := searchSeparators(c.keys, sep)
	nk := make([]uint64, 0, len(c.keys)+1)
	nc := make([]any, 0, len(c.children)+1)
	nk = append(nk, c.keys[:i]...)
	nk = append(nk, sep)
	nk = append(nk, c.keys[i:]...)
	nc = append(nc, c.children[:i+1]...)
	nc = append(nc, right)
	nc = append(nc, c.children[i+1:]...)

	if len(nc) <= innerFanout {
		fresh := &innerContent{keys: nk, children: nc}
		return tx.Write(&parent.cell, func() { parent.content.Store(fresh) })
	}
	// Inner split: left keeps [0,mid), key mid moves up, right gets the rest.
	mid := len(nk) / 2
	up := nk[mid]
	leftContent := &innerContent{keys: append([]uint64(nil), nk[:mid]...), children: append([]any(nil), nc[:mid+1]...)}
	rightInner := &inner{}
	rightInner.content.Store(&innerContent{keys: append([]uint64(nil), nk[mid+1:]...), children: append([]any(nil), nc[mid+1:]...)})
	if st != nil {
		st.Splits++
		st.BytesCopied += uint64(innerBytes(leftContent))
	}
	if err := tx.Write(&parent.cell, func() { parent.content.Store(leftContent) }); err != nil {
		return err
	}
	return t.propagateSplit(tx, path[:len(path)-1], parent, rightInner, up, st)
}

// Scan implements index.Ranger. Leaves are unsorted, so each leaf's live
// records are collected and sorted before yielding. Large scans may exceed
// HTM capacity and execute on the fallback path — the behaviour a real
// HTM-synchronised FP-Tree exhibits.
func (t *Tree) Scan(lo, hi uint64, fn func(k, v uint64) bool, st *index.OpStats) int {
	if st != nil {
		st.Ops++
	}
	type rec struct{ k, v uint64 }
	var out []rec
	err := t.region.Atomic(func(tx *htm.Tx) error {
		out = out[:0]
		lf, _, err := t.descend(tx, lo, st)
		if err != nil {
			return err
		}
		for lf != nil {
			var batch []rec
			bm := lf.bitmap.Load()
			minKey := uint64(1<<64 - 1)
			for i := 0; i < leafCap; i++ {
				if bm&(1<<uint(i)) == 0 {
					continue
				}
				k := lf.keys[i].Load()
				if k < minKey {
					minKey = k
				}
				if k >= lo && k <= hi {
					batch = append(batch, rec{k, lf.vals[i].Load()})
				}
			}
			sort.Slice(batch, func(i, j int) bool { return batch[i].k < batch[j].k })
			out = append(out, batch...)
			if bm != 0 && minKey > hi {
				break
			}
			next := lf.next.Load()
			if next == nil {
				break
			}
			if err := tx.Read(&next.cell); err != nil {
				return err
			}
			st.Visit(1, index.CacheLines(leafBytes))
			lf = next
		}
		return nil
	})
	if err != nil {
		panic("fptree: unexpected transaction error: " + err.Error())
	}
	n := 0
	for _, r := range out {
		n++
		if !fn(r.k, r.v) {
			break
		}
	}
	return n
}
