// Package fptree implements the FP-Tree of Oukid et al. (SIGMOD'16) as a
// main-memory index: volatile sorted inner nodes above unsorted leaves that
// carry a one-byte fingerprint per record and an occupancy bitmap. Lookups
// descend the inner nodes, then probe the leaf's fingerprint array and only
// compare keys on fingerprint hits — the design that makes the leaf probe a
// single cache-line scan in the common case.
//
// Synchronisation follows the paper's Table 1: operations run as hardware
// memory transactions with a global-lock fallback, provided here by the
// software HTM emulation in internal/htm. Every node carries a version cell;
// transactions read the cells along their path and write the cells of the
// nodes they modify. Leaf records are published through atomic stores so
// in-flight optimistic readers never observe torn words.
//
// Steady-state operations are allocation-free: each op borrows a pooled
// scratch descriptor carrying prebuilt transaction bodies, prebuilt
// commit-time apply closures, a fixed descend-path array, and retained
// scan/split buffers, so nothing escapes to the heap on the hot path
// (structural splits still allocate the nodes they publish).
//
// In the original system the leaves live in storage-class memory; here they
// are DRAM-resident (see DESIGN.md §2) with identical structure.
package fptree

import (
	"sync"
	"sync/atomic"
	"unsafe"

	"robustconf/internal/htm"
	"robustconf/internal/index"
	"robustconf/internal/prefetch"
	"robustconf/internal/syncprims"
)

const (
	leafCap     = 32 // records per leaf
	innerFanout = 32 // children per inner node
	// maxDepth sizes the scratch descend-path array; deeper trees fall
	// back to a heap-grown path (32^15 keys before that happens).
	maxDepth = 16
	// maxRetainedScan caps the scan buffer capacity a pooled scratch
	// may retain, so one huge range scan doesn't pin memory forever.
	maxRetainedScan = 4096
)

// fingerprint is the one-byte hash probed before any key comparison.
func fingerprint(k uint64) uint32 {
	k ^= k >> 33
	k *= 0xff51afd7ed558ccd
	k ^= k >> 33
	return uint32(k & 0xff)
}

type leaf struct {
	cell   syncprims.VersionLock
	bitmap atomic.Uint64 // publishes slot occupancy (release store)
	fps    [leafCap]atomic.Uint32
	keys   [leafCap]atomic.Uint64
	vals   [leafCap]atomic.Uint64
	next   atomic.Pointer[leaf]
}

const leafBytes = 8 + 8 + leafCap*(4+8+8) + 8

// innerContent is the immutable payload of an inner node; structural changes
// install a fresh content (copy-on-write) so concurrent readers always see a
// consistent key/children pairing.
type innerContent struct {
	keys     []uint64
	children []any // *inner or *leaf
}

type inner struct {
	cell    syncprims.VersionLock
	content atomic.Pointer[innerContent]
}

func innerBytes(c *innerContent) int { return 16 + len(c.keys)*8 + len(c.children)*8 }

// rootRef wraps the root so it can be swapped atomically.
type rootRef struct {
	node any // *inner or *leaf
}

// rec is one key/value pair in scan and split scratch buffers.
type rec struct{ k, v uint64 }

// Tree is a concurrent FP-Tree. Construct with New.
type Tree struct {
	region   *htm.Region
	rootCell syncprims.VersionLock
	root     atomic.Pointer[rootRef]
	count    atomic.Int64
	scratch  sync.Pool // *opScratch
}

// New returns an empty FP-Tree with a fresh HTM region.
func New() *Tree {
	t := &Tree{region: htm.NewRegion()}
	t.root.Store(&rootRef{node: newLeaf()})
	t.scratch.New = func() any { return newScratch(t) }
	return t
}

func newLeaf() *leaf { return &leaf{} }

// opScratch is the recycled per-operation state. The transaction bodies
// and apply closures are bound once at construction, so an operation
// costs zero heap allocations at steady state; parameters and results
// travel through the struct fields instead of closure captures.
type opScratch struct {
	t *Tree

	// parameters
	k, v   uint64
	lo, hi uint64
	st     *index.OpStats

	// results
	val      uint64
	found    bool
	updated  bool
	deleted  bool
	inserted bool

	// per-attempt state consumed by the prebuilt apply closures
	lf   *leaf
	slot int
	bm   uint64

	pathBuf   [maxDepth]*inner
	splitRecs [leafCap + 1]rec
	scanOut   []rec

	// prebuilt closures (one allocation each, at scratch construction)
	getBody     func(*htm.Tx) error
	updateBody  func(*htm.Tx) error
	deleteBody  func(*htm.Tx) error
	insertBody  func(*htm.Tx) error
	scanBody    func(*htm.Tx) error
	applyUpdate func()
	applyDelete func()
	applyInsert func()
}

func newScratch(t *Tree) *opScratch {
	sc := &opScratch{t: t}
	sc.getBody = sc.doGet
	sc.updateBody = sc.doUpdate
	sc.deleteBody = sc.doDelete
	sc.insertBody = sc.doInsert
	sc.scanBody = sc.doScan
	sc.applyUpdate = func() { sc.lf.vals[sc.slot].Store(sc.v) }
	sc.applyDelete = func() { sc.lf.bitmap.Store(sc.bm &^ (1 << uint(sc.slot))) }
	sc.applyInsert = func() {
		lf, slot := sc.lf, sc.slot
		lf.fps[slot].Store(fingerprint(sc.k))
		lf.keys[slot].Store(sc.k)
		lf.vals[slot].Store(sc.v)
		lf.bitmap.Store(sc.bm | 1<<uint(slot)) // publish last
	}
	return sc
}

func (t *Tree) getScratch() *opScratch { return t.scratch.Get().(*opScratch) }

func (t *Tree) putScratch(sc *opScratch) {
	sc.st = nil
	sc.lf = nil
	if cap(sc.scanOut) > maxRetainedScan {
		sc.scanOut = nil
	}
	t.scratch.Put(sc)
}

// Name implements index.Index.
func (t *Tree) Name() string { return "FP-Tree" }

// Scheme implements index.Index.
func (t *Tree) Scheme() index.Scheme { return index.SchemeHTM }

// ConcurrentReadSafe reports true: reads run inside the software-HTM
// region's version-lock validation, inner-node content is copy-on-write
// behind an atomic pointer, and leaf bitmap/fingerprint/key/value cells are
// atomic — so a concurrent read is race-clean (and allocation-free at
// steady state: the transaction descriptor and op scratch are pooled).
func (t *Tree) ConcurrentReadSafe() bool { return true }

// Len implements index.Index.
func (t *Tree) Len() int { return int(t.count.Load()) }

// HTMStats exposes the region's transactional outcome counters (commits,
// aborts, fallbacks) for the experiment harness.
func (t *Tree) HTMStats() *htm.Stats { return &t.region.Stats }

// descend walks from the root to the leaf covering k inside tx, registering
// every cell on the path in the transaction's read set. It returns the leaf
// and its parent chain (nearest last), appended into path (normally the
// scratch's fixed-size array, so no allocation below maxDepth).
func (t *Tree) descend(tx *htm.Tx, k uint64, st *index.OpStats, path []*inner) (*leaf, []*inner, error) {
	if err := tx.Read(&t.rootCell); err != nil {
		return nil, nil, err
	}
	ref := t.root.Load()
	node := ref.node
	depth := uint64(0)
	for {
		switch n := node.(type) {
		case *inner:
			if err := tx.Read(&n.cell); err != nil {
				return nil, nil, err
			}
			c := n.content.Load()
			if c == nil || len(c.children) == 0 {
				return nil, nil, tx.Abort() // torn mid-install; retry
			}
			st.Visit(1, index.CacheLines(innerBytes(c)))
			depth++
			i := searchSeparators(c.keys, k)
			path = append(path, n)
			node = c.children[i]
		case *leaf:
			if err := tx.Read(&n.cell); err != nil {
				return nil, nil, err
			}
			st.Visit(1, index.CacheLines(leafBytes))
			if st != nil {
				st.Depth += depth
			}
			return n, path, nil
		default:
			return nil, nil, tx.Abort()
		}
	}
}

// searchSeparators returns the child index for k: first separator > k.
func searchSeparators(keys []uint64, k uint64) int {
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if keys[mid] <= k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// probe scans the leaf's fingerprints for k and returns the slot, or -1.
func probe(lf *leaf, k uint64, st *index.OpStats) int {
	fp := fingerprint(k)
	bm := lf.bitmap.Load()
	for i := 0; i < leafCap; i++ {
		if bm&(1<<uint(i)) == 0 {
			continue
		}
		if st != nil {
			st.FPProbes++
		}
		if lf.fps[i].Load() != fp {
			continue
		}
		if lf.keys[i].Load() == k {
			return i
		}
	}
	return -1
}

func (sc *opScratch) doGet(tx *htm.Tx) error {
	sc.val, sc.found = 0, false
	lf, _, err := sc.t.descend(tx, sc.k, sc.st, sc.pathBuf[:0])
	if err != nil {
		return err
	}
	if i := probe(lf, sc.k, sc.st); i >= 0 {
		sc.val = lf.vals[i].Load()
		sc.found = true
	}
	return nil
}

// Get implements index.Index.
func (t *Tree) Get(k uint64, st *index.OpStats) (uint64, bool) {
	if st != nil {
		st.Ops++
	}
	sc := t.getScratch()
	sc.k, sc.st = k, st
	if err := t.region.Atomic(sc.getBody); err != nil {
		// Atomic only surfaces non-abort errors, which we never generate.
		panic("fptree: unexpected transaction error: " + err.Error())
	}
	val, found := sc.val, sc.found
	t.putScratch(sc)
	return val, found
}

func (sc *opScratch) doUpdate(tx *htm.Tx) error {
	sc.updated = false
	lf, _, err := sc.t.descend(tx, sc.k, sc.st, sc.pathBuf[:0])
	if err != nil {
		return err
	}
	i := probe(lf, sc.k, sc.st)
	if i < 0 {
		return nil
	}
	sc.lf, sc.slot = lf, i
	sc.updated = true
	return tx.Write(&lf.cell, sc.applyUpdate)
}

// Update implements index.Index: an in-place value store under the leaf cell.
func (t *Tree) Update(k, v uint64, st *index.OpStats) bool {
	if st != nil {
		st.Ops++
	}
	sc := t.getScratch()
	sc.k, sc.v, sc.st = k, v, st
	if err := t.region.Atomic(sc.updateBody); err != nil {
		panic("fptree: unexpected transaction error: " + err.Error())
	}
	updated := sc.updated
	t.putScratch(sc)
	return updated
}

func (sc *opScratch) doDelete(tx *htm.Tx) error {
	sc.deleted = false
	lf, _, err := sc.t.descend(tx, sc.k, sc.st, sc.pathBuf[:0])
	if err != nil {
		return err
	}
	i := probe(lf, sc.k, sc.st)
	if i < 0 {
		return nil
	}
	sc.lf, sc.slot, sc.bm = lf, i, lf.bitmap.Load()
	sc.deleted = true
	return tx.Write(&lf.cell, sc.applyDelete)
}

// Delete implements index.Index: the unsorted-leaf design makes removal a
// single bitmap-bit clear under the leaf's cell — the slot is simply
// unpublished and becomes reusable by later inserts.
func (t *Tree) Delete(k uint64, st *index.OpStats) bool {
	if st != nil {
		st.Ops++
	}
	sc := t.getScratch()
	sc.k, sc.st = k, st
	if err := t.region.Atomic(sc.deleteBody); err != nil {
		panic("fptree: unexpected transaction error: " + err.Error())
	}
	deleted := sc.deleted
	t.putScratch(sc)
	if deleted {
		t.count.Add(-1)
	}
	return deleted
}

func (sc *opScratch) doInsert(tx *htm.Tx) error {
	sc.inserted = false
	lf, path, err := sc.t.descend(tx, sc.k, sc.st, sc.pathBuf[:0])
	if err != nil {
		return err
	}
	if probe(lf, sc.k, sc.st) >= 0 {
		return nil // duplicate
	}
	bm := lf.bitmap.Load()
	if slot := freeSlot(bm); slot >= 0 {
		sc.lf, sc.slot, sc.bm = lf, slot, bm
		sc.inserted = true
		return tx.Write(&lf.cell, sc.applyInsert)
	}
	// Leaf full: split, then insert into the proper half. The split
	// plan is computed here (reads only); all mutations are deferred
	// writes under the cells of the modified nodes.
	sc.inserted = true
	return sc.t.planSplitInsert(tx, sc, lf, path)
}

// Insert implements index.Index.
func (t *Tree) Insert(k, v uint64, st *index.OpStats) bool {
	if st != nil {
		st.Ops++
	}
	sc := t.getScratch()
	sc.k, sc.v, sc.st = k, v, st
	if err := t.region.Atomic(sc.insertBody); err != nil {
		panic("fptree: unexpected transaction error: " + err.Error())
	}
	inserted := sc.inserted
	t.putScratch(sc)
	if inserted {
		t.count.Add(1)
	}
	return inserted
}

func freeSlot(bm uint64) int {
	for i := 0; i < leafCap; i++ {
		if bm&(1<<uint(i)) == 0 {
			return i
		}
	}
	return -1
}

// insertionSortRecs sorts a small rec slice by key in place. Used instead
// of sort.Slice on the ≤33-entry split and per-leaf scan batches, both to
// stay allocation-free (sort.Slice builds a reflect-based swapper) and
// because the batches are tiny.
func insertionSortRecs(a []rec) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j].k < a[j-1].k; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// planSplitInsert splits the full leaf lf around its median, inserts
// (sc.k, sc.v) into the correct half, and updates the parent chain, growing
// the tree if the root splits. All modifications are registered as
// transactional writes. The split path allocates (it publishes new nodes);
// that cost is structural and amortises to <1/leafCap per insert.
func (t *Tree) planSplitInsert(tx *htm.Tx, sc *opScratch, lf *leaf, path []*inner) error {
	// Snapshot the full leaf (bitmap is all-ones here).
	recs := sc.splitRecs[:0]
	for i := 0; i < leafCap; i++ {
		recs = append(recs, rec{lf.keys[i].Load(), lf.vals[i].Load()})
	}
	recs = append(recs, rec{sc.k, sc.v})
	insertionSortRecs(recs)
	mid := len(recs) / 2
	sep := recs[mid].k // first key of the right leaf

	right := newLeaf()
	// The right leaf is private until the commit publishes the parent
	// link, so it can be populated eagerly.
	var rightBM uint64
	for i, r := range recs[mid:] {
		right.fps[i].Store(fingerprint(r.k))
		right.keys[i].Store(r.k)
		right.vals[i].Store(r.v)
		rightBM |= 1 << uint(i)
	}
	st := sc.st
	if st != nil {
		st.Splits++
		st.BytesCopied += uint64(len(recs) * 16)
	}

	leftRecs := recs[:mid]
	applyLeaf := func() {
		// Rewrite the left leaf compacted; publish via bitmap store.
		lf.bitmap.Store(0)
		var bm uint64
		for i, r := range leftRecs {
			lf.fps[i].Store(fingerprint(r.k))
			lf.keys[i].Store(r.k)
			lf.vals[i].Store(r.v)
			bm |= 1 << uint(i)
		}
		right.next.Store(lf.next.Load())
		lf.next.Store(right)
		right.bitmap.Store(rightBM)
		lf.bitmap.Store(bm)
	}
	if err := tx.Write(&lf.cell, applyLeaf); err != nil {
		return err
	}
	return t.propagateSplit(tx, path, lf, right, sep, st)
}

// propagateSplit inserts separator sep with new right child into the parent,
// splitting inner nodes upward as needed (copy-on-write contents).
func (t *Tree) propagateSplit(tx *htm.Tx, path []*inner, left, right any, sep uint64, st *index.OpStats) error {
	if len(path) == 0 {
		// The split node was the root: grow the tree.
		newRoot := &inner{}
		newRoot.content.Store(&innerContent{
			keys:     []uint64{sep},
			children: []any{left, right},
		})
		return tx.Write(&t.rootCell, func() { t.root.Store(&rootRef{node: newRoot}) })
	}
	parent := path[len(path)-1]
	c := parent.content.Load()
	i := searchSeparators(c.keys, sep)
	nk := make([]uint64, 0, len(c.keys)+1)
	nc := make([]any, 0, len(c.children)+1)
	nk = append(nk, c.keys[:i]...)
	nk = append(nk, sep)
	nk = append(nk, c.keys[i:]...)
	nc = append(nc, c.children[:i+1]...)
	nc = append(nc, right)
	nc = append(nc, c.children[i+1:]...)

	if len(nc) <= innerFanout {
		fresh := &innerContent{keys: nk, children: nc}
		return tx.Write(&parent.cell, func() { parent.content.Store(fresh) })
	}
	// Inner split: left keeps [0,mid), key mid moves up, right gets the rest.
	mid := len(nk) / 2
	up := nk[mid]
	leftContent := &innerContent{keys: append([]uint64(nil), nk[:mid]...), children: append([]any(nil), nc[:mid+1]...)}
	rightInner := &inner{}
	rightInner.content.Store(&innerContent{keys: append([]uint64(nil), nk[mid+1:]...), children: append([]any(nil), nc[mid+1:]...)})
	if st != nil {
		st.Splits++
		st.BytesCopied += uint64(innerBytes(leftContent))
	}
	if err := tx.Write(&parent.cell, func() { parent.content.Store(leftContent) }); err != nil {
		return err
	}
	return t.propagateSplit(tx, path[:len(path)-1], parent, rightInner, up, st)
}

// batchStride is the interleaved group width of one ExecBatch round.
const batchStride = 16

// ExecBatch implements index.BatchKernel. The locate stage descends all
// operations level-synchronously outside any transaction: the root reference,
// inner contents (copy-on-write behind atomic pointers) and leaf cells are
// all atomically published, so the optimistic walk is race-clean
// (ConcurrentReadSafe documents the same property), and it publishes nothing
// — it only issues prefetches for the inner content and the leaf's
// fingerprint/key lines each operation is about to probe. The execute stage
// then runs the operations in index order through the normal transactional
// methods, which re-descend against warm lines; serial equivalence is
// therefore inherited from the serial path itself.
func (t *Tree) ExecBatch(kinds []uint8, keys, vals, outVals []uint64, outOKs []bool) {
	var cur [batchStride]any
	for base := 0; base < len(kinds); base += batchStride {
		n := len(kinds) - base
		if n > batchStride {
			n = batchStride
		}
		root := t.root.Load().node
		for i := 0; i < n; i++ {
			cur[i] = root
		}
		for {
			advanced := false
			for i := 0; i < n; i++ {
				in, ok := cur[i].(*inner)
				if !ok {
					continue
				}
				c := in.content.Load()
				if c == nil || len(c.children) == 0 {
					cur[i] = nil // torn mid-install; the execute stage retries properly
					continue
				}
				child := c.children[searchSeparators(c.keys, keys[base+i])]
				cur[i] = child
				switch ch := child.(type) {
				case *inner:
					if cc := ch.content.Load(); cc != nil {
						prefetch.Line(unsafe.Pointer(cc))
						if len(cc.keys) > 0 {
							prefetch.Line(unsafe.Pointer(&cc.keys[0]))
						}
					}
					advanced = true
				case *leaf:
					// The probe reads bitmap and the whole fingerprint
					// array (two lines at leafCap=32); hint both so the
					// candidate stage below scans resident fingerprints.
					prefetch.Line(unsafe.Pointer(ch))
					prefetch.Line(unsafe.Pointer(&ch.fps[0]))
					prefetch.Line(unsafe.Pointer(&ch.fps[leafCap/2]))
				}
			}
			if !advanced {
				break
			}
		}
		// Candidate stage: with every leaf's fingerprints resident, run
		// each operation's fingerprint scan here and prefetch the exact
		// key and value slots the execute-stage probe will compare — the
		// sparse lines a whole-array hint would waste bandwidth on. The
		// scan publishes nothing; the execute stage re-probes
		// transactionally.
		for i := 0; i < n; i++ {
			lf, ok := cur[i].(*leaf)
			if !ok {
				continue
			}
			fp := fingerprint(keys[base+i])
			bm := lf.bitmap.Load()
			for s := 0; s < leafCap; s++ {
				if bm&(1<<uint(s)) != 0 && lf.fps[s].Load() == fp {
					prefetch.Line(unsafe.Pointer(&lf.keys[s]))
					prefetch.Line(unsafe.Pointer(&lf.vals[s]))
				}
			}
		}
		for i := base; i < base+n; i++ {
			switch kinds[i] {
			case index.BatchGet:
				outVals[i], outOKs[i] = t.Get(keys[i], nil)
			case index.BatchInsert:
				outVals[i], outOKs[i] = 0, t.Insert(keys[i], vals[i], nil)
			case index.BatchUpdate:
				outVals[i], outOKs[i] = 0, t.Update(keys[i], vals[i], nil)
			case index.BatchDelete:
				outVals[i], outOKs[i] = 0, t.Delete(keys[i], nil)
			}
		}
	}
}

func (sc *opScratch) doScan(tx *htm.Tx) error {
	sc.scanOut = sc.scanOut[:0]
	lf, _, err := sc.t.descend(tx, sc.lo, sc.st, sc.pathBuf[:0])
	if err != nil {
		return err
	}
	for lf != nil {
		start := len(sc.scanOut)
		bm := lf.bitmap.Load()
		minKey := uint64(1<<64 - 1)
		for i := 0; i < leafCap; i++ {
			if bm&(1<<uint(i)) == 0 {
				continue
			}
			k := lf.keys[i].Load()
			if k < minKey {
				minKey = k
			}
			if k >= sc.lo && k <= sc.hi {
				sc.scanOut = append(sc.scanOut, rec{k, lf.vals[i].Load()})
			}
		}
		// Leaves are unsorted internally but the chain is in key order,
		// so sorting each leaf's batch keeps the whole result sorted.
		insertionSortRecs(sc.scanOut[start:])
		if bm != 0 && minKey > sc.hi {
			break
		}
		next := lf.next.Load()
		if next == nil {
			break
		}
		if err := tx.Read(&next.cell); err != nil {
			return err
		}
		sc.st.Visit(1, index.CacheLines(leafBytes))
		lf = next
	}
	return nil
}

// Scan implements index.Ranger. Leaves are unsorted, so each leaf's live
// records are collected into the scratch buffer and insertion-sorted before
// yielding. Large scans may exceed HTM capacity and execute on the fallback
// path — the behaviour a real HTM-synchronised FP-Tree exhibits.
func (t *Tree) Scan(lo, hi uint64, fn func(k, v uint64) bool, st *index.OpStats) int {
	if st != nil {
		st.Ops++
	}
	sc := t.getScratch()
	sc.lo, sc.hi, sc.st = lo, hi, st
	if err := t.region.Atomic(sc.scanBody); err != nil {
		panic("fptree: unexpected transaction error: " + err.Error())
	}
	n := 0
	for _, r := range sc.scanOut {
		n++
		if !fn(r.k, r.v) {
			break
		}
	}
	t.putScratch(sc)
	return n
}
