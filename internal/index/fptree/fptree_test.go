package fptree

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"robustconf/internal/index"
)

func TestEmptyTree(t *testing.T) {
	tr := New()
	if tr.Len() != 0 {
		t.Errorf("Len = %d, want 0", tr.Len())
	}
	if _, ok := tr.Get(1, nil); ok {
		t.Error("Get on empty tree found a key")
	}
	if tr.Update(1, 2, nil) {
		t.Error("Update on empty tree succeeded")
	}
}

func TestInsertGetAcrossSplits(t *testing.T) {
	tr := New()
	const n = 20000
	for i := uint64(0); i < n; i++ {
		k := i * 6364136223846793005 % 1000003 // scatter keys
		if !tr.Insert(k, i, nil) {
			t.Fatalf("Insert(%d) returned false", k)
		}
	}
	if tr.Len() != n {
		t.Fatalf("Len = %d, want %d", tr.Len(), n)
	}
	for i := uint64(0); i < n; i++ {
		k := i * 6364136223846793005 % 1000003
		v, ok := tr.Get(k, nil)
		if !ok || v != i {
			t.Fatalf("Get(%d) = %d,%v want %d,true", k, v, ok, i)
		}
	}
}

func TestDuplicateInsertRejected(t *testing.T) {
	tr := New()
	if !tr.Insert(7, 1, nil) {
		t.Fatal("first insert failed")
	}
	if tr.Insert(7, 2, nil) {
		t.Error("duplicate insert succeeded")
	}
	if v, _ := tr.Get(7, nil); v != 1 {
		t.Errorf("duplicate insert changed value to %d", v)
	}
	if tr.Len() != 1 {
		t.Errorf("Len = %d, want 1", tr.Len())
	}
}

func TestUpdateInPlace(t *testing.T) {
	tr := New()
	for i := uint64(0); i < 2000; i++ {
		tr.Insert(i, i, nil)
	}
	var st index.OpStats
	for i := uint64(0); i < 2000; i++ {
		if !tr.Update(i, i+100, &st) {
			t.Fatalf("Update(%d) failed", i)
		}
	}
	if st.Splits != 0 {
		t.Error("in-place updates caused splits")
	}
	for i := uint64(0); i < 2000; i++ {
		if v, _ := tr.Get(i, nil); v != i+100 {
			t.Fatalf("Get(%d) = %d", i, v)
		}
	}
	if tr.Update(99999, 0, nil) {
		t.Error("Update of absent key succeeded")
	}
}

func TestFingerprintProbesAccounted(t *testing.T) {
	tr := New()
	for i := uint64(0); i < 1000; i++ {
		tr.Insert(i, i, nil)
	}
	var st index.OpStats
	tr.Get(500, &st)
	if st.FPProbes == 0 {
		t.Error("Get accounted no fingerprint probes")
	}
	if st.NodesVisited < 2 {
		t.Errorf("NodesVisited = %d, want ≥ 2", st.NodesVisited)
	}
	if st.Depth == 0 {
		t.Error("Depth = 0 on a split tree")
	}
}

func TestSplitAccounting(t *testing.T) {
	tr := New()
	var st index.OpStats
	for i := uint64(0); i < 10000; i++ {
		tr.Insert(i, i, &st)
	}
	if st.Splits == 0 {
		t.Error("10k inserts caused no splits")
	}
	if st.BytesCopied == 0 {
		t.Error("splits copied no bytes")
	}
}

func TestScanSortedAcrossUnsortedLeaves(t *testing.T) {
	tr := New()
	keys := rand.New(rand.NewSource(7)).Perm(3000)
	for _, k := range keys {
		tr.Insert(uint64(k), uint64(k)+1, nil)
	}
	var got []uint64
	n := tr.Scan(1000, 1099, func(k, v uint64) bool {
		if v != k+1 {
			t.Errorf("value mismatch at %d", k)
		}
		got = append(got, k)
		return true
	}, nil)
	if n != 100 {
		t.Fatalf("Scan visited %d, want 100", n)
	}
	for i, k := range got {
		if k != uint64(1000+i) {
			t.Fatalf("out of order at %d: %d", i, k)
		}
	}
}

func TestScanEarlyTermination(t *testing.T) {
	tr := New()
	for i := uint64(0); i < 500; i++ {
		tr.Insert(i, i, nil)
	}
	count := 0
	tr.Scan(0, 499, func(k, v uint64) bool {
		count++
		return count < 10
	}, nil)
	if count != 10 {
		t.Errorf("fn called %d times, want 10", count)
	}
}

func TestHTMStatsExposed(t *testing.T) {
	tr := New()
	for i := uint64(0); i < 100; i++ {
		tr.Insert(i, i, nil)
	}
	if tr.HTMStats().Commits.Load() == 0 {
		t.Error("no HTM commits recorded for 100 single-threaded inserts")
	}
	if tr.HTMStats().Fallbacks.Load() != 0 {
		t.Error("single-threaded inserts should not fall back")
	}
}

func TestSchemeAndName(t *testing.T) {
	tr := New()
	if tr.Name() != "FP-Tree" {
		t.Errorf("Name = %q", tr.Name())
	}
	if tr.Scheme() != index.SchemeHTM {
		t.Errorf("Scheme = %v", tr.Scheme())
	}
}

func TestConcurrentInsertersDisjointRanges(t *testing.T) {
	tr := New()
	const goroutines, perG = 8, 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(base uint64) {
			defer wg.Done()
			for i := uint64(0); i < perG; i++ {
				if !tr.Insert(base+i, base+i, nil) {
					t.Errorf("Insert(%d) failed", base+i)
					return
				}
			}
		}(uint64(g) * 1_000_000)
	}
	wg.Wait()
	if tr.Len() != goroutines*perG {
		t.Fatalf("Len = %d, want %d", tr.Len(), goroutines*perG)
	}
	for g := 0; g < goroutines; g++ {
		base := uint64(g) * 1_000_000
		for i := uint64(0); i < perG; i += 97 {
			if v, ok := tr.Get(base+i, nil); !ok || v != base+i {
				t.Fatalf("Get(%d) = %d,%v", base+i, v, ok)
			}
		}
	}
}

func TestConcurrentMixedReadUpdate(t *testing.T) {
	tr := New()
	const n = 5000
	for i := uint64(0); i < n; i++ {
		tr.Insert(i, i, nil)
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(2)
		go func(seed int64) { // updater
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for i := 0; i < 3000; i++ {
				k := uint64(r.Intn(n))
				if !tr.Update(k, k+7, nil) {
					t.Errorf("Update(%d) failed", k)
					return
				}
			}
		}(int64(g))
		go func(seed int64) { // reader
			defer wg.Done()
			r := rand.New(rand.NewSource(seed + 100))
			for i := 0; i < 3000; i++ {
				k := uint64(r.Intn(n))
				v, ok := tr.Get(k, nil)
				if !ok || (v != k && v != k+7) {
					t.Errorf("Get(%d) = %d,%v — torn read", k, v, ok)
					return
				}
			}
		}(int64(g))
	}
	wg.Wait()
}

func TestConcurrentContendedInsertsNoLostKeys(t *testing.T) {
	// All goroutines race on the same key range; exactly one Insert per key
	// must win.
	tr := New()
	const n = 2000
	wins := make([]int32, n)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := uint64(0); k < n; k++ {
				if tr.Insert(k, k, nil) {
					mu.Lock()
					wins[k]++
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	for k, w := range wins {
		if w != 1 {
			t.Fatalf("key %d won %d times, want 1", k, w)
		}
	}
	if tr.Len() != n {
		t.Errorf("Len = %d, want %d", tr.Len(), n)
	}
}

func TestRandomisedAgainstMap(t *testing.T) {
	tr := New()
	oracle := map[uint64]uint64{}
	r := rand.New(rand.NewSource(99))
	for i := 0; i < 50000; i++ {
		k := uint64(r.Intn(15000))
		switch r.Intn(3) {
		case 0:
			_, exists := oracle[k]
			if ok := tr.Insert(k, k+1, nil); ok == exists {
				t.Fatalf("Insert(%d) = %v, exists=%v", k, ok, exists)
			}
			if !exists {
				oracle[k] = k + 1
			}
		case 1:
			_, exists := oracle[k]
			if ok := tr.Update(k, k+2, nil); ok != exists {
				t.Fatalf("Update(%d) = %v, exists=%v", k, ok, exists)
			}
			if exists {
				oracle[k] = k + 2
			}
		case 2:
			v, ok := tr.Get(k, nil)
			ov, exists := oracle[k]
			if ok != exists || (ok && v != ov) {
				t.Fatalf("Get(%d) = %d,%v, oracle %d,%v", k, v, ok, ov, exists)
			}
		}
	}
	if tr.Len() != len(oracle) {
		t.Errorf("Len = %d, oracle %d", tr.Len(), len(oracle))
	}
}

func TestScanCountProperty(t *testing.T) {
	f := func(keys []uint16, a, b uint16) bool {
		lo, hi := uint64(a), uint64(b)
		if lo > hi {
			lo, hi = hi, lo
		}
		tr := New()
		set := map[uint64]bool{}
		for _, k16 := range keys {
			k := uint64(k16)
			if tr.Insert(k, k, nil) {
				set[k] = true
			}
		}
		want := 0
		for k := range set {
			if k >= lo && k <= hi {
				want++
			}
		}
		return tr.Scan(lo, hi, func(k, v uint64) bool { return true }, nil) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestFingerprintDeterministicAndByteSized(t *testing.T) {
	f := func(k uint64) bool {
		fp := fingerprint(k)
		return fp == fingerprint(k) && fp < 256
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
