package fptree

import "fmt"

// CheckInvariants verifies the tree's structural invariants from a quiesced
// state: every occupied leaf slot's fingerprint matches its key, leaf
// contents respect the inner separators, inner keys are sorted, and the
// leaf chain covers exactly Len() keys in ascending range order. For tests
// and debugging.
func (t *Tree) CheckInvariants() error {
	ref := t.root.Load()
	if ref == nil {
		return fmt.Errorf("fptree: nil root")
	}
	counted := 0
	var firstLeaf *leaf
	var walk func(node any, lo, hi uint64, hasLo, hasHi bool) error
	walk = func(node any, lo, hi uint64, hasLo, hasHi bool) error {
		switch n := node.(type) {
		case *inner:
			c := n.content.Load()
			if c == nil {
				return fmt.Errorf("fptree: inner node without content")
			}
			if len(c.children) != len(c.keys)+1 {
				return fmt.Errorf("fptree: inner has %d children for %d keys", len(c.children), len(c.keys))
			}
			for i := 1; i < len(c.keys); i++ {
				if c.keys[i-1] >= c.keys[i] {
					return fmt.Errorf("fptree: inner keys unsorted at %d", i)
				}
			}
			for i, child := range c.children {
				cLo, cHasLo := lo, hasLo
				cHi, cHasHi := hi, hasHi
				if i > 0 {
					cLo, cHasLo = c.keys[i-1], true
				}
				if i < len(c.keys) {
					cHi, cHasHi = c.keys[i], true
				}
				if err := walk(child, cLo, cHi, cHasLo, cHasHi); err != nil {
					return err
				}
			}
			return nil
		case *leaf:
			if firstLeaf == nil {
				firstLeaf = n
			}
			bm := n.bitmap.Load()
			for i := 0; i < leafCap; i++ {
				if bm&(1<<uint(i)) == 0 {
					continue
				}
				k := n.keys[i].Load()
				if got := n.fps[i].Load(); got != fingerprint(k) {
					return fmt.Errorf("fptree: slot %d fingerprint %d ≠ fingerprint(%d) = %d", i, got, k, fingerprint(k))
				}
				if hasLo && k < lo {
					return fmt.Errorf("fptree: leaf key %d below separator %d", k, lo)
				}
				if hasHi && k >= hi {
					return fmt.Errorf("fptree: leaf key %d not below separator %d", k, hi)
				}
				counted++
			}
			// No duplicate keys within a leaf.
			seen := map[uint64]bool{}
			for i := 0; i < leafCap; i++ {
				if bm&(1<<uint(i)) == 0 {
					continue
				}
				k := n.keys[i].Load()
				if seen[k] {
					return fmt.Errorf("fptree: duplicate key %d within a leaf", k)
				}
				seen[k] = true
			}
			return nil
		default:
			return fmt.Errorf("fptree: unknown node type %T", node)
		}
	}
	if err := walk(ref.node, 0, 0, false, false); err != nil {
		return err
	}
	if int64(counted) != t.count.Load() {
		return fmt.Errorf("fptree: %d occupied slots, count says %d", counted, t.count.Load())
	}
	// Leaf chain ranges must ascend: every key of leaf i+1 exceeds the max
	// key of leaf i (leaves are internally unsorted but range-disjoint).
	prevMax := uint64(0)
	first := true
	chainCount := 0
	for lf := firstLeaf; lf != nil; lf = lf.next.Load() {
		bm := lf.bitmap.Load()
		var mn, mx uint64
		any := false
		for i := 0; i < leafCap; i++ {
			if bm&(1<<uint(i)) == 0 {
				continue
			}
			k := lf.keys[i].Load()
			if !any || k < mn {
				mn = k
			}
			if !any || k > mx {
				mx = k
			}
			any = true
			chainCount++
		}
		if any {
			if !first && mn <= prevMax {
				return fmt.Errorf("fptree: leaf chain ranges overlap (%d ≤ %d)", mn, prevMax)
			}
			prevMax, first = mx, false
		}
	}
	if chainCount != counted {
		return fmt.Errorf("fptree: leaf chain holds %d keys, tree walk found %d", chainCount, counted)
	}
	return nil
}
