package fptree

import (
	"strings"
	"testing"
)

func TestCheckInvariantsAcceptsHealthyTree(t *testing.T) {
	tr := New()
	for i := uint64(0); i < 20000; i++ {
		tr.Insert(i*31%49999, i, nil)
	}
	for i := uint64(0); i < 20000; i += 5 {
		tr.Delete(i*31%49999, nil)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := New().CheckInvariants(); err != nil {
		t.Fatalf("empty tree: %v", err)
	}
}

func TestCheckInvariantsDetectsCorruption(t *testing.T) {
	build := func() *Tree {
		tr := New()
		for i := uint64(0); i < 3000; i++ {
			tr.Insert(i, i, nil)
		}
		return tr
	}

	// findLeafRaw descends without transactions (test-only).
	findLeafRaw := func(tr *Tree, k uint64) *leaf {
		node := tr.root.Load().node
		for {
			switch n := node.(type) {
			case *inner:
				c := n.content.Load()
				node = c.children[searchSeparators(c.keys, k)]
			case *leaf:
				return n
			}
		}
	}

	t.Run("fingerprint mismatch", func(t *testing.T) {
		tr := build()
		lf := findLeafRaw(tr, 100)
		bm := lf.bitmap.Load()
		for i := 0; i < leafCap; i++ {
			if bm&(1<<uint(i)) != 0 {
				lf.fps[i].Store(lf.fps[i].Load() ^ 0xFF)
				break
			}
		}
		err := tr.CheckInvariants()
		if err == nil || !strings.Contains(err.Error(), "fingerprint") {
			t.Errorf("fingerprint mismatch not detected: %v", err)
		}
	})

	t.Run("count drift", func(t *testing.T) {
		tr := build()
		tr.count.Add(2)
		err := tr.CheckInvariants()
		if err == nil || !strings.Contains(err.Error(), "count") {
			t.Errorf("count drift not detected: %v", err)
		}
	})

	t.Run("duplicate key in leaf", func(t *testing.T) {
		tr := build()
		lf := findLeafRaw(tr, 100)
		bm := lf.bitmap.Load()
		var slots []int
		for i := 0; i < leafCap && len(slots) < 2; i++ {
			if bm&(1<<uint(i)) != 0 {
				slots = append(slots, i)
			}
		}
		if len(slots) < 2 {
			t.Skip("leaf too empty")
		}
		k := lf.keys[slots[0]].Load()
		lf.keys[slots[1]].Store(k)
		lf.fps[slots[1]].Store(fingerprint(k))
		err := tr.CheckInvariants()
		if err == nil {
			t.Error("duplicate key not detected")
		}
	})

	t.Run("key outside separator range", func(t *testing.T) {
		tr := build()
		lf := findLeafRaw(tr, 0)
		bm := lf.bitmap.Load()
		for i := 0; i < leafCap; i++ {
			if bm&(1<<uint(i)) != 0 {
				k := uint64(1 << 50)
				lf.keys[i].Store(k)
				lf.fps[i].Store(fingerprint(k))
				break
			}
		}
		err := tr.CheckInvariants()
		if err == nil {
			t.Error("out-of-range key not detected")
		}
	})
}
