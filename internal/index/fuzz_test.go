package index_test

import (
	"testing"

	"robustconf/internal/index"
	"robustconf/internal/index/btree"
	"robustconf/internal/index/bwtree"
	"robustconf/internal/index/fptree"
	"robustconf/internal/index/hashmap"
)

// FuzzIndexAgainstOracle decodes the fuzz input as a stream of operations
// and applies it to all four structures in lock-step with a map oracle.
// Run with `go test -fuzz=FuzzIndexAgainstOracle ./internal/index`; the
// seed corpus also executes under plain `go test`.
func FuzzIndexAgainstOracle(f *testing.F) {
	f.Add([]byte{0, 1, 1, 2, 2, 3, 3, 0})
	f.Add([]byte{0, 10, 2, 10, 1, 10, 3, 10, 0, 10})
	f.Add([]byte{255, 254, 253, 252, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 || len(data) > 2048 {
			return
		}
		structures := map[string]index.Index{
			"btree":   btree.New(),
			"fptree":  fptree.New(),
			"bwtree":  bwtree.New(),
			"hashmap": hashmap.New(),
		}
		oracle := map[uint64]uint64{}
		for i := 0; i+1 < len(data); i += 2 {
			op := data[i] % 4
			k := uint64(data[i+1] % 64) // small key space forces collisions
			v := uint64(i)
			_, exists := oracle[k]
			for name, idx := range structures {
				switch op {
				case 0:
					if got := idx.Insert(k, v, nil); got == exists {
						t.Fatalf("%s: Insert(%d) = %v with exists=%v", name, k, got, exists)
					}
				case 1:
					if got := idx.Update(k, v, nil); got != exists {
						t.Fatalf("%s: Update(%d) = %v with exists=%v", name, k, got, exists)
					}
				case 2:
					if got := idx.Delete(k, nil); got != exists {
						t.Fatalf("%s: Delete(%d) = %v with exists=%v", name, k, got, exists)
					}
				case 3:
					got, ok := idx.Get(k, nil)
					want, wok := oracle[k]
					if ok != wok || (ok && got != want) {
						t.Fatalf("%s: Get(%d) = %d,%v, oracle %d,%v", name, k, got, ok, want, wok)
					}
				}
			}
			switch op {
			case 0:
				if !exists {
					oracle[k] = v
				}
			case 1:
				if exists {
					oracle[k] = v
				}
			case 2:
				delete(oracle, k)
			}
		}
		for name, idx := range structures {
			if idx.Len() != len(oracle) {
				t.Fatalf("%s: Len = %d, oracle %d", name, idx.Len(), len(oracle))
			}
		}
	})
}
