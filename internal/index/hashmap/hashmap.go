// Package hashmap implements a TBB-style concurrent hash map: chained
// buckets, each protected by a fine-grained reader-writer spin lock. Per the
// paper's footnote 1, the bucket hash additionally XORs the upper half of
// the key into the lower half, which evens out bucket occupancy for the
// structured 64-bit keys YCSB generates (the paper reports the bucket-size
// standard deviation dropping from 4.7 to 1.2).
//
// The reader-side atomic increment that registers a reader on the bucket's
// lock is the coordination cost the paper identifies as the structure's
// read-only-workload bottleneck; it is surfaced via ReaderRegistrations so
// the cost model can charge it.
package hashmap

import (
	"math"
	"sync/atomic"
	"unsafe"

	"robustconf/internal/index"
	"robustconf/internal/prefetch"
	"robustconf/internal/syncprims"
)

// DefaultBuckets is New's bucket count; a power of two sized for the YCSB
// scale used in the examples and tests.
const DefaultBuckets = 1 << 16

type entry struct {
	key uint64
	val atomic.Uint64
	// next is atomic so ExecBatch's lock-free interleaved walk can chase
	// chains while another worker's Delete unlinks in place under the
	// bucket's exclusive lock — with pooled sessions one structure's ops
	// may execute on several workers concurrently. key is immutable after
	// publication; relaxed pointer loads cost nothing on the lock-holding
	// paths.
	next atomic.Pointer[entry]
}

const entryBytes = 8 + 8 + 8

type bucket struct {
	lock syncprims.RWSpinLock
	head atomic.Pointer[entry]
	size atomic.Int64
}

// Map is a concurrent chained hash map. Construct with New or NewBuckets.
type Map struct {
	buckets []bucket
	mask    uint64
	count   atomic.Int64
	// xorFold enables the footnote-1 hash fix; disabled only by the
	// ablation constructor to reproduce the skew the paper discovered.
	xorFold bool
}

// New returns a map with the default bucket count and the XOR hash fix on.
func New() *Map { return NewBuckets(DefaultBuckets) }

// NewBuckets returns a map with the given bucket count, rounded up to a
// power of two, with the XOR hash fix enabled.
func NewBuckets(n int) *Map {
	return newMap(n, true)
}

// NewWithoutXORFix returns a map that hashes without folding the key's upper
// half — the configuration the paper found to skew bucket occupancy. It
// exists for the ablation benchmarks.
func NewWithoutXORFix(n int) *Map {
	return newMap(n, false)
}

func newMap(n int, xorFold bool) *Map {
	size := 1
	for size < n {
		size <<= 1
	}
	return &Map{buckets: make([]bucket, size), mask: uint64(size - 1), xorFold: xorFold}
}

// hash mixes the key into a bucket number. Without the XOR fold only the
// low bits participate, which skews occupancy for keys whose entropy is in
// the upper half.
func (m *Map) hash(k uint64) uint64 {
	if m.xorFold {
		k ^= k >> 32
	}
	k *= 0x9e3779b97f4a7c15
	return (k >> 16) & m.mask
}

// Name implements index.Index.
func (m *Map) Name() string { return "Hash Map" }

// Scheme implements index.Index.
func (m *Map) Scheme() index.Scheme { return index.SchemeBucketRW }

// ConcurrentReadSafe reports true: Get holds the bucket's reader-writer
// spin lock (a single atomic word) in shared mode, entry values are atomic,
// and chain links never change while the lock is held shared — a concurrent
// read is race-clean and allocation-free (see index.ConcurrentReadSafe),
// which makes the hash map the reference structure for the runtime's
// zero-allocation bypass-read pin.
func (m *Map) ConcurrentReadSafe() bool { return true }

// Len implements index.Index.
func (m *Map) Len() int { return int(m.count.Load()) }

// Get implements index.Index.
func (m *Map) Get(k uint64, st *index.OpStats) (uint64, bool) {
	if st != nil {
		st.Ops++
	}
	b := &m.buckets[m.hash(k)]
	b.lock.RLock()
	defer b.lock.RUnlock()
	n := uint64(0)
	for e := b.head.Load(); e != nil; e = e.next.Load() {
		n++
		if e.key == k {
			st.Visit(n, n*index.CacheLines(entryBytes))
			return e.val.Load(), true
		}
	}
	st.Visit(n+1, (n+1)*index.CacheLines(entryBytes))
	return 0, false
}

// Insert implements index.Index.
func (m *Map) Insert(k, v uint64, st *index.OpStats) bool {
	if st != nil {
		st.Ops++
		st.LockAcquires++
	}
	b := &m.buckets[m.hash(k)]
	b.lock.Lock()
	defer b.lock.Unlock()
	n := uint64(0)
	for e := b.head.Load(); e != nil; e = e.next.Load() {
		n++
		if e.key == k {
			st.Visit(n, n*index.CacheLines(entryBytes))
			return false
		}
	}
	e := &entry{key: k}
	e.next.Store(b.head.Load())
	e.val.Store(v)
	b.head.Store(e)
	b.size.Add(1)
	m.count.Add(1)
	st.Visit(n+1, (n+1)*index.CacheLines(entryBytes))
	if st != nil {
		st.BytesCopied += entryBytes
	}
	return true
}

// Update implements index.Index with an in-place atomic store on the value.
func (m *Map) Update(k, v uint64, st *index.OpStats) bool {
	if st != nil {
		st.Ops++
		st.LockAcquires++
	}
	b := &m.buckets[m.hash(k)]
	b.lock.RLock() // value stores are atomic; shared mode suffices
	defer b.lock.RUnlock()
	n := uint64(0)
	for e := b.head.Load(); e != nil; e = e.next.Load() {
		n++
		if e.key == k {
			e.val.Store(v)
			st.Visit(n, n*index.CacheLines(entryBytes))
			return true
		}
	}
	st.Visit(n+1, (n+1)*index.CacheLines(entryBytes))
	return false
}

// Delete implements index.Index by unlinking the entry under the bucket's
// exclusive lock.
func (m *Map) Delete(k uint64, st *index.OpStats) bool {
	if st != nil {
		st.Ops++
		st.LockAcquires++
	}
	b := &m.buckets[m.hash(k)]
	b.lock.Lock()
	defer b.lock.Unlock()
	n := uint64(0)
	var prev *entry
	for e := b.head.Load(); e != nil; e = e.next.Load() {
		n++
		if e.key == k {
			// Readers hold the bucket's shared lock, so the exclusive
			// holder may unlink in place.
			if prev == nil {
				b.head.Store(e.next.Load())
			} else {
				prev.next.Store(e.next.Load())
			}
			b.size.Add(-1)
			m.count.Add(-1)
			st.Visit(n, n*index.CacheLines(entryBytes))
			return true
		}
		prev = e
	}
	st.Visit(n+1, (n+1)*index.CacheLines(entryBytes))
	return false
}

// batchStride is how many in-flight operations one interleaved round of
// ExecBatch advances together. 16 independent probes comfortably exceed the
// line-fill-buffer depth of current cores, so the group's misses overlap
// without the stage arrays outgrowing the stack.
const batchStride = 16

// ExecBatch implements index.BatchKernel with an AMAC-style interleaved
// chain walk: every operation's bucket is hashed and prefetched, each chain
// head is loaded and prefetched, and then per-operation cursors advance one
// entry per round — each round issuing the prefetch for every cursor's next
// entry before any cursor dereferences its own — so up to batchStride
// dependent pointer chases miss the cache concurrently instead of one after
// another. The walk is read-only and lock-free, and race-clean even against
// concurrent mutators on other workers (with pooled sessions one
// structure's ops may execute on several workers at once): chain heads and
// links are atomic pointers, keys are immutable after publication, and a
// stale or mid-unlink view only mis-prefetches. Operations then
// execute serially in index order through the normal public methods, which
// re-read the (now resident) chain under the bucket lock — the optimistic
// walk is purely a cache warmer, so the serial-equivalence contract holds
// trivially.
func (m *Map) ExecBatch(kinds []uint8, keys, vals, outVals []uint64, outOKs []bool) {
	var bs [batchStride]*bucket
	var cur [batchStride]*entry
	for base := 0; base < len(kinds); base += batchStride {
		n := len(kinds) - base
		if n > batchStride {
			n = batchStride
		}
		// A group of one has nothing to overlap with — the optimistic walk
		// would only replay the chain chase it cannot hide — so it skips
		// straight to execution. This is the degraded path workers take
		// when interleaving is off.
		if n > 1 {
			// Stage 1: hash every key and prefetch its bucket header (lock
			// word, chain head and size share the line).
			for i := 0; i < n; i++ {
				b := &m.buckets[m.hash(keys[base+i])]
				bs[i] = b
				prefetch.Line(unsafe.Pointer(b))
			}
			// Stage 2: the bucket lines are (now) resident; load each
			// chain's first entry and prefetch it.
			for i := 0; i < n; i++ {
				if e := bs[i].head.Load(); e != nil {
					cur[i] = e
					prefetch.Line(unsafe.Pointer(e))
				} else {
					cur[i] = nil
				}
			}
			// Stage 3: interleaved chain walk. A cursor retires when its
			// key matches (the entry the execute stage will want is
			// resident) or its chain ends; the round keeps going while any
			// cursor is in flight.
			for {
				active := false
				for i := 0; i < n; i++ {
					e := cur[i]
					if e == nil {
						continue
					}
					if e.key == keys[base+i] {
						cur[i] = nil
						continue
					}
					next := e.next.Load()
					cur[i] = next
					if next != nil {
						prefetch.Line(unsafe.Pointer(next))
						active = true
					}
				}
				if !active {
					break
				}
			}
		}
		// Stage 4: execute in index order with the public operations.
		// (Reached directly for single-op groups, with no staging.)
		for i := 0; i < n; i++ {
			j := base + i
			switch kinds[j] {
			case index.BatchGet:
				outVals[j], outOKs[j] = m.Get(keys[j], nil)
			case index.BatchInsert:
				outVals[j], outOKs[j] = 0, m.Insert(keys[j], vals[j], nil)
			case index.BatchUpdate:
				outVals[j], outOKs[j] = 0, m.Update(keys[j], vals[j], nil)
			case index.BatchDelete:
				outVals[j], outOKs[j] = 0, m.Delete(keys[j], nil)
			}
		}
	}
}

// Buckets returns the bucket count.
func (m *Map) Buckets() int { return len(m.buckets) }

// ReaderRegistrations sums the reader-side lock registrations across all
// buckets — the atomic-increment traffic the paper's read-only analysis
// attributes the Hash Map bottleneck to.
func (m *Map) ReaderRegistrations() uint64 {
	var n uint64
	for i := range m.buckets {
		n += m.buckets[i].lock.ReaderRegistrations.Load()
	}
	return n
}

// BucketSizeStdDev returns the standard deviation of bucket occupancy, the
// metric of footnote 1 (4.7 without the XOR fix vs 1.2 with it).
func (m *Map) BucketSizeStdDev() float64 {
	mean := float64(m.count.Load()) / float64(len(m.buckets))
	var ss float64
	for i := range m.buckets {
		d := float64(m.buckets[i].size.Load()) - mean
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(m.buckets)))
}
