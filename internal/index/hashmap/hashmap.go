// Package hashmap implements a TBB-style concurrent hash map: chained
// buckets, each protected by a fine-grained reader-writer spin lock. Per the
// paper's footnote 1, the bucket hash additionally XORs the upper half of
// the key into the lower half, which evens out bucket occupancy for the
// structured 64-bit keys YCSB generates (the paper reports the bucket-size
// standard deviation dropping from 4.7 to 1.2).
//
// The reader-side atomic increment that registers a reader on the bucket's
// lock is the coordination cost the paper identifies as the structure's
// read-only-workload bottleneck; it is surfaced via ReaderRegistrations so
// the cost model can charge it.
package hashmap

import (
	"math"
	"sync/atomic"

	"robustconf/internal/index"
	"robustconf/internal/syncprims"
)

// DefaultBuckets is New's bucket count; a power of two sized for the YCSB
// scale used in the examples and tests.
const DefaultBuckets = 1 << 16

type entry struct {
	key  uint64
	val  atomic.Uint64
	next *entry
}

const entryBytes = 8 + 8 + 8

type bucket struct {
	lock syncprims.RWSpinLock
	head atomic.Pointer[entry]
	size atomic.Int64
}

// Map is a concurrent chained hash map. Construct with New or NewBuckets.
type Map struct {
	buckets []bucket
	mask    uint64
	count   atomic.Int64
	// xorFold enables the footnote-1 hash fix; disabled only by the
	// ablation constructor to reproduce the skew the paper discovered.
	xorFold bool
}

// New returns a map with the default bucket count and the XOR hash fix on.
func New() *Map { return NewBuckets(DefaultBuckets) }

// NewBuckets returns a map with the given bucket count, rounded up to a
// power of two, with the XOR hash fix enabled.
func NewBuckets(n int) *Map {
	return newMap(n, true)
}

// NewWithoutXORFix returns a map that hashes without folding the key's upper
// half — the configuration the paper found to skew bucket occupancy. It
// exists for the ablation benchmarks.
func NewWithoutXORFix(n int) *Map {
	return newMap(n, false)
}

func newMap(n int, xorFold bool) *Map {
	size := 1
	for size < n {
		size <<= 1
	}
	return &Map{buckets: make([]bucket, size), mask: uint64(size - 1), xorFold: xorFold}
}

// hash mixes the key into a bucket number. Without the XOR fold only the
// low bits participate, which skews occupancy for keys whose entropy is in
// the upper half.
func (m *Map) hash(k uint64) uint64 {
	if m.xorFold {
		k ^= k >> 32
	}
	k *= 0x9e3779b97f4a7c15
	return (k >> 16) & m.mask
}

// Name implements index.Index.
func (m *Map) Name() string { return "Hash Map" }

// Scheme implements index.Index.
func (m *Map) Scheme() index.Scheme { return index.SchemeBucketRW }

// ConcurrentReadSafe reports true: Get holds the bucket's reader-writer
// spin lock (a single atomic word) in shared mode, entry values are atomic,
// and chain links never change while the lock is held shared — a concurrent
// read is race-clean and allocation-free (see index.ConcurrentReadSafe),
// which makes the hash map the reference structure for the runtime's
// zero-allocation bypass-read pin.
func (m *Map) ConcurrentReadSafe() bool { return true }

// Len implements index.Index.
func (m *Map) Len() int { return int(m.count.Load()) }

// Get implements index.Index.
func (m *Map) Get(k uint64, st *index.OpStats) (uint64, bool) {
	if st != nil {
		st.Ops++
	}
	b := &m.buckets[m.hash(k)]
	b.lock.RLock()
	defer b.lock.RUnlock()
	n := uint64(0)
	for e := b.head.Load(); e != nil; e = e.next {
		n++
		if e.key == k {
			st.Visit(n, n*index.CacheLines(entryBytes))
			return e.val.Load(), true
		}
	}
	st.Visit(n+1, (n+1)*index.CacheLines(entryBytes))
	return 0, false
}

// Insert implements index.Index.
func (m *Map) Insert(k, v uint64, st *index.OpStats) bool {
	if st != nil {
		st.Ops++
		st.LockAcquires++
	}
	b := &m.buckets[m.hash(k)]
	b.lock.Lock()
	defer b.lock.Unlock()
	n := uint64(0)
	for e := b.head.Load(); e != nil; e = e.next {
		n++
		if e.key == k {
			st.Visit(n, n*index.CacheLines(entryBytes))
			return false
		}
	}
	e := &entry{key: k, next: b.head.Load()}
	e.val.Store(v)
	b.head.Store(e)
	b.size.Add(1)
	m.count.Add(1)
	st.Visit(n+1, (n+1)*index.CacheLines(entryBytes))
	if st != nil {
		st.BytesCopied += entryBytes
	}
	return true
}

// Update implements index.Index with an in-place atomic store on the value.
func (m *Map) Update(k, v uint64, st *index.OpStats) bool {
	if st != nil {
		st.Ops++
		st.LockAcquires++
	}
	b := &m.buckets[m.hash(k)]
	b.lock.RLock() // value stores are atomic; shared mode suffices
	defer b.lock.RUnlock()
	n := uint64(0)
	for e := b.head.Load(); e != nil; e = e.next {
		n++
		if e.key == k {
			e.val.Store(v)
			st.Visit(n, n*index.CacheLines(entryBytes))
			return true
		}
	}
	st.Visit(n+1, (n+1)*index.CacheLines(entryBytes))
	return false
}

// Delete implements index.Index by unlinking the entry under the bucket's
// exclusive lock.
func (m *Map) Delete(k uint64, st *index.OpStats) bool {
	if st != nil {
		st.Ops++
		st.LockAcquires++
	}
	b := &m.buckets[m.hash(k)]
	b.lock.Lock()
	defer b.lock.Unlock()
	n := uint64(0)
	var prev *entry
	for e := b.head.Load(); e != nil; e = e.next {
		n++
		if e.key == k {
			// Readers hold the bucket's shared lock, so the exclusive
			// holder may unlink in place.
			if prev == nil {
				b.head.Store(e.next)
			} else {
				prev.next = e.next
			}
			b.size.Add(-1)
			m.count.Add(-1)
			st.Visit(n, n*index.CacheLines(entryBytes))
			return true
		}
		prev = e
	}
	st.Visit(n+1, (n+1)*index.CacheLines(entryBytes))
	return false
}

// Buckets returns the bucket count.
func (m *Map) Buckets() int { return len(m.buckets) }

// ReaderRegistrations sums the reader-side lock registrations across all
// buckets — the atomic-increment traffic the paper's read-only analysis
// attributes the Hash Map bottleneck to.
func (m *Map) ReaderRegistrations() uint64 {
	var n uint64
	for i := range m.buckets {
		n += m.buckets[i].lock.ReaderRegistrations.Load()
	}
	return n
}

// BucketSizeStdDev returns the standard deviation of bucket occupancy, the
// metric of footnote 1 (4.7 without the XOR fix vs 1.2 with it).
func (m *Map) BucketSizeStdDev() float64 {
	mean := float64(m.count.Load()) / float64(len(m.buckets))
	var ss float64
	for i := range m.buckets {
		d := float64(m.buckets[i].size.Load()) - mean
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(m.buckets)))
}
