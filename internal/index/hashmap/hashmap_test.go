package hashmap

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"robustconf/internal/index"
)

func TestEmptyMap(t *testing.T) {
	m := New()
	if m.Len() != 0 {
		t.Errorf("Len = %d", m.Len())
	}
	if _, ok := m.Get(1, nil); ok {
		t.Error("Get on empty map found a key")
	}
	if m.Update(1, 1, nil) {
		t.Error("Update on empty map succeeded")
	}
}

func TestInsertGetUpdate(t *testing.T) {
	m := New()
	const n = 50000
	for i := uint64(0); i < n; i++ {
		if !m.Insert(i, i*2, nil) {
			t.Fatalf("Insert(%d) failed", i)
		}
	}
	if m.Len() != n {
		t.Fatalf("Len = %d, want %d", m.Len(), n)
	}
	for i := uint64(0); i < n; i++ {
		if v, ok := m.Get(i, nil); !ok || v != i*2 {
			t.Fatalf("Get(%d) = %d,%v", i, v, ok)
		}
	}
	for i := uint64(0); i < n; i++ {
		if !m.Update(i, i*3, nil) {
			t.Fatalf("Update(%d) failed", i)
		}
	}
	if v, _ := m.Get(7, nil); v != 21 {
		t.Errorf("Get(7) = %d after update", v)
	}
	if m.Insert(5, 0, nil) {
		t.Error("duplicate insert succeeded")
	}
	if m.Update(n+1, 0, nil) {
		t.Error("update of absent key succeeded")
	}
}

func TestBucketCountRounding(t *testing.T) {
	for _, c := range []struct{ in, want int }{{1, 1}, {2, 2}, {3, 4}, {1000, 1024}, {65536, 65536}} {
		m := NewBuckets(c.in)
		if m.Buckets() != c.want {
			t.Errorf("NewBuckets(%d).Buckets() = %d, want %d", c.in, m.Buckets(), c.want)
		}
	}
}

func TestXORFoldEvensBuckets(t *testing.T) {
	// Keys with all entropy in the upper 32 bits — the pathological case
	// footnote 1 describes. Without folding they collide heavily.
	const n = 1 << 14
	withFix := NewBuckets(1 << 10)
	withoutFix := NewWithoutXORFix(1 << 10)
	for i := uint64(0); i < n; i++ {
		k := i << 32
		withFix.Insert(k, i, nil)
		withoutFix.Insert(k, i, nil)
	}
	sdFix, sdNo := withFix.BucketSizeStdDev(), withoutFix.BucketSizeStdDev()
	if sdFix >= sdNo {
		t.Errorf("XOR fix did not reduce skew: with=%.2f without=%.2f", sdFix, sdNo)
	}
}

func TestReaderRegistrationsCounted(t *testing.T) {
	m := New()
	m.Insert(1, 1, nil)
	before := m.ReaderRegistrations()
	for i := 0; i < 100; i++ {
		m.Get(1, nil)
	}
	if got := m.ReaderRegistrations() - before; got != 100 {
		t.Errorf("ReaderRegistrations delta = %d, want 100", got)
	}
}

func TestStatsAccounting(t *testing.T) {
	m := New()
	var ist index.OpStats
	m.Insert(1, 1, &ist)
	if ist.LockAcquires != 1 || ist.BytesCopied == 0 {
		t.Errorf("insert stats: %+v", ist)
	}
	var gst index.OpStats
	m.Get(1, &gst)
	if gst.Ops != 1 || gst.NodesVisited == 0 || gst.LinesTouched == 0 {
		t.Errorf("get stats: %+v", gst)
	}
}

func TestSchemeAndName(t *testing.T) {
	m := New()
	if m.Name() != "Hash Map" {
		t.Errorf("Name = %q", m.Name())
	}
	if m.Scheme() != index.SchemeBucketRW {
		t.Errorf("Scheme = %v", m.Scheme())
	}
}

func TestConcurrentInsertContended(t *testing.T) {
	m := NewBuckets(64) // few buckets to force lock contention
	const n = 2000
	var wins [n]int32
	var mu sync.Mutex
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := uint64(0); k < n; k++ {
				if m.Insert(k, k, nil) {
					mu.Lock()
					wins[k]++
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	for k := range wins {
		if wins[k] != 1 {
			t.Fatalf("key %d won %d times", k, wins[k])
		}
	}
	if m.Len() != n {
		t.Errorf("Len = %d, want %d", m.Len(), n)
	}
}

func TestConcurrentReadUpdate(t *testing.T) {
	m := New()
	const n = 1000
	for i := uint64(0); i < n; i++ {
		m.Insert(i, i*10, nil)
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(2)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for i := 0; i < 5000; i++ {
				k := uint64(r.Intn(n))
				m.Update(k, k*10, nil)
			}
		}(int64(g))
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed + 10))
			for i := 0; i < 5000; i++ {
				k := uint64(r.Intn(n))
				if v, ok := m.Get(k, nil); !ok || v != k*10 {
					t.Errorf("Get(%d) = %d,%v", k, v, ok)
					return
				}
			}
		}(int64(g))
	}
	wg.Wait()
}

func TestRandomisedAgainstMap(t *testing.T) {
	m := NewBuckets(1 << 8)
	oracle := map[uint64]uint64{}
	r := rand.New(rand.NewSource(77))
	for i := 0; i < 60000; i++ {
		k := uint64(r.Intn(10000))
		switch r.Intn(3) {
		case 0:
			_, exists := oracle[k]
			if ok := m.Insert(k, k+1, nil); ok == exists {
				t.Fatalf("Insert(%d) = %v, exists=%v", k, ok, exists)
			}
			if !exists {
				oracle[k] = k + 1
			}
		case 1:
			_, exists := oracle[k]
			if ok := m.Update(k, k+2, nil); ok != exists {
				t.Fatalf("Update(%d) = %v, exists=%v", k, ok, exists)
			}
			if exists {
				oracle[k] = k + 2
			}
		case 2:
			v, ok := m.Get(k, nil)
			ov, exists := oracle[k]
			if ok != exists || (ok && v != ov) {
				t.Fatalf("Get(%d) = %d,%v, oracle %d,%v", k, v, ok, ov, exists)
			}
		}
	}
	if m.Len() != len(oracle) {
		t.Errorf("Len = %d, oracle %d", m.Len(), len(oracle))
	}
}

func TestHashStaysInRangeProperty(t *testing.T) {
	m := NewBuckets(1 << 10)
	f := func(k uint64) bool {
		h := m.hash(k)
		return h < uint64(m.Buckets())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInsertGetRoundTripProperty(t *testing.T) {
	f := func(pairs map[uint64]uint64) bool {
		m := NewBuckets(256)
		for k, v := range pairs {
			if !m.Insert(k, v, nil) {
				return false
			}
		}
		for k, v := range pairs {
			got, ok := m.Get(k, nil)
			if !ok || got != v {
				return false
			}
		}
		return m.Len() == len(pairs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
