// Package index defines the common contract for the main-memory index
// structures the paper evaluates (Table 1): an STX-style B+Tree, the
// FP-Tree, the Open BW-Tree and a TBB-style Hash Map. All four store 64-bit
// integer keys and values, matching the paper's YCSB setup.
//
// Every operation can optionally report its structural events through an
// OpStats sink. The machine simulator charges costs (cache lines touched,
// synchronisation events, allocations) from these real measurements rather
// than from canned curves.
package index

import "fmt"

// Scheme identifies the synchronisation scheme of a structure, as listed in
// Table 1 of the paper. The scheme decides which contention model the
// simulator applies.
type Scheme int

const (
	// SchemeAtomicRecord: no structural synchronisation by default;
	// modified with atomic load/store on records plus a global lock for
	// inserts (the paper's modified STX B+Tree).
	SchemeAtomicRecord Scheme = iota
	// SchemeHTM: hardware transactional memory for traversal with a
	// global-lock fallback path (FP-Tree).
	SchemeHTM
	// SchemeCOW: copy-on-write delta records installed with atomic CAS
	// (Open BW-Tree).
	SchemeCOW
	// SchemeBucketRW: fine-grained per-bucket reader-writer locking with a
	// spin lock (TBB-style Hash Map).
	SchemeBucketRW
)

// String names the scheme as in Table 1.
func (s Scheme) String() string {
	switch s {
	case SchemeAtomicRecord:
		return "atomic load/store + global insert lock"
	case SchemeHTM:
		return "HTM + global lock fallback"
	case SchemeCOW:
		return "copy-on-write + atomic CAS"
	case SchemeBucketRW:
		return "fine-grained locking + spin lock"
	default:
		return fmt.Sprintf("Scheme(%d)", int(s))
	}
}

// OpStats accumulates the structural events of executed operations. Pass nil
// when the caller does not need accounting; implementations must tolerate a
// nil sink.
type OpStats struct {
	Ops          uint64 // operations accounted
	NodesVisited uint64 // tree nodes, delta records or buckets traversed
	Depth        uint64 // levels descended (cumulative)
	LinesTouched uint64 // distinct cache lines examined (estimate)
	BytesCopied  uint64 // bytes copied for COW / consolidation / splits
	CASFailures  uint64 // failed compare-and-swap attempts
	LockAcquires uint64 // pessimistic lock acquisitions
	Splits       uint64 // structural splits performed
	Consolidates uint64 // BW-Tree delta-chain consolidations
	DeltaLength  uint64 // cumulative delta-chain length walked (BW-Tree)
	FPProbes     uint64 // fingerprint comparisons (FP-Tree)
	HTMAborts    uint64 // software-HTM aborts on the real execution path
	HTMFallbacks uint64 // times the global-lock fallback was taken
}

// Add merges another accounting into s.
func (s *OpStats) Add(o OpStats) {
	s.Ops += o.Ops
	s.NodesVisited += o.NodesVisited
	s.Depth += o.Depth
	s.LinesTouched += o.LinesTouched
	s.BytesCopied += o.BytesCopied
	s.CASFailures += o.CASFailures
	s.LockAcquires += o.LockAcquires
	s.Splits += o.Splits
	s.Consolidates += o.Consolidates
	s.DeltaLength += o.DeltaLength
	s.FPProbes += o.FPProbes
	s.HTMAborts += o.HTMAborts
	s.HTMFallbacks += o.HTMFallbacks
}

// Visit records nodes visited and the cache lines they touched. It is safe
// to call on a nil sink, so implementations can account unconditionally.
func (s *OpStats) Visit(nodes, lines uint64) {
	if s == nil {
		return
	}
	s.NodesVisited += nodes
	s.LinesTouched += lines
}

// Index is the uniform access interface over all evaluated structures.
// Implementations are safe for concurrent use according to their Scheme.
type Index interface {
	// Name identifies the structure ("B-Tree", "FP-Tree", "BW-Tree",
	// "Hash Map") as used in the paper's figures.
	Name() string
	// Scheme returns the synchronisation scheme per Table 1.
	Scheme() Scheme
	// Get returns the value stored under k.
	Get(k uint64, st *OpStats) (uint64, bool)
	// Insert stores v under a fresh key k; it returns false and leaves the
	// structure unchanged when k is already present.
	Insert(k, v uint64, st *OpStats) bool
	// Update overwrites the value of an existing key in place; it returns
	// false when k is absent. Updates never cause structural maintenance
	// (no splits), matching the paper's read-update workload.
	Update(k, v uint64, st *OpStats) bool
	// Delete removes k; it returns false when k is absent. Deletions do
	// not rebalance (in-memory OLTP churn refills pages quickly, so all
	// four implementations — like many production main-memory indexes —
	// reclaim space lazily via splits/consolidation instead).
	Delete(k uint64, st *OpStats) bool
	// Len returns the number of keys stored.
	Len() int
}

// ConcurrentReadSafe is implemented by structures whose read operations
// (Get, Scan, Len) are safe — and, crucially, race-detector-clean — when
// executed by a foreign goroutine while a domain worker mutates the
// structure. The core runtime's read-bypass layer (core.SubmitRead) only
// arms a non-delegate read policy for structures that answer true; anything
// else silently degrades to always-delegate.
//
// "Safe" here is a memory-ordering property, not a linearizability one: a
// bypass read may observe logically torn mid-batch state, which is why the
// runtime discards any result whose validation window overlapped a mutating
// sweep batch. What the structure must guarantee is merely that the read
// itself cannot fault, loop, or read torn words — i.e. every field a reader
// dereferences concurrently with a writer is published via atomics or held
// under a shared lock the reader takes. Of the four evaluated structures:
//
//   - Hash Map (SchemeBucketRW): safe. Get takes the bucket's reader-writer
//     spin lock (an atomic-word lock) in read mode; entry values are
//     atomic.Uint64 and the chain links are immutable while the lock is held
//     shared.
//   - BW-Tree (SchemeCOW): safe. Readers traverse immutable delta records
//     reached through CAS-published mapping-table slots; nothing a reader
//     touches is ever written in place.
//   - FP-Tree (SchemeHTM): safe. Reads run inside the software-HTM
//     region's version-lock validation; inner-node content is COW behind an
//     atomic pointer and leaf fields are atomic. (Its reads allocate a
//     transaction descriptor, so it is bypass-safe but not allocation-free.)
//   - B-Tree (SchemeAtomicRecord): reports false. Its reads hold the
//     global structural lock in shared mode, so they are race-clean — but a
//     foreign bypass reader would spin on the very word the delegated
//     sweep's operations contend for, defeating the point of the bypass, so
//     the structure stays delegate-only (the paper's configuration for it).
type ConcurrentReadSafe interface {
	// ConcurrentReadSafe reports whether reads may run concurrently with the
	// owning domain's writers (under the runtime's validation protocol).
	ConcurrentReadSafe() bool
}

// Batch op kinds for BatchKernel.ExecBatch. The values are a wire-level
// contract with the delegation layer's typed KV slots (delegation.KVGet and
// friends mirror them numerically; a test pins the equality), which is what
// lets delegation drive kernels through a structural interface without an
// index import.
const (
	BatchGet uint8 = 1 + iota
	BatchInsert
	BatchUpdate
	BatchDelete
)

// BatchKernel is the interleaved batch-execution contract (DESIGN.md §15):
// a structure that implements it can execute a group of independent point
// operations with their traversal stages interleaved — hash/root for every
// op first, a software prefetch on each op's next node line, then the probe
// — so the group's dependent cache misses overlap (AMAC/group-prefetch
// style) instead of serialising one op at a time.
//
// Contract:
//
//   - Op i is kinds[i] (BatchGet/BatchInsert/BatchUpdate/BatchDelete) on
//     keys[i], with vals[i] as the value for inserts and updates.
//   - Effects and results MUST be identical to executing the ops serially in
//     index order with the Index methods: outOKs[i] is the op's boolean
//     result, and outVals[i] is the value Get returned (mutations store 0).
//     Conflicting keys inside one group therefore resolve in index order.
//   - The interleaved locate stage must be side-effect-free: it may read
//     optimistically (stale pointers are fine — prefetch.Line tolerates any
//     address) but must not publish anything. All mutation happens in the
//     in-order execute stage.
//   - The locate stage must also be race-clean against the structure's own
//     mutators running on other workers — with pooled sessions one
//     structure's ops may execute on several workers concurrently. Read
//     only atomically published pointers and immutable content, or take
//     the structure's locks for the walk.
//   - All five slices have equal length; the kernel must accept any length
//     (callers cap groups at their sweep width, but nothing here assumes it).
//
// The method takes no OpStats sink: batch execution is the delegated hot
// path, and accounting there is the observability layer's job. Structures
// without a kernel are simply executed serially by the sweep (the same
// silent-degrade pattern as ConcurrentReadSafe).
type BatchKernel interface {
	ExecBatch(kinds []uint8, keys, vals, outVals []uint64, outOKs []bool)
}

// Ranger is implemented by the ordered structures (the three trees) and
// supports ascending range scans, which the TPC-C engine needs for
// secondary-index lookups.
type Ranger interface {
	// Scan visits keys in [lo, hi] in ascending order until fn returns
	// false or the range is exhausted, and returns the number visited.
	Scan(lo, hi uint64, fn func(k, v uint64) bool, st *OpStats) int
}

// CacheLines estimates how many 64-byte lines a byte span occupies.
func CacheLines(bytes int) uint64 {
	if bytes <= 0 {
		return 0
	}
	return uint64((bytes + 63) / 64)
}
