// Package index defines the common contract for the main-memory index
// structures the paper evaluates (Table 1): an STX-style B+Tree, the
// FP-Tree, the Open BW-Tree and a TBB-style Hash Map. All four store 64-bit
// integer keys and values, matching the paper's YCSB setup.
//
// Every operation can optionally report its structural events through an
// OpStats sink. The machine simulator charges costs (cache lines touched,
// synchronisation events, allocations) from these real measurements rather
// than from canned curves.
package index

import "fmt"

// Scheme identifies the synchronisation scheme of a structure, as listed in
// Table 1 of the paper. The scheme decides which contention model the
// simulator applies.
type Scheme int

const (
	// SchemeAtomicRecord: no structural synchronisation by default;
	// modified with atomic load/store on records plus a global lock for
	// inserts (the paper's modified STX B+Tree).
	SchemeAtomicRecord Scheme = iota
	// SchemeHTM: hardware transactional memory for traversal with a
	// global-lock fallback path (FP-Tree).
	SchemeHTM
	// SchemeCOW: copy-on-write delta records installed with atomic CAS
	// (Open BW-Tree).
	SchemeCOW
	// SchemeBucketRW: fine-grained per-bucket reader-writer locking with a
	// spin lock (TBB-style Hash Map).
	SchemeBucketRW
)

// String names the scheme as in Table 1.
func (s Scheme) String() string {
	switch s {
	case SchemeAtomicRecord:
		return "atomic load/store + global insert lock"
	case SchemeHTM:
		return "HTM + global lock fallback"
	case SchemeCOW:
		return "copy-on-write + atomic CAS"
	case SchemeBucketRW:
		return "fine-grained locking + spin lock"
	default:
		return fmt.Sprintf("Scheme(%d)", int(s))
	}
}

// OpStats accumulates the structural events of executed operations. Pass nil
// when the caller does not need accounting; implementations must tolerate a
// nil sink.
type OpStats struct {
	Ops          uint64 // operations accounted
	NodesVisited uint64 // tree nodes, delta records or buckets traversed
	Depth        uint64 // levels descended (cumulative)
	LinesTouched uint64 // distinct cache lines examined (estimate)
	BytesCopied  uint64 // bytes copied for COW / consolidation / splits
	CASFailures  uint64 // failed compare-and-swap attempts
	LockAcquires uint64 // pessimistic lock acquisitions
	Splits       uint64 // structural splits performed
	Consolidates uint64 // BW-Tree delta-chain consolidations
	DeltaLength  uint64 // cumulative delta-chain length walked (BW-Tree)
	FPProbes     uint64 // fingerprint comparisons (FP-Tree)
	HTMAborts    uint64 // software-HTM aborts on the real execution path
	HTMFallbacks uint64 // times the global-lock fallback was taken
}

// Add merges another accounting into s.
func (s *OpStats) Add(o OpStats) {
	s.Ops += o.Ops
	s.NodesVisited += o.NodesVisited
	s.Depth += o.Depth
	s.LinesTouched += o.LinesTouched
	s.BytesCopied += o.BytesCopied
	s.CASFailures += o.CASFailures
	s.LockAcquires += o.LockAcquires
	s.Splits += o.Splits
	s.Consolidates += o.Consolidates
	s.DeltaLength += o.DeltaLength
	s.FPProbes += o.FPProbes
	s.HTMAborts += o.HTMAborts
	s.HTMFallbacks += o.HTMFallbacks
}

// Visit records nodes visited and the cache lines they touched. It is safe
// to call on a nil sink, so implementations can account unconditionally.
func (s *OpStats) Visit(nodes, lines uint64) {
	if s == nil {
		return
	}
	s.NodesVisited += nodes
	s.LinesTouched += lines
}

// Index is the uniform access interface over all evaluated structures.
// Implementations are safe for concurrent use according to their Scheme.
type Index interface {
	// Name identifies the structure ("B-Tree", "FP-Tree", "BW-Tree",
	// "Hash Map") as used in the paper's figures.
	Name() string
	// Scheme returns the synchronisation scheme per Table 1.
	Scheme() Scheme
	// Get returns the value stored under k.
	Get(k uint64, st *OpStats) (uint64, bool)
	// Insert stores v under a fresh key k; it returns false and leaves the
	// structure unchanged when k is already present.
	Insert(k, v uint64, st *OpStats) bool
	// Update overwrites the value of an existing key in place; it returns
	// false when k is absent. Updates never cause structural maintenance
	// (no splits), matching the paper's read-update workload.
	Update(k, v uint64, st *OpStats) bool
	// Delete removes k; it returns false when k is absent. Deletions do
	// not rebalance (in-memory OLTP churn refills pages quickly, so all
	// four implementations — like many production main-memory indexes —
	// reclaim space lazily via splits/consolidation instead).
	Delete(k uint64, st *OpStats) bool
	// Len returns the number of keys stored.
	Len() int
}

// Ranger is implemented by the ordered structures (the three trees) and
// supports ascending range scans, which the TPC-C engine needs for
// secondary-index lookups.
type Ranger interface {
	// Scan visits keys in [lo, hi] in ascending order until fn returns
	// false or the range is exhausted, and returns the number visited.
	Scan(lo, hi uint64, fn func(k, v uint64) bool, st *OpStats) int
}

// CacheLines estimates how many 64-byte lines a byte span occupies.
func CacheLines(bytes int) uint64 {
	if bytes <= 0 {
		return 0
	}
	return uint64((bytes + 63) / 64)
}
