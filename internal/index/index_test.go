package index_test

import (
	"strings"
	"testing"

	"robustconf/internal/index"
	"robustconf/internal/index/btree"
	"robustconf/internal/index/bwtree"
	"robustconf/internal/index/fptree"
	"robustconf/internal/index/hashmap"
)

// table1 mirrors the paper's Table 1: each structure must use its scheme.
func table1() map[string]index.Index {
	return map[string]index.Index{
		"B-Tree":   btree.New(),
		"FP-Tree":  fptree.New(),
		"BW-Tree":  bwtree.New(),
		"Hash Map": hashmap.New(),
	}
}

func TestTable1SchemesMatchPaper(t *testing.T) {
	want := map[string]index.Scheme{
		"B-Tree":   index.SchemeAtomicRecord,
		"FP-Tree":  index.SchemeHTM,
		"BW-Tree":  index.SchemeCOW,
		"Hash Map": index.SchemeBucketRW,
	}
	for name, idx := range table1() {
		if idx.Name() != name {
			t.Errorf("%s.Name() = %q", name, idx.Name())
		}
		if idx.Scheme() != want[name] {
			t.Errorf("%s.Scheme() = %v, want %v", name, idx.Scheme(), want[name])
		}
	}
}

func TestAllStructuresUniformBehaviour(t *testing.T) {
	for name, idx := range table1() {
		t.Run(name, func(t *testing.T) {
			for i := uint64(0); i < 1000; i++ {
				if !idx.Insert(i, i+1, nil) {
					t.Fatalf("Insert(%d) failed", i)
				}
			}
			if idx.Insert(0, 0, nil) {
				t.Error("duplicate insert accepted")
			}
			if !idx.Update(500, 42, nil) {
				t.Error("update failed")
			}
			if v, ok := idx.Get(500, nil); !ok || v != 42 {
				t.Errorf("Get(500) = %d,%v", v, ok)
			}
			if idx.Len() != 1000 {
				t.Errorf("Len = %d", idx.Len())
			}
		})
	}
}

func TestTreesImplementRanger(t *testing.T) {
	for _, name := range []string{"B-Tree", "FP-Tree", "BW-Tree"} {
		idx := table1()[name]
		r, ok := idx.(index.Ranger)
		if !ok {
			t.Errorf("%s does not implement Ranger", name)
			continue
		}
		for i := uint64(0); i < 100; i++ {
			idx.Insert(i, i, nil)
		}
		if n := r.Scan(10, 19, func(k, v uint64) bool { return true }, nil); n != 10 {
			t.Errorf("%s Scan = %d, want 10", name, n)
		}
	}
	if _, ok := any(hashmap.New()).(index.Ranger); ok {
		t.Error("Hash Map should not implement Ranger")
	}
}

func TestSchemeStrings(t *testing.T) {
	for _, s := range []index.Scheme{index.SchemeAtomicRecord, index.SchemeHTM, index.SchemeCOW, index.SchemeBucketRW} {
		if s.String() == "" || strings.HasPrefix(s.String(), "Scheme(") {
			t.Errorf("Scheme %d has no name", s)
		}
	}
	if !strings.Contains(index.Scheme(99).String(), "99") {
		t.Error("unknown scheme should carry its number")
	}
}

func TestCacheLines(t *testing.T) {
	cases := []struct {
		bytes int
		want  uint64
	}{{0, 0}, {-5, 0}, {1, 1}, {64, 1}, {65, 2}, {656, 11}}
	for _, c := range cases {
		if got := index.CacheLines(c.bytes); got != c.want {
			t.Errorf("CacheLines(%d) = %d, want %d", c.bytes, got, c.want)
		}
	}
}

func TestOpStatsAddAndNilVisit(t *testing.T) {
	var a, b index.OpStats
	a.Ops, a.Splits, a.HTMAborts = 1, 2, 3
	b.Ops, b.Splits, b.HTMAborts = 10, 20, 30
	a.Add(b)
	if a.Ops != 11 || a.Splits != 22 || a.HTMAborts != 33 {
		t.Errorf("Add result: %+v", a)
	}
	var nilStats *index.OpStats
	nilStats.Visit(1, 1) // must not panic
	a.Visit(2, 5)
	if a.NodesVisited != 2 || a.LinesTouched != 5 {
		t.Errorf("Visit result: %+v", a)
	}
}

func TestHashPartitioned(t *testing.T) {
	parts := []index.Index{btree.New(), btree.New(), btree.New(), btree.New()}
	p, err := index.NewHashPartitioned(parts)
	if err != nil {
		t.Fatal(err)
	}
	const n = 10000
	for i := uint64(0); i < n; i++ {
		if !p.Insert(i, i*2, nil) {
			t.Fatalf("Insert(%d) failed", i)
		}
	}
	if p.Len() != n {
		t.Fatalf("Len = %d", p.Len())
	}
	for i := uint64(0); i < n; i++ {
		if v, ok := p.Get(i, nil); !ok || v != i*2 {
			t.Fatalf("Get(%d) = %d,%v", i, v, ok)
		}
	}
	if !p.Update(5, 99, nil) {
		t.Error("Update failed")
	}
	if v, _ := p.Get(5, nil); v != 99 {
		t.Error("Update not visible")
	}
	// Each partition should hold a reasonable share (hash spreads evenly).
	for i := 0; i < p.Partitions(); i++ {
		share := p.Partition(i).Len()
		if share < n/8 || share > n/2 {
			t.Errorf("partition %d holds %d of %d keys — poor spread", i, share, n)
		}
	}
	if p.Scheme() != index.SchemeAtomicRecord {
		t.Errorf("Scheme = %v", p.Scheme())
	}
	if !strings.Contains(p.Name(), "B-Tree") {
		t.Errorf("Name = %q", p.Name())
	}
	// Hash partitioning cannot scan.
	if n := p.Scan(0, 100, func(k, v uint64) bool { return true }, nil); n != 0 {
		t.Errorf("hash-partitioned Scan = %d, want 0", n)
	}
}

func TestRangePartitioned(t *testing.T) {
	parts := []index.Index{btree.New(), btree.New(), btree.New()}
	p, err := index.NewRangePartitioned(parts, []uint64{1000, 2000})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 3000; i++ {
		p.Insert(i, i, nil)
	}
	if got := p.Partition(0).Len(); got != 1000 {
		t.Errorf("partition 0 holds %d", got)
	}
	if got := p.Partition(2).Len(); got != 1000 {
		t.Errorf("partition 2 holds %d", got)
	}
	// Scan across the partition boundary must stay ordered and complete.
	var got []uint64
	n := p.Scan(950, 1049, func(k, v uint64) bool {
		got = append(got, k)
		return true
	}, nil)
	if n != 100 {
		t.Fatalf("Scan = %d, want 100", n)
	}
	for i, k := range got {
		if k != uint64(950+i) {
			t.Fatalf("out of order at %d: %d", i, k)
		}
	}
	// Early termination across partitions.
	count := 0
	p.Scan(950, 3000, func(k, v uint64) bool {
		count++
		return count < 60 // crosses into partition 1 then stops
	}, nil)
	if count != 60 {
		t.Errorf("early-terminated scan visited %d", count)
	}
}

func TestPartitionedValidation(t *testing.T) {
	if _, err := index.NewHashPartitioned(nil); err == nil {
		t.Error("empty hash partitioning accepted")
	}
	if _, err := index.NewRangePartitioned(nil, nil); err == nil {
		t.Error("empty range partitioning accepted")
	}
	if _, err := index.NewRangePartitioned([]index.Index{btree.New(), btree.New()}, []uint64{}); err == nil {
		t.Error("missing bounds accepted")
	}
	if _, err := index.NewRangePartitioned([]index.Index{btree.New(), btree.New(), btree.New()}, []uint64{5, 5}); err == nil {
		t.Error("non-ascending bounds accepted")
	}
}
