package index_test

import (
	"math/rand"
	"sync"
	"testing"

	"robustconf/internal/index/btree"
	"robustconf/internal/index/bwtree"
	"robustconf/internal/index/fptree"
)

func TestInvariantsAfterSequentialLoad(t *testing.T) {
	bt, fp, bw := btree.New(), fptree.New(), bwtree.New()
	for i := uint64(0); i < 50000; i++ {
		bt.Insert(i, i, nil)
		fp.Insert(i, i, nil)
		bw.Insert(i, i, nil)
	}
	if err := bt.CheckInvariants(); err != nil {
		t.Errorf("btree: %v", err)
	}
	if err := fp.CheckInvariants(); err != nil {
		t.Errorf("fptree: %v", err)
	}
	if err := bw.CheckInvariants(); err != nil {
		t.Errorf("bwtree: %v", err)
	}
}

func TestInvariantsAfterRandomChurn(t *testing.T) {
	bt, fp, bw := btree.New(), fptree.New(), bwtree.New()
	r := rand.New(rand.NewSource(17))
	for i := 0; i < 60000; i++ {
		k := uint64(r.Intn(8000))
		switch r.Intn(3) {
		case 0:
			bt.Insert(k, k, nil)
			fp.Insert(k, k, nil)
			bw.Insert(k, k, nil)
		case 1:
			bt.Update(k, k+1, nil)
			fp.Update(k, k+1, nil)
			bw.Update(k, k+1, nil)
		case 2:
			bt.Delete(k, nil)
			fp.Delete(k, nil)
			bw.Delete(k, nil)
		}
	}
	if err := bt.CheckInvariants(); err != nil {
		t.Errorf("btree after churn: %v", err)
	}
	if err := fp.CheckInvariants(); err != nil {
		t.Errorf("fptree after churn: %v", err)
	}
	if err := bw.CheckInvariants(); err != nil {
		t.Errorf("bwtree after churn: %v", err)
	}
	// The three trees saw identical operations: contents must agree.
	if bt.Len() != fp.Len() || bt.Len() != bw.Len() {
		t.Errorf("tree sizes diverged: btree=%d fptree=%d bwtree=%d", bt.Len(), fp.Len(), bw.Len())
	}
}

func TestInvariantsAfterConcurrentChurnQuiesced(t *testing.T) {
	// Invariant checks require quiescence; churn concurrently, then stop
	// all writers and verify.
	fp, bw := fptree.New(), bwtree.New()
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for i := 0; i < 5000; i++ {
				k := uint64(r.Intn(2000))
				switch r.Intn(3) {
				case 0:
					fp.Insert(k, k, nil)
					bw.Insert(k, k, nil)
				case 1:
					fp.Update(k, k, nil)
					bw.Update(k, k, nil)
				case 2:
					fp.Delete(k, nil)
					bw.Delete(k, nil)
				}
			}
		}(int64(g))
	}
	wg.Wait()
	if err := fp.CheckInvariants(); err != nil {
		t.Errorf("fptree after concurrent churn: %v", err)
	}
	if err := bw.CheckInvariants(); err != nil {
		t.Errorf("bwtree after concurrent churn: %v", err)
	}
}

func TestInvariantsEmptyTrees(t *testing.T) {
	if err := btree.New().CheckInvariants(); err != nil {
		t.Errorf("empty btree: %v", err)
	}
	if err := fptree.New().CheckInvariants(); err != nil {
		t.Errorf("empty fptree: %v", err)
	}
	if err := bwtree.New().CheckInvariants(); err != nil {
		t.Errorf("empty bwtree: %v", err)
	}
}
