package index

import "fmt"

// Partitioned splits a key space across several Index instances — the
// application-side partitioning the paper expects the DBMS to perform before
// handing instances to the configuration process (Section 5.2). Partitioning
// is by key hash so Zipfian-skewed YCSB keys spread evenly, or by range when
// constructed with NewRangePartitioned (which preserves Scan).
type Partitioned struct {
	parts   []Index
	byRange bool
	// bounds[i] is the exclusive upper key of partition i (range mode).
	bounds []uint64
}

// NewHashPartitioned distributes keys across parts by multiplicative hash.
func NewHashPartitioned(parts []Index) (*Partitioned, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("index: need at least one partition")
	}
	return &Partitioned{parts: parts}, nil
}

// NewRangePartitioned distributes keys across parts by range; bounds must be
// ascending and hold len(parts)-1 split points.
func NewRangePartitioned(parts []Index, bounds []uint64) (*Partitioned, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("index: need at least one partition")
	}
	if len(bounds) != len(parts)-1 {
		return nil, fmt.Errorf("index: %d partitions need %d bounds, got %d", len(parts), len(parts)-1, len(bounds))
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			return nil, fmt.Errorf("index: bounds must be strictly ascending")
		}
	}
	return &Partitioned{parts: parts, byRange: true, bounds: bounds}, nil
}

// PartitionOf returns the partition index responsible for key k.
func (p *Partitioned) PartitionOf(k uint64) int {
	if p.byRange {
		lo, hi := 0, len(p.bounds)
		for lo < hi {
			mid := (lo + hi) / 2
			if p.bounds[mid] <= k {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return lo
	}
	h := k
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return int(h % uint64(len(p.parts)))
}

// Partition returns partition i.
func (p *Partitioned) Partition(i int) Index { return p.parts[i] }

// Partitions returns the number of partitions.
func (p *Partitioned) Partitions() int { return len(p.parts) }

// Name implements Index.
func (p *Partitioned) Name() string {
	return fmt.Sprintf("%s×%d", p.parts[0].Name(), len(p.parts))
}

// Scheme implements Index (all partitions share one scheme).
func (p *Partitioned) Scheme() Scheme { return p.parts[0].Scheme() }

// ConcurrentReadSafe reports whether every partition is safe for concurrent
// readers — the wrapper itself adds no shared mutable state, and a bypass
// read routes through PartitionOf exactly like a delegated one, so each
// validated local read stays confined to the single partition owning its
// key. One unsafe partition poisons the whole wrapper: the runtime's policy
// gating is per registered structure, and the wrapper is the structure.
func (p *Partitioned) ConcurrentReadSafe() bool {
	for _, part := range p.parts {
		crs, ok := part.(ConcurrentReadSafe)
		if !ok || !crs.ConcurrentReadSafe() {
			return false
		}
	}
	return true
}

// Get implements Index.
func (p *Partitioned) Get(k uint64, st *OpStats) (uint64, bool) {
	return p.parts[p.PartitionOf(k)].Get(k, st)
}

// Insert implements Index.
func (p *Partitioned) Insert(k, v uint64, st *OpStats) bool {
	return p.parts[p.PartitionOf(k)].Insert(k, v, st)
}

// Update implements Index.
func (p *Partitioned) Update(k, v uint64, st *OpStats) bool {
	return p.parts[p.PartitionOf(k)].Update(k, v, st)
}

// Delete implements Index.
func (p *Partitioned) Delete(k uint64, st *OpStats) bool {
	return p.parts[p.PartitionOf(k)].Delete(k, st)
}

// Len implements Index.
func (p *Partitioned) Len() int {
	n := 0
	for _, part := range p.parts {
		n += part.Len()
	}
	return n
}

// Scan implements Ranger for range-partitioned trees. It returns 0 for
// hash-partitioned or unordered partitions, whose global order is undefined.
func (p *Partitioned) Scan(lo, hi uint64, fn func(k, v uint64) bool, st *OpStats) int {
	if !p.byRange {
		return 0
	}
	total := 0
	stopped := false
	for i := p.PartitionOf(lo); i < len(p.parts) && !stopped; i++ {
		r, ok := p.parts[i].(Ranger)
		if !ok {
			return total
		}
		total += r.Scan(lo, hi, func(k, v uint64) bool {
			if !fn(k, v) {
				stopped = true
				return false
			}
			return true
		}, st)
	}
	return total
}
