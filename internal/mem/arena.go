// Package mem provides per-domain arena allocation in the SpeedMalloc
// style: each domain worker owns an Arena and bump-allocates transaction
// scratch (row copies, scan results, WAL effect records) from
// size-classed slabs, recycling everything at transaction / sweep-batch
// boundaries. The ownership rule mirrors the delegation runtime's: only
// the owning worker calls Alloc/Reset/Discard; Stats and Epoch are safe
// from any goroutine (they read atomics only) so the obs sampler can
// watch allocator pressure without synchronising with the worker.
//
// Memory handed out by Alloc is pointer-free ([]byte) so the GC never
// scans slab interiors. Data that crosses back to a client MUST be
// copied out before the sweep ends (the escape rule, DESIGN.md §14);
// holders that cache arena memory across operations must revalidate
// against Epoch.
package mem

import "sync/atomic"

// Size classes. An allocation of n bytes is served from the smallest
// class with capacity ≥ n; larger requests fall through to the Go heap
// and are counted as overflows. Class slabs are sized as a multiple of
// the class cap so even the largest class fits several allocations per
// slab.
var classCaps = [...]int{64, 512, 4096, 32768}

const (
	numClasses = len(classCaps)
	// slabAllocs is how many max-size allocations one slab of a class
	// holds. Tuned via Options.SlabAllocs.
	defaultSlabAllocs = 8
	align             = 8
)

// Options configures an Arena. The zero value is usable.
type Options struct {
	// SlabAllocs sizes each slab at SlabAllocs × classCap bytes.
	// 0 means the default (8).
	SlabAllocs int
	// MaxBytes caps total retained slab capacity. Once reached, new
	// slab growth is refused and allocations overflow to the heap
	// (counted). 0 means unlimited.
	MaxBytes int
}

type sizeClass struct {
	cap   int      // max allocation size for this class
	slab  []byte   // active slab being bump-allocated
	off   int      // bump offset into slab
	full  [][]byte // filled slabs awaiting Reset
	free  [][]byte // recycled slabs ready for reuse
	slabB int      // slab size in bytes
}

// Arena is a size-classed slab allocator owned by one goroutine.
type Arena struct {
	classes [numClasses]sizeClass
	opts    Options

	// Cross-thread-readable telemetry. Written only by the owner via
	// atomic stores; read by anyone.
	epoch     atomic.Uint64
	liveBytes atomic.Int64 // bytes handed out since last Reset
	capBytes  atomic.Int64 // total retained slab capacity
	overflows atomic.Int64 // allocations that fell through to the heap
	overflowB atomic.Int64 // bytes of those allocations
	resets    atomic.Int64
	discards  atomic.Int64

	live int // owner-local mirror of liveBytes (avoids RMW per alloc)
}

// Stats is a point-in-time snapshot of arena telemetry.
type Stats struct {
	Epoch         uint64
	LiveBytes     int64 // bytes handed out since the last reset
	CapBytes      int64 // retained slab capacity
	Overflows     int64 // cumulative heap-fallback allocations
	OverflowBytes int64
	Resets        int64
	Discards      int64
}

// New returns an empty Arena. Slabs are allocated lazily on first use
// of each size class, so an arena for a domain that never materialises
// rows costs nothing.
func New(opts Options) *Arena {
	if opts.SlabAllocs <= 0 {
		opts.SlabAllocs = defaultSlabAllocs
	}
	a := &Arena{opts: opts}
	for i := range a.classes {
		a.classes[i].cap = classCaps[i]
		a.classes[i].slabB = classCaps[i] * opts.SlabAllocs
	}
	return a
}

// Alloc returns a zeroed(-on-first-use) byte slice of length n valid
// until the next Reset or Discard. Contents of recycled memory are NOT
// cleared on Reset — callers own initialisation, and nothing may hold a
// reference across a reset (enforced by Epoch validation in holders and
// the bypass seqlock at the runtime layer). Owner-only.
func (a *Arena) Alloc(n int) []byte {
	if n == 0 {
		return nil
	}
	need := (n + align - 1) &^ (align - 1)
	for i := range a.classes {
		c := &a.classes[i]
		if need > c.cap {
			continue
		}
		if c.off+need > len(c.slab) {
			if !a.growClass(c) {
				break // capacity-limited: overflow to heap
			}
		}
		b := c.slab[c.off : c.off+n : c.off+need]
		c.off += need
		a.live += need
		a.liveBytes.Store(int64(a.live))
		return b
	}
	// Oversized or capacity-limited: fall back to the heap, counted so
	// the obs layer can surface mis-sized configurations.
	a.overflows.Add(1)
	a.overflowB.Add(int64(n))
	return make([]byte, n)
}

// growClass installs a fresh slab for c, recycling one if available.
// Returns false when MaxBytes would be exceeded; the active slab is
// only retired once a replacement is in hand.
func (a *Arena) growClass(c *sizeClass) bool {
	if k := len(c.free); k > 0 {
		if c.slab != nil {
			c.full = append(c.full, c.slab)
		}
		c.slab = c.free[k-1]
		c.free[k-1] = nil
		c.free = c.free[:k-1]
		c.off = 0
		return true
	}
	if a.opts.MaxBytes > 0 && int(a.capBytes.Load())+c.slabB > a.opts.MaxBytes {
		return false
	}
	if c.slab != nil {
		c.full = append(c.full, c.slab)
	}
	c.slab = make([]byte, c.slabB)
	c.off = 0
	a.capBytes.Add(int64(c.slabB))
	return true
}

// Reset recycles every slab for reuse and bumps the epoch. All slices
// previously returned by Alloc become invalid (their bytes will be
// rewritten by future allocations). Owner-only; the runtime calls this
// at sweep-batch boundaries and under the checkpoint quiesce gate.
func (a *Arena) Reset() {
	for i := range a.classes {
		c := &a.classes[i]
		for j, s := range c.full {
			c.free = append(c.free, s)
			c.full[j] = nil
		}
		c.full = c.full[:0]
		c.off = 0
	}
	a.live = 0
	a.liveBytes.Store(0)
	a.resets.Add(1)
	a.epoch.Add(1)
}

// Discard drops every slab back to the garbage collector and bumps the
// epoch. Used on crash recovery: replay must never see recycled memory,
// so the respawned worker starts from virgin slabs. Owner-only (called
// by the supervisor while the domain is quiesced).
func (a *Arena) Discard() {
	for i := range a.classes {
		c := &a.classes[i]
		c.slab = nil
		c.off = 0
		for j := range c.full {
			c.full[j] = nil
		}
		for j := range c.free {
			c.free[j] = nil
		}
		c.full = c.full[:0]
		c.free = c.free[:0]
	}
	a.live = 0
	a.liveBytes.Store(0)
	a.capBytes.Store(0)
	a.discards.Add(1)
	a.epoch.Add(1)
}

// Epoch returns the reset/discard generation. Holders that cache arena
// memory must capture Epoch at allocation time and revalidate before
// reuse. Safe from any goroutine.
func (a *Arena) Epoch() uint64 { return a.epoch.Load() }

// Snapshot returns current telemetry. Safe from any goroutine.
func (a *Arena) Snapshot() Stats {
	return Stats{
		Epoch:         a.epoch.Load(),
		LiveBytes:     a.liveBytes.Load(),
		CapBytes:      a.capBytes.Load(),
		Overflows:     a.overflows.Load(),
		OverflowBytes: a.overflowB.Load(),
		Resets:        a.resets.Load(),
		Discards:      a.discards.Load(),
	}
}

// Occupancy returns live/capacity in [0,1]; 0 when no slabs are
// retained. Safe from any goroutine.
func (a *Arena) Occupancy() float64 {
	capB := a.capBytes.Load()
	if capB == 0 {
		return 0
	}
	occ := float64(a.liveBytes.Load()) / float64(capB)
	if occ > 1 {
		occ = 1
	}
	return occ
}
