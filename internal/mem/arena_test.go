package mem

import (
	"sync"
	"testing"
)

func TestAllocBasics(t *testing.T) {
	a := New(Options{})
	sizes := []int{1, 7, 8, 63, 64, 65, 511, 512, 513, 4096, 4097, 32768}
	var got [][]byte
	for _, n := range sizes {
		b := a.Alloc(n)
		if len(b) != n {
			t.Fatalf("Alloc(%d) len=%d", n, len(b))
		}
		for i := range b {
			b[i] = byte(n)
		}
		got = append(got, b)
	}
	// No two live allocations may share bytes within a reset window.
	for i, b := range got {
		for j := range b {
			if b[j] != byte(sizes[i]) {
				t.Fatalf("allocation %d (size %d) clobbered at byte %d: got %d", i, sizes[i], j, b[j])
			}
		}
	}
	if s := a.Snapshot(); s.Overflows != 0 {
		t.Fatalf("unexpected overflows: %+v", s)
	}
	if a.Alloc(0) != nil {
		t.Fatal("Alloc(0) should be nil")
	}
}

func TestOversizedOverflows(t *testing.T) {
	a := New(Options{})
	b := a.Alloc(classCaps[numClasses-1] + 1)
	if len(b) != classCaps[numClasses-1]+1 {
		t.Fatalf("oversized alloc len=%d", len(b))
	}
	s := a.Snapshot()
	if s.Overflows != 1 || s.OverflowBytes != int64(classCaps[numClasses-1]+1) {
		t.Fatalf("overflow not counted: %+v", s)
	}
}

func TestMaxBytesOverflows(t *testing.T) {
	a := New(Options{SlabAllocs: 1, MaxBytes: 64})
	if b := a.Alloc(64); len(b) != 64 {
		t.Fatal("first slab alloc failed")
	}
	// Second 64B allocation needs a second slab in class 0 but MaxBytes
	// is exhausted; it must still succeed, via the heap.
	if b := a.Alloc(64); len(b) != 64 {
		t.Fatal("overflow alloc failed")
	}
	if s := a.Snapshot(); s.Overflows == 0 {
		t.Fatalf("capacity overflow not counted: %+v", s)
	}
}

func TestResetRecyclesWithoutGrowth(t *testing.T) {
	a := New(Options{})
	warm := func() {
		for i := 0; i < 50; i++ {
			a.Alloc(48)
			a.Alloc(200)
			a.Alloc(2000)
		}
		a.Reset()
	}
	warm()
	capAfterWarm := a.Snapshot().CapBytes
	allocs := testing.AllocsPerRun(100, warm)
	if allocs != 0 {
		t.Fatalf("steady-state arena cycle allocates: %v allocs/op", allocs)
	}
	if got := a.Snapshot().CapBytes; got != capAfterWarm {
		t.Fatalf("capacity grew across steady-state cycles: %d -> %d", capAfterWarm, got)
	}
	if s := a.Snapshot(); s.Overflows != 0 {
		t.Fatalf("unexpected overflows: %+v", s)
	}
}

func TestEpochAndDiscard(t *testing.T) {
	a := New(Options{})
	e0 := a.Epoch()
	a.Alloc(100)
	a.Reset()
	if a.Epoch() != e0+1 {
		t.Fatalf("Reset must bump epoch: %d -> %d", e0, a.Epoch())
	}
	a.Alloc(100)
	a.Discard()
	if a.Epoch() != e0+2 {
		t.Fatalf("Discard must bump epoch: got %d", a.Epoch())
	}
	s := a.Snapshot()
	if s.CapBytes != 0 || s.LiveBytes != 0 {
		t.Fatalf("Discard must drop all slabs: %+v", s)
	}
	if s.Resets != 1 || s.Discards != 1 {
		t.Fatalf("counter mismatch: %+v", s)
	}
	// Arena is reusable after Discard.
	if b := a.Alloc(64); len(b) != 64 {
		t.Fatal("alloc after discard failed")
	}
}

func TestOccupancy(t *testing.T) {
	a := New(Options{})
	if a.Occupancy() != 0 {
		t.Fatal("empty arena occupancy != 0")
	}
	a.Alloc(64)
	if occ := a.Occupancy(); occ <= 0 || occ > 1 {
		t.Fatalf("occupancy out of range: %v", occ)
	}
	a.Reset()
	if a.Occupancy() != 0 {
		t.Fatalf("post-reset occupancy: %v", a.Occupancy())
	}
}

// TestSnapshotConcurrent exercises the cross-goroutine telemetry reads
// (obs sampler shape) under -race while the owner allocates and resets.
func TestSnapshotConcurrent(t *testing.T) {
	a := New(Options{})
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			_ = a.Snapshot()
			_ = a.Occupancy()
			_ = a.Epoch()
		}
	}()
	for i := 0; i < 10000; i++ {
		a.Alloc(i%1000 + 1)
		if i%64 == 63 {
			a.Reset()
		}
	}
	a.Discard()
	close(done)
	wg.Wait()
}

func BenchmarkArenaAllocReset(b *testing.B) {
	a := New(Options{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Alloc(48)
		a.Alloc(200)
		a.Alloc(2000)
		if i%16 == 15 {
			a.Reset()
		}
	}
}
