package metrics

import (
	"fmt"
	"sync/atomic"
)

// FaultCounters aggregates the runtime's fault-tolerance events. The core
// runtime increments them as workers crash, respawn, or exhaust their
// restart budget; the chaos harness and operators read them to verify that
// failures were observed and handled rather than silently swallowed.
type FaultCounters struct {
	WorkerPanics      atomic.Uint64 // panics escaping a worker's sweep (crashes)
	WorkerRestarts    atomic.Uint64 // successful respawns after a crash
	RestartsExhausted atomic.Uint64 // workers retired after blowing the budget
	TasksFailed       atomic.Uint64 // futures completed with a typed error
	RescuedPosts      atomic.Uint64 // posts into sealed buffers answered with ErrWorkerStopped
}

// Faults is the process-wide fault counter set the core runtime reports to.
var Faults = &FaultCounters{}

// FaultSnapshot is a point-in-time copy of the counters.
type FaultSnapshot struct {
	WorkerPanics      uint64
	WorkerRestarts    uint64
	RestartsExhausted uint64
	TasksFailed       uint64
	RescuedPosts      uint64
}

// Snapshot copies the current counter values.
func (c *FaultCounters) Snapshot() FaultSnapshot {
	return FaultSnapshot{
		WorkerPanics:      c.WorkerPanics.Load(),
		WorkerRestarts:    c.WorkerRestarts.Load(),
		RestartsExhausted: c.RestartsExhausted.Load(),
		TasksFailed:       c.TasksFailed.Load(),
		RescuedPosts:      c.RescuedPosts.Load(),
	}
}

// Reset zeroes the counters (tests and benchmark harnesses).
func (c *FaultCounters) Reset() {
	c.WorkerPanics.Store(0)
	c.WorkerRestarts.Store(0)
	c.RestartsExhausted.Store(0)
	c.TasksFailed.Store(0)
	c.RescuedPosts.Store(0)
}

func (s FaultSnapshot) String() string {
	return fmt.Sprintf("panics=%d restarts=%d exhausted=%d failed=%d rescued=%d",
		s.WorkerPanics, s.WorkerRestarts, s.RestartsExhausted, s.TasksFailed, s.RescuedPosts)
}
