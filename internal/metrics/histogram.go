package metrics

import (
	"fmt"
	"math"
	"strings"
	"sync/atomic"
)

// Histogram is a lock-free log₂-bucketed latency histogram: values (e.g.
// nanoseconds) land in the bucket of their bit length. Concurrent Record
// calls are safe; reads are advisory snapshots. The paper's burst-size
// discussion ("best performance … with only a minimal increase in latency")
// is the kind of claim this backs up on real runs.
type Histogram struct {
	buckets [64]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64
	max     atomic.Uint64
}

// Record adds one observation.
func (h *Histogram) Record(v uint64) {
	h.buckets[bitLen(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

func bitLen(v uint64) int {
	n := 0
	for v > 0 {
		v >>= 1
		n++
	}
	if n >= 64 {
		return 63
	}
	return n
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Mean returns the arithmetic mean of the observations.
func (h *Histogram) Mean() float64 {
	c := h.count.Load()
	if c == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(c)
}

// Max returns the largest observation.
func (h *Histogram) Max() uint64 { return h.max.Load() }

// Snapshot copies the histogram's state at bucket granularity. The copy is
// advisory (concurrent Records may land between bucket loads) but every
// field is individually consistent, which is all the quantile math needs.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	for b := range h.buckets {
		s.Buckets[b] = h.buckets[b].Load()
	}
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	s.Max = h.max.Load()
	return s
}

// Quantile returns the q-quantile (0 < q ≤ 1) of the observations with
// linear interpolation inside the log₂ bucket the quantile's rank lands in,
// so reports can print p50/p99 tighter than the factor-of-2 bucket bound
// Percentile gives. The top bucket is clamped to the observed maximum.
func (h *Histogram) Quantile(q float64) float64 { return h.Snapshot().Quantile(q) }

// HistogramSnapshot is a point-in-time copy of a Histogram, exposing the
// raw log₂ buckets for exposition formats (e.g. Prometheus text) and
// offline quantile math.
type HistogramSnapshot struct {
	Buckets [64]uint64 // bucket b counts observations of bit length b
	Count   uint64
	Sum     uint64
	Max     uint64
}

// Mean returns the arithmetic mean of the snapshot's observations.
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Quantile returns the q-quantile (0 < q ≤ 1) with linear interpolation
// inside the bucket: bucket b (b ≥ 1) spans [2^(b-1), 2^b-1], and the
// quantile's rank positions the estimate proportionally inside that span.
// The highest non-empty bucket is clamped to the observed maximum so
// Quantile(1) returns exactly Max.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if q <= 0 || q > 1 || s.Count == 0 {
		return 0
	}
	target := uint64(math.Ceil(q * float64(s.Count)))
	if target == 0 {
		target = 1
	}
	top := 0
	for b := 0; b < 64; b++ {
		if s.Buckets[b] > 0 {
			top = b
		}
	}
	var cum uint64
	for b := 0; b < 64; b++ {
		cnt := s.Buckets[b]
		if cnt == 0 {
			continue
		}
		if cum+cnt >= target {
			if b == 0 {
				return 0
			}
			lo := float64(uint64(1) << uint(b-1))
			hi := float64(uint64(1)<<uint(b)) - 1
			if b == top && float64(s.Max) >= lo {
				hi = float64(s.Max)
			}
			f := float64(target-cum) / float64(cnt)
			return lo + f*(hi-lo)
		}
		cum += cnt
	}
	return float64(s.Max)
}

// Sub returns the window delta s − prev: the observations recorded between
// the two snapshots, suitable for windowed quantile math. It is
// underflow-safe: snapshots are advisory (concurrent Records may land
// between field loads) and windowing may race a counter reset, so any
// per-bucket or Sum difference that would underflow clamps to zero instead
// of wrapping. Count is recomputed from the clamped buckets so the quantile
// rank math stays internally consistent. Max carries the cumulative maximum
// (a per-window max is not recoverable from counters), so windowed
// Quantile() estimates inside the top bucket are clamped by the all-time
// max — an upper bound, documented rather than hidden.
func (s HistogramSnapshot) Sub(prev HistogramSnapshot) HistogramSnapshot {
	var out HistogramSnapshot
	for b := range s.Buckets {
		if s.Buckets[b] > prev.Buckets[b] {
			out.Buckets[b] = s.Buckets[b] - prev.Buckets[b]
			out.Count += out.Buckets[b]
		}
	}
	if s.Sum > prev.Sum {
		out.Sum = s.Sum - prev.Sum
	}
	out.Max = s.Max
	return out
}

// Merge accumulates another snapshot into s (summed buckets/count/sum,
// max of maxes) — used when several shards observe the same metric.
func (s *HistogramSnapshot) Merge(o HistogramSnapshot) {
	for b := range s.Buckets {
		s.Buckets[b] += o.Buckets[b]
	}
	s.Count += o.Count
	s.Sum += o.Sum
	if o.Max > s.Max {
		s.Max = o.Max
	}
}

// Percentile returns an upper bound of the p-quantile (0 < p ≤ 1) at
// bucket resolution (a factor of 2).
func (h *Histogram) Percentile(p float64) uint64 {
	if p <= 0 || p > 1 {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	target := uint64(math.Ceil(p * float64(total)))
	var cum uint64
	for b := 0; b < 64; b++ {
		cum += h.buckets[b].Load()
		if cum >= target {
			if b == 0 {
				return 0
			}
			return 1<<uint(b) - 1 // upper bound of the bucket
		}
	}
	return h.max.Load()
}

// String renders count, mean and the common latency quantiles
// (interpolated — see Quantile).
func (h *Histogram) String() string {
	var b strings.Builder
	s := h.Snapshot()
	fmt.Fprintf(&b, "n=%d mean=%.0f p50=%.0f p95=%.0f p99=%.0f max=%d",
		s.Count, s.Mean(), s.Quantile(0.5), s.Quantile(0.95), s.Quantile(0.99), s.Max)
	return b.String()
}
