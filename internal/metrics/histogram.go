package metrics

import (
	"fmt"
	"math"
	"strings"
	"sync/atomic"
)

// Histogram is a lock-free log₂-bucketed latency histogram: values (e.g.
// nanoseconds) land in the bucket of their bit length. Concurrent Record
// calls are safe; reads are advisory snapshots. The paper's burst-size
// discussion ("best performance … with only a minimal increase in latency")
// is the kind of claim this backs up on real runs.
type Histogram struct {
	buckets [64]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64
	max     atomic.Uint64
}

// Record adds one observation.
func (h *Histogram) Record(v uint64) {
	h.buckets[bitLen(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

func bitLen(v uint64) int {
	n := 0
	for v > 0 {
		v >>= 1
		n++
	}
	if n >= 64 {
		return 63
	}
	return n
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Mean returns the arithmetic mean of the observations.
func (h *Histogram) Mean() float64 {
	c := h.count.Load()
	if c == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(c)
}

// Max returns the largest observation.
func (h *Histogram) Max() uint64 { return h.max.Load() }

// Percentile returns an upper bound of the p-quantile (0 < p ≤ 1) at
// bucket resolution (a factor of 2).
func (h *Histogram) Percentile(p float64) uint64 {
	if p <= 0 || p > 1 {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	target := uint64(math.Ceil(p * float64(total)))
	var cum uint64
	for b := 0; b < 64; b++ {
		cum += h.buckets[b].Load()
		if cum >= target {
			if b == 0 {
				return 0
			}
			return 1<<uint(b) - 1 // upper bound of the bucket
		}
	}
	return h.max.Load()
}

// String renders count, mean and the common latency quantiles.
func (h *Histogram) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "n=%d mean=%.0f p50≤%d p95≤%d p99≤%d max=%d",
		h.Count(), h.Mean(), h.Percentile(0.5), h.Percentile(0.95), h.Percentile(0.99), h.Max())
	return b.String()
}
