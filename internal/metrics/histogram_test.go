package metrics

import (
	"math"
	"sync"
	"testing"
	"testing/quick"
)

func TestQuantileInterpolates(t *testing.T) {
	var h Histogram
	// 64 values uniformly filling bucket 7 ([64, 127]).
	for v := uint64(64); v < 128; v++ {
		h.Record(v)
	}
	// The bucket-resolution Percentile can only answer 127 for any q; the
	// interpolated Quantile should track the uniform distribution.
	if p := h.Percentile(0.5); p != 127 {
		t.Fatalf("Percentile(0.5) = %d, want bucket bound 127", p)
	}
	q50 := h.Quantile(0.5)
	if q50 < 90 || q50 > 100 {
		t.Errorf("Quantile(0.5) = %.1f, want ≈95 (midpoint of [64,127])", q50)
	}
	q01 := h.Quantile(0.01)
	if q01 < 64 || q01 > 66 {
		t.Errorf("Quantile(0.01) = %.1f, want ≈64 (bucket floor)", q01)
	}
	if q := h.Quantile(1); q != 127 {
		t.Errorf("Quantile(1) = %.1f, want exactly max 127", q)
	}
}

func TestQuantileEdgeCases(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 {
		t.Error("empty histogram quantile should be 0")
	}
	h.Record(0)
	h.Record(0)
	if h.Quantile(0.5) != 0 {
		t.Error("all-zero sample quantile should be 0")
	}
	if h.Quantile(0) != 0 || h.Quantile(1.5) != 0 {
		t.Error("out-of-range q should yield 0")
	}
	var one Histogram
	one.Record(1000)
	if q := one.Quantile(0.5); q != 1000 {
		t.Errorf("single-observation Quantile(0.5) = %.1f, want clamped to max 1000", q)
	}
}

func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(vals []uint32) bool {
		var h Histogram
		for _, v := range vals {
			h.Record(uint64(v))
		}
		prev := -1.0
		for _, q := range []float64{0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0} {
			v := h.Quantile(q)
			if v < prev {
				return false
			}
			prev = v
		}
		// The interpolated quantile never exceeds the bucket upper bound.
		return len(vals) == 0 || h.Quantile(0.5) <= float64(h.Percentile(0.5))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSnapshotAndMerge(t *testing.T) {
	var a, b Histogram
	for _, v := range []uint64{1, 2, 4, 8} {
		a.Record(v)
	}
	for _, v := range []uint64{100, 1000} {
		b.Record(v)
	}
	sa, sb := a.Snapshot(), b.Snapshot()
	if sa.Count != 4 || sa.Sum != 15 || sa.Max != 8 {
		t.Errorf("snapshot a = count %d sum %d max %d", sa.Count, sa.Sum, sa.Max)
	}
	sa.Merge(sb)
	if sa.Count != 6 || sa.Sum != 1115 || sa.Max != 1000 {
		t.Errorf("merged = count %d sum %d max %d", sa.Count, sa.Sum, sa.Max)
	}
	if math.Abs(sa.Mean()-1115.0/6) > 1e-9 {
		t.Errorf("merged mean = %v", sa.Mean())
	}
	// Merged quantiles behave like one histogram over the union.
	var u Histogram
	for _, v := range []uint64{1, 2, 4, 8, 100, 1000} {
		u.Record(v)
	}
	if got, want := sa.Quantile(0.99), u.Quantile(0.99); got != want {
		t.Errorf("merged Quantile(0.99) = %v, union's = %v", got, want)
	}
}

// TestHistogramRecordSnapshotConcurrent hammers Record from several
// goroutines while others snapshot and read quantiles — the shard
// aggregation pattern of internal/obs. Run under -race (make verify).
func TestHistogramRecordSnapshotConcurrent(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20000; i++ {
				h.Record(uint64(g*4096 + i))
			}
		}(g)
	}
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				s := h.Snapshot()
				if s.Count > 0 && s.Quantile(0.99) < s.Quantile(0.5) {
					t.Error("p99 < p50 on a live snapshot")
					return
				}
				_ = h.String()
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for g := 0; g < 4; g++ {
			for i := 0; i < 20000; i++ {
				_ = h.Count()
			}
		}
		close(stop)
	}()
	wg.Wait()
	if h.Count() != 80000 {
		t.Errorf("Count = %d, want 80000", h.Count())
	}
}

// TestHistogramRecordNoAlloc pins Record as allocation-free: it sits on the
// observability sampling path, which must not add GC pressure.
func TestHistogramRecordNoAlloc(t *testing.T) {
	var h Histogram
	if n := testing.AllocsPerRun(1000, func() { h.Record(1234) }); n != 0 {
		t.Errorf("Record allocates %.1f objects per call, want 0", n)
	}
}

// BenchmarkHistogramRecord shows Record's cost and that it stays
// allocation-free (see -benchmem).
func BenchmarkHistogramRecord(b *testing.B) {
	var h Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Record(uint64(i))
	}
}

// TestSnapshotQuantileEmptyAndSingleBucket pins the snapshot-level edge
// cases the windowing code leans on: a zero snapshot (a window with no
// samples) must answer 0 for every q, and a single-bucket snapshot must
// interpolate inside that one bucket with the top clamped to Max.
func TestSnapshotQuantileEmptyAndSingleBucket(t *testing.T) {
	var empty HistogramSnapshot
	for _, q := range []float64{0.01, 0.5, 0.99, 1} {
		if v := empty.Quantile(q); v != 0 {
			t.Errorf("empty snapshot Quantile(%g) = %g, want 0", q, v)
		}
	}
	if empty.Mean() != 0 {
		t.Errorf("empty snapshot Mean = %g, want 0", empty.Mean())
	}

	var h Histogram
	for v := uint64(64); v < 96; v++ { // all land in bucket 7: [64,127]
		h.Record(v)
	}
	s := h.Snapshot()
	if q := s.Quantile(0.01); q < 64 || q > 67 {
		t.Errorf("single-bucket Quantile(0.01) = %g, want ≈64", q)
	}
	if q := s.Quantile(1); q != float64(s.Max) {
		t.Errorf("single-bucket Quantile(1) = %g, want max %d", q, s.Max)
	}
	if q50 := s.Quantile(0.5); q50 < 64 || q50 > float64(s.Max) {
		t.Errorf("single-bucket Quantile(0.5) = %g outside [64, %d]", q50, s.Max)
	}

	var zeroOnly Histogram
	zeroOnly.Record(0) // bucket 0 is the single bucket
	if q := zeroOnly.Snapshot().Quantile(0.5); q != 0 {
		t.Errorf("bucket-0-only Quantile(0.5) = %g, want 0", q)
	}
}

// TestSnapshotSub exercises the window-delta helper: exact deltas between
// two snapshots of the same histogram, and clamped (not wrapped) fields
// when prev is ahead of cur.
func TestSnapshotSub(t *testing.T) {
	var h Histogram
	for _, v := range []uint64{10, 20, 30} {
		h.Record(v)
	}
	prev := h.Snapshot()
	for _, v := range []uint64{100, 200, 400000} {
		h.Record(v)
	}
	cur := h.Snapshot()

	d := cur.Sub(prev)
	if d.Count != 3 {
		t.Errorf("delta Count = %d, want 3", d.Count)
	}
	if d.Sum != 100+200+400000 {
		t.Errorf("delta Sum = %d, want %d", d.Sum, 100+200+400000)
	}
	if d.Max != cur.Max {
		t.Errorf("delta Max = %d, want cumulative max %d", d.Max, cur.Max)
	}
	// The delta's quantiles reflect only the window's observations.
	if q := d.Quantile(0.5); q < 128 || q > 255 {
		t.Errorf("delta Quantile(0.5) = %g, want inside 200's bucket [128,255]", q)
	}
	// Self-delta is the zero window.
	z := cur.Sub(cur)
	if z.Count != 0 || z.Sum != 0 || z.Quantile(0.99) != 0 {
		t.Errorf("self Sub not zero: %+v", z)
	}
}

// TestSnapshotSubUnderflowSafe feeds Sub a prev that is ahead of cur (a
// reset or a torn advisory snapshot) and checks every field clamps at zero
// and Count stays consistent with the clamped buckets.
func TestSnapshotSubUnderflowSafe(t *testing.T) {
	var a, b Histogram
	a.Record(10)
	for _, v := range []uint64{10, 10, 1000} {
		b.Record(v)
	}
	d := a.Snapshot().Sub(b.Snapshot()) // prev ahead of cur everywhere
	var bucketSum uint64
	for _, c := range d.Buckets {
		bucketSum += c
	}
	if d.Count != bucketSum {
		t.Errorf("Count %d inconsistent with clamped bucket sum %d", d.Count, bucketSum)
	}
	if d.Count != 0 || d.Sum != 0 {
		t.Errorf("underflow not clamped: count=%d sum=%d", d.Count, d.Sum)
	}
	// Mixed case: one bucket ahead, one behind — only the genuine growth
	// survives.
	var c1, c2 Histogram
	c1.Record(10) // bucket 4
	c1.Record(10)
	c1.Record(1000) // bucket 10
	c2.Record(10)
	c2.Record(1000)
	c2.Record(1000)
	d = c1.Snapshot().Sub(c2.Snapshot())
	if d.Buckets[4] != 1 || d.Buckets[10] != 0 || d.Count != 1 {
		t.Errorf("mixed clamp wrong: b4=%d b10=%d count=%d", d.Buckets[4], d.Buckets[10], d.Count)
	}
}
