package metrics

import (
	"math"
	"sync"
	"testing"
	"testing/quick"
)

func TestQuantileInterpolates(t *testing.T) {
	var h Histogram
	// 64 values uniformly filling bucket 7 ([64, 127]).
	for v := uint64(64); v < 128; v++ {
		h.Record(v)
	}
	// The bucket-resolution Percentile can only answer 127 for any q; the
	// interpolated Quantile should track the uniform distribution.
	if p := h.Percentile(0.5); p != 127 {
		t.Fatalf("Percentile(0.5) = %d, want bucket bound 127", p)
	}
	q50 := h.Quantile(0.5)
	if q50 < 90 || q50 > 100 {
		t.Errorf("Quantile(0.5) = %.1f, want ≈95 (midpoint of [64,127])", q50)
	}
	q01 := h.Quantile(0.01)
	if q01 < 64 || q01 > 66 {
		t.Errorf("Quantile(0.01) = %.1f, want ≈64 (bucket floor)", q01)
	}
	if q := h.Quantile(1); q != 127 {
		t.Errorf("Quantile(1) = %.1f, want exactly max 127", q)
	}
}

func TestQuantileEdgeCases(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 {
		t.Error("empty histogram quantile should be 0")
	}
	h.Record(0)
	h.Record(0)
	if h.Quantile(0.5) != 0 {
		t.Error("all-zero sample quantile should be 0")
	}
	if h.Quantile(0) != 0 || h.Quantile(1.5) != 0 {
		t.Error("out-of-range q should yield 0")
	}
	var one Histogram
	one.Record(1000)
	if q := one.Quantile(0.5); q != 1000 {
		t.Errorf("single-observation Quantile(0.5) = %.1f, want clamped to max 1000", q)
	}
}

func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(vals []uint32) bool {
		var h Histogram
		for _, v := range vals {
			h.Record(uint64(v))
		}
		prev := -1.0
		for _, q := range []float64{0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0} {
			v := h.Quantile(q)
			if v < prev {
				return false
			}
			prev = v
		}
		// The interpolated quantile never exceeds the bucket upper bound.
		return len(vals) == 0 || h.Quantile(0.5) <= float64(h.Percentile(0.5))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSnapshotAndMerge(t *testing.T) {
	var a, b Histogram
	for _, v := range []uint64{1, 2, 4, 8} {
		a.Record(v)
	}
	for _, v := range []uint64{100, 1000} {
		b.Record(v)
	}
	sa, sb := a.Snapshot(), b.Snapshot()
	if sa.Count != 4 || sa.Sum != 15 || sa.Max != 8 {
		t.Errorf("snapshot a = count %d sum %d max %d", sa.Count, sa.Sum, sa.Max)
	}
	sa.Merge(sb)
	if sa.Count != 6 || sa.Sum != 1115 || sa.Max != 1000 {
		t.Errorf("merged = count %d sum %d max %d", sa.Count, sa.Sum, sa.Max)
	}
	if math.Abs(sa.Mean()-1115.0/6) > 1e-9 {
		t.Errorf("merged mean = %v", sa.Mean())
	}
	// Merged quantiles behave like one histogram over the union.
	var u Histogram
	for _, v := range []uint64{1, 2, 4, 8, 100, 1000} {
		u.Record(v)
	}
	if got, want := sa.Quantile(0.99), u.Quantile(0.99); got != want {
		t.Errorf("merged Quantile(0.99) = %v, union's = %v", got, want)
	}
}

// TestHistogramRecordSnapshotConcurrent hammers Record from several
// goroutines while others snapshot and read quantiles — the shard
// aggregation pattern of internal/obs. Run under -race (make verify).
func TestHistogramRecordSnapshotConcurrent(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20000; i++ {
				h.Record(uint64(g*4096 + i))
			}
		}(g)
	}
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				s := h.Snapshot()
				if s.Count > 0 && s.Quantile(0.99) < s.Quantile(0.5) {
					t.Error("p99 < p50 on a live snapshot")
					return
				}
				_ = h.String()
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for g := 0; g < 4; g++ {
			for i := 0; i < 20000; i++ {
				_ = h.Count()
			}
		}
		close(stop)
	}()
	wg.Wait()
	if h.Count() != 80000 {
		t.Errorf("Count = %d, want 80000", h.Count())
	}
}

// TestHistogramRecordNoAlloc pins Record as allocation-free: it sits on the
// observability sampling path, which must not add GC pressure.
func TestHistogramRecordNoAlloc(t *testing.T) {
	var h Histogram
	if n := testing.AllocsPerRun(1000, func() { h.Record(1234) }); n != 0 {
		t.Errorf("Record allocates %.1f objects per call, want 0", n)
	}
}

// BenchmarkHistogramRecord shows Record's cost and that it stays
// allocation-free (see -benchmem).
func BenchmarkHistogramRecord(b *testing.B) {
	var h Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Record(uint64(i))
	}
}
