// Package metrics provides the statistical helpers the experiment harness
// uses: medians over repeated executions, coefficient-of-variation
// reliability checks (the paper requires CV ≤ 5 %), throughput series, and
// TMAM-style cost breakdowns.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// ReliableCV is the paper's reliability threshold: measurements with a
// coefficient of variation at or below 5 % are considered reliable.
const ReliableCV = 0.05

// Median returns the median of xs. It panics on an empty slice because a
// median of nothing is a programming error in the harness.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		panic("metrics: median of empty sample")
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	lo, hi := s[n/2-1], s[n/2]
	return lo/2 + hi/2 // never overflows, unlike (lo+hi)/2 or lo+(hi-lo)/2
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)))
}

// CV returns the coefficient of variation (stddev/mean) of xs.
// A zero mean yields CV 0 to avoid dividing by zero on degenerate samples.
func CV(xs []float64) float64 {
	m := Mean(xs)
	if m == 0 {
		return 0
	}
	return StdDev(xs) / m
}

// Reliable reports whether the sample meets the paper's CV ≤ 5 % criterion.
func Reliable(xs []float64) bool { return CV(xs) <= ReliableCV }

// Sample aggregates repeated executions of one measurement point.
type Sample struct {
	Values []float64
}

// Add appends one execution's value.
func (s *Sample) Add(v float64) { s.Values = append(s.Values, v) }

// Median of the collected values.
func (s *Sample) Median() float64 { return Median(s.Values) }

// CV of the collected values.
func (s *Sample) CV() float64 { return CV(s.Values) }

// TMAM is a Top-down Microarchitecture Analysis Method breakdown of the cost
// of one operation in CPU cycles, as plotted in the paper's Figure 12:
// cycles actively executing instructions versus cycles wasted on back-end
// stalls (memory), front-end stalls (instruction supply) and bad speculation.
type TMAM struct {
	ActiveCycles    float64
	BackEndStalls   float64
	FrontEndStalls  float64
	SpeculationStls float64
}

// Total returns the full cost per operation in cycles; lower total means
// higher per-thread throughput.
func (t TMAM) Total() float64 {
	return t.ActiveCycles + t.BackEndStalls + t.FrontEndStalls + t.SpeculationStls
}

// Add accumulates another breakdown into t.
func (t *TMAM) Add(o TMAM) {
	t.ActiveCycles += o.ActiveCycles
	t.BackEndStalls += o.BackEndStalls
	t.FrontEndStalls += o.FrontEndStalls
	t.SpeculationStls += o.SpeculationStls
}

// Scale divides every bucket by n (e.g. to convert totals into per-op cost).
func (t TMAM) Scale(n float64) TMAM {
	if n == 0 {
		return TMAM{}
	}
	return TMAM{
		ActiveCycles:    t.ActiveCycles / n,
		BackEndStalls:   t.BackEndStalls / n,
		FrontEndStalls:  t.FrontEndStalls / n,
		SpeculationStls: t.SpeculationStls / n,
	}
}

func (t TMAM) String() string {
	return fmt.Sprintf("active=%.0f backend=%.0f frontend=%.0f spec=%.0f total=%.0f",
		t.ActiveCycles, t.BackEndStalls, t.FrontEndStalls, t.SpeculationStls, t.Total())
}

// Point is one (x, y) measurement of a series, e.g. (threads, MOp/s).
type Point struct {
	X float64
	Y float64
}

// Series is a named sequence of points, one line in a paper figure.
type Series struct {
	Name   string
	Points []Point
}

// Add appends a point.
func (s *Series) Add(x, y float64) { s.Points = append(s.Points, Point{X: x, Y: y}) }

// YAt returns the y value at the first point with the given x, and whether
// such a point exists.
func (s *Series) YAt(x float64) (float64, bool) {
	for _, p := range s.Points {
		if p.X == x {
			return p.Y, true
		}
	}
	return 0, false
}

// MaxY returns the largest y in the series, or 0 when empty.
func (s *Series) MaxY() float64 {
	max := 0.0
	for _, p := range s.Points {
		if p.Y > max {
			max = p.Y
		}
	}
	return max
}

// Figure is a collection of series, matching one plot of the paper.
type Figure struct {
	Title  string
	XLabel string
	YLabel string
	Series []*Series
}

// NewFigure creates an empty figure.
func NewFigure(title, xlabel, ylabel string) *Figure {
	return &Figure{Title: title, XLabel: xlabel, YLabel: ylabel}
}

// SeriesNamed returns the series with the given name, creating it if absent.
func (f *Figure) SeriesNamed(name string) *Series {
	for _, s := range f.Series {
		if s.Name == name {
			return s
		}
	}
	s := &Series{Name: name}
	f.Series = append(f.Series, s)
	return s
}

// CSV renders the figure as comma-separated rows (header: xlabel + series
// names; one row per x) for plotting tools.
func (f *Figure) CSV() string {
	xs := map[float64]struct{}{}
	for _, s := range f.Series {
		for _, p := range s.Points {
			xs[p.X] = struct{}{}
		}
	}
	sorted := make([]float64, 0, len(xs))
	for x := range xs {
		sorted = append(sorted, x)
	}
	sort.Float64s(sorted)

	var b strings.Builder
	b.WriteString(csvEscape(f.XLabel))
	for _, s := range f.Series {
		b.WriteByte(',')
		b.WriteString(csvEscape(s.Name))
	}
	b.WriteByte('\n')
	for _, x := range sorted {
		fmt.Fprintf(&b, "%g", x)
		for _, s := range f.Series {
			b.WriteByte(',')
			if y, ok := s.YAt(x); ok {
				fmt.Fprintf(&b, "%g", y)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// csvEscape quotes a field when it contains separators or quotes.
func csvEscape(s string) string {
	if !strings.ContainsAny(s, ",\"\n") {
		return s
	}
	return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
}

// Table renders the figure as aligned text rows (x, then one column per
// series), the form EXPERIMENTS.md and the bench harness print.
func (f *Figure) Table() string {
	xs := map[float64]struct{}{}
	for _, s := range f.Series {
		for _, p := range s.Points {
			xs[p.X] = struct{}{}
		}
	}
	sorted := make([]float64, 0, len(xs))
	for x := range xs {
		sorted = append(sorted, x)
	}
	sort.Float64s(sorted)

	out := fmt.Sprintf("# %s\n%-12s", f.Title, f.XLabel)
	for _, s := range f.Series {
		out += fmt.Sprintf(" %16s", s.Name)
	}
	out += "\n"
	for _, x := range sorted {
		out += fmt.Sprintf("%-12g", x)
		for _, s := range f.Series {
			if y, ok := s.YAt(x); ok {
				out += fmt.Sprintf(" %16.3f", y)
			} else {
				out += fmt.Sprintf(" %16s", "-")
			}
		}
		out += "\n"
	}
	return out
}
