package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

func TestMedian(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{[]float64{1}, 1},
		{[]float64{3, 1, 2}, 2},
		{[]float64{4, 1, 3, 2}, 2.5},
		{[]float64{5, 5, 5, 5, 5, 5, 5}, 5},
	}
	for _, c := range cases {
		if got := Median(c.in); got != c.want {
			t.Errorf("Median(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestMedianPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Median(nil) should panic")
		}
	}()
	Median(nil)
}

func TestMedianDoesNotMutate(t *testing.T) {
	in := []float64{3, 1, 2}
	Median(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Errorf("Median mutated input: %v", in)
	}
}

func TestMeanStdDevCV(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Errorf("Mean = %v, want 5", got)
	}
	if got := StdDev(xs); math.Abs(got-2) > 1e-12 {
		t.Errorf("StdDev = %v, want 2", got)
	}
	if got := CV(xs); math.Abs(got-0.4) > 1e-12 {
		t.Errorf("CV = %v, want 0.4", got)
	}
	if Mean(nil) != 0 || StdDev(nil) != 0 || CV(nil) != 0 {
		t.Error("empty-sample stats should be 0")
	}
	if StdDev([]float64{7}) != 0 {
		t.Error("single-sample stddev should be 0")
	}
}

func TestReliable(t *testing.T) {
	if !Reliable([]float64{100, 100, 101, 99}) {
		t.Error("tight sample should be reliable")
	}
	if Reliable([]float64{100, 200, 50}) {
		t.Error("loose sample should not be reliable")
	}
}

func TestSample(t *testing.T) {
	var s Sample
	for _, v := range []float64{10.8, 11.2, 11, 10.9, 11, 11.1, 11} {
		s.Add(v)
	}
	if got := s.Median(); got != 11 {
		t.Errorf("Sample.Median = %v, want 11", got)
	}
	if s.CV() > ReliableCV {
		t.Errorf("Sample.CV = %v, want ≤ %v", s.CV(), ReliableCV)
	}
}

func TestTMAM(t *testing.T) {
	a := TMAM{ActiveCycles: 100, BackEndStalls: 50, FrontEndStalls: 20, SpeculationStls: 30}
	if got := a.Total(); got != 200 {
		t.Errorf("Total = %v, want 200", got)
	}
	b := a
	b.Add(a)
	if got := b.Total(); got != 400 {
		t.Errorf("after Add, Total = %v, want 400", got)
	}
	half := b.Scale(2)
	if half != a {
		t.Errorf("Scale(2) = %+v, want %+v", half, a)
	}
	if (TMAM{ActiveCycles: 1}).Scale(0) != (TMAM{}) {
		t.Error("Scale(0) should zero the breakdown")
	}
	if !strings.Contains(a.String(), "total=200") {
		t.Errorf("String = %q", a.String())
	}
}

func TestSeries(t *testing.T) {
	var s Series
	s.Add(48, 10)
	s.Add(96, 20)
	s.Add(192, 15)
	if y, ok := s.YAt(96); !ok || y != 20 {
		t.Errorf("YAt(96) = %v,%v", y, ok)
	}
	if _, ok := s.YAt(77); ok {
		t.Error("YAt(77) should be absent")
	}
	if got := s.MaxY(); got != 20 {
		t.Errorf("MaxY = %v, want 20", got)
	}
	if (&Series{}).MaxY() != 0 {
		t.Error("empty MaxY should be 0")
	}
}

func TestFigureTable(t *testing.T) {
	f := NewFigure("Fig X", "threads", "MOp/s")
	f.SeriesNamed("Opt").Add(48, 1.5)
	f.SeriesNamed("Opt").Add(96, 3.0)
	f.SeriesNamed("SE").Add(48, 1.0)
	// Re-fetch must return the same series, not a duplicate.
	if len(f.Series) != 2 {
		t.Fatalf("series count = %d, want 2", len(f.Series))
	}
	tab := f.Table()
	for _, want := range []string{"Fig X", "threads", "Opt", "SE", "1.500", "3.000"} {
		if !strings.Contains(tab, want) {
			t.Errorf("table missing %q:\n%s", want, tab)
		}
	}
	// SE has no point at 96 → a dash in that row.
	if !strings.Contains(tab, "-") {
		t.Errorf("table should mark missing points with '-':\n%s", tab)
	}
}

func TestMedianPropertyBounded(t *testing.T) {
	f := func(vals []float64) bool {
		if len(vals) == 0 {
			return true
		}
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
		}
		m := Median(vals)
		lo, hi := vals[0], vals[0]
		for _, v := range vals {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		return m >= lo && m <= hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCVScaleInvariantProperty(t *testing.T) {
	// CV is invariant under positive scaling of the sample.
	f := func(vals []float64, scale float64) bool {
		if len(vals) < 2 {
			return true
		}
		scale = math.Abs(scale)
		if scale < 1e-6 || scale > 1e6 {
			return true
		}
		clean := make([]float64, 0, len(vals))
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e9 {
				return true
			}
			clean = append(clean, v)
		}
		if Mean(clean) == 0 {
			return true
		}
		a := CV(clean)
		scaled := make([]float64, len(clean))
		for i, v := range clean {
			scaled[i] = v * scale
		}
		b := CV(scaled)
		return math.Abs(a-b) < 1e-6*(1+math.Abs(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Mean() != 0 || h.Percentile(0.5) != 0 {
		t.Error("zero histogram not zero")
	}
	for _, v := range []uint64{1, 2, 4, 8, 100, 1000, 1000, 1000} {
		h.Record(v)
	}
	if h.Count() != 8 {
		t.Errorf("Count = %d", h.Count())
	}
	if h.Max() != 1000 {
		t.Errorf("Max = %d", h.Max())
	}
	wantMean := float64(1+2+4+8+100+1000*3) / 8
	if math.Abs(h.Mean()-wantMean) > 1e-9 {
		t.Errorf("Mean = %v, want %v", h.Mean(), wantMean)
	}
	// p50 over {1,2,4,8,100,1000,1000,1000}: 4th value is 8 → bucket ≤ 15.
	if p := h.Percentile(0.5); p < 8 || p > 15 {
		t.Errorf("p50 = %d, want in [8,15]", p)
	}
	// p99 lands in the 1000 bucket (≤ 1023).
	if p := h.Percentile(0.99); p < 1000 || p > 1023 {
		t.Errorf("p99 = %d, want in [1000,1023]", p)
	}
	if h.Percentile(0) != 0 || h.Percentile(1.5) != 0 {
		t.Error("out-of-range percentile should be 0")
	}
	if !strings.Contains(h.String(), "n=8") {
		t.Errorf("String = %q", h.String())
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 10000; i++ {
				h.Record(uint64(g*1000 + i))
			}
		}(g)
	}
	wg.Wait()
	if h.Count() != 80000 {
		t.Errorf("Count = %d", h.Count())
	}
	if h.Max() < 16999 {
		t.Errorf("Max = %d", h.Max())
	}
}

func TestHistogramPercentileMonotoneProperty(t *testing.T) {
	f := func(vals []uint32) bool {
		var h Histogram
		for _, v := range vals {
			h.Record(uint64(v))
		}
		prev := uint64(0)
		for _, p := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0} {
			q := h.Percentile(p)
			if q < prev {
				return false
			}
			prev = q
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFigureCSV(t *testing.T) {
	f := NewFigure("Fig", "threads", "MOp/s")
	f.SeriesNamed("Opt, Configured").Add(48, 1.5) // comma forces quoting
	f.SeriesNamed("SE").Add(48, 1.0)
	f.SeriesNamed("SE").Add(96, 2.0)
	csv := f.CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv has %d lines:\n%s", len(lines), csv)
	}
	if lines[0] != `threads,"Opt, Configured",SE` {
		t.Errorf("header = %q", lines[0])
	}
	if lines[1] != "48,1.5,1" {
		t.Errorf("row 1 = %q", lines[1])
	}
	// Missing point → empty cell.
	if lines[2] != "96,,2" {
		t.Errorf("row 2 = %q", lines[2])
	}
}
