package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strings"
	"time"

	"robustconf/internal/metrics"
	"robustconf/internal/obs/signal"
)

// Handler returns the endpoint mux:
//
//	/metrics       Prometheus text exposition (counters, histograms, faults)
//	/signals       windowed per-domain signals + health states (JSON;
//	               empty set until a sampler is started)
//	/spans         JSON dump of the task-lifecycle trace ring
//	/events        JSON dump of retained lifecycle events + per-kind totals
//	/debug/pprof/  the standard pprof suite (worker goroutines carry
//	               domain/worker labels, so profiles attribute per domain)
func (o *Observer) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprint(w, "robustconf observability endpoint\n\n"+
			"  /metrics       Prometheus text counters + histograms + faults\n"+
			"  /signals       windowed per-domain signals + health (JSON)\n"+
			"  /spans         sampled task-lifecycle spans (JSON)\n"+
			"  /events        worker/domain lifecycle events (JSON)\n"+
			"  /debug/pprof/  pprof suite (workers labelled domain/worker)\n")
	})
	mux.HandleFunc("/signals", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		o.writeSignalsJSON(w)
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		o.writeMetrics(w)
	})
	mux.HandleFunc("/spans", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := o.tracer.WriteJSON(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/events", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		events, counts := o.events.snapshot()
		writeEventsJSON(w, events, counts)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// ServeShutdownTimeout bounds how long Serve's closer waits for in-flight
// requests to drain before forcing connections closed.
const ServeShutdownTimeout = 5 * time.Second

// Serve starts the endpoint on addr (e.g. ":6060"; ":0" picks a free port).
// It returns the bound address and a stop function that shuts the server
// down gracefully: the closer stops the listener and waits (bounded by
// ServeShutdownTimeout) for in-flight /metrics, /signals and pprof requests
// to drain before forcing any straggler connections closed — a scrape
// racing shutdown gets its complete response, not a torn one. Serving runs
// on its own goroutine; Serve itself returns immediately.
func (o *Observer) Serve(addr string) (string, func() error, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: o.Handler(), ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = srv.Serve(ln) }()
	closer := func() error {
		ctx, cancel := context.WithTimeout(context.Background(), ServeShutdownTimeout)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			// Drain deadline passed (or the context died): cut whatever is
			// still open so the closer always terminates the server.
			return srv.Close()
		}
		return nil
	}
	return ln.Addr().String(), closer, nil
}

// writeMetrics renders the Prometheus text exposition: per-domain counters
// and gauges (labelled domain="..."), the latency histograms as cumulative
// le-bucket series, the fault counters, and lifecycle event totals.
func (o *Observer) writeMetrics(w http.ResponseWriter) {
	snap := o.Snapshot()

	fmt.Fprintf(w, "# HELP robustconf_uptime_seconds Seconds since the observer was created.\n")
	fmt.Fprintf(w, "# TYPE robustconf_uptime_seconds gauge\n")
	fmt.Fprintf(w, "robustconf_uptime_seconds %g\n", snap.UptimeSeconds)

	counter := func(name, help string, val func(d DomainSnapshot) uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
		for _, d := range snap.Domains {
			fmt.Fprintf(w, "%s{domain=%q} %d\n", name, d.Name, val(d))
		}
	}
	counter("robustconf_tasks_swept_total", "Tasks executed by domain workers.",
		func(d DomainSnapshot) uint64 { return d.Tasks })
	counter("robustconf_sweeps_total", "Worker poll rounds over client slots.",
		func(d DomainSnapshot) uint64 { return d.Sweeps })
	counter("robustconf_empty_sweeps_total", "Poll rounds that found no posted task.",
		func(d DomainSnapshot) uint64 { return d.EmptySweep })
	counter("robustconf_batched_tasks_total", "Tasks answered in multi-task sweep batches.",
		func(d DomainSnapshot) uint64 { return d.Batched })
	counter("robustconf_posts_total", "Tasks delegated by clients.",
		func(d DomainSnapshot) uint64 { return d.Posts })
	counter("robustconf_burst_waits_total", "Client stalls waiting on a full burst window.",
		func(d DomainSnapshot) uint64 { return d.BurstWaits })
	counter("robustconf_bypass_hits_total", "Read-bypass reads that validated locally, skipping delegation.",
		func(d DomainSnapshot) uint64 { return d.BypassHits })
	counter("robustconf_bypass_retries_total", "Read-bypass validation attempts wasted on unstable publication words.",
		func(d DomainSnapshot) uint64 { return d.BypassRetries })
	counter("robustconf_bypass_fallbacks_total", "Read-bypass reads that fell back to delegated execution.",
		func(d DomainSnapshot) uint64 { return d.BypassFallbacks })
	counter("robustconf_tasks_failed_total", "Futures completed with a typed error, by domain.",
		func(d DomainSnapshot) uint64 { return d.Failed })
	counter("robustconf_rescued_posts_total", "Posts answered ErrWorkerStopped from sealed buffers.",
		func(d DomainSnapshot) uint64 { return d.Rescued })

	fmt.Fprintf(w, "# HELP robustconf_worker_restarts_total Worker respawns after a crash, by domain.\n")
	fmt.Fprintf(w, "# TYPE robustconf_worker_restarts_total counter\n")
	for _, d := range snap.Domains {
		fmt.Fprintf(w, "robustconf_worker_restarts_total{domain=%q} %d\n", d.Name, d.Restarts)
	}
	fmt.Fprintf(w, "# HELP robustconf_pending_tasks Posted-but-unanswered slots, by domain.\n")
	fmt.Fprintf(w, "# TYPE robustconf_pending_tasks gauge\n")
	for _, d := range snap.Domains {
		fmt.Fprintf(w, "robustconf_pending_tasks{domain=%q} %d\n", d.Name, d.Pending)
	}
	fmt.Fprintf(w, "# HELP robustconf_restart_budget_remaining Worker respawns left before the domain dies.\n")
	fmt.Fprintf(w, "# TYPE robustconf_restart_budget_remaining gauge\n")
	for _, d := range snap.Domains {
		fmt.Fprintf(w, "robustconf_restart_budget_remaining{domain=%q} %d\n", d.Name, d.BudgetRemaining)
	}
	counter("robustconf_recoveries_total", "WAL recoveries run after worker crashes.",
		func(d DomainSnapshot) uint64 { return d.Recoveries })
	counter("robustconf_wal_replayed_records_total", "Log records applied during WAL recovery.",
		func(d DomainSnapshot) uint64 { return d.WALReplayed })
	counter("robustconf_wal_replay_ns_total", "Wall time spent replaying the WAL (ns).",
		func(d DomainSnapshot) uint64 { return d.WALReplayNs })
	fmt.Fprintf(w, "# HELP robustconf_arena_live_bytes Worker-arena bytes handed out since the last reset, by domain.\n")
	fmt.Fprintf(w, "# TYPE robustconf_arena_live_bytes gauge\n")
	for _, d := range snap.Domains {
		fmt.Fprintf(w, "robustconf_arena_live_bytes{domain=%q} %d\n", d.Name, d.ArenaLiveBytes)
	}
	fmt.Fprintf(w, "# HELP robustconf_arena_capacity_bytes Worker-arena retained slab capacity, by domain.\n")
	fmt.Fprintf(w, "# TYPE robustconf_arena_capacity_bytes gauge\n")
	for _, d := range snap.Domains {
		fmt.Fprintf(w, "robustconf_arena_capacity_bytes{domain=%q} %d\n", d.Name, d.ArenaCapBytes)
	}
	counter("robustconf_arena_overflows_total", "Arena allocations that fell back to the heap (mis-sized slabs).",
		func(d DomainSnapshot) uint64 { return uint64(d.ArenaOverflows) })
	counter("robustconf_arena_resets_total", "Arena batch-boundary recycles.",
		func(d DomainSnapshot) uint64 { return uint64(d.ArenaResets) })
	counter("robustconf_arena_discards_total", "Arena crash-recovery discards (slabs returned to the GC).",
		func(d DomainSnapshot) uint64 { return uint64(d.ArenaDiscards) })
	counter("robustconf_batch_sweeps_total", "Non-empty passes of the interleaved batched sweep body.",
		func(d DomainSnapshot) uint64 { return d.BatchSweeps })
	counter("robustconf_batch_kernel_ops_total", "Typed ops executed through structure batch kernels.",
		func(d DomainSnapshot) uint64 { return d.BatchKernelOps })
	fmt.Fprintf(w, "# HELP robustconf_wal_checkpoint_age_seconds Age of the domain's last completed checkpoint (-1 = no WAL or no checkpoint).\n")
	fmt.Fprintf(w, "# TYPE robustconf_wal_checkpoint_age_seconds gauge\n")
	now := time.Now().UnixNano()
	for _, d := range snap.Domains {
		age := -1.0
		if d.WALLastCheckpoint > 0 {
			age = float64(now-d.WALLastCheckpoint) / 1e9
		}
		fmt.Fprintf(w, "robustconf_wal_checkpoint_age_seconds{domain=%q} %g\n", d.Name, age)
	}
	fmt.Fprintf(w, "# HELP robustconf_max_batch_size Largest single-sweep response batch observed, by domain.\n")
	fmt.Fprintf(w, "# TYPE robustconf_max_batch_size gauge\n")
	for _, d := range snap.Domains {
		fmt.Fprintf(w, "robustconf_max_batch_size{domain=%q} %d\n", d.Name, d.MaxBatch)
	}

	hist := func(name, help string, val func(d DomainSnapshot) metrics.HistogramSnapshot) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
		for _, d := range snap.Domains {
			writePromHistogram(w, name, d.Name, val(d))
		}
	}
	hist("robustconf_sweep_duration_ns", "Sampled worker sweep latency (ns).",
		func(d DomainSnapshot) metrics.HistogramSnapshot { return d.SweepNs })
	hist("robustconf_exec_duration_ns", "Sampled task execute latency (ns).",
		func(d DomainSnapshot) metrics.HistogramSnapshot { return d.ExecNs })
	hist("robustconf_response_duration_ns", "Sampled post-to-resolved response latency (ns).",
		func(d DomainSnapshot) metrics.HistogramSnapshot { return d.RespNs })

	fault := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	f := snap.Faults
	fault("robustconf_faults_worker_panics_total", "Panics escaping a worker sweep.", f.WorkerPanics)
	fault("robustconf_faults_worker_restarts_total", "Successful worker respawns.", f.WorkerRestarts)
	fault("robustconf_faults_restarts_exhausted_total", "Workers retired after exhausting the restart budget.", f.RestartsExhausted)
	fault("robustconf_faults_tasks_failed_total", "Futures completed with a typed error.", f.TasksFailed)
	fault("robustconf_faults_rescued_posts_total", "Posts rescued from sealed buffers.", f.RescuedPosts)

	if len(snap.EventCounts) > 0 {
		fmt.Fprintf(w, "# HELP robustconf_lifecycle_events_total Domain/worker lifecycle events by kind.\n")
		fmt.Fprintf(w, "# TYPE robustconf_lifecycle_events_total counter\n")
		kinds := make([]string, 0, len(snap.EventCounts))
		for k := range snap.EventCounts {
			kinds = append(kinds, k)
		}
		sort.Strings(kinds)
		for _, k := range kinds {
			fmt.Fprintf(w, "robustconf_lifecycle_events_total{kind=%q} %d\n", k, snap.EventCounts[k])
		}
	}
	fmt.Fprintf(w, "# HELP robustconf_spans_sampled_total Task-lifecycle spans committed to the trace ring.\n")
	fmt.Fprintf(w, "# TYPE robustconf_spans_sampled_total counter\n")
	fmt.Fprintf(w, "robustconf_spans_sampled_total %d\n", snap.SpansSampled)

	o.writeServerMetrics(w)
	o.writeSignalGauges(w)
}

// writeServerMetrics renders the network front end's counters, when one is
// attached (robustconf_server_*). Nothing is written for library-only runs.
func (o *Observer) writeServerMetrics(w io.Writer) {
	st, ok := o.ServerStats()
	if !ok {
		return
	}
	c := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	g := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	c("robustconf_server_connections_accepted_total", "Network connections accepted by the front end.", st.ConnsAccepted)
	g("robustconf_server_connections_active", "Currently open network connections.", st.ConnsActive)
	c("robustconf_server_ops_total", "KV/control operations decoded and answered.", st.Ops)
	c("robustconf_server_batches_total", "Pipelined request batches executed (one delegation burst each).", st.Batches)
	c("robustconf_server_quota_rejects_total", "Batches answered BUSY by per-tenant quota checks.", st.QuotaRejects)
	c("robustconf_server_busy_rejects_total", "Batches answered BUSY after the session-pool acquire deadline.", st.BusyRejects)
	c("robustconf_server_pool_waits_total", "Batches that blocked waiting for a pooled session.", st.PoolWaits)
	c("robustconf_server_proto_errors_total", "Connections dropped on malformed frames.", st.ProtoErrors)
	c("robustconf_server_write_timeouts_total", "Connections dropped on slow-reader write stalls.", st.WriteTimeouts)
	c("robustconf_server_bytes_read_total", "Request bytes read from the network.", st.BytesRead)
	c("robustconf_server_bytes_written_total", "Response bytes written to the network.", st.BytesWritten)
	g("robustconf_server_pipeline_depth_max", "Largest single-batch op count observed.", st.PipelineMax)
	g("robustconf_server_sessions", "Pooled delegation sessions the connections multiplex onto.", st.Sessions)
	draining := int64(0)
	if st.Draining {
		draining = 1
	}
	g("robustconf_server_draining", "1 while the front end is draining for shutdown.", draining)
}

// writeSignalGauges renders the sampler's windowed signals as Prometheus
// gauges (one scrape-time family per signal, labelled by domain, plus the
// numeric health state). Nothing is written when no sampler runs.
func (o *Observer) writeSignalGauges(w io.Writer) {
	// The server block is independent of domain signals: a front end can be
	// the only signal source (no domains registered yet, or a pure proxy).
	if s := o.Sampler(); s != nil {
		if srv, ok := s.ServerSignals(); ok {
			sg := func(name, help string, v float64) {
				fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
			}
			sg("robustconf_signal_server_ops_per_sec", "Windowed front-end operations per second.", srv.OpsRate.Value)
			sg("robustconf_signal_server_batches_per_sec", "Windowed front-end delegation bursts per second.", srv.BatchRate.Value)
			sg("robustconf_signal_server_pipeline_depth", "Windowed ops per batch (realised pipeline depth).", srv.PipelineDepth)
			sg("robustconf_signal_server_reject_rate", "Windowed BUSY replies per second.", srv.RejectRate.Value)
		}
	}
	sigs := o.Signals()
	if len(sigs) == 0 {
		return
	}
	gauge := func(name, help string, val func(d signal.DomainSignals) float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n", name, help, name)
		for _, d := range sigs {
			fmt.Fprintf(w, "%s{domain=%q} %g\n", name, d.Domain, val(d))
		}
	}
	gauge("robustconf_signal_occupancy", "Windowed fraction of sweeps that found work.",
		func(d signal.DomainSignals) float64 { return d.Occupancy.Value })
	gauge("robustconf_signal_occupancy_ewma", "EWMA-smoothed windowed occupancy.",
		func(d signal.DomainSignals) float64 { return d.Occupancy.EWMA })
	gauge("robustconf_signal_queue_depth", "Posted-but-unanswered slots at the last tick.",
		func(d signal.DomainSignals) float64 { return d.QueueDepth.Value })
	gauge("robustconf_signal_throughput", "Windowed tasks executed per second.",
		func(d signal.DomainSignals) float64 { return d.Throughput.Value })
	gauge("robustconf_signal_p50_ns", "Windowed sampled response p50 (ns).",
		func(d signal.DomainSignals) float64 { return d.P50Ns.Value })
	gauge("robustconf_signal_p99_ns", "Windowed sampled response p99 (ns).",
		func(d signal.DomainSignals) float64 { return d.P99Ns.Value })
	gauge("robustconf_signal_p99_slope_ns_per_s", "Ring-regression slope of the windowed p99 (ns per second).",
		func(d signal.DomainSignals) float64 { return d.P99Ns.Slope })
	gauge("robustconf_signal_write_fraction", "Windowed writes / (reads + writes).",
		func(d signal.DomainSignals) float64 { return d.WriteFraction.Value })
	gauge("robustconf_signal_bypass_hit_rate", "Windowed bypass hits per read.",
		func(d signal.DomainSignals) float64 { return d.BypassHitRate.Value })
	gauge("robustconf_signal_bypass_fallback_rate", "Windowed bypass fallbacks per bypass attempt.",
		func(d signal.DomainSignals) float64 { return d.BypassFallbackRate.Value })
	gauge("robustconf_signal_fault_rate", "Windowed failed tasks per second.",
		func(d signal.DomainSignals) float64 { return d.FaultRate.Value })
	gauge("robustconf_signal_restart_rate", "Windowed worker restarts per second.",
		func(d signal.DomainSignals) float64 { return d.RestartRate.Value })
	gauge("robustconf_signal_wal_commit_rate", "Windowed WAL records committed per second.",
		func(d signal.DomainSignals) float64 { return d.WALCommitRate.Value })
	gauge("robustconf_signal_checkpoint_lag_records", "WAL records committed since the last completed checkpoint.",
		func(d signal.DomainSignals) float64 { return d.CheckpointLag })
	gauge("robustconf_health_state", "Classified domain health: 0 healthy, 1 degraded, 2 saturated, 3 stalled.",
		func(d signal.DomainSignals) float64 { return float64(d.Health) })
}

// writeSignalsJSON renders the /signals payload: the latest published
// signal set plus sampler identity, or {"domains": []} when no sampler
// runs (scrapers can distinguish "off" from "no domains").
func (o *Observer) writeSignalsJSON(w io.Writer) {
	type payload struct {
		SamplerRunning bool                   `json:"sampler_running"`
		CadenceSeconds float64                `json:"cadence_seconds,omitempty"`
		Domains        []signal.DomainSignals `json:"domains"`
		Server         *ServerSignals         `json:"server,omitempty"`
	}
	p := payload{Domains: []signal.DomainSignals{}}
	if s := o.Sampler(); s != nil {
		p.SamplerRunning = true
		if s.every > 0 {
			p.CadenceSeconds = s.every.Seconds()
		}
		p.Domains = s.Signals()
		if srv, ok := s.ServerSignals(); ok {
			p.Server = &srv
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(p)
}

// writePromHistogram renders one log₂ histogram as cumulative le buckets.
// Empty log₂ buckets are folded into the next non-empty bound to keep the
// series short; +Inf carries the total count per the exposition format.
func writePromHistogram(w http.ResponseWriter, name, domain string, s metrics.HistogramSnapshot) {
	if s.Count == 0 {
		return
	}
	var cum uint64
	for b := 0; b < 64; b++ {
		if s.Buckets[b] == 0 {
			continue
		}
		cum += s.Buckets[b]
		upper := float64(uint64(1)<<uint(b)) - 1
		if b == 0 {
			upper = 0
		}
		fmt.Fprintf(w, "%s_bucket{domain=%q,le=%q} %d\n", name, domain, trimFloat(upper), cum)
	}
	fmt.Fprintf(w, "%s_bucket{domain=%q,le=\"+Inf\"} %d\n", name, domain, s.Count)
	fmt.Fprintf(w, "%s_sum{domain=%q} %d\n", name, domain, s.Sum)
	fmt.Fprintf(w, "%s_count{domain=%q} %d\n", name, domain, s.Count)
}

func trimFloat(v float64) string {
	return strings.TrimSuffix(fmt.Sprintf("%.0f", v), ".")
}

// writeEventsJSON renders the /events payload without pulling in a second
// encoder dependency: {"counts": {...}, "events": [...]}.
func writeEventsJSON(w http.ResponseWriter, events []Event, counts map[string]uint64) {
	fmt.Fprint(w, "{\n  \"counts\": {")
	kinds := make([]string, 0, len(counts))
	for k := range counts {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for i, k := range kinds {
		if i > 0 {
			fmt.Fprint(w, ", ")
		}
		fmt.Fprintf(w, "%q: %d", k, counts[k])
	}
	fmt.Fprint(w, "},\n  \"events\": [")
	for i, e := range events {
		if i > 0 {
			fmt.Fprint(w, ",")
		}
		fmt.Fprintf(w, "\n    {\"at_ns\": %d, \"domain\": %q, \"worker\": %d, \"kind\": %q}",
			e.AtNs, e.Domain, e.Worker, e.Kind)
	}
	fmt.Fprint(w, "\n  ]\n}\n")
}
