// Package obs is the runtime introspection layer: low-overhead telemetry
// for the delegation runtime (internal/delegation + internal/core), built
// so the paper's measurement claims — where delegation time goes, what the
// burst size does to the latency distribution — are observable on a live
// run instead of only in offline experiments.
//
// Three pieces, in increasing cost:
//
//   - Per-worker stat shards (WorkerShard, ClientShard): cache-line-padded
//     counters written as plain increments by their single owner on the
//     critical path — no atomics, no sharing — and published to an atomic
//     image on a flush cadence; aggregation reads only the image. Latency
//     (sweep, execute, post→resolve response) is sampled every
//     SampleEvery-th operation into log₂ histograms.
//
//   - A sampled task-lifecycle tracer (Span, Tracer): post → sweep →
//     execute → respond → future-resolved timestamps collected into a
//     fixed-size ring, off by default (Options.TraceEvery), dumpable as
//     JSON.
//
//   - An HTTP exposition endpoint (Observer.Serve): Prometheus-text
//     counters and histograms plus the fault-counter snapshot on /metrics,
//     span and lifecycle-event dumps on /spans and /events, and the pprof
//     suite on /debug/pprof/ — the runtime core labels worker goroutines
//     with their domain/worker so CPU profiles attribute time per domain.
//
// When no Observer is attached (the default), the delegation hot path sees
// only nil-pointer checks and allocates nothing extra.
package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"robustconf/internal/metrics"
)

// Options tunes an Observer.
type Options struct {
	// SampleEvery is the latency-sampling period: every Nth sweep, task
	// execution and post is timed. Rounded up to a power of two; 0 means
	// DefaultSampleEvery. 1 samples everything (tests).
	SampleEvery int
	// TraceEvery commits every Nth *sampled* span to the trace ring; 0 —
	// the default — disables lifecycle tracing entirely.
	TraceEvery int
	// TraceCap is the span ring capacity (default 4096).
	TraceCap int
	// EventCap is the lifecycle event ring capacity (default 256).
	EventCap int
	// Faults is the fault-counter set the endpoint and reports expose.
	// Defaults to the process-wide metrics.Faults; the runtime core
	// rebinds it to the runtime's own counters when they are injected.
	Faults *metrics.FaultCounters
}

// DefaultSampleEvery is the default latency-sampling period. At one timed
// operation in 64 the two clock reads amortise to well under a nanosecond
// per operation.
const DefaultSampleEvery = 64

// pow2 rounds n up to the next power of two.
func pow2(n int) uint64 {
	p := uint64(1)
	for p < uint64(n) {
		p <<= 1
	}
	return p
}

// Observer is the root of the introspection layer for one process: domains
// register their worker and client shards with it, the runtime core feeds
// it lifecycle events, and the exposition endpoint and text reports read
// aggregated snapshots from it.
type Observer struct {
	sampleMask uint64
	traceEvery uint64
	start      time.Time
	tracer     *Tracer
	events     *eventLog

	mu      sync.Mutex
	domains []*DomainObs
	faults  *metrics.FaultCounters
	sampler *Sampler
	server  func() ServerStats // nil until a network front end attaches
}

// ServerStats is the network front end's counter snapshot (internal/server
// installs a provider via SetServerStats). Everything is cumulative except
// the gauges called out below; the obs layer exports them on /metrics as
// robustconf_server_* and the signal sampler derives windowed rates from
// them for /signals.
type ServerStats struct {
	ConnsAccepted uint64
	ConnsActive   int64 // gauge
	Ops           uint64
	Batches       uint64
	QuotaRejects  uint64 // BUSY replies from per-tenant quota checks
	BusyRejects   uint64 // BUSY replies from session-pool acquire timeouts
	PoolWaits     uint64 // batches that blocked waiting for a session
	ProtoErrors   uint64 // connections dropped on malformed frames
	WriteTimeouts uint64 // connections dropped on slow-reader write stalls
	BytesRead     uint64
	BytesWritten  uint64
	PipelineMax   int64 // gauge: largest single-batch op count observed
	Sessions      int64 // gauge: pooled session count
	Draining      bool
}

// SetServerStats installs (or, with nil, removes) the snapshot-time
// provider for network front-end counters. Scrapes and sampler ticks call
// the provider from their own goroutines; it must be safe for concurrent
// use and should not block.
func (o *Observer) SetServerStats(fn func() ServerStats) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.server = fn
}

// ServerStats returns the latest front-end counter snapshot and whether a
// provider is attached.
func (o *Observer) ServerStats() (ServerStats, bool) {
	o.mu.Lock()
	fn := o.server
	o.mu.Unlock()
	if fn == nil {
		return ServerStats{}, false
	}
	return fn(), true
}

// New builds an Observer.
func New(opts Options) *Observer {
	if opts.SampleEvery <= 0 {
		opts.SampleEvery = DefaultSampleEvery
	}
	if opts.TraceCap <= 0 {
		opts.TraceCap = 4096
	}
	if opts.EventCap <= 0 {
		opts.EventCap = 256
	}
	faults := opts.Faults
	if faults == nil {
		faults = metrics.Faults
	}
	return &Observer{
		sampleMask: pow2(opts.SampleEvery) - 1,
		traceEvery: uint64(opts.TraceEvery),
		start:      time.Now(),
		tracer:     NewTracer(opts.TraceCap),
		events:     newEventLog(opts.EventCap),
		faults:     faults,
	}
}

// SetFaults rebinds the fault-counter set the observer exposes (the
// runtime core calls this when a runtime carries injected counters).
func (o *Observer) SetFaults(f *metrics.FaultCounters) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if f != nil {
		o.faults = f
	}
}

// Tracer exposes the span ring.
func (o *Observer) Tracer() *Tracer { return o.tracer }

// Lifecycle records a domain/worker lifecycle event (worker start, crash,
// respawn, budget exhaustion, domain stop).
func (o *Observer) Lifecycle(domain string, worker int, kind string) {
	o.events.add(Event{AtNs: nanos(), Domain: domain, Worker: worker, Kind: kind})
}

// Events returns the retained lifecycle events (oldest first) and the
// all-time per-kind totals.
func (o *Observer) Events() ([]Event, map[string]uint64) { return o.events.snapshot() }

// Domain registers a new domain instance with the given worker count and
// returns its telemetry handle. Re-registering a name (each chaos schedule
// starts a fresh runtime over the same domain names) adds a new instance;
// Snapshot merges instances by name.
func (o *Observer) Domain(name string, workers int) *DomainObs {
	d := &DomainObs{name: name}
	for i := 0; i < workers; i++ {
		d.workers = append(d.workers, &WorkerShard{mask: o.sampleMask, dom: d})
	}
	d.obs = o
	o.mu.Lock()
	o.domains = append(o.domains, d)
	o.mu.Unlock()
	return d
}

// DomainObs aggregates one registered domain instance: its worker shards,
// the client shards of the sessions that talked to it, and the sampled
// latency histograms.
type DomainObs struct {
	name    string
	obs     *Observer
	workers []*WorkerShard

	sweepNs metrics.Histogram // sampled worker sweep (poll round) latency
	execNs  metrics.Histogram // sampled task execute latency
	respNs  metrics.Histogram // sampled post→future-resolved latency

	mu       sync.Mutex
	clients  []*ClientShard
	external func() DomainExternal
}

// Name returns the domain name.
func (d *DomainObs) Name() string { return d.name }

// Worker returns worker i's shard; the runtime core installs it into the
// worker's message buffer.
func (d *DomainObs) Worker(i int) *WorkerShard { return d.workers[i] }

// NewClient registers a client shard for one session's delegation client.
// Off the critical path (sessions acquire clients once per domain).
func (d *DomainObs) NewClient() *ClientShard {
	c := &ClientShard{mask: d.obs.sampleMask, traceEvery: d.obs.traceEvery, dom: d, tracer: d.obs.tracer}
	d.mu.Lock()
	d.clients = append(d.clients, c)
	d.mu.Unlock()
	return c
}

// DomainExternal carries domain counters the obs layer does not own but
// reports alongside its shards (failure accounting and queue depth, read
// from the runtime's buffers at snapshot time).
type DomainExternal struct {
	Failed   uint64
	Rescued  uint64
	Restarts int64
	Pending  int
	// BudgetRemaining is the domain's unspent restart budget: how many more
	// worker crashes it survives before ErrDomainDead. Gauge, never negative.
	BudgetRemaining int64
	// Durability counters (zero when the runtime runs without a WAL):
	// recoveries run, log records replayed, wall time spent replaying,
	// records group-committed to the log, and the UnixNano stamp of the
	// last completed checkpoint (0 = none).
	Recoveries        uint64
	WALReplayed       uint64
	WALReplayNs       uint64
	WALCommitted      uint64
	WALLastCheckpoint int64
	// Arena telemetry (zero when the runtime runs without worker arenas):
	// live/retained slab bytes summed over the domain's worker arenas
	// (gauges), plus cumulative heap-overflow allocations and
	// reset/discard epochs (counters).
	ArenaLiveBytes int64
	ArenaCapBytes  int64
	ArenaOverflows int64
	ArenaResets    int64
	ArenaDiscards  int64
	// Interleaved-execution counters (zero when Config.BatchExec is off):
	// non-empty passes of the batched sweep body, and typed ops executed
	// through structure batch kernels. Their ratio is the realised group
	// width the prefetch interleave actually achieved.
	BatchSweeps    uint64
	BatchKernelOps uint64
}

// SetExternal installs the snapshot-time callback for external counters.
func (d *DomainObs) SetExternal(fn func() DomainExternal) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.external = fn
}

// DomainSnapshot is the aggregated point-in-time view of one domain name
// (summed over its registered instances and their shards).
type DomainSnapshot struct {
	Name       string
	Workers    int
	Tasks      uint64
	Sweeps     uint64
	EmptySweep uint64
	Batched    uint64
	MaxBatch   uint64
	Posts      uint64
	BurstWaits uint64
	// Reads counts read-classified operations: bypass hits plus delegated
	// read-flagged invokes (Client.InvokeReadErr). Writes are derivable as
	// Posts − (Reads − BypassHits); the sampler turns the two deltas into
	// the windowed write fraction.
	Reads uint64
	// Read-bypass counters: validated local reads, wasted validation
	// attempts, and reads that fell back to delegation (see core.SubmitRead).
	BypassHits      uint64
	BypassRetries   uint64
	BypassFallbacks uint64
	Failed          uint64
	Rescued         uint64
	Restarts        int64
	Pending         int
	BudgetRemaining int64
	// Durability view (see DomainExternal): recovery work, commit volume,
	// and checkpoint freshness for the domain's write-ahead log.
	Recoveries        uint64
	WALReplayed       uint64
	WALReplayNs       uint64
	WALCommitted      uint64
	WALLastCheckpoint int64
	// Arena view (see DomainExternal): worker-arena occupancy and
	// recycle/overflow volume for the domain.
	ArenaLiveBytes int64
	ArenaCapBytes  int64
	ArenaOverflows int64
	ArenaResets    int64
	ArenaDiscards  int64
	// Interleaved-execution view (see DomainExternal): batched passes and
	// kernel-executed typed ops for the domain.
	BatchSweeps    uint64
	BatchKernelOps uint64
	SweepNs        metrics.HistogramSnapshot
	ExecNs            metrics.HistogramSnapshot
	RespNs            metrics.HistogramSnapshot
}

// Occupancy is the fraction of sweeps that found work.
func (s DomainSnapshot) Occupancy() float64 {
	if s.Sweeps == 0 {
		return 0
	}
	return 1 - float64(s.EmptySweep)/float64(s.Sweeps)
}

// snapshotInto aggregates one domain instance into *s, overwriting it.
// This is the shared scrape path for Snapshot(), the HTTP exposition and
// the signal sampler: the client-shard list is summed under d.mu (so a
// concurrent NewClient registration can neither be missed half-initialised
// nor force a defensive slice copy per scrape) and nothing here allocates —
// the sampler tick depends on that.
func (d *DomainObs) snapshotInto(s *DomainSnapshot) {
	*s = DomainSnapshot{Name: d.name, Workers: len(d.workers)}
	for _, w := range d.workers {
		s.Tasks += w.pub[wsTasks].Load()
		s.Sweeps += w.pub[wsSweeps].Load()
		s.EmptySweep += w.pub[wsEmptySweeps].Load()
		s.Batched += w.pub[wsBatched].Load()
		if mb := w.pub[wsMaxBatch].Load(); mb > s.MaxBatch {
			s.MaxBatch = mb
		}
	}
	d.mu.Lock()
	for _, c := range d.clients {
		s.Posts += c.pub[csPosts].Load()
		s.BurstWaits += c.pub[csBurstWaits].Load()
		s.Reads += c.pub[csReads].Load()
		s.BypassHits += c.pub[csBypassHits].Load()
		s.BypassRetries += c.pub[csBypassRetries].Load()
		s.BypassFallbacks += c.pub[csBypassFallbacks].Load()
	}
	external := d.external
	d.mu.Unlock()
	s.SweepNs = d.sweepNs.Snapshot()
	s.ExecNs = d.execNs.Snapshot()
	s.RespNs = d.respNs.Snapshot()
	// The external callback runs outside d.mu: it reaches into the runtime
	// (buffer atomics, WAL stats behind the runtime's own locks) and must
	// not nest under the obs lock.
	if external != nil {
		ext := external()
		s.Failed = ext.Failed
		s.Rescued = ext.Rescued
		s.Restarts = ext.Restarts
		s.Pending = ext.Pending
		s.BudgetRemaining = ext.BudgetRemaining
		s.Recoveries = ext.Recoveries
		s.WALReplayed = ext.WALReplayed
		s.WALReplayNs = ext.WALReplayNs
		s.WALCommitted = ext.WALCommitted
		s.WALLastCheckpoint = ext.WALLastCheckpoint
		s.ArenaLiveBytes = ext.ArenaLiveBytes
		s.ArenaCapBytes = ext.ArenaCapBytes
		s.ArenaOverflows = ext.ArenaOverflows
		s.ArenaResets = ext.ArenaResets
		s.ArenaDiscards = ext.ArenaDiscards
		s.BatchSweeps = ext.BatchSweeps
		s.BatchKernelOps = ext.BatchKernelOps
	}
}

// merge folds another instance of the same domain name into s.
func (s *DomainSnapshot) merge(o DomainSnapshot) {
	if o.Workers > s.Workers {
		s.Workers = o.Workers
	}
	s.Tasks += o.Tasks
	s.Sweeps += o.Sweeps
	s.EmptySweep += o.EmptySweep
	s.Batched += o.Batched
	if o.MaxBatch > s.MaxBatch {
		s.MaxBatch = o.MaxBatch
	}
	s.Posts += o.Posts
	s.BurstWaits += o.BurstWaits
	s.Reads += o.Reads
	s.BypassHits += o.BypassHits
	s.BypassRetries += o.BypassRetries
	s.BypassFallbacks += o.BypassFallbacks
	s.Failed += o.Failed
	s.Rescued += o.Rescued
	s.Restarts += o.Restarts
	s.Pending += o.Pending
	// Instances of a name run consecutively (one runtime at a time), so the
	// live instance's gauges — remaining budget, checkpoint freshness —
	// supersede the retired ones' rather than summing.
	s.BudgetRemaining = o.BudgetRemaining
	if o.WALLastCheckpoint > s.WALLastCheckpoint {
		s.WALLastCheckpoint = o.WALLastCheckpoint
	}
	s.Recoveries += o.Recoveries
	s.WALReplayed += o.WALReplayed
	s.WALReplayNs += o.WALReplayNs
	s.WALCommitted += o.WALCommitted
	// Live-instance gauges, like BudgetRemaining above; overflow and
	// reset/discard volume are cumulative.
	s.ArenaLiveBytes = o.ArenaLiveBytes
	s.ArenaCapBytes = o.ArenaCapBytes
	s.ArenaOverflows += o.ArenaOverflows
	s.ArenaResets += o.ArenaResets
	s.ArenaDiscards += o.ArenaDiscards
	s.BatchSweeps += o.BatchSweeps
	s.BatchKernelOps += o.BatchKernelOps
	s.SweepNs.Merge(o.SweepNs)
	s.ExecNs.Merge(o.ExecNs)
	s.RespNs.Merge(o.RespNs)
}

// Snapshot is the whole layer's aggregated view.
type Snapshot struct {
	UptimeSeconds float64
	Domains       []DomainSnapshot
	Faults        metrics.FaultSnapshot
	SpansSampled  uint64
	EventCounts   map[string]uint64
}

// Snapshot aggregates every registered domain (merged by name, in first-
// registration order) plus the fault counters. The domain list is copied
// under o.mu so a Domain() registering concurrently with a scrape either
// appears whole or not at all — the per-instance aggregation then runs
// outside the observer lock against that point-in-time view (per-domain
// consistency is d.mu's job, see snapshotInto).
func (o *Observer) Snapshot() Snapshot {
	o.mu.Lock()
	domains := append([]*DomainObs(nil), o.domains...)
	faults := o.faults
	o.mu.Unlock()

	snap := Snapshot{UptimeSeconds: time.Since(o.start).Seconds()}
	index := map[string]int{}
	var ds DomainSnapshot
	for _, d := range domains {
		d.snapshotInto(&ds)
		if i, ok := index[ds.Name]; ok {
			snap.Domains[i].merge(ds)
			continue
		}
		index[ds.Name] = len(snap.Domains)
		snap.Domains = append(snap.Domains, ds)
	}
	snap.Faults = faults.Snapshot()
	snap.SpansSampled = o.tracer.Total()
	_, snap.EventCounts = o.events.snapshot()
	return snap
}

// Report renders the final-report telemetry block the cmd binaries print:
// per-domain task counters and latency quantiles, then the fault summary.
func (o *Observer) Report() string {
	snap := o.Snapshot()
	var b strings.Builder
	fmt.Fprintf(&b, "--- telemetry (uptime %.1fs) ---\n", snap.UptimeSeconds)
	for _, d := range snap.Domains {
		fmt.Fprintf(&b, "domain %s: workers %d, tasks %d, posts %d, burst-waits %d, sweeps %d (occupancy %.3f), batched %d (max batch %d), pending %d\n",
			d.Name, d.Workers, d.Tasks, d.Posts, d.BurstWaits, d.Sweeps, d.Occupancy(), d.Batched, d.MaxBatch, d.Pending)
		if d.Failed > 0 || d.Rescued > 0 || d.Restarts > 0 {
			fmt.Fprintf(&b, "  failures: %d failed, %d rescued, %d restarts (budget remaining %d)\n",
				d.Failed, d.Rescued, d.Restarts, d.BudgetRemaining)
		}
		if d.Recoveries > 0 || d.WALLastCheckpoint > 0 {
			fmt.Fprintf(&b, "  durability: %d recoveries, %d records replayed in %.2fms\n",
				d.Recoveries, d.WALReplayed, float64(d.WALReplayNs)/1e6)
		}
		if d.BypassHits > 0 || d.BypassFallbacks > 0 {
			fmt.Fprintf(&b, "  read-bypass: %d hits, %d retries, %d fallbacks\n", d.BypassHits, d.BypassRetries, d.BypassFallbacks)
		}
		writeHistLine(&b, "sweep ns", d.SweepNs)
		writeHistLine(&b, "exec  ns", d.ExecNs)
		writeHistLine(&b, "resp  ns", d.RespNs)
	}
	if smp := o.Sampler(); smp != nil {
		b.WriteString(smp.Report())
	}
	if len(snap.EventCounts) > 0 {
		kinds := make([]string, 0, len(snap.EventCounts))
		for k := range snap.EventCounts {
			kinds = append(kinds, k)
		}
		sort.Strings(kinds)
		fmt.Fprintf(&b, "lifecycle:")
		for _, k := range kinds {
			fmt.Fprintf(&b, " %s=%d", k, snap.EventCounts[k])
		}
		fmt.Fprintf(&b, "\n")
	}
	if snap.SpansSampled > 0 {
		fmt.Fprintf(&b, "trace: %d spans committed (GET /spans for the ring)\n", snap.SpansSampled)
	}
	fmt.Fprintf(&b, "faults: %s\n", snap.Faults)
	return b.String()
}

func writeHistLine(b *strings.Builder, label string, h metrics.HistogramSnapshot) {
	if h.Count == 0 {
		return
	}
	fmt.Fprintf(b, "  %s: n=%d p50=%.0f p99=%.0f max=%d\n",
		label, h.Count, h.Quantile(0.5), h.Quantile(0.99), h.Max)
}
