package obs

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"robustconf/internal/metrics"
)

func TestWorkerShardCountsAndFlush(t *testing.T) {
	o := New(Options{SampleEvery: 1})
	d := o.Domain("index", 2)
	w0 := d.Worker(0)

	// Simulate 3 sweeps: batch of 2, empty, batch of 1, each task bracketed.
	for _, n := range []int{2, 0, 1} {
		t0 := w0.SweepBegin()
		for i := 0; i < n; i++ {
			tt := w0.TaskBegin()
			w0.TaskEnd(tt)
		}
		w0.SweepEnd(t0, n)
	}
	w0.Flush()

	s := o.Snapshot()
	if len(s.Domains) != 1 {
		t.Fatalf("domains = %d", len(s.Domains))
	}
	ds := s.Domains[0]
	if ds.Name != "index" || ds.Workers != 2 {
		t.Errorf("name %q workers %d", ds.Name, ds.Workers)
	}
	if ds.Tasks != 3 || ds.Sweeps != 3 || ds.EmptySweep != 1 {
		t.Errorf("tasks %d sweeps %d empty %d, want 3/3/1", ds.Tasks, ds.Sweeps, ds.EmptySweep)
	}
	if ds.Batched != 2 || ds.MaxBatch != 2 {
		t.Errorf("batched %d maxBatch %d, want 2/2", ds.Batched, ds.MaxBatch)
	}
	// SampleEvery=1 times every sweep and task.
	if ds.SweepNs.Count != 3 || ds.ExecNs.Count != 3 {
		t.Errorf("sweep samples %d exec samples %d, want 3/3", ds.SweepNs.Count, ds.ExecNs.Count)
	}
	if occ := ds.Occupancy(); occ < 0.66 || occ > 0.67 {
		t.Errorf("occupancy = %.3f, want 2/3", occ)
	}
}

func TestShardFlushCadence(t *testing.T) {
	o := New(Options{SampleEvery: 1 << 30}) // effectively never sample
	d := o.Domain("d", 1)
	w := d.Worker(0)
	for i := 0; i < flushEvery-1; i++ {
		w.SweepEnd(w.SweepBegin(), 1)
	}
	if got := w.pub[wsSweeps].Load(); got != 0 {
		t.Fatalf("published before cadence: %d", got)
	}
	w.SweepEnd(w.SweepBegin(), 1)
	if got := w.pub[wsSweeps].Load(); got != flushEvery {
		t.Fatalf("published %d after cadence, want %d", got, flushEvery)
	}
}

func TestClientShardSamplingAndTrace(t *testing.T) {
	o := New(Options{SampleEvery: 4, TraceEvery: 2})
	d := o.Domain("d", 1)
	c := d.NewClient()

	var spans, traced int
	for i := 0; i < 64; i++ {
		if sp := c.Post(); sp != nil {
			spans++
			if sp.tracer != nil {
				traced++
			}
			sp.MarkSwept(0)
			sp.MarkExecStart()
			sp.MarkExecEnd()
			sp.MarkResponded()
			sp.Resolve(false)
			sp.Resolve(true) // second resolve must be a no-op
		}
	}
	c.Flush()
	if spans != 16 {
		t.Errorf("sampled %d of 64 posts at SampleEvery=4, want 16", spans)
	}
	if traced != 8 {
		t.Errorf("trace-selected %d of 16 sampled at TraceEvery=2, want 8", traced)
	}
	if got := o.Tracer().Total(); got != 8 {
		t.Errorf("tracer committed %d, want 8", got)
	}
	for _, r := range o.Tracer().Spans() {
		if r.Failed {
			t.Error("second Resolve overwrote the committed failed flag")
		}
		if !(r.PostedNs <= r.SweptNs && r.SweptNs <= r.ExecStartNs &&
			r.ExecStartNs <= r.ExecEndNs && r.ExecEndNs <= r.RespondedNs &&
			r.RespondedNs <= r.ResolvedNs) {
			t.Errorf("non-monotone span stages: %+v", r)
		}
	}
	ds := o.Snapshot().Domains[0]
	if ds.Posts != 64 {
		t.Errorf("posts %d, want 64", ds.Posts)
	}
	if ds.RespNs.Count != 16 {
		t.Errorf("response samples %d, want 16", ds.RespNs.Count)
	}
}

func TestNilSpanMarksAreSafe(t *testing.T) {
	var sp *Span
	sp.MarkSwept(3)
	sp.MarkExecStart()
	sp.MarkExecEnd()
	sp.MarkResponded()
	sp.Resolve(true)
}

func TestSnapshotMergesSameDomainName(t *testing.T) {
	// Chaos schedules re-register the same domain names per run; the
	// snapshot folds instances together.
	o := New(Options{SampleEvery: 1})
	for run := 0; run < 3; run++ {
		d := o.Domain("store", 1)
		w := d.Worker(0)
		for i := 0; i < 5; i++ {
			tt := w.TaskBegin()
			w.TaskEnd(tt)
		}
		w.SweepEnd(w.SweepBegin(), 5)
		w.Flush()
	}
	s := o.Snapshot()
	if len(s.Domains) != 1 {
		t.Fatalf("domains = %d, want 1 merged", len(s.Domains))
	}
	if s.Domains[0].Tasks != 15 || s.Domains[0].Sweeps != 3 {
		t.Errorf("merged tasks %d sweeps %d, want 15/3", s.Domains[0].Tasks, s.Domains[0].Sweeps)
	}
	if s.Domains[0].ExecNs.Count != 15 {
		t.Errorf("merged exec samples %d, want 15", s.Domains[0].ExecNs.Count)
	}
}

func TestExternalCountersAndReport(t *testing.T) {
	faults := &metrics.FaultCounters{}
	faults.WorkerPanics.Add(2)
	o := New(Options{SampleEvery: 1, Faults: faults})
	d := o.Domain("acct", 1)
	d.SetExternal(func() DomainExternal {
		return DomainExternal{Failed: 7, Rescued: 3, Restarts: 2, Pending: 1}
	})
	o.Lifecycle("acct", 0, EventWorkerCrash)
	o.Lifecycle("acct", 0, EventWorkerRespawn)

	s := o.Snapshot()
	ds := s.Domains[0]
	if ds.Failed != 7 || ds.Rescued != 3 || ds.Restarts != 2 || ds.Pending != 1 {
		t.Errorf("external = %+v", ds)
	}
	if s.Faults.WorkerPanics != 2 {
		t.Errorf("faults snapshot panics = %d", s.Faults.WorkerPanics)
	}
	if s.EventCounts[EventWorkerCrash] != 1 || s.EventCounts[EventWorkerRespawn] != 1 {
		t.Errorf("event counts = %v", s.EventCounts)
	}

	rep := o.Report()
	for _, want := range []string{"domain acct", "7 failed, 3 rescued, 2 restarts",
		"worker-crash=1", "panics=2"} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
}

func TestTracerRingWraps(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 10; i++ {
		tr.commit(SpanRecord{PostedNs: int64(i)})
	}
	if tr.Total() != 10 {
		t.Errorf("total = %d", tr.Total())
	}
	got := tr.Spans()
	if len(got) != 4 {
		t.Fatalf("retained %d", len(got))
	}
	for i, r := range got {
		if r.PostedNs != int64(6+i) {
			t.Errorf("span[%d].PostedNs = %d, want %d (oldest-first)", i, r.PostedNs, 6+i)
		}
	}
}

func TestHTTPEndpoint(t *testing.T) {
	faults := &metrics.FaultCounters{}
	faults.WorkerPanics.Add(5)
	faults.TasksFailed.Add(9)
	o := New(Options{SampleEvery: 1, TraceEvery: 1, Faults: faults})
	d := o.Domain("index", 1)
	w := d.Worker(0)
	c := d.NewClient()
	for i := 0; i < 8; i++ {
		sp := c.Post()
		t0 := w.SweepBegin()
		sp.MarkSwept(0)
		tt := w.TaskBegin()
		sp.MarkExecStart()
		sp.MarkExecEnd()
		w.TaskEnd(tt)
		sp.MarkResponded()
		w.SweepEnd(t0, 1)
		sp.Resolve(false)
	}
	w.Flush()
	c.Flush()
	o.Lifecycle("index", 0, EventWorkerStart)

	srv := httptest.NewServer(o.Handler())
	defer srv.Close()

	body := get(t, srv.URL+"/metrics")
	for _, want := range []string{
		`robustconf_tasks_swept_total{domain="index"} 8`,
		`robustconf_posts_total{domain="index"} 8`,
		`robustconf_faults_worker_panics_total 5`,
		`robustconf_faults_tasks_failed_total 9`,
		`robustconf_response_duration_ns_count{domain="index"} 8`,
		`le="+Inf"`,
		`robustconf_lifecycle_events_total{kind="worker-start"} 1`,
		`robustconf_spans_sampled_total 8`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	var spans []SpanRecord
	if err := json.Unmarshal([]byte(get(t, srv.URL+"/spans")), &spans); err != nil {
		t.Fatalf("/spans not JSON: %v", err)
	}
	if len(spans) != 8 {
		t.Errorf("/spans returned %d records, want 8", len(spans))
	}

	var events struct {
		Counts map[string]uint64 `json:"counts"`
		Events []Event           `json:"events"`
	}
	if err := json.Unmarshal([]byte(get(t, srv.URL+"/events")), &events); err != nil {
		t.Fatalf("/events not JSON: %v", err)
	}
	if events.Counts[EventWorkerStart] != 1 || len(events.Events) != 1 {
		t.Errorf("/events = %+v", events)
	}

	if !strings.Contains(get(t, srv.URL+"/"), "/debug/pprof/") {
		t.Error("index page missing pprof pointer")
	}
}

func TestServeAndStop(t *testing.T) {
	o := New(Options{})
	addr, stop, err := o.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	body := get(t, "http://"+addr+"/metrics")
	if !strings.Contains(body, "robustconf_uptime_seconds") {
		t.Errorf("metrics body = %q", body)
	}
	if err := stop(); err != nil {
		t.Errorf("stop: %v", err)
	}
}

// TestConcurrentShardsAndSnapshot exercises the flush/aggregate protocol
// under -race: workers and clients hammer their shards while a reader
// snapshots and renders.
func TestConcurrentShardsAndSnapshot(t *testing.T) {
	o := New(Options{SampleEvery: 8, TraceEvery: 4})
	d := o.Domain("d", 4)
	var wg sync.WaitGroup
	for wi := 0; wi < 4; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			w := d.Worker(wi)
			c := d.NewClient()
			for i := 0; i < 5000; i++ {
				sp := c.Post()
				t0 := w.SweepBegin()
				sp.MarkSwept(wi)
				tt := w.TaskBegin()
				sp.MarkExecStart()
				sp.MarkExecEnd()
				w.TaskEnd(tt)
				sp.MarkResponded()
				w.SweepEnd(t0, 1)
				sp.Resolve(i%2 == 0)
			}
			w.Flush()
			c.Flush()
		}(wi)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			s := o.Snapshot()
			_ = s.Domains[0].Occupancy()
			_ = o.Report()
			_ = o.Tracer().Spans()
		}
	}()
	wg.Wait()
	<-done
	s := o.Snapshot().Domains[0]
	if s.Tasks != 20000 || s.Posts != 20000 {
		t.Errorf("tasks %d posts %d, want 20000/20000", s.Tasks, s.Posts)
	}
}

func get(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var b strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		b.Write(buf[:n])
		if err != nil {
			break
		}
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d\n%s", url, resp.StatusCode, b.String())
	}
	return b.String()
}

// TestOccupancyZeroWorkers pins the zero-division edges: a domain with no
// workers (or no sweeps yet) must answer occupancy 0, not NaN, and a
// zero-worker instance must survive the snapshot/merge path.
func TestOccupancyZeroWorkers(t *testing.T) {
	var zero DomainSnapshot
	if occ := zero.Occupancy(); occ != 0 {
		t.Errorf("zero snapshot occupancy = %g, want 0", occ)
	}
	o := New(Options{SampleEvery: 1})
	o.Domain("empty", 0)
	s := o.Snapshot()
	if len(s.Domains) != 1 || s.Domains[0].Workers != 0 {
		t.Fatalf("zero-worker snapshot = %+v", s.Domains)
	}
	if occ := s.Domains[0].Occupancy(); occ != 0 || occ != occ { // NaN check via self-compare
		t.Errorf("zero-worker occupancy = %g, want 0", occ)
	}
	// Merging a zero-worker instance into a live one must not regress the
	// worker count or the counters.
	d := o.Domain("empty", 2)
	w := d.Worker(0)
	for i := 0; i < 4; i++ {
		tt := w.TaskBegin()
		w.TaskEnd(tt)
		w.SweepEnd(w.SweepBegin(), 1)
	}
	w.SweepEnd(w.SweepBegin(), 0)
	w.Flush()
	s = o.Snapshot()
	if len(s.Domains) != 1 {
		t.Fatalf("merge split domains: %+v", s.Domains)
	}
	ds := s.Domains[0]
	if ds.Workers != 2 || ds.Tasks != 4 || ds.Sweeps != 5 || ds.EmptySweep != 1 {
		t.Errorf("merged zero+live = %+v", ds)
	}
	if occ := ds.Occupancy(); occ < 0.79 || occ > 0.81 {
		t.Errorf("merged occupancy = %g, want 4/5", occ)
	}
}

// TestDomainSnapshotMergeSemantics unit-tests merge directly: monotonic
// counters sum, gauges follow their documented rules (BudgetRemaining
// latest-instance-wins, WALLastCheckpoint max, MaxBatch max, Pending sums),
// and the new Reads/WALCommitted counters participate.
func TestDomainSnapshotMergeSemantics(t *testing.T) {
	a := DomainSnapshot{
		Name: "d", Workers: 1, Tasks: 10, Sweeps: 20, EmptySweep: 5,
		Batched: 2, MaxBatch: 3, Posts: 10, BurstWaits: 1,
		Reads: 4, BypassHits: 2, BypassRetries: 1, BypassFallbacks: 1,
		Failed: 1, Rescued: 1, Restarts: 2, Pending: 3, BudgetRemaining: 6,
		Recoveries: 1, WALReplayed: 100, WALReplayNs: 1000,
		WALCommitted: 500, WALLastCheckpoint: 111,
	}
	b := DomainSnapshot{
		Name: "d", Workers: 4, Tasks: 30, Sweeps: 40, EmptySweep: 10,
		Batched: 8, MaxBatch: 2, Posts: 30, BurstWaits: 2,
		Reads: 6, BypassHits: 3, BypassRetries: 2, BypassFallbacks: 2,
		Failed: 2, Rescued: 2, Restarts: 3, Pending: 4, BudgetRemaining: 1,
		Recoveries: 2, WALReplayed: 200, WALReplayNs: 2000,
		WALCommitted: 700, WALLastCheckpoint: 99,
	}
	m := a
	m.merge(b)
	if m.Workers != 4 || m.MaxBatch != 3 {
		t.Errorf("max gauges wrong: workers=%d maxBatch=%d", m.Workers, m.MaxBatch)
	}
	if m.Tasks != 40 || m.Sweeps != 60 || m.EmptySweep != 15 || m.Posts != 40 ||
		m.Reads != 10 || m.BypassHits != 5 || m.Failed != 3 || m.Restarts != 5 ||
		m.Pending != 7 || m.Recoveries != 3 || m.WALCommitted != 1200 {
		t.Errorf("summed counters wrong: %+v", m)
	}
	// Latest instance supersedes for the budget gauge; checkpoint keeps max.
	if m.BudgetRemaining != 1 {
		t.Errorf("BudgetRemaining = %d, want latest instance's 1", m.BudgetRemaining)
	}
	if m.WALLastCheckpoint != 111 {
		t.Errorf("WALLastCheckpoint = %d, want max 111", m.WALLastCheckpoint)
	}
	if occ := m.Occupancy(); occ != 1-15.0/60.0 {
		t.Errorf("merged occupancy = %g, want %g", occ, 1-15.0/60.0)
	}
}

// TestSnapshotDuringConcurrentRegistration races Domain()/NewClient()
// registration against scrapes — the satellite-audited path: the domain
// list is copied under the observer lock and client sums run under each
// domain's lock, so no scrape can observe a half-registered shard.
func TestSnapshotDuringConcurrentRegistration(t *testing.T) {
	o := New(Options{SampleEvery: 8})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			d := o.Domain("churn", 1)
			c := d.NewClient()
			c.Post()
			c.Flush()
			d.SetExternal(func() DomainExternal { return DomainExternal{Pending: 1} })
		}
		close(stop)
	}()
	for {
		s := o.Snapshot()
		for _, d := range s.Domains {
			_ = d.Occupancy()
		}
		select {
		case <-stop:
			wg.Wait()
			if got := o.Snapshot().Domains[0].Posts; got != 50 {
				t.Errorf("posts after churn = %d, want 50", got)
			}
			return
		default:
		}
	}
}
