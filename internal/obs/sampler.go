package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
	"time"

	"robustconf/internal/obs/signal"
)

// DefaultSamplerEvery is the default sampler cadence. At 250ms a window is
// long enough that the shard flush cadences (flushEvery sweeps /
// clientFlushEvery posts) contribute negligible jitter, and short enough
// that the health detector reacts within a second of sustained change.
const DefaultSamplerEvery = 250 * time.Millisecond

// SamplerOptions tunes the continuous telemetry sampler.
type SamplerOptions struct {
	// Every is the sampling cadence (default DefaultSamplerEvery). A
	// negative value builds a manual sampler that never ticks on its own —
	// tests, benchmarks and harnesses drive it with TickNow.
	Every time.Duration
	// EWMAAlpha is the smoothing factor for every signal's EWMA
	// (default signal.DefaultEWMAAlpha).
	EWMAAlpha float64
	// Thresholds configures the health classifier; zero fields take
	// signal.DefaultThresholds.
	Thresholds signal.Thresholds
	// Stream, when set, receives one NDJSON line per domain per tick (the
	// signal.DomainSignals encoding) for offline analysis. Streaming
	// serialises on the tick goroutine and allocates; leave nil for the
	// allocation-free steady state.
	Stream io.Writer
}

// Sampler is the per-Observer telemetry pipeline: a goroutine that
// snapshots every registered domain on a cadence, folds each cumulative
// snapshot into per-window deltas, derives the signal catalogue
// (signal.DomainSignals) with EWMA smoothing and ring-regression slopes,
// classifies per-domain health with hysteresis, and publishes the result
// to Signals()/the /signals endpoint. Ticks read only the shards'
// published atomic images — never the worker-local mirrors — so sampling
// adds nothing to the worker critical path, and the tick itself is
// allocation-free in steady state (pinned by TestSignalTickZeroAlloc).
type Sampler struct {
	o       *Observer
	every   time.Duration
	alpha   float64
	th      signal.Thresholds
	startAt time.Time

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}

	mu      sync.Mutex
	doms    []*DomainObs // reusable copy of the observer's registrations
	states  map[string]*domainSignalState
	order   []*domainSignalState   // first-seen order, parallel to out
	out     []signal.DomainSignals // published view, overwritten in place
	scratch DomainSnapshot         // multi-instance merge scratch
	ticks   uint64
	lastAt  time.Time
	stream  *json.Encoder

	// Network front-end signals (zero-valued until a server attaches a
	// stats provider via Observer.SetServerStats).
	srvPrev     ServerStats
	srvHavePrev bool
	srvOps      signal.Series
	srvBatches  signal.Series
	srvRejects  signal.Series
	srvSig      ServerSignals
	srvHave     bool
}

// ServerSignals is the windowed view of the network front end's counters,
// derived on the same tick cadence as the per-domain signals: operation and
// batch rates with EWMA + slope, the realised pipeline depth (windowed
// ops/batch — the batching amplification the server actually achieved),
// and the BUSY rejection rate across quota and pool-acquire checks.
type ServerSignals struct {
	AtUnixNs      int64   `json:"at_unix_ns"`
	WindowSeconds float64 `json:"window_seconds"`

	OpsRate       signal.Signal `json:"ops_rate"`        // ops/s
	BatchRate     signal.Signal `json:"batch_rate"`      // delegation bursts/s
	RejectRate    signal.Signal `json:"reject_rate"`     // BUSY replies/s
	PipelineDepth float64       `json:"pipeline_depth"`  // windowed ops/batch
	ConnsActive   float64       `json:"conns_active"`    // gauge
	Draining      bool          `json:"draining"`
}

// domainSignalState is the sampler's per-domain-name memory: the previous
// cumulative snapshot the next window diffs against, one signal.Series per
// derived signal, the checkpoint-lag anchor, and the health tracker.
type domainSignalState struct {
	name     string
	seenTick uint64         // tick that last aggregated into cur
	cur      DomainSnapshot // this tick's merged cumulative view
	prev     DomainSnapshot
	havePrev bool

	occupancy, queueDepth, throughput, postRate,
	p50, p99, writeFrac, bypassHit, bypassRetry,
	bypassFallback, faultRate, restartRate, walRate signal.Series

	// Latency quantiles and write fraction hold their last value across
	// windows with no samples (an idle window says nothing about latency).
	lastP50, lastP99, lastWF float64

	ckptStamp       int64  // last observed WALLastCheckpoint
	committedAtCkpt uint64 // WALCommitted when the stamp last advanced

	health signal.HealthTracker
	sig    signal.DomainSignals
}

// StartSampler builds and starts the observer's sampler. Idempotent: a
// second call returns the already-running sampler unchanged. With
// opts.Every < 0 no goroutine is started; drive the sampler with TickNow.
func (o *Observer) StartSampler(opts SamplerOptions) *Sampler {
	o.mu.Lock()
	if o.sampler != nil {
		s := o.sampler
		o.mu.Unlock()
		return s
	}
	if opts.Every == 0 {
		opts.Every = DefaultSamplerEvery
	}
	if opts.EWMAAlpha <= 0 || opts.EWMAAlpha > 1 {
		opts.EWMAAlpha = signal.DefaultEWMAAlpha
	}
	s := &Sampler{
		o:       o,
		every:   opts.Every,
		alpha:   opts.EWMAAlpha,
		th:      opts.Thresholds.WithDefaults(),
		startAt: time.Now(),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
		states:  map[string]*domainSignalState{},
	}
	if opts.Stream != nil {
		s.stream = json.NewEncoder(opts.Stream)
	}
	o.sampler = s
	o.mu.Unlock()
	// Prime the baseline so the first cadence tick measures a real window.
	s.TickNow()
	if s.every > 0 {
		go s.run()
	} else {
		close(s.done)
	}
	return s
}

// Sampler returns the observer's running sampler, nil if none started.
func (o *Observer) Sampler() *Sampler {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.sampler
}

// StartSamplerToPath is the shared -signals flag plumbing for the commands:
// it starts the sampler at the given cadence and, when path is non-empty,
// streams one NDJSON line per domain per tick into a freshly created file.
// The returned stop function stops the sampler (flushing one final window)
// and closes the stream.
func (o *Observer) StartSamplerToPath(every time.Duration, path string) (stop func(), err error) {
	var f *os.File
	var stream io.Writer
	if path != "" {
		f, err = os.Create(path)
		if err != nil {
			return nil, fmt.Errorf("obs: signals stream: %w", err)
		}
		stream = f
	}
	smp := o.StartSampler(SamplerOptions{Every: every, Stream: stream})
	return func() {
		smp.Stop()
		if f != nil {
			f.Close()
		}
	}, nil
}

// Signals returns the latest published per-domain signal set (nil when no
// sampler is running). This is the Go API the re-planner consumes; the
// slice is a copy, safe to retain.
func (o *Observer) Signals() []signal.DomainSignals {
	if s := o.Sampler(); s != nil {
		return s.Signals()
	}
	return nil
}

func (s *Sampler) run() {
	defer close(s.done)
	t := time.NewTicker(s.every)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case now := <-t.C:
			s.tick(now)
		}
	}
}

// Stop halts the cadence goroutine (if any) and runs one final tick so
// runs shorter than the cadence still publish a measured window.
func (s *Sampler) Stop() {
	s.stopOnce.Do(func() {
		close(s.stop)
		<-s.done
		s.tick(time.Now())
	})
}

// TickNow forces one synchronous sampling pass. Exported for tests,
// benchmarks and harnesses; the cadence goroutine uses the same path.
func (s *Sampler) TickNow() { s.tick(time.Now()) }

// Signals returns a copy of the latest published per-domain signals.
func (s *Sampler) Signals() []signal.DomainSignals {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]signal.DomainSignals, len(s.out))
	copy(out, s.out)
	return out
}

// tick is the sampler core: snapshot → window delta → derive → classify →
// publish. Steady-state allocation-free; everything it touches is either
// reused sampler state or stack values.
func (s *Sampler) tick(now time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()

	o := s.o
	o.mu.Lock()
	s.doms = append(s.doms[:0], o.domains...)
	o.mu.Unlock()

	s.ticks++
	dt := 0.0
	if !s.lastAt.IsZero() {
		dt = now.Sub(s.lastAt).Seconds()
	}
	s.lastAt = now
	tSec := now.Sub(s.startAt).Seconds()
	nowUnix := now.UnixNano()

	// Aggregate registered instances by domain name (chaos schedules
	// re-register names across runs; cumulative merge keeps the counters
	// monotonic).
	for _, d := range s.doms {
		st := s.states[d.name]
		if st == nil {
			st = &domainSignalState{name: d.name}
			s.states[d.name] = st
			s.order = append(s.order, st)
			s.out = append(s.out, signal.DomainSignals{})
		}
		if st.seenTick != s.ticks {
			st.seenTick = s.ticks
			d.snapshotInto(&st.cur)
		} else {
			d.snapshotInto(&s.scratch)
			st.cur.merge(s.scratch)
		}
	}

	for i, st := range s.order {
		if st.seenTick != s.ticks {
			continue // registered name vanished (never happens today)
		}
		if !st.havePrev || dt <= 0 {
			// Baseline tick for this domain: publish identity + health,
			// measure from the next window on.
			st.prev = st.cur
			st.havePrev = true
			st.sig = signal.DomainSignals{
				Domain: st.name, AtUnixNs: nowUnix, Ticks: s.ticks,
				Health: st.health.Published(), CheckpointAgeSeconds: -1,
			}
			s.out[i] = st.sig
			continue
		}
		s.deriveLocked(st, dt, tSec, nowUnix)
		s.out[i] = st.sig
		st.prev = st.cur
	}

	s.tickServerLocked(dt, tSec, nowUnix)

	if s.stream != nil {
		for i := range s.out {
			_ = s.stream.Encode(&s.out[i])
		}
	}
}

// tickServerLocked folds the front end's cumulative counters (when a
// provider is attached) into windowed rates, mirroring deriveLocked for
// the pseudo-domain that is the server itself.
func (s *Sampler) tickServerLocked(dt, tSec float64, nowUnix int64) {
	cur, ok := s.o.ServerStats()
	if !ok {
		s.srvHave = false
		return
	}
	if !s.srvHavePrev || dt <= 0 {
		s.srvPrev = cur
		s.srvHavePrev = true
		return
	}
	opsD := subU(cur.Ops, s.srvPrev.Ops)
	batchesD := subU(cur.Batches, s.srvPrev.Batches)
	rejectsD := subU(cur.QuotaRejects+cur.BusyRejects, s.srvPrev.QuotaRejects+s.srvPrev.BusyRejects)
	a := s.alpha
	sig := &s.srvSig
	sig.AtUnixNs = nowUnix
	sig.WindowSeconds = dt
	sig.OpsRate = s.srvOps.Observe(tSec, float64(opsD)/dt, a)
	sig.BatchRate = s.srvBatches.Observe(tSec, float64(batchesD)/dt, a)
	sig.RejectRate = s.srvRejects.Observe(tSec, float64(rejectsD)/dt, a)
	sig.PipelineDepth = 0
	if batchesD > 0 {
		sig.PipelineDepth = float64(opsD) / float64(batchesD)
	}
	sig.ConnsActive = float64(cur.ConnsActive)
	sig.Draining = cur.Draining
	s.srvHave = true
	s.srvPrev = cur
}

// ServerSignals returns the latest windowed front-end signals and whether
// any have been derived (false when no server is attached, or before the
// first measured window).
func (s *Sampler) ServerSignals() (ServerSignals, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.srvSig, s.srvHave
}

// deriveLocked computes one domain's window deltas and signals, classifies
// health, and records the transition (if any) in the event journal.
func (s *Sampler) deriveLocked(st *domainSignalState, dt, tSec float64, nowUnix int64) {
	cur, prev := &st.cur, &st.prev

	sweepsD := subU(cur.Sweeps, prev.Sweeps)
	emptyD := subU(cur.EmptySweep, prev.EmptySweep)
	tasksD := subU(cur.Tasks, prev.Tasks)
	postsD := subU(cur.Posts, prev.Posts)
	readsD := subU(cur.Reads, prev.Reads)
	hitsD := subU(cur.BypassHits, prev.BypassHits)
	retriesD := subU(cur.BypassRetries, prev.BypassRetries)
	fallbacksD := subU(cur.BypassFallbacks, prev.BypassFallbacks)
	failedD := subU(cur.Failed, prev.Failed)
	restartsD := subI(cur.Restarts, prev.Restarts)
	committedD := subU(cur.WALCommitted, prev.WALCommitted)

	occ := 0.0
	if sweepsD > 0 {
		occ = 1 - float64(emptyD)/float64(sweepsD)
		if occ < 0 {
			occ = 0
		}
	}

	respD := cur.RespNs.Sub(prev.RespNs)
	if respD.Count > 0 {
		st.lastP50 = respD.Quantile(0.5)
		st.lastP99 = respD.Quantile(0.99)
	}

	// Write fraction: posts are delegated tasks (writes + delegated reads),
	// reads are bypass hits + delegated read-flagged invokes.
	delegatedReadsD := subU(readsD, hitsD)
	writesD := subU(postsD, delegatedReadsD)
	if writesD+readsD > 0 {
		st.lastWF = float64(writesD) / float64(writesD+readsD)
	}

	attempts := hitsD + fallbacksD
	hitRate, retryRate, fallbackRate := 0.0, 0.0, 0.0
	if readsD > 0 {
		hitRate = float64(hitsD) / float64(readsD)
	}
	if attempts > 0 {
		retryRate = float64(retriesD) / float64(attempts)
		fallbackRate = float64(fallbacksD) / float64(attempts)
	}

	a := s.alpha
	sig := &st.sig
	sig.Domain = st.name
	sig.AtUnixNs = nowUnix
	sig.WindowSeconds = dt
	sig.Ticks = s.ticks
	sig.Occupancy = st.occupancy.Observe(tSec, occ, a)
	sig.QueueDepth = st.queueDepth.Observe(tSec, float64(cur.Pending), a)
	sig.Throughput = st.throughput.Observe(tSec, float64(tasksD)/dt, a)
	sig.PostRate = st.postRate.Observe(tSec, float64(postsD)/dt, a)
	sig.P50Ns = st.p50.Observe(tSec, st.lastP50, a)
	sig.P99Ns = st.p99.Observe(tSec, st.lastP99, a)
	sig.WriteFraction = st.writeFrac.Observe(tSec, st.lastWF, a)
	sig.BypassHitRate = st.bypassHit.Observe(tSec, hitRate, a)
	sig.BypassRetryRate = st.bypassRetry.Observe(tSec, retryRate, a)
	sig.BypassFallbackRate = st.bypassFallback.Observe(tSec, fallbackRate, a)
	sig.FaultRate = st.faultRate.Observe(tSec, float64(failedD)/dt, a)
	sig.RestartRate = st.restartRate.Observe(tSec, float64(restartsD)/dt, a)
	sig.RestartBudget = float64(cur.BudgetRemaining)
	sig.WALCommitRate = st.walRate.Observe(tSec, float64(committedD)/dt, a)

	sig.CheckpointAgeSeconds = -1
	if cur.WALLastCheckpoint > 0 {
		sig.CheckpointAgeSeconds = float64(nowUnix-cur.WALLastCheckpoint) / 1e9
	}
	if cur.WALLastCheckpoint != st.ckptStamp {
		st.ckptStamp = cur.WALLastCheckpoint
		st.committedAtCkpt = cur.WALCommitted
	}
	sig.CheckpointLag = float64(subU(cur.WALCommitted, st.committedAtCkpt))

	raw := signal.Classify(s.th, signal.Inputs{
		Occupancy:        sig.Occupancy,
		P99Ns:            sig.P99Ns,
		FallbackRate:     sig.BypassFallbackRate.EWMA,
		RestartRate:      sig.RestartRate.EWMA,
		CheckpointAgeSec: sig.CheckpointAgeSeconds,
		QueueDepth:       cur.Pending,
		Throughput:       sig.Throughput.Value,
	})
	health, changed := st.health.Update(raw, s.th.SustainTicks)
	sig.Health = health
	if changed {
		s.o.events.add(Event{
			AtNs: nanos(), Domain: st.name, Worker: -1,
			Kind: healthEventKind(health),
		})
	}
}

// healthEventKind maps a health state to its journal event kind without
// string concatenation (transitions are rare, but the tick must not
// allocate even when they happen).
func healthEventKind(h signal.Health) string {
	switch h {
	case signal.Degraded:
		return EventHealthDegraded
	case signal.Saturated:
		return EventHealthSaturated
	case signal.Stalled:
		return EventHealthStalled
	default:
		return EventHealthHealthy
	}
}

func subU(cur, prev uint64) uint64 {
	if cur > prev {
		return cur - prev
	}
	return 0
}

func subI(cur, prev int64) int64 {
	if cur > prev {
		return cur - prev
	}
	return 0
}

// Report renders the human-readable signals block the cmd binaries append
// to the final telemetry report.
func (s *Sampler) Report() string {
	sigs := s.Signals()
	if len(sigs) == 0 {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "signals (cadence %s):\n", s.every)
	for _, d := range sigs {
		fmt.Fprintf(&b, "  %s: health=%s occ=%.2f (ewma %.2f) thr=%.0f/s p50=%.0fns p99=%.0fns (slope %+.0f/s) wf=%.2f queue=%.0f",
			d.Domain, d.Health, d.Occupancy.Value, d.Occupancy.EWMA,
			d.Throughput.Value, d.P50Ns.Value, d.P99Ns.Value, d.P99Ns.Slope,
			d.WriteFraction.Value, d.QueueDepth.Value)
		if d.BypassHitRate.Value > 0 || d.BypassFallbackRate.Value > 0 {
			fmt.Fprintf(&b, " bypass(hit=%.2f fb=%.2f)", d.BypassHitRate.Value, d.BypassFallbackRate.Value)
		}
		if d.CheckpointAgeSeconds >= 0 {
			fmt.Fprintf(&b, " ckpt(age=%.1fs lag=%.0f)", d.CheckpointAgeSeconds, d.CheckpointLag)
		}
		if d.RestartRate.Value > 0 || d.FaultRate.Value > 0 {
			fmt.Fprintf(&b, " faults=%.1f/s restarts=%.1f/s", d.FaultRate.Value, d.RestartRate.Value)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
