package obs

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"robustconf/internal/obs/signal"
)

// busyTick simulates one window of full-occupancy work on the shard pair
// and publishes it: every sweep finds one task, the client posts each.
func busyTick(w *WorkerShard, c *ClientShard, n int) {
	for i := 0; i < n; i++ {
		sp := c.Post()
		t0 := w.SweepBegin()
		sp.MarkSwept(0)
		tt := w.TaskBegin()
		w.TaskEnd(tt)
		w.SweepEnd(t0, 1)
		sp.MarkResponded()
		sp.Resolve(false)
	}
	w.Flush()
	c.Flush()
}

// idleTick simulates a window of empty sweeps (worker polling, no work).
func idleTick(w *WorkerShard, n int) {
	for i := 0; i < n; i++ {
		w.SweepEnd(w.SweepBegin(), 0)
	}
	w.Flush()
}

func manualSampler(o *Observer, th signal.Thresholds) *Sampler {
	return o.StartSampler(SamplerOptions{Every: -1, Thresholds: th})
}

func TestSamplerDerivesWindowSignals(t *testing.T) {
	o := New(Options{SampleEvery: 1})
	d := o.Domain("store", 1)
	w, c := d.Worker(0), d.NewClient()
	d.SetExternal(func() DomainExternal {
		return DomainExternal{Pending: 2, BudgetRemaining: 8,
			WALCommitted: 500, WALLastCheckpoint: time.Now().Add(-2 * time.Second).UnixNano()}
	})

	s := manualSampler(o, signal.Thresholds{})
	if got := o.Signals(); len(got) != 1 || got[0].Domain != "store" {
		t.Fatalf("baseline signals = %+v", got)
	}

	busyTick(w, c, 100)
	for i := 0; i < 10; i++ { // count the read-classified ops too
		c.CountRead()
	}
	c.Flush()
	time.Sleep(2 * time.Millisecond) // a real, measurable window
	s.TickNow()

	sigs := o.Signals()
	if len(sigs) != 1 {
		t.Fatalf("signals = %d domains", len(sigs))
	}
	g := sigs[0]
	if g.Occupancy.Value < 0.99 || g.Occupancy.Value > 1 {
		t.Errorf("busy window occupancy = %g, want ≈1", g.Occupancy.Value)
	}
	if g.Throughput.Value <= 0 || g.PostRate.Value <= 0 {
		t.Errorf("throughput %g post rate %g, want > 0", g.Throughput.Value, g.PostRate.Value)
	}
	if g.P99Ns.Value <= 0 || g.P50Ns.Value <= 0 || g.P99Ns.Value < g.P50Ns.Value {
		t.Errorf("window quantiles p50=%g p99=%g", g.P50Ns.Value, g.P99Ns.Value)
	}
	// 100 posts, 10 of them read-flagged: write fraction 90/100.
	if g.WriteFraction.Value < 0.89 || g.WriteFraction.Value > 0.91 {
		t.Errorf("write fraction = %g, want 0.9", g.WriteFraction.Value)
	}
	if g.QueueDepth.Value != 2 {
		t.Errorf("queue depth = %g, want external pending 2", g.QueueDepth.Value)
	}
	if g.RestartBudget != 8 {
		t.Errorf("restart budget = %g, want 8", g.RestartBudget)
	}
	if g.CheckpointAgeSeconds < 1.9 || g.CheckpointAgeSeconds > 10 {
		t.Errorf("checkpoint age = %gs, want ≈2s", g.CheckpointAgeSeconds)
	}
	if g.WindowSeconds <= 0 {
		t.Errorf("window seconds = %g", g.WindowSeconds)
	}

	// An idle window: occupancy collapses, latency quantiles hold their
	// last value (an empty window says nothing about latency).
	idleTick(w, 100)
	time.Sleep(time.Millisecond)
	s.TickNow()
	g = o.Signals()[0]
	if g.Occupancy.Value != 0 {
		t.Errorf("idle window occupancy = %g, want 0", g.Occupancy.Value)
	}
	if g.P99Ns.Value <= 0 {
		t.Errorf("idle window p99 = %g, want held at last measured value", g.P99Ns.Value)
	}
	if g.Throughput.Value != 0 {
		t.Errorf("idle throughput = %g, want 0", g.Throughput.Value)
	}
}

func TestSamplerBypassRates(t *testing.T) {
	o := New(Options{SampleEvery: 1})
	d := o.Domain("reads", 1)
	c := d.NewClient()
	s := manualSampler(o, signal.Thresholds{})

	for i := 0; i < 60; i++ {
		c.BypassHit(1)
	}
	for i := 0; i < 20; i++ {
		c.BypassFallback(3)
	}
	c.Flush()
	time.Sleep(time.Millisecond)
	s.TickNow()
	g := o.Signals()[0]
	// 60 hits (also 60 reads), 20 fallbacks → 80 attempts.
	if g.BypassHitRate.Value != 1.0 { // hits/reads: 60/60
		t.Errorf("bypass hit rate = %g, want 1.0", g.BypassHitRate.Value)
	}
	if g.BypassFallbackRate.Value != 0.25 { // 20/80
		t.Errorf("bypass fallback rate = %g, want 0.25", g.BypassFallbackRate.Value)
	}
	if want := (60.0 + 60.0) / 80.0; g.BypassRetryRate.Value != want {
		t.Errorf("bypass retry rate = %g, want %g", g.BypassRetryRate.Value, want)
	}
	// Pure bypass-read window: write fraction 0.
	if g.WriteFraction.Value != 0 {
		t.Errorf("write fraction = %g, want 0 in a read-only window", g.WriteFraction.Value)
	}
}

func TestSamplerHealthTransitionsIntoJournal(t *testing.T) {
	o := New(Options{SampleEvery: 1})
	d := o.Domain("hot", 1)
	w, c := d.Worker(0), d.NewClient()
	th := signal.Thresholds{
		OccupancyDegraded:  0.5,
		OccupancySaturated: 2, // unreachable: keep the test on the Degraded edge
		// Manual ticks land microseconds apart in real time, so the held
		// p99's per-second slope is huge and would keep the domain
		// Degraded on its own — park the slope rule out of reach; this
		// test is about the occupancy edge.
		P99SlopeNsPerSec: 1e18,
		SustainTicks:     2,
	}
	s := manualSampler(o, th)

	// Sustained load → Degraded after the hysteresis.
	for i := 0; i < 4; i++ {
		busyTick(w, c, 50)
		time.Sleep(time.Millisecond)
		s.TickNow()
	}
	if g := o.Signals()[0]; g.Health != signal.Degraded {
		t.Fatalf("health after sustained load = %v, want Degraded", g.Health)
	}
	// Load moves away → Healthy again once the EWMA decays.
	for i := 0; i < 12; i++ {
		idleTick(w, 50)
		time.Sleep(time.Millisecond)
		s.TickNow()
	}
	if g := o.Signals()[0]; g.Health != signal.Healthy {
		t.Fatalf("health after idle = %v, want Healthy", g.Health)
	}

	events, counts := o.Events()
	if counts[EventHealthDegraded] != 1 || counts[EventHealthHealthy] != 1 {
		t.Errorf("event counts = %v, want one health-degraded and one health-healthy", counts)
	}
	// Journal order carries the transition: degraded, then healthy.
	var order []string
	for _, e := range events {
		if strings.HasPrefix(e.Kind, "health-") {
			order = append(order, e.Kind)
			if e.Domain != "hot" || e.Worker != -1 {
				t.Errorf("health event misattributed: %+v", e)
			}
		}
	}
	if len(order) != 2 || order[0] != EventHealthDegraded || order[1] != EventHealthHealthy {
		t.Errorf("journal order = %v, want [health-degraded health-healthy]", order)
	}
}

func TestSamplerStalledDetection(t *testing.T) {
	o := New(Options{SampleEvery: 1})
	d := o.Domain("wedged", 1)
	w := d.Worker(0)
	pending := 0
	d.SetExternal(func() DomainExternal { return DomainExternal{Pending: pending} })
	s := manualSampler(o, signal.Thresholds{SustainTicks: 2})

	// Queue builds while the worker completes nothing.
	pending = 5
	for i := 0; i < 3; i++ {
		idleTick(w, 10)
		time.Sleep(time.Millisecond)
		s.TickNow()
	}
	if g := o.Signals()[0]; g.Health != signal.Stalled {
		t.Errorf("health = %v, want Stalled (queue %g, throughput %g)",
			g.Health, g.QueueDepth.Value, g.Throughput.Value)
	}
}

func TestSamplerMergesReRegisteredInstances(t *testing.T) {
	o := New(Options{SampleEvery: 1})
	s := manualSampler(o, signal.Thresholds{})
	// Two instances of the same name (a chaos schedule restarting its
	// runtime): windows must diff the merged cumulative view, not reset.
	d1 := o.Domain("store", 1)
	s.TickNow() // baseline tick for the newly registered name
	busyTick(d1.Worker(0), d1.NewClient(), 40)
	time.Sleep(time.Millisecond)
	s.TickNow()
	first := o.Signals()
	if len(first) != 1 || first[0].Throughput.Value <= 0 {
		t.Fatalf("first instance window = %+v", first)
	}

	d2 := o.Domain("store", 1)
	busyTick(d2.Worker(0), d2.NewClient(), 40)
	time.Sleep(time.Millisecond)
	s.TickNow()
	sigs := o.Signals()
	if len(sigs) != 1 {
		t.Fatalf("re-registered name split into %d signal rows", len(sigs))
	}
	if sigs[0].Throughput.Value <= 0 {
		t.Errorf("merged window throughput = %g, want > 0 (second instance's work)", sigs[0].Throughput.Value)
	}
}

// TestSignalTickZeroAlloc pins the sampler tick allocation-free in steady
// state: the tick runs forever on a background goroutine, so any per-tick
// garbage would be a standing GC tax on every observed run.
func TestSignalTickZeroAlloc(t *testing.T) {
	// SampleEvery is huge so the driver loop's Post() never mints a span:
	// what is measured is the tick (and the unsampled hot-path counting),
	// matching a production cadence where sampled posts are 1-in-64.
	o := New(Options{SampleEvery: 1 << 20})
	d := o.Domain("a", 2)
	d2 := o.Domain("b", 1)
	c := d.NewClient()
	w := d.Worker(0)
	d.SetExternal(func() DomainExternal { return DomainExternal{Pending: 1, WALCommitted: 7} })
	s := manualSampler(o, signal.Thresholds{})
	_ = d2
	// Prime: states registered, rings warm, health settled.
	for i := 0; i < 5; i++ {
		busyTick(w, c, 30)
		s.TickNow()
	}
	if n := testing.AllocsPerRun(100, func() {
		busyTick(w, c, 5)
		s.TickNow()
	}); n != 0 {
		t.Errorf("sampler tick allocates %.1f objects/op, want 0", n)
	}
}

func TestSamplerCadenceGoroutineAndStop(t *testing.T) {
	o := New(Options{SampleEvery: 1})
	d := o.Domain("live", 1)
	w, c := d.Worker(0), d.NewClient()
	s := o.StartSampler(SamplerOptions{Every: 2 * time.Millisecond})
	if again := o.StartSampler(SamplerOptions{Every: time.Hour}); again != s {
		t.Error("StartSampler is not idempotent")
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		busyTick(w, c, 20)
		sigs := o.Signals()
		if len(sigs) == 1 && sigs[0].Ticks > 2 && sigs[0].Throughput.Value > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("cadence goroutine never published a measured window: %+v", sigs)
		}
		time.Sleep(time.Millisecond)
	}
	s.Stop()
	s.Stop() // idempotent
	after := o.Signals()[0].Ticks
	time.Sleep(5 * time.Millisecond)
	if got := o.Signals()[0].Ticks; got != after {
		t.Errorf("sampler still ticking after Stop: %d -> %d", after, got)
	}
}

func TestSamplerNDJSONStream(t *testing.T) {
	var buf bytes.Buffer
	o := New(Options{SampleEvery: 1})
	d := o.Domain("st", 1)
	w, c := d.Worker(0), d.NewClient()
	s := o.StartSampler(SamplerOptions{Every: -1, Stream: &buf})
	busyTick(w, c, 30)
	time.Sleep(time.Millisecond)
	s.TickNow()
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) < 2 { // baseline tick + measured tick
		t.Fatalf("stream lines = %d, want ≥ 2:\n%s", len(lines), buf.String())
	}
	var last signal.DomainSignals
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &last); err != nil {
		t.Fatalf("stream line not JSON: %v\n%s", err, lines[len(lines)-1])
	}
	if last.Domain != "st" || last.Throughput.Value <= 0 {
		t.Errorf("streamed signals = %+v", last)
	}
}

func TestSignalsEndpointAndGauges(t *testing.T) {
	o := New(Options{SampleEvery: 1})
	d := o.Domain("web", 1)
	w, c := d.Worker(0), d.NewClient()
	s := manualSampler(o, signal.Thresholds{})
	busyTick(w, c, 50)
	time.Sleep(time.Millisecond)
	s.TickNow()

	srv := httptest.NewServer(o.Handler())
	defer srv.Close()

	var payload struct {
		SamplerRunning bool                   `json:"sampler_running"`
		Domains        []signal.DomainSignals `json:"domains"`
	}
	if err := json.Unmarshal([]byte(get(t, srv.URL+"/signals")), &payload); err != nil {
		t.Fatalf("/signals not JSON: %v", err)
	}
	if !payload.SamplerRunning || len(payload.Domains) != 1 {
		t.Fatalf("/signals payload = %+v", payload)
	}
	if g := payload.Domains[0]; g.Domain != "web" || g.Occupancy.Value <= 0 {
		t.Errorf("/signals domain row = %+v", g)
	}

	body := get(t, srv.URL+"/metrics")
	for _, want := range []string{
		`robustconf_signal_occupancy{domain="web"}`,
		`robustconf_signal_throughput{domain="web"}`,
		`robustconf_signal_p99_ns{domain="web"}`,
		`robustconf_signal_write_fraction{domain="web"}`,
		`robustconf_health_state{domain="web"} 0`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

func TestSignalsEndpointWithoutSampler(t *testing.T) {
	o := New(Options{})
	srv := httptest.NewServer(o.Handler())
	defer srv.Close()
	body := get(t, srv.URL+"/signals")
	if !strings.Contains(body, `"sampler_running": false`) {
		t.Errorf("/signals without sampler = %s", body)
	}
	if o.Signals() != nil {
		t.Error("Signals() without sampler should be nil")
	}
	// And /metrics must not emit signal gauges.
	if strings.Contains(get(t, srv.URL+"/metrics"), "robustconf_signal_") {
		t.Error("/metrics emitted signal gauges without a sampler")
	}
}
