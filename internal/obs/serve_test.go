package obs

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"robustconf/internal/obs/signal"
)

// TestServeStopDrainsInFlightRequests is the regression test for the
// Serve closer: it must call http.Server.Shutdown (graceful, bounded by
// ServeShutdownTimeout) rather than only closing the listener, so a
// request in flight when an operator stops the endpoint completes instead
// of dying mid-response. The pprof profile endpoint is the probe — its
// handler blocks for the requested duration, guaranteeing the stop call
// races an active request.
func TestServeStopDrainsInFlightRequests(t *testing.T) {
	o := New(Options{})
	addr, stop, err := o.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	type result struct {
		status int
		body   int
		err    error
	}
	done := make(chan result, 1)
	go func() {
		resp, err := http.Get(fmt.Sprintf("http://%s/debug/pprof/profile?seconds=1", addr))
		if err != nil {
			done <- result{err: err}
			return
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		done <- result{status: resp.StatusCode, body: len(body), err: err}
	}()
	// Let the profile request reach its handler, then stop the server
	// while the handler is still blocking.
	time.Sleep(200 * time.Millisecond)
	t0 := time.Now()
	if err := stop(); err != nil {
		t.Fatalf("stop during in-flight request: %v", err)
	}
	if d := time.Since(t0); d > ServeShutdownTimeout+time.Second {
		t.Fatalf("stop took %v, want < shutdown timeout %v + slack", d, ServeShutdownTimeout)
	}
	select {
	case r := <-done:
		if r.err != nil {
			t.Fatalf("in-flight request killed by stop: %v", r.err)
		}
		if r.status != http.StatusOK || r.body == 0 {
			t.Fatalf("in-flight request got status %d, %d body bytes; want 200 with a profile", r.status, r.body)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("in-flight request never completed")
	}
	// And the listener really is down.
	if _, err := http.Get(fmt.Sprintf("http://%s/metrics", addr)); err == nil {
		t.Fatal("listener still accepting after stop")
	}
}

// TestServerStatsMetricsAndSignals covers the front-end observability
// wiring end to end: an installed ServerStats provider must surface as
// robustconf_server_* metrics, feed the sampler's windowed rates, and ride
// the /signals payload and signal gauges.
func TestServerStatsMetricsAndSignals(t *testing.T) {
	o := New(Options{})
	st := ServerStats{
		ConnsAccepted: 3, ConnsActive: 2, Ops: 1000, Batches: 100,
		QuotaRejects: 4, BusyRejects: 6, PipelineMax: 64, Sessions: 2,
	}
	o.SetServerStats(func() ServerStats { return st })

	got, ok := o.ServerStats()
	if !ok || got.Ops != 1000 {
		t.Fatalf("ServerStats() = %+v, %v; want installed snapshot", got, ok)
	}

	addr, stop, err := o.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	fetch := func(path string) string {
		resp, err := http.Get(fmt.Sprintf("http://%s%s", addr, path))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	metrics := fetch("/metrics")
	for _, want := range []string{
		"robustconf_server_ops_total 1000",
		"robustconf_server_batches_total 100",
		"robustconf_server_connections_active 2",
		"robustconf_server_pipeline_depth_max 64",
		"robustconf_server_sessions 2",
		"robustconf_server_draining 0",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// Two manual ticks with advancing counters give the sampler a window.
	s := o.StartSampler(SamplerOptions{Every: -1, Thresholds: signal.Thresholds{}})
	defer s.Stop()
	s.TickNow()
	st.Ops += 500
	st.Batches += 10
	st.BusyRejects += 5
	time.Sleep(10 * time.Millisecond)
	s.TickNow()

	sig, ok := s.ServerSignals()
	if !ok {
		t.Fatal("no server signals after two ticks with a provider installed")
	}
	if sig.OpsRate.Value <= 0 {
		t.Errorf("ops rate %v, want > 0", sig.OpsRate.Value)
	}
	if want := 50.0; sig.PipelineDepth != want {
		t.Errorf("pipeline depth %v, want %v (500 ops / 10 batches)", sig.PipelineDepth, want)
	}
	if sig.RejectRate.Value <= 0 {
		t.Errorf("reject rate %v, want > 0", sig.RejectRate.Value)
	}

	signals := fetch("/signals")
	if !strings.Contains(signals, `"server"`) || !strings.Contains(signals, `"ops_rate"`) {
		t.Errorf("/signals missing server block: %s", signals)
	}
	metrics = fetch("/metrics")
	if !strings.Contains(metrics, "robustconf_signal_server_ops_per_sec") {
		t.Error("/metrics missing robustconf_signal_server_ops_per_sec gauge")
	}

	// Uninstalling the provider clears the signal on the next tick.
	o.SetServerStats(nil)
	s.TickNow()
	if _, ok := s.ServerSignals(); ok {
		t.Error("server signals survive a removed provider")
	}
}
