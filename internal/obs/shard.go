package obs

import (
	"sync/atomic"
	"time"
)

// epoch anchors every timestamp the layer records; spans and events carry
// nanoseconds since it, read off the monotonic clock.
var epoch = time.Now()

// nanos returns monotonic nanoseconds since the package epoch.
func nanos() int64 { return int64(time.Since(epoch)) }

// Flush cadences. Worker shards publish every flushEvery sweeps (a busy or
// idle worker sweeps continuously, so wall-clock staleness stays in the
// microsecond-to-millisecond range); client shards publish every
// clientFlushEvery posts and on Drain.
const (
	flushEvery       = 256
	clientFlushEvery = 64
)

// Published stat slots of a WorkerShard.
const (
	wsTasks = iota
	wsSweeps
	wsEmptySweeps
	wsBatched
	wsMaxBatch
	wsNumStats
)

// WorkerShard is one worker's telemetry shard. The hot-path counters are
// plain uint64s written only by the owning worker goroutine — no atomics,
// no sharing — separated from neighbouring shards by cache-line padding.
// The worker publishes them to the atomic `pub` image every flushEvery
// sweeps (and on exit); aggregation reads only `pub`, so a snapshot lags a
// live worker by at most flushEvery-1 sweeps.
//
// Latency is sampled, not measured per operation: every sampleEvery-th
// sweep (and task) brackets the work with two monotonic clock reads and
// records the duration into the domain's histogram. Everything else costs
// an increment and a predictable branch.
type WorkerShard struct {
	_ [64]byte // no false sharing with whatever precedes the shard

	// Owner-local mirror: written only by the worker goroutine.
	tasks      uint64
	sweeps     uint64
	empty      uint64
	batched    uint64
	maxBatch   uint64
	sinceFlush uint64

	mask uint64 // sampleEvery-1 (sampleEvery is a power of two)
	dom  *DomainObs

	_ [64]byte // local mirror and published image on separate lines

	pub [wsNumStats]atomic.Uint64

	_ [64]byte
}

// SweepBegin counts a poll round. It returns a start timestamp when this
// sweep is latency-sampled, 0 otherwise.
func (s *WorkerShard) SweepBegin() int64 {
	s.sweeps++
	if s.sweeps&s.mask == 0 {
		return nanos()
	}
	return 0
}

// SweepEnd closes the round opened by SweepBegin: n is the batch size the
// sweep answered. Records the sampled sweep latency and publishes the shard
// on the flush cadence.
func (s *WorkerShard) SweepEnd(t0 int64, n int) {
	if n == 0 {
		s.empty++
	} else {
		if n > 1 {
			s.batched += uint64(n)
		}
		if uint64(n) > s.maxBatch {
			s.maxBatch = uint64(n)
		}
	}
	if t0 != 0 {
		s.dom.sweepNs.Record(uint64(nanos() - t0))
	}
	s.sinceFlush++
	if s.sinceFlush >= flushEvery {
		s.Flush()
	}
}

// TaskBegin counts one task execution, returning a start timestamp when it
// is latency-sampled.
func (s *WorkerShard) TaskBegin() int64 {
	s.tasks++
	if s.tasks&s.mask == 0 {
		return nanos()
	}
	return 0
}

// TaskEnd records the sampled execute latency.
func (s *WorkerShard) TaskEnd(t0 int64) {
	if t0 != 0 {
		s.dom.execNs.Record(uint64(nanos() - t0))
	}
}

// Flush publishes the local mirror. Must be called from the owning worker
// goroutine (the sweep loop does, on a cadence and on worker exit).
func (s *WorkerShard) Flush() {
	s.sinceFlush = 0
	s.pub[wsTasks].Store(s.tasks)
	s.pub[wsSweeps].Store(s.sweeps)
	s.pub[wsEmptySweeps].Store(s.empty)
	s.pub[wsBatched].Store(s.batched)
	s.pub[wsMaxBatch].Store(s.maxBatch)
}

// Published stat slots of a ClientShard.
const (
	csPosts = iota
	csBurstWaits
	csReads
	csBypassHits
	csBypassRetries
	csBypassFallbacks
	csNumStats
)

// ClientShard is the client-side counterpart: owned by one delegation
// client (one application thread, as in FFWD), counting posts and
// full-burst waits, and making the sampling decision that creates a task
// lifecycle span.
type ClientShard struct {
	_ [64]byte

	posts           uint64
	burstWaits      uint64
	reads           uint64
	bypassHits      uint64
	bypassRetries   uint64
	bypassFallbacks uint64
	sinceFlush      uint64
	sampled         uint64

	mask       uint64
	traceEvery uint64 // commit every Nth sampled span to the ring; 0 = off
	dom        *DomainObs
	tracer     *Tracer
	spare      *Span // recycled span for PostRecycled; single-owner, reused once resolved

	_ [64]byte

	pub [csNumStats]atomic.Uint64

	_ [64]byte
}

// Post counts one delegation. On sampled posts it allocates and returns a
// lifecycle span for the task (stamped Posted); the caller threads it
// through the slot so the worker and the future can stamp the later stages.
// Returns nil on unsampled posts — the common case, which allocates
// nothing.
func (c *ClientShard) Post() *Span {
	c.posts++
	c.sinceFlush++
	if c.sinceFlush >= clientFlushEvery {
		c.Flush()
	}
	if c.posts&c.mask != 0 {
		return nil
	}
	c.sampled++
	sp := &Span{dom: c.dom, posted: nanos()}
	if c.traceEvery > 0 && c.sampled%c.traceEvery == 0 {
		sp.tracer = c.tracer
	}
	return sp
}

// PostRecycled is Post for recycled-future callers (Invoke, the pipelined
// reserved-handle path): identical counting and sampling, but the sampled
// span is drawn from a one-deep per-shard recycle pool instead of being
// freshly allocated — the source of the observed path's stray 1 B/op.
// Safe only where the span is resolved exactly once per lifecycle before
// the next sampled post can reclaim it, which the slot-embedded future
// guarantees (awaitToken resolves before the slot frees); detached Delegate
// futures must keep using Post. An unresolved spare (several sampled posts
// in flight at once) falls back to allocating.
func (c *ClientShard) PostRecycled() *Span {
	c.posts++
	c.sinceFlush++
	if c.sinceFlush >= clientFlushEvery {
		c.Flush()
	}
	if c.posts&c.mask != 0 {
		return nil
	}
	c.sampled++
	sp := c.spare
	if sp == nil || !sp.done.Load() {
		sp = &Span{}
		c.spare = sp
	}
	sp.reset(c.dom, nanos())
	if c.traceEvery > 0 && c.sampled%c.traceEvery == 0 {
		sp.tracer = c.tracer
	}
	return sp
}

// BurstWait counts a slot-poll stall: the client's burst was full (or all
// free slots bookkept pending) and it had to wait for its oldest future.
func (c *ClientShard) BurstWait() { c.burstWaits++ }

// CountRead marks the in-flight post as a read. The delegation client calls
// it on the read-flagged invoke path (Client.InvokeReadErr), where the
// read/write distinction is already a compile-time fact — one predictable
// branch and an owner-local increment, no extra lookup on the write path.
// Together with BypassHit (which also counts a read) this gives the sampler
// the windowed write fraction: writes = posts − (reads − bypass hits).
func (c *ClientShard) CountRead() { c.reads++ }

// BypassHit counts one validated local read on the read-bypass fast path,
// plus the wasted validation attempts (retries) it took before validating.
// Same owner-local counting and flush cadence as Post: the bypass hot path
// issues no atomic RMW.
func (c *ClientShard) BypassHit(retries uint64) {
	c.bypassHits++
	c.reads++
	c.bypassRetries += retries
	c.sinceFlush++
	if c.sinceFlush >= clientFlushEvery {
		c.Flush()
	}
}

// BypassFallback counts one read that exhausted its validation attempts (or
// found the publication words poisoned) and fell back to delegation.
func (c *ClientShard) BypassFallback(retries uint64) {
	c.bypassFallbacks++
	c.bypassRetries += retries
	c.sinceFlush++
	if c.sinceFlush >= clientFlushEvery {
		c.Flush()
	}
}

// Flush publishes the local mirror. Must be called from the owning client
// goroutine (Post does, on a cadence; Client.Drain does on teardown).
func (c *ClientShard) Flush() {
	c.sinceFlush = 0
	c.pub[csPosts].Store(c.posts)
	c.pub[csBurstWaits].Store(c.burstWaits)
	c.pub[csReads].Store(c.reads)
	c.pub[csBypassHits].Store(c.bypassHits)
	c.pub[csBypassRetries].Store(c.bypassRetries)
	c.pub[csBypassFallbacks].Store(c.bypassFallbacks)
}
