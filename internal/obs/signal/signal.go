// Package signal holds the pure data types and window math behind the
// continuous telemetry pipeline (internal/obs sampler): per-domain rolling
// window signals derived from the cumulative shard counters, EWMA
// smoothing, ring-regression slope estimates, and the health classifier
// that turns signals into Healthy/Degraded/Saturated/Stalled states.
//
// The package is a leaf by design — it imports nothing from the runtime —
// so the future re-planner (ROADMAP item 1) can consume DomainSignals
// without dragging in the observer, and every piece of the math is unit
// testable without goroutines or clocks.
package signal

import (
	"fmt"
	"time"
)

// Signal is one windowed telemetry series at the latest sampler tick:
// the raw value of the last window, its EWMA-smoothed level, and a
// per-second slope estimated by least squares over the retained ring of
// windows. Slope is the derivative a detector wants ("p99 is climbing"),
// robust to single-window noise in a way value−previous is not.
type Signal struct {
	Value float64 `json:"value"`
	EWMA  float64 `json:"ewma"`
	Slope float64 `json:"slope"`
}

// RingCap is how many windows a Series retains for slope regression. At
// the default 250ms cadence this is a 4-second regression horizon.
const RingCap = 16

// DefaultEWMAAlpha is the default smoothing factor: each new window
// contributes ~30%, so the EWMA settles within roughly 7 windows.
const DefaultEWMAAlpha = 0.3

// Series is the fixed-capacity state behind one Signal: a ring of
// (time, value) window samples plus the running EWMA. The zero value is
// ready to use; Observe never allocates.
type Series struct {
	times  [RingCap]float64 // seconds, caller's clock
	values [RingCap]float64
	n      int // samples retained (≤ RingCap)
	next   int // ring write position
	ewma   float64
	primed bool
}

// Observe pushes one window sample (t in seconds on any monotonic clock,
// v the window's value) and returns the derived Signal. alpha is the EWMA
// smoothing factor in (0,1]; ≤0 falls back to DefaultEWMAAlpha.
func (s *Series) Observe(t, v, alpha float64) Signal {
	if alpha <= 0 || alpha > 1 {
		alpha = DefaultEWMAAlpha
	}
	if !s.primed {
		s.ewma = v
		s.primed = true
	} else {
		s.ewma += alpha * (v - s.ewma)
	}
	s.times[s.next] = t
	s.values[s.next] = v
	s.next = (s.next + 1) % RingCap
	if s.n < RingCap {
		s.n++
	}
	return Signal{Value: v, EWMA: s.ewma, Slope: s.slope()}
}

// slope is the least-squares regression slope (value per second) over the
// retained ring. Fewer than two samples — or a degenerate time spread —
// yields 0.
func (s *Series) slope() float64 {
	if s.n < 2 {
		return 0
	}
	var sumT, sumV float64
	for i := 0; i < s.n; i++ {
		sumT += s.times[i]
		sumV += s.values[i]
	}
	meanT := sumT / float64(s.n)
	meanV := sumV / float64(s.n)
	var cov, varT float64
	for i := 0; i < s.n; i++ {
		dt := s.times[i] - meanT
		cov += dt * (s.values[i] - meanV)
		varT += dt * dt
	}
	if varT < 1e-12 {
		return 0
	}
	return cov / varT
}

// Health is a domain's classified state at one sampler tick. Ordered by
// severity: when several rules fire, the most severe state wins.
type Health int

const (
	// Healthy: no threshold breached.
	Healthy Health = iota
	// Degraded: a soft threshold is breached — occupancy sustained high,
	// p99 climbing, restart budget burning, checkpoint stale, or reads
	// falling back to delegation — the domain still serves but the
	// autopilot should consider moving load.
	Degraded
	// Saturated: occupancy pinned at the hard threshold; the domain has no
	// headroom and queue growth is structural, not transient.
	Saturated
	// Stalled: work is queued but nothing completed for a sustained
	// interval — a dead or wedged domain.
	Stalled
)

// String returns the lowercase state name (used in event kinds and JSON).
func (h Health) String() string {
	switch h {
	case Healthy:
		return "healthy"
	case Degraded:
		return "degraded"
	case Saturated:
		return "saturated"
	case Stalled:
		return "stalled"
	}
	return fmt.Sprintf("health(%d)", int(h))
}

// MarshalJSON encodes the state as its string name.
func (h Health) MarshalJSON() ([]byte, error) {
	return []byte(`"` + h.String() + `"`), nil
}

// UnmarshalJSON decodes the string name form (offline analysis of NDJSON
// streams round-trips through this).
func (h *Health) UnmarshalJSON(b []byte) error {
	switch string(b) {
	case `"healthy"`:
		*h = Healthy
	case `"degraded"`:
		*h = Degraded
	case `"saturated"`:
		*h = Saturated
	case `"stalled"`:
		*h = Stalled
	default:
		return fmt.Errorf("signal: unknown health state %s", b)
	}
	return nil
}

// Thresholds configures the health classifier. The zero value means "use
// the default" for every field; WithDefaults fills the gaps.
type Thresholds struct {
	// OccupancyDegraded: EWMA occupancy at or above this marks Degraded.
	OccupancyDegraded float64
	// OccupancySaturated: EWMA occupancy at or above this marks Saturated.
	OccupancySaturated float64
	// P99SlopeNsPerSec: windowed response p99 climbing faster than this
	// (ns per second, from the ring regression) marks Degraded.
	P99SlopeNsPerSec float64
	// FallbackRateDegraded: fraction of bypass read attempts falling back
	// to delegation at or above this marks Degraded.
	FallbackRateDegraded float64
	// RestartRatePerSec: worker restarts per second at or above this marks
	// Degraded (restart-budget burn).
	RestartRatePerSec float64
	// CheckpointAgeDegraded: a WAL checkpoint older than this marks
	// Degraded. Ignored for domains without a WAL.
	CheckpointAgeDegraded time.Duration
	// SustainTicks: a candidate state must hold for this many consecutive
	// sampler ticks before the published state changes (hysteresis).
	SustainTicks int
}

// DefaultThresholds are conservative starting points: saturation near
// occupancy 1, degradation at sustained 0.85, p99 climbing by ≥100µs/s,
// half the bypass reads falling back, one restart every two seconds, a
// checkpoint more than 30s stale, and two-tick hysteresis.
var DefaultThresholds = Thresholds{
	OccupancyDegraded:     0.85,
	OccupancySaturated:    0.97,
	P99SlopeNsPerSec:      100_000,
	FallbackRateDegraded:  0.5,
	RestartRatePerSec:     0.5,
	CheckpointAgeDegraded: 30 * time.Second,
	SustainTicks:          2,
}

// WithDefaults returns t with every zero field replaced by its default.
func (t Thresholds) WithDefaults() Thresholds {
	d := DefaultThresholds
	if t.OccupancyDegraded <= 0 {
		t.OccupancyDegraded = d.OccupancyDegraded
	}
	if t.OccupancySaturated <= 0 {
		t.OccupancySaturated = d.OccupancySaturated
	}
	if t.P99SlopeNsPerSec <= 0 {
		t.P99SlopeNsPerSec = d.P99SlopeNsPerSec
	}
	if t.FallbackRateDegraded <= 0 {
		t.FallbackRateDegraded = d.FallbackRateDegraded
	}
	if t.RestartRatePerSec <= 0 {
		t.RestartRatePerSec = d.RestartRatePerSec
	}
	if t.CheckpointAgeDegraded <= 0 {
		t.CheckpointAgeDegraded = d.CheckpointAgeDegraded
	}
	if t.SustainTicks <= 0 {
		t.SustainTicks = d.SustainTicks
	}
	return t
}

// Inputs are the per-tick facts the classifier reads, already reduced to
// scalars by the sampler.
type Inputs struct {
	Occupancy        Signal
	P99Ns            Signal
	FallbackRate     float64 // fallbacks / (hits + fallbacks) this window
	RestartRate      float64 // restarts per second this window
	CheckpointAgeSec float64 // seconds since last checkpoint; < 0 = no WAL
	QueueDepth       int     // posted-but-unanswered slots (gauge)
	Throughput       float64 // tasks per second this window
}

// Classify maps one tick's inputs to the rawest (un-hysteresed) health
// state under th. Severity wins: Stalled > Saturated > Degraded.
func Classify(th Thresholds, in Inputs) Health {
	if in.QueueDepth > 0 && in.Throughput == 0 {
		return Stalled
	}
	if in.Occupancy.EWMA >= th.OccupancySaturated {
		return Saturated
	}
	if in.Occupancy.EWMA >= th.OccupancyDegraded ||
		in.P99Ns.Slope >= th.P99SlopeNsPerSec ||
		in.FallbackRate >= th.FallbackRateDegraded ||
		in.RestartRate >= th.RestartRatePerSec ||
		(in.CheckpointAgeSec >= 0 && in.CheckpointAgeSec >= th.CheckpointAgeDegraded.Seconds()) {
		return Degraded
	}
	return Healthy
}

// HealthTracker adds hysteresis on top of Classify: a candidate state must
// repeat for SustainTicks consecutive ticks before the published state
// flips, so a single noisy window cannot flap the journal. The zero value
// starts published-Healthy.
type HealthTracker struct {
	published Health
	candidate Health
	streak    int
}

// Published returns the current hysteresed state.
func (ht *HealthTracker) Published() Health { return ht.published }

// Update feeds one tick's raw classification. It returns the published
// state and whether this tick changed it (the transition edge the journal
// records).
func (ht *HealthTracker) Update(raw Health, sustainTicks int) (Health, bool) {
	if sustainTicks < 1 {
		sustainTicks = 1
	}
	if raw == ht.published {
		ht.candidate = raw
		ht.streak = 0
		return ht.published, false
	}
	if raw == ht.candidate {
		ht.streak++
	} else {
		ht.candidate = raw
		ht.streak = 1
	}
	if ht.streak >= sustainTicks {
		ht.published = raw
		ht.streak = 0
		return ht.published, true
	}
	return ht.published, false
}

// DomainSignals is the full windowed signal set for one domain at one
// sampler tick — the value Observer.Signals() returns and the /signals
// endpoint and NDJSON stream serialise.
type DomainSignals struct {
	Domain        string  `json:"domain"`
	AtUnixNs      int64   `json:"at_unix_ns"`
	WindowSeconds float64 `json:"window_seconds"`
	Ticks         uint64  `json:"ticks"`
	Health        Health  `json:"health"`

	// Load and latency.
	Occupancy  Signal `json:"occupancy"`   // fraction of sweeps finding work
	QueueDepth Signal `json:"queue_depth"` // posted-but-unanswered slots (gauge)
	Throughput Signal `json:"throughput"`  // tasks executed per second
	PostRate   Signal `json:"post_rate"`   // tasks delegated per second
	P50Ns      Signal `json:"p50_ns"`      // windowed response p50 (sampled)
	P99Ns      Signal `json:"p99_ns"`      // windowed response p99 (sampled)

	// Mix and read path.
	WriteFraction      Signal `json:"write_fraction"`       // writes / (reads+writes)
	BypassHitRate      Signal `json:"bypass_hit_rate"`      // bypass hits / reads
	BypassRetryRate    Signal `json:"bypass_retry_rate"`    // retries per bypass attempt
	BypassFallbackRate Signal `json:"bypass_fallback_rate"` // fallbacks / bypass attempts

	// Failure and durability.
	FaultRate            Signal  `json:"fault_rate"`             // failed tasks per second
	RestartRate          Signal  `json:"restart_rate"`           // worker restarts per second
	RestartBudget        float64 `json:"restart_budget"`         // respawns left (gauge)
	WALCommitRate        Signal  `json:"wal_commit_rate"`        // records committed per second
	CheckpointAgeSeconds float64 `json:"checkpoint_age_seconds"` // -1 = no WAL/checkpoint
	CheckpointLag        float64 `json:"checkpoint_lag"`         // records committed since last checkpoint
}
