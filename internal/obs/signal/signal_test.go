package signal

import (
	"encoding/json"
	"math"
	"testing"
	"time"
)

func TestSeriesEWMAAndSlope(t *testing.T) {
	var s Series
	// A perfect ramp: v = 10·t. Slope must converge to 10/s, EWMA must trail
	// the latest value from below.
	var last Signal
	for i := 0; i < RingCap; i++ {
		tt := float64(i) * 0.25
		last = s.Observe(tt, 10*tt, 0.3)
	}
	if math.Abs(last.Slope-10) > 1e-9 {
		t.Errorf("ramp slope = %g, want 10", last.Slope)
	}
	if last.EWMA >= last.Value {
		t.Errorf("EWMA %g should trail the ramp's latest value %g", last.EWMA, last.Value)
	}
	// A constant series: slope 0, EWMA equal to the constant.
	var c Series
	for i := 0; i < 2*RingCap; i++ {
		last = c.Observe(float64(i), 7, 0.3)
	}
	if last.Slope != 0 || math.Abs(last.EWMA-7) > 1e-9 || last.Value != 7 {
		t.Errorf("constant series signal = %+v, want value=ewma=7 slope=0", last)
	}
}

func TestSeriesSingleSampleAndDegenerateTime(t *testing.T) {
	var s Series
	sig := s.Observe(1, 42, 0.3)
	if sig.Slope != 0 {
		t.Errorf("single-sample slope = %g, want 0", sig.Slope)
	}
	if sig.EWMA != 42 {
		t.Errorf("first observation should prime EWMA: got %g", sig.EWMA)
	}
	// Identical timestamps must not divide by zero.
	var d Series
	d.Observe(5, 1, 0.3)
	if sig := d.Observe(5, 100, 0.3); sig.Slope != 0 {
		t.Errorf("degenerate-time slope = %g, want 0", sig.Slope)
	}
	// alpha out of range falls back to the default instead of freezing.
	var a Series
	a.Observe(0, 0, -1)
	if sig := a.Observe(1, 10, -1); sig.EWMA <= 0 {
		t.Errorf("fallback-alpha EWMA = %g, want > 0", sig.EWMA)
	}
}

func TestSeriesRingWraps(t *testing.T) {
	var s Series
	// Fill the ring with a steep ramp, then continue flat: once the ramp
	// falls out of the ring, the slope must decay toward 0.
	for i := 0; i < RingCap; i++ {
		s.Observe(float64(i), float64(100*i), 0.3)
	}
	steep := s.Observe(float64(RingCap), float64(100*RingCap), 0.3).Slope
	var flat Signal
	for i := 0; i < 2*RingCap; i++ {
		flat = s.Observe(float64(RingCap+1+i), float64(100*RingCap), 0.3)
	}
	if flat.Slope >= steep/10 {
		t.Errorf("slope did not decay after ring wrapped: steep=%g flat=%g", steep, flat.Slope)
	}
}

func TestClassifySeverityOrder(t *testing.T) {
	th := DefaultThresholds
	cases := []struct {
		name string
		in   Inputs
		want Health
	}{
		{"idle", Inputs{CheckpointAgeSec: -1}, Healthy},
		{"busy-but-fine", Inputs{
			Occupancy: Signal{EWMA: 0.5}, Throughput: 1000,
			QueueDepth: 3, CheckpointAgeSec: -1,
		}, Healthy},
		{"occupancy-degraded", Inputs{
			Occupancy: Signal{EWMA: 0.9}, Throughput: 1000, CheckpointAgeSec: -1,
		}, Degraded},
		{"p99-climbing", Inputs{
			P99Ns: Signal{Slope: 2 * th.P99SlopeNsPerSec}, Throughput: 10, CheckpointAgeSec: -1,
		}, Degraded},
		{"fallback-storm", Inputs{
			FallbackRate: 0.8, Throughput: 10, CheckpointAgeSec: -1,
		}, Degraded},
		{"restart-burn", Inputs{
			RestartRate: 1.0, Throughput: 10, CheckpointAgeSec: -1,
		}, Degraded},
		{"stale-checkpoint", Inputs{
			Throughput: 10, CheckpointAgeSec: th.CheckpointAgeDegraded.Seconds() + 1,
		}, Degraded},
		{"no-wal-never-stale", Inputs{
			Throughput: 10, CheckpointAgeSec: -1,
		}, Healthy},
		{"saturated-beats-degraded", Inputs{
			Occupancy: Signal{EWMA: 0.99}, RestartRate: 1.0, Throughput: 10, CheckpointAgeSec: -1,
		}, Saturated},
		{"stalled-beats-all", Inputs{
			Occupancy: Signal{EWMA: 0.99}, QueueDepth: 5, Throughput: 0, CheckpointAgeSec: -1,
		}, Stalled},
	}
	for _, c := range cases {
		if got := Classify(th, c.in); got != c.want {
			t.Errorf("%s: Classify = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestHealthTrackerHysteresis(t *testing.T) {
	var ht HealthTracker
	if ht.Published() != Healthy {
		t.Fatalf("zero tracker publishes %v, want Healthy", ht.Published())
	}
	// One noisy Degraded tick must not flip a 2-tick sustain.
	if st, changed := ht.Update(Degraded, 2); changed || st != Healthy {
		t.Errorf("single tick flipped: %v changed=%v", st, changed)
	}
	if st, changed := ht.Update(Healthy, 2); changed || st != Healthy {
		t.Errorf("recovery tick: %v changed=%v", st, changed)
	}
	// Two consecutive Degraded ticks flip exactly once.
	ht.Update(Degraded, 2)
	st, changed := ht.Update(Degraded, 2)
	if !changed || st != Degraded {
		t.Errorf("sustained ticks did not flip: %v changed=%v", st, changed)
	}
	if _, changed := ht.Update(Degraded, 2); changed {
		t.Error("steady state reported a transition")
	}
	// A candidate switch mid-streak resets the streak.
	ht.Update(Saturated, 3)
	ht.Update(Saturated, 3)
	if st, changed := ht.Update(Stalled, 3); changed || st != Degraded {
		t.Errorf("candidate switch leaked: %v changed=%v", st, changed)
	}
	// Sustain below 1 is clamped to immediate.
	var fast HealthTracker
	if st, changed := fast.Update(Stalled, 0); !changed || st != Stalled {
		t.Errorf("sustain 0 should flip immediately: %v changed=%v", st, changed)
	}
}

func TestThresholdsWithDefaults(t *testing.T) {
	filled := Thresholds{}.WithDefaults()
	if filled != DefaultThresholds {
		t.Errorf("zero thresholds = %+v, want defaults", filled)
	}
	custom := Thresholds{OccupancyDegraded: 0.5, SustainTicks: 7}.WithDefaults()
	if custom.OccupancyDegraded != 0.5 || custom.SustainTicks != 7 {
		t.Errorf("explicit fields overwritten: %+v", custom)
	}
	if custom.OccupancySaturated != DefaultThresholds.OccupancySaturated ||
		custom.CheckpointAgeDegraded != 30*time.Second {
		t.Errorf("unset fields not defaulted: %+v", custom)
	}
}

func TestHealthJSONRoundTrip(t *testing.T) {
	for _, h := range []Health{Healthy, Degraded, Saturated, Stalled} {
		b, err := json.Marshal(h)
		if err != nil {
			t.Fatal(err)
		}
		var back Health
		if err := json.Unmarshal(b, &back); err != nil || back != h {
			t.Errorf("round trip %v -> %s -> %v (err %v)", h, b, back, err)
		}
	}
	var bad Health
	if err := json.Unmarshal([]byte(`"melting"`), &bad); err == nil {
		t.Error("unknown state should not unmarshal")
	}
	// DomainSignals serialises health as the string name.
	b, err := json.Marshal(DomainSignals{Domain: "d", Health: Saturated})
	if err != nil {
		t.Fatal(err)
	}
	if want := `"health":"saturated"`; !containsStr(string(b), want) {
		t.Errorf("DomainSignals JSON missing %s: %s", want, b)
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestSeriesObserveNoAlloc(t *testing.T) {
	var s Series
	i := 0
	if n := testing.AllocsPerRun(1000, func() {
		i++
		s.Observe(float64(i), float64(i%7), 0.3)
	}); n != 0 {
		t.Errorf("Series.Observe allocates %.1f/op, want 0 (it sits on the sampler tick)", n)
	}
}
