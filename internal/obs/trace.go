package obs

import (
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
)

// Span tracks one sampled task through the delegation lifecycle:
//
//	post → sweep → execute → respond → future-resolved
//
// The client allocates it at post time (ClientShard.Post), the worker
// stamps the middle stages during its sweep, and whichever goroutine
// observes the future's completion stamps Resolved, records the response
// latency, and — when the span is trace-selected — commits an immutable
// SpanRecord into the ring.
//
// Stage stamps cross the client→worker→waiter hand-offs, so the fields the
// worker writes are atomics; `posted` is written before the slot's release
// store publishes the span and is ordered by it. All mark methods are
// nil-receiver safe so the hot path can call them unconditionally on the
// (usually nil) span pointer.
type Span struct {
	dom    *DomainObs
	tracer *Tracer // nil unless this span was selected for the ring
	posted int64

	worker    atomic.Int32
	swept     atomic.Int64
	execStart atomic.Int64
	execEnd   atomic.Int64
	responded atomic.Int64
	failed    atomic.Bool
	done      atomic.Bool
}

// MarkSwept stamps the worker's pickup of the posted task.
func (s *Span) MarkSwept(worker int) {
	if s == nil {
		return
	}
	s.worker.Store(int32(worker))
	s.swept.Store(nanos())
}

// MarkExecStart stamps the start of task execution.
func (s *Span) MarkExecStart() {
	if s == nil {
		return
	}
	s.execStart.Store(nanos())
}

// MarkExecEnd stamps the end of task execution.
func (s *Span) MarkExecEnd() {
	if s == nil {
		return
	}
	s.execEnd.Store(nanos())
}

// MarkResponded stamps the completion of the task's future (the response
// write). Completion paths race by design (worker vs. seal rescue vs. crash
// fail-over — the future's CAS arbitrates); the stamp is an atomic store,
// so the losing path's overwrite is benign.
func (s *Span) MarkResponded() {
	if s == nil {
		return
	}
	s.responded.Store(nanos())
}

// Resolve finalises the span when a waiter observes the future's result:
// stamps the resolved time, records post→resolved response latency into the
// domain histogram, and commits the span to the trace ring when selected.
// Idempotent — only the first caller wins.
func (s *Span) Resolve(failed bool) {
	if s == nil || !s.done.CompareAndSwap(false, true) {
		return
	}
	resolved := nanos()
	s.failed.Store(failed)
	s.dom.respNs.Record(uint64(resolved - s.posted))
	if s.tracer != nil {
		s.tracer.commit(s.record(resolved))
	}
}

// reset rearms a resolved span for a new lifecycle. Only the shard that
// minted the span calls it (PostRecycled), and only after observing
// done=true — Resolve has run, and every completion path claims the slot's
// versioned state first, so no straggler from the previous lifecycle can
// still write the span.
func (s *Span) reset(dom *DomainObs, posted int64) {
	s.dom = dom
	s.tracer = nil
	s.posted = posted
	s.worker.Store(0)
	s.swept.Store(0)
	s.execStart.Store(0)
	s.execEnd.Store(0)
	s.responded.Store(0)
	s.failed.Store(false)
	s.done.Store(false)
}

// record freezes the span into its immutable exported form.
func (s *Span) record(resolved int64) SpanRecord {
	return SpanRecord{
		Domain:      s.dom.name,
		Worker:      s.worker.Load(),
		PostedNs:    s.posted,
		SweptNs:     s.swept.Load(),
		ExecStartNs: s.execStart.Load(),
		ExecEndNs:   s.execEnd.Load(),
		RespondedNs: s.responded.Load(),
		ResolvedNs:  resolved,
		Failed:      s.failed.Load(),
	}
}

// SpanRecord is a completed span: monotonic nanosecond stamps (since the
// process's obs epoch) for each lifecycle stage. Stages a task never
// reached (e.g. a rescued post was never swept) are 0.
type SpanRecord struct {
	Domain      string `json:"domain"`
	Worker      int32  `json:"worker"`
	PostedNs    int64  `json:"posted_ns"`
	SweptNs     int64  `json:"swept_ns"`
	ExecStartNs int64  `json:"exec_start_ns"`
	ExecEndNs   int64  `json:"exec_end_ns"`
	RespondedNs int64  `json:"responded_ns"`
	ResolvedNs  int64  `json:"resolved_ns"`
	Failed      bool   `json:"failed"`
}

// Tracer keeps the last cap committed spans in a fixed-size ring. Commits
// are mutex-guarded — they happen only for trace-selected spans, a
// configurable sliver of sampled posts, so the lock is uncontended noise
// next to the delegation protocol.
type Tracer struct {
	mu    sync.Mutex
	ring  []SpanRecord
	next  int
	total uint64
}

// NewTracer builds a ring of the given capacity (minimum 1).
func NewTracer(cap int) *Tracer {
	if cap < 1 {
		cap = 1
	}
	return &Tracer{ring: make([]SpanRecord, 0, cap)}
}

func (t *Tracer) commit(r SpanRecord) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, r)
	} else {
		t.ring[t.next] = r
	}
	t.next = (t.next + 1) % cap(t.ring)
	t.total++
}

// Total returns how many spans have ever been committed (including those
// the ring has since overwritten).
func (t *Tracer) Total() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Spans returns the retained spans, oldest first.
func (t *Tracer) Spans() []SpanRecord {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.ring) < cap(t.ring) {
		return append([]SpanRecord(nil), t.ring...)
	}
	out := make([]SpanRecord, 0, len(t.ring))
	out = append(out, t.ring[t.next:]...)
	out = append(out, t.ring[:t.next]...)
	return out
}

// WriteJSON dumps the retained spans as a JSON array.
func (t *Tracer) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t.Spans())
}

// Lifecycle event kinds recorded by the runtime core.
const (
	EventWorkerStart       = "worker-start"
	EventWorkerCrash       = "worker-crash"
	EventWorkerRespawn     = "worker-respawn"
	EventRestartsExhausted = "restarts-exhausted"
	EventDomainStop        = "domain-stop"
	EventWALRecovery       = "wal-recovery"
)

// Health transition event kinds recorded by the signal sampler (worker -1,
// domain-scoped). The kind names the state the domain transitioned *into*;
// the journal's ordering carries the from-state.
const (
	EventHealthHealthy   = "health-healthy"
	EventHealthDegraded  = "health-degraded"
	EventHealthSaturated = "health-saturated"
	EventHealthStalled   = "health-stalled"
)

// Event is one domain/worker lifecycle transition (start, crash, respawn,
// budget exhaustion, stop).
type Event struct {
	AtNs   int64  `json:"at_ns"`
	Domain string `json:"domain"`
	Worker int    `json:"worker"` // -1 for domain-scoped events
	Kind   string `json:"kind"`
}

// eventLog is a bounded ring of lifecycle events plus per-kind totals.
type eventLog struct {
	mu     sync.Mutex
	ring   []Event
	next   int
	counts map[string]uint64
}

func newEventLog(cap int) *eventLog {
	if cap < 1 {
		cap = 1
	}
	return &eventLog{ring: make([]Event, 0, cap), counts: map[string]uint64{}}
}

func (l *eventLog) add(e Event) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.ring) < cap(l.ring) {
		l.ring = append(l.ring, e)
	} else {
		l.ring[l.next] = e
	}
	l.next = (l.next + 1) % cap(l.ring)
	l.counts[e.Kind]++
}

func (l *eventLog) snapshot() ([]Event, map[string]uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Event, 0, len(l.ring))
	if len(l.ring) == cap(l.ring) {
		out = append(out, l.ring[l.next:]...)
		out = append(out, l.ring[:l.next]...)
	} else {
		out = append(out, l.ring...)
	}
	counts := make(map[string]uint64, len(l.counts))
	for k, v := range l.counts {
		counts[k] = v
	}
	return out, counts
}
