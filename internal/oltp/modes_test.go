package oltp

import (
	"testing"

	"robustconf/internal/topology"
	"robustconf/internal/tpcc"
)

// Execution-mode correctness: every SessionStore mode must leave the exact
// same database state as the direct baseline when driven by the same
// deterministic terminal stream — including cross-warehouse transactions
// (remote Payment, remote-item New-Order), which the whole-transaction mode
// must fall back to pipelined statements for. Exact equality holds because
// every conflicting write is expressed as a commutative RMW, so pipelined
// reordering cannot diverge.

// tableChecksum order-insensitively folds a table's contents (FNV over
// key/value pairs, combined by addition so scan order is irrelevant).
func tableChecksum(t *testing.T, wh *Warehouse, tb tpcc.Table) (uint64, int) {
	t.Helper()
	sum := uint64(0)
	n := 0
	if _, err := wh.scan(tb, 0, ^uint64(0), func(k, v uint64) bool {
		h := uint64(14695981039346656037)
		h = (h ^ k) * 1099511628211
		h = (h ^ v) * 1099511628211
		sum += h
		n++
		return true
	}); err != nil {
		t.Fatalf("checksum scan %s: %v", tb, err)
	}
	return sum, n
}

// engineState snapshots every table of every warehouse.
type engineState map[tpcc.Table][]uint64

func snapshotState(t *testing.T, warehouses []*Warehouse) engineState {
	t.Helper()
	st := engineState{}
	for _, tb := range tpcc.Tables {
		for _, wh := range warehouses {
			sum, _ := tableChecksum(t, wh, tb)
			st[tb] = append(st[tb], sum)
		}
	}
	return st
}

func diffStates(t *testing.T, label string, want, got engineState) {
	t.Helper()
	for _, tb := range tpcc.Tables {
		for w := range want[tb] {
			if want[tb][w] != got[tb][w] {
				t.Errorf("%s: table %s warehouse %d diverged from direct baseline", label, tb, w+1)
			}
		}
	}
}

// runDirectTrace drives the direct baseline and returns its final state.
func runDirectTrace(t *testing.T, remote float64, seed int64, txns int, fullMix bool) (engineState, *tpcc.Terminal) {
	t.Helper()
	e := loadDirect(t, newFPTree)
	term, err := tpcc.NewTerminal(smallCfg, e, 1, remote, seed)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < txns; i++ {
		var err error
		if fullMix {
			err = term.NextFullMix()
		} else {
			err = term.NextTransaction()
		}
		if err != nil {
			t.Fatalf("direct txn %d: %v", i, err)
		}
	}
	return snapshotState(t, e.warehouses), term
}

// runModeTrace drives the delegated engine in one execution mode.
func runModeTrace(t *testing.T, mode ExecMode, remote float64, seed int64, txns int, fullMix bool) (engineState, *tpcc.Terminal) {
	t.Helper()
	m, _ := topology.Restricted(1)
	e, err := NewEngine(smallCfg, newFPTree, m)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Stop()
	loader, _ := tpcc.NewLoader(smallCfg, 1)
	store, err := e.NewStoreMode(0, 14, mode)
	if err != nil {
		t.Fatal(err)
	}
	if err := loader.Load(store); err != nil {
		t.Fatal(err)
	}
	term, err := tpcc.NewTerminal(smallCfg, store, 1, remote, seed)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < txns; i++ {
		var err error
		if fullMix {
			err = term.NextFullMix()
		} else {
			err = term.NextTransaction()
		}
		if err != nil {
			t.Fatalf("%s txn %d: %v", mode, i, err)
		}
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}
	return snapshotState(t, e.warehouses), term
}

func TestModesCrossWarehouseAgainstDirect(t *testing.T) {
	// Remote fraction 0.4 over 250 New-Order/Payment transactions forces
	// plenty of remote Payments (customer in the other warehouse) and
	// remote-item New-Orders through every mode's cross-warehouse path.
	const remote, seed, txns = 0.4, int64(99), 250
	want, dTerm := runDirectTrace(t, remote, seed, txns, false)

	// Proof the trace crossed warehouses: remote New-Orders decremented
	// warehouse 2's stock YTD and remote Payments moved a warehouse-2
	// customer balance (terminal 1 is homed at warehouse 1).
	if len(want[tpcc.StockYTD]) < 2 {
		t.Fatal("missing warehouse snapshots")
	}
	fresh := loadDirect(t, newFPTree)
	base := snapshotState(t, fresh.warehouses)
	if base[tpcc.StockYTD][1] == want[tpcc.StockYTD][1] {
		t.Fatal("trace never ran a remote-item New-Order; raise the remote fraction")
	}
	if base[tpcc.CustomerBalance][1] == want[tpcc.CustomerBalance][1] {
		t.Fatal("trace never ran a remote Payment; raise the remote fraction")
	}

	for _, mode := range []ExecMode{ModePerStatement, ModeFused, ModeWholeTxn} {
		got, gTerm := runModeTrace(t, mode, remote, seed, txns, false)
		if dTerm.NewOrders != gTerm.NewOrders || dTerm.Payments != gTerm.Payments {
			t.Errorf("%s: mix diverged: NO=%d/%d P=%d/%d", mode,
				dTerm.NewOrders, gTerm.NewOrders, dTerm.Payments, gTerm.Payments)
		}
		diffStates(t, mode.String(), want, got)
	}
}

func TestModesFullMixAgainstDirect(t *testing.T) {
	// The full five-transaction mix (Delivery's consume/credit, the
	// read-only scans) with cross-warehouse traffic, through every mode.
	const remote, seed, txns = 0.3, int64(31), 300
	want, dTerm := runDirectTrace(t, remote, seed, txns, true)
	if dTerm.Deliveries == 0 || dTerm.OrderStatuses == 0 || dTerm.StockLevels == 0 {
		t.Fatalf("trace incomplete: %+v", dTerm)
	}
	for _, mode := range []ExecMode{ModePerStatement, ModeFused, ModeWholeTxn} {
		got, gTerm := runModeTrace(t, mode, remote, seed, txns, true)
		if dTerm.NewOrders != gTerm.NewOrders || dTerm.Deliveries != gTerm.Deliveries ||
			dTerm.OrderStatuses != gTerm.OrderStatuses || dTerm.StockLevels != gTerm.StockLevels {
			t.Errorf("%s: mix diverged: direct %+v vs %+v", mode, dTerm, gTerm)
		}
		diffStates(t, mode.String(), want, got)
	}
}

func TestParseMode(t *testing.T) {
	for _, mode := range []ExecMode{ModePerStatement, ModeFused, ModeWholeTxn} {
		got, err := ParseMode(mode.String())
		if err != nil || got != mode {
			t.Errorf("ParseMode(%q) = %v, %v", mode.String(), got, err)
		}
	}
	if _, err := ParseMode("bogus"); err == nil {
		t.Error("bogus mode accepted")
	}
}
